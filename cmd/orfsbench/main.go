// Command orfsbench measures remote file access throughput — the
// workload behind Figures 3(b), 4(b) and 7 — for a chosen transport
// and access type.
//
// Usage:
//
//	go run ./cmd/orfsbench -transport mx -access buffered
//	go run ./cmd/orfsbench -transport gm -access direct -max 65536
//	go run ./cmd/orfsbench -transport gm-nocache -access direct
//	go run ./cmd/orfsbench -transport mx -access orfa
//	go run ./cmd/orfsbench -transport mx -access buffered -combine 8
//	go run ./cmd/orfsbench -transport gm-nophys -access buffered
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/netpipe"
)

func main() {
	transport := flag.String("transport", "mx", "gm | gm-nocache | gm-nophys | mx")
	access := flag.String("access", "buffered", "buffered | direct | orfa")
	maxSize := flag.Int("max", 1<<20, "largest request size")
	combine := flag.Int("combine", 1, "buffered-read combining factor in pages (the §3.3 Linux-2.6 prediction)")
	flag.Parse()

	cfg := figures.DefaultConfig()
	pts, err := figures.RunFileBenchOpt(*transport, *access, *combine, netpipe.Sizes(*maxSize), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("# transport=%s access=%s (sequential read throughput at the application)\n",
		*transport, *access)
	fmt.Printf("%12s %14s\n", "request(B)", "bw(MB/s)")
	for _, pt := range pts {
		fmt.Printf("%12d %14.1f\n", pt.Size, pt.MBps)
	}
}
