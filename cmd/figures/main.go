// Command figures regenerates every table and figure of the paper's
// evaluation and prints them as text, with the paper's qualitative
// expectation under each one. This is the program whose output
// EXPERIMENTS.md records.
//
// Usage:
//
//	go run ./cmd/figures                            # everything
//	go run ./cmd/figures -only fig6                 # one experiment
//	go run ./cmd/figures -only smallfile,metadata   # a comma-separated few
//	go run ./cmd/figures -iters 20                  # more round trips per point
//	go run ./cmd/figures -json BENCH_PR8.json       # machine-readable snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/figures"
)

// jsonPoint is one measured point of the machine-readable snapshot.
type jsonPoint struct {
	Size     int     `json:"size"`
	OneWayNS int64   `json:"oneway_ns,omitempty"`
	Value    float64 `json:"value"`
}

// jsonSeries is one labelled curve.
type jsonSeries struct {
	Label  string      `json:"label"`
	Points []jsonPoint `json:"points"`
}

// jsonFigure is one figure of the snapshot: the unit applies to every
// point's Value (latency figures also carry oneway_ns per point).
type jsonFigure struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Unit   string       `json:"unit"`
	Series []jsonSeries `json:"series"`
}

// jsonElastic is the elastic-membership lifecycle section of the
// snapshot: per-phase throughput (kill -> heal -> replayed
// re-admission -> live Join) plus the recovery/migration accounting.
type jsonElastic struct {
	PreMBps       float64 `json:"pre_mbps"`
	DegradedMBps  float64 `json:"degraded_mbps"`
	PostMBps      float64 `json:"post_expansion_mbps"`
	Reinstates    int64   `json:"reinstates"`
	Refusals      int64   `json:"reinstate_refusals"`
	Spills        int64   `json:"resync_spills"`
	ResyncOps     int64   `json:"resync_ops"`
	ResyncBytes   int64   `json:"resync_bytes"`
	MigratedBytes int64   `json:"migrated_bytes"`
	Epoch         uint64  `json:"epoch"`
	Members       []int   `json:"members"`
}

// snapshot is the BENCH_PR6.json layout: every figure that ran, plus
// the allocation profile of the per-request hot path and (since PR 9)
// the elastic-membership lifecycle numbers.
type snapshot struct {
	Iters   int          `json:"iters"`
	Figures []jsonFigure `json:"figures"`
	Elastic *jsonElastic `json:"elastic,omitempty"`
	Allocs  struct {
		// RequestPathPerOp is the measured heap allocations per
		// client-observed cluster operation (see
		// figures.RequestPathAllocs); alloc_gate_test.go gates its
		// ceiling. SizePublishPerOp is the same number for an extending
		// write on the batched size-publish path (DESIGN.md §11).
		RequestPathPerOp float64 `json:"request_path_per_op"`
		SizePublishPerOp float64 `json:"size_publish_per_op"`
		Ops              int     `json:"ops"`
	} `json:"allocs"`
}

// add records a finished figure in the snapshot.
func (s *snapshot) add(f *figures.Figure) {
	unit := f.Unit
	if unit == "" {
		if f.Latency() {
			unit = "µs"
		} else {
			unit = "MB/s"
		}
	}
	jf := jsonFigure{ID: f.ID, Title: f.Title, Unit: unit}
	for _, sr := range f.Series {
		js := jsonSeries{Label: sr.Label}
		for _, pt := range sr.Points {
			jp := jsonPoint{Size: pt.Size, Value: pt.MBps}
			if f.Latency() {
				jp.OneWayNS = pt.OneWay.Nanoseconds()
				jp.Value = float64(pt.OneWay.Nanoseconds()) / 1000
			}
			js.Points = append(js.Points, jp)
		}
		jf.Series = append(jf.Series, js)
	}
	s.Figures = append(s.Figures, jf)
}

func main() {
	iters := flag.Int("iters", 10, "ping-pong iterations per message size")
	only := flag.String("only", "", "run only these comma-separated experiment ids (fig1b…fig8b, table1, scalability, multiserver, degraded, elastic, sharedfile, smallfile, metadata, torture)")
	jsonPath := flag.String("json", "", "also write a machine-readable snapshot (figures + hot-path allocs/op) to this file")
	flag.Parse()

	cfg := figures.Config{Iters: *iters, Warmup: 2}
	snap := &snapshot{Iters: *iters}
	sel := make(map[string]bool)
	for _, id := range strings.Split(strings.ToLower(*only), ",") {
		if id = strings.TrimSpace(id); id != "" {
			sel[id] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }
	type job struct {
		id  string
		fig func() (*figures.Figure, error)
	}
	jobs := []job{
		{"fig1b", cfg.Fig1b},
		{"fig3b", cfg.Fig3b},
		{"fig4a", cfg.Fig4a},
		{"fig4b", cfg.Fig4b},
		{"fig5a", cfg.Fig5a},
		{"fig5b", cfg.Fig5b},
		{"fig6", cfg.Fig6},
		{"fig7a", cfg.Fig7a},
		{"fig7b", cfg.Fig7b},
		{"fig8a", cfg.Fig8a},
		{"fig8b", cfg.Fig8b},
	}
	ran := false
	emit := func(f *figures.Figure) {
		fmt.Println(f.Render(f.Latency()))
		snap.add(f)
	}
	for _, j := range jobs {
		if !want(j.id) {
			continue
		}
		ran = true
		f, err := j.fig()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.id, err)
			os.Exit(1)
		}
		emit(f)
	}
	if want("table1") {
		ran = true
		t, err := cfg.Table1()
		if err != nil {
			fmt.Fprintf(os.Stderr, "table1: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
	}
	multi := map[string]func() ([]*figures.Figure, error){
		"scalability": cfg.Scalability,
		"multiserver": cfg.MultiServer,
		"sharedfile":  cfg.SharedFile,
		"smallfile":   cfg.SmallFile,
		"metadata":    cfg.Metadata,
		"torture":     cfg.Torture,
	}
	for _, id := range []string{"scalability", "multiserver", "sharedfile", "smallfile", "metadata", "torture"} {
		if !want(id) {
			continue
		}
		ran = true
		figs, err := multi[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for _, f := range figs {
			emit(f)
		}
	}
	if want("degraded") {
		ran = true
		tbl, err := cfg.Degraded()
		if err != nil {
			fmt.Fprintf(os.Stderr, "degraded: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tbl.Render())
	}
	if want("elastic") {
		ran = true
		tbls, stats, err := cfg.Elastic()
		if err != nil {
			fmt.Fprintf(os.Stderr, "elastic: %v\n", err)
			os.Exit(1)
		}
		for _, tbl := range tbls {
			fmt.Println(tbl.Render())
		}
		snap.Elastic = &jsonElastic{
			PreMBps: stats.PreMBps, DegradedMBps: stats.DegradedMBps, PostMBps: stats.PostMBps,
			Reinstates: stats.Reinstates, Refusals: stats.Refusals, Spills: stats.Spills,
			ResyncOps: stats.ResyncOps, ResyncBytes: stats.ResyncBytes,
			MigratedBytes: stats.MigratedBytes, Epoch: stats.Epoch, Members: stats.Members,
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(1)
	}
	if *jsonPath != "" {
		const allocOps = 512
		perOp, err := figures.RequestPathAllocs(allocOps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "request-path allocs: %v\n", err)
			os.Exit(1)
		}
		pubOp, err := figures.SizePublishAllocs(allocOps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "size-publish allocs: %v\n", err)
			os.Exit(1)
		}
		snap.Allocs.RequestPathPerOp = perOp
		snap.Allocs.SizePublishPerOp = pubOp
		snap.Allocs.Ops = allocOps
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
