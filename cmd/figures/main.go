// Command figures regenerates every table and figure of the paper's
// evaluation and prints them as text, with the paper's qualitative
// expectation under each one. This is the program whose output
// EXPERIMENTS.md records.
//
// Usage:
//
//	go run ./cmd/figures            # everything
//	go run ./cmd/figures -only fig6 # one experiment
//	go run ./cmd/figures -iters 20  # more round trips per point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/figures"
)

func main() {
	iters := flag.Int("iters", 10, "ping-pong iterations per message size")
	only := flag.String("only", "", "run only this experiment id (fig1b…fig8b, table1, scalability, multiserver, degraded, sharedfile)")
	flag.Parse()

	cfg := figures.Config{Iters: *iters, Warmup: 2}
	type job struct {
		id  string
		fig func() (*figures.Figure, error)
	}
	jobs := []job{
		{"fig1b", cfg.Fig1b},
		{"fig3b", cfg.Fig3b},
		{"fig4a", cfg.Fig4a},
		{"fig4b", cfg.Fig4b},
		{"fig5a", cfg.Fig5a},
		{"fig5b", cfg.Fig5b},
		{"fig6", cfg.Fig6},
		{"fig7a", cfg.Fig7a},
		{"fig7b", cfg.Fig7b},
		{"fig8a", cfg.Fig8a},
		{"fig8b", cfg.Fig8b},
	}
	sel := strings.ToLower(*only)
	ran := false
	for _, j := range jobs {
		if sel != "" && sel != j.id {
			continue
		}
		ran = true
		f, err := j.fig()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.id, err)
			os.Exit(1)
		}
		fmt.Println(f.Render(f.Latency()))
	}
	if sel == "" || sel == "table1" {
		ran = true
		t, err := cfg.Table1()
		if err != nil {
			fmt.Fprintf(os.Stderr, "table1: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
	}
	if sel == "" || sel == "scalability" {
		ran = true
		figs, err := cfg.Scalability()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scalability: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.Render(f.Latency()))
		}
	}
	if sel == "" || sel == "multiserver" {
		ran = true
		figs, err := cfg.MultiServer()
		if err != nil {
			fmt.Fprintf(os.Stderr, "multiserver: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.Render(f.Latency()))
		}
	}
	if sel == "" || sel == "sharedfile" {
		ran = true
		figs, err := cfg.SharedFile()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sharedfile: %v\n", err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.Render(f.Latency()))
		}
	}
	if sel == "" || sel == "degraded" {
		ran = true
		tbl, err := cfg.Degraded()
		if err != nil {
			fmt.Fprintf(os.Stderr, "degraded: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tbl.Render())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
