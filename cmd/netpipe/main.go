// Command netpipe runs the NETPIPE-style ping-pong benchmark over any
// transport in the repository and prints a latency/bandwidth table.
//
// Usage:
//
//	go run ./cmd/netpipe -transport mx -mode kernel
//	go run ./cmd/netpipe -transport sockets-gm -link xe
//	go run ./cmd/netpipe -transport gm -mode physical -max 65536
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/figures"
	"repro/internal/hw"
	"repro/internal/netpipe"
)

func main() {
	transport := flag.String("transport", "mx", "gm | mx | sockets-gm | sockets-mx")
	mode := flag.String("mode", "user", "buffer addressing for gm/mx: user | kernel | physical")
	link := flag.String("link", "xd", "card model: xd (250 MB/s) | xe (500 MB/s)")
	maxSize := flag.Int("max", 1<<20, "largest message size")
	iters := flag.Int("iters", 10, "round trips per size")
	trace := flag.Bool("trace", false, "print per-message driver trace to stderr")
	flag.Parse()

	model := hw.PCIXD
	if *link == "xe" {
		model = hw.PCIXE
	}
	var am netpipe.AddrMode
	switch *mode {
	case "user":
		am = netpipe.UserBuf
	case "kernel":
		am = netpipe.KernelBuf
	case "physical":
		am = netpipe.PhysBuf
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}

	cfg := figures.Config{Iters: *iters, Warmup: 2}
	if *trace {
		cfg.Trace = func(t time.Duration, format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%12v] %s\n", t, fmt.Sprintf(format, args...))
		}
	}
	pts, err := figures.RunPingPong(*transport, am, model, netpipe.Sizes(*maxSize), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("# transport=%s mode=%s link=%s\n", *transport, *mode, model)
	fmt.Printf("%12s %14s %14s\n", "size(B)", "one-way(µs)", "bw(MB/s)")
	for _, pt := range pts {
		fmt.Printf("%12d %14.2f %14.1f\n", pt.Size, float64(pt.OneWay.Nanoseconds())/1000, pt.MBps)
	}
}
