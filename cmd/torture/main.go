// Command torture is the soak driver for the randomized
// fault-schedule harness (internal/torture, DESIGN.md §12): it runs
// successive seeds of both modes until a wall-clock budget expires,
// printing one summary line per run and writing every failure —
// the one-line reproduction command plus the minimized trace — to its
// own file, so a CI job can upload the failing seeds as artifacts.
//
// Usage:
//
//	go run ./cmd/torture -torture.duration 10m
//	go run ./cmd/torture -torture.duration 30s -torture.mode ns
//	go run ./cmd/torture -torture.seed 123456 -torture.duration 1m
//
// Every choice is seed-derived: the starting seed defaults to the
// wall clock but is always printed, so any soak — scheduled or local
// — replays exactly with -torture.seed. Failures exit nonzero after
// the budget (the soak keeps hunting; one bad seed should not hide
// others).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/torture"
)

func main() {
	duration := flag.Duration("torture.duration", 10*time.Minute, "wall-clock soak budget")
	startSeed := flag.Int64("torture.seed", 0, "first seed (0: derive from the wall clock, printed for replay)")
	mode := flag.String("torture.mode", "both", "mode(s) to soak: data, ns or both")
	elastic := flag.Bool("torture.elastic", false, "add membership bounces (stop-world retire+rejoin) to every run's schedule")
	outDir := flag.String("torture.out", "torture-failures", "directory for per-failure repro files")
	flag.Parse()

	seed := *startSeed
	if seed == 0 {
		seed = time.Now().UnixNano() & 0x7FFFFFFF
	}
	var modes []torture.Mode
	switch *mode {
	case "data":
		modes = []torture.Mode{torture.ModeData}
	case "ns":
		modes = []torture.Mode{torture.ModeNS}
	case "both":
		modes = []torture.Mode{torture.ModeData, torture.ModeNS}
	default:
		fmt.Fprintf(os.Stderr, "torture: bad -torture.mode %q (data, ns or both)\n", *mode)
		os.Exit(2)
	}
	fmt.Printf("torture soak: start seed %d, modes %v, elastic %v, budget %v\n", seed, modes, *elastic, *duration)

	deadline := time.Now().Add(*duration)
	runs, failures := 0, 0
	for time.Now().Before(deadline) {
		for _, m := range modes {
			cfg := torture.Config{Seed: seed, Mode: m, Elastic: *elastic}
			res, err := torture.Run(cfg)
			runs++
			if err != nil {
				failures++
				fmt.Printf("FAIL %s seed %d: %v\n", m, seed, err)
				if werr := writeFailure(*outDir, m, seed, err); werr != nil {
					fmt.Fprintf(os.Stderr, "torture: recording failure: %v\n", werr)
				}
				continue
			}
			fmt.Printf("ok   %s seed %d: %d ops, %d kills %d stalls %d strikes %d bounces, %d in-doubt, %.0f ops/s, recovery mean %v max %v\n",
				m, seed, res.Ops, res.Kills, res.Stalls, res.Strikes, res.Bounces,
				res.RenameInDoubts, res.OpsPerSec, res.RecoveryMean, res.RecoveryMax)
		}
		seed++
	}
	fmt.Printf("torture soak: %d runs, %d failures\n", runs, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// writeFailure records one failing run under dir: the full failure
// rendering (repro command + minimized trace) named by mode and seed,
// ready for artifact upload and for graduating the seed into the
// tier-1 corpus.
func writeFailure(dir string, m torture.Mode, seed int64, err error) error {
	if mkerr := os.MkdirAll(dir, 0o755); mkerr != nil {
		return mkerr
	}
	name := filepath.Join(dir, fmt.Sprintf("%s-seed%d.txt", m, seed))
	return os.WriteFile(name, []byte(err.Error()+"\n"), 0o644)
}
