// Block-device example: the Network Block Device client the paper
// names as its third in-kernel application (§6) — "allowing remote
// partition mounting such as with iSCSI". The device is mounted
// through the VFS, so the page cache sits on top of it and block
// transfers use physically addressed page frames, just like buffered
// ORFS access.
//
// Run with: go run ./examples/blockdevice
package main

import (
	"fmt"
	"log"

	knapi "repro"
)

func main() {
	s := knapi.NewSim(knapi.PCIXD)
	client := s.AddNode("client")
	server := s.AddNode("server")

	// Server: export a 4 MB disk (1024 blocks).
	srv, err := knapi.NewNBDServer(server, 1024)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.ServeMX(knapi.AttachMX(server), 1, 1); err != nil {
		log.Fatal(err)
	}

	mxC := knapi.AttachMX(client)
	s.Spawn("app", func(p *knapi.Proc) {
		cl, err := knapi.NewNBDClient(mxC, 2, server.ID, 1, 1024)
		if err != nil {
			log.Fatal(err)
		}
		osys := knapi.NewOS(client, 0)
		dev := knapi.NewNBDDevice(cl)
		osys.Mount("/dev/nbd0", dev)

		f, err := osys.Open(p, "/dev/nbd0/disk", 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] mounted remote disk: %d MB\n", p.Now(), f.Size()>>20)

		as := client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "buf")

		// Write a 512 KB region through the page cache.
		data := make([]byte, 512*1024)
		for i := range data {
			data[i] = byte(i * 13)
		}
		as.WriteBytes(buf, data)
		t0 := p.Now()
		if _, err := f.WriteAt(p, as, buf, len(data), 1<<20); err != nil {
			log.Fatal(err)
		}
		if err := f.Fsync(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] wrote 512 KB at offset 1MB (fsync'ed): %v, %d block writes on the wire\n",
			p.Now(), p.Now()-t0, srv.Writes.N)

		// Read it back cold, then warm.
		a, _ := osys.Stat(p, "/dev/nbd0/disk")
		osys.PC.InvalidateInode(dev, a.Ino) // drop the cache: make the read cold
		t1 := p.Now()
		f.ReadAt(p, as, buf, len(data), 1<<20)
		cold := p.Now() - t1
		t2 := p.Now()
		f.ReadAt(p, as, buf, len(data), 1<<20)
		warm := p.Now() - t2
		got, _ := as.ReadBytes(buf, len(data))
		for i := range got {
			if got[i] != data[i] {
				log.Fatalf("byte %d corrupted through the block stack", i)
			}
		}
		fmt.Printf("[%8v] read back 512 KB: cold %v, warm %v (%d wire reads; page cache holds %d pages)\n",
			p.Now(), cold, warm, cl.BlockReads.N, osys.PC.Resident())
	})

	s.Run()
}
