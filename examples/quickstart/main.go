// Quickstart: build a two-node Myrinet cluster, open MX kernel
// endpoints (the paper's in-kernel API), exchange a message with the
// address-typed vectorial interface, and measure the 1-byte one-way
// latency the paper reports as ≈4.2 µs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	knapi "repro"
)

const iters = 50

func main() {
	s := knapi.NewSim(knapi.PCIXD)
	a := s.AddNode("alice")
	b := s.AddNode("bob")
	mxA := knapi.AttachMX(a)
	mxB := knapi.AttachMX(b)

	// Bob: print the greeting, then echo everything that arrives.
	s.Spawn("bob", func(p *knapi.Proc) {
		ep, err := mxB.OpenEndpoint(1, true) // kernel endpoint
		if err != nil {
			log.Fatal(err)
		}
		buf, err := b.Kernel.MmapContig(4096, "rx")
		if err != nil {
			log.Fatal(err)
		}
		vec := func(n int) knapi.Vector { return knapi.Of(knapi.KernelSeg(b.Kernel, buf, n)) }
		for i := 0; i <= iters; i++ {
			req, err := ep.Recv(p, knapi.MatchAll, vec(4096))
			if err != nil {
				log.Fatal(err)
			}
			st := req.Wait(p)
			if i == 0 {
				msg, _ := b.Kernel.ReadBytes(buf, st.Len)
				fmt.Printf("[%8v] bob received %q (match info %#x) from node %d\n",
					p.Now(), msg, st.Info, st.Src)
			}
			if _, err := ep.Send(p, st.Src, 1, st.Info, vec(st.Len)); err != nil {
				log.Fatal(err)
			}
		}
	})

	// Alice: send the greeting, then run a 1-byte ping-pong.
	s.Spawn("alice", func(p *knapi.Proc) {
		ep, err := mxA.OpenEndpoint(1, true)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := a.Kernel.MmapContig(4096, "tx")
		if err != nil {
			log.Fatal(err)
		}
		vec := func(n int) knapi.Vector { return knapi.Of(knapi.KernelSeg(a.Kernel, buf, n)) }

		greeting := []byte("hello from the kernel, over Myrinet Express")
		a.Kernel.WriteBytes(buf, greeting)
		echo, err := ep.Recv(p, knapi.MatchAll, vec(4096))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ep.Send(p, b.ID, 1, 0x42, vec(len(greeting))); err != nil {
			log.Fatal(err)
		}
		st := echo.Wait(p)
		fmt.Printf("[%8v] alice got her echo back (%d bytes)\n", p.Now(), st.Len)

		t0 := p.Now()
		for i := 0; i < iters; i++ {
			r, err := ep.Recv(p, knapi.MatchAll, vec(1))
			if err != nil {
				log.Fatal(err)
			}
			if _, err := ep.Send(p, b.ID, 1, 1, vec(1)); err != nil {
				log.Fatal(err)
			}
			r.Wait(p)
		}
		oneWay := (p.Now() - t0) / (2 * iters)
		fmt.Printf("[%8v] 1-byte one-way latency over %d round trips: %v (paper: ≈4.2µs)\n",
			p.Now(), iters, oneWay)
	})

	end := s.Run()
	fmt.Printf("simulation finished at virtual time %v\n", end.Round(time.Microsecond))
}
