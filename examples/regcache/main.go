// Registration-cache example: GMKRC and VMA SPY at work (§3.2).
//
// GM requires every buffer to be registered with the NIC before use
// (≈3µs/page, with a ≈200µs deregistration penalty). This example
// shows what the paper's GMKRC pin-down cache does about it:
//
//  1. repeated use of a buffer hits the cache (near-zero cost);
//  2. an munmap is observed through VMA SPY and the stale NIC
//     translations are flushed before the pages can be reused;
//  3. a fork is harmless because entries are keyed by address space
//     (the 64-bit-pointer firmware trick);
//  4. exceeding the cache budget evicts by LRU, paying deregistration.
//
// Run with: go run ./examples/regcache
package main

import (
	"fmt"
	"log"

	knapi "repro"
)

func main() {
	s := knapi.NewSim(knapi.PCIXD)
	node := s.AddNode("node")
	s.AddNode("peer")
	g := knapi.AttachGM(node)

	s.Spawn("demo", func(p *knapi.Proc) {
		port, err := g.OpenPort(1, true) // shared kernel port
		if err != nil {
			log.Fatal(err)
		}
		cache := knapi.NewRegCache(port, 64) // 64-page budget

		proc1 := node.NewUserSpace("proc1")
		buf, err := proc1.Mmap(16*knapi.PageSize, "io-buffer")
		if err != nil {
			log.Fatal(err)
		}

		// 1. Miss, then hits.
		t0 := p.Now()
		cache.Acquire(p, proc1, buf, 16*knapi.PageSize)
		missCost := p.Now() - t0
		t1 := p.Now()
		for i := 0; i < 10; i++ {
			cache.Acquire(p, proc1, buf, 16*knapi.PageSize)
		}
		hitCost := (p.Now() - t1) / 10
		fmt.Printf("[%8v] first use (registration): %v; subsequent uses: %v each\n",
			p.Now(), missCost, hitCost)
		fmt.Printf("           NIC translation table: %d entries, cache: %d pages\n",
			node.NIC.Table.Used(), cache.Pages())

		// 2. munmap → VMA SPY → invalidation.
		if err := proc1.Munmap(buf, 16*knapi.PageSize); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] after munmap: table %d entries, cache %d pages, %d invalidations\n",
			p.Now(), node.NIC.Table.Used(), cache.Pages(), cache.Invalidations.N)

		// 3. Fork: same virtual addresses, different address space.
		buf2, _ := proc1.Mmap(8*knapi.PageSize, "post-fork-buffer")
		cache.Acquire(p, proc1, buf2, 8*knapi.PageSize)
		child, err := proc1.Fork("proc1-child")
		if err != nil {
			log.Fatal(err)
		}
		hit, _ := cache.Acquire(p, proc1, buf2, 8*knapi.PageSize)
		childHit, _ := cache.Acquire(p, child, buf2, 8*knapi.PageSize)
		fmt.Printf("[%8v] after fork: parent re-acquire hit=%v, child acquire hit=%v "+
			"(ASIDs keep them apart)\n", p.Now(), hit, childHit)

		// 4. LRU eviction under the page budget.
		evBefore := cache.Evictions.N
		for i := 0; i < 8; i++ {
			v, err := proc1.Mmap(16*knapi.PageSize, "churn")
			if err != nil {
				log.Fatal(err)
			}
			if _, err := cache.Acquire(p, proc1, v, 16*knapi.PageSize); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("[%8v] churned 8×16 pages through a 64-page budget: %d evictions "+
			"(each paying the ≈200µs deregistration)\n",
			p.Now(), cache.Evictions.N-evBefore)
		fmt.Printf("           totals: %d hits, %d misses, %d evictions, %d invalidations\n",
			cache.Hits.N, cache.Misses.N, cache.Evictions.N, cache.Invalidations.N)
	})

	s.Run()
}
