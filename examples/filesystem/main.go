// Filesystem example: mount the ORFS in-kernel remote filesystem over
// the MX kernel interface, write and read files through the VFS, and
// show the two access types the paper studies — buffered (page cache,
// physically addressed page transfers) and direct (O_DIRECT, zero-copy
// from user buffers) — plus the metadata caching an in-kernel client
// gets for free.
//
// Run with: go run ./examples/filesystem
package main

import (
	"fmt"
	"log"

	knapi "repro"
)

func main() {
	s := knapi.NewSim(knapi.PCIXD)
	client := s.AddNode("client")
	server := s.AddNode("server")

	// Server: a memfs-backed file server on an MX kernel endpoint.
	backing := knapi.NewMemFS("backing", server, 0)
	srv := knapi.NewFileServer(server, backing)
	if _, err := srv.ServeMX(knapi.AttachMX(server), 1, 2); err != nil {
		log.Fatal(err)
	}

	mxC := knapi.AttachMX(client)
	s.Spawn("app", func(p *knapi.Proc) {
		// Client transport + mount.
		cl, err := knapi.NewMXClient(mxC, 2, true, client.Kernel, server.ID, 1)
		if err != nil {
			log.Fatal(err)
		}
		osys := knapi.NewOS(client, 0)
		orfsFS := knapi.NewORFS("orfs", cl)
		osys.Mount("/mnt/orfs", orfsFS)

		// The application: a user process with a 1MB buffer.
		as := client.NewUserSpace("app")
		buf, err := as.Mmap(1<<20, "io-buffer")
		if err != nil {
			log.Fatal(err)
		}

		// Create a directory tree and a data file.
		if err := osys.Mkdir(p, "/mnt/orfs/project"); err != nil {
			log.Fatal(err)
		}
		f, err := osys.Open(p, "/mnt/orfs/project/results.dat", knapi.OCreate)
		if err != nil {
			log.Fatal(err)
		}
		data := make([]byte, 300*1024)
		for i := range data {
			data[i] = byte(i % 251)
		}
		as.WriteBytes(buf, data)
		if _, err := f.Write(p, as, buf, len(data)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(p); err != nil { // flushes dirty pages
			log.Fatal(err)
		}
		fmt.Printf("[%8v] wrote %d KB through the page cache (per-page writeback RPCs)\n",
			p.Now(), len(data)/1024)

		// Buffered read: cold cache (dropped first), then warm.
		a, _ := osys.Stat(p, "/mnt/orfs/project/results.dat")
		osys.PC.InvalidateInode(orfsFS, a.Ino)
		g, _ := osys.Open(p, "/mnt/orfs/project/results.dat", 0)
		t0 := p.Now()
		g.ReadAt(p, as, buf, len(data), 0)
		cold := p.Now() - t0
		t1 := p.Now()
		g.ReadAt(p, as, buf, len(data), 0)
		warm := p.Now() - t1
		g.Close(p)
		fmt.Printf("[%8v] buffered read: cold %v, warm %v (page cache: %d hits, %d misses)\n",
			p.Now(), cold, warm, osys.PC.HitCount.N, osys.PC.MissCount.N)

		// Direct read: O_DIRECT, data lands in the user buffer without
		// touching the page cache (the zero-copy path, §2.3.2).
		d, _ := osys.Open(p, "/mnt/orfs/project/results.dat", knapi.ODirect)
		t2 := p.Now()
		n, err := d.ReadAt(p, as, buf, len(data), 0)
		if err != nil {
			log.Fatal(err)
		}
		direct := p.Now() - t2
		d.Close(p)
		fmt.Printf("[%8v] direct read of %d KB: %v (%.1f MB/s)\n",
			p.Now(), n/1024, direct, float64(n)/direct.Seconds()/1e6)

		// Metadata: the dentry cache absorbs repeated walks.
		before := orfsFS.MetaOps.N
		for i := 0; i < 20; i++ {
			if _, err := osys.Stat(p, "/mnt/orfs/project/results.dat"); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("[%8v] 20 stats issued %d metadata RPCs (VFS caches at work, §3.1)\n",
			p.Now(), orfsFS.MetaOps.N-before)

		ents, _ := osys.Readdir(p, "/mnt/orfs/project")
		for _, e := range ents {
			fmt.Printf("           /mnt/orfs/project/%s (ino %d)\n", e.Name, e.Ino)
		}
	})

	s.Run()
}
