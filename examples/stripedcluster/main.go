// Striped cluster example: shard one file's data across three rfsrv
// servers with rfsrv.Cluster and watch the pieces land where the
// striping policy says they should.
//
// The walk-through below builds the whole stack by hand — three server
// nodes, one session per server, the cluster client on top, an ORFS
// mount over the cluster — then:
//
//  1. writes a 1 MB file through the cluster and prints how many data
//     bytes each server received (round-robin 64 KB stripes);
//  2. shows the metadata side: which server is the file's home, and
//     that every server agrees on the file size after the cluster's
//     grow-only reconciliation;
//  3. reads the file back through a striped ORFS mount, where the
//     page-cache readahead pipelines across all three servers at once.
//
// Run with: go run ./examples/stripedcluster
package main

import (
	"fmt"
	"log"

	knapi "repro"
)

func main() {
	s := knapi.NewSim(knapi.PCIXD)

	// Three file servers, each on its own node with its own backing
	// store and its own 250 MB/s link — the aggregate capacity the
	// cluster client stripes over.
	const servers = 3
	var serverNodes []*knapi.Node
	var backing []*knapi.MemFS
	for i := 0; i < servers; i++ {
		n := s.AddNode(fmt.Sprintf("server%d", i))
		fs := knapi.NewMemFS(fmt.Sprintf("backing%d", i), n, 0)
		if _, err := knapi.NewFileServer(n, fs).ServeMX(knapi.AttachMX(n), 1, 2); err != nil {
			log.Fatal(err)
		}
		serverNodes = append(serverNodes, n)
		backing = append(backing, fs)
	}

	client := s.AddNode("client")
	mxC := knapi.AttachMX(client)

	s.Spawn("app", func(p *knapi.Proc) {
		// One kernel-side fabric client per server, each on its own
		// endpoint (replies demux by (sequence, endpoint)), each wrapped
		// in a window-4 session; the cluster stripes across them.
		var sessions []*knapi.FSSession
		for i, srv := range serverNodes {
			fc, err := knapi.NewMXClient(mxC, uint8(10+i), true, client.Kernel, srv.ID, 1)
			if err != nil {
				log.Fatal(err)
			}
			sess, err := knapi.NewFSSession(p, fc, 4)
			if err != nil {
				log.Fatal(err)
			}
			sessions = append(sessions, sess)
		}
		cluster, err := knapi.NewFSCluster(p, sessions, 0) // 0 = 64 KB stripes
		if err != nil {
			log.Fatal(err)
		}

		// The VFS mount over the cluster: create the file through it
		// (the create replicates to every server, so they all agree on
		// its inode), then drive the data path directly.
		osys := knapi.NewOS(client, 0)
		osys.Mount("/mnt", knapi.NewORFS("orfs", cluster))
		cf, err := osys.Open(p, "/mnt/data", knapi.OCreate)
		if err != nil {
			log.Fatal(err)
		}
		if err := cf.Close(p); err != nil {
			log.Fatal(err)
		}
		attr, err := osys.Stat(p, "/mnt/data")
		if err != nil {
			log.Fatal(err)
		}
		ino := attr.Ino

		// 1. Write 1 MB through the cluster: 16 stripes, round-robin.
		const size = 1 << 20
		buf, err := client.Kernel.Mmap(size, "payload")
		if err != nil {
			log.Fatal(err)
		}
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i % 253)
		}
		client.Kernel.WriteBytes(buf, payload)
		t0 := p.Now()
		if _, err := cluster.Write(p, ino, 0, knapi.Of(knapi.KernelSeg(client.Kernel, buf, size))); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] wrote %d KB across %d servers in %v\n", p.Now(), size/1024, servers, p.Now()-t0)
		for i, sess := range sessions {
			fmt.Printf("           server%d: %d requests issued through its session\n", i, sess.Issued.N)
		}

		// 2. Metadata: the file's home server answers getattr; every
		// server's local size was reconciled to the true EOF even though
		// each holds only a third of the bytes.
		fmt.Printf("           metadata home of ino %d: server%d\n", ino, cluster.HomeServer(ino))
		for i, fs := range backing {
			a, err := fs.Getattr(p, ino)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("           server%d local view: size %d KB\n", i, a.Size/1024)
		}

		// 3. Read it back through a FRESH ORFS mount (the first OS cached
		// the size-0 attributes from create time; a new mount walks the
		// reconciled metadata, like a second client would). Buffered
		// reads prefetch through the cluster's aggregate window (3
		// servers x 4 slots), so the three links transfer concurrently.
		reader := knapi.NewOS(client, 0)
		reader.Mount("/mnt", knapi.NewORFS("orfs", cluster))
		as := client.NewUserSpace("reader")
		rbuf, err := as.Mmap(size, "readback")
		if err != nil {
			log.Fatal(err)
		}
		f, err := reader.Open(p, "/mnt/data", 0)
		if err != nil {
			log.Fatal(err)
		}
		t1 := p.Now()
		n, err := f.ReadAt(p, as, rbuf, size, 0)
		if err != nil || n != size {
			log.Fatalf("readback: %d bytes, %v", n, err)
		}
		elapsed := p.Now() - t1
		got, err := as.ReadBytes(rbuf, size)
		if err != nil || len(got) != size {
			log.Fatalf("readback copy-out: %d bytes, %v", len(got), err)
		}
		for i := range got {
			if got[i] != payload[i] {
				log.Fatalf("byte %d corrupted across stripes", i)
			}
		}
		fmt.Printf("[%8v] striped ORFS readback: %d KB in %v (%.1f MB/s), bytes verified\n",
			p.Now(), n/1024, elapsed, float64(n)/elapsed.Seconds()/1e6)
	})

	s.Run()
}
