// Zero-copy sockets example: the same unmodified client/server
// application running over SOCKETS-MX, SOCKETS-GM and the TCP/GigE
// baseline — the §5.3 comparison. The application only sees the socket
// API; the stacks differ underneath exactly as the paper describes
// (thin MX layer vs bounce-buffered GM with a dispatch thread vs the
// full TCP/IP stack).
//
// Run with: go run ./examples/zerocopy-sockets
package main

import (
	"fmt"
	"log"

	knapi "repro"
	"repro/internal/sockets"
)

const (
	port     = knapi.SockPort(7)
	msgSize  = 64 * 1024
	messages = 16
)

// runEcho runs the identical application over one stack family and
// returns (transfer time, effective MB/s).
func runEcho(family string) (knapi.Time, float64) {
	s := knapi.NewSim(knapi.PCIXE)
	cn := s.AddNode("client")
	sn := s.AddNode("server")

	var cs, ss knapi.Stack
	var err error
	switch family {
	case "sockets-mx":
		if cs, err = knapi.NewSocketsMX(knapi.AttachMX(cn), 1); err != nil {
			log.Fatal(err)
		}
		if ss, err = knapi.NewSocketsMX(knapi.AttachMX(sn), 1); err != nil {
			log.Fatal(err)
		}
	case "sockets-gm":
		if cs, err = knapi.NewSocketsGM(knapi.AttachGM(cn), 1); err != nil {
			log.Fatal(err)
		}
		if ss, err = knapi.NewSocketsGM(knapi.AttachGM(sn), 1); err != nil {
			log.Fatal(err)
		}
	case "tcp":
		cs, ss = knapi.NewSocketsTCP(cn), knapi.NewSocketsTCP(sn)
	}

	var elapsed knapi.Time
	// Server: echo every message.
	s.Spawn("server", func(p *knapi.Proc) {
		l, err := ss.Listen(port)
		if err != nil {
			log.Fatal(err)
		}
		conn, err := l.Accept(p)
		if err != nil {
			log.Fatal(err)
		}
		as := sn.NewUserSpace("server-app")
		buf, _ := as.Mmap(msgSize, "buf")
		for i := 0; i < messages; i++ {
			if _, err := sockets.RecvAll(p, conn, as, buf, msgSize); err != nil {
				log.Fatal(err)
			}
			if _, err := conn.Send(p, as, buf, msgSize); err != nil {
				log.Fatal(err)
			}
		}
	})
	// Client: send, receive, verify.
	s.Spawn("client", func(p *knapi.Proc) {
		p.Sleep(10_000) // 10µs: let the listener come up
		conn, err := cs.Dial(p, int(sn.ID), port)
		if err != nil {
			log.Fatal(err)
		}
		as := cn.NewUserSpace("client-app")
		buf, _ := as.Mmap(msgSize, "buf")
		payload := make([]byte, msgSize)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		t0 := p.Now()
		for i := 0; i < messages; i++ {
			as.WriteBytes(buf, payload)
			if _, err := conn.Send(p, as, buf, msgSize); err != nil {
				log.Fatal(err)
			}
			if _, err := sockets.RecvAll(p, conn, as, buf, msgSize); err != nil {
				log.Fatal(err)
			}
			got, _ := as.ReadBytes(buf, msgSize)
			for j := range got {
				if got[j] != payload[j] {
					log.Fatalf("%s: byte %d corrupted", family, j)
				}
			}
		}
		elapsed = p.Now() - t0
		conn.Close(p)
	})
	s.Run()
	total := float64(2 * messages * msgSize)
	return elapsed, total / elapsed.Seconds() / 1e6
}

func main() {
	fmt.Printf("echoing %d × %d KB over each socket stack (PCI-XE / GigE):\n\n", messages, msgSize/1024)
	for _, family := range []string{"sockets-mx", "sockets-gm", "tcp"} {
		elapsed, mbps := runEcho(family)
		fmt.Printf("  %-12s %10v   %8.1f MB/s\n", family, elapsed, mbps)
	}
	fmt.Println("\npaper (§5.3): SOCKETS-MX ≈5µs latency and near-link bandwidth;")
	fmt.Println("SOCKETS-GM ≈15µs and <70% of the link; TCP/GigE far behind both.")
}
