// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Each benchmark runs the corresponding experiment b.N times and
// reports the figure's headline quantities as custom metrics, so
// `go test -bench=.` doubles as the reproduction harness:
//
//	go test -bench=Fig5a -benchmem
//
// The simulations run in virtual time; ns/op measures host cost of the
// simulation, while the reported µs / MB/s metrics are the simulated
// results that correspond to the paper's plots.
package knapi

import (
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/netpipe"
)

// benchConfig keeps benchmark iterations modest; the shapes are
// deterministic, so few round trips suffice.
func benchConfig() figures.Config { return figures.Config{Iters: 6, Warmup: 1} }

// run executes one figure experiment per b.N iteration and reports the
// requested points as metrics.
func runFigure(b *testing.B, fn func() (*figures.Figure, error), metrics func(b *testing.B, f *figures.Figure)) {
	b.Helper()
	var f *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	if f != nil {
		metrics(b, f)
	}
}

// at returns the point of a series with the given size (or zero).
func at(s netpipe.Series, size int) netpipe.Point {
	for _, pt := range s.Points {
		if pt.Size == size {
			return pt
		}
	}
	return netpipe.Point{}
}

func usOf(pt netpipe.Point) float64 { return float64(pt.OneWay.Nanoseconds()) / 1000 }

// BenchmarkFig1b — Figure 1(b): copy vs registration/deregistration
// overhead.
func BenchmarkFig1b(b *testing.B) {
	runFigure(b, benchConfig().Fig1b, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(usOf(at(f.Series[2], 65536)), "reg-64KB-µs")
		b.ReportMetric(usOf(at(f.Series[3], 65536)), "dereg-64KB-µs")
		b.ReportMetric(usOf(at(f.Series[1], 65536)), "copyP4-64KB-µs")
	})
}

// BenchmarkFig3b — Figure 3(b): ORFS direct access and the
// registration cache.
func BenchmarkFig3b(b *testing.B) {
	runFigure(b, benchConfig().Fig3b, func(b *testing.B, f *figures.Figure) {
		const n = 65536
		b.ReportMetric(at(f.Series[1], n).MBps, "ORFA-cache-MB/s")
		b.ReportMetric(at(f.Series[2], n).MBps, "ORFS-cache-MB/s")
		b.ReportMetric(at(f.Series[3], n).MBps, "ORFS-nocache-MB/s")
	})
}

// BenchmarkFig4a — Figure 4(a): registered-virtual vs physical
// addressing latency in the kernel.
func BenchmarkFig4a(b *testing.B) {
	runFigure(b, benchConfig().Fig4a, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(usOf(at(f.Series[0], 1024)), "virt-1KB-µs")
		b.ReportMetric(usOf(at(f.Series[1], 1024)), "phys-1KB-µs")
	})
}

// BenchmarkFig4b — Figure 4(b): ORFS/GM direct vs buffered access.
func BenchmarkFig4b(b *testing.B) {
	runFigure(b, benchConfig().Fig4b, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(at(f.Series[0], 4096).MBps, "direct-4KB-MB/s")
		b.ReportMetric(at(f.Series[1], 4096).MBps, "buffered-4KB-MB/s")
		b.ReportMetric(at(f.Series[0], 1<<20).MBps, "direct-1MB-MB/s")
		b.ReportMetric(at(f.Series[1], 1<<20).MBps, "buffered-1MB-MB/s")
	})
}

// BenchmarkFig5a — Figure 5(a): GM vs MX latency, user vs kernel.
func BenchmarkFig5a(b *testing.B) {
	runFigure(b, benchConfig().Fig5a, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(usOf(at(f.Series[0], 1)), "GM-user-µs")
		b.ReportMetric(usOf(at(f.Series[1], 1)), "GM-kernel-µs")
		b.ReportMetric(usOf(at(f.Series[2], 1)), "MX-user-µs")
		b.ReportMetric(usOf(at(f.Series[3], 1)), "MX-kernel-µs")
	})
}

// BenchmarkFig5b — Figure 5(b): GM vs MX bandwidth.
func BenchmarkFig5b(b *testing.B) {
	runFigure(b, benchConfig().Fig5b, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(at(f.Series[0], 1<<20).MBps, "GM-1MB-MB/s")
		b.ReportMetric(at(f.Series[1], 1<<20).MBps, "MXuser-1MB-MB/s")
		b.ReportMetric(at(f.Series[2], 1<<20).MBps, "MXkphys-1MB-MB/s")
	})
}

// BenchmarkFig6 — Figure 6: medium-message copy removal.
func BenchmarkFig6(b *testing.B) {
	runFigure(b, benchConfig().Fig6, func(b *testing.B, f *figures.Figure) {
		std := at(f.Series[1], 32768).MBps
		nsc := at(f.Series[2], 32768).MBps
		ncp := at(f.Series[3], 32768).MBps
		b.ReportMetric(std, "std-32KB-MB/s")
		b.ReportMetric(nsc, "nosend-32KB-MB/s")
		b.ReportMetric(ncp, "nocopy-32KB-MB/s")
		b.ReportMetric((nsc-std)/std*100, "nosend-gain-%")
		b.ReportMetric((ncp-nsc)/nsc*100, "norecv-extra-%")
	})
}

// BenchmarkFig7a — Figure 7(a): ORFS direct access, GM vs MX.
func BenchmarkFig7a(b *testing.B) {
	runFigure(b, benchConfig().Fig7a, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(at(f.Series[1], 1<<20).MBps, "ORFS-GM-1MB-MB/s")
		b.ReportMetric(at(f.Series[3], 1<<20).MBps, "ORFS-MX-1MB-MB/s")
	})
}

// BenchmarkFig7b — Figure 7(b): ORFS buffered access, GM vs MX.
func BenchmarkFig7b(b *testing.B) {
	runFigure(b, benchConfig().Fig7b, func(b *testing.B, f *figures.Figure) {
		gm := at(f.Series[1], 1<<20).MBps
		mx := at(f.Series[3], 1<<20).MBps
		b.ReportMetric(gm, "ORFS-GM-MB/s")
		b.ReportMetric(mx, "ORFS-MX-MB/s")
		b.ReportMetric((mx-gm)/gm*100, "MX-gain-%")
	})
}

// BenchmarkFig8a — Figure 8(a): SOCKETS-MX vs SOCKETS-GM latency.
func BenchmarkFig8a(b *testing.B) {
	runFigure(b, benchConfig().Fig8a, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(usOf(at(f.Series[0], 1)), "SockGM-µs")
		b.ReportMetric(usOf(at(f.Series[1], 1)), "SockMX-µs")
	})
}

// BenchmarkFig8b — Figure 8(b): SOCKETS-MX vs SOCKETS-GM bandwidth.
func BenchmarkFig8b(b *testing.B) {
	runFigure(b, benchConfig().Fig8b, func(b *testing.B, f *figures.Figure) {
		gm4 := at(f.Series[0], 4096).MBps
		mx4 := at(f.Series[1], 4096).MBps
		gm1M := at(f.Series[0], 1<<20).MBps
		mx1M := at(f.Series[1], 1<<20).MBps
		b.ReportMetric(gm4, "SockGM-4KB-MB/s")
		b.ReportMetric(mx4, "SockMX-4KB-MB/s")
		b.ReportMetric(gm1M, "SockGM-1MB-MB/s")
		b.ReportMetric(mx1M, "SockMX-1MB-MB/s")
	})
}

// BenchmarkTable1 — Table 1: the summary comparison.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig()
	var tab *figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = cfg.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	if tab != nil {
		b.Logf("\n%s", tab.Render())
	}
}

// BenchmarkSmallFile — the PR6 layout suite: small-file storm ops/s
// under the striped vs whole-on-home policies (see DESIGN.md §10 and
// the smallfile figures in EXPERIMENTS.md).
func BenchmarkSmallFile(b *testing.B) {
	var figs []*figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = benchConfig().SmallFile()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) == 0 {
		return
	}
	ops := figs[0]
	for _, s := range ops.Series {
		b.ReportMetric(at(s, 4).MBps, s.Label+"-4srv-ops/s")
		b.ReportMetric(at(s, 8).MBps, s.Label+"-8srv-ops/s")
	}
	for _, s := range figs[1].Series {
		if s.Label == "whole-on-home" {
			b.ReportMetric(at(s, 8).MBps, "whole-setsize/write")
		}
	}
}

// BenchmarkMetadataStorm — the PR7 sharded-namespace suite: aggregate
// namespace ops/s of the create/unlink, readdir and rename storms
// under the replicated fan-out vs the directory-owned sharded
// namespace (see DESIGN.md §11 and the metadata figure in
// EXPERIMENTS.md).
func BenchmarkMetadataStorm(b *testing.B) {
	var figs []*figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = benchConfig().Metadata()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) == 0 {
		return
	}
	for _, s := range figs[0].Series {
		label := strings.ReplaceAll(s.Label, " ", "-")
		b.ReportMetric(at(s, 1).MBps, label+"-1srv-ops/s")
		b.ReportMetric(at(s, 8).MBps, label+"-8srv-ops/s")
	}
}

// BenchmarkSizePublishAllocs — heap allocations per extending write on
// the batched size-publish path (alloc_gate_test.go pins its ceiling).
func BenchmarkSizePublishAllocs(b *testing.B) {
	var perOp float64
	var err error
	for i := 0; i < b.N; i++ {
		perOp, err = figures.SizePublishAllocs(256)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perOp, "pub-allocs/op")
}

// BenchmarkRequestPathAllocs — heap allocations per client-observed
// cluster operation on the MX request path (the PR6 zero-alloc pass's
// headline number; alloc_gate_test.go pins its ceiling).
func BenchmarkRequestPathAllocs(b *testing.B) {
	var perOp float64
	var err error
	for i := 0; i < b.N; i++ {
		perOp, err = figures.RequestPathAllocs(256)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Not the builtin "allocs/op" (only shown under -benchmem): this is
	// the per-cluster-operation count measured inside the simulation.
	b.ReportMetric(perOp, "req-allocs/op")
}

// BenchmarkAblationCombining — the paper's §3.3 prediction: request
// combining (Linux 2.6 style, enabled by vectorial primitives) lifts
// the buffered-access ceiling.
func BenchmarkAblationCombining(b *testing.B) {
	runFigure(b, benchConfig().AblationCombining, func(b *testing.B, f *figures.Figure) {
		b.ReportMetric(f.Series[0].Points[0].MBps, "combine1-MB/s")
		b.ReportMetric(f.Series[3].Points[0].MBps, "combine8-MB/s")
		b.ReportMetric(f.Series[len(f.Series)-1].Points[0].MBps, "direct-MB/s")
	})
}

// BenchmarkAblationPhysicalAPI — what the §3.3 GM physical-address
// extension buys over stock GM for buffered access.
func BenchmarkAblationPhysicalAPI(b *testing.B) {
	runFigure(b, benchConfig().AblationPhysicalAPI, func(b *testing.B, f *figures.Figure) {
		last := len(f.Series[0].Points) - 1
		b.ReportMetric(f.Series[0].Points[last].MBps, "physAPI-MB/s")
		b.ReportMetric(f.Series[1].Points[last].MBps, "stockGM-MB/s")
	})
}

// BenchmarkScalability — the sliding-window suite: aggregate
// throughput and p50/p99 latency against the session window and the
// client count, for ORFS-direct, ORFS-buffered and NBD (all beyond
// the paper: its prototypes allow one outstanding request).
func BenchmarkScalability(b *testing.B) {
	var figs []*figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = benchConfig().Scalability()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(figs) == 0 {
		return
	}
	winBW := figs[0]
	for _, s := range winBW.Series {
		if s.Label != "orfs-direct" {
			continue
		}
		b.ReportMetric(at(s, 1).MBps, "direct-w1-MB/s")
		b.ReportMetric(at(s, 8).MBps, "direct-w8-MB/s")
		b.ReportMetric(at(s, 32).MBps, "direct-w32-MB/s")
	}
	cliBW := figs[2]
	for _, s := range cliBW.Series {
		if s.Label == "orfs-direct" {
			b.ReportMetric(at(s, 8).MBps, "direct-8cli-MB/s")
		}
	}
}
