//go:build !race

// Allocation regression gates for the data-path hot loops. The PR6
// zero-alloc pass cut the simulator's per-request heap traffic (87
// allocs per cluster op, down from 287; Fig 5a generation from 27.3k
// to 17.6k allocs, Fig 5b from 128k to 40.8k); these tests pin
// ceilings ~25% above the measured numbers so a future change that
// reintroduces per-request allocation fails loudly instead of slowly
// rotting the benchmarks. Excluded under the race detector, whose
// instrumentation changes allocation counts.
package knapi

import (
	"runtime"
	"testing"

	"repro/internal/figures"
)

// Measured on the PR6 branch (go1.24, linux/amd64); ceilings leave
// ~25% headroom for toolchain drift. Lower them when a future pass
// cuts allocations further.
const (
	maxRequestPathAllocsPerOp = 110   // measured 87.0
	maxFig5aAllocs            = 22000 // measured 17620
	maxFig5bAllocs            = 51000 // measured 40795
	maxSizePublishAllocsPerOp = 88    // measured 70.0 (PR 7)
)

// figAllocs generates the figure twice — once to warm lazy caches and
// pools, once measured — and returns the malloc count of the second
// run. The simulations are deterministic, so the count is stable to
// within a handful of allocations.
func figAllocs(t *testing.T, fn func() (*figures.Figure, error)) float64 {
	t.Helper()
	if _, err := fn(); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := fn(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs)
}

// TestAllocGateRequestPath gates heap allocations per client-observed
// operation on the cluster's MX request path (session issue, server
// dispatch/reply, NIC and channel machinery).
func TestAllocGateRequestPath(t *testing.T) {
	perOp, err := figures.RequestPathAllocs(256)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("request path: %.2f allocs/op (ceiling %d)", perOp, maxRequestPathAllocsPerOp)
	if perOp > maxRequestPathAllocsPerOp {
		t.Errorf("request path allocates %.2f/op, above the %d ceiling — a hot-path allocation crept back in",
			perOp, maxRequestPathAllocsPerOp)
	}
}

// TestAllocGateSizePublish gates heap allocations per extending write
// on the batched size-publish path (PR 7): the write plus the amortized
// share of the coalesced flush must stay below the plain request path,
// not regrow per-write reconciliation garbage.
func TestAllocGateSizePublish(t *testing.T) {
	perOp, err := figures.SizePublishAllocs(256)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batched size publish: %.2f allocs/op (ceiling %d)", perOp, maxSizePublishAllocsPerOp)
	if perOp > maxSizePublishAllocsPerOp {
		t.Errorf("batched size-publish path allocates %.2f/op, above the %d ceiling — per-write garbage crept back into the coalescing queue",
			perOp, maxSizePublishAllocsPerOp)
	}
}

// TestAllocGateFig5a gates the latency figure's simulation hot path.
func TestAllocGateFig5a(t *testing.T) {
	cfg := figures.Config{Iters: 6, Warmup: 1} // bench_test.go's benchConfig
	n := figAllocs(t, cfg.Fig5a)
	t.Logf("Fig5a generation: %.0f allocs (ceiling %d)", n, maxFig5aAllocs)
	if n > maxFig5aAllocs {
		t.Errorf("Fig5a generation allocates %.0f, above the %d ceiling", n, maxFig5aAllocs)
	}
}

// TestAllocGateFig5b gates the bandwidth figure's simulation hot path
// (large transfers: the fragmentation and gather loops).
func TestAllocGateFig5b(t *testing.T) {
	cfg := figures.Config{Iters: 6, Warmup: 1}
	n := figAllocs(t, cfg.Fig5b)
	t.Logf("Fig5b generation: %.0f allocs (ceiling %d)", n, maxFig5bAllocs)
	if n > maxFig5bAllocs {
		t.Errorf("Fig5b generation allocates %.0f, above the %d ceiling", n, maxFig5bAllocs)
	}
}
