package sockets

// This file is SOCKETS-MX: the stream stack over MX endpoints, whose
// rendezvous transfers lift large-message bandwidth (Fig 8(b)).
import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Match-information layout for the MX stack: channel in the low 8
// bits, destination connection ID above.
const (
	chCtl  uint64 = 1 // SYN / SYN-ACK / FIN
	chData uint64 = 2
)

func mxMatch(conn uint32, ch uint64) uint64 { return uint64(conn)<<8 | ch }

// control message kinds.
const (
	ctlSYN uint8 = iota + 1
	ctlSYNACK
	ctlFIN
)

// overflowSize bounds how much a single inbound message may exceed the
// posted user buffer; the excess lands in a kernel overflow buffer and
// is drained by later Recv calls.
const overflowSize = 1 << 20

// MXStack is the SOCKETS-MX provider for one node.
type MXStack struct {
	node *hw.Node
	p    *hw.Params
	ep   *mx.Endpoint

	conns     map[uint32]*mxConn
	nextConn  uint32
	listeners map[Port]*mxListener
	dials     map[uint32]*mxConn // awaiting SYN-ACK

	ctl   *fabric.Buffer // control send buffer, owned for the stack's lifetime
	ctlVA vm.VirtAddr
}

// NewMXStack attaches a SOCKETS-MX stack to a node, using MX kernel
// endpoint epID.
func NewMXStack(m *mx.MX, epID uint8) (*MXStack, error) {
	ep, err := m.OpenEndpoint(epID, true)
	if err != nil {
		return nil, err
	}
	s := &MXStack{
		node:      m.Node(),
		p:         m.Node().Cluster.Params,
		ep:        ep,
		conns:     make(map[uint32]*mxConn),
		nextConn:  1,
		listeners: make(map[Port]*mxListener),
		dials:     make(map[uint32]*mxConn),
	}
	ctl, err := fabric.PoolOf(s.node).Get(256)
	if err != nil {
		return nil, err
	}
	s.ctl, s.ctlVA = ctl, ctl.VA()
	s.node.Cluster.Env.Spawn(s.node.Name+"-sockmx-ctl", s.ctlPump)
	return s, nil
}

type mxListener struct {
	stack   *MXStack
	port    Port
	backlog *sim.Chan[*mxConn]
}

// Accept implements Listener.
func (l *mxListener) Accept(p *sim.Proc) (Conn, error) {
	return l.backlog.Recv(p), nil
}

// mxConn is one SOCKETS-MX connection endpoint.
type mxConn struct {
	stack    *MXStack
	localID  uint32
	peerID   uint32
	peerNode hw.NodeID
	peerEP   uint8

	established *sim.Signal
	buffered    []byte // overflow bytes awaiting Recv
	eof         bool
	eofNotify   *sim.Signal // fires on FIN so blocked Recv can return
	closed      bool

	overflowVA  vm.VirtAddr
	overflowBuf *fabric.Buffer

	// pendingRecv, when non-nil, is the in-flight posted receive (one
	// at a time: blocking stream semantics).
	Tx, Rx sim.Counter
}

// Listen implements Stack.
func (s *MXStack) Listen(port Port) (Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("sockets: port %d already listening", port)
	}
	l := &mxListener{stack: s, port: port, backlog: sim.NewChan[*mxConn](s.node.Cluster.Env)}
	s.listeners[port] = l
	return l, nil
}

func (s *MXStack) newConn(peerNode hw.NodeID, peerEP uint8) (*mxConn, error) {
	c := &mxConn{
		stack:       s,
		localID:     s.nextConn,
		peerNode:    peerNode,
		peerEP:      peerEP,
		established: sim.NewSignal(s.node.Cluster.Env),
		eofNotify:   sim.NewSignal(s.node.Cluster.Env),
	}
	s.nextConn++
	// The per-connection overflow buffer (1 MB) is the expensive part
	// of a SOCKETS-MX connection; pooling it makes dial/close cycles
	// cheap.
	overflow, err := fabric.PoolOf(s.node).Get(overflowSize)
	if err != nil {
		return nil, err
	}
	c.overflowBuf = overflow
	c.overflowVA = overflow.VA()
	s.conns[c.localID] = c
	return c, nil
}

// Dial implements Stack.
func (s *MXStack) Dial(p *sim.Proc, peerNode int, port Port) (Conn, error) {
	s.node.CPU.Syscall(p)
	c, err := s.newConn(hw.NodeID(peerNode), s.ep.ID())
	if err != nil {
		return nil, err
	}
	s.dials[c.localID] = c
	s.sendCtl(p, hw.NodeID(peerNode), s.ep.ID(), 0, ctlSYN, c.localID, uint32(port))
	if !c.established.WaitTimeout(p, 10*sim.Time(1e6)) {
		return nil, ErrRefused
	}
	return c, nil
}

// sendCtl transmits a small control message.
func (s *MXStack) sendCtl(p *sim.Proc, dst hw.NodeID, dstEP uint8, dstConn uint32, kind uint8, a, b uint32) {
	buf := make([]byte, 9)
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:], a)
	binary.LittleEndian.PutUint32(buf[5:], b)
	s.node.Kernel.WriteBytes(s.ctlVA, buf)
	req, err := s.ep.Send(p, dst, dstEP, mxMatch(dstConn, chCtl),
		core.Of(core.KernelSeg(s.node.Kernel, s.ctlVA, len(buf))))
	if err != nil {
		panic(err)
	}
	req.Wait(p)
}

// ctlPump handles SYN/SYN-ACK/FIN for the whole stack.
func (s *MXStack) ctlPump(p *sim.Proc) {
	kern := s.node.Kernel
	buf, err := fabric.PoolOf(s.node).Get(256)
	if err != nil {
		panic(err)
	}
	bufVA := buf.VA()
	anyCtl := core.Match{Bits: chCtl, Mask: 0xff}
	for {
		req, err := s.ep.Recv(p, anyCtl, core.Of(core.KernelSeg(kern, bufVA, 256)))
		if err != nil {
			panic(err)
		}
		st := req.Wait(p)
		raw, _ := kern.ReadBytes(bufVA, st.Len)
		if len(raw) < 9 {
			continue
		}
		kind := raw[0]
		a := binary.LittleEndian.Uint32(raw[1:])
		b := binary.LittleEndian.Uint32(raw[5:])
		switch kind {
		case ctlSYN: // a = dialer's conn ID, b = port
			l := s.listeners[Port(b)]
			if l == nil {
				continue // refused: dialer times out
			}
			c, err := s.newConn(st.Src, 0 /* set below */)
			if err != nil {
				continue
			}
			c.peerEP = s.peerEPOf(st)
			c.peerID = a
			c.established.Fire()
			s.sendCtl(p, st.Src, c.peerEP, a, ctlSYNACK, c.localID, 0)
			l.backlog.Send(c)
		case ctlSYNACK: // addressed conn = dials entry; a = acceptor's conn ID
			conn := uint32(st.Info >> 8)
			c := s.dials[conn]
			if c == nil {
				continue
			}
			delete(s.dials, conn)
			c.peerID = a
			c.peerEP = s.peerEPOf(st)
			c.established.Fire()
		case ctlFIN:
			conn := uint32(st.Info >> 8)
			if c := s.conns[conn]; c != nil {
				c.eof = true
				c.eofNotify.Fire()
			}
		}
	}
}

// peerEPOf recovers the sender's endpoint id. Both stacks use the same
// endpoint number convention; SOCKETS-MX deployments use one endpoint
// per node, so the peer's endpoint equals ours.
func (s *MXStack) peerEPOf(st mx.Status) uint8 { return s.ep.ID() }

// Send implements Conn: a system call, the thin SOCKETS-MX protocol
// layer, then a native MX send of the user buffer itself.
func (c *mxConn) Send(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	s := c.stack
	s.node.CPU.Syscall(p)
	s.node.CPU.Compute(p, s.p.SockMXOverhead)
	req, err := s.ep.Send(p, c.peerNode, c.peerEP, mxMatch(c.peerID, chData),
		core.Of(core.UserSeg(as, va, n)))
	if err != nil {
		return 0, err
	}
	st := req.Wait(p)
	c.Tx.Add(n)
	return st.Len, st.Err
}

// Recv implements Conn: drain buffered overflow first; otherwise post
// a vectorial [user | kernel-overflow] receive so stream bytes land
// directly in the application buffer (MX's vectorial primitives are
// what make this possible — §4.1).
func (c *mxConn) Recv(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	s := c.stack
	// Pin the overflow buffer before any charge can park this proc: a
	// concurrent Close must not recycle it once we are committed to
	// posting a receive over it.
	c.overflowBuf.Pin()
	defer c.overflowBuf.Unpin()
	s.node.CPU.Syscall(p)
	s.node.CPU.Compute(p, s.p.SockMXOverhead)
	if len(c.buffered) > 0 {
		take := n
		if take > len(c.buffered) {
			take = len(c.buffered)
		}
		s.node.CPU.Copy(p, take)
		if err := as.WriteBytes(va, c.buffered[:take]); err != nil {
			return 0, err
		}
		c.buffered = c.buffered[take:]
		c.Rx.Add(take)
		return take, nil
	}
	if c.eof {
		return 0, nil
	}
	req, err := s.ep.Recv(p, core.Exact(mxMatch(c.localID, chData)), core.Vector{
		core.UserSeg(as, va, n),
		core.KernelSeg(s.node.Kernel, c.overflowVA, overflowSize),
	})
	if err != nil {
		return 0, err
	}
	// Block until data or FIN.
	for !req.Done() && !c.eof {
		if st, ok := req.WaitTimeout(p, sim.Time(1e5)); ok {
			return c.finishRecv(p, st, n)
		}
	}
	if req.Done() {
		st, _ := req.WaitTimeout(p, 0)
		return c.finishRecv(p, st, n)
	}
	// EOF raced the receive. Withdraw the posted receive so it can
	// never scatter into the overflow buffer after the connection
	// releases it — the one-buffer leak Poison used to paper over.
	if s.ep.CancelRecv(p, req) {
		return 0, nil
	}
	// The receive matched concurrently (e.g. a rendezvous whose data
	// is still in flight): completion is bounded, so consume it and
	// deliver the data rather than dropping it at EOF.
	st := req.Wait(p)
	return c.finishRecv(p, st, n)
}

func (c *mxConn) finishRecv(p *sim.Proc, st mx.Status, n int) (int, error) {
	if st.Err != nil {
		return 0, st.Err
	}
	got := st.Len
	if got > n {
		// Overflow bytes went to the kernel buffer; stage them.
		extra := got - n
		raw, err := c.stack.node.Kernel.ReadBytes(c.overflowVA, extra)
		if err != nil {
			return 0, err
		}
		c.buffered = append(c.buffered, raw...)
		got = n
	}
	c.Rx.Add(got)
	return got, nil
}

// Close implements Conn.
func (c *mxConn) Close(p *sim.Proc) error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.stack.node.CPU.Syscall(p)
	c.stack.sendCtl(p, c.peerNode, c.peerEP, c.peerID, ctlFIN, 0, 0)
	delete(c.stack.conns, c.localID)
	// Hand the 1 MB overflow buffer back; the pool defers recycling
	// until an in-flight Recv unpins, and an EOF-raced posted receive
	// has poisoned it for good (connection IDs are never reused, so it
	// is otherwise quiescent).
	c.overflowBuf.Release()
	return nil
}

var _ Stack = (*MXStack)(nil)
