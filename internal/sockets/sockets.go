// Package sockets implements the zero-copy socket protocols of the
// paper's §5.3: SOCKETS-MX and SOCKETS-GM, which let unmodified
// socket-using applications run over Myrinet by adding a kernel socket
// protocol that bypasses TCP/IP — plus a TCP/IP-over-Gigabit-Ethernet
// cost model as the baseline the paper alludes to ("a common
// GIGA-ETHERNET network might get much more [latency]").
//
// The two Myrinet stacks expose the same blocking stream API and
// differ exactly where the paper says they do:
//
//   - SOCKETS-MX is a thin layer: a send is a system call plus an MX
//     kernel-endpoint send of the user buffer itself (MX's internal
//     small/medium/rendezvous machinery does the rest); a receive
//     posts a vectorial [user-buffer | kernel-overflow] receive, so
//     in-order stream bytes land directly in the application (measured
//     1 µs over raw MX → 5 µs one-way).
//   - SOCKETS-GM cannot do any of that: GM has no vectors and requires
//     registration, so both directions bounce through kernel staging
//     buffers with a copy, and its "limited completion notification
//     mechanisms" force an extra dispatching kernel thread into every
//     blocking wait (measured 15 µs one-way, bandwidth capped below
//     ~70 % of the link).
package sockets

import (
	"errors"

	"repro/internal/sim"
	"repro/internal/vm"
)

// Port is a listening port number.
type Port uint16

// Conn is one side of an established stream connection. All methods
// model blocking socket calls issued by an application thread.
type Conn interface {
	// Send writes n bytes from [va, va+n) of the caller's address
	// space to the stream. It returns when the buffer is reusable.
	Send(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error)
	// Recv reads up to n bytes into [va, va+n), blocking until at
	// least one byte (or EOF: 0, ErrClosed) is available.
	Recv(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error)
	// Close shuts down the connection (EOF at the peer).
	Close(p *sim.Proc) error
}

// Listener accepts inbound connections on a port.
type Listener interface {
	Accept(p *sim.Proc) (Conn, error)
}

// Stack is a per-node socket provider.
type Stack interface {
	Listen(port Port) (Listener, error)
	Dial(p *sim.Proc, peerNode int, port Port) (Conn, error)
}

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("sockets: connection closed")

// ErrRefused is returned when no listener is present.
var ErrRefused = errors.New("sockets: connection refused")

// RecvAll loops Recv until buf is full or EOF.
func RecvAll(p *sim.Proc, c Conn, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	got := 0
	for got < n {
		r, err := c.Recv(p, as, va+vm.VirtAddr(got), n-got)
		if err != nil {
			return got, err
		}
		if r == 0 {
			break
		}
		got += r
	}
	return got, nil
}
