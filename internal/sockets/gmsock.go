package sockets

// This file is SOCKETS-GM: the stream stack over GM ports, paying
// GM's registration and event-queue costs on every transfer.
import (
	"encoding/binary"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// SOCKETS-GM wire tags reuse the (conn, channel) layout of the MX
// stack; GM's extra port byte is added by the driver.
func gmTag(conn uint32, ch uint64) uint64 { return uint64(conn)<<8 | ch }

// gmChunk is the staging-buffer granularity of SOCKETS-GM: every send
// is copied into a registered kernel bounce buffer of this size and
// shipped chunk by chunk (GM offers no vectors and requires registered
// or physical memory, so the user buffer cannot be handed to the NIC
// directly without the whole GMKRC machinery — §5.3: "memory
// registration problems are similar to ORFS direct file access
// troubles").
const gmChunk = 32 * 1024

// GMStack is the SOCKETS-GM provider for one node.
type GMStack struct {
	node *hw.Node
	p    *hw.Params
	port *gm.Port

	conns     map[uint32]*gmConn
	nextConn  uint32
	listeners map[Port]*gmListener
	dials     map[uint32]*gmConn

	// The dispatching kernel thread (§5.3): all completions funnel
	// through it, adding a context switch to every blocking wait.
	waiters map[uint64]*sim.Chan[gm.Event]

	ctl   *fabric.Buffer // owned for the stack's lifetime
	ctlVA vm.VirtAddr
	ctlXS []mem.Extent
}

// NewGMStack attaches a SOCKETS-GM stack to a node on GM kernel port
// portID.
func NewGMStack(g *gm.GM, portID uint8) (*GMStack, error) {
	port, err := g.OpenPort(portID, true)
	if err != nil {
		return nil, err
	}
	s := &GMStack{
		node:      g.Node(),
		p:         g.Node().Cluster.Params,
		port:      port,
		conns:     make(map[uint32]*gmConn),
		nextConn:  1,
		listeners: make(map[Port]*gmListener),
		dials:     make(map[uint32]*gmConn),
		waiters:   make(map[uint64]*sim.Chan[gm.Event]),
	}
	ctl, err := fabric.PoolOf(s.node).Get(256)
	if err != nil {
		return nil, err
	}
	s.ctl, s.ctlVA, s.ctlXS = ctl, ctl.VA(), ctl.Extents(256)
	s.node.Cluster.Env.Spawn(s.node.Name+"-sockgm-dispatch", s.dispatcher)
	s.node.Cluster.Env.Spawn(s.node.Name+"-sockgm-ctl", s.ctlPump)
	return s, nil
}

// sendKey distinguishes send-completion waiters from receive waiters
// in the dispatcher's table.
const sendKey = uint64(1) << 63

// dispatcher is the extra kernel thread GM's completion model forces
// (§5.3): it blocks on the port's unique event queue and hands each
// completion to whichever socket operation is waiting for it. The
// thread's sleep/wake cost (charged inside gm.Port.WaitEvent) is what
// lifts SOCKETS-GM's one-way latency to ~15 µs.
func (s *GMStack) dispatcher(p *sim.Proc) {
	for {
		ev := s.port.WaitEvent(p)
		var key uint64
		switch ev.Type {
		case gm.RecvComplete:
			key = ev.Tag
		case gm.SendComplete:
			key = ev.Tag | sendKey
		default:
			continue
		}
		if w := s.waiters[key]; w != nil {
			delete(s.waiters, key)
			w.Send(ev)
		}
		// Unclaimed completions (e.g. a FIN racing a close) are dropped.
	}
}

// reserve registers interest in a completion before the operation that
// produces it is issued (the dispatcher drops unclaimed completions).
func (s *GMStack) reserve(key uint64) *sim.Chan[gm.Event] {
	ch := sim.NewChan[gm.Event](s.node.Cluster.Env)
	s.waiters[key] = ch
	return ch
}

type gmListener struct {
	stack   *GMStack
	port    Port
	backlog *sim.Chan[*gmConn]
}

// Accept implements Listener.
func (l *gmListener) Accept(p *sim.Proc) (Conn, error) {
	return l.backlog.Recv(p), nil
}

// gmConn is one SOCKETS-GM connection endpoint.
type gmConn struct {
	stack    *GMStack
	localID  uint32
	peerID   uint32
	peerNode hw.NodeID

	established *sim.Signal
	buffered    []byte
	eof         bool
	closed      bool
	seq         uint64 // per-conn data sequence (tags successive chunks)
	rseq        uint64
	pendingTag  uint64 // tag of an in-flight Recv (for FIN unblocking)

	txVA, rxVA   vm.VirtAddr
	txXS, rxXS   []mem.Extent
	txBuf, rxBuf *fabric.Buffer

	Tx, Rx sim.Counter
}

// Listen implements Stack.
func (s *GMStack) Listen(port Port) (Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("sockets: port %d already listening", port)
	}
	l := &gmListener{stack: s, port: port, backlog: sim.NewChan[*gmConn](s.node.Cluster.Env)}
	s.listeners[port] = l
	return l, nil
}

func (s *GMStack) newConn(peerNode hw.NodeID) (*gmConn, error) {
	c := &gmConn{
		stack:       s,
		localID:     s.nextConn,
		peerNode:    peerNode,
		established: sim.NewSignal(s.node.Cluster.Env),
	}
	s.nextConn++
	// Per-connection bounce buffers come from the node's shared fabric
	// pool: closed connections' buffers are recycled across every
	// consumer on the node instead of leaking one mapping per dial.
	pool := fabric.PoolOf(s.node)
	tx, err := pool.Get(gmChunk)
	if err != nil {
		return nil, err
	}
	rx, err := pool.Get(gmChunk)
	if err != nil {
		tx.Release()
		return nil, err
	}
	c.txBuf, c.rxBuf = tx, rx
	c.txVA, c.txXS = tx.VA(), tx.Extents(gmChunk)
	c.rxVA, c.rxXS = rx.VA(), rx.Extents(gmChunk)
	s.conns[c.localID] = c
	return c, nil
}

// Dial implements Stack.
func (s *GMStack) Dial(p *sim.Proc, peerNode int, port Port) (Conn, error) {
	s.node.CPU.Syscall(p)
	c, err := s.newConn(hw.NodeID(peerNode))
	if err != nil {
		return nil, err
	}
	s.dials[c.localID] = c
	s.sendCtl(p, hw.NodeID(peerNode), ctlSYN, c.localID, uint32(port))
	if !c.established.WaitTimeout(p, 10*sim.Time(1e6)) {
		return nil, ErrRefused
	}
	return c, nil
}

// sendCtl transmits a control message. All control traffic shares one
// GM tag (GM matches by exact tag, so per-connection control tags
// would need per-connection posted receives); the target connection
// rides in the payload.
func (s *GMStack) sendCtl(p *sim.Proc, dst hw.NodeID, kind uint8, a, b uint32) {
	buf := make([]byte, 9)
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:], a)
	binary.LittleEndian.PutUint32(buf[5:], b)
	s.node.Kernel.WriteBytes(s.ctlVA, buf)
	xs := []mem.Extent{{Addr: s.ctlXS[0].Addr, Len: len(buf)}}
	if err := s.port.SendPhysical(p, dst, s.port.ID(), chCtl, xs); err != nil {
		panic(err)
	}
}

// ctlPump keeps a control receive posted and handles connection
// management events handed over by the dispatcher.
func (s *GMStack) ctlPump(p *sim.Proc) {
	kern := s.node.Kernel
	buf, err := fabric.PoolOf(s.node).Get(256)
	if err != nil {
		panic(err)
	}
	bufVA, bufXS := buf.VA(), buf.Extents(256)
	for {
		ch := s.reserve(chCtl)
		if err := s.port.PostRecvPhysical(p, chCtl, bufXS); err != nil {
			panic(err)
		}
		ev := ch.Recv(p)
		raw, _ := kern.ReadBytes(bufVA, ev.Len)
		if len(raw) < 9 {
			continue
		}
		kind := raw[0]
		a := binary.LittleEndian.Uint32(raw[1:])
		b := binary.LittleEndian.Uint32(raw[5:])
		switch kind {
		case ctlSYN:
			l := s.listeners[Port(b)]
			if l == nil {
				continue
			}
			c, err := s.newConn(ev.Src)
			if err != nil {
				continue
			}
			c.peerID = a
			c.established.Fire()
			s.sendCtl(p, ev.Src, ctlSYNACK, c.localID, a)
			l.backlog.Send(c)
		case ctlSYNACK: // a = acceptor conn, b = our dialing conn
			c := s.dials[b]
			if c == nil {
				continue
			}
			delete(s.dials, b)
			c.peerID = a
			c.established.Fire()
		case ctlFIN: // a = target conn on our side
			if c := s.conns[a]; c != nil {
				c.eof = true
				if w := s.waiters[c.pendingTag]; c.pendingTag != 0 && w != nil {
					// Unblock a pending Recv with a zero-length event.
					delete(s.waiters, c.pendingTag)
					w.Send(gm.Event{Type: gm.RecvComplete, Len: 0})
				}
			}
		}
	}
}

// Send implements Conn: copy the user buffer into the registered
// kernel bounce (chunk by chunk) and ship each chunk with the
// physical-address primitives. Two copies per byte end to end — the
// §5.3 bandwidth ceiling.
func (c *gmConn) Send(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	s := c.stack
	// Pin the bounce before any charge can park this proc: a
	// concurrent Close must not recycle it once we are committed.
	c.txBuf.Pin()
	defer c.txBuf.Unpin()
	s.node.CPU.Syscall(p)
	s.node.CPU.Compute(p, s.p.SockGMOverhead)
	sent := 0
	for sent < n {
		chunk := n - sent
		if chunk > gmChunk {
			chunk = gmChunk
		}
		// Stage: user → bounce.
		data, err := as.ReadBytes(va+vm.VirtAddr(sent), chunk)
		if err != nil {
			return sent, err
		}
		s.node.CPU.Copy(p, chunk)
		if err := s.node.Kernel.WriteBytes(c.txVA, data); err != nil {
			return sent, err
		}
		xs := mem.Clip(c.txXS, chunk)
		c.seq++
		stag := gmTag(c.peerID, chData) + c.seq<<40
		done := s.reserve(stag | sendKey)
		if err := s.port.SendPhysical(p, c.peerNode, s.port.ID(), stag, xs); err != nil {
			delete(s.waiters, stag|sendKey)
			return sent, err
		}
		sent += chunk
		// The single bounce buffer cannot be rewritten until GM
		// reports the send complete — and GM completion is end-to-end
		// (ACK-based), so every chunk serializes on a full delivery: a
		// real SOCKETS-GM bandwidth limiter.
		done.Recv(p)
	}
	c.Tx.Add(n)
	return sent, nil
}

// Recv implements Conn: data lands in the registered kernel bounce and
// is copied out to the user buffer after a dispatcher hand-off.
func (c *gmConn) Recv(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	s := c.stack
	// Pin the rx bounce against a concurrent Close recycling it while
	// this Recv is parked (before the first charge can park us).
	c.rxBuf.Pin()
	defer c.rxBuf.Unpin()
	s.node.CPU.Syscall(p)
	s.node.CPU.Compute(p, s.p.SockGMOverhead)
	if len(c.buffered) > 0 {
		take := n
		if take > len(c.buffered) {
			take = len(c.buffered)
		}
		s.node.CPU.Copy(p, take)
		if err := as.WriteBytes(va, c.buffered[:take]); err != nil {
			return 0, err
		}
		c.buffered = c.buffered[take:]
		c.Rx.Add(take)
		return take, nil
	}
	if c.eof {
		return 0, nil
	}
	c.rseq++
	tag := gmTag(c.localID, chData) + c.rseq<<40
	ch := s.reserve(tag)
	c.pendingTag = tag
	if err := s.port.PostRecvPhysical(p, tag, c.rxXS); err != nil {
		delete(s.waiters, tag)
		return 0, err
	}
	ev := ch.Recv(p)
	c.pendingTag = 0
	if ev.Len == 0 {
		// FIN unblocked us with a synthetic event. Withdraw the posted
		// receive so it cannot scatter into the rx bounce after the
		// connection releases it. If the cancel misses, the receive
		// already matched — and GM scatters at match time, so the
		// bounce is already quiescent; its data is dropped at EOF
		// (the completion, if still queued, goes unclaimed like any
		// other completion racing a close).
		s.port.CancelRecv(p, tag)
		return 0, nil
	}
	// Copy bounce → user.
	got := ev.Len
	raw, err := s.node.Kernel.ReadBytes(c.rxVA, got)
	if err != nil {
		return 0, err
	}
	take := got
	if take > n {
		take = n
		c.buffered = append(c.buffered, raw[take:]...)
	}
	s.node.CPU.Copy(p, take)
	if err := as.WriteBytes(va, raw[:take]); err != nil {
		return 0, err
	}
	c.Rx.Add(take)
	return take, nil
}

// Close implements Conn.
func (c *gmConn) Close(p *sim.Proc) error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.stack.node.CPU.Syscall(p)
	c.stack.sendCtl(p, c.peerNode, ctlFIN, c.peerID, 0)
	delete(c.stack.conns, c.localID)
	// Hand both bounces back; the pool defers actual recycling until
	// in-flight operations unpin. FIN-stale posted receives were
	// withdrawn (Port.CancelRecv) when the race was detected, so both
	// buffers recycle instead of leaking.
	c.txBuf.Release()
	c.rxBuf.Release()
	return nil
}

var _ Stack = (*GMStack)(nil)
