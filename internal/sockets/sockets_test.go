package sockets

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

const us = time.Microsecond

type rig struct {
	env  *sim.Engine
	p    *hw.Params
	a, b *hw.Node
	sa   Stack
	sb   Stack
}

// newRig builds two nodes with the requested stack family on each.
func newRig(t *testing.T, family string, model hw.LinkModel) *rig {
	t.Helper()
	env := sim.NewEngine()
	p := hw.DefaultParams()
	c := hw.NewCluster(env, p, model)
	r := &rig{env: env, p: p}
	r.a, r.b = c.AddNode("a"), c.AddNode("b")
	var err error
	switch family {
	case "mx":
		if r.sa, err = NewMXStack(mx.Attach(r.a), 7); err != nil {
			t.Fatal(err)
		}
		if r.sb, err = NewMXStack(mx.Attach(r.b), 7); err != nil {
			t.Fatal(err)
		}
	case "gm":
		if r.sa, err = NewGMStack(gm.Attach(r.a), 7); err != nil {
			t.Fatal(err)
		}
		if r.sb, err = NewGMStack(gm.Attach(r.b), 7); err != nil {
			t.Fatal(err)
		}
	case "tcp":
		r.sa, r.sb = NewTCPStack(r.a), NewTCPStack(r.b)
	}
	return r
}

// echoPair establishes a connection: returns via callbacks in procs.
func (r *rig) connect(t *testing.T, serverBody func(p *sim.Proc, c Conn), clientBody func(p *sim.Proc, c Conn)) {
	t.Helper()
	finished := 0
	r.env.Spawn("server", func(p *sim.Proc) {
		l, err := r.sb.Listen(9)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		serverBody(p, c)
		finished++
	})
	r.env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(5 * us)
		c, err := r.sa.Dial(p, int(r.b.ID), 9)
		if err != nil {
			t.Error(err)
			return
		}
		clientBody(p, c)
		finished++
	})
	r.env.Run(0)
	if finished != 2 {
		t.Fatal("connection bodies did not finish (deadlock?)")
	}
}

func mkBuf(t *testing.T, n *hw.Node, size int) (*vm.AddressSpace, vm.VirtAddr) {
	t.Helper()
	as := n.NewUserSpace("app")
	va, err := as.Mmap(size, "buf")
	if err != nil {
		t.Fatal(err)
	}
	return as, va
}

func testEcho(t *testing.T, family string, n int) {
	r := newRig(t, family, hw.PCIXD)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	var got []byte
	r.connect(t,
		func(p *sim.Proc, c Conn) { // server: echo n bytes
			as, va := mkBuf(t, r.b, n+mem.PageSize)
			if _, err := RecvAll(p, c, as, va, n); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Send(p, as, va, n); err != nil {
				t.Error(err)
			}
		},
		func(p *sim.Proc, c Conn) { // client
			as, va := mkBuf(t, r.a, n+mem.PageSize)
			as.WriteBytes(va, data)
			if _, err := c.Send(p, as, va, n); err != nil {
				t.Error(err)
				return
			}
			zero := make([]byte, n)
			as.WriteBytes(va, zero)
			if _, err := RecvAll(p, c, as, va, n); err != nil {
				t.Error(err)
				return
			}
			got, _ = as.ReadBytes(va, n)
			c.Close(p)
		})
	if !bytes.Equal(got, data) {
		t.Fatalf("%s echo of %d bytes corrupted", family, n)
	}
}

func TestEchoAllFamilies(t *testing.T) {
	for _, family := range []string{"mx", "gm", "tcp"} {
		for _, n := range []int{1, 100, 4096, 40000, 200000} {
			t.Run(fmt.Sprintf("%s-%d", family, n), func(t *testing.T) { testEcho(t, family, n) })
		}
	}
}

func TestRecvSmallerThanMessage(t *testing.T) {
	// Stream semantics: a 10KB send read back in 1KB pieces.
	for _, family := range []string{"mx", "gm", "tcp"} {
		t.Run(family, func(t *testing.T) {
			r := newRig(t, family, hw.PCIXD)
			const n = 10240
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i)
			}
			var got []byte
			r.connect(t,
				func(p *sim.Proc, c Conn) {
					as, va := mkBuf(t, r.b, n)
					as.WriteBytes(va, data)
					c.Send(p, as, va, n)
				},
				func(p *sim.Proc, c Conn) {
					as, va := mkBuf(t, r.a, 1024)
					for len(got) < n {
						rn, err := c.Recv(p, as, va, 1024)
						if err != nil {
							t.Error(err)
							return
						}
						if rn == 0 {
							break
						}
						chunk, _ := as.ReadBytes(va, rn)
						got = append(got, chunk...)
					}
				})
			if !bytes.Equal(got, data) {
				t.Fatalf("fragmented recv corrupted (%d bytes)", len(got))
			}
		})
	}
}

func TestCloseGivesEOF(t *testing.T) {
	for _, family := range []string{"mx", "gm", "tcp"} {
		t.Run(family, func(t *testing.T) {
			r := newRig(t, family, hw.PCIXD)
			sawEOF := false
			r.connect(t,
				func(p *sim.Proc, c Conn) {
					as, va := mkBuf(t, r.b, 64)
					n, err := c.Recv(p, as, va, 64)
					if err == nil && n == 0 {
						sawEOF = true
					}
				},
				func(p *sim.Proc, c Conn) {
					c.Close(p)
				})
			if !sawEOF {
				t.Fatal("receiver did not observe EOF after close")
			}
		})
	}
}

func TestDialRefused(t *testing.T) {
	r := newRig(t, "mx", hw.PCIXD)
	r.env.Spawn("client", func(p *sim.Proc) {
		if _, err := r.sa.Dial(p, int(r.b.ID), 42); err == nil {
			t.Error("dial to closed port succeeded")
		}
	})
	r.env.Run(0)
}

// oneWay measures socket ping-pong one-way latency at size n on the
// PCI-XE fabric (§5.3's setup).
func oneWay(t *testing.T, family string, n, iters int) sim.Time {
	t.Helper()
	r := newRig(t, family, hw.PCIXE)
	var elapsed sim.Time
	r.connect(t,
		func(p *sim.Proc, c Conn) {
			as, va := mkBuf(t, r.b, n+mem.PageSize)
			for i := 0; i < iters; i++ {
				if _, err := RecvAll(p, c, as, va, n); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Send(p, as, va, n); err != nil {
					t.Error(err)
					return
				}
			}
		},
		func(p *sim.Proc, c Conn) {
			as, va := mkBuf(t, r.a, n+mem.PageSize)
			p.Sleep(50 * us)
			t0 := p.Now()
			for i := 0; i < iters; i++ {
				if _, err := c.Send(p, as, va, n); err != nil {
					t.Error(err)
					return
				}
				if _, err := RecvAll(p, c, as, va, n); err != nil {
					t.Error(err)
					return
				}
			}
			elapsed = p.Now() - t0
		})
	return elapsed / sim.Time(2*iters)
}

func TestSocketsMXLatencyCalibration(t *testing.T) {
	// §5.3: "a 5 µs one-way latency … with SOCKETS-MX … only a 1 µs
	// overhead over raw MX".
	lat := oneWay(t, "mx", 1, 30)
	if lat < 4500*time.Nanosecond || lat > 5800*time.Nanosecond {
		t.Errorf("SOCKETS-MX 1B one-way = %v, want ≈5µs", lat)
	}
}

func TestSocketsGMLatencyCalibration(t *testing.T) {
	// §5.3: "SOCKETS-GM gets 15 µs one-way latency".
	lat := oneWay(t, "gm", 1, 30)
	if lat < 13*us || lat > 17*us {
		t.Errorf("SOCKETS-GM 1B one-way = %v, want ≈15µs", lat)
	}
}

func TestTCPMuchSlower(t *testing.T) {
	// §5.3: "A common GIGA-ETHERNET network might get much more."
	mxLat := oneWay(t, "mx", 1, 10)
	tcpLat := oneWay(t, "tcp", 1, 10)
	if tcpLat < 4*mxLat {
		t.Errorf("TCP one-way %v not clearly worse than SOCKETS-MX %v", tcpLat, mxLat)
	}
}

func TestSocketsMXBandwidthBeatsGM(t *testing.T) {
	// Fig 8(b): SOCKETS-MX bandwidth is higher everywhere; around
	// +100 % at 4 KB and +50 % at 1 MB.
	for _, n := range []int{4096, 1 << 20} {
		iters := 10
		if n > 100000 {
			iters = 3
		}
		gmLat := oneWay(t, "gm", n, iters)
		mxLat := oneWay(t, "mx", n, iters)
		gmBW := float64(n) / gmLat.Seconds() / 1e6
		mxBW := float64(n) / mxLat.Seconds() / 1e6
		gain := (mxBW - gmBW) / gmBW
		t.Logf("n=%d: SOCKETS-GM %.1f MB/s, SOCKETS-MX %.1f MB/s (gain %.0f%%)", n, gmBW, mxBW, gain*100)
		if gain < 0.25 {
			t.Errorf("n=%d: SOCKETS-MX gain %.0f%% too small (GM %.1f, MX %.1f MB/s)", n, gain*100, gmBW, mxBW)
		}
	}
}

func TestSocketsGMBelow70PercentOfLink(t *testing.T) {
	// §5.4: SOCKETS-GM bandwidth "less than 70 % of the link capacity".
	const n = 1 << 20
	lat := oneWay(t, "gm", n, 3)
	bw := float64(n) / lat.Seconds() / 1e6
	if bw > 0.72*500 {
		t.Errorf("SOCKETS-GM 1MB bandwidth %.1f MB/s exceeds 70%% of the 500 MB/s link", bw)
	}
	if bw < 0.3*500 {
		t.Errorf("SOCKETS-GM 1MB bandwidth %.1f MB/s implausibly low", bw)
	}
}

func TestSocketsMXNearLink(t *testing.T) {
	const n = 1 << 20
	lat := oneWay(t, "mx", n, 3)
	bw := float64(n) / lat.Seconds() / 1e6
	if bw < 0.8*500 {
		t.Errorf("SOCKETS-MX 1MB bandwidth %.1f MB/s too far from the 500 MB/s link", bw)
	}
}

// Property: random message sizes streamed one way arrive intact and in
// order over both Myrinet stacks.
func TestStreamIntegrityProperty(t *testing.T) {
	for _, family := range []string{"mx", "gm"} {
		family := family
		f := func(seed int64) bool {
			ok := false
			r := newRigQuiet(family)
			rng := rand.New(rand.NewSource(seed))
			var sizes []int
			total := 0
			for i := 0; i < 6; i++ {
				n := rng.Intn(60000) + 1
				sizes = append(sizes, n)
				total += n
			}
			sent := make([]byte, total)
			rng.Read(sent)
			var got []byte
			r.env.Spawn("server", func(p *sim.Proc) {
				l, _ := r.sb.Listen(9)
				c, _ := l.Accept(p)
				as := r.b.NewUserSpace("app")
				va, _ := as.Mmap(1<<20, "buf")
				for len(got) < total {
					n, err := c.Recv(p, as, va, 1<<19)
					if err != nil || n == 0 {
						return
					}
					chunk, _ := as.ReadBytes(va, n)
					got = append(got, chunk...)
				}
				ok = bytes.Equal(got, sent)
			})
			r.env.Spawn("client", func(p *sim.Proc) {
				p.Sleep(5 * us)
				c, err := r.sa.Dial(p, int(r.b.ID), 9)
				if err != nil {
					return
				}
				as := r.a.NewUserSpace("app")
				va, _ := as.Mmap(1<<20, "buf")
				off := 0
				for _, n := range sizes {
					as.WriteBytes(va, sent[off:off+n])
					if _, err := c.Send(p, as, va, n); err != nil {
						return
					}
					off += n
				}
			})
			r.env.Run(0)
			return ok
		}
		// Fixed seed: the repo's determinism claim extends to test inputs
		// (Go >= 1.20 auto-seeds the global source otherwise).
		if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(11))}); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
	}
}

func newRigQuiet(family string) *rig {
	env := sim.NewEngine()
	p := hw.DefaultParams()
	c := hw.NewCluster(env, p, hw.PCIXD)
	r := &rig{env: env, p: p}
	r.a, r.b = c.AddNode("a"), c.AddNode("b")
	switch family {
	case "mx":
		r.sa, _ = NewMXStack(mx.Attach(r.a), 7)
		r.sb, _ = NewMXStack(mx.Attach(r.b), 7)
	case "gm":
		r.sa, _ = NewGMStack(gm.Attach(r.a), 7)
		r.sb, _ = NewGMStack(gm.Attach(r.b), 7)
	}
	return r
}

// TestCloseRaceDoesNotLeakPoolBuffers: a Recv blocked when the peer
// closes used to poison its bounce buffer (the receive posted for data
// could still scatter after release), permanently leaking one pooled
// buffer per raced connection. The drivers now cancel the stale
// posted receive, so after both ends close, the node's pool must be
// fully recyclable.
func TestCloseRaceDoesNotLeakPoolBuffers(t *testing.T) {
	for _, family := range []string{"mx", "gm"} {
		t.Run(family, func(t *testing.T) {
			r := newRig(t, family, hw.PCIXD)
			r.connect(t,
				func(p *sim.Proc, c Conn) {
					as, va := mkBuf(t, r.b, 64)
					// Blocks until the peer's FIN arrives (EOF race).
					if n, err := c.Recv(p, as, va, 64); err != nil || n != 0 {
						t.Errorf("recv: %d %v", n, err)
					}
					c.Close(p)
				},
				func(p *sim.Proc, c Conn) {
					p.Sleep(200 * us)
					c.Close(p)
				})
			for _, node := range []*hw.Node{r.a, r.b} {
				pool := fabric.PoolOf(node)
				if err := pool.CheckLeaks(); err != nil {
					t.Errorf("%s side: %v", node.Name, err)
				}
				if n := pool.Poisoned(); n != 0 {
					t.Errorf("%s side: %d poisoned buffers", node.Name, n)
				}
			}
		})
	}
}
