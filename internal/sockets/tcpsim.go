package sockets

// This file is the TCP/GigE stack: the commodity baseline the paper
// compares the Myrinet stacks against.
import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vm"
)

// TCPStack is the baseline the paper contrasts against: the standard
// socket interface over TCP/IP on Gigabit Ethernet. Rather than
// modelling the whole protocol machine, it charges the well-known
// costs: per-message stack traversal (~tens of µs of latency),
// checksum + fragmentation work proportional to the byte count
// ("TCP/IP is known to use 50 % of the overall transaction cost",
// §5.3 citing [Sum00]), a copy on each side, and 125 MB/s of wire.
type TCPStack struct {
	node *hw.Node
	p    *hw.Params

	listeners map[Port]*tcpListener
	// ethernet transmit link of this node (shared by all connections).
	link *sim.Resource
}

// tcpRegistry wires the per-node stacks of one cluster together.
type tcpRegistry struct {
	stacks map[hw.NodeID]*TCPStack
}

var tcpNets = map[*sim.Engine]*tcpRegistry{}

// NewTCPStack attaches the TCP/GigE baseline stack to a node.
func NewTCPStack(node *hw.Node) *TCPStack {
	s := &TCPStack{
		node:      node,
		p:         node.Cluster.Params,
		listeners: make(map[Port]*tcpListener),
		link:      sim.NewResource(node.Cluster.Env, node.Name+"-eth", 1),
	}
	reg := tcpNets[node.Cluster.Env]
	if reg == nil {
		reg = &tcpRegistry{stacks: make(map[hw.NodeID]*TCPStack)}
		tcpNets[node.Cluster.Env] = reg
	}
	reg.stacks[node.ID] = s
	return s
}

type tcpListener struct {
	stack   *TCPStack
	backlog *sim.Chan[*tcpConn]
}

// Accept implements Listener.
func (l *tcpListener) Accept(p *sim.Proc) (Conn, error) {
	return l.backlog.Recv(p), nil
}

// tcpConn is one connection endpoint; peers hold pointers to each
// other and exchange byte slices through a simulated wire.
type tcpConn struct {
	stack  *TCPStack
	peer   *tcpConn
	inbox  *sim.Chan[[]byte]
	buf    []byte
	eof    bool
	closed bool
}

// Listen implements Stack.
func (s *TCPStack) Listen(port Port) (Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("sockets: port %d already listening", port)
	}
	l := &tcpListener{stack: s, backlog: sim.NewChan[*tcpConn](s.node.Cluster.Env)}
	s.listeners[port] = l
	return l, nil
}

// Dial implements Stack.
func (s *TCPStack) Dial(p *sim.Proc, peerNode int, port Port) (Conn, error) {
	reg := tcpNets[s.node.Cluster.Env]
	peer := reg.stacks[hw.NodeID(peerNode)]
	if peer == nil {
		return nil, ErrRefused
	}
	l := peer.listeners[port]
	if l == nil {
		return nil, ErrRefused
	}
	s.node.CPU.Syscall(p)
	// Three-way handshake: ~1.5 RTTs of base latency.
	p.Sleep(3 * s.p.TCPLatency)
	local := &tcpConn{stack: s, inbox: sim.NewChan[[]byte](s.node.Cluster.Env)}
	remote := &tcpConn{stack: peer, inbox: sim.NewChan[[]byte](s.node.Cluster.Env)}
	local.peer, remote.peer = remote, local
	l.backlog.Send(remote)
	return local, nil
}

// Send implements Conn.
func (c *tcpConn) Send(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	s := c.stack
	s.node.CPU.Syscall(p)
	data, err := as.ReadBytes(va, n)
	if err != nil {
		return 0, err
	}
	// Stack traversal: copy into socket buffers + checksum +
	// fragmentation, all host CPU work.
	s.node.CPU.Copy(p, n)
	s.node.CPU.Compute(p, s.p.TCPPerMessage+btime(n, s.p.TCPChecksum))
	// Wire: occupy the Ethernet transmitter, then deliver after the
	// base latency (which covers the receive-side stack+interrupt).
	s.link.Use(p, btime(n, s.p.TCPLinkBW))
	peer := c.peer
	s.node.Cluster.Env.AfterDetached(s.p.TCPLatency, func() { peer.inbox.Send(data) })
	return n, nil
}

// Recv implements Conn.
func (c *tcpConn) Recv(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	s := c.stack
	s.node.CPU.Syscall(p)
	for len(c.buf) == 0 {
		if c.eof {
			return 0, nil
		}
		seg := c.inbox.Recv(p)
		if seg == nil {
			c.eof = true
			return 0, nil
		}
		c.buf = append(c.buf, seg...)
	}
	take := n
	if take > len(c.buf) {
		take = len(c.buf)
	}
	// Receive-side checksum + copy out to the application.
	s.node.CPU.Compute(p, btime(take, s.p.TCPChecksum))
	s.node.CPU.Copy(p, take)
	if err := as.WriteBytes(va, c.buf[:take]); err != nil {
		return 0, err
	}
	c.buf = c.buf[take:]
	return take, nil
}

// Close implements Conn.
func (c *tcpConn) Close(p *sim.Proc) error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.stack.node.CPU.Syscall(p)
	peer := c.peer
	c.stack.node.Cluster.Env.AfterDetached(c.stack.p.TCPLatency, func() { peer.inbox.Send(nil) })
	return nil
}

func btime(n int, bw float64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / bw * 1e9)
}

var _ Stack = (*TCPStack)(nil)
