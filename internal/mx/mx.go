// Package mx models Myrinet Express (MX) and, in particular, the MX
// kernel interface the paper's authors designed with Myricom (§4.2) —
// the paper's primary artifact.
//
// Key properties, each contrasted with GM:
//
//   - No application-visible memory registration: MX copies or pins
//     internally per message. Small messages (≤ Params.MXSmallMax) go by
//     programmed I/O; medium messages (≤ Params.MXMediumMax) are copied
//     through pre-registered bounce buffers on both sides; large
//     messages use a rendezvous (RTS/CTS) and are pinned and DMAed
//     zero-copy.
//   - The kernel interface is first-class: "latency and bandwidth do
//     not differ between user and kernel communications" (§5.1). There
//     is no kernel penalty, and kernel page pinning is cheaper.
//   - Requests are vectorial and address-typed (core.Vector): user
//     virtual (pin+translate), kernel virtual (translate), physical
//     (as-is) — §4.2's three address kinds.
//   - Completion is flexible: the application waits on a specific
//     request or on any (§5.2: "allowing the application to wait on a
//     single or any pending request").
//   - Copy-removal modes (§5.1 / Fig 6): WithNoSendCopy skips the
//     send-side bounce copy for physically contiguous non-user
//     segments (implemented in the paper, +17 % at 32 KB);
//     WithNoRecvCopy skips the receive-side copy (the paper's
//     prediction, impossible in their NIC at the time).
package mx

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

// message kinds on the wire.
const (
	kindEager uint8 = iota // small or medium, payload inline
	kindRTS                // rendezvous request: "I have N bytes for match M"
	kindCTS                // clear to send
	kindData               // rendezvous payload
)

// MX is the per-node driver instance.
type MX struct {
	node      *hw.Node
	p         *hw.Params
	endpoints map[uint8]*Endpoint
	rndvSeq   uint64
}

// Attach installs the MX driver on a node. Call once per node.
func Attach(node *hw.Node) *MX {
	m := &MX{node: node, p: node.Cluster.Params, endpoints: make(map[uint8]*Endpoint)}
	node.NIC.Handle(hw.ProtoMX, m.receive)
	return m
}

// Node returns the node this driver serves.
func (m *MX) Node() *hw.Node { return m.node }

// Option configures an endpoint.
type Option func(*Endpoint)

// WithNoSendCopy enables the send-side copy removal for physically
// contiguous kernel/physical medium messages (§5.1, Fig 6
// "No-send-copy").
func WithNoSendCopy() Option { return func(ep *Endpoint) { ep.noSendCopy = true } }

// WithNoRecvCopy enables the receive-side copy removal the paper
// predicts (Fig 6 "No-copy", dashed): requires receive processing in
// the NIC, so it is a what-if mode here exactly as in the paper.
func WithNoRecvCopy() Option { return func(ep *Endpoint) { ep.noRecvCopy = true } }

// Endpoint is an MX communication endpoint (user or kernel).
type Endpoint struct {
	mx     *MX
	id     uint8
	kernel bool

	noSendCopy bool
	noRecvCopy bool

	posted     []*Request // posted receives, matched in post order
	unexpected []*unexp

	completions *sim.Chan[*Request] // completed receives, for WaitAny

	rndvOut map[uint64]*Request // our RTSes awaiting CTS
	rndvIn  map[uint64]*Request // matched RTSes awaiting data

	// Stats
	Sends, Recvs sim.Counter
}

type unexp struct {
	src     hw.NodeID
	srcEp   uint8
	info    uint64
	eager   []byte // staged payload (eager) …
	rndvID  uint64 // … or pending rendezvous
	rndvLen int
}

// OpenEndpoint opens endpoint id. kernel selects the kernel interface —
// which, unlike GM's, costs the same as the user one.
func (m *MX) OpenEndpoint(id uint8, kernel bool, opts ...Option) (*Endpoint, error) {
	if _, dup := m.endpoints[id]; dup {
		return nil, fmt.Errorf("mx: endpoint %d already open on %s", id, m.node.Name)
	}
	ep := &Endpoint{
		mx:          m,
		id:          id,
		kernel:      kernel,
		completions: sim.NewChan[*Request](m.node.Cluster.Env),
		rndvOut:     make(map[uint64]*Request),
		rndvIn:      make(map[uint64]*Request),
	}
	for _, o := range opts {
		o(ep)
	}
	m.endpoints[id] = ep
	return ep, nil
}

// Kernel reports whether this is a kernel endpoint.
func (ep *Endpoint) Kernel() bool { return ep.kernel }

// ID returns the endpoint number.
func (ep *Endpoint) ID() uint8 { return ep.id }

// Status is the outcome of a completed request.
type Status struct {
	Src  hw.NodeID
	Info uint64 // sender's match information
	Len  int    // bytes transferred
	Err  error  // truncation etc.
}

// Request is an in-flight send or receive.
type Request struct {
	ep     *Endpoint
	isRecv bool
	done   *sim.Signal
	status Status

	// receive state
	match     core.Match
	vector    core.Vector
	extents   []mem.Extent
	recvCopy  int    // bytes of deferred receive-side bounce copy
	unpin     func() // posted user pages to unpin at completion
	charged   bool
	truncated bool

	// send state (rendezvous)
	sendVec core.Vector
	rndvID  uint64
}

// Done reports whether the request has completed (mx_test).
func (r *Request) Done() bool { return r.done.Fired() }

// Wait blocks until the request completes and returns its status,
// charging the host-side completion work (event consumption, deferred
// receive copy, unpinning) exactly once.
func (r *Request) Wait(p *sim.Proc) Status {
	r.done.Wait(p)
	r.charge(p)
	return r.status
}

// WaitTimeout is Wait with a deadline; ok is false on timeout.
func (r *Request) WaitTimeout(p *sim.Proc, d sim.Time) (Status, bool) {
	if !r.done.Fired() {
		if fired := r.done.WaitTimeout(p, d); !fired {
			return Status{}, false
		}
	}
	r.charge(p)
	return r.status, true
}

// Test polls for completion without blocking or charging.
func (r *Request) Test() (Status, bool) {
	if !r.done.Fired() {
		return Status{}, false
	}
	return r.status, true
}

func (r *Request) charge(p *sim.Proc) {
	if r.charged {
		return
	}
	r.charged = true
	cpu := r.ep.mx.node.CPU
	cpu.Compute(p, r.ep.mx.p.MXHostEvent)
	if r.recvCopy > 0 {
		// The host drains the bounce ring into the destination buffer:
		// the receive-side copy of the medium-message protocol.
		cpu.Copy(p, r.recvCopy)
	}
	if r.unpin != nil {
		pages := r.vector.UserPages()
		if pages > 0 {
			cpu.Unpin(p, pages)
		}
		r.unpin()
		r.unpin = nil
	}
}

// resolve translates and (for user segments) pins a vector, charging
// the CPU costs. It returns the merged extents and an unpin closure
// (nil if nothing was pinned).
func (ep *Endpoint) resolve(p *sim.Proc, v core.Vector) ([]mem.Extent, func(), error) {
	if err := v.Validate(); err != nil {
		return nil, nil, err
	}
	userPages := v.UserPages()
	var unpin func()
	if userPages > 0 {
		var err error
		unpin, err = v.Pin()
		if err != nil {
			return nil, nil, err
		}
		ep.mx.node.CPU.Pin(p, userPages, false)
	} else if ep.kernel {
		// Kernel/physical addressing: cheap or free translation; pin
		// cost only when pages are not already locked. Kernel virtual
		// memory is "often already pinned" (§4.2): charge the cheaper
		// kernel rate for translation bookkeeping.
		kpages := 0
		for _, s := range v {
			if s.Type == core.KernelVirtual {
				kpages += s.Pages()
			}
		}
		if kpages > 0 {
			ep.mx.node.CPU.Pin(p, kpages, true)
		}
	}
	xs, err := v.Extents()
	if err != nil {
		if unpin != nil {
			unpin()
		}
		return nil, nil, err
	}
	return xs, unpin, nil
}

// Send posts a send of vector v with match information info to
// endpoint (dst, dstEp). The returned request completes when the
// application buffer is reusable.
func (ep *Endpoint) Send(p *sim.Proc, dst hw.NodeID, dstEp uint8, info uint64, v core.Vector) (*Request, error) {
	m := ep.mx
	n := v.TotalLen()
	req := &Request{ep: ep, done: sim.NewSignal(m.node.Cluster.Env), sendVec: v}
	req.status = Status{Info: info, Len: n}
	m.node.CPU.Compute(p, m.p.MXHostSend)
	ep.Sends.Add(n)
	m.node.Cluster.Env.Tracef("mx[%s:%d] send %dB info=%#x -> node %d ep %d",
		m.node.Name, ep.id, n, info, dst, dstEp)

	switch {
	case n <= m.p.MXSmallMax:
		return ep.sendSmall(p, req, dst, dstEp, info, v)
	case n <= m.p.MXMediumMax:
		return ep.sendMedium(p, req, dst, dstEp, info, v)
	default:
		return ep.sendLarge(p, req, dst, dstEp, info, v)
	}
}

// sendSmall: the host reads the (tiny) payload and pushes it to the
// NIC by programmed I/O; no pinning, no DMA on the send side.
func (ep *Endpoint) sendSmall(p *sim.Proc, req *Request, dst hw.NodeID, dstEp uint8, info uint64, v core.Vector) (*Request, error) {
	m := ep.mx
	xs, err := v.Extents()
	if err != nil {
		return nil, err
	}
	data := m.node.Mem.Gather(xs)
	m.node.CPU.PIO(p, len(data)+16) // payload + descriptor
	msg := &hw.Message{
		Dst: dst, Proto: hw.ProtoMX, Kind: kindEager, Tag: info,
		Header: []byte{dstEp, ep.id},
	}
	m.node.NIC.Send(&hw.TxJob{Msg: msg, Inline: data, PIO: true})
	req.done.Fire() // buffer reusable: bytes are in NIC SRAM
	return req, nil
}

// sendMedium: default MX copies into a pre-registered bounce buffer
// ("uses a copy on both sides when processing medium side messages",
// §5.1). Two zero-copy cases skip the send copy:
//
//   - Physically addressed vectors on kernel endpoints always go
//     zero-copy: this is the kernel API subsuming the paper's GM
//     physical-address primitives (§4.1) — the NIC gather-DMAs the
//     extents directly (page-cache pages are already locked).
//   - With WithNoSendCopy, physically *contiguous* kernel-virtual
//     vectors also go zero-copy (the Fig 6 "No-send-copy" MCP change,
//     +17 % at 32 KB).
func (ep *Endpoint) sendMedium(p *sim.Proc, req *Request, dst hw.NodeID, dstEp uint8, info uint64, v core.Vector) (*Request, error) {
	m := ep.mx
	msg := &hw.Message{
		Dst: dst, Proto: hw.ProtoMX, Kind: kindEager, Tag: info,
		Header: []byte{dstEp, ep.id},
	}
	if ep.kernel && ep.zeroCopySend(v) {
		xs, unpin, err := ep.resolve(p, v)
		if err != nil {
			return nil, err
		}
		m.node.NIC.Send(&hw.TxJob{Msg: msg, Gather: xs})
		m.node.Cluster.Env.Spawn("mx-zsend", func(w *sim.Proc) {
			msg.TxDone.Wait(w)
			if unpin != nil {
				unpin()
			}
			req.done.Fire()
		})
		return req, nil
	}
	xs, err := v.Extents()
	if err != nil {
		return nil, err
	}
	data := m.node.Mem.Gather(xs)
	m.node.CPU.Copy(p, len(data)) // the send-side bounce copy
	m.node.NIC.Send(&hw.TxJob{Msg: msg, Inline: data})
	req.done.Fire() // buffer reusable after the copy
	return req, nil
}

// zeroCopySend reports whether a medium message may skip the bounce
// copy on this (kernel) endpoint.
func (ep *Endpoint) zeroCopySend(v core.Vector) bool {
	if v.AllPhysical() {
		return true
	}
	if !ep.noSendCopy || hasUser(v) {
		return false
	}
	contig, err := v.PhysicallyContiguous()
	return err == nil && contig
}

func hasUser(v core.Vector) bool {
	for _, s := range v {
		if s.Type == core.UserVirtual {
			return true
		}
	}
	return false
}

// sendLarge: rendezvous. Pin the source, send an RTS, wait for the CTS
// (driven by the receive path), then DMA the payload zero-copy.
func (ep *Endpoint) sendLarge(p *sim.Proc, req *Request, dst hw.NodeID, dstEp uint8, info uint64, v core.Vector) (*Request, error) {
	m := ep.mx
	xs, unpin, err := ep.resolve(p, v)
	if err != nil {
		return nil, err
	}
	m.node.CPU.Compute(p, m.p.MXRendezvous) // rendezvous protocol setup
	id := m.rndvSeq
	m.rndvSeq++
	req.rndvID = id
	req.extents = xs
	req.unpin = func() {
		if unpin != nil {
			unpin()
		}
	}
	ep.rndvOut[id] = req
	hdr := make([]byte, 2+8+4)
	hdr[0], hdr[1] = dstEp, ep.id
	put64(hdr[2:], id)
	put32(hdr[10:], uint32(v.TotalLen()))
	msg := &hw.Message{Dst: dst, Proto: hw.ProtoMX, Kind: kindRTS, Tag: info, Header: hdr}
	m.node.NIC.Send(&hw.TxJob{Msg: msg, PIO: true, Inline: nil})
	return req, nil
}

// Recv posts a receive of vector v for messages matching match. The
// returned request completes when data is in place.
//
// Posting is cheap: nothing is pinned yet. Eager (small/medium)
// deliveries never pin the destination — data flows through the bounce
// ring or straight into physical extents. Only when the receive matches
// a rendezvous does MX pin the buffer (see pinForRendezvous), which is
// how the real implementation avoids GM's register-everything model.
func (ep *Endpoint) Recv(p *sim.Proc, match core.Match, v core.Vector) (*Request, error) {
	m := ep.mx
	if err := v.Validate(); err != nil {
		return nil, err
	}
	xs, err := v.Extents()
	if err != nil {
		return nil, err
	}
	m.node.CPU.Compute(p, m.p.MXHostSend/2) // post descriptor
	req := &Request{
		ep: ep, isRecv: true, done: sim.NewSignal(m.node.Cluster.Env),
		match: match, vector: v, extents: xs,
	}
	// Unexpected queue first (in arrival order).
	for i, u := range ep.unexpected {
		if !match.Accepts(u.info) {
			continue
		}
		ep.unexpected = append(ep.unexpected[:i], ep.unexpected[i+1:]...)
		if u.eager != nil {
			ep.completeEager(req, u.src, u.info, u.eager)
		} else {
			ep.rndvIn[u.rndvID] = req
			req.status = Status{Src: u.src, Info: u.info}
			ep.sendCTS(p, u.src, u.srcEp, u.rndvID, v.TotalLen(), u.rndvLen, req)
		}
		return req, nil
	}
	ep.posted = append(ep.posted, req)
	return req, nil
}

// CancelRecv withdraws a posted receive (mx_cancel): the request is
// removed from the match list, completes with ErrCancelled, and its
// buffer is guaranteed never to be scattered into. A receive that
// matched a rendezvous whose data has not yet arrived is cancellable
// too — dropping the rendezvous record makes any late data message
// fall on the floor (the sender's transfer completes into nothing),
// which is what makes reply deadlines against a dead-then-revived
// peer safe. It returns false — and does nothing — only when the
// receive has completed (data already landed); the caller must then
// Wait it to consume the result.
func (ep *Endpoint) CancelRecv(p *sim.Proc, req *Request) bool {
	for i, r := range ep.posted {
		if r == req {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			ep.mx.node.CPU.Compute(p, ep.mx.p.MXHostSend/2) // descriptor removal
			req.status.Err = ErrCancelled
			req.done.Fire()
			return true
		}
	}
	for id, r := range ep.rndvIn {
		if r != req {
			continue
		}
		delete(ep.rndvIn, id)
		ep.mx.node.CPU.Compute(p, ep.mx.p.MXHostSend/2) // descriptor removal
		// The buffer was pinned when the CTS went out; undo it here —
		// the completion path that normally unpins will never run.
		if req.unpin != nil {
			if pages := req.vector.UserPages(); pages > 0 {
				ep.mx.node.CPU.Unpin(p, pages)
			}
			req.unpin()
			req.unpin = nil
		}
		req.status.Err = ErrCancelled
		req.done.Fire()
		return true
	}
	return false
}

// ErrCancelled is the completion status of a receive withdrawn by
// CancelRecv.
var ErrCancelled = fmt.Errorf("mx: request cancelled")

// WaitAny blocks until any posted receive of the endpoint completes and
// returns it ("wait on a single or any pending request", §5.2).
// Receives already consumed through Request.Wait are skipped.
func (ep *Endpoint) WaitAny(p *sim.Proc) *Request {
	for {
		r := ep.completions.Recv(p)
		if r.charged {
			continue
		}
		r.charge(p)
		return r
	}
}

// pinForRendezvous pins a matched rendezvous receive buffer, charging
// the pinning cost in the calling process (the host does this work
// whether the match happened at post time or on RTS arrival).
func (ep *Endpoint) pinForRendezvous(p *sim.Proc, req *Request) error {
	v := req.vector
	if userPages := v.UserPages(); userPages > 0 {
		unpin, err := v.Pin()
		if err != nil {
			return err
		}
		req.unpin = unpin
		ep.mx.node.CPU.Pin(p, userPages, false)
		return nil
	}
	kpages := 0
	for _, s := range v {
		if s.Type == core.KernelVirtual {
			kpages += s.Pages()
		}
	}
	if kpages > 0 {
		ep.mx.node.CPU.Pin(p, kpages, true)
	}
	return nil
}

// sendCTS tells the sender to transmit rendezvous id; recvLen is our
// buffer size, sendLen the announced size (for truncation).
func (ep *Endpoint) sendCTS(p *sim.Proc, dst hw.NodeID, dstEp uint8, id uint64, recvLen, sendLen int, req *Request) {
	m := ep.mx
	if err := ep.pinForRendezvous(p, req); err != nil {
		req.status.Err = err
		req.done.Fire()
		ep.completions.Send(req)
		return
	}
	if recvLen < sendLen {
		req.truncated = true
	}
	hdr := make([]byte, 2+8+4)
	hdr[0], hdr[1] = dstEp, ep.id
	put64(hdr[2:], id)
	put32(hdr[10:], uint32(min(recvLen, sendLen)))
	msg := &hw.Message{Dst: dst, Proto: hw.ProtoMX, Kind: kindCTS, Header: hdr}
	m.node.NIC.Send(&hw.TxJob{Msg: msg, PIO: true})
}

// completeEager finishes a receive whose payload is at hand (either
// just delivered or staged in the unexpected queue).
func (ep *Endpoint) completeEager(req *Request, src hw.NodeID, info uint64, data []byte) {
	n := len(data)
	req.status = Status{Src: src, Info: info, Len: n}
	if n > req.vector.TotalLen() {
		n = req.vector.TotalLen()
		req.status.Len = n
		req.status.Err = fmt.Errorf("mx: message truncated to %d bytes", n)
	}
	ep.mx.node.Mem.Scatter(mem.Clip(req.extents, n), data[:n])
	// Receive-side bounce copy, charged at Wait time. It is skipped
	// when the message was small (PIO-sized), or when the NIC could
	// place the data directly: physically addressed kernel receives
	// (the page-cache path, as with the GM physical extension), or —
	// under the predicted WithNoRecvCopy mode — physically contiguous
	// kernel-virtual destinations.
	if n > ep.mx.p.MXSmallMax && !ep.zeroCopyRecv(req) {
		req.recvCopy = n
	}
	ep.Recvs.Add(n)
	ep.mx.node.Cluster.Env.Tracef("mx[%s:%d] recv %dB info=%#x from node %d",
		ep.mx.node.Name, ep.id, n, info, src)
	req.done.Fire()
	ep.completions.Send(req)
}

// zeroCopyRecv reports whether a medium delivery lands directly in the
// posted buffer on this endpoint (no host drain copy).
func (ep *Endpoint) zeroCopyRecv(req *Request) bool {
	if !ep.kernel {
		return false
	}
	if req.vector.AllPhysical() {
		return true
	}
	return ep.noRecvCopy && !hasUser(req.vector) && len(req.extents) <= 1
}

// receive runs in the NIC rx-pump process.
func (m *MX) receive(p *sim.Proc, msg *hw.Message) {
	if len(msg.Header) < 2 {
		panic("mx: short header")
	}
	ep := m.endpoints[msg.Header[0]]
	if ep == nil {
		return // endpoint closed: drop
	}
	srcEp := msg.Header[1]
	switch msg.Kind {
	case kindEager:
		if req := ep.takePosted(msg.Tag); req != nil {
			ep.completeEager(req, msg.Src, msg.Tag, msg.Payload)
			return
		}
		ep.unexpected = append(ep.unexpected, &unexp{
			src: msg.Src, srcEp: srcEp, info: msg.Tag,
			eager: append([]byte(nil), msg.Payload...),
		})
	case kindRTS:
		id := get64(msg.Header[2:])
		length := int(get32(msg.Header[10:]))
		if req := ep.takePosted(msg.Tag); req != nil {
			ep.rndvIn[id] = req
			req.status = Status{Src: msg.Src, Info: msg.Tag}
			ep.sendCTS(p, msg.Src, srcEp, id, req.vector.TotalLen(), length, req)
			return
		}
		ep.unexpected = append(ep.unexpected, &unexp{
			src: msg.Src, srcEp: srcEp, info: msg.Tag, rndvID: id, rndvLen: length,
		})
	case kindCTS:
		id := get64(msg.Header[2:])
		length := int(get32(msg.Header[10:]))
		req := ep.rndvOut[id]
		if req == nil {
			return
		}
		delete(ep.rndvOut, id)
		ep.startData(req, msg.Src, srcEp, id, length)
	case kindData:
		id := get64(msg.Header[2:])
		req := ep.rndvIn[id]
		if req == nil {
			return
		}
		delete(ep.rndvIn, id)
		n := len(msg.Payload)
		ep.mx.node.Mem.Scatter(mem.Clip(req.extents, n), msg.Payload[:n])
		req.status.Len = n
		if req.truncated {
			req.status.Err = fmt.Errorf("mx: rendezvous truncated to %d bytes", n)
		}
		ep.Recvs.Add(n)
		req.done.Fire()
		ep.completions.Send(req)
	}
}

// startData launches the rendezvous payload transfer (runs in the
// receive pump of the *sender's* NIC, where the CTS arrived).
func (ep *Endpoint) startData(req *Request, dst hw.NodeID, dstEp uint8, id uint64, length int) {
	m := ep.mx
	hdr := make([]byte, 2+8)
	hdr[0], hdr[1] = dstEp, ep.id
	put64(hdr[2:], id)
	msg := &hw.Message{
		Dst: dst, Proto: hw.ProtoMX, Kind: kindData, Tag: req.status.Info, Header: hdr,
	}
	xs := mem.Clip(req.extents, length)
	// The flat large-message penalty (immature large-message path,
	// §5.1) rides on the data message's firmware processing.
	m.node.NIC.Send(&hw.TxJob{Msg: msg, Gather: xs, FwExtra: m.p.MXLargeOverhead})
	m.node.Cluster.Env.Spawn("mx-rndv-done", func(w *sim.Proc) {
		msg.TxDone.Wait(w)
		if req.unpin != nil {
			pages := req.sendVec.UserPages()
			if pages > 0 {
				m.node.CPU.Unpin(w, pages)
			}
			req.unpin()
			req.unpin = nil
		}
		req.status.Len = length
		req.done.Fire()
	})
}

// takePosted removes and returns the oldest posted receive matching info.
func (ep *Endpoint) takePosted(info uint64) *Request {
	for i, r := range ep.posted {
		if r.match.Accepts(info) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			return r
		}
	}
	return nil
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func get64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func put32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func get32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}
