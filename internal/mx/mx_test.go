package mx

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

const us = time.Microsecond

type rig struct {
	env    *sim.Engine
	p      *hw.Params
	a, b   *hw.Node
	ma, mb *MX
}

func newRig() *rig {
	env := sim.NewEngine()
	p := hw.DefaultParams()
	c := hw.NewCluster(env, p, hw.PCIXD)
	r := &rig{env: env, p: p}
	r.a, r.b = c.AddNode("a"), c.AddNode("b")
	r.ma, r.mb = Attach(r.a), Attach(r.b)
	return r
}

// sendRecvOnce moves a payload of n bytes A→B through fresh user
// endpoints and returns what B received.
func sendRecvOnce(t *testing.T, n int) []byte {
	t.Helper()
	r := newRig()
	asA := r.a.NewUserSpace("appA")
	asB := r.b.NewUserSpace("appB")
	vaA, _ := asA.Mmap(n+mem.PageSize, "src")
	vaB, _ := asB.Mmap(n+mem.PageSize, "dst")
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	asA.WriteBytes(vaA, data)
	var got []byte
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, false)
		req, err := eb.Recv(p, core.Exact(99), core.Of(core.UserSeg(asB, vaB, n)))
		if err != nil {
			t.Error(err)
			return
		}
		st := req.Wait(p)
		if st.Err != nil || st.Len != n || st.Info != 99 {
			t.Errorf("recv status %+v", st)
		}
		got, _ = asB.ReadBytes(vaB, n)
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		ea, _ := r.ma.OpenEndpoint(1, false)
		req, err := ea.Send(p, r.b.ID, 1, 99, core.Of(core.UserSeg(asA, vaA, n)))
		if err != nil {
			t.Error(err)
			return
		}
		if st := req.Wait(p); st.Err != nil {
			t.Errorf("send status %+v", st)
		}
	})
	r.env.Run(0)
	if !bytes.Equal(got, data) {
		t.Fatalf("payload of %d bytes corrupted", n)
	}
	return got
}

func TestAllRegimesDataIntegrity(t *testing.T) {
	// Small (PIO), medium (bounce copies), large (rendezvous) — and the
	// regime boundaries themselves.
	for _, n := range []int{1, 127, 128, 129, 4096, 32767, 32768, 32769, 100000, 1 << 20} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) { sendRecvOnce(t, n) })
	}
}

func TestVectorialScatterGather(t *testing.T) {
	// Send a 3-segment vector (user + user), receive into a 2-segment
	// vector; bytes must concatenate in order (§4.1 vectorial support).
	r := newRig()
	asA := r.a.NewUserSpace("appA")
	asB := r.b.NewUserSpace("appB")
	s1, _ := asA.Mmap(mem.PageSize, "s1")
	s2, _ := asA.Mmap(mem.PageSize, "s2")
	d1, _ := asB.Mmap(mem.PageSize, "d1")
	d2, _ := asB.Mmap(mem.PageSize, "d2")
	asA.WriteBytes(s1, []byte("hello, "))
	asA.WriteBytes(s2, []byte("vectors!"))
	var got []byte
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, false)
		req, err := eb.Recv(p, core.MatchAll, core.Vector{
			core.UserSeg(asB, d1, 5),
			core.UserSeg(asB, d2, 10),
		})
		if err != nil {
			t.Error(err)
			return
		}
		st := req.Wait(p)
		if st.Len != 15 {
			t.Errorf("len = %d, want 15", st.Len)
		}
		g1, _ := asB.ReadBytes(d1, 5)
		g2, _ := asB.ReadBytes(d2, 10)
		got = append(g1, g2...)
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		ea, _ := r.ma.OpenEndpoint(1, false)
		ea.Send(p, r.b.ID, 1, 5, core.Vector{
			core.UserSeg(asA, s1, 7),
			core.UserSeg(asA, s2, 8),
		})
	})
	r.env.Run(0)
	if string(got) != "hello, vectors!" {
		t.Fatalf("got %q", got)
	}
}

func TestMatchingSelectsCorrectRecv(t *testing.T) {
	r := newRig()
	asB := r.b.NewUserSpace("appB")
	asA := r.a.NewUserSpace("appA")
	vaA, _ := asA.Mmap(mem.PageSize, "src")
	asA.WriteBytes(vaA, []byte("payload-x"))
	bufs := make([]vm.VirtAddr, 3)
	for i := range bufs {
		bufs[i], _ = asB.Mmap(mem.PageSize, "dst")
	}
	results := map[uint64]string{}
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, false)
		// Post three receives with distinct exact matches, out of order.
		var reqs []*Request
		for i, info := range []uint64{30, 10, 20} {
			req, _ := eb.Recv(p, core.Exact(info), core.Of(core.UserSeg(asB, bufs[i], 64)))
			reqs = append(reqs, req)
		}
		for _, req := range reqs {
			st := req.Wait(p)
			got, _ := asB.ReadBytes(bufs[indexOf(reqs, req)], st.Len)
			results[st.Info] = string(got)
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		ea, _ := r.ma.OpenEndpoint(1, false)
		for _, info := range []uint64{10, 20, 30} {
			asA.WriteBytes(vaA, []byte(fmt.Sprintf("payload-%d", info)))
			req, _ := ea.Send(p, r.b.ID, 1, info, core.Of(core.UserSeg(asA, vaA, 10)))
			req.Wait(p) // serialize so the buffer can be reused
		}
	})
	r.env.Run(0)
	for _, info := range []uint64{10, 20, 30} {
		want := fmt.Sprintf("payload-%d", info)
		if results[info][:len(want)] != want {
			t.Errorf("match %d got %q", info, results[info])
		}
	}
}

func indexOf(rs []*Request, r *Request) int {
	for i, x := range rs {
		if x == r {
			return i
		}
	}
	return -1
}

func TestUnexpectedEagerAndRendezvous(t *testing.T) {
	for _, n := range []int{64, 8192, 100000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := newRig()
			asA := r.a.NewUserSpace("appA")
			asB := r.b.NewUserSpace("appB")
			vaA, _ := asA.Mmap(n+mem.PageSize, "src")
			vaB, _ := asB.Mmap(n+mem.PageSize, "dst")
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i ^ 0x5a)
			}
			asA.WriteBytes(vaA, data)
			var got []byte
			r.env.Spawn("a", func(p *sim.Proc) {
				ea, _ := r.ma.OpenEndpoint(1, false)
				ea.Send(p, r.b.ID, 1, 7, core.Of(core.UserSeg(asA, vaA, n)))
			})
			r.env.Spawn("b", func(p *sim.Proc) {
				eb, _ := r.mb.OpenEndpoint(1, false)
				p.Sleep(200 * us) // message (or RTS) arrives unexpected
				req, err := eb.Recv(p, core.Exact(7), core.Of(core.UserSeg(asB, vaB, n)))
				if err != nil {
					t.Error(err)
					return
				}
				st := req.Wait(p)
				if st.Len != n || st.Err != nil {
					t.Errorf("status %+v", st)
				}
				got, _ = asB.ReadBytes(vaB, n)
			})
			r.env.Run(0)
			if !bytes.Equal(got, data) {
				t.Fatal("late-posted receive corrupted data")
			}
		})
	}
}

func TestWaitAny(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("appA")
	asB := r.b.NewUserSpace("appB")
	vaA, _ := asA.Mmap(mem.PageSize, "src")
	vaB, _ := asB.Mmap(4*mem.PageSize, "dst")
	var infos []uint64
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, false)
		for i := 0; i < 3; i++ {
			eb.Recv(p, core.MatchAll, core.Of(core.UserSeg(asB, vaB+vm.VirtAddr(i*mem.PageSize), 128)))
		}
		for i := 0; i < 3; i++ {
			req := eb.WaitAny(p)
			st, ok := req.Test()
			if !ok {
				t.Error("WaitAny returned incomplete request")
			}
			infos = append(infos, st.Info)
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		ea, _ := r.ma.OpenEndpoint(1, false)
		for i := uint64(1); i <= 3; i++ {
			req, _ := ea.Send(p, r.b.ID, 1, i, core.Of(core.UserSeg(asA, vaA, 32)))
			req.Wait(p)
		}
	})
	r.env.Run(0)
	if len(infos) != 3 || infos[0] != 1 || infos[1] != 2 || infos[2] != 3 {
		t.Fatalf("WaitAny order %v", infos)
	}
}

func TestTruncation(t *testing.T) {
	for _, n := range []int{4096, 100000} { // medium and rendezvous
		r := newRig()
		asA := r.a.NewUserSpace("appA")
		asB := r.b.NewUserSpace("appB")
		vaA, _ := asA.Mmap(n, "src")
		vaB, _ := asB.Mmap(mem.PageSize, "dst")
		small := 512
		r.env.Spawn("b", func(p *sim.Proc) {
			eb, _ := r.mb.OpenEndpoint(1, false)
			req, _ := eb.Recv(p, core.MatchAll, core.Of(core.UserSeg(asB, vaB, small)))
			st := req.Wait(p)
			if st.Err == nil || st.Len != small {
				t.Errorf("n=%d: want truncation to %d, got %+v", n, small, st)
			}
		})
		r.env.Spawn("a", func(p *sim.Proc) {
			p.Sleep(1 * us)
			ea, _ := r.ma.OpenEndpoint(1, false)
			ea.Send(p, r.b.ID, 1, 0, core.Of(core.UserSeg(asA, vaA, n)))
		})
		r.env.Run(0)
	}
}

// mxPingPong measures one-way latency over user or kernel endpoints.
func mxPingPong(t *testing.T, kernel bool, size, iters int) sim.Time {
	t.Helper()
	r := newRig()
	mk := func(n *hw.Node) *vm.AddressSpace {
		if kernel {
			return n.Kernel
		}
		return n.NewUserSpace("app")
	}
	asA, asB := mk(r.a), mk(r.b)
	vaA, _ := asA.Mmap(size+mem.PageSize, "buf")
	vaB, _ := asB.Mmap(size+mem.PageSize, "buf")
	seg := func(as *vm.AddressSpace, va vm.VirtAddr) core.Vector {
		if kernel {
			return core.Of(core.KernelSeg(as, va, size))
		}
		return core.Of(core.UserSeg(as, va, size))
	}
	var elapsed sim.Time
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, kernel)
		for i := 0; i < iters; i++ {
			req, err := eb.Recv(p, core.MatchAll, seg(asB, vaB))
			if err != nil {
				t.Error(err)
				return
			}
			req.Wait(p)
			sreq, _ := eb.Send(p, r.a.ID, 1, 2, seg(asB, vaB))
			_ = sreq
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		ea, _ := r.ma.OpenEndpoint(1, kernel)
		p.Sleep(20 * us)
		t0 := p.Now()
		for i := 0; i < iters; i++ {
			rreq, _ := ea.Recv(p, core.MatchAll, seg(asA, vaA))
			ea.Send(p, r.b.ID, 1, 1, seg(asA, vaA))
			rreq.Wait(p)
		}
		elapsed = p.Now() - t0
	})
	r.env.Run(0)
	return elapsed / sim.Time(2*iters)
}

func TestUserLatencyCalibration(t *testing.T) {
	// §5.1: MX 1-byte one-way ≈ 4.2 µs.
	lat := mxPingPong(t, false, 1, 50)
	if lat < 3800*time.Nanosecond || lat > 4700*time.Nanosecond {
		t.Errorf("MX user 1B one-way = %v, want ≈4.2µs", lat)
	}
}

func TestKernelEqualsUserLatency(t *testing.T) {
	// §5.1: "latency ... [does] not differ between user and kernel".
	u := mxPingPong(t, false, 1, 50)
	k := mxPingPong(t, true, 1, 50)
	diff := k - u
	if diff < -300*time.Nanosecond || diff > 300*time.Nanosecond {
		t.Errorf("MX kernel-user gap = %v (user %v kernel %v), want ≈0", diff, u, k)
	}
}

func TestLargeBandwidthNearLink(t *testing.T) {
	const size = 1 << 20
	lat := mxPingPong(t, false, size, 4)
	bw := float64(size) / lat.Seconds() / 1e6
	if bw < 220 || bw > 250 {
		t.Errorf("MX 1MB bandwidth = %.1f MB/s, want ≈235", bw)
	}
}

func TestKernelLargeBandwidthHigher(t *testing.T) {
	// §5.1: "large message bandwidth is even higher with the kernel
	// interface since the page locking overhead is lower".
	const size = 1 << 20
	u := mxPingPong(t, false, size, 4)
	k := mxPingPong(t, true, size, 4)
	if k >= u {
		t.Errorf("kernel 1MB one-way %v not faster than user %v", k, u)
	}
}

// mediumBandwidth measures ping-pong bandwidth at 32KB over kernel
// endpoints with contiguous kernel buffers under the given options.
func mediumBandwidth(t *testing.T, size int, opts ...Option) float64 {
	t.Helper()
	r := newRig()
	kA, kB := r.a.Kernel, r.b.Kernel
	vaA, _ := kA.MmapContig(size, "buf")
	vaB, _ := kB.MmapContig(size, "buf")
	const iters = 8
	var elapsed sim.Time
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, true, opts...)
		for i := 0; i < iters; i++ {
			req, _ := eb.Recv(p, core.MatchAll, core.Of(core.KernelSeg(kB, vaB, size)))
			req.Wait(p)
			eb.Send(p, r.a.ID, 1, 2, core.Of(core.KernelSeg(kB, vaB, size)))
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		ea, _ := r.ma.OpenEndpoint(1, true, opts...)
		p.Sleep(20 * us)
		t0 := p.Now()
		for i := 0; i < iters; i++ {
			rreq, _ := ea.Recv(p, core.MatchAll, core.Of(core.KernelSeg(kA, vaA, size)))
			ea.Send(p, r.b.ID, 1, 1, core.Of(core.KernelSeg(kA, vaA, size)))
			rreq.Wait(p)
		}
		elapsed = p.Now() - t0
	})
	r.env.Run(0)
	oneWay := elapsed / (2 * iters)
	return float64(size) / oneWay.Seconds() / 1e6
}

func TestFig6CopyRemovalShape(t *testing.T) {
	const size = 32 * 1024
	std := mediumBandwidth(t, size)
	noSend := mediumBandwidth(t, size, WithNoSendCopy())
	noCopy := mediumBandwidth(t, size, WithNoSendCopy(), WithNoRecvCopy())

	// §5.1: "17 % bandwidth improvement for 32 kbytes messages" from
	// removing the send copy, "another 15 %" from the receive side.
	sendGain := (noSend - std) / std
	if sendGain < 0.12 || sendGain > 0.25 {
		t.Errorf("no-send-copy gain = %.1f%% (std %.1f, noSend %.1f MB/s), want ≈17%%",
			sendGain*100, std, noSend)
	}
	recvGain := (noCopy - noSend) / noSend
	if recvGain < 0.10 || recvGain > 0.30 {
		t.Errorf("no-recv-copy extra gain = %.1f%% (noSend %.1f, noCopy %.1f MB/s), want ≈15%%",
			recvGain*100, noSend, noCopy)
	}
}

func TestCopyRemovalRequiresContiguity(t *testing.T) {
	// A physically scattered kernel buffer must not take the
	// no-send-copy path (the paper: works "when sending up to 8
	// physically contiguous pages").
	r := newRig()
	kA := r.a.Kernel
	// Fragment kernel memory so Mmap yields scattered frames.
	j1, _ := kA.Mmap(mem.PageSize, "j1")
	j2, _ := kA.Mmap(mem.PageSize, "j2")
	kA.Munmap(j1, mem.PageSize)
	kA.Munmap(j2, mem.PageSize)
	va, _ := kA.Mmap(8*mem.PageSize, "buf")
	v := core.Of(core.KernelSeg(kA, va, 8*mem.PageSize))
	if contig, _ := v.PhysicallyContiguous(); contig {
		t.Skip("allocator produced contiguous frames; cannot exercise")
	}
	r.env.Spawn("a", func(p *sim.Proc) {
		ea, _ := r.ma.OpenEndpoint(1, true, WithNoSendCopy())
		if ea.zeroCopySend(v) {
			t.Error("scattered kernel-virtual vector took the zero-copy path")
		}
	})
	r.env.Run(0)
}

func TestPhysicalVectorsZeroCopyOnKernel(t *testing.T) {
	// Physically addressed kernel transfers skip both copies without
	// any option flags (the page-cache path).
	r := newRig()
	framesA, _ := r.a.Mem.AllocContig(2)
	framesB, _ := r.b.Mem.AllocContig(2)
	want := []byte("page cache payload")
	copy(framesA[0].Data(), want)
	var copiesA, copiesB int64
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, true)
		req, _ := eb.Recv(p, core.MatchAll, core.Of(core.PhysSeg(framesB[0].Addr(), 4096)))
		copies0 := r.b.CPU.CopyStats.N
		req.Wait(p)
		copiesB = r.b.CPU.CopyStats.N - copies0
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		ea, _ := r.ma.OpenEndpoint(1, true)
		copies0 := r.a.CPU.CopyStats.N
		req, _ := ea.Send(p, r.b.ID, 1, 0, core.Of(core.PhysSeg(framesA[0].Addr(), 4096)))
		req.Wait(p)
		copiesA = r.a.CPU.CopyStats.N - copies0
	})
	r.env.Run(0)
	if copiesA != 0 || copiesB != 0 {
		t.Errorf("physical kernel transfer used host copies: send=%d recv=%d", copiesA, copiesB)
	}
	if !bytes.Equal(framesB[0].Data()[:len(want)], want) {
		t.Error("payload corrupted")
	}
}

func TestUserEndpointNeverZeroCopiesMedium(t *testing.T) {
	r := newRig()
	as := r.a.NewUserSpace("app")
	va, _ := as.Mmap(8*mem.PageSize, "buf")
	v := core.Of(core.UserSeg(as, va, 4096))
	r.env.Spawn("a", func(p *sim.Proc) {
		ea, _ := r.ma.OpenEndpoint(1, false, WithNoSendCopy(), WithNoRecvCopy())
		if ea.zeroCopySend(v) {
			t.Error("user endpoint took kernel zero-copy path")
		}
	})
	r.env.Run(0)
}

func TestRendezvousPinsAndUnpins(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("appA")
	asB := r.b.NewUserSpace("appB")
	const n = 128 * 1024
	vaA, _ := asA.Mmap(n, "src")
	vaB, _ := asB.Mmap(n, "dst")
	r.env.Spawn("b", func(p *sim.Proc) {
		eb, _ := r.mb.OpenEndpoint(1, false)
		req, _ := eb.Recv(p, core.MatchAll, core.Of(core.UserSeg(asB, vaB, n)))
		req.Wait(p)
		if asB.PinCount(vaB) != 0 {
			t.Error("recv buffer still pinned after completion")
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		ea, _ := r.ma.OpenEndpoint(1, false)
		req, _ := ea.Send(p, r.b.ID, 1, 0, core.Of(core.UserSeg(asA, vaA, n)))
		req.Wait(p)
		if asA.PinCount(vaA) != 0 {
			t.Error("send buffer still pinned after completion")
		}
	})
	r.env.Run(0)
}

func TestNoRegistrationAPIExists(t *testing.T) {
	// MX's public surface must not expose registration: this is a
	// compile-time property, but assert the behavioural consequence —
	// a fresh endpoint sends immediately with no setup calls.
	sendRecvOnce(t, 1000)
}
