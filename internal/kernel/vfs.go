package kernel

// This file is the VFS: the mount table, dentry/attribute caches,
// open-file API (buffered and O_DIRECT paths) and the shared
// inode-size table that keeps every open description agreeing on EOF.
import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// OS is the per-node operating-system instance: mount table, VFS
// caches, page cache and the file API offered to simulated applications.
type OS struct {
	Node *hw.Node
	PC   *PageCache

	mounts []mount
	dcache map[string]Attr    // full path → attributes (dentry+attr cache)
	isize  map[inodeKey]int64 // shared inode sizes (one per inode, like i_size)

	// readChunk is the buffered-read combining factor in pages (1 =
	// the Linux 2.4 page-at-a-time behaviour the paper measures;
	// larger values model the 2.6 combining it predicts, used by the
	// combining ablation in the benchmarks).
	readChunk int

	// DCacheHits/DCacheMisses count metadata cache effectiveness (the
	// ORFS-vs-ORFA metadata argument, §3.1).
	DCacheHits, DCacheMisses sim.Counter
}

type mount struct {
	prefix string
	fs     FileSystem
}

// NewOS creates the OS for a node with a page-cache bound (0 =
// unbounded).
func NewOS(node *hw.Node, pageCachePages int) *OS {
	return &OS{
		Node:   node,
		PC:     NewPageCache(node, pageCachePages),
		dcache: make(map[string]Attr),
		isize:  make(map[inodeKey]int64),
	}
}

type inodeKey struct {
	fs  FileSystem
	ino InodeID
}

// SetReadChunkPages sets the buffered-read combining factor: on a page
// cache miss, up to n consecutive pages are fetched in one request if
// the filesystem supports it (kernel.PageRangeReader). n <= 1 restores
// the strict page-at-a-time behaviour of the paper's Linux 2.4 testbed.
func (o *OS) SetReadChunkPages(n int) {
	if n < 1 {
		n = 1
	}
	o.readChunk = n
}

// Mount attaches fs at prefix (e.g. "/mnt/orfs"). Longest prefix wins
// at resolution.
func (o *OS) Mount(prefix string, fs FileSystem) {
	prefix = strings.TrimSuffix(prefix, "/")
	o.mounts = append(o.mounts, mount{prefix, fs})
}

// resolveMount finds the filesystem serving path.
func (o *OS) resolveMount(path string) (FileSystem, string, error) {
	var best *mount
	for i := range o.mounts {
		m := &o.mounts[i]
		if path == m.prefix || strings.HasPrefix(path, m.prefix+"/") || m.prefix == "" {
			if best == nil || len(m.prefix) > len(best.prefix) {
				best = m
			}
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("kernel: no filesystem mounted for %q", path)
	}
	rel := strings.TrimPrefix(path, best.prefix)
	rel = strings.Trim(rel, "/")
	return best.fs, rel, nil
}

// walk resolves path to attributes, consulting the dentry cache and
// charging one VFS traversal per component looked up remotely.
func (o *OS) walk(p *sim.Proc, path string) (FileSystem, Attr, error) {
	fs, rel, err := o.resolveMount(path)
	if err != nil {
		return nil, Attr{}, err
	}
	if a, ok := o.dcache[path]; ok {
		o.DCacheHits.Add(1)
		o.Node.CPU.VFS(p)
		return fs, a, nil
	}
	o.DCacheMisses.Add(1)
	attr, err := o.walkUncached(p, fs, rel)
	if err != nil {
		return nil, Attr{}, err
	}
	o.dcache[path] = attr
	return fs, attr, nil
}

func (o *OS) walkUncached(p *sim.Proc, fs FileSystem, rel string) (Attr, error) {
	cur, err := fs.Getattr(p, fs.Root())
	if err != nil {
		return Attr{}, err
	}
	if rel == "" {
		return cur, nil
	}
	for _, comp := range strings.Split(rel, "/") {
		o.Node.CPU.VFS(p)
		if cur.Kind != Directory {
			return Attr{}, ErrNotDir
		}
		cur, err = fs.Lookup(p, cur.Ino, comp)
		if err != nil {
			return Attr{}, err
		}
	}
	return cur, nil
}

// invalidateDentry drops the cache entry for path and its descendants.
func (o *OS) invalidateDentry(path string) {
	delete(o.dcache, path)
	for k := range o.dcache {
		if strings.HasPrefix(k, path+"/") {
			delete(o.dcache, k)
		}
	}
}

// splitDir returns the parent path and base name.
func splitDir(path string) (string, string) {
	path = strings.TrimSuffix(path, "/")
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return "", path
	}
	return path[:i], path[i+1:]
}

// OpenFlag is a set of open(2)-like flags.
type OpenFlag int

const (
	// ORDWR is the default read/write mode.
	ORDWR OpenFlag = 0
	// OCreate creates the file if absent.
	OCreate OpenFlag = 1 << iota
	// OTrunc truncates to zero length.
	OTrunc
	// ODirect bypasses the page cache (§2.3.2): transfers go directly
	// between the application buffer and the (possibly remote) store.
	ODirect
)

// File is an open file description. The file size lives in the OS's
// shared inode-size table (like i_size), so multiple open descriptions
// of the same file — e.g. one buffered and one O_DIRECT — agree on EOF.
type File struct {
	os     *OS
	fs     FileSystem
	attr   Attr
	path   string
	off    int64
	direct bool
	closed bool
}

func (f *File) key() inodeKey { return inodeKey{f.fs, f.attr.Ino} }

// Size returns the file size as known locally.
func (f *File) Size() int64 { return f.os.isize[f.key()] }

func (f *File) growTo(end int64) {
	if end > f.os.isize[f.key()] {
		f.os.isize[f.key()] = end
		f.os.invalidateDentry(f.path)
	}
}

// Stat returns the attributes of path (metadata path, dcache-assisted).
func (o *OS) Stat(p *sim.Proc, path string) (Attr, error) {
	o.Node.CPU.Syscall(p)
	_, a, err := o.walk(p, path)
	return a, err
}

// Readdir lists a directory.
func (o *OS) Readdir(p *sim.Proc, path string) ([]DirEntry, error) {
	o.Node.CPU.Syscall(p)
	fs, a, err := o.walk(p, path)
	if err != nil {
		return nil, err
	}
	if a.Kind != Directory {
		return nil, ErrNotDir
	}
	return fs.Readdir(p, a.Ino)
}

// Mkdir creates a directory.
func (o *OS) Mkdir(p *sim.Proc, path string) error {
	o.Node.CPU.Syscall(p)
	dirPath, name := splitDir(path)
	fs, dir, err := o.walk(p, dirPath)
	if err != nil {
		return err
	}
	if _, err := fs.Mkdir(p, dir.Ino, name); err != nil {
		return err
	}
	o.invalidateDentry(dirPath)
	return nil
}

// Unlink removes a file.
func (o *OS) Unlink(p *sim.Proc, path string) error {
	o.Node.CPU.Syscall(p)
	dirPath, name := splitDir(path)
	fs, dir, err := o.walk(p, dirPath)
	if err != nil {
		return err
	}
	if _, a, err2 := o.walk(p, path); err2 == nil {
		o.PC.InvalidateInode(fs, a.Ino)
	}
	if err := fs.Unlink(p, dir.Ino, name); err != nil {
		return err
	}
	o.invalidateDentry(path)
	return nil
}

// Rmdir removes an empty directory.
func (o *OS) Rmdir(p *sim.Proc, path string) error {
	o.Node.CPU.Syscall(p)
	dirPath, name := splitDir(path)
	fs, dir, err := o.walk(p, dirPath)
	if err != nil {
		return err
	}
	if err := fs.Rmdir(p, dir.Ino, name); err != nil {
		return err
	}
	o.invalidateDentry(path)
	return nil
}

// Open opens (optionally creating/truncating) path.
func (o *OS) Open(p *sim.Proc, path string, flags OpenFlag) (*File, error) {
	o.Node.CPU.Syscall(p)
	fs, attr, err := o.walk(p, path)
	if err != nil {
		if flags&OCreate == 0 {
			return nil, err
		}
		dirPath, name := splitDir(path)
		var dir Attr
		fs, dir, err = o.walk(p, dirPath)
		if err != nil {
			return nil, err
		}
		attr, err = fs.Create(p, dir.Ino, name)
		if err != nil {
			return nil, err
		}
		o.dcache[path] = attr
		o.invalidateDentry(dirPath)
	}
	if attr.Kind == Directory {
		return nil, ErrIsDir
	}
	f := &File{
		os: o, fs: fs, attr: attr, path: path,
		direct: flags&ODirect != 0,
	}
	if _, ok := o.isize[f.key()]; !ok {
		o.isize[f.key()] = attr.Size
	}
	if flags&OTrunc != 0 && o.isize[f.key()] > 0 {
		if err := fs.Truncate(p, attr.Ino, 0); err != nil {
			return nil, err
		}
		o.PC.InvalidateInode(fs, attr.Ino)
		o.isize[f.key()] = 0
		o.invalidateDentry(path)
	}
	return f, nil
}

// Path returns the path the file was opened by.
func (f *File) Path() string { return f.path }

// Direct reports whether the file is in O_DIRECT mode.
func (f *File) Direct() bool { return f.direct }

// Seek sets the file offset (whence: 0 set, 1 cur, 2 end) and returns
// the new offset. It never fails; negative results clamp to zero.
func (f *File) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 1:
		f.off += off
	case 2:
		f.off = f.Size() + off
	default:
		f.off = off
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

// Read reads up to n bytes at the current offset into [va, va+n) of the
// calling process's address space, returning the byte count (0 at EOF).
func (f *File) Read(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	got, err := f.ReadAt(p, as, va, n, f.off)
	f.off += int64(got)
	return got, err
}

// ReadAt is Read at an explicit offset (does not move the file offset).
func (f *File) ReadAt(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("kernel: read of closed file")
	}
	o := f.os
	o.Node.CPU.Syscall(p)
	o.Node.CPU.VFS(p)
	if n <= 0 {
		return 0, nil
	}
	if f.direct {
		// O_DIRECT: hand the user buffer itself to the filesystem.
		// Dirty cached pages are flushed first for coherence.
		if err := o.PC.FlushInode(p, f.fs, f.attr.Ino); err != nil {
			return 0, err
		}
		got, err := f.fs.ReadDirect(p, f.attr.Ino, off, core.Of(core.UserSeg(as, va, n)))
		return got, err
	}
	// Buffered: per page through the page cache, with a copy to the
	// application (§2.3.1). EOF comes from the shared inode size;
	// sparse pages read as zeros (frames are zero-filled).
	if size := f.Size(); off+int64(n) > size {
		if off >= size {
			return 0, nil
		}
		n = int(size - off)
	}
	read := 0
	for read < n {
		cur := off + int64(read)
		pg, err := o.PC.FillChunk(p, f.fs, f.attr.Ino, pageIndex(cur), o.readChunk)
		if err != nil {
			return read, err
		}
		pgOff := int(cur % mem.PageSize)
		chunk := n - read
		if chunk > mem.PageSize-pgOff {
			chunk = mem.PageSize - pgOff
		}
		o.Node.CPU.Copy(p, chunk) // page cache → application copy
		buf := make([]byte, chunk)
		copy(buf, pg.Frame.Data()[pgOff:pgOff+chunk])
		if err := as.WriteBytes(va+vm.VirtAddr(read), buf); err != nil {
			o.PC.Unbusy(pg)
			return read, err
		}
		o.PC.Unbusy(pg)
		read += chunk
	}
	return read, nil
}

// Write writes n bytes from [va, va+n) at the current offset.
func (f *File) Write(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error) {
	got, err := f.WriteAt(p, as, va, n, f.off)
	f.off += int64(got)
	return got, err
}

// WriteAt is Write at an explicit offset.
func (f *File) WriteAt(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("kernel: write of closed file")
	}
	o := f.os
	o.Node.CPU.Syscall(p)
	o.Node.CPU.VFS(p)
	if n <= 0 {
		return 0, nil
	}
	defer f.growTo(off + int64(n))
	if f.direct {
		// Coherence: push out dirty buffered data, then drop the cached
		// pages so later buffered reads refetch.
		if err := o.PC.FlushInode(p, f.fs, f.attr.Ino); err != nil {
			return 0, err
		}
		o.PC.InvalidateInode(f.fs, f.attr.Ino)
		return f.fs.WriteDirect(p, f.attr.Ino, off, core.Of(core.UserSeg(as, va, n)))
	}
	written := 0
	for written < n {
		cur := off + int64(written)
		idx := pageIndex(cur)
		pgOff := int(cur % mem.PageSize)
		chunk := n - written
		if chunk > mem.PageSize-pgOff {
			chunk = mem.PageSize - pgOff
		}
		var pg *CachedPage
		var err error
		if pgOff == 0 && chunk == mem.PageSize {
			// Whole-page overwrite: no read-modify-write needed.
			if pg = o.PC.Lookup(f.fs, f.attr.Ino, idx); pg == nil {
				pg, err = o.PC.Add(p, f.fs, f.attr.Ino, idx)
			} else {
				pg.busy = true
			}
		} else {
			pg, err = o.PC.Fill(p, f.fs, f.attr.Ino, idx) // RMW
		}
		if err != nil {
			return written, err
		}
		o.Node.CPU.Copy(p, chunk) // application → page cache copy
		buf, err := as.ReadBytes(va+vm.VirtAddr(written), chunk)
		if err != nil {
			o.PC.Unbusy(pg)
			return written, err
		}
		copy(pg.Frame.Data()[pgOff:], buf)
		if end := pgOff + chunk; end > pg.N {
			pg.N = end
		}
		pg.Dirty = true
		o.PC.Unbusy(pg)
		written += chunk
	}
	return written, nil
}

// Fsync writes back all dirty pages of the file (in page order), then
// drains any write-behind pipeline the filesystem keeps.
func (f *File) Fsync(p *sim.Proc) error {
	f.os.Node.CPU.Syscall(p)
	if err := f.os.PC.FlushInode(p, f.fs, f.attr.Ino); err != nil {
		return err
	}
	if sy, ok := f.fs.(Syncer); ok {
		return sy.Sync(p)
	}
	return nil
}

// Close flushes and closes the file.
func (f *File) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	if err := f.Fsync(p); err != nil {
		return err
	}
	f.closed = true
	return nil
}
