package kernel

// This file is the page cache: per-(filesystem, inode, page) frames
// with LRU eviction, busy pinning, dirty tracking and writeback, plus
// the chunked fill path that models Linux 2.6-style read combining.
import (
	"container/list"
	"fmt"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PageCache is the node's unified page cache (§2.3.1): copies of file
// pages kept in physical frames. Pages are the natural currency of
// buffered remote file access — "Pages of the page-cache are already
// locked in physical memory… their physical address is easy to obtain"
// — which is exactly what the physical-address network primitives
// consume.
type PageCache struct {
	node     *hw.Node
	maxPages int
	entries  map[pcKey]*CachedPage
	lru      *list.List

	// Stats
	HitCount, MissCount, WritebackCount sim.Counter
}

type pcKey struct {
	fs  FileSystem
	ino InodeID
	idx int64
}

// CachedPage is one resident page.
type CachedPage struct {
	key   pcKey
	Frame *mem.Frame
	N     int // valid bytes (short only for the EOF page)
	Dirty bool
	busy  bool // pinned by an in-progress operation (not evictable)
	lruEl *list.Element
}

// NewPageCache creates a cache bounded to maxPages resident pages
// (0 = unbounded).
func NewPageCache(node *hw.Node, maxPages int) *PageCache {
	return &PageCache{
		node:     node,
		maxPages: maxPages,
		entries:  make(map[pcKey]*CachedPage),
		lru:      list.New(),
	}
}

// Resident returns the number of cached pages.
func (pc *PageCache) Resident() int { return len(pc.entries) }

// DirtyCount returns the number of dirty pages.
func (pc *PageCache) DirtyCount() int {
	n := 0
	for _, pg := range pc.entries {
		if pg.Dirty {
			n++
		}
	}
	return n
}

// Lookup returns the cached page, or nil on miss, updating LRU and
// statistics.
func (pc *PageCache) Lookup(fs FileSystem, ino InodeID, idx int64) *CachedPage {
	pg := pc.entries[pcKey{fs, ino, idx}]
	if pg == nil {
		pc.MissCount.Add(mem.PageSize)
		return nil
	}
	pc.lru.MoveToFront(pg.lruEl)
	pc.HitCount.Add(mem.PageSize)
	return pg
}

// Fill reads page idx of (fs, ino) into the cache and returns it,
// allocating a frame (charged to the CPU) and calling fs.ReadPage —
// which for a remote filesystem is a network transfer straight into the
// frame. On miss+fill the returned page is marked busy until Unbusy.
func (pc *PageCache) Fill(p *sim.Proc, fs FileSystem, ino InodeID, idx int64) (*CachedPage, error) {
	return pc.FillChunk(p, fs, ino, idx, 1)
}

// FillChunk is Fill with request combining: on a miss, up to chunk
// consecutive uncached pages are fetched in one vectorial request if
// the filesystem supports PageRangeReader (the Linux 2.6 behaviour the
// paper's §3.3 anticipates). The page at idx is returned busy.
func (pc *PageCache) FillChunk(p *sim.Proc, fs FileSystem, ino InodeID, idx int64, chunk int) (*CachedPage, error) {
	if pg := pc.Lookup(fs, ino, idx); pg != nil {
		return pg, nil
	}
	rr, vectorial := fs.(PageRangeReader)
	if chunk < 1 || !vectorial {
		chunk = 1
	}
	// Extend the run over consecutive uncached pages only.
	run := 1
	for run < chunk {
		if pc.entries[pcKey{fs, ino, idx + int64(run)}] != nil {
			break
		}
		run++
	}
	if err := pc.makeRoom(p); err != nil {
		return nil, err
	}
	frames := make([]*mem.Frame, run)
	for i := range frames {
		pc.node.CPU.PageAlloc(p)
		f, err := pc.node.Mem.AllocFrame()
		if err != nil {
			for _, g := range frames[:i] {
				pc.node.Mem.Put(g)
			}
			return nil, err
		}
		frames[i] = f
	}
	var total int
	var err error
	if run == 1 {
		total, err = fs.ReadPage(p, ino, idx, frames[0])
	} else {
		total, err = rr.ReadPages(p, ino, idx, frames)
	}
	if err != nil {
		for _, f := range frames {
			pc.node.Mem.Put(f)
		}
		return nil, err
	}
	var first *CachedPage
	for i, f := range frames {
		n := total - i*mem.PageSize
		if n < 0 {
			n = 0
		}
		if n > mem.PageSize {
			n = mem.PageSize
		}
		pg := &CachedPage{key: pcKey{fs, ino, idx + int64(i)}, Frame: f, N: n}
		pg.lruEl = pc.lru.PushFront(pg)
		pc.entries[pg.key] = pg
		if i == 0 {
			pg.busy = true
			first = pg
		}
	}
	return first, nil
}

// Add inserts a fresh writable page without reading from the backing
// store (whole-page overwrite).
func (pc *PageCache) Add(p *sim.Proc, fs FileSystem, ino InodeID, idx int64) (*CachedPage, error) {
	if err := pc.makeRoom(p); err != nil {
		return nil, err
	}
	pc.node.CPU.PageAlloc(p)
	frame, err := pc.node.Mem.AllocFrame()
	if err != nil {
		return nil, err
	}
	pg := &CachedPage{key: pcKey{fs, ino, idx}, Frame: frame, busy: true}
	pg.lruEl = pc.lru.PushFront(pg)
	pc.entries[pg.key] = pg
	return pg, nil
}

// Unbusy clears the busy mark set by Fill/Add.
func (pc *PageCache) Unbusy(pg *CachedPage) { pg.busy = false }

func (pc *PageCache) makeRoom(p *sim.Proc) error {
	if pc.maxPages <= 0 {
		return nil
	}
	for len(pc.entries) >= pc.maxPages {
		evicted := false
		for el := pc.lru.Back(); el != nil; el = el.Prev() {
			pg := el.Value.(*CachedPage)
			if pg.busy {
				continue
			}
			if pg.Dirty {
				if err := pc.writeback(p, pg); err != nil {
					return err
				}
			}
			pc.remove(pg)
			evicted = true
			break
		}
		if !evicted {
			return fmt.Errorf("kernel: page cache wedged (all %d pages busy)", len(pc.entries))
		}
	}
	return nil
}

func (pc *PageCache) remove(pg *CachedPage) {
	delete(pc.entries, pg.key)
	pc.lru.Remove(pg.lruEl)
	pc.node.Mem.Put(pg.Frame)
}

func (pc *PageCache) writeback(p *sim.Proc, pg *CachedPage) error {
	pc.WritebackCount.Add(pg.N)
	if err := pg.key.fs.WritePage(p, pg.key.ino, pg.key.idx, pg.Frame, pg.N); err != nil {
		return err
	}
	pg.Dirty = false
	return nil
}

// FlushInode writes back all dirty pages of (fs, ino) in page order
// (fsync / close semantics).
func (pc *PageCache) FlushInode(p *sim.Proc, fs FileSystem, ino InodeID) error {
	var dirty []*CachedPage
	for _, pg := range pc.entries {
		if pg.key.fs == fs && pg.key.ino == ino && pg.Dirty {
			dirty = append(dirty, pg)
		}
	}
	sortPages(dirty)
	for _, pg := range dirty {
		if err := pc.writeback(p, pg); err != nil {
			return err
		}
	}
	return nil
}

// InvalidateInode drops all pages of (fs, ino), discarding dirty data
// (used by truncate/unlink and O_DIRECT coherence).
func (pc *PageCache) InvalidateInode(fs FileSystem, ino InodeID) {
	var doomed []*CachedPage
	for _, pg := range pc.entries {
		if pg.key.fs == fs && pg.key.ino == ino {
			doomed = append(doomed, pg)
		}
	}
	for _, pg := range doomed {
		pc.remove(pg)
	}
}

func sortPages(ps []*CachedPage) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].key.idx < ps[j-1].key.idx; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
