// Package kernel models the operating-system pieces the paper's
// in-kernel applications live in: a VFS with dentry/attribute caches, a
// page cache with per-page transfers and writeback, and a file API with
// both buffered and direct (O_DIRECT) access paths (§2.3).
//
// The behaviours that matter to the paper are modelled precisely:
//
//   - Buffered I/O moves data per page (4 kB) between the page cache
//     and the backing filesystem, and copies between page cache and the
//     application ("Data transfers are processed per page… This leads to
//     an under-utilization of the network bandwidth", §3.3). Pages are
//     physical frames whose addresses a kernel client obtains trivially
//     — the input to the physical-address primitives.
//   - Direct I/O bypasses the page cache and hands the application's
//     own (user-virtual) buffer to the filesystem — the zero-copy path
//     with the same requirements as zero-copy sockets (§2.3.2).
//   - Metadata goes through dentry and attribute caches, which is why
//     the in-kernel ORFS client beats the user-level ORFA library on
//     metadata ("benefits from VFS caches improving meta-data access",
//     §3.1).
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// InodeID identifies a file within one filesystem.
type InodeID uint64

// FileKind distinguishes regular files from directories.
type FileKind int

const (
	// RegularFile is an ordinary data file.
	RegularFile FileKind = iota
	// Directory is a directory.
	Directory
)

// Attr is the subset of inode attributes the protocols carry.
type Attr struct {
	Ino     InodeID
	Kind    FileKind
	Size    int64
	Version uint64 // bumped on every modification (cache validation)
}

// DirEntry is one directory entry.
type DirEntry struct {
	Name string
	Ino  InodeID
	Kind FileKind
}

// Standard filesystem errors.
var (
	ErrNotFound  = errors.New("no such file or directory")
	ErrExists    = errors.New("file exists")
	ErrNotDir    = errors.New("not a directory")
	ErrIsDir     = errors.New("is a directory")
	ErrNotEmpty  = errors.New("directory not empty")
	ErrBadOffset = errors.New("bad offset")
)

// FileSystem is what a filesystem implementation (the local memfs, or
// the remote ORFS client) provides to the VFS.
//
// The two data paths mirror the paper's two access types:
// ReadPage/WritePage serve the page cache (buffered, per-page, the
// frame's physical address is available to the implementation), while
// ReadDirect/WriteDirect serve O_DIRECT with an address-typed vector
// (normally user-virtual) of arbitrary size.
type FileSystem interface {
	FSName() string
	Root() InodeID

	Lookup(p *sim.Proc, dir InodeID, name string) (Attr, error)
	Getattr(p *sim.Proc, ino InodeID) (Attr, error)
	Readdir(p *sim.Proc, dir InodeID) ([]DirEntry, error)
	Create(p *sim.Proc, dir InodeID, name string) (Attr, error)
	Mkdir(p *sim.Proc, dir InodeID, name string) (Attr, error)
	Unlink(p *sim.Proc, dir InodeID, name string) error
	Rmdir(p *sim.Proc, dir InodeID, name string) error
	Truncate(p *sim.Proc, ino InodeID, size int64) error

	// ReadPage fills frame with page index idx of ino, returning the
	// number of valid bytes (0 at and past EOF).
	ReadPage(p *sim.Proc, ino InodeID, idx int64, frame *mem.Frame) (int, error)
	// WritePage writes n bytes of frame as page idx of ino.
	WritePage(p *sim.Proc, ino InodeID, idx int64, frame *mem.Frame, n int) error

	// ReadDirect reads up to v.TotalLen() bytes at off into v.
	ReadDirect(p *sim.Proc, ino InodeID, off int64, v core.Vector) (int, error)
	// WriteDirect writes v.TotalLen() bytes at off from v.
	WriteDirect(p *sim.Proc, ino InodeID, off int64, v core.Vector) (int, error)
}

// Syncer is the optional write-behind barrier: a filesystem that
// pipelines its writes (ORFS over a windowed session) implements it so
// Fsync/Close can drain the in-flight writes after the page cache has
// issued them all.
type Syncer interface {
	// Sync blocks until every write the filesystem has accepted is
	// durable at its backing store, returning the first write error.
	Sync(p *sim.Proc) error
}

// PageRangeReader is the optional combining extension the paper
// predicts for Linux 2.6 ("able to combine multiple page-sized
// accesses in a single request", §3.3) — it requires exactly the
// vectorial communication primitives §4.1 argues for. A filesystem
// implementing it can fill several consecutive pages in one request;
// the page cache uses it when OS.SetReadChunkPages enables combining.
type PageRangeReader interface {
	// ReadPages fills frames with consecutive pages starting at idx,
	// returning the total valid bytes (short at EOF).
	ReadPages(p *sim.Proc, ino InodeID, idx int64, frames []*mem.Frame) (int, error)
}

// pageIndex returns the page index containing byte offset off.
func pageIndex(off int64) int64 { return off / mem.PageSize }

// pagesSpanned returns how many pages [off, off+n) touches.
func pagesSpanned(off int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	return pageIndex(off+int64(n)-1) - pageIndex(off) + 1
}

func (a Attr) String() string {
	k := "file"
	if a.Kind == Directory {
		k = "dir"
	}
	return fmt.Sprintf("%s ino=%d size=%d v=%d", k, a.Ino, a.Size, a.Version)
}
