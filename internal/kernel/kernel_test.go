package kernel_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/sim"
	"repro/internal/vm"
)

// rig runs body as a process on a node with a memfs mounted at /mnt.
type rig struct {
	env  *sim.Engine
	node *hw.Node
	os   *kernel.OS
	fs   *memfs.FS
	as   *vm.AddressSpace
	buf  vm.VirtAddr // 1MB scratch user buffer
}

func run(t *testing.T, body func(r *rig, p *sim.Proc)) {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := c.AddNode("n")
	osys := kernel.NewOS(node, 0)
	fs := memfs.New("memfs", node, 0)
	osys.Mount("/mnt", fs)
	r := &rig{env: env, node: node, os: osys, fs: fs}
	r.as = node.NewUserSpace("app")
	r.buf, _ = r.as.Mmap(1<<20, "scratch")
	completed := false
	env.Spawn("test", func(p *sim.Proc) {
		body(r, p)
		completed = true
	})
	env.Run(0)
	if !completed {
		t.Fatal("test body did not run to completion (deadlock?)")
	}
}

// writeFile creates a file with the given contents via the VFS.
func (r *rig) writeFile(t *testing.T, p *sim.Proc, path string, data []byte) {
	t.Helper()
	f, err := r.os.Open(p, path, kernel.OCreate|kernel.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	r.as.WriteBytes(r.buf, data)
	if n, err := f.Write(p, r.as, r.buf, len(data)); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if err := f.Close(p); err != nil {
		t.Fatal(err)
	}
}

// readFile reads a whole file via the VFS.
func (r *rig) readFile(t *testing.T, p *sim.Proc, path string, flags kernel.OpenFlag) []byte {
	t.Helper()
	f, err := r.os.Open(p, path, flags)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(p)
	var out []byte
	for {
		n, err := f.Read(p, r.as, r.buf, 300000)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		chunk, _ := r.as.ReadBytes(r.buf, n)
		out = append(out, chunk...)
	}
	return out
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*13 + 7)
	}
	return out
}

func TestWriteReadRoundtripBuffered(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		for _, n := range []int{1, 4095, 4096, 4097, 100000} {
			data := pattern(n)
			r.writeFile(t, p, "/mnt/f", data)
			got := r.readFile(t, p, "/mnt/f", 0)
			if !bytes.Equal(got, data) {
				t.Fatalf("n=%d: buffered roundtrip corrupted (got %d bytes)", n, len(got))
			}
		}
	})
}

func TestWriteReadRoundtripDirect(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		data := pattern(50000)
		f, err := r.os.Open(p, "/mnt/d", kernel.OCreate|kernel.ODirect)
		if err != nil {
			t.Fatal(err)
		}
		r.as.WriteBytes(r.buf, data)
		if n, err := f.Write(p, r.as, r.buf, len(data)); err != nil || n != len(data) {
			t.Fatalf("direct write: n=%d err=%v", n, err)
		}
		f.Close(p)
		got := r.readFile(t, p, "/mnt/d", kernel.ODirect)
		if !bytes.Equal(got, data) {
			t.Fatal("direct roundtrip corrupted")
		}
	})
}

func TestDirectSeesBufferedWrites(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		data := pattern(20000)
		r.writeFile(t, p, "/mnt/x", data) // buffered, Close flushes
		got := r.readFile(t, p, "/mnt/x", kernel.ODirect)
		if !bytes.Equal(got, data) {
			t.Fatal("O_DIRECT read missed flushed buffered writes")
		}
	})
}

func TestBufferedSeesDirectWrites(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		first := pattern(8192)
		r.writeFile(t, p, "/mnt/y", first)
		_ = r.readFile(t, p, "/mnt/y", 0) // populate page cache
		second := bytes.Repeat([]byte{0xEE}, 8192)
		f, _ := r.os.Open(p, "/mnt/y", kernel.ODirect)
		r.as.WriteBytes(r.buf, second)
		f.Write(p, r.as, r.buf, len(second))
		f.Close(p)
		got := r.readFile(t, p, "/mnt/y", 0)
		if !bytes.Equal(got, second) {
			t.Fatal("buffered read returned stale cached pages after O_DIRECT write")
		}
	})
}

func TestPageCacheHitsOnReRead(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		data := pattern(64 * 1024)
		r.writeFile(t, p, "/mnt/c", data)
		r.os.PC.InvalidateInode(r.fs, mustStat(t, r, p, "/mnt/c").Ino)
		_ = r.readFile(t, p, "/mnt/c", 0)
		misses := r.os.PC.MissCount.N
		_ = r.readFile(t, p, "/mnt/c", 0)
		if r.os.PC.MissCount.N != misses {
			t.Fatalf("re-read missed the page cache (%d → %d misses)", misses, r.os.PC.MissCount.N)
		}
		if r.os.PC.HitCount.N == 0 {
			t.Fatal("no page cache hits recorded")
		}
	})
}

func TestRereadFasterThanFirstRead(t *testing.T) {
	// The page cache's entire point (§2.3.1): repeated access is a
	// memory copy, not a storage access.
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := c.AddNode("n")
	osys := kernel.NewOS(node, 0)
	fs := memfs.New("memfs", node, 50*time.Microsecond) // slow disk
	osys.Mount("/mnt", fs)
	as := node.NewUserSpace("app")
	buf, _ := as.Mmap(1<<20, "scratch")
	var cold, warm sim.Time
	env.Spawn("t", func(p *sim.Proc) {
		f, _ := osys.Open(p, "/mnt/f", kernel.OCreate)
		as.WriteBytes(buf, pattern(256*1024))
		f.Write(p, as, buf, 256*1024)
		f.Close(p)
		osys.PC.InvalidateInode(fs, 0) // no-op ino; drop below instead
		g, _ := osys.Open(p, "/mnt/f", 0)
		a, _ := osys.Stat(p, "/mnt/f")
		osys.PC.InvalidateInode(fs, a.Ino)
		t0 := p.Now()
		g.ReadAt(p, as, buf, 256*1024, 0)
		cold = p.Now() - t0
		t1 := p.Now()
		g.ReadAt(p, as, buf, 256*1024, 0)
		warm = p.Now() - t1
		g.Close(p)
	})
	env.Run(0)
	if warm*3 > cold {
		t.Fatalf("warm read %v not much faster than cold %v", warm, cold)
	}
}

func mustStat(t *testing.T, r *rig, p *sim.Proc, path string) kernel.Attr {
	t.Helper()
	a, err := r.os.Stat(p, path)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMetadataOps(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		if err := r.os.Mkdir(p, "/mnt/dir"); err != nil {
			t.Fatal(err)
		}
		r.writeFile(t, p, "/mnt/dir/a", []byte("aaa"))
		r.writeFile(t, p, "/mnt/dir/b", []byte("bbbb"))
		ents, err := r.os.Readdir(p, "/mnt/dir")
		if err != nil || len(ents) != 2 {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if ents[0].Name != "a" || ents[1].Name != "b" {
			t.Fatalf("readdir order: %v", ents)
		}
		a := mustStat(t, r, p, "/mnt/dir/b")
		if a.Size != 4 || a.Kind != kernel.RegularFile {
			t.Fatalf("stat: %v", a)
		}
		if err := r.os.Rmdir(p, "/mnt/dir"); err != kernel.ErrNotEmpty {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		r.os.Unlink(p, "/mnt/dir/a")
		r.os.Unlink(p, "/mnt/dir/b")
		if err := r.os.Rmdir(p, "/mnt/dir"); err != nil {
			t.Fatalf("rmdir: %v", err)
		}
		if _, err := r.os.Stat(p, "/mnt/dir"); err == nil {
			t.Fatal("stat of removed dir succeeded")
		}
	})
}

func TestDentryCache(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		r.writeFile(t, p, "/mnt/f", []byte("x"))
		mustStat(t, r, p, "/mnt/f")
		h0 := r.os.DCacheHits.N
		mustStat(t, r, p, "/mnt/f")
		mustStat(t, r, p, "/mnt/f")
		if r.os.DCacheHits.N != h0+2 {
			t.Fatalf("dcache hits %d → %d, want +2", h0, r.os.DCacheHits.N)
		}
		// Unlink invalidates.
		r.os.Unlink(p, "/mnt/f")
		if _, err := r.os.Stat(p, "/mnt/f"); err == nil {
			t.Fatal("stale dentry after unlink")
		}
	})
}

func TestTruncateOnOpen(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		r.writeFile(t, p, "/mnt/t", pattern(10000))
		f, err := r.os.Open(p, "/mnt/t", kernel.OTrunc)
		if err != nil {
			t.Fatal(err)
		}
		f.Close(p)
		if got := r.readFile(t, p, "/mnt/t", 0); len(got) != 0 {
			t.Fatalf("file has %d bytes after O_TRUNC", len(got))
		}
	})
}

func TestSparseFileHolesReadZero(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		f, _ := r.os.Open(p, "/mnt/sparse", kernel.OCreate)
		r.as.WriteBytes(r.buf, []byte("end"))
		f.WriteAt(p, r.as, r.buf, 3, 3*mem.PageSize)
		f.Close(p)
		got := r.readFile(t, p, "/mnt/sparse", 0)
		if len(got) != 3*mem.PageSize+3 {
			t.Fatalf("sparse file length %d", len(got))
		}
		for i := 0; i < 3*mem.PageSize; i++ {
			if got[i] != 0 {
				t.Fatalf("hole byte %d = %d", i, got[i])
			}
		}
		if string(got[3*mem.PageSize:]) != "end" {
			t.Fatal("tail corrupted")
		}
	})
}

func TestPageCacheEviction(t *testing.T) {
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := c.AddNode("n")
	osys := kernel.NewOS(node, 8) // tiny page cache
	fs := memfs.New("memfs", node, 0)
	osys.Mount("/mnt", fs)
	as := node.NewUserSpace("app")
	buf, _ := as.Mmap(1<<20, "scratch")
	env.Spawn("t", func(p *sim.Proc) {
		f, _ := osys.Open(p, "/mnt/big", kernel.OCreate)
		data := pattern(64 * mem.PageSize)
		as.WriteBytes(buf, data)
		if _, err := f.Write(p, as, buf, len(data)); err != nil {
			t.Error(err)
			return
		}
		f.Close(p)
		if osys.PC.Resident() > 8 {
			t.Errorf("page cache resident %d exceeds bound 8", osys.PC.Resident())
		}
		// Eviction wrote dirty pages back: data must survive.
		got := make([]byte, len(data))
		f2, _ := osys.Open(p, "/mnt/big", 0)
		n, _ := f2.ReadAt(p, as, buf, len(data), 0)
		chunk, _ := as.ReadBytes(buf, n)
		copy(got, chunk)
		if n != len(data) || !bytes.Equal(got[:n], data) {
			t.Errorf("data lost across eviction: read %d bytes", n)
		}
	})
	env.Run(0)
}

func TestSeekSemantics(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		r.writeFile(t, p, "/mnt/s", pattern(1000))
		f, _ := r.os.Open(p, "/mnt/s", 0)
		defer f.Close(p)
		f.Seek(100, 0)
		n, _ := f.Read(p, r.as, r.buf, 10)
		got, _ := r.as.ReadBytes(r.buf, n)
		if !bytes.Equal(got, pattern(1000)[100:110]) {
			t.Fatal("seek/read wrong data")
		}
		f.Seek(-5, 2)
		n, _ = f.Read(p, r.as, r.buf, 100)
		if n != 5 {
			t.Fatalf("read at EOF-5 returned %d", n)
		}
	})
}

// Property: a random sequence of buffered/direct reads and writes on a
// file matches a flat in-memory reference model byte for byte.
func TestFileOpsMatchReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		env := sim.NewEngine()
		c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
		node := c.AddNode("n")
		osys := kernel.NewOS(node, 32) // small cache: force evictions
		fs := memfs.New("memfs", node, 0)
		osys.Mount("/m", fs)
		as := node.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "scratch")
		env.Spawn("t", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ref := make([]byte, 0, 1<<20)
			fb, _ := osys.Open(p, "/m/f", kernel.OCreate)
			fd, _ := osys.Open(p, "/m/f", kernel.ODirect)
			for op := 0; op < 25 && ok; op++ {
				f := fb
				if rng.Intn(2) == 1 {
					f = fd
				}
				off := rng.Int63n(200 * 1024)
				n := rng.Intn(60*1024) + 1
				if rng.Intn(2) == 0 { // write
					data := make([]byte, n)
					rng.Read(data)
					as.WriteBytes(buf, data)
					if _, err := f.WriteAt(p, as, buf, n, off); err != nil {
						ok = false
						return
					}
					if need := int(off) + n; need > len(ref) {
						ref = append(ref, make([]byte, need-len(ref))...)
					}
					copy(ref[off:], data)
				} else { // read
					got := make([]byte, n)
					rn, err := f.ReadAt(p, as, buf, n, off)
					if err != nil {
						ok = false
						return
					}
					chunk, _ := as.ReadBytes(buf, rn)
					copy(got, chunk)
					want := []byte{}
					if int(off) < len(ref) {
						end := int(off) + n
						if end > len(ref) {
							end = len(ref)
						}
						want = ref[off:end]
					}
					if rn != len(want) || !bytes.Equal(got[:rn], want) {
						ok = false
						return
					}
				}
			}
			fb.Close(p)
			fd.Close(p)
		})
		env.Run(0)
		return ok
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
