package orfs_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

type rig struct {
	env            *sim.Engine
	client, server *hw.Node
	backing        *memfs.FS
	fs             *orfs.FS
}

func run(t *testing.T, body func(r *rig, p *sim.Proc)) {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	r := &rig{env: env}
	r.client, r.server = c.AddNode("client"), c.AddNode("server")
	r.backing = memfs.New("backing", r.server, 0)
	srv := rfsrv.NewServer(r.server, r.backing)
	if _, err := srv.ServeMX(mx.Attach(r.server), 1, 1); err != nil {
		t.Fatal(err)
	}
	mxC := mx.Attach(r.client)
	done := false
	env.Spawn("t", func(p *sim.Proc) {
		cl, err := rfsrv.NewMXClient(mxC, 2, true, r.client.Kernel, r.server.ID, 1)
		if err != nil {
			t.Error(err)
			return
		}
		r.fs = orfs.New("orfs", cl)
		body(r, p)
		done = true
	})
	env.Run(0)
	if !done {
		t.Fatal("deadlock")
	}
}

func TestMetaOpMapping(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		root, err := r.fs.Getattr(p, r.fs.Root())
		if err != nil || root.Kind != kernel.Directory {
			t.Fatalf("root: %v %v", root, err)
		}
		d, err := r.fs.Mkdir(p, root.Ino, "dir")
		if err != nil {
			t.Fatal(err)
		}
		f, err := r.fs.Create(p, d.Ino, "file")
		if err != nil {
			t.Fatal(err)
		}
		lk, err := r.fs.Lookup(p, d.Ino, "file")
		if err != nil || lk.Ino != f.Ino {
			t.Fatalf("lookup: %v %v", lk, err)
		}
		if _, err := r.fs.Lookup(p, d.Ino, "nope"); err != kernel.ErrNotFound {
			t.Fatalf("missing lookup: %v", err)
		}
		ents, err := r.fs.Readdir(p, d.Ino)
		if err != nil || len(ents) != 1 {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if err := r.fs.Truncate(p, f.Ino, 777); err != nil {
			t.Fatal(err)
		}
		a, _ := r.fs.Getattr(p, f.Ino)
		if a.Size != 777 {
			t.Fatalf("truncate size: %d", a.Size)
		}
		if err := r.fs.Unlink(p, d.Ino, "file"); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Rmdir(p, root.Ino, "dir"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadPageZeroCopyIntoFrame(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		root, _ := r.fs.Getattr(p, r.fs.Root())
		f, _ := r.fs.Create(p, root.Ino, "f")
		// Seed two pages of data through WriteDirect.
		kva, _ := r.client.Kernel.Mmap(2*mem.PageSize, "src")
		data := make([]byte, 2*mem.PageSize)
		for i := range data {
			data[i] = byte(i * 13)
		}
		r.client.Kernel.WriteBytes(kva, data)
		if n, err := r.fs.WriteDirect(p, f.Ino, 0, core.Of(core.KernelSeg(r.client.Kernel, kva, len(data)))); err != nil || n != len(data) {
			t.Fatalf("write: %d %v", n, err)
		}
		frame, _ := r.client.Mem.AllocFrame()
		copies0 := r.client.CPU.CopyStats.N
		n, err := r.fs.ReadPage(p, f.Ino, 1, frame)
		if err != nil || n != mem.PageSize {
			t.Fatalf("ReadPage: %d %v", n, err)
		}
		if !bytes.Equal(frame.Data(), data[mem.PageSize:]) {
			t.Fatal("page content mismatch")
		}
		// Physically addressed kernel receive: no client-side copy.
		if r.client.CPU.CopyStats.N != copies0 {
			t.Errorf("ReadPage used %d host copies (should be zero-copy)",
				r.client.CPU.CopyStats.N-copies0)
		}
		// Past EOF.
		n, err = r.fs.ReadPage(p, f.Ino, 50, frame)
		if err != nil || n != 0 {
			t.Fatalf("EOF ReadPage: %d %v", n, err)
		}
	})
}

func TestWritePageRoundtrip(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		root, _ := r.fs.Getattr(p, r.fs.Root())
		f, _ := r.fs.Create(p, root.Ino, "f")
		frame, _ := r.client.Mem.AllocFrame()
		for i := range frame.Data() {
			frame.Data()[i] = byte(i * 3)
		}
		if err := r.fs.WritePage(p, f.Ino, 2, frame, mem.PageSize); err != nil {
			t.Fatal(err)
		}
		// Verify server-side.
		blk := r.backing.FrameAt(f.Ino, 2)
		if blk == nil || !bytes.Equal(blk.Data(), frame.Data()) {
			t.Fatal("server block mismatch")
		}
		a, _ := r.fs.Getattr(p, f.Ino)
		if a.Size != 3*mem.PageSize {
			t.Fatalf("size after WritePage = %d", a.Size)
		}
	})
}

func TestDirectVectorPassThrough(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		root, _ := r.fs.Getattr(p, r.fs.Root())
		f, _ := r.fs.Create(p, root.Ino, "f")
		as := r.client.NewUserSpace("app")
		va, _ := as.Mmap(100000, "buf")
		data := make([]byte, 100000)
		for i := range data {
			data[i] = byte(i * 11)
		}
		as.WriteBytes(va, data)
		// Rendezvous-sized write from a user vector.
		if n, err := r.fs.WriteDirect(p, f.Ino, 0, core.Of(core.UserSeg(as, va, len(data)))); err != nil || n != len(data) {
			t.Fatalf("WriteDirect: %d %v", n, err)
		}
		as.WriteBytes(va, make([]byte, len(data)))
		if n, err := r.fs.ReadDirect(p, f.Ino, 0, core.Of(core.UserSeg(as, va, len(data)))); err != nil || n != len(data) {
			t.Fatalf("ReadDirect: %d %v", n, err)
		}
		got, _ := as.ReadBytes(va, len(data))
		if !bytes.Equal(got, data) {
			t.Fatal("direct roundtrip corrupted")
		}
		if r.fs.ReadOps.N == 0 || r.fs.WriteOps.N == 0 {
			t.Error("op counters not maintained")
		}
	})
}

var _ = vm.PageSize
