// Package orfs implements ORFS, the paper's in-kernel remote
// file-system client (§3.1): a kernel.FileSystem that forwards
// operations to a distant server over a rfsrv transport (GM or MX).
//
// Mounted through kernel.OS, ORFS gets everything the paper values
// about being in the kernel — the dentry/attribute caches for metadata
// and the page cache for buffered access — and exercises exactly the
// network-interface interactions the paper studies:
//
//   - Buffered access: kernel.PageCache calls ReadPage/WritePage; the
//     destination is a page-cache frame addressed physically, so on MX
//     (and on GM with the §3.3 physical extension) the NIC DMAs file
//     data straight into the page cache.
//   - Direct access (O_DIRECT): kernel.File passes the application's
//     user-virtual vector down; on MX it is pinned per transfer (or
//     rides the rendezvous), on GM it must go through the GMKRC
//     registration cache.
package orfs

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// FS is an ORFS mount's client state.
type FS struct {
	name string
	cl   rfsrv.Client

	// Ops counts RPCs issued per operation class.
	MetaOps, ReadOps, WriteOps sim.Counter
}

// New creates an ORFS client over an rfsrv transport.
func New(name string, cl rfsrv.Client) *FS {
	return &FS{name: name, cl: cl}
}

// Client returns the underlying transport (stats).
func (f *FS) Client() rfsrv.Client { return f.cl }

// FSName implements kernel.FileSystem.
func (f *FS) FSName() string { return f.name }

// Root implements kernel.FileSystem. Inode 0 is the protocol's "root"
// alias; the server resolves it.
func (f *FS) Root() kernel.InodeID { return 0 }

func (f *FS) meta(p *sim.Proc, req *rfsrv.Req) (*rfsrv.Resp, error) {
	f.MetaOps.Add(1)
	return f.cl.Meta(p, req)
}

// Lookup implements kernel.FileSystem.
func (f *FS) Lookup(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: dir, Name: name})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Getattr implements kernel.FileSystem.
func (f *FS) Getattr(p *sim.Proc, ino kernel.InodeID) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Readdir implements kernel.FileSystem.
func (f *FS) Readdir(p *sim.Proc, dir kernel.InodeID) ([]kernel.DirEntry, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: dir})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Create implements kernel.FileSystem.
func (f *FS) Create(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir, Name: name})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Mkdir implements kernel.FileSystem.
func (f *FS) Mkdir(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: dir, Name: name})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Unlink implements kernel.FileSystem.
func (f *FS) Unlink(p *sim.Proc, dir kernel.InodeID, name string) error {
	_, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: dir, Name: name})
	return err
}

// Rmdir implements kernel.FileSystem.
func (f *FS) Rmdir(p *sim.Proc, dir kernel.InodeID, name string) error {
	_, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpRmdir, Ino: dir, Name: name})
	return err
}

// Truncate implements kernel.FileSystem.
func (f *FS) Truncate(p *sim.Proc, ino kernel.InodeID, size int64) error {
	_, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: size})
	return err
}

// ReadPage implements kernel.FileSystem: the buffered path. The frame's
// physical address goes straight to the network layer — the paper's
// page-cache case (§2.3.1).
func (f *FS) ReadPage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame) (int, error) {
	f.ReadOps.Add(mem.PageSize)
	resp, err := f.cl.Read(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), mem.PageSize)))
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// ReadPages implements kernel.PageRangeReader: several consecutive
// pages in one vectorial request — the request combining the paper
// predicts for Linux 2.6 (§3.3), possible precisely because the
// transport supports vectors of physical segments (§4.1).
func (f *FS) ReadPages(p *sim.Proc, ino kernel.InodeID, idx int64, frames []*mem.Frame) (int, error) {
	v := make(core.Vector, 0, len(frames))
	for _, fr := range frames {
		v = append(v, core.PhysSeg(fr.Addr(), mem.PageSize))
	}
	f.ReadOps.Add(v.TotalLen())
	resp, err := f.cl.Read(p, ino, idx*mem.PageSize, v)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// WritePage implements kernel.FileSystem.
func (f *FS) WritePage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame, n int) error {
	f.WriteOps.Add(n)
	_, err := f.cl.Write(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), n)))
	return err
}

// ReadDirect implements kernel.FileSystem: the O_DIRECT path, handing
// the application's own vector to the transport (§2.3.2).
func (f *FS) ReadDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	f.ReadOps.Add(v.TotalLen())
	resp, err := f.cl.Read(p, ino, off, v)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// WriteDirect implements kernel.FileSystem.
func (f *FS) WriteDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	f.WriteOps.Add(v.TotalLen())
	resp, err := f.cl.Write(p, ino, off, v)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

var _ kernel.FileSystem = (*FS)(nil)
