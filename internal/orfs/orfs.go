// Package orfs implements ORFS, the paper's in-kernel remote
// file-system client (§3.1): a kernel.FileSystem that forwards
// operations to a distant server over a rfsrv transport (GM or MX).
//
// Mounted through kernel.OS, ORFS gets everything the paper values
// about being in the kernel — the dentry/attribute caches for metadata
// and the page cache for buffered access — and exercises exactly the
// network-interface interactions the paper studies:
//
//   - Buffered access: kernel.PageCache calls ReadPage/WritePage; the
//     destination is a page-cache frame addressed physically, so on MX
//     (and on GM with the §3.3 physical extension) the NIC DMAs file
//     data straight into the page cache.
//   - Direct access (O_DIRECT): kernel.File passes the application's
//     user-virtual vector down; on MX it is pinned per transfer (or
//     rides the rendezvous), on GM it must go through the GMKRC
//     registration cache.
package orfs

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// FS is an ORFS mount's client state.
//
// Over a windowed rfsrv.Session the mount becomes asynchronous on both
// buffered paths:
//
//   - Readahead: sequential ReadPage misses prefetch the following
//     pages through the session window (up to window-1 outstanding),
//     so the per-page round trip the paper identifies as the buffered
//     ceiling (§3.3) overlaps with the application's consumption.
//   - Write-behind: WritePage snapshots the page into a shadow frame
//     and issues the write through the window without waiting; the
//     pipeline drains at the next read/metadata operation or at
//     Sync (wired to Fsync/Close through kernel.Syncer).
//
// With a plain synchronous client (or window 1) every path is
// identical to the paper's prototype.
type FS struct {
	name string
	cl   rfsrv.Client
	sess rfsrv.Async // non-nil only when cl pipelines with window > 1
	node *hw.Node    // the client node (shadow frames, copy charges)

	// readahead state: prefetches for the inode being streamed cover
	// page indices [raNext, raHigh).
	raIno  kernel.InodeID
	raNext int64 // next sequential page index expected
	raHigh int64 // next page index to prefetch
	ra     map[int64]*prefetch

	// write-behind state: in-flight page writes, their shadow frames,
	// and the first deferred error (surfaced at the next barrier).
	wb    []*wbWrite
	wbErr error
	// wbEnd tracks, per inode, the end-of-file the write-behind
	// pipeline has established: striped clusters extend only the
	// servers a page's stripes land on, so the mount publishes this
	// high-water mark through the cluster's size reconciliation
	// (SetFileSize) at every sync barrier — the write-behind half of
	// the size-coherence protocol. wbFailed marks inodes whose drain
	// errored: their tracked EOF is discarded, never published — a
	// failed page write must not grow servers over data that never
	// landed. Both are allocated only over a size-reconciling client.
	wbEnd    map[kernel.InodeID]int64
	wbFailed map[kernel.InodeID]bool

	// Ops counts RPCs issued per operation class.
	MetaOps, ReadOps, WriteOps sim.Counter
	// ReadaheadHits counts pages served from a completed prefetch;
	// Prefetched counts prefetch RPCs issued.
	ReadaheadHits, Prefetched sim.Counter
}

type prefetch struct {
	pd    rfsrv.PendingOp
	frame *mem.Frame
}

type wbWrite struct {
	pd     rfsrv.PendingOp
	shadow *mem.Frame
	ino    kernel.InodeID
}

// New creates an ORFS client over an rfsrv transport. When cl is a
// pipelined client (a *rfsrv.Session or a striped *rfsrv.Cluster) with
// a window above 1, the mount pipelines buffered reads (readahead) and
// writes (write-behind) through the window.
func New(name string, cl rfsrv.Client) *FS {
	f := &FS{name: name, cl: cl}
	if s, ok := cl.(rfsrv.Async); ok && s.Window() > 1 {
		f.sess = s
		f.node = s.Node()
		f.ra = make(map[int64]*prefetch)
		if _, ok := cl.(sizeReconciler); ok {
			// Track write-behind EOF only when the client can publish
			// it; a single-server session's size is always current.
			f.wbEnd = make(map[kernel.InodeID]int64)
			f.wbFailed = make(map[kernel.InodeID]bool)
		}
	}
	return f
}

// sizeReconciler is the optional client surface for publishing an
// externally tracked end-of-file (rfsrv.Cluster.SetFileSize): striped
// clusters reconcile every server's local size to it. Single-server
// clients do not implement it — one server's size is always current.
type sizeReconciler interface {
	SetFileSize(p *sim.Proc, ino kernel.InodeID, size int64) error
}

// Client returns the underlying transport (stats).
func (f *FS) Client() rfsrv.Client { return f.cl }

// Sync implements kernel.Syncer: drain the write-behind pipeline,
// surfacing the first deferred write error, then publish the drained
// pages' end-of-file through the client's size reconciliation (striped
// clusters only), so homed getattr and striped-read EOF clipping agree
// with the write-behind data on every server.
func (f *FS) Sync(p *sim.Proc) error {
	first := f.wbErr
	f.wbErr = nil
	for _, w := range f.wb {
		if _, err := w.pd.Wait(p); err != nil {
			if first == nil {
				first = err
			}
			if f.wbFailed != nil {
				f.wbFailed[w.ino] = true
			}
		}
		f.node.Mem.Put(w.shadow)
	}
	f.wb = nil
	if len(f.wbEnd) > 0 {
		sr := f.cl.(sizeReconciler) // wbEnd is only allocated alongside one
		// Deterministic publication order (map iteration is not). An
		// inode whose drain errored is discarded unpublished (its data
		// never fully landed); one whose publication fails keeps its
		// tracked EOF, so the next barrier retries it — a deferred
		// write error on one file must not lose another file's
		// publication.
		inos := make([]kernel.InodeID, 0, len(f.wbEnd))
		for ino := range f.wbEnd {
			inos = append(inos, ino)
		}
		sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
		for _, ino := range inos {
			if f.wbFailed[ino] {
				delete(f.wbEnd, ino)
				continue
			}
			if err := sr.SetFileSize(p, ino, f.wbEnd[ino]); err != nil {
				if first == nil {
					first = err
				}
				continue
			}
			delete(f.wbEnd, ino)
		}
	}
	if len(f.wbFailed) > 0 {
		f.wbFailed = make(map[kernel.InodeID]bool)
	}
	return first
}

// dropReadahead retires (and discards) every outstanding prefetch —
// required before anything that could make the prefetched bytes stale
// or free their frames while a receive is still scattering into them.
func (f *FS) dropReadahead(p *sim.Proc) {
	for idx, pf := range f.ra {
		pf.pd.Wait(p)
		f.node.Mem.Put(pf.frame)
		delete(f.ra, idx)
	}
	f.raIno, f.raNext, f.raHigh = 0, 0, 0
}

// barrier orders an operation behind the asynchronous pipeline: writes
// drain (so reads and metadata see them) and, when the operation can
// invalidate file contents, prefetches are discarded too.
func (f *FS) barrier(p *sim.Proc, invalidate bool) error {
	if f.sess == nil {
		return nil
	}
	err := f.Sync(p)
	if invalidate {
		f.dropReadahead(p)
	}
	return err
}

// FSName implements kernel.FileSystem.
func (f *FS) FSName() string { return f.name }

// Root implements kernel.FileSystem. Inode 0 is the protocol's "root"
// alias; the server resolves it.
func (f *FS) Root() kernel.InodeID { return 0 }

func (f *FS) meta(p *sim.Proc, req *rfsrv.Req) (*rfsrv.Resp, error) {
	// Metadata is ordered behind in-flight writes; operations that
	// change file contents also discard prefetched pages.
	invalidate := req.Op == rfsrv.OpTruncate || req.Op == rfsrv.OpUnlink
	if err := f.barrier(p, invalidate); err != nil {
		return nil, err
	}
	f.MetaOps.Add(1)
	return f.cl.Meta(p, req)
}

// Lookup implements kernel.FileSystem.
func (f *FS) Lookup(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: dir, Name: name})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Getattr implements kernel.FileSystem.
func (f *FS) Getattr(p *sim.Proc, ino kernel.InodeID) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Readdir implements kernel.FileSystem.
func (f *FS) Readdir(p *sim.Proc, dir kernel.InodeID) ([]kernel.DirEntry, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: dir})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Create implements kernel.FileSystem.
func (f *FS) Create(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir, Name: name})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Mkdir implements kernel.FileSystem.
func (f *FS) Mkdir(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	resp, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: dir, Name: name})
	if err != nil {
		return kernel.Attr{}, err
	}
	return resp.Attr, nil
}

// Unlink implements kernel.FileSystem.
func (f *FS) Unlink(p *sim.Proc, dir kernel.InodeID, name string) error {
	_, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: dir, Name: name})
	return err
}

// Rmdir implements kernel.FileSystem.
func (f *FS) Rmdir(p *sim.Proc, dir kernel.InodeID, name string) error {
	_, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpRmdir, Ino: dir, Name: name})
	return err
}

// Rename moves (srcName in srcDir) to (dstName in dstDir). The
// protocol client carries it natively (rfsrv.Renamer: a single server
// applies one local rename; a sharded cluster runs the cross-owner
// multi-phase protocol, whose interrupted runs surface as
// rfsrv.ErrRenameInDoubt — re-drive the same rename to resolve).
// Ordered behind the write-behind pipeline like any metadata
// operation.
func (f *FS) Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) error {
	rn, ok := f.cl.(rfsrv.Renamer)
	if !ok {
		return fmt.Errorf("orfs: client %T does not support rename", f.cl)
	}
	if err := f.barrier(p, false); err != nil {
		return err
	}
	f.MetaOps.Add(1)
	_, err := rn.Rename(p, srcDir, srcName, dstDir, dstName)
	return err
}

// Truncate implements kernel.FileSystem.
func (f *FS) Truncate(p *sim.Proc, ino kernel.InodeID, size int64) error {
	_, err := f.meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: size})
	return err
}

// ReadPage implements kernel.FileSystem: the buffered path. The frame's
// physical address goes straight to the network layer — the paper's
// page-cache case (§2.3.1). Over a windowed session, sequential misses
// prefetch the following pages through the window (readahead), so the
// next ReadPage usually finds its data already in flight or landed.
func (f *FS) ReadPage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame) (int, error) {
	if f.sess == nil {
		f.ReadOps.Add(mem.PageSize)
		resp, err := f.cl.Read(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), mem.PageSize)))
		if err != nil {
			return 0, err
		}
		return int(resp.N), nil
	}
	if err := f.barrier(p, false); err != nil {
		return 0, err
	}
	// Serve from an outstanding prefetch when the stream has one.
	if ino == f.raIno {
		if pf := f.ra[idx]; pf != nil {
			delete(f.ra, idx)
			resp, err := pf.pd.Wait(p)
			if err != nil {
				f.node.Mem.Put(pf.frame)
				return 0, err
			}
			n := int(resp.N)
			if n > 0 {
				f.node.CPU.Copy(p, n)
				copy(frame.Data()[:n], pf.frame.Data()[:n])
			}
			f.node.Mem.Put(pf.frame)
			f.ReadaheadHits.Add(n)
			f.raNext = idx + 1
			if n < mem.PageSize {
				f.dropReadahead(p) // EOF region: stop the stream
			} else {
				f.topUp(p, ino)
			}
			return n, nil
		}
	}
	// Miss. A non-sequential jump (or a new file) resets the stream.
	if ino != f.raIno || idx != f.raNext {
		f.dropReadahead(p)
		f.raIno, f.raNext, f.raHigh = ino, idx, idx+1
	}
	// Never block the miss read behind our own prefetches: if the
	// page's server has no free slot (possible over a striped cluster,
	// whose aggregate window the readahead cap is measured against),
	// retire the readahead we hold instead of deadlocking on it.
	if !f.sess.CanStart(ino, idx*mem.PageSize, mem.PageSize) {
		f.dropReadahead(p)
		f.raIno, f.raNext, f.raHigh = ino, idx, idx+1
	}
	f.ReadOps.Add(mem.PageSize)
	pd, err := f.sess.StartRead(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), mem.PageSize)))
	if err != nil {
		return 0, err
	}
	f.raNext = idx + 1
	if f.raHigh < f.raNext {
		f.raHigh = f.raNext
	}
	// Launch the readahead before waiting, so the prefetches overlap
	// this page's round trip.
	f.topUp(p, ino)
	resp, err := pd.Wait(p)
	if err != nil {
		return 0, err
	}
	if int(resp.N) < mem.PageSize {
		f.dropReadahead(p)
	}
	return int(resp.N), nil
}

// topUp issues prefetches for the pages after raHigh until window-1
// are outstanding, never blocking on the window (CanStart consults
// exactly the server that would receive the next prefetch, so striped
// clusters fill per-server windows without stalling the caller).
func (f *FS) topUp(p *sim.Proc, ino kernel.InodeID) {
	for len(f.ra) < f.sess.Window()-1 && f.sess.CanStart(ino, f.raHigh*mem.PageSize, mem.PageSize) {
		fr, err := f.node.Mem.AllocFrame()
		if err != nil {
			return
		}
		pd, err := f.sess.StartRead(p, ino, f.raHigh*mem.PageSize, core.Of(core.PhysSeg(fr.Addr(), mem.PageSize)))
		if err != nil {
			f.node.Mem.Put(fr)
			return
		}
		f.Prefetched.Add(mem.PageSize)
		f.ra[f.raHigh] = &prefetch{pd: pd, frame: fr}
		f.raHigh++
	}
}

// ReadPages implements kernel.PageRangeReader: several consecutive
// pages in one vectorial request — the request combining the paper
// predicts for Linux 2.6 (§3.3), possible precisely because the
// transport supports vectors of physical segments (§4.1). The single
// combined request already streams all pages in one data transfer, so
// it is not split across the window; it just orders behind the
// pipeline.
func (f *FS) ReadPages(p *sim.Proc, ino kernel.InodeID, idx int64, frames []*mem.Frame) (int, error) {
	if f.sess != nil {
		if err := f.barrier(p, false); err != nil {
			return 0, err
		}
		if ino == f.raIno {
			f.dropReadahead(p) // combined ranges may overlap prefetches
		}
	}
	v := make(core.Vector, 0, len(frames))
	for _, fr := range frames {
		v = append(v, core.PhysSeg(fr.Addr(), mem.PageSize))
	}
	f.ReadOps.Add(v.TotalLen())
	resp, err := f.cl.Read(p, ino, idx*mem.PageSize, v)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// WritePage implements kernel.FileSystem. Over a windowed session the
// page is snapshotted into a shadow frame and the write issues through
// the window without waiting (write-behind): page-cache writeback and
// fsync pipelines its pages instead of paying a round trip per page.
// Deferred errors surface at the next barrier or Sync.
func (f *FS) WritePage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame, n int) error {
	f.WriteOps.Add(n)
	if f.sess == nil {
		_, err := f.cl.Write(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), n)))
		return err
	}
	if ino == f.raIno {
		f.dropReadahead(p) // the write supersedes prefetched contents
	}
	// Retire the oldest writes first when the target's window is full,
	// so the StartWrite below cannot block with nobody left to drain it.
	for !f.sess.CanStart(ino, idx*mem.PageSize, n) && len(f.wb) > 0 {
		w := f.wb[0]
		f.wb = f.wb[1:]
		if _, err := w.pd.Wait(p); err != nil {
			if f.wbErr == nil {
				f.wbErr = err
			}
			if f.wbFailed != nil {
				f.wbFailed[w.ino] = true
			}
		}
		f.node.Mem.Put(w.shadow)
	}
	// Over a striped cluster the blocking slots may be prefetches
	// rather than writes (another inode's stream can fill one server's
	// window); they are ours too — retire them rather than deadlock.
	if !f.sess.CanStart(ino, idx*mem.PageSize, n) {
		f.dropReadahead(p)
	}
	shadow, err := f.node.Mem.AllocFrame()
	if err != nil {
		// No shadow memory: fall back to the synchronous write.
		_, err := f.cl.Write(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), n)))
		return err
	}
	f.node.CPU.Copy(p, n)
	copy(shadow.Data()[:n], frame.Data()[:n])
	pd, err := f.sess.StartWrite(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(shadow.Addr(), n)))
	if err != nil {
		f.node.Mem.Put(shadow)
		return err
	}
	f.wb = append(f.wb, &wbWrite{pd: pd, shadow: shadow, ino: ino})
	if f.wbEnd != nil {
		if end := idx*mem.PageSize + int64(n); end > f.wbEnd[ino] {
			f.wbEnd[ino] = end
		}
	}
	return nil
}

// ReadDirect implements kernel.FileSystem: the O_DIRECT path, handing
// the application's own vector to the transport (§2.3.2).
func (f *FS) ReadDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	if err := f.barrier(p, false); err != nil {
		return 0, err
	}
	f.ReadOps.Add(v.TotalLen())
	resp, err := f.cl.Read(p, ino, off, v)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

// WriteDirect implements kernel.FileSystem. Over a windowed session a
// transfer larger than one request is chunked and pipelined by
// Session.Write itself.
func (f *FS) WriteDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	if err := f.barrier(p, ino == f.raIno); err != nil {
		return 0, err
	}
	f.WriteOps.Add(v.TotalLen())
	resp, err := f.cl.Write(p, ino, off, v)
	if err != nil {
		return 0, err
	}
	return int(resp.N), nil
}

var _ kernel.FileSystem = (*FS)(nil)
