// Package torture is the randomized fault-schedule harness (DESIGN.md
// §12): a seeded, dice-driven operation generator drives M concurrent
// clients — open/seek/read/write/truncate/create/unlink/rename/readdir,
// weighted — over a replicated sharded rfsrv cluster, while a fault
// schedule derived from the same seed kills, stalls, revives and
// reinstates servers at randomized points. Every operation's result is
// checked against a per-inode model honoring the §9 size-epoch and §11
// rename semantics, and the end state is diffed against a reference
// memfs replay of the linearized operation log.
//
// Everything is deterministic: the simulation engine is, the dice are
// (one rand.Source split into per-client and per-schedule streams),
// and the harness itself never iterates a Go map to make a choice. A
// failing run therefore replays byte-for-byte from its seed — every
// Failure carries a one-line `go test` reproduction command and a
// minimized trace (the linearized log projected onto the failing
// object).
//
// Two modes share the machinery:
//
//   - ModeData keeps the fault schedule inside the replication
//     envelope (never a whole owner group down at once, in any
//     client's view), so every operation must succeed: reads are
//     byte-exact against the model, sizes exact after flushes, and
//     Reinstate must admit or refuse correctly.
//   - ModeNS is a namespace-only storm whose schedule deliberately
//     strikes whole owner groups, driving operations into fault
//     errors: the model then holds two-valued "maybe" states that are
//     collapsed and verified member-by-member after the strike, and
//     an ErrRenameInDoubt outcome must land in exactly one of the two
//     legal states, resolved by re-driving the rename.
package torture

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Mode selects the harness workload (see the package comment).
type Mode string

// The two harness modes.
const (
	// ModeData mixes data and namespace operations under a
	// replication-safe fault schedule: every operation must succeed
	// and check exactly.
	ModeData Mode = "data"
	// ModeNS storms the namespace while the schedule strikes whole
	// owner groups: fault outcomes become two-valued model states.
	ModeNS Mode = "ns"
)

// Config parameterizes one torture run. The zero value of every field
// picks a sensible default (see withDefaults); Seed alone identifies
// a run.
type Config struct {
	// Seed drives every random choice of the run. The same Seed (and
	// ScheduleSeed) replays the same run byte-for-byte.
	Seed int64
	// ScheduleSeed drives the fault schedule separately, so a failing
	// schedule can be replayed against different op streams. 0 derives
	// it from Seed.
	ScheduleSeed int64
	// Mode selects ModeData (default) or ModeNS.
	Mode Mode
	// Servers, Replicas, Clients size the cluster (defaults 4, 2, 3).
	Servers, Replicas, Clients int
	// Ops is the dice-driven operation count per client (default 120).
	Ops int
	// Stripe and Window shape the data path (defaults 2 pages, 4).
	Stripe, Window int
	// Timeout is the per-request reply deadline (default 5ms): faults
	// are only observable with it armed.
	Timeout sim.Time
	// Quiet disables the fault schedule (pure randomized workload).
	Quiet bool
	// Elastic adds membership changes to the schedule: an operator
	// cluster shares a membership view with every client and, in quiet
	// windows (no dark NICs, no client-side exclusions), bounces a
	// random server through the stop-world retire+rejoin path while the
	// op storm runs. Membership events and fault injections are
	// mutually exclusive; the model expects bounces to preserve every
	// byte and entry exactly.
	Elastic bool
	// Logf, when set, receives progress and diagnostic lines
	// (testing.T.Logf shaped).
	Logf func(format string, args ...any)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeData
	}
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.Ops == 0 {
		c.Ops = 120
	}
	if c.Stripe == 0 {
		c.Stripe = 2 * mem.PageSize
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Millisecond
	}
	if c.ScheduleSeed == 0 {
		c.ScheduleSeed = int64(uint64(c.Seed)*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3)
	}
	return c
}

// Result summarizes a finished run.
type Result struct {
	// Cfg is the run's effective (default-filled) configuration.
	Cfg Config
	// Ops counts completed operations; the per-kind counters below
	// partition it.
	Ops, Reads, Writes, Creates, Unlinks, Renames, Readdirs, Truncates, Getattrs, Seeks int
	// Kills, Stalls and Strikes count injected faults; SkippedFaults
	// counts schedule points where no victim satisfied the
	// replication-envelope invariant.
	Kills, Stalls, Strikes, SkippedFaults int
	// Reinstates, ReinstateRefusals and RenameInDoubts aggregate the
	// clusters' observability counters across clients.
	Reinstates, ReinstateRefusals, RenameInDoubts int
	// ResyncOps and ResyncBytes aggregate what Reinstate's journal
	// replay re-drove across clients (mutations replayed; data bytes
	// re-copied); ResyncSpills counts journals that outgrew their
	// bounds and fell back to full-slice resync; RenameAutoResolves
	// counts in-doubt renames the clusters settled on a later walk.
	ResyncOps, ResyncSpills, RenameAutoResolves int
	ResyncBytes                                 int64
	// BusyRefusals counts generated mutations of rename-tainted
	// entries the cluster refused ErrBusy (the StBusy split: stray
	// prepare marks showing through, not divergence).
	BusyRefusals int
	// Bounces counts stop-world membership bounces (Config.Elastic);
	// MigratedBytes is the data the bounces re-placed.
	Bounces       int
	MigratedBytes int64
	// MaybeEntries counts ModeNS entries whose outcome a fault left
	// two-valued (collapsed and verified at the end); StaleSkips
	// counts checks skipped because an owner group was unreachable in
	// the checking client's view.
	MaybeEntries, StaleSkips int
	// Elapsed is the simulated span of the op storm; OpsPerSec is
	// Ops over that span.
	Elapsed   sim.Time
	OpsPerSec float64
	// RecoveryMean and RecoveryMax aggregate fault-recovery latency:
	// the simulated time from a fault's injection to a client's first
	// completed operation after observing the resulting exclusion.
	RecoveryMean, RecoveryMax sim.Time
	// RecoverySamples is how many (fault, client) observations the
	// recovery aggregates cover.
	RecoverySamples int
}

// Failure is the harness's error type: a model-check violation, with
// everything needed to reproduce and localize it.
type Failure struct {
	// Cfg reproduces the run.
	Cfg Config
	// Msg states the violated property.
	Msg string
	// At is the simulated time of the violation.
	At sim.Time
	// Trace is the linearized log projected onto the failing object
	// (the minimized trace), most recent last.
	Trace []OpRecord
}

// Error renders the failure with its one-line reproduction command
// and the minimized trace.
func (f *Failure) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "torture: %s (t=%v)\n", f.Msg, f.At)
	fmt.Fprintf(&b, "repro: %s\n", f.Repro())
	if len(f.Trace) > 0 {
		fmt.Fprintf(&b, "minimized trace (%d ops):\n", len(f.Trace))
		for _, r := range f.Trace {
			fmt.Fprintf(&b, "  %s\n", r.String())
		}
	}
	return b.String()
}

// Repro is the one-line command that replays this run exactly.
func (f *Failure) Repro() string {
	s := fmt.Sprintf("go test ./internal/torture -run 'TestTortureSeed$' -torture.seed=%d -torture.schedule=%d -torture.mode=%s -torture.servers=%d -torture.replicas=%d -torture.clients=%d -torture.ops=%d",
		f.Cfg.Seed, f.Cfg.ScheduleSeed, f.Cfg.Mode, f.Cfg.Servers, f.Cfg.Replicas, f.Cfg.Clients, f.Cfg.Ops)
	if f.Cfg.Elastic {
		s += " -torture.elastic"
	}
	return s
}

// Run executes one torture run to completion (or first failure) and
// returns its summary. The returned error, when non-nil, is a
// *Failure for model-check violations, or a plain error for harness
// breakage (deadlock, setup trouble).
func Run(cfg Config) (*Result, error) {
	st, err := newRunState(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	return st.run()
}
