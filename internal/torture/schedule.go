package torture

// The fault schedule: a proc driven by its own seed stream that
// kills, stalls and revives server NICs while the op storm runs. In
// ModeData every injection is vetted against the replication
// envelope: a victim is only struck if afterwards every owner group
// still has a reachable member in EVERY client's exclusion view — so
// every generated operation must succeed and the model stays exact.
// ModeNS drops that vet and adds whole-group strikes, deliberately
// driving operations into fault and in-doubt outcomes.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

func (st *runState) schedule(p *sim.Proc) {
	rng := rand.New(rand.NewSource(st.cfg.ScheduleSeed))
	for st.stormLive > 0 && !st.failed() {
		p.Sleep(time.Duration(300+rng.Intn(1700)) * time.Microsecond)
		if st.stormLive == 0 || st.failed() {
			break
		}
		if st.memberBusy {
			continue // a membership bounce owns the cluster right now
		}
		if st.cfg.Mode == ModeNS && rng.Intn(100) < 40 {
			st.injectStrike(p, rng)
			continue
		}
		victim := st.pickVictim(rng)
		if victim < 0 {
			st.skippedFaults++
			continue
		}
		if rng.Intn(100) < 60 {
			st.injectKill(p, rng, victim)
		} else {
			st.injectStall(p, rng, victim)
		}
		// Quarantine: let timeouts fire and exclusions stabilize before
		// the next injection, so the one-fault-at-a-time envelope audit
		// in pickVictim sees settled state.
		p.Sleep(st.cfg.Timeout + 300*time.Microsecond)
	}
	// Leave nothing dark behind (the master revives again, but a
	// schedule that exits mid-dwell should clean up after itself).
	for i, n := range st.serverNodes {
		if st.nicDown[i] {
			n.NIC.Revive()
			st.nicDown[i] = false
		}
	}
}

// pickVictim chooses a NIC to strike. In ModeData it must keep every
// owner group reachable in every client's view even after the strike;
// ModeNS only avoids double-striking a NIC that is already dark.
func (st *runState) pickVictim(rng *rand.Rand) int {
	for _, v := range rng.Perm(st.cfg.Servers) {
		if st.nicDown[v] {
			continue
		}
		if st.cfg.Mode == ModeData && !st.victimSafe(v) {
			continue
		}
		return v
	}
	return -1
}

// victimSafe reports whether striking v keeps the replication
// envelope: no owner group fully covered by any client's exclusions
// plus the dark NICs plus v.
func (st *runState) victimSafe(v int) bool {
	var dark uint64 = 1 << uint(v)
	for s, down := range st.nicDown {
		if down {
			dark |= 1 << uint(s)
		}
	}
	for _, c := range st.clients {
		excl := dark | c.downBits()
		for res := 0; res < st.cfg.Servers; res++ {
			mask := c.groupMask(res)
			if excl&mask == mask {
				return false
			}
		}
	}
	return true
}

// noteFault registers a fault event for recovery-latency sampling and
// logs it into the trace.
func (st *runState) noteFault(kind string, victims []int, note string) {
	st.faults = append(st.faults, &faultEvent{
		at:      st.now(),
		victims: victims,
		kind:    kind,
		sampled: make([]bool, len(st.clients)),
	})
	st.record(OpRecord{Client: -1, Kind: OpFault, Note: note})
	st.logf("t=%v schedule: %s", st.now(), note)
}

func (st *runState) injectKill(p *sim.Proc, rng *rand.Rand, v int) {
	dwell := time.Duration(500+rng.Intn(1500)) * time.Microsecond
	st.nicDown[v] = true
	st.serverNodes[v].NIC.Kill()
	st.kills++
	st.noteFault("kill", []int{v}, fmt.Sprintf("kill %d for %v", v, dwell))
	p.Sleep(dwell)
	st.serverNodes[v].NIC.Revive()
	st.nicDown[v] = false
	st.lastFaultClear = st.now()
}

func (st *runState) injectStall(p *sim.Proc, rng *rand.Rand, v int) {
	// Longer than the reply deadline: the stall must be observable as
	// a timeout, and the late frames it releases afterwards exercise
	// the retired-slot paths.
	d := st.cfg.Timeout + time.Duration(500+rng.Intn(1500))*time.Microsecond
	st.nicDown[v] = true
	st.serverNodes[v].NIC.StallFor(d)
	st.stalls++
	st.noteFault("stall", []int{v}, fmt.Sprintf("stall %d for %v", v, d))
	p.Sleep(d)
	st.nicDown[v] = false
	st.lastFaultClear = st.now()
}

// injectStrike downs a whole owner group at once (ModeNS): operations
// on its directories must fail — instantly when the group was already
// excluded client-side, as a Maybe outcome otherwise.
func (st *runState) injectStrike(p *sim.Proc, rng *rand.Rand) {
	res := rng.Intn(st.cfg.Servers)
	members := st.groupOf(res)
	victims := members[:0:0]
	for _, m := range members {
		if !st.nicDown[m] {
			victims = append(victims, m)
		}
	}
	if len(victims) == 0 {
		st.skippedFaults++
		return
	}
	dwell := time.Duration(700+rng.Intn(1800)) * time.Microsecond
	for _, m := range victims {
		st.nicDown[m] = true
		st.serverNodes[m].NIC.Kill()
	}
	st.strikes++
	st.noteFault("strike", victims, fmt.Sprintf("strike group %d (servers %v) for %v", res, victims, dwell))
	p.Sleep(dwell)
	for _, m := range victims {
		st.serverNodes[m].NIC.Revive()
		st.nicDown[m] = false
	}
	st.lastFaultClear = st.now()
	p.Sleep(st.cfg.Timeout + 300*time.Microsecond)
}
