package torture

// One torture client: its own node, its own Cluster view (exclusion
// state is per client), its own dice stream, and the per-operation
// model checks. ModeData operations must all succeed — the schedule
// keeps every owner group reachable in every client's view — so every
// read is byte-exact against the shadow and every metadata answer
// exact against the entry model. ModeNS operations may fault, and the
// handlers downgrade the model to the two-valued states the §11
// protocol actually leaves behind.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

type tClient struct {
	st   *runState
	idx  int
	node *hw.Node
	mx   *mx.MX
	rng  *rand.Rand

	cl *rfsrv.Cluster

	wva, rva vm.VirtAddr
	bufCap   int
	scratch  []byte

	dirs    []*dirModel
	files   []*fileModel
	inDoubt []*inDoubtRename

	// downSeen mirrors which exclusions were already accounted;
	// exclMut[s] is the client's mutation count just before the
	// operation that discovered s's fault — a Reinstate refusal is only
	// legal if mutations happened past that point.
	downSeen []bool
	exclMut  map[int]int
	mutCount int

	ops, reads, writes, creates, unlinks, renames, readdirs, truncates, getattrs, seeks int
	maybeEntries, staleSkips, busyRefusals                                              int
}

// run is the client proc: setup, barrier, op storm, barrier, end
// checks.
func (c *tClient) run(p *sim.Proc) {
	st := c.st
	if !c.setup(p) {
		st.stormLive--
		st.endDone++
		return
	}
	st.ready++
	for !st.stormOn && !st.failed() {
		p.Sleep(tick)
	}
	for i := 0; i < st.cfg.Ops && !st.failed(); i++ {
		p.Sleep(time.Duration(10+c.rng.Intn(150)) * time.Microsecond)
		if i%8 == 0 {
			c.tryReinstates(p)
		}
		pre := c.mutCount
		if st.cfg.Mode == ModeData {
			c.opData(p, i)
		} else {
			c.opNS(p)
		}
		c.noteExclusions(pre)
	}
	st.stormLive--
	for !st.reviveDone && !st.failed() {
		p.Sleep(tick)
	}
	if !st.failed() {
		c.endChecks(p)
	}
	st.endDone++
}

// buildCluster assembles a sharded replicated cluster view over the
// rig's servers from this client's node, sessions on endpoints
// epBase+i.
func (c *tClient) buildCluster(p *sim.Proc, epBase int) (*rfsrv.Cluster, error) {
	cfg := c.st.cfg
	sessions := make([]*rfsrv.Session, len(c.st.serverNodes))
	for i, srv := range c.st.serverNodes {
		fc, err := rfsrv.NewMXClient(c.mx, uint8(epBase+i), true, c.node.Kernel, srv.ID, 1)
		if err != nil {
			return nil, err
		}
		fc.SetRequestTimeout(cfg.Timeout)
		if sessions[i], err = rfsrv.NewSession(p, fc, cfg.Window); err != nil {
			return nil, err
		}
	}
	cl, err := rfsrv.NewReplicatedCluster(p, sessions, cfg.Stripe, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if err := cl.EnableShardedNamespace(); err != nil {
		return nil, err
	}
	// Peers let a spilled resync journal fall back to full-slice resync
	// instead of refusing the reinstate outright.
	if err := cl.SetResyncPeers(c.st.servers); err != nil {
		return nil, err
	}
	// Under Config.Elastic every view (including the end-of-run
	// observer's) follows the operator's membership epochs; a viewless
	// cluster would refuse operations the moment a reply stamped an
	// epoch a bounce advanced.
	if c.st.memberView != nil {
		cl.AttachView(c.st.memberView)
	}
	return cl, nil
}

func (c *tClient) setup(p *sim.Proc) bool {
	st, cfg := c.st, c.st.cfg
	for cfg.Elastic && st.memberView == nil && !st.failed() {
		p.Sleep(tick) // the operator publishes the shared view first
	}
	if st.failed() {
		return false
	}
	var err error
	if c.cl, err = c.buildCluster(p, 10); err != nil {
		st.failf(-1, -1, "", "c%d: cluster setup: %v", c.idx, err)
		return false
	}
	// Vary the publish batch across clients: immediate publishers and
	// batched ones must agree on every size check.
	if err := c.cl.SetSizePublishBatch(1 + c.rng.Intn(4)); err != nil {
		st.failf(-1, -1, "", "c%d: publish batch: %v", c.idx, err)
		return false
	}
	c.bufCap = maxFileStripes * cfg.Stripe
	if c.wva, err = c.node.Kernel.Mmap(c.bufCap, fmt.Sprintf("torture-w%d", c.idx)); err == nil {
		c.rva, err = c.node.Kernel.Mmap(c.bufCap, fmt.Sprintf("torture-r%d", c.idx))
	}
	if err != nil {
		st.failf(-1, -1, "", "c%d: buffer mmap: %v", c.idx, err)
		return false
	}
	c.scratch = make([]byte, c.bufCap)
	c.downSeen = make([]bool, cfg.Servers)
	c.exclMut = make(map[int]int)

	for k := 0; k < dirsPerClient; k++ {
		name := fmt.Sprintf("c%dd%d", c.idx, k)
		h := st.handle()
		resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: name})
		if err != nil {
			st.failf(h, rootHandle, name, "c%d: setup mkdir %s: %v", c.idx, name, err)
			return false
		}
		d := &dirModel{handle: h, name: name, ino: resp.Attr.Ino,
			res: st.residueOf(resp.Attr.Ino), entries: map[string]*entryModel{}}
		c.dirs = append(c.dirs, d)
		st.root.put(&entryModel{name: name, handle: h, ino: d.ino, kind: kernel.Directory, state: stPresent})
		st.record(OpRecord{Client: c.idx, Kind: OpMkdir, Dir: rootHandle, Name: name, File: h})
	}
	if cfg.Mode == ModeData {
		for k := 0; k < 2; k++ {
			if c.createFile(p, c.dirs[k%len(c.dirs)]) == nil {
				return false
			}
		}
		if c.idx == 0 {
			for k, sf := range st.shared {
				name := fmt.Sprintf("shared%d", k)
				resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: name})
				if err != nil {
					st.failf(sf.handle, rootHandle, name, "setup shared create %s: %v", name, err)
					return false
				}
				sf.ino = resp.Attr.Ino
				st.root.put(&entryModel{name: name, handle: sf.handle, ino: sf.ino, kind: kernel.RegularFile, state: stPresent})
				st.record(OpRecord{Client: c.idx, Kind: OpCreate, Dir: rootHandle, Name: name, File: sf.handle})
			}
		}
	} else {
		for k := 0; k < 3; k++ {
			d := c.dirs[k%len(c.dirs)]
			h := st.handle()
			name := fmt.Sprintf("n%d", h)
			resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: d.ino, Name: name})
			if err != nil {
				st.failf(h, d.handle, name, "c%d: setup create %s: %v", c.idx, name, err)
				return false
			}
			d.put(&entryModel{name: name, handle: h, ino: resp.Attr.Ino, kind: kernel.RegularFile, state: stPresent})
			st.record(OpRecord{Client: c.idx, Kind: OpCreate, Dir: d.handle, Name: name, File: h})
		}
	}
	return true
}

// vec builds an n-byte kernel vector over one of the client's buffers.
func (c *tClient) vec(va vm.VirtAddr, n int) core.Vector {
	return core.Of(core.KernelSeg(c.node.Kernel, va, n))
}

// downBits is the client's current exclusion set as a bitmask.
func (c *tClient) downBits() uint64 {
	var b uint64
	for _, s := range c.cl.DownServers() {
		b |= 1 << uint(s)
	}
	return b
}

// groupMask is the bitmask of a residue's owner-group members.
func (c *tClient) groupMask(res int) uint64 {
	var b uint64
	for _, m := range c.st.groupOf(res) {
		b |= 1 << uint(m)
	}
	return b
}

// groupDeadView reports whether a residue's whole owner group is
// excluded in this client's view (an operation on it must fail
// instantly, touching nothing).
func (c *tClient) groupDeadView(res int) bool {
	mask := c.groupMask(res)
	return c.downBits()&mask == mask
}

// servingMember is the group member that answered the last read-only
// request on this residue: sharded reads always go to the first alive
// member in the client's view, failing over (and excluding) in order.
func (c *tClient) servingMember(res int) int {
	down := c.downBits()
	for _, m := range c.st.groupOf(res) {
		if down&(1<<uint(m)) == 0 {
			return m
		}
	}
	return -1
}

// noteExclusions diffs DownServers against the seen set after an
// operation: a newly-observed exclusion records the pre-operation
// mutation count (the server-side epoch snapshot happens before the
// discovering operation's own bumps) and samples recovery latency
// against the youngest unsampled fault event covering the server.
func (c *tClient) noteExclusions(preMut int) {
	st := c.st
	for _, s := range c.cl.DownServers() {
		if c.downSeen[s] {
			continue
		}
		c.downSeen[s] = true
		c.exclMut[s] = preMut
		for i := len(st.faults) - 1; i >= 0; i-- {
			f := st.faults[i]
			if f.sampled[c.idx] {
				continue
			}
			hit := false
			for _, v := range f.victims {
				if v == s {
					hit = true
					break
				}
			}
			if hit {
				f.sampled[c.idx] = true
				st.recSamples = append(st.recSamples, st.now()-f.at)
				break
			}
		}
	}
}

// tryReinstates offers every excluded server whose NIC is healthy back
// to the cluster. An admission means the resync journal replayed (or a
// spilled journal full-resynced through the peers) and the server is
// exact again, so the model drops every stale-member allowance it held
// for the slot. A refusal is only legal when there was something to
// resync — a model mutation since the exclusion snapshot, or a
// non-empty journal (replay aborts on concurrent transport faults and
// is retried later): refusing a clean re-admission is a bug.
func (c *tClient) tryReinstates(p *sim.Proc) {
	for _, s := range c.cl.DownServers() {
		if c.st.nicDown[s] {
			continue
		}
		if err := c.cl.Reinstate(p, s); err != nil {
			if c.mutCount == c.exclMut[s] && c.cl.JournalOps(s) == 0 &&
				c.cl.JournalBytes(s) == 0 && !c.cl.JournalSpilled(s) {
				c.st.failf(-1, -1, "", "c%d: reinstate of %d refused (%v) with nothing to resync", c.idx, s, err)
				return
			}
			continue
		}
		c.downSeen[s] = false
		delete(c.exclMut, s)
		c.admitExact(s)
	}
}

// admitExact drops every stale-member allowance the model held for a
// readmitted slot: Reinstate's journal replay re-applied the namespace
// mutations and re-copied the dirty data stripes the server missed, so
// from here on the member must answer exactly — lagged transitions
// clear. This is the harness's end-to-end assertion that replay
// actually converged the server: any byte or entry it still gets wrong
// is caught by the very next check that routes to it.
func (c *tClient) admitExact(s int) {
	bit := uint64(1) << uint(s)
	for _, d := range c.dirs {
		for _, name := range d.names {
			d.entries[name].lag &^= bit
		}
	}
}

// ---------------------------------------------------------------- ModeData

func (c *tClient) opData(p *sim.Proc, opIdx int) {
	switch roll := c.rng.Intn(100); {
	case roll < 26:
		c.opWrite(p, opIdx)
	case roll < 46:
		c.opRead(p)
	case roll < 54:
		c.opCreate(p)
	case roll < 60:
		c.opUnlink(p)
	case roll < 66:
		c.opRename(p)
	case roll < 72:
		c.opTruncate(p)
	case roll < 79:
		c.opReaddirData(p)
	case roll < 86:
		c.opGetattr(p)
	case roll < 91:
		c.opOpen(p)
	case roll < 96:
		c.opSeek()
	default:
		c.opFlush(p)
	}
}

func (c *tClient) pickFile() *fileModel {
	if len(c.files) == 0 {
		return nil
	}
	return c.files[c.rng.Intn(len(c.files))]
}

func (c *tClient) opWrite(p *sim.Proc, opIdx int) {
	if len(c.st.shared) > 0 && c.rng.Intn(100) < 25 {
		c.opSharedWrite(p, opIdx)
		return
	}
	f := c.pickFile()
	if f == nil {
		return
	}
	stripe := int64(c.st.cfg.Stripe)
	var off int64
	switch r := c.rng.Intn(100); {
	case r < 55 || f.size() == 0:
		off = f.size()
	case r < 80:
		off = c.rng.Int63n(f.size() + 1)
	default:
		off = f.pos
		if off > f.size() {
			off = f.size() // never create a hole
		}
	}
	n := 1 + c.rng.Intn(maxIOStripes*int(stripe))
	if max := maxFileStripes * stripe; off+int64(n) > max {
		n = int(max - off)
	}
	if n <= 0 {
		return // file at the size cap and dice chose its end
	}
	tag := fillTag(c.st.cfg.Seed, c.idx, opIdx)
	fill(c.scratch[:n], tag, off)
	if err := c.node.Kernel.WriteBytes(c.wva, c.scratch[:n]); err != nil {
		c.st.failf(f.handle, -1, "", "c%d: write buffer: %v", c.idx, err)
		return
	}
	resp, err := c.cl.Write(p, f.ino, off, c.vec(c.wva, n))
	c.writes++
	c.ops++
	if err != nil || int(resp.N) != n {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: write f%d [%d,+%d): n=%d err=%v", c.idx, f.handle, off, n, resp.N, err)
		return
	}
	if end := off + int64(n); end > f.size() {
		f.data = append(f.data, make([]byte, end-f.size())...)
	}
	copy(f.data[off:], c.scratch[:n])
	f.pos = off + int64(n)
	c.st.record(OpRecord{Client: c.idx, Kind: OpWrite, File: f.handle, Off: off, Len: n, FillTag: tag})
}

func (c *tClient) opRead(p *sim.Proc) {
	if len(c.st.shared) > 0 && c.rng.Intn(100) < 25 {
		c.opSharedRead(p)
		return
	}
	f := c.pickFile()
	if f == nil {
		return
	}
	stripe := int64(c.st.cfg.Stripe)
	off := c.rng.Int63n(f.size() + stripe) // may start past EOF
	n := 1 + c.rng.Intn(maxIOStripes*int(stripe))
	expN := f.size() - off
	if expN < 0 {
		expN = 0
	}
	if int64(n) < expN {
		expN = int64(n)
	}
	resp, err := c.cl.Read(p, f.ino, off, c.vec(c.rva, n))
	c.reads++
	c.ops++
	if err != nil {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: read f%d [%d,+%d): %v", c.idx, f.handle, off, n, err)
		return
	}
	if int64(resp.N) != expN {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: read f%d [%d,+%d): got %d bytes, model size %d wants %d",
			c.idx, f.handle, off, n, resp.N, f.size(), expN)
		return
	}
	if expN == 0 {
		return
	}
	got, err := c.node.Kernel.ReadBytes(c.rva, int(expN))
	if err != nil {
		c.st.failf(f.handle, -1, "", "c%d: read buffer: %v", c.idx, err)
		return
	}
	if !bytes.Equal(got, f.data[off:off+expN]) {
		i := firstDiff(got, f.data[off:off+expN])
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: read f%d [%d,+%d): byte %d is %#x, model says %#x",
			c.idx, f.handle, off, expN, off+int64(i), got[i], f.data[off+int64(i)])
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return 0
}

// createFile is the must-succeed create (setup and ModeData storm).
func (c *tClient) createFile(p *sim.Proc, d *dirModel) *fileModel {
	st := c.st
	h := st.handle()
	name := fmt.Sprintf("f%d", h)
	c.mutCount++
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: d.ino, Name: name})
	c.creates++
	c.ops++
	if err != nil {
		st.failf(h, d.handle, name, "c%d: create %s/%s: %v", c.idx, d.name, name, err)
		return nil
	}
	f := &fileModel{handle: h, dir: d, name: name, ino: resp.Attr.Ino}
	c.files = append(c.files, f)
	d.put(&entryModel{name: name, handle: h, ino: f.ino, kind: kernel.RegularFile,
		state: stPresent, lag: c.downBits() & c.groupMask(d.res)})
	st.record(OpRecord{Client: c.idx, Kind: OpCreate, Dir: d.handle, Name: name, File: h})
	return f
}

func (c *tClient) opCreate(p *sim.Proc) {
	if len(c.files) >= maxFiles {
		return
	}
	c.createFile(p, c.dirs[c.rng.Intn(len(c.dirs))])
}

func (c *tClient) opUnlink(p *sim.Proc) {
	if len(c.files) <= 1 {
		return // keep at least one read/write target
	}
	i := c.rng.Intn(len(c.files))
	f := c.files[i]
	c.mutCount++
	_, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: f.dir.ino, Name: f.name})
	c.unlinks++
	c.ops++
	if err != nil {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: unlink %s/%s: %v", c.idx, f.dir.name, f.name, err)
		return
	}
	e := f.dir.entry(f.name)
	e.state = stAbsent
	e.lag |= c.downBits() & c.groupMask(f.dir.res)
	c.files = append(c.files[:i], c.files[i+1:]...)
	c.st.record(OpRecord{Client: c.idx, Kind: OpUnlink, Dir: f.dir.handle, Name: f.name, File: f.handle})
}

func (c *tClient) opRename(p *sim.Proc) {
	f := c.pickFile()
	if f == nil {
		return
	}
	src := f.dir
	dst := c.dirs[c.rng.Intn(len(c.dirs))]
	newName := fmt.Sprintf("r%d", c.st.handle())
	c.mutCount++
	_, err := c.cl.Rename(p, src.ino, f.name, dst.ino, newName)
	c.renames++
	c.ops++
	if err != nil {
		// The ModeData schedule never downs a whole owner group in any
		// client's view, so even an in-doubt outcome is a failure here.
		c.st.failf(f.handle, src.handle, f.name, "c%d: rename %s/%s -> %s/%s: %v",
			c.idx, src.name, f.name, dst.name, newName, err)
		return
	}
	oldName := f.name
	e := src.entry(oldName)
	e.state = stAbsent
	e.lag |= c.downBits() & c.groupMask(src.res)
	dst.put(&entryModel{name: newName, handle: f.handle, ino: f.ino, kind: kernel.RegularFile,
		state: stPresent, lag: c.downBits() & c.groupMask(dst.res)})
	c.st.record(OpRecord{Client: c.idx, Kind: OpRename, Dir: src.handle, Name: oldName,
		Dir2: dst.handle, Name2: newName, File: f.handle})
	f.dir, f.name = dst, newName
}

func (c *tClient) opTruncate(p *sim.Proc) {
	f := c.pickFile()
	if f == nil || f.size() == 0 {
		return
	}
	newSize := c.rng.Int63n(f.size() + 1) // shrink-only: growth would punch holes
	c.mutCount++
	_, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: f.ino, Off: newSize})
	c.truncates++
	c.ops++
	if err != nil {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: truncate f%d to %d: %v", c.idx, f.handle, newSize, err)
		return
	}
	f.data = f.data[:newSize]
	f.floor = newSize // the exact set reached every server still admissible
	if f.pos > newSize {
		f.pos = newSize
	}
	c.st.record(OpRecord{Client: c.idx, Kind: OpTruncate, File: f.handle, Size: newSize})
}

func (c *tClient) opReaddirData(p *sim.Proc) {
	d := c.dirs[c.rng.Intn(len(c.dirs))]
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: d.ino})
	c.readdirs++
	c.ops++
	if err != nil {
		c.st.failf(-1, d.handle, "", "c%d: readdir %s: %v", c.idx, d.name, err)
		return
	}
	c.checkReaddir(d, resp.Entries, c.servingMember(d.res))
}

// checkReaddir diffs a directory listing against the entry model,
// honoring lag (the serving member may legally have missed a
// transition it was excluded across) and Maybe states.
func (c *tClient) checkReaddir(d *dirModel, entries []kernel.DirEntry, member int) {
	bit := uint64(1) << uint(member)
	listed := make(map[string]kernel.InodeID, len(entries))
	for _, de := range entries {
		if d.entry(de.Name) == nil {
			c.st.failf(-1, d.handle, de.Name, "c%d: readdir %s lists unmodeled entry %q (ino %d)", c.idx, d.name, de.Name, de.Ino)
			return
		}
		listed[de.Name] = de.Ino
	}
	for _, name := range d.names {
		e := d.entries[name]
		got, ok := listed[name]
		switch e.state {
		case stPresent:
			if e.lag&bit != 0 {
				c.staleSkips++
				continue
			}
			if !ok {
				c.st.failf(e.handle, d.handle, name, "c%d: readdir %s misses live entry %q", c.idx, d.name, name)
				return
			}
			if e.ino != 0 && got != e.ino {
				c.st.failf(e.handle, d.handle, name, "c%d: readdir %s: %q is ino %d, model says %d", c.idx, d.name, name, got, e.ino)
				return
			}
		case stAbsent:
			if e.lag&bit != 0 {
				c.staleSkips++
				continue
			}
			if ok {
				c.st.failf(e.handle, d.handle, name, "c%d: readdir %s lists removed entry %q", c.idx, d.name, name)
				return
			}
		case stMaybe:
			c.maybeEntries++
			if ok && e.ino != 0 && got != e.ino {
				c.st.failf(e.handle, d.handle, name, "c%d: readdir %s: maybe-entry %q is ino %d, neither legal state had %d",
					c.idx, d.name, name, got, got)
				return
			}
		}
	}
}

func (c *tClient) opGetattr(p *sim.Proc) {
	f := c.pickFile()
	if f == nil {
		return
	}
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: f.ino})
	c.getattrs++
	c.ops++
	if err != nil {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: getattr f%d: %v", c.idx, f.handle, err)
		return
	}
	if resp.Attr.Ino != f.ino {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: getattr f%d answered ino %d", c.idx, f.handle, resp.Attr.Ino)
		return
	}
	if sz := resp.Attr.Size; sz < f.floor || sz > f.size() {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: getattr f%d size %d outside [floor %d, size %d]",
			c.idx, f.handle, sz, f.floor, f.size())
	}
}

func (c *tClient) opOpen(p *sim.Proc) {
	f := c.pickFile()
	if f == nil {
		return
	}
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: f.dir.ino, Name: f.name})
	c.getattrs++
	c.ops++
	if err != nil {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: open (lookup) %s/%s: %v", c.idx, f.dir.name, f.name, err)
		return
	}
	if resp.Attr.Ino != f.ino {
		c.st.failf(f.handle, f.dir.handle, f.name, "c%d: open %s/%s resolved ino %d, model says %d",
			c.idx, f.dir.name, f.name, resp.Attr.Ino, f.ino)
		return
	}
	f.pos = 0
}

func (c *tClient) opSeek() {
	f := c.pickFile()
	if f == nil {
		return
	}
	switch c.rng.Intn(3) {
	case 0:
		f.pos = 0
	case 1:
		f.pos = f.size()
	default:
		f.pos = c.rng.Int63n(f.size() + 1)
	}
	c.seeks++
	c.ops++
}

func (c *tClient) opFlush(p *sim.Proc) {
	if err := c.cl.FlushSizes(p); err != nil {
		c.st.failf(-1, -1, "", "c%d: size flush: %v", c.idx, err)
		return
	}
	if len(c.cl.DownServers()) == 0 {
		// Every server saw the publishes: the floor may rise to the
		// exact size for every private file.
		for _, f := range c.files {
			f.floor = f.size()
		}
	}
}

// ------------------------------------------------------------ shared files

func (c *tClient) opSharedWrite(p *sim.Proc, opIdx int) {
	k := c.rng.Intn(len(c.st.shared))
	sf := c.st.shared[k]
	if sf.eraLock {
		return
	}
	// Occasionally turn the write into the era truncation — the §9
	// cross-client StStale exercise.
	if c.rng.Intn(100) < 10 && sf.busy == 0 {
		c.eraTruncate(p, sf)
		return
	}
	stripe := int64(c.st.cfg.Stripe)
	base, re := sf.base(c.idx, stripe), regionBytes(stripe)
	own := sf.ownEnd[c.idx]
	var off int64
	if own < re && (own == 0 || c.rng.Intn(100) < 75) {
		off = base + own
	} else {
		off = base + c.rng.Int63n(own)
	}
	n := 1 + c.rng.Intn(int(stripe))
	if off+int64(n) > base+re {
		n = int(base + re - off)
	}
	tag := fillTag(c.st.cfg.Seed, c.idx, opIdx)
	fill(c.scratch[:n], tag, off)
	sf.busy++
	defer func() { sf.busy-- }()
	if err := c.node.Kernel.WriteBytes(c.wva, c.scratch[:n]); err != nil {
		c.st.failf(sf.handle, -1, "", "c%d: shared write buffer: %v", c.idx, err)
		return
	}
	resp, err := c.cl.Write(p, sf.ino, off, c.vec(c.wva, n))
	c.writes++
	c.ops++
	if err != nil || int(resp.N) != n {
		c.st.failf(sf.handle, -1, "", "c%d: shared write f%d [%d,+%d): n=%d err=%v", c.idx, sf.handle, off, n, resp.N, err)
		return
	}
	if sf.regions[c.idx] == nil {
		sf.regions[c.idx] = make([]byte, re)
	}
	copy(sf.regions[c.idx][off-base:], c.scratch[:n])
	if end := off - base + int64(n); end > sf.ownEnd[c.idx] {
		sf.ownEnd[c.idx] = end
	}
	c.st.record(OpRecord{Client: c.idx, Kind: OpWrite, File: sf.handle, Off: off, Len: n, FillTag: tag})
}

func (c *tClient) opSharedRead(p *sim.Proc) {
	k := c.rng.Intn(len(c.st.shared))
	sf := c.st.shared[k]
	if sf.eraLock || sf.ownEnd[c.idx] == 0 {
		return
	}
	sf.busy++
	defer func() { sf.busy-- }()
	stripe := int64(c.st.cfg.Stripe)
	base, own := sf.base(c.idx, stripe), sf.ownEnd[c.idx]
	rel := c.rng.Int63n(own)
	n := 1 + c.rng.Intn(int(own-rel))
	resp, err := c.cl.Read(p, sf.ino, base+rel, c.vec(c.rva, n))
	c.reads++
	c.ops++
	if err != nil || int(resp.N) != n {
		c.st.failf(sf.handle, -1, "", "c%d: shared read f%d [%d,+%d): n=%d err=%v", c.idx, sf.handle, base+rel, n, resp.N, err)
		return
	}
	got, err := c.node.Kernel.ReadBytes(c.rva, n)
	if err != nil {
		c.st.failf(sf.handle, -1, "", "c%d: shared read buffer: %v", c.idx, err)
		return
	}
	if !bytes.Equal(got, sf.regions[c.idx][rel:rel+int64(n)]) {
		i := firstDiff(got, sf.regions[c.idx][rel:rel+int64(n)])
		c.st.failf(sf.handle, -1, "", "c%d: shared read f%d era %d: byte %d is %#x, region shadow says %#x",
			c.idx, sf.handle, sf.era, base+rel+int64(i), got[i], sf.regions[c.idx][rel+int64(i)])
	}
}

// eraTruncate begins a new write generation on a shared file: an exact
// size-zero set that bumps the size epoch, so every other client's
// next publish is refused StStale and revalidates. Callers checked
// busy == 0; eraLock keeps it that way (no yield in between).
func (c *tClient) eraTruncate(p *sim.Proc, sf *sharedFile) {
	sf.eraLock = true
	defer func() { sf.eraLock = false }()
	c.mutCount++
	_, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: sf.ino, Off: 0})
	c.truncates++
	c.ops++
	if err != nil {
		c.st.failf(sf.handle, -1, "", "c%d: era truncate f%d: %v", c.idx, sf.handle, err)
		return
	}
	for i := range sf.regions {
		sf.regions[i] = nil
		sf.ownEnd[i] = 0
	}
	sf.era++
	c.st.record(OpRecord{Client: c.idx, Kind: OpTruncate, File: sf.handle, Size: 0})
}

// ------------------------------------------------------------------ ModeNS

func (c *tClient) opNS(p *sim.Proc) {
	switch roll := c.rng.Intn(100); {
	case roll < 25:
		c.nsCreate(p)
	case roll < 43:
		c.nsUnlink(p)
	case roll < 58:
		c.nsRename(p)
	case roll < 72:
		c.nsReaddir(p)
	case roll < 88:
		c.nsLookup(p)
	default:
		c.nsGetattr(p)
	}
}

// pickNSEntry picks a dice-positioned entry satisfying the filter, or
// nil — scanning insertion-ordered names from a random start so every
// entry stays reachable without ever iterating a map.
func (c *tClient) pickNSEntry(ok func(*entryModel) bool) (*dirModel, *entryModel) {
	dOff := c.rng.Intn(len(c.dirs))
	for di := 0; di < len(c.dirs); di++ {
		d := c.dirs[(dOff+di)%len(c.dirs)]
		if len(d.names) == 0 {
			continue
		}
		eOff := c.rng.Intn(len(d.names))
		for ei := 0; ei < len(d.names); ei++ {
			e := d.entries[d.names[(eOff+ei)%len(d.names)]]
			if ok(e) {
				return d, e
			}
		}
	}
	return nil, nil
}

func (c *tClient) nsCreate(p *sim.Proc) {
	st := c.st
	d := c.dirs[c.rng.Intn(len(c.dirs))]
	h := st.handle()
	name := fmt.Sprintf("n%d", h)
	preDead := c.groupDeadView(d.res)
	c.mutCount++
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: d.ino, Name: name})
	c.creates++
	c.ops++
	switch {
	case err == nil:
		d.put(&entryModel{name: name, handle: h, ino: resp.Attr.Ino, kind: kernel.RegularFile,
			state: stPresent, lag: c.downBits() & c.groupMask(d.res)})
		st.record(OpRecord{Client: c.idx, Kind: OpCreate, Dir: d.handle, Name: name, File: h})
	case fabric.IsFault(err):
		if preDead {
			st.deadGroupNoops++
			return // instant client-side refusal: nothing reached a server
		}
		// The create may have applied on members whose replies were
		// lost: two-valued, with the minted ino unknown.
		d.put(&entryModel{name: name, handle: h, kind: kernel.RegularFile, state: stMaybe})
		c.maybeEntries++
	default:
		st.failf(h, d.handle, name, "c%d: create %s/%s: unexpected %v", c.idx, d.name, name, err)
	}
}

func (c *tClient) nsUnlink(p *sim.Proc) {
	st := c.st
	d, e := c.pickNSEntry(func(e *entryModel) bool { return e.state == stPresent && e.kind == kernel.RegularFile })
	if d == nil {
		return
	}
	preDead := c.groupDeadView(d.res)
	c.mutCount++
	_, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: d.ino, Name: e.name})
	c.unlinks++
	c.ops++
	switch {
	case err == nil:
		e.state = stAbsent
		e.tainted = false // definitively gone: any stray marks went with it
		e.lag |= c.downBits() & c.groupMask(d.res)
		st.record(OpRecord{Client: c.idx, Kind: OpUnlink, Dir: d.handle, Name: e.name, File: e.handle})
	case errors.Is(err, rfsrv.ErrBusy):
		// Stray prepare marks from this entry's faulted rename answered
		// StBusy on part of the owner group — the in-doubt window
		// showing through, not divergence. Nothing changed.
		if !e.tainted {
			st.failf(e.handle, d.handle, e.name, "c%d: unlink %s/%s refused busy but no rename ever tainted it", c.idx, d.name, e.name)
			return
		}
		c.busyRefusals++
	case fabric.IsFault(err):
		if preDead {
			st.deadGroupNoops++
			return
		}
		e.state = stMaybe
		c.maybeEntries++
	default:
		st.failf(e.handle, d.handle, e.name, "c%d: unlink %s/%s: unexpected %v", c.idx, d.name, e.name, err)
	}
}

func (c *tClient) nsRename(p *sim.Proc) {
	st := c.st
	src, e := c.pickNSEntry(func(e *entryModel) bool { return e.state == stPresent })
	if src == nil {
		return
	}
	dst := c.dirs[c.rng.Intn(len(c.dirs))]
	newName := fmt.Sprintf("r%d", st.handle())
	preDead := c.groupDeadView(src.res) || c.groupDeadView(dst.res)
	crossOwner := src.res != dst.res
	c.mutCount++
	_, err := c.cl.Rename(p, src.ino, e.name, dst.ino, newName)
	c.renames++
	c.ops++
	switch {
	case err == nil:
		e.state = stAbsent
		e.tainted = false // detached everywhere alive: the marks are history
		e.lag |= c.downBits() & c.groupMask(src.res)
		dst.put(&entryModel{name: newName, handle: e.handle, ino: e.ino, kind: e.kind,
			state: stPresent, lag: c.downBits() & c.groupMask(dst.res)})
		st.record(OpRecord{Client: c.idx, Kind: OpRename, Dir: src.handle, Name: e.name,
			Dir2: dst.handle, Name2: newName, File: e.handle})
	case errors.Is(err, rfsrv.ErrBusy):
		// A marked member refused the prepare (its mark aims at the
		// earlier faulted rename's destination) while clean members
		// answered — the StBusy split. The entry is untouched; the new
		// prepare marks the clean members toward this rename's
		// destination, which a later re-drive or the end-of-run
		// classification tolerates member-by-member.
		if !e.tainted {
			st.failf(e.handle, src.handle, e.name, "c%d: rename %s/%s -> %s/%s refused busy but no rename ever tainted it",
				c.idx, src.name, e.name, dst.name, newName)
			return
		}
		c.busyRefusals++
	case errors.Is(err, rfsrv.ErrRenameInDoubt):
		// §11: exactly one of two legal states — collapsed by the
		// end-of-run re-drive. Until then both coordinates are
		// two-valued and off-limits to the generator.
		e.state = stMaybe
		e.tainted = true
		dst.put(&entryModel{name: newName, handle: e.handle, ino: e.ino, kind: e.kind,
			state: stMaybe, tainted: true})
		c.inDoubt = append(c.inDoubt, &inDoubtRename{src: src, dst: dst, srcName: e.name,
			dstName: newName, handle: e.handle, ino: e.ino, kind: e.kind})
		st.logf("t=%v c%d: rename %s/%s -> %s/%s in doubt (%v; down %v)",
			st.now(), c.idx, src.name, e.name, dst.name, newName, err, c.cl.DownServers())
		c.maybeEntries += 2
	case fabric.IsFault(err):
		if preDead {
			st.deadGroupNoops++
			return
		}
		if crossOwner {
			// Determinate state A: the source entry's presence is intact
			// on every member (prepare and abort never detach), but
			// stray prepare marks may linger on members whose abort
			// reply was lost — the entry refuses further mutation.
			e.tainted = true
			// The commit OpLink may have applied at the destination with
			// the reply lost: that coordinate alone is two-valued.
			dst.put(&entryModel{name: newName, handle: e.handle, ino: e.ino, kind: e.kind,
				state: stMaybe, tainted: true})
			c.maybeEntries++
		} else {
			// Same-owner renames are single-fan: a total fault leaves
			// both coordinates two-valued.
			e.state = stMaybe
			e.tainted = true
			dst.put(&entryModel{name: newName, handle: e.handle, ino: e.ino, kind: e.kind,
				state: stMaybe, tainted: true})
			c.maybeEntries += 2
		}
	default:
		st.failf(e.handle, src.handle, e.name, "c%d: rename %s/%s -> %s/%s: unexpected %v",
			c.idx, src.name, e.name, dst.name, newName, err)
	}
}

func (c *tClient) nsReaddir(p *sim.Proc) {
	st := c.st
	d := c.dirs[c.rng.Intn(len(c.dirs))]
	preDead := c.groupDeadView(d.res)
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: d.ino})
	c.readdirs++
	c.ops++
	if err != nil {
		switch {
		case fabric.IsFault(err) && preDead:
			st.deadGroupNoops++
		case fabric.IsFault(err):
			c.staleSkips++ // the fault exhausted the group mid-failover
		default:
			st.failf(-1, d.handle, "", "c%d: readdir %s: unexpected %v", c.idx, d.name, err)
		}
		return
	}
	c.checkReaddir(d, resp.Entries, c.servingMember(d.res))
}

func (c *tClient) nsLookup(p *sim.Proc) {
	st := c.st
	d, e := c.pickNSEntry(func(e *entryModel) bool { return e.state != stMaybe })
	if d == nil {
		return
	}
	preDead := c.groupDeadView(d.res)
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: d.ino, Name: e.name})
	c.getattrs++
	c.ops++
	member := c.servingMember(d.res)
	bit := uint64(0)
	if member >= 0 {
		bit = 1 << uint(member)
	}
	switch {
	case err == nil:
		if e.state == stAbsent && e.lag&bit == 0 {
			st.failf(e.handle, d.handle, e.name, "c%d: lookup %s/%s found a removed entry (ino %d)",
				c.idx, d.name, e.name, resp.Attr.Ino)
			return
		}
		if e.state == stPresent && e.lag&bit == 0 && e.ino != 0 && resp.Attr.Ino != e.ino {
			st.failf(e.handle, d.handle, e.name, "c%d: lookup %s/%s resolved ino %d, model says %d",
				c.idx, d.name, e.name, resp.Attr.Ino, e.ino)
		}
	case errors.Is(err, kernel.ErrNotFound):
		if e.state == stPresent && e.lag&bit == 0 {
			st.failf(e.handle, d.handle, e.name, "c%d: lookup %s/%s lost a live entry", c.idx, d.name, e.name)
		}
	case fabric.IsFault(err):
		if preDead {
			st.deadGroupNoops++
		} else {
			c.staleSkips++
		}
	default:
		st.failf(e.handle, d.handle, e.name, "c%d: lookup %s/%s: unexpected %v", c.idx, d.name, e.name, err)
	}
}

func (c *tClient) nsGetattr(p *sim.Proc) {
	st := c.st
	_, e := c.pickNSEntry(func(e *entryModel) bool {
		return e.state == stPresent && !e.tainted && e.ino != 0 && e.kind == kernel.RegularFile
	})
	if e == nil {
		return
	}
	res := st.residueOf(e.ino)
	preDead := c.groupDeadView(res)
	resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: e.ino})
	c.getattrs++
	c.ops++
	switch {
	case err == nil:
		if resp.Attr.Ino != e.ino {
			st.failf(e.handle, -1, "", "c%d: getattr ino %d answered %d", c.idx, e.ino, resp.Attr.Ino)
		}
	case fabric.IsFault(err):
		if preDead {
			st.deadGroupNoops++
		} else {
			c.staleSkips++
		}
	default:
		st.failf(e.handle, -1, "", "c%d: getattr ino %d: unexpected %v", c.idx, e.ino, err)
	}
}
