package torture

// The per-inode model. ModeData files carry a byte-exact shadow plus
// the two size bounds §9 actually guarantees a client: `size` (the
// model's exact size — reads can never return past it) and `floor`
// (the size every server this client may still route to is known to
// cover — established by exact sets, which refuse Reinstate to any
// server that missed them, and by publish rounds completed with no
// exclusion in sight). ModeNS entries are namespace states that a
// fault can leave two-valued until the end-of-run collapse.

import "repro/internal/kernel"

// Harness shape constants (sizes in bytes come from Config.Stripe).
const (
	dirsPerClient  = 2
	maxFiles       = 4 // private files per client, ModeData
	sharedFiles    = 2
	regionStripes  = 4 // per-client slice of a shared file
	maxFileStripes = 8 // private file size cap
	maxIOStripes   = 3 // single read/write cap
)

// fileModel is a private (single-writer) file's model.
type fileModel struct {
	handle int
	dir    *dirModel
	name   string
	ino    kernel.InodeID
	data   []byte // exact shadow
	pos    int64  // file position (open/seek/sequential ops)
	floor  int64  // size every still-usable server is known to cover
}

func (f *fileModel) size() int64 { return int64(len(f.data)) }

// entry states (ModeNS).
const (
	stPresent uint8 = iota
	stAbsent
	stMaybe // a faulted mutation left the outcome two-valued
)

// entryModel is one (dir, name) namespace entry's model.
type entryModel struct {
	name   string
	handle int
	ino    kernel.InodeID
	kind   kernel.FileKind
	state  uint8
	// lag marks owner-group members that may have missed this entry's
	// latest transition: set when a mutation succeeded while the
	// member was excluded in this client's view, or when a fault left
	// the fan's per-member application unknown. End checks skip
	// lagged members.
	lag uint64
	// tainted marks an entry a faulted rename may have left carrying
	// stray prepare marks on some members. A later mutation can split
	// the owner group between StBusy and success — the cluster
	// classifies that split as the in-doubt window showing through and
	// answers ErrBusy, which the generator models (mutations of tainted
	// entries may be refused busy with no state change) rather than
	// avoids.
	tainted bool
}

// dirModel is one client-private directory.
type dirModel struct {
	handle  int
	name    string // entry name under the root
	ino     kernel.InodeID
	res     int // owner residue
	entries map[string]*entryModel
	names   []string // insertion-ordered keys: choices never iterate a map
}

func (d *dirModel) entry(name string) *entryModel { return d.entries[name] }

func (d *dirModel) put(e *entryModel) {
	if _, ok := d.entries[e.name]; !ok {
		d.names = append(d.names, e.name)
	}
	d.entries[e.name] = e
}

// inDoubtRename is an ErrRenameInDoubt outcome awaiting its end-of-run
// re-drive.
type inDoubtRename struct {
	src, dst         *dirModel
	srcName, dstName string
	handle           int
	ino              kernel.InodeID
	kind             kernel.FileKind
}

// sharedFile is a multi-writer file: each client owns a disjoint
// region (regionStripes wide) and a harness-level era scheme
// truncates the file to zero between write generations — the §9
// cross-client staleness exercise (the truncating client bumps the
// size epoch; every other client's next publish is refused StStale
// and revalidates).
type sharedFile struct {
	handle int
	ino    kernel.InodeID
	era    int
	// eraLock blocks new shared operations while a truncation is
	// choosing its moment / in flight; busy counts shared operations
	// in flight. Both are check-and-set under cooperative scheduling.
	eraLock bool
	busy    int
	// regions[c] shadows client c's region contents for the CURRENT
	// era; ownEnd[c] is how far into its region c has written.
	regions [][]byte
	ownEnd  []int64
}

func (sf *sharedFile) base(client int, stripe int64) int64 {
	return int64(client) * regionBytes(stripe)
}

func regionBytes(stripe int64) int64 { return regionStripes * stripe }
