package torture

// The linearized operation log. Every SUCCESSFUL operation is
// appended at its completion time — in a cooperatively-scheduled
// deterministic simulation, completion order is a legal linearization
// for this workload (each file has one writer and each directory one
// mutating client; cross-object operations commute). The log is what
// the reference memfs replays at the end of the run, and what the
// shrinker projects a failure onto.

import (
	"fmt"

	"repro/internal/sim"
)

// OpKind names a logged operation.
type OpKind uint8

// The logged operation kinds.
const (
	// OpMkdir records a setup-time directory creation.
	OpMkdir OpKind = iota
	// OpCreate records a file creation.
	OpCreate
	// OpWrite records a data write (FillTag regenerates the bytes).
	OpWrite
	// OpTruncate records an exact size set.
	OpTruncate
	// OpUnlink records an entry removal.
	OpUnlink
	// OpRename records a rename, including one that resolved an
	// in-doubt outcome to its committed state.
	OpRename
	// OpFault records a fault-schedule event, for trace context (it
	// is not replayed).
	OpFault
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpUnlink:
		return "unlink"
	case OpRename:
		return "rename"
	case OpFault:
		return "fault"
	}
	return "?"
}

// OpRecord is one entry of the linearized log. Objects are named by
// harness handles (stable small integers assigned at creation), not
// inode numbers: the reference filesystem mints its own inodes during
// replay, and handles survive renames.
type OpRecord struct {
	// Seq is the completion order (log index).
	Seq int
	// Client is the acting client (-1 for schedule events).
	Client int
	// At is the simulated completion time.
	At sim.Time
	// Kind is the operation.
	Kind OpKind
	// Dir and Name locate the entry (Dir is a directory handle;
	// OpMkdir's Dir is the PARENT, its File the new directory's
	// handle).
	Dir  int
	Name string
	// Dir2 and Name2 are the rename destination.
	Dir2  int
	Name2 string
	// File is the file (or new directory) handle the op acts on.
	File int
	// Off, Len and FillTag describe a write; Size a truncate.
	Off     int64
	Len     int
	FillTag uint64
	Size    int64
	// Note carries fault-event detail ("kill 2", "stall 0 12ms", …).
	Note string
}

// String renders one record for a minimized trace.
func (r OpRecord) String() string {
	switch r.Kind {
	case OpWrite:
		return fmt.Sprintf("#%-4d t=%-12v c%d write  f%d [%d,+%d) tag=%#x", r.Seq, r.At, r.Client, r.File, r.Off, r.Len, r.FillTag)
	case OpTruncate:
		return fmt.Sprintf("#%-4d t=%-12v c%d trunc  f%d size=%d", r.Seq, r.At, r.Client, r.File, r.Size)
	case OpRename:
		return fmt.Sprintf("#%-4d t=%-12v c%d rename d%d/%s -> d%d/%s (f%d)", r.Seq, r.At, r.Client, r.Dir, r.Name, r.Dir2, r.Name2, r.File)
	case OpFault:
		return fmt.Sprintf("#%-4d t=%-12v schedule %s", r.Seq, r.At, r.Note)
	default:
		return fmt.Sprintf("#%-4d t=%-12v c%d %-6s d%d/%s (f%d)", r.Seq, r.At, r.Client, r.Kind, r.Dir, r.Name, r.File)
	}
}

// record appends a completed operation to the linearized log.
func (st *runState) record(r OpRecord) {
	r.Seq = len(st.log)
	r.At = st.now()
	st.log = append(st.log, r)
}

// minimize projects the log onto one object: the records touching the
// given file handle or (dir, name) coordinates, plus every schedule
// event (fault context is always relevant), capped to the most recent
// shrinkCap entries. This is projection shrinking: with one writer
// per object, the projected history is a complete explanation of the
// object's state, and unlike delta-debugging re-runs it costs nothing
// and cannot diverge from the failing execution.
func (st *runState) minimize(file int, dir int, name string) []OpRecord {
	const shrinkCap = 40
	var out []OpRecord
	for _, r := range st.log {
		hit := r.Kind == OpFault
		if file >= 0 && r.File == file {
			hit = true
		}
		if name != "" && (r.Dir == dir && r.Name == name || r.Dir2 == dir && r.Name2 == name) {
			hit = true
		}
		if hit {
			out = append(out, r)
		}
	}
	if len(out) > shrinkCap {
		out = out[len(out)-shrinkCap:]
	}
	return out
}

// fill writes the deterministic byte pattern of one logged write:
// position-sensitive (a misplaced stripe cannot alias) and
// regenerable from (FillTag, Off) alone.
func fill(dst []byte, tag uint64, off int64) {
	for i := range dst {
		x := tag + uint64(off+int64(i))*0x9E3779B97F4A7C15
		x ^= x >> 29
		dst[i] = byte((x * 0xBF58476D1CE4E5B9) >> 56)
	}
}

// fillTag derives a write's pattern tag from its coordinates.
func fillTag(seed int64, client, opIdx int) uint64 {
	h := uint64(seed) ^ uint64(client+1)*0xD6E8FEB86659FD93
	h ^= uint64(opIdx+1) * 0xA5A5A5A5A5A5A5A5
	h ^= h >> 33
	return h*0xFF51AFD7ED558CCD + 1
}
