package torture

// Tier-1 entry points: the fixed 20-seed corpus (seconds, runs under
// -race in CI), the flag-gated single-seed replay that Failure.Repro
// prints, and a byte-for-byte determinism check.

import (
	"flag"
	"fmt"
	"reflect"
	"testing"
)

var (
	flagSeed     = flag.Int64("torture.seed", 0, "replay this torture seed (TestTortureSeed)")
	flagSchedule = flag.Int64("torture.schedule", 0, "fault-schedule seed for the replay (0 derives it from the seed)")
	flagMode     = flag.String("torture.mode", "data", "torture mode for the replay (data or ns)")
	flagServers  = flag.Int("torture.servers", 0, "server count for the replay (0: default)")
	flagReplicas = flag.Int("torture.replicas", 0, "replication factor for the replay (0: default)")
	flagClients  = flag.Int("torture.clients", 0, "client count for the replay (0: default)")
	flagOps      = flag.Int("torture.ops", 0, "per-client op count for the replay (0: default)")
	flagElastic  = flag.Bool("torture.elastic", false, "add membership bounces to the replay's schedule")
)

// shortCorpus is the fixed tier-1 seed set: the same 20 runs every
// time, mixing both modes and a few geometries. Failures found by the
// soak binary graduate into this list by seed.
var shortCorpus = []Config{
	{Seed: 1}, {Seed: 2}, {Seed: 3}, {Seed: 4}, {Seed: 5},
	{Seed: 6, Clients: 4}, {Seed: 7, Servers: 6}, {Seed: 8, Replicas: 3},
	{Seed: 9, Ops: 160}, {Seed: 10, Servers: 5, Clients: 2},
	{Seed: 11, Mode: ModeNS}, {Seed: 12, Mode: ModeNS}, {Seed: 13, Mode: ModeNS},
	{Seed: 14, Mode: ModeNS}, {Seed: 15, Mode: ModeNS},
	{Seed: 16, Mode: ModeNS, Clients: 4}, {Seed: 17, Mode: ModeNS, Servers: 6},
	{Seed: 18, Mode: ModeNS, Ops: 160}, {Seed: 19, Mode: ModeNS, Servers: 5, Clients: 2},
	{Seed: 20, Mode: ModeNS, Replicas: 3},
	{Seed: 21, Elastic: true}, {Seed: 22, Elastic: true, Clients: 2},
	{Seed: 23, Mode: ModeNS, Elastic: true, Ops: 240},
	{Seed: 24, Mode: ModeNS, Elastic: true, Servers: 6, Ops: 240},
}

func TestTortureShort(t *testing.T) {
	for _, cfg := range shortCorpus {
		cfg := cfg
		name := fmt.Sprintf("%s-seed%d", cfg.withDefaults().Mode, cfg.Seed)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%d ops (%d r / %d w / %d meta), %d kills %d stalls %d strikes %d bounces, %d reinstates (%d refused, %d replayed ops, %d B replayed), %d in-doubt (%d auto-resolved), %d busy-refused, %.0f ops/s, recovery mean %v max %v over %d samples",
				res.Ops, res.Reads, res.Writes,
				res.Creates+res.Unlinks+res.Renames+res.Readdirs+res.Truncates+res.Getattrs,
				res.Kills, res.Stalls, res.Strikes, res.Bounces,
				res.Reinstates, res.ReinstateRefusals, res.ResyncOps, res.ResyncBytes,
				res.RenameInDoubts, res.RenameAutoResolves, res.BusyRefusals,
				res.OpsPerSec, res.RecoveryMean, res.RecoveryMax, res.RecoverySamples)
		})
	}
}

// TestTortureSeed replays one run from its flags — the command line
// Failure.Repro prints. Without -torture.seed it is skipped.
func TestTortureSeed(t *testing.T) {
	if *flagSeed == 0 && *flagSchedule == 0 {
		t.Skip("set -torture.seed (and friends) to replay a run")
	}
	cfg := Config{
		Seed: *flagSeed, ScheduleSeed: *flagSchedule, Mode: Mode(*flagMode),
		Servers: *flagServers, Replicas: *flagReplicas, Clients: *flagClients,
		Ops: *flagOps, Elastic: *flagElastic, Logf: t.Logf,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replay clean: %d ops, %d faults", res.Ops, res.Kills+res.Stalls+res.Strikes)
}

// TestTortureDeterminism runs the same seed twice and demands the two
// executions agree record-for-record — the property every printed
// repro line depends on.
func TestTortureDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeData, ModeNS} {
		cfg := Config{Seed: 42, Mode: mode, Ops: 80}
		runOnce := func() (*Result, []OpRecord) {
			st, err := newRunState(cfg.withDefaults())
			if err != nil {
				t.Fatal(err)
			}
			res, err := st.run()
			if err != nil {
				t.Fatal(err)
			}
			return res, st.log
		}
		resA, logA := runOnce()
		resB, logB := runOnce()
		if !reflect.DeepEqual(resA, resB) {
			t.Fatalf("%s: two runs of seed %d disagree:\n%+v\n%+v", mode, cfg.Seed, resA, resB)
		}
		if len(logA) != len(logB) {
			t.Fatalf("%s: log lengths diverge: %d vs %d", mode, len(logA), len(logB))
		}
		for i := range logA {
			if logA[i] != logB[i] {
				t.Fatalf("%s: log record %d diverges:\n%s\n%s", mode, i, logA[i].String(), logB[i].String())
			}
		}
	}
}
