package torture

// Membership events (Config.Elastic): an operator cluster shares a
// MemberView with every client view, and this proc bounces random
// servers through the stop-world retire+rejoin path while the op storm
// runs. Bounces and fault injections are mutually exclusive — a bounce
// only starts in a quiet window (no dark NICs, no client-side
// exclusions, residual timeouts drained) and the schedule skips
// injection rounds while one runs — so the model's expectation is
// absolute: a bounce must preserve every byte, every entry, and every
// in-flight client's view, with nothing owed to fault tolerance.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// membership is the operator proc: build the operator cluster, publish
// the shared view (clients wait for it before traffic), then bounce
// until the storm drains.
func (st *runState) membership(p *sim.Proc) {
	if err := st.buildOperator(p); err != nil {
		st.failf(-1, -1, "", "membership: operator setup: %v", err)
		return
	}
	rng := rand.New(rand.NewSource(st.cfg.ScheduleSeed ^ 0x626F756E636573))
	for !st.stormOn && !st.failed() {
		p.Sleep(tick)
	}
	for st.stormLive > 0 && !st.failed() {
		p.Sleep(time.Duration(1500+rng.Intn(3500)) * time.Microsecond)
		if st.stormLive == 0 || st.failed() {
			break
		}
		// Claim first: the schedule stops injecting, so the quiet window
		// is guaranteed to open — any in-flight dwell finishes, residual
		// timeouts drain, and the clients replay their journals (no new
		// fault can interrupt them while the claim is held).
		st.memberBusy = true
		for !st.quietForMembership() {
			p.Sleep(tick)
			if st.stormLive == 0 || st.failed() {
				st.memberBusy = false
				return
			}
		}
		v := rng.Intn(st.cfg.Servers)
		st.record(OpRecord{Client: -1, Kind: OpFault, Note: fmt.Sprintf("bounce %d", v)})
		st.logf("t=%v membership: bounce %d", st.now(), v)
		if err := st.operator.Bounce(p, v); err != nil {
			st.memberBusy = false
			st.failf(-1, -1, "", "membership: bounce of server %d: %v", v, err)
			return
		}
		st.bounces++
		st.memberBusy = false
	}
}

// buildOperator assembles the operator's cluster view on its own node
// and publishes the shared membership view.
func (st *runState) buildOperator(p *sim.Proc) error {
	cfg := st.cfg
	m := mx.Attach(st.opNode)
	sessions := make([]*rfsrv.Session, len(st.serverNodes))
	for i, srv := range st.serverNodes {
		fc, err := rfsrv.NewMXClient(m, uint8(10+i), true, st.opNode.Kernel, srv.ID, 1)
		if err != nil {
			return err
		}
		fc.SetRequestTimeout(cfg.Timeout)
		if sessions[i], err = rfsrv.NewSession(p, fc, cfg.Window); err != nil {
			return err
		}
	}
	cl, err := rfsrv.NewReplicatedCluster(p, sessions, cfg.Stripe, cfg.Replicas)
	if err != nil {
		return err
	}
	if err := cl.EnableShardedNamespace(); err != nil {
		return err
	}
	if err := cl.SetResyncPeers(st.servers); err != nil {
		return err
	}
	st.operator = cl
	st.memberView = cl.ShareView()
	return nil
}

// quietForMembership reports whether a bounce may start: the last
// injection window closed long enough ago that residual timeouts
// drained, no NIC is dark, and no client view holds an exclusion — so
// no resync journal is pending anywhere, and the stop-world rebuild
// never interleaves with journal replay.
func (st *runState) quietForMembership() bool {
	if st.now()-st.lastFaultClear < 2*st.cfg.Timeout {
		return false
	}
	for _, down := range st.nicDown {
		if down {
			return false
		}
	}
	for _, c := range st.clients {
		if c.cl == nil || len(c.cl.DownServers()) > 0 {
			return false
		}
	}
	return true
}
