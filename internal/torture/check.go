package torture

// End-of-run checking: after the storm drains and every NIC is
// revived, each client re-syncs and verifies its own objects against
// the model (ModeData) or collapses the two-valued namespace states
// member-by-member (ModeNS, including the §11 in-doubt re-drives);
// then the master replays the linearized log into the reference memfs
// and diffs the result.

import (
	"bytes"
	"errors"

	"repro/internal/kernel"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

func (c *tClient) endChecks(p *sim.Proc) {
	c.tryReinstates(p)
	if c.st.failed() {
		return
	}
	if c.st.cfg.Mode == ModeData {
		c.endData(p)
	} else {
		c.endNS(p)
	}
}

// endData verifies every private file byte-for-byte and size-exactly,
// every directory listing, and this client's shared-file region.
func (c *tClient) endData(p *sim.Proc) {
	st := c.st
	for _, f := range c.files {
		// Exact size re-sync: an explicit set reconciles every still
		// admissible server to the model size (a no-op for the data and
		// the oracle, so it is not logged).
		c.mutCount++
		if _, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: f.ino, Off: f.size()}); err != nil {
			st.failf(f.handle, f.dir.handle, f.name, "c%d: end size sync f%d: %v", c.idx, f.handle, err)
			return
		}
		f.floor = f.size()
		resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: f.ino})
		if err != nil || resp.Attr.Size != f.size() {
			st.failf(f.handle, f.dir.handle, f.name, "c%d: end getattr f%d: size=%d err=%v, model %d",
				c.idx, f.handle, resp.Attr.Size, err, f.size())
			return
		}
		if lresp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: f.dir.ino, Name: f.name}); err != nil || lresp.Attr.Ino != f.ino {
			st.failf(f.handle, f.dir.handle, f.name, "c%d: end lookup %s/%s: ino=%d err=%v, model %d",
				c.idx, f.dir.name, f.name, lresp.Attr.Ino, err, f.ino)
			return
		}
		if f.size() == 0 {
			continue
		}
		n := int(f.size())
		resp, err = c.cl.Read(p, f.ino, 0, c.vec(c.rva, n))
		if err != nil || int(resp.N) != n {
			st.failf(f.handle, f.dir.handle, f.name, "c%d: end read f%d: n=%d err=%v, model size %d", c.idx, f.handle, resp.N, err, n)
			return
		}
		got, err := c.node.Kernel.ReadBytes(c.rva, n)
		if err != nil {
			st.failf(f.handle, -1, "", "c%d: end read buffer: %v", c.idx, err)
			return
		}
		if !bytes.Equal(got, f.data) {
			i := firstDiff(got, f.data)
			st.failf(f.handle, f.dir.handle, f.name, "c%d: end read f%d: byte %d is %#x, shadow says %#x",
				c.idx, f.handle, i, got[i], f.data[i])
			return
		}
	}
	for _, d := range c.dirs {
		resp, err := c.cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: d.ino})
		if err != nil {
			st.failf(-1, d.handle, "", "c%d: end readdir %s: %v", c.idx, d.name, err)
			return
		}
		c.checkReaddir(d, resp.Entries, c.servingMember(d.res))
		if st.failed() {
			return
		}
	}
	stripe := int64(st.cfg.Stripe)
	for _, sf := range st.shared {
		own := sf.ownEnd[c.idx]
		if own == 0 {
			continue
		}
		base := sf.base(c.idx, stripe)
		resp, err := c.cl.Read(p, sf.ino, base, c.vec(c.rva, int(own)))
		if err != nil || int64(resp.N) != own {
			st.failf(sf.handle, -1, "", "c%d: end shared read f%d: n=%d err=%v, region end %d", c.idx, sf.handle, resp.N, err, own)
			return
		}
		got, err := c.node.Kernel.ReadBytes(c.rva, int(own))
		if err != nil {
			st.failf(sf.handle, -1, "", "c%d: end shared read buffer: %v", c.idx, err)
			return
		}
		if !bytes.Equal(got, sf.regions[c.idx][:own]) {
			i := firstDiff(got, sf.regions[c.idx][:own])
			st.failf(sf.handle, -1, "", "c%d: end shared read f%d era %d: byte %d is %#x, region shadow says %#x",
				c.idx, sf.handle, sf.era, base+int64(i), got[i], sf.regions[c.idx][i])
			return
		}
	}
}

// endNS re-drives every in-doubt rename through a fresh observer view
// (§11: the outcome must collapse into exactly one of the two legal
// states), then audits every entry member-by-member through the
// servers' backing stores.
func (c *tClient) endNS(p *sim.Proc) {
	st := c.st
	if len(c.inDoubt) > 0 {
		obs, err := c.buildCluster(p, 60)
		if err != nil {
			st.failf(-1, -1, "", "c%d: observer cluster: %v", c.idx, err)
			return
		}
		for _, idr := range c.inDoubt {
			c.redrive(p, obs, idr)
			if st.failed() {
				return
			}
		}
	}
	c.memberChecks(p)
}

// redrive resolves one in-doubt rename: §11 promises the namespace
// landed in exactly one of two legal states, and this is where the
// harness proves it. First it re-drives the same rename through the
// fresh observer view — every phase is idempotent, so that succeeds
// from state A (source intact everywhere alive) and from a uniformly
// lagging state B (source still marked everywhere), collapsing the
// outcome to a fully-linked state B. When the re-drive cannot run —
// the members the original client's exclusions routed around make the
// source fan diverge, or the source is already fully detached — the
// outcome is classified structurally against the backing stores: the
// commit (OpLink at the destination) is the one durable switch point,
// so the child under its destination name on ANY member proves state
// B, and its absence from every member proves state A. Anything else
// — the destination holding a foreign inode, or the child vanishing
// from both coordinates — fails the run.
func (c *tClient) redrive(p *sim.Proc, obs *rfsrv.Cluster, idr *inDoubtRename) {
	st := c.st
	se := idr.src.entry(idr.srcName)
	de := idr.dst.entry(idr.dstName)
	_, rerr := obs.Rename(p, idr.src.ino, idr.srcName, idr.dst.ino, idr.dstName)
	if rerr == nil {
		// Collapsed by the re-drive: detached at the source and linked
		// at the destination on every member.
		se.state, se.lag, se.tainted = stAbsent, 0, false
		de.state, de.lag, de.tainted = stPresent, 0, false
		de.ino = idr.ino
		st.record(OpRecord{Client: c.idx, Kind: OpRename, Dir: idr.src.handle, Name: idr.srcName,
			Dir2: idr.dst.handle, Name2: idr.dstName, File: idr.handle})
		return
	}
	// The re-drive could not run end to end; classify by the commit's
	// durable evidence, member by member.
	var dstLag uint64
	dstHolders := 0
	for _, m := range st.groupOf(idr.dst.res) {
		a, err := st.serverFS[m].Lookup(p, idr.dst.ino, idr.dstName)
		switch {
		case err == nil && a.Ino == idr.ino:
			dstHolders++
		case err == nil:
			st.failf(idr.handle, idr.dst.handle, idr.dstName,
				"c%d: in-doubt rename %s/%s -> %s/%s: member %d holds the destination as ino %d, want %d",
				c.idx, idr.src.name, idr.srcName, idr.dst.name, idr.dstName, m, a.Ino, idr.ino)
			return
		default:
			dstLag |= 1 << uint(m)
		}
	}
	if dstHolders > 0 {
		// State B: the commit fired. Members that missed it were
		// excluded in the committing client's view and stay lagged;
		// the source may be clean (finalized), absent from birth
		// (members the entry's own creation never reached), or still
		// carrying the marked entry — all tolerated member-by-member.
		se.state = stMaybe
		de.state, de.tainted = stPresent, false
		de.ino = idr.ino
		de.lag = dstLag
		st.record(OpRecord{Client: c.idx, Kind: OpRename, Dir: idr.src.handle, Name: idr.srcName,
			Dir2: idr.dst.handle, Name2: idr.dstName, File: idr.handle})
		return
	}
	// No member ever saw the commit: state A. The source entry must
	// have survived wherever it lived before the attempt (prepare and
	// abort never detach), under its pre-rename lag.
	srcHolders := 0
	for _, m := range st.groupOf(idr.src.res) {
		a, err := st.serverFS[m].Lookup(p, idr.src.ino, idr.srcName)
		switch {
		case err == nil && a.Ino == idr.ino:
			srcHolders++
		case err == nil:
			st.failf(idr.handle, idr.src.handle, idr.srcName,
				"c%d: in-doubt rename %s/%s -> %s/%s: member %d holds the source as ino %d, want %d",
				c.idx, idr.src.name, idr.srcName, idr.dst.name, idr.dstName, m, a.Ino, idr.ino)
			return
		}
	}
	if srcHolders == 0 {
		st.failf(idr.handle, idr.dst.handle, idr.dstName,
			"c%d: in-doubt rename %s/%s -> %s/%s resolved to neither legal state (re-drive: %v; no member holds either coordinate of ino %d)",
			c.idx, idr.src.name, idr.srcName, idr.dst.name, idr.dstName, rerr, idr.ino)
		return
	}
	se.state = stPresent
	de.state, de.lag = stAbsent, 0
	// No record: the linearized history keeps the entry at its source,
	// which is what the oracle will hold.
}

// memberChecks audits every entry of this client's directories on
// every owner-group member directly through the backing stores:
// determinate states must hold exactly on members that were never
// excluded across the transition, and Maybe entries may land either
// way but never on a third inode.
func (c *tClient) memberChecks(p *sim.Proc) {
	st := c.st
	for _, d := range c.dirs {
		for _, name := range d.names {
			e := d.entries[name]
			for _, m := range st.groupOf(d.res) {
				bit := uint64(1) << uint(m)
				if e.state != stMaybe && e.lag&bit != 0 {
					c.staleSkips++
					continue
				}
				a, err := st.serverFS[m].Lookup(p, d.ino, name)
				switch e.state {
				case stPresent:
					if err != nil {
						st.failf(e.handle, d.handle, name, "c%d: member %d lost live entry %s/%s: %v", c.idx, m, d.name, name, err)
						return
					}
					if e.ino != 0 && a.Ino != e.ino {
						st.failf(e.handle, d.handle, name, "c%d: member %d has %s/%s as ino %d, model says %d",
							c.idx, m, d.name, name, a.Ino, e.ino)
						return
					}
				case stAbsent:
					if err == nil {
						st.failf(e.handle, d.handle, name, "c%d: member %d still lists removed entry %s/%s (ino %d)",
							c.idx, m, d.name, name, a.Ino)
						return
					}
					if !errors.Is(err, kernel.ErrNotFound) {
						st.failf(e.handle, d.handle, name, "c%d: member %d lookup %s/%s: %v", c.idx, m, d.name, name, err)
						return
					}
				case stMaybe:
					if err == nil && e.ino != 0 && a.Ino != e.ino {
						st.failf(e.handle, d.handle, name, "c%d: member %d has maybe-entry %s/%s as ino %d — neither legal state minted it (model %d)",
							c.idx, m, d.name, name, a.Ino, e.ino)
						return
					}
				}
			}
		}
	}
}

// -------------------------------------------------------------- the oracle

// replayOracle replays the linearized log into the reference memfs
// and diffs the cluster-model end state against it.
func (st *runState) replayOracle(p *sim.Proc) {
	buf := make([]byte, maxIOStripes*st.cfg.Stripe)
	for _, r := range st.log {
		var err error
		switch r.Kind {
		case OpMkdir:
			var a kernel.Attr
			if a, err = st.oracle.Mkdir(p, st.oracleIno[r.Dir], r.Name); err == nil {
				st.oracleIno[r.File] = a.Ino
			}
		case OpCreate:
			var a kernel.Attr
			if a, err = st.oracle.Create(p, st.oracleIno[r.Dir], r.Name); err == nil {
				st.oracleIno[r.File] = a.Ino
			}
		case OpWrite:
			b := buf[:r.Len]
			fill(b, r.FillTag, r.Off)
			err = st.oracle.WriteAt(st.oracleIno[r.File], r.Off, b)
		case OpTruncate:
			err = st.oracle.Resize(st.oracleIno[r.File], r.Size)
		case OpUnlink:
			err = st.oracle.Unlink(p, st.oracleIno[r.Dir], r.Name)
		case OpRename:
			_, err = st.oracle.Rename(p, st.oracleIno[r.Dir], r.Name, st.oracleIno[r.Dir2], r.Name2)
		case OpFault:
			continue
		}
		if err != nil {
			st.failf(r.File, r.Dir, r.Name, "oracle replay rejected #%d (%s): %v", r.Seq, r.String(), err)
			return
		}
	}
	st.diffOracle(p)
}

// diffOracle compares the replayed reference against the model: every
// directory listing (root and all client dirs) and every live file's
// bytes. Model and oracle were built from the same inputs through
// entirely different code paths — the cluster through the wire
// protocol and fault handling, the oracle through plain local verbs —
// so a mismatch means the linearized log does not explain the
// observed cluster state.
func (st *runState) diffOracle(p *sim.Proc) {
	dirs := []*dirModel{st.root}
	for _, c := range st.clients {
		dirs = append(dirs, c.dirs...)
	}
	for _, d := range dirs {
		entries, err := st.oracle.Readdir(p, st.oracleIno[d.handle])
		if err != nil {
			st.failf(-1, d.handle, "", "oracle readdir d%d: %v", d.handle, err)
			return
		}
		listed := make(map[string]kernel.InodeID, len(entries))
		for _, de := range entries {
			if d.entry(de.Name) == nil {
				st.failf(-1, d.handle, de.Name, "oracle lists unmodeled entry %s/%s", d.name, de.Name)
				return
			}
			listed[de.Name] = de.Ino
		}
		for _, name := range d.names {
			e := d.entries[name]
			oino, ok := listed[name]
			switch e.state {
			case stPresent:
				if !ok {
					st.failf(e.handle, d.handle, name, "oracle diff: live entry %s/%s missing from the replay", d.name, name)
					return
				}
				if want := st.oracleIno[e.handle]; oino != want {
					st.failf(e.handle, d.handle, name, "oracle diff: %s/%s is replay-ino %d, the handle's object is %d",
						d.name, name, oino, want)
					return
				}
			case stAbsent:
				if ok {
					st.failf(e.handle, d.handle, name, "oracle diff: removed entry %s/%s still present in the replay", d.name, name)
					return
				}
			case stMaybe:
				// The entry's LAST transition was never logged, but
				// earlier ones may have been (a created-then-
				// fault-unlinked name is in the replay; a fault-created
				// one is not). Either presence is legal; only the
				// object may not change.
				if ok {
					if want, known := st.oracleIno[e.handle]; known && oino != want {
						st.failf(e.handle, d.handle, name, "oracle diff: maybe-entry %s/%s is replay-ino %d, the handle's object is %d",
							d.name, name, oino, want)
						return
					}
				}
			}
		}
	}
	for _, c := range st.clients {
		for _, f := range c.files {
			content, err := st.oracle.ContentOf(st.oracleIno[f.handle])
			if err != nil {
				st.failf(f.handle, -1, "", "oracle content f%d: %v", f.handle, err)
				return
			}
			if int64(len(content)) != f.size() {
				st.failf(f.handle, f.dir.handle, f.name, "oracle diff: f%d replay size %d, model %d", f.handle, len(content), f.size())
				return
			}
			if !bytes.Equal(content, f.data) {
				i := firstDiff(content, f.data)
				st.failf(f.handle, f.dir.handle, f.name, "oracle diff: f%d byte %d is %#x in the replay, %#x in the model",
					f.handle, i, content[i], f.data[i])
				return
			}
		}
	}
	stripe := int64(st.cfg.Stripe)
	for _, sf := range st.shared {
		content, err := st.oracle.ContentOf(st.oracleIno[sf.handle])
		if err != nil {
			st.failf(sf.handle, -1, "", "oracle content shared f%d: %v", sf.handle, err)
			return
		}
		for ci := range sf.regions {
			own := sf.ownEnd[ci]
			if own == 0 {
				continue
			}
			base := sf.base(ci, stripe)
			if int64(len(content)) < base+own {
				st.failf(sf.handle, -1, "", "oracle diff: shared f%d replay size %d short of c%d's region end %d",
					sf.handle, len(content), ci, base+own)
				return
			}
			if !bytes.Equal(content[base:base+own], sf.regions[ci][:own]) {
				i := firstDiff(content[base:base+own], sf.regions[ci][:own])
				st.failf(sf.handle, -1, "", "oracle diff: shared f%d byte %d is %#x in the replay, %#x in c%d's region shadow",
					sf.handle, base+int64(i), content[base+int64(i)], sf.regions[ci][i], ci)
				return
			}
		}
	}
}
