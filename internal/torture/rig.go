package torture

// The rig: one deterministic simulation holding N sharded replicated
// servers, M client nodes (each with its own Cluster view — exclusion
// state is per client, which is exactly what the cross-client checks
// are about), and one oracle node whose memfs replays the linearized
// log at the end. The master proc orchestrates phases with plain
// shared fields — the simulation is cooperatively scheduled, so
// check-then-set sequences without an intervening yield are atomic.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// simBudget bounds one run's simulated span: a logic bug that stalls
// the phase machine surfaces as a budget error instead of spinning the
// event loop forever.
const simBudget = 60 * time.Second

// tick is the poll interval of the phase barriers.
const tick = 100 * time.Microsecond

type faultEvent struct {
	at      sim.Time
	victims []int
	kind    string
	// sampled marks, per client, whether this event's recovery
	// latency was already measured (first completed op after the
	// client observed the exclusion).
	sampled []bool
}

type runState struct {
	cfg Config
	env *sim.Engine

	serverNodes []*hw.Node
	serverFS    []*memfs.FS
	servers     []*rfsrv.Server
	clientNodes []*hw.Node
	oracleNode  *hw.Node
	oracle      *memfs.FS

	clients []*tClient
	shared  []*sharedFile
	// root models the filesystem root (client dirs and shared files
	// live there).
	root *dirModel

	log  []OpRecord
	fail *Failure

	nextHandle int
	// oracleIno maps a harness handle to the inode the oracle minted
	// for it during replay.
	oracleIno map[int]kernel.InodeID

	// Phase machine (written by master/schedule, read by everyone).
	ready      int  // clients that finished setup
	stormOn    bool // storm phase open
	stormLive  int  // clients still inside their op storm
	reviveDone bool // all NICs revived and settled; end checks may run
	endDone    int  // clients that finished their end checks
	finished   bool

	// nicDown mirrors each server NIC's dead-or-stalled state for the
	// clients' reinstate decisions (hw exposes Dead() but not stalls).
	nicDown []bool

	// Membership machinery (Config.Elastic): the operator cluster and
	// the shared view every client attaches before traffic. memberBusy
	// excludes fault injection while a bounce runs; lastFaultClear is
	// when the schedule last finished an injection window, so the
	// membership proc only strikes after residual timeouts drained.
	opNode         *hw.Node
	operator       *rfsrv.Cluster
	memberView     *rfsrv.MemberView
	memberBusy     bool
	lastFaultClear sim.Time
	bounces        int

	faults                                []*faultEvent
	recSamples                            []sim.Time
	kills, stalls, strikes, skippedFaults int
	deadGroupNoops                        int

	stormStart, stormEnd sim.Time
}

func newRunState(cfg Config) (*runState, error) {
	if cfg.Servers < 2 || cfg.Servers > 16 {
		return nil, fmt.Errorf("torture: %d servers (want 2..16)", cfg.Servers)
	}
	if cfg.Replicas < 1 || cfg.Replicas > cfg.Servers {
		return nil, fmt.Errorf("torture: %d replicas over %d servers", cfg.Replicas, cfg.Servers)
	}
	if cfg.Clients < 1 || cfg.Clients > 8 {
		return nil, fmt.Errorf("torture: %d clients (want 1..8)", cfg.Clients)
	}
	if cfg.Mode != ModeData && cfg.Mode != ModeNS {
		return nil, fmt.Errorf("torture: unknown mode %q", cfg.Mode)
	}
	st := &runState{
		cfg:       cfg,
		env:       sim.NewEngine(),
		oracleIno: make(map[int]kernel.InodeID),
		nicDown:   make([]bool, cfg.Servers),
	}
	c := hw.NewCluster(st.env, hw.DefaultParams(), hw.PCIXD)
	for i := 0; i < cfg.Servers; i++ {
		n := c.AddNode(fmt.Sprintf("server%d", i))
		fs := memfs.New(fmt.Sprintf("backing%d", i), n, 0)
		fs.SetInodePartition(i, cfg.Servers)
		srv := rfsrv.NewServer(n, fs)
		if err := srv.EnableSharding(i, cfg.Servers, cfg.Replicas); err != nil {
			return nil, err
		}
		if _, err := srv.ServeMX(mx.Attach(n), 1, 4); err != nil {
			return nil, err
		}
		st.serverNodes = append(st.serverNodes, n)
		st.serverFS = append(st.serverFS, fs)
		st.servers = append(st.servers, srv)
	}
	if cfg.Elastic {
		st.opNode = c.AddNode("operator")
	}
	st.oracleNode = c.AddNode("oracle")
	st.oracle = memfs.New("oracle", st.oracleNode, 0)
	st.oracleIno[rootHandle] = st.oracle.Root()
	st.nextHandle = rootHandle + 1
	st.root = &dirModel{handle: rootHandle, name: "/", entries: map[string]*entryModel{}}

	// One rand stream per client plus the schedule's, all split from
	// the master seed so a (Seed, ScheduleSeed) pair replays exactly.
	master := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Clients; i++ {
		node := c.AddNode(fmt.Sprintf("client%d", i))
		st.clients = append(st.clients, &tClient{
			st:   st,
			idx:  i,
			node: node,
			mx:   mx.Attach(node),
			rng:  rand.New(rand.NewSource(master.Int63())),
		})
	}
	if cfg.Mode == ModeData {
		for k := 0; k < sharedFiles; k++ {
			st.shared = append(st.shared, &sharedFile{
				handle:  st.handle(),
				regions: make([][]byte, cfg.Clients),
				ownEnd:  make([]int64, cfg.Clients),
			})
		}
	}
	return st, nil
}

// rootHandle is the harness handle of the filesystem root.
const rootHandle = 0

// handle mints the next harness object handle.
func (st *runState) handle() int {
	h := st.nextHandle
	st.nextHandle++
	return h
}

func (st *runState) now() sim.Time { return st.env.Now() }

func (st *runState) logf(format string, args ...any) {
	if st.cfg.Logf != nil {
		st.cfg.Logf(format, args...)
	}
}

// failf records the first model-check violation, with the trace
// minimized onto the failing object (file handle, or (dir,name), or
// both; pass file=-1 / name="" for the unused coordinate). Everyone
// polls st.fail and winds down.
func (st *runState) failf(file, dir int, name, format string, args ...any) {
	if st.fail != nil {
		return
	}
	st.fail = &Failure{
		Cfg:   st.cfg,
		Msg:   fmt.Sprintf(format, args...),
		At:    st.now(),
		Trace: st.minimize(file, dir, name),
	}
}

func (st *runState) failed() bool { return st.fail != nil }

// run executes the whole phase machine and blocks until the
// simulation drains.
func (st *runState) run() (*Result, error) {
	var masterErr error
	st.env.Spawn("torture-master", func(p *sim.Proc) {
		masterErr = st.master(p)
	})
	st.env.Run(simBudget)
	if st.fail != nil {
		return nil, st.fail
	}
	if masterErr != nil {
		return nil, masterErr
	}
	if !st.finished {
		return nil, fmt.Errorf("torture: run did not finish within the %v simulation budget (seed %d)", simBudget, st.cfg.Seed)
	}
	return st.result(), nil
}

// master drives the phases: spawn clients, open the storm once every
// client finished setup, start the fault schedule, wait the storm out,
// wait for the end checks, then replay the oracle and diff.
func (st *runState) master(p *sim.Proc) error {
	st.stormLive = len(st.clients)
	if st.cfg.Elastic {
		st.env.Spawn("torture-membership", st.membership)
	}
	for _, c := range st.clients {
		c := c
		st.env.Spawn(fmt.Sprintf("torture-c%d", c.idx), c.run)
	}
	for st.ready < len(st.clients) && !st.failed() {
		p.Sleep(tick)
	}
	if st.failed() {
		return nil
	}
	st.stormStart = st.now()
	st.stormOn = true
	if !st.cfg.Quiet {
		st.env.Spawn("torture-schedule", st.schedule)
	}
	for st.stormLive > 0 && !st.failed() {
		p.Sleep(tick)
	}
	st.stormEnd = st.now()
	// Revive everything (the schedule may have exited mid-dwell on a
	// failure) and let late frames and armed timeouts drain before the
	// end checks read server state.
	for i, n := range st.serverNodes {
		n.NIC.Revive()
		st.nicDown[i] = false
	}
	p.Sleep(2*st.cfg.Timeout + 500*time.Microsecond)
	st.reviveDone = true
	for st.endDone < len(st.clients) && !st.failed() {
		p.Sleep(tick)
	}
	if !st.failed() {
		st.replayOracle(p)
	}
	st.finished = true
	return nil
}

// result aggregates the counters after a clean run.
func (st *runState) result() *Result {
	r := &Result{Cfg: st.cfg}
	for _, c := range st.clients {
		r.Ops += c.ops
		r.Reads += c.reads
		r.Writes += c.writes
		r.Creates += c.creates
		r.Unlinks += c.unlinks
		r.Renames += c.renames
		r.Readdirs += c.readdirs
		r.Truncates += c.truncates
		r.Getattrs += c.getattrs
		r.Seeks += c.seeks
		r.MaybeEntries += c.maybeEntries
		r.StaleSkips += c.staleSkips
		r.BusyRefusals += c.busyRefusals
		r.Reinstates += int(c.cl.Reinstates.N)
		r.ReinstateRefusals += int(c.cl.ReinstateRefusals.N)
		r.RenameInDoubts += int(c.cl.RenameInDoubts.N)
		r.ResyncOps += int(c.cl.ResyncOps.N)
		r.ResyncBytes += c.cl.ResyncBytes.Bytes
		r.ResyncSpills += int(c.cl.ResyncSpills.N)
		r.RenameAutoResolves += int(c.cl.RenameAutoResolves.N)
	}
	r.Bounces = st.bounces
	if st.operator != nil {
		r.MigratedBytes = st.operator.Migrated.Bytes
	}
	r.Kills, r.Stalls, r.Strikes, r.SkippedFaults = st.kills, st.stalls, st.strikes, st.skippedFaults
	r.Elapsed = st.stormEnd - st.stormStart
	if r.Elapsed > 0 {
		r.OpsPerSec = float64(r.Ops) / r.Elapsed.Seconds()
	}
	r.RecoverySamples = len(st.recSamples)
	var sum sim.Time
	for _, d := range st.recSamples {
		sum += d
		if d > r.RecoveryMax {
			r.RecoveryMax = d
		}
	}
	if len(st.recSamples) > 0 {
		r.RecoveryMean = sum / sim.Time(len(st.recSamples))
	}
	return r
}

// groupOf returns the owner-group members of a residue.
func (st *runState) groupOf(res int) []int {
	n := st.cfg.Servers
	out := make([]int, 0, st.cfg.Replicas)
	for j := 0; j < st.cfg.Replicas; j++ {
		out = append(out, (res+j)%n)
	}
	return out
}

// residueOf is the sharded owner residue of an inode (shardOwner's
// formula; pinned by the rfsrv tests).
func (st *runState) residueOf(ino kernel.InodeID) int {
	if ino <= 1 {
		return 0
	}
	return int((uint64(ino) - 2) % uint64(st.cfg.Servers))
}
