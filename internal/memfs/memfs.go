// Package memfs is the local filesystem backing the file servers: an
// in-memory, ext2-shaped store (inodes, directories, per-page data
// blocks) whose data blocks are physical frames of the node's memory.
//
// Storing blocks in frames matters: the server side of the paper's
// experiments serves files from memory, and sending a block over the
// network with the physical-address primitives requires the block to
// *have* a physical address. An optional per-page disk latency models
// slower backing stores for experiments that want one.
package memfs

import (
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FS is one memfs instance.
type FS struct {
	name     string
	node     *hw.Node
	inodes   map[kernel.InodeID]*inode
	next     kernel.InodeID
	pageCost sim.Time // simulated disk latency per page (0 = RAM)

	// Inode partitioning (see SetInodePartition): when partN > 1 this
	// instance mints from its own collision-free slice of the inode
	// space instead of the sequential counter, so partN servers can
	// create files independently without ever assigning the same
	// number twice.
	partIdx int
	partN   int
	seq     uint64 // per-partition mint sequence
}

type inode struct {
	attr   kernel.Attr
	blocks map[int64]*mem.Frame      // page index → frame
	dir    map[string]kernel.InodeID // directories only
}

// New creates an empty filesystem on node. pageCost is charged per
// page-sized block access (0 models the paper's RAM-served files).
func New(name string, node *hw.Node, pageCost sim.Time) *FS {
	fs := &FS{
		name:   name,
		node:   node,
		inodes: make(map[kernel.InodeID]*inode),
		next:   1,
	}
	fs.pageCost = pageCost
	root := fs.newInode(kernel.Directory)
	_ = root
	return fs
}

func (fs *FS) newInode(kind kernel.FileKind) *inode {
	return fs.newInodeR(kind, -1)
}

// newInodeR mints an inode. Under partitioning (partN > 1) the number
// encodes both the minter and a routing residue — see mintIno;
// residue < 0 defaults the residue to the minter's own index. Without
// partitioning the legacy sequential counter is used and residue is
// ignored.
func (fs *FS) newInodeR(kind kernel.FileKind, residue int) *inode {
	id := fs.next
	if fs.partN > 1 {
		if residue < 0 {
			residue = fs.partIdx
		}
		id = fs.mintIno(residue)
	}
	ino := &inode{
		attr:   kernel.Attr{Ino: id, Kind: kind, Version: 1},
		blocks: make(map[int64]*mem.Frame),
	}
	if kind == kernel.Directory {
		ino.dir = make(map[string]kernel.InodeID)
	}
	fs.inodes[id] = ino
	if fs.partN <= 1 {
		fs.next++
	}
	return ino
}

// mintIno returns the next unused inode number of this partition that
// carries the given routing residue: ino = 2 + (seq·partN + partIdx)·partN
// + residue. Different minters differ in the middle term, so two
// partitions can never mint the same number; (ino−2) mod partN
// recovers the residue, which is what clients route ownership by.
// Root stays at inode 1 outside the partitioned space.
func (fs *FS) mintIno(residue int) kernel.InodeID {
	n := uint64(fs.partN)
	id := kernel.InodeID(2 + (fs.seq*n+uint64(fs.partIdx))*n + uint64(residue)%n)
	fs.seq++
	return id
}

// SetInodePartition declares this instance to be minter index of
// count cooperating namespace shards: newly created inodes come from a
// collision-free per-minter slice of the inode space (see mintIno)
// instead of the sequential counter. Must be called before any
// partitioned create; the root inode (1) is shared by convention.
func (fs *FS) SetInodePartition(index, count int) {
	fs.partIdx, fs.partN = index, count
}

func (fs *FS) get(id kernel.InodeID) (*inode, error) {
	ino := fs.inodes[id]
	if ino == nil {
		return nil, kernel.ErrNotFound
	}
	return ino, nil
}

func (fs *FS) getDir(id kernel.InodeID) (*inode, error) {
	ino, err := fs.get(id)
	if err != nil {
		return nil, err
	}
	if ino.attr.Kind != kernel.Directory {
		return nil, kernel.ErrNotDir
	}
	return ino, nil
}

// FSName implements kernel.FileSystem.
func (fs *FS) FSName() string { return fs.name }

// Root implements kernel.FileSystem.
func (fs *FS) Root() kernel.InodeID { return 1 }

// Lookup implements kernel.FileSystem.
func (fs *FS) Lookup(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	d, err := fs.getDir(dir)
	if err != nil {
		return kernel.Attr{}, err
	}
	id, ok := d.dir[name]
	if !ok {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	child := fs.inodes[id]
	if child == nil {
		// Dangling entry left by a sharded peer's Scrub: report the
		// number so callers can still route by it.
		return kernel.Attr{Ino: id, Kind: kernel.RegularFile}, nil
	}
	return child.attr, nil
}

// Getattr implements kernel.FileSystem.
func (fs *FS) Getattr(p *sim.Proc, id kernel.InodeID) (kernel.Attr, error) {
	ino, err := fs.get(id)
	if err != nil {
		return kernel.Attr{}, err
	}
	return ino.attr, nil
}

// Readdir implements kernel.FileSystem.
func (fs *FS) Readdir(p *sim.Proc, dir kernel.InodeID) ([]kernel.DirEntry, error) {
	d, err := fs.getDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(d.dir))
	for n := range d.dir {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]kernel.DirEntry, 0, len(names))
	for _, n := range names {
		id := d.dir[n]
		kind := kernel.RegularFile
		if child := fs.inodes[id]; child != nil {
			kind = child.attr.Kind
		}
		out = append(out, kernel.DirEntry{Name: n, Ino: id, Kind: kind})
	}
	return out, nil
}

// Create implements kernel.FileSystem.
func (fs *FS) Create(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	return fs.makeNode(dir, name, kernel.RegularFile)
}

// Mkdir implements kernel.FileSystem.
func (fs *FS) Mkdir(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	return fs.makeNode(dir, name, kernel.Directory)
}

func (fs *FS) makeNode(dir kernel.InodeID, name string, kind kernel.FileKind) (kernel.Attr, error) {
	return fs.makeNodeR(dir, name, kind, -1)
}

func (fs *FS) makeNodeR(dir kernel.InodeID, name string, kind kernel.FileKind, residue int) (kernel.Attr, error) {
	d, err := fs.getDir(dir)
	if err != nil {
		return kernel.Attr{}, err
	}
	if name == "" {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	if _, exists := d.dir[name]; exists {
		return kernel.Attr{}, kernel.ErrExists
	}
	ino := fs.newInodeR(kind, residue)
	d.dir[name] = ino.attr.Ino
	d.attr.Version++
	return ino.attr, nil
}

// Unlink implements kernel.FileSystem.
func (fs *FS) Unlink(p *sim.Proc, dir kernel.InodeID, name string) error {
	return fs.removeNode(dir, name, kernel.RegularFile)
}

// Rmdir implements kernel.FileSystem.
func (fs *FS) Rmdir(p *sim.Proc, dir kernel.InodeID, name string) error {
	return fs.removeNode(dir, name, kernel.Directory)
}

func (fs *FS) removeNode(dir kernel.InodeID, name string, kind kernel.FileKind) error {
	d, err := fs.getDir(dir)
	if err != nil {
		return err
	}
	id, ok := d.dir[name]
	if !ok {
		return kernel.ErrNotFound
	}
	victim := fs.inodes[id]
	if victim == nil {
		// Dangling entry: a sharded peer already scrubbed the object
		// (see Scrub) and only the name survives here. Dropping the
		// name is all that is left to do.
		delete(d.dir, name)
		d.attr.Version++
		return nil
	}
	if kind == kernel.Directory {
		if victim.attr.Kind != kernel.Directory {
			return kernel.ErrNotDir
		}
		if len(victim.dir) > 0 {
			return kernel.ErrNotEmpty
		}
	} else if victim.attr.Kind == kernel.Directory {
		return kernel.ErrIsDir
	}
	for _, f := range victim.blocks {
		fs.node.Mem.Put(f)
	}
	delete(fs.inodes, id)
	delete(d.dir, name)
	d.attr.Version++
	return nil
}

// Truncate implements kernel.FileSystem.
func (fs *FS) Truncate(p *sim.Proc, id kernel.InodeID, size int64) error {
	ino, err := fs.get(id)
	if err != nil {
		return err
	}
	if ino.attr.Kind == kernel.Directory {
		return kernel.ErrIsDir
	}
	fs.shrinkTo(ino, size)
	ino.attr.Size = size
	ino.attr.Version++
	return nil
}

// shrinkTo releases whole pages past the new end and zeroes the tail
// of the boundary page (no-op when growing — new pages are holes).
func (fs *FS) shrinkTo(ino *inode, size int64) {
	lastPage := (size + mem.PageSize - 1) / mem.PageSize
	for idx, f := range ino.blocks {
		if idx >= lastPage {
			fs.node.Mem.Put(f)
			delete(ino.blocks, idx)
		}
	}
	if tail := size % mem.PageSize; tail > 0 {
		if f := ino.blocks[size/mem.PageSize]; f != nil {
			zero(f.Data()[tail:])
		}
	}
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// FrameAt returns the frame backing page idx of a file (nil for holes
// or beyond EOF). File servers use it to send blocks by physical
// address, zero-copy.
func (fs *FS) FrameAt(id kernel.InodeID, idx int64) *mem.Frame {
	if ino := fs.inodes[id]; ino != nil {
		return ino.blocks[idx]
	}
	return nil
}

// ensureBlock allocates (zero-filled) the block for page idx.
func (fs *FS) ensureBlock(ino *inode, idx int64) (*mem.Frame, error) {
	if f := ino.blocks[idx]; f != nil {
		return f, nil
	}
	f, err := fs.node.Mem.AllocFrame()
	if err != nil {
		return nil, err
	}
	ino.blocks[idx] = f
	return f, nil
}

// validInPage returns how many bytes of page idx are below EOF.
func validInPage(size int64, idx int64) int {
	start := idx * mem.PageSize
	if size <= start {
		return 0
	}
	n := size - start
	if n > mem.PageSize {
		n = mem.PageSize
	}
	return int(n)
}

// ReadPage implements kernel.FileSystem: local block fetch (a memory
// copy plus the optional disk latency).
func (fs *FS) ReadPage(p *sim.Proc, id kernel.InodeID, idx int64, frame *mem.Frame) (int, error) {
	ino, err := fs.get(id)
	if err != nil {
		return 0, err
	}
	n := validInPage(ino.attr.Size, idx)
	if n == 0 {
		return 0, nil
	}
	if fs.pageCost > 0 {
		p.Sleep(fs.pageCost)
	}
	fs.node.CPU.Copy(p, n)
	if blk := ino.blocks[idx]; blk != nil {
		copy(frame.Data(), blk.Data()[:n])
	} else {
		zero(frame.Data()[:n]) // hole
	}
	return n, nil
}

// ReadPages implements kernel.PageRangeReader for the local store.
func (fs *FS) ReadPages(p *sim.Proc, id kernel.InodeID, idx int64, frames []*mem.Frame) (int, error) {
	total := 0
	for i, f := range frames {
		n, err := fs.ReadPage(p, id, idx+int64(i), f)
		if err != nil {
			return total, err
		}
		total += n
		if n < mem.PageSize {
			break
		}
	}
	return total, nil
}

// WritePage implements kernel.FileSystem.
func (fs *FS) WritePage(p *sim.Proc, id kernel.InodeID, idx int64, frame *mem.Frame, n int) error {
	ino, err := fs.get(id)
	if err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if fs.pageCost > 0 {
		p.Sleep(fs.pageCost)
	}
	blk, err := fs.ensureBlock(ino, idx)
	if err != nil {
		return err
	}
	fs.node.CPU.Copy(p, n)
	copy(blk.Data()[:n], frame.Data()[:n])
	if end := idx*mem.PageSize + int64(n); end > ino.attr.Size {
		ino.attr.Size = end
	}
	ino.attr.Version++
	return nil
}

// ReadDirect implements kernel.FileSystem: local O_DIRECT.
func (fs *FS) ReadDirect(p *sim.Proc, id kernel.InodeID, off int64, v core.Vector) (int, error) {
	ino, err := fs.get(id)
	if err != nil {
		return 0, err
	}
	n := v.TotalLen()
	if off >= ino.attr.Size {
		return 0, nil
	}
	if int64(n) > ino.attr.Size-off {
		n = int(ino.attr.Size - off)
	}
	data := fs.readBytes(ino, off, n)
	if fs.pageCost > 0 {
		p.Sleep(fs.pageCost * sim.Time((n+mem.PageSize-1)/mem.PageSize))
	}
	fs.node.CPU.Copy(p, n)
	xs, err := v.Extents()
	if err != nil {
		return 0, err
	}
	fs.node.Mem.Scatter(mem.Clip(xs, n), data)
	return n, nil
}

// WriteDirect implements kernel.FileSystem.
func (fs *FS) WriteDirect(p *sim.Proc, id kernel.InodeID, off int64, v core.Vector) (int, error) {
	ino, err := fs.get(id)
	if err != nil {
		return 0, err
	}
	xs, err := v.Extents()
	if err != nil {
		return 0, err
	}
	data := fs.node.Mem.Gather(xs)
	if fs.pageCost > 0 {
		p.Sleep(fs.pageCost * sim.Time((len(data)+mem.PageSize-1)/mem.PageSize))
	}
	fs.node.CPU.Copy(p, len(data))
	fs.writeBytes(ino, off, data)
	return len(data), nil
}

// readBytes copies [off, off+n) out of the block store.
func (fs *FS) readBytes(ino *inode, off int64, n int) []byte {
	out := make([]byte, n)
	pos := 0
	for pos < n {
		idx := (off + int64(pos)) / mem.PageSize
		pgOff := int((off + int64(pos)) % mem.PageSize)
		chunk := mem.PageSize - pgOff
		if chunk > n-pos {
			chunk = n - pos
		}
		if blk := ino.blocks[idx]; blk != nil {
			copy(out[pos:pos+chunk], blk.Data()[pgOff:])
		}
		pos += chunk
	}
	return out
}

// writeBytes stores data at off, extending the file as needed.
func (fs *FS) writeBytes(ino *inode, off int64, data []byte) {
	pos := 0
	for pos < len(data) {
		idx := (off + int64(pos)) / mem.PageSize
		pgOff := int((off + int64(pos)) % mem.PageSize)
		chunk := mem.PageSize - pgOff
		if chunk > len(data)-pos {
			chunk = len(data) - pos
		}
		blk, err := fs.ensureBlock(ino, idx)
		if err != nil {
			panic(err) // test memories are unbounded
		}
		copy(blk.Data()[pgOff:], data[pos:pos+chunk])
		pos += chunk
	}
	if end := off + int64(len(data)); end > ino.attr.Size {
		ino.attr.Size = end
	}
	ino.attr.Version++
}

var _ kernel.FileSystem = (*FS)(nil)
