package memfs

// Reference-replay mode: byte-level accessors that let an FS serve as
// the oracle of a randomized harness (internal/torture). The torture
// run records its linearized operation log and replays it into a
// fresh FS through the ordinary namespace verbs plus WriteAt; the
// cluster's end state is then diffed against ContentOf/Readdir of the
// replica. Neither helper charges simulated time — the oracle is a
// checker, not a workload, and must not perturb the timeline it
// validates.

import (
	"fmt"

	"repro/internal/kernel"
)

// WriteAt stores data at off in the file, extending it as needed —
// the replay-side image of a cluster write. It bypasses the simulated
// CPU/disk cost model (see the file comment).
func (fs *FS) WriteAt(id kernel.InodeID, off int64, data []byte) error {
	ino, err := fs.get(id)
	if err != nil {
		return err
	}
	if ino.attr.Kind != kernel.RegularFile {
		return fmt.Errorf("memfs: WriteAt on non-file inode %d", id)
	}
	if off < 0 {
		return fmt.Errorf("memfs: WriteAt at negative offset %d", off)
	}
	fs.writeBytes(ino, off, data)
	return nil
}

// ContentOf returns a copy of the file's full contents (holes read as
// zeros), without charging simulated time.
func (fs *FS) ContentOf(id kernel.InodeID) ([]byte, error) {
	ino, err := fs.get(id)
	if err != nil {
		return nil, err
	}
	if ino.attr.Kind != kernel.RegularFile {
		return nil, fmt.Errorf("memfs: ContentOf on non-file inode %d", id)
	}
	return fs.readBytes(ino, 0, int(ino.attr.Size)), nil
}

// Resize sets the file's size exactly — shrink drops whole pages past
// the new end and zeroes the tail of the boundary page, grow extends
// with a hole — without charging simulated time. It is Truncate for
// the replay side.
func (fs *FS) Resize(id kernel.InodeID, size int64) error {
	ino, err := fs.get(id)
	if err != nil {
		return err
	}
	if ino.attr.Kind != kernel.RegularFile {
		return fmt.Errorf("memfs: Resize on non-file inode %d", id)
	}
	if size < 0 {
		return fmt.Errorf("memfs: Resize to negative size %d", size)
	}
	fs.shrinkTo(ino, size)
	ino.attr.Size = size
	ino.attr.Version++
	return nil
}
