package memfs

// Sharded-namespace backing operations. A namespace-sharded cluster
// (rfsrv DESIGN.md §11) stores each directory — and the inodes minted
// under it — on one owning server instead of replicating everything
// to all N. The owner's memfs is the only complete copy of its slice;
// every other server sees at most stubs materialized on demand. These
// methods are the extra verbs that model needs beyond
// kernel.FileSystem: residue-directed creation, stub materialization,
// cross-directory link/detach (the halves of a two-home rename), and
// scrubbing an object whose name lives elsewhere.

import (
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MakeNode creates name under dir like Create/Mkdir, but mints the
// child's inode with an explicit routing residue (see mintIno), so
// the server that owns the parent can place the child in any owner
// group the client asks for. residue < 0 keeps the minter's default.
func (fs *FS) MakeNode(p *sim.Proc, dir kernel.InodeID, name string, kind kernel.FileKind, residue int) (kernel.Attr, error) {
	return fs.makeNodeR(dir, name, kind, residue)
}

// Materialize ensures an object for id exists locally, creating an
// empty one of the given kind if needed (idempotent; an existing
// object's attributes win). Sharded servers call it when a mutation
// or write arrives for an inode whose authoritative copy was minted
// on another server — the local copy starts as an empty stub and the
// operation proceeds against it.
func (fs *FS) Materialize(p *sim.Proc, id kernel.InodeID, kind kernel.FileKind) (kernel.Attr, error) {
	if id == 0 {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	if ino := fs.inodes[id]; ino != nil {
		return ino.attr, nil
	}
	ino := &inode{
		attr:   kernel.Attr{Ino: id, Kind: kind, Version: 1},
		blocks: make(map[int64]*mem.Frame),
	}
	if kind == kernel.Directory {
		ino.dir = make(map[string]kernel.InodeID)
	}
	fs.inodes[id] = ino
	return ino.attr, nil
}

// Link enters (name → child) into dir without minting anything: the
// commit half of a cross-directory rename, and the replication verb
// that copies a fresh dentry to the owner group's replicas. A
// pre-existing entry for the same child makes the call an idempotent
// no-op; a different child is ErrExists. The child object is
// materialized as a stub if it is not local.
func (fs *FS) Link(p *sim.Proc, dir kernel.InodeID, name string, child kernel.InodeID, kind kernel.FileKind) (kernel.Attr, error) {
	d, err := fs.getDir(dir)
	if err != nil {
		return kernel.Attr{}, err
	}
	if name == "" || child == 0 {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	if id, exists := d.dir[name]; exists {
		if id == child {
			return fs.Materialize(p, child, kind)
		}
		return kernel.Attr{}, kernel.ErrExists
	}
	attr, err := fs.Materialize(p, child, kind)
	if err != nil {
		return kernel.Attr{}, err
	}
	d.dir[name] = child
	d.attr.Version++
	return attr, nil
}

// Detach removes the (name → child) entry from dir without touching
// the object: the finalize half of a cross-directory rename. It only
// removes the entry if it still maps to child (idempotent when the
// entry is already gone or was re-created to point elsewhere), and
// reports whether it removed anything.
func (fs *FS) Detach(p *sim.Proc, dir kernel.InodeID, name string, child kernel.InodeID) (bool, error) {
	d, err := fs.getDir(dir)
	if err != nil {
		return false, err
	}
	if id, ok := d.dir[name]; ok && id == child {
		delete(d.dir, name)
		d.attr.Version++
		return true, nil
	}
	return false, nil
}

// Scrub frees the object for id if present, regardless of whether any
// local directory still names it (dangling names are tolerated by
// Lookup/Readdir/removeNode). Sharded clusters fan it lazily after an
// unlink so every server — not just the name's owner group — drops
// the bytes and bookkeeping of a dead inode. Idempotent; the root is
// never scrubbed.
func (fs *FS) Scrub(p *sim.Proc, id kernel.InodeID) error {
	if id <= fs.Root() {
		return kernel.ErrIsDir
	}
	ino := fs.inodes[id]
	if ino == nil {
		return nil
	}
	for _, f := range ino.blocks {
		fs.node.Mem.Put(f)
	}
	delete(fs.inodes, id)
	return nil
}

// Rename moves (srcName in srcDir) to (dstName in dstDir) locally:
// the same-owner fast path of the cluster's rename, also usable by a
// single-server session. Replaying a rename that already happened
// (dst entry maps to the same child, src entry gone) is an idempotent
// success; a dst entry naming a different inode is ErrExists.
func (fs *FS) Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) (kernel.Attr, error) {
	sd, err := fs.getDir(srcDir)
	if err != nil {
		return kernel.Attr{}, err
	}
	dd, err := fs.getDir(dstDir)
	if err != nil {
		return kernel.Attr{}, err
	}
	if srcName == "" || dstName == "" {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	childAttr := func(id kernel.InodeID) kernel.Attr {
		if ino := fs.inodes[id]; ino != nil {
			return ino.attr
		}
		return kernel.Attr{Ino: id, Kind: kernel.RegularFile}
	}
	id, ok := sd.dir[srcName]
	if !ok {
		// Possibly a replay: accept if the destination already holds
		// an entry (we cannot tell whose, but a fresh rename of a
		// missing source is ErrNotFound either way).
		if did, exists := dd.dir[dstName]; exists {
			return childAttr(did), nil
		}
		return kernel.Attr{}, kernel.ErrNotFound
	}
	if did, exists := dd.dir[dstName]; exists {
		if did != id {
			return kernel.Attr{}, kernel.ErrExists
		}
		delete(sd.dir, srcName)
		sd.attr.Version++
		return childAttr(id), nil
	}
	delete(sd.dir, srcName)
	dd.dir[dstName] = id
	sd.attr.Version++
	dd.attr.Version++
	return childAttr(id), nil
}
