package memfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

type rig struct {
	env  *sim.Engine
	node *hw.Node
	fs   *FS
}

func newRig(t *testing.T, pageCost sim.Time) *rig {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := c.AddNode("n")
	return &rig{env: env, node: node, fs: New("test", node, pageCost)}
}

func (r *rig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("t", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("deadlock")
	}
}

func kseg(r *rig, va vm.VirtAddr, n int) core.Vector {
	return core.Of(core.KernelSeg(r.node.Kernel, va, n))
}

func TestTreeOperations(t *testing.T) {
	r := newRig(t, 0)
	r.run(t, func(p *sim.Proc) {
		root := r.fs.Root()
		d1, err := r.fs.Mkdir(p, root, "a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Mkdir(p, root, "a"); err != kernel.ErrExists {
			t.Fatalf("duplicate mkdir: %v", err)
		}
		f1, err := r.fs.Create(p, d1.Ino, "f")
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.Lookup(p, d1.Ino, "f")
		if err != nil || got.Ino != f1.Ino {
			t.Fatalf("lookup: %v %v", got, err)
		}
		if _, err := r.fs.Lookup(p, f1.Ino, "x"); err != kernel.ErrNotDir {
			t.Fatalf("lookup in file: %v", err)
		}
		if err := r.fs.Rmdir(p, root, "a"); err != kernel.ErrNotEmpty {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		if err := r.fs.Unlink(p, d1.Ino, "f"); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Rmdir(p, root, "a"); err != nil {
			t.Fatal(err)
		}
		ents, _ := r.fs.Readdir(p, root)
		if len(ents) != 0 {
			t.Fatalf("root not empty: %v", ents)
		}
	})
}

func TestUnlinkFreesFrames(t *testing.T) {
	r := newRig(t, 0)
	r.run(t, func(p *sim.Proc) {
		before := r.node.Mem.Allocated()
		a, _ := r.fs.Create(p, r.fs.Root(), "f")
		va, _ := r.node.Kernel.Mmap(64*1024, "buf")
		r.fs.WriteDirect(p, a.Ino, 0, kseg(r, va, 64*1024))
		if r.node.Mem.Allocated() <= before {
			t.Fatal("no blocks allocated by write")
		}
		r.node.Kernel.Munmap(va, 64*1024)
		if err := r.fs.Unlink(p, r.fs.Root(), "f"); err != nil {
			t.Fatal(err)
		}
		if got := r.node.Mem.Allocated(); got != before {
			t.Fatalf("frames leaked: %d -> %d", before, got)
		}
	})
}

func TestTruncateZeroesTail(t *testing.T) {
	r := newRig(t, 0)
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Create(p, r.fs.Root(), "f")
		va, _ := r.node.Kernel.Mmap(2*mem.PageSize, "buf")
		data := bytes.Repeat([]byte{0xAA}, 2*mem.PageSize)
		r.node.Kernel.WriteBytes(va, data)
		r.fs.WriteDirect(p, a.Ino, 0, kseg(r, va, 2*mem.PageSize))
		if err := r.fs.Truncate(p, a.Ino, 100); err != nil {
			t.Fatal(err)
		}
		// Grow again: bytes beyond 100 must read zero, not stale 0xAA.
		if err := r.fs.Truncate(p, a.Ino, mem.PageSize); err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.ReadDirect(p, a.Ino, 0, kseg(r, va, mem.PageSize))
		if err != nil || got != mem.PageSize {
			t.Fatalf("read: %d %v", got, err)
		}
		raw, _ := r.node.Kernel.ReadBytes(va, mem.PageSize)
		for i := 100; i < mem.PageSize; i++ {
			if raw[i] != 0 {
				t.Fatalf("stale byte %#x at %d after truncate", raw[i], i)
			}
		}
	})
}

func TestFrameAtExposesBlocks(t *testing.T) {
	r := newRig(t, 0)
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Create(p, r.fs.Root(), "f")
		va, _ := r.node.Kernel.Mmap(3*mem.PageSize, "buf")
		data := []byte("zero-copy server payload")
		r.node.Kernel.WriteBytes(va+2*mem.PageSize, data)
		raw, _ := r.node.Kernel.ReadBytes(va, 3*mem.PageSize)
		_ = raw
		r.fs.WriteDirect(p, a.Ino, 0, kseg(r, va, 3*mem.PageSize))
		f := r.fs.FrameAt(a.Ino, 2)
		if f == nil {
			t.Fatal("no frame for written block")
		}
		if !bytes.Equal(f.Data()[:len(data)], data) {
			t.Fatal("frame content mismatch")
		}
		if r.fs.FrameAt(a.Ino, 99) != nil {
			t.Fatal("frame for unwritten block")
		}
	})
}

func TestDiskLatencyCharged(t *testing.T) {
	slow := newRig(t, 100*time.Microsecond)
	fast := newRig(t, 0)
	var slowT, fastT sim.Time
	measure := func(r *rig, out *sim.Time) {
		r.run(t, func(p *sim.Proc) {
			a, _ := r.fs.Create(p, r.fs.Root(), "f")
			va, _ := r.node.Kernel.Mmap(64*1024, "buf")
			r.fs.WriteDirect(p, a.Ino, 0, kseg(r, va, 64*1024))
			t0 := p.Now()
			r.fs.ReadDirect(p, a.Ino, 0, kseg(r, va, 64*1024))
			*out = p.Now() - t0
		})
	}
	measure(slow, &slowT)
	measure(fast, &fastT)
	if slowT < fastT+1500*time.Microsecond {
		t.Fatalf("disk latency not charged: slow %v, fast %v (16 pages × 100µs expected)", slowT, fastT)
	}
}

func TestSparseReadsZero(t *testing.T) {
	r := newRig(t, 0)
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Create(p, r.fs.Root(), "f")
		va, _ := r.node.Kernel.Mmap(mem.PageSize, "buf")
		// Write only page 3.
		r.fs.WriteDirect(p, a.Ino, 3*mem.PageSize, kseg(r, va, mem.PageSize))
		frame, _ := r.node.Mem.AllocFrame()
		n, err := r.fs.ReadPage(p, a.Ino, 1, frame)
		if err != nil || n != mem.PageSize {
			t.Fatalf("hole ReadPage: %d %v", n, err)
		}
		for i, b := range frame.Data() {
			if b != 0 {
				t.Fatalf("hole byte %d = %d", i, b)
			}
		}
	})
}

// Property: WriteDirect/ReadDirect at random offsets match a flat
// reference buffer.
func TestDirectIOProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		env := sim.NewEngine()
		c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
		node := c.AddNode("n")
		fs := New("t", node, 0)
		env.Spawn("t", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			a, _ := fs.Create(p, fs.Root(), "f")
			va, _ := node.Kernel.Mmap(1<<18, "buf")
			ref := []byte{}
			for op := 0; op < 15; op++ {
				off := rng.Int63n(100 * 1024)
				n := rng.Intn(40*1024) + 1
				if rng.Intn(2) == 0 {
					data := make([]byte, n)
					rng.Read(data)
					node.Kernel.WriteBytes(va, data)
					fs.WriteDirect(p, a.Ino, off, core.Of(core.KernelSeg(node.Kernel, va, n)))
					if need := int(off) + n; need > len(ref) {
						ref = append(ref, make([]byte, need-len(ref))...)
					}
					copy(ref[off:], data)
				} else {
					got, err := fs.ReadDirect(p, a.Ino, off, core.Of(core.KernelSeg(node.Kernel, va, n)))
					if err != nil {
						ok = false
						return
					}
					want := 0
					if int(off) < len(ref) {
						want = min(n, len(ref)-int(off))
					}
					if got != want {
						ok = false
						return
					}
					if got > 0 {
						raw, _ := node.Kernel.ReadBytes(va, got)
						if !bytes.Equal(raw, ref[off:int(off)+got]) {
							ok = false
							return
						}
					}
				}
			}
		})
		env.Run(0)
		return ok
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}
