// Slice export/import: the bulk-resync channel of the elastic
// membership layer (DESIGN.md §13). A Slice is a point-in-time copy of
// the namespace metadata a server holds — inode attributes, directory
// entries, and the mint cursor — without data blocks; migration and
// full-slice resync move it between servers directly (the simulation's
// stand-in for an out-of-band bulk transfer), then re-copy data
// stripes separately.
package memfs

import (
	"repro/internal/kernel"
	"repro/internal/mem"
)

// SliceNode is one inode of an exported Slice: its attributes plus,
// for directories, a copy of the entry map.
type SliceNode struct {
	Attr    kernel.Attr
	Entries map[string]kernel.InodeID
}

// Slice is a point-in-time export of (part of) a filesystem's
// metadata, plus the mint cursor so an importer can keep minting
// without colliding with inodes the exporter already assigned.
type Slice struct {
	Next  kernel.InodeID
	Seq   uint64
	Nodes []SliceNode
}

// ExportSlice copies the metadata of every inode owns admits (the
// whole store with owns nil): attributes and directory entries, no
// data blocks. The export is a host-level memory copy — it costs no
// simulated time, modeling a bulk channel outside the request path.
func (fs *FS) ExportSlice(owns func(kernel.InodeID) bool) *Slice {
	s := &Slice{Next: fs.next, Seq: fs.seq}
	for id, ino := range fs.inodes {
		if owns != nil && !owns(id) {
			continue
		}
		n := SliceNode{Attr: ino.attr}
		if ino.dir != nil {
			n.Entries = make(map[string]kernel.InodeID, len(ino.dir))
			for name, child := range ino.dir {
				n.Entries[name] = child
			}
		}
		s.Nodes = append(s.Nodes, n)
	}
	return s
}

// ImportSlice makes the local metadata of every inode owns admits
// exactly match the slice: present nodes are adopted (attributes
// replaced — by default a file's size keeps the local value if larger,
// since a sparse local copy may hold a tail stripe the exporter never
// saw — and directory entry maps replaced wholesale), missing nodes
// are created empty, and local inodes owns admits that the slice does
// not name are deleted with their blocks. Inodes outside owns (foreign
// data stripes, stale stubs) are left untouched, as is the root when
// the slice does not carry it. The mint cursor advances to at least
// the exporter's so future sequential mints cannot collide.
//
// With exact set, the slice's sizes are authoritative rather than a
// lower bound: a file's local size is adopted verbatim and any local
// blocks past it are released, so a returning server cannot serve
// stale tail bytes a shrink removed while it was away. Rebuilds from
// an authoritative snapshot (full-slice resync, membership changes)
// use exact; incremental merges keep the max rule.
func (fs *FS) ImportSlice(s *Slice, owns func(kernel.InodeID) bool, exact bool) {
	named := make(map[kernel.InodeID]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		named[n.Attr.Ino] = true
		ino := fs.inodes[n.Attr.Ino]
		if ino == nil {
			ino = &inode{attr: n.Attr}
			fs.inodes[n.Attr.Ino] = ino
		} else if n.Attr.Kind == kernel.RegularFile && exact {
			attr := n.Attr
			fs.shrinkTo(ino, attr.Size)
			ino.attr = attr
		} else {
			if n.Attr.Kind == kernel.RegularFile && ino.attr.Size > n.Attr.Size {
				local := ino.attr.Size
				ino.attr = n.Attr
				ino.attr.Size = local
			} else {
				ino.attr = n.Attr
			}
		}
		if ino.blocks == nil {
			ino.blocks = make(map[int64]*mem.Frame)
		}
		if n.Attr.Kind == kernel.Directory {
			ino.dir = make(map[string]kernel.InodeID, len(n.Entries))
			for name, child := range n.Entries {
				ino.dir[name] = child
			}
		}
	}
	for id, ino := range fs.inodes {
		if id == 1 || named[id] || (owns != nil && !owns(id)) {
			continue
		}
		for _, f := range ino.blocks {
			fs.node.Mem.Put(f)
		}
		delete(fs.inodes, id)
	}
	if s.Next > fs.next {
		fs.next = s.Next
	}
	if s.Seq > fs.seq {
		fs.seq = s.Seq
	}
}

// MaxIno returns the highest inode number the store holds (at least
// the root). Membership changes use it to raise every server's mint
// floor past anything any geometry ever assigned.
func (fs *FS) MaxIno() kernel.InodeID {
	max := kernel.InodeID(1)
	for id := range fs.inodes {
		if id > max {
			max = id
		}
	}
	return max
}

// SetInodePartitionFloor re-partitions the minter to (index, count)
// like SetInodePartition, then advances the mint sequence so every
// future inode number exceeds floor. Geometry changes re-base every
// server's minting this way: (ino−2) mod count routes correctly for
// new inodes, and numbers minted under the old geometry are never
// reassigned.
func (fs *FS) SetInodePartitionFloor(index, count int, floor kernel.InodeID) {
	fs.partIdx, fs.partN = index, count
	n := uint64(count)
	if n < 1 {
		n = 1
	}
	var seq uint64
	if uint64(floor) >= 2 {
		// Smallest seq with 2 + (seq·n + index)·n > floor for residue 0.
		per := (uint64(floor) - 2) / n
		if per >= uint64(index) {
			seq = (per-uint64(index))/n + 1
		}
	}
	if seq > fs.seq {
		fs.seq = seq
	}
	if kernel.InodeID(floor)+1 > fs.next {
		fs.next = floor + 1
	}
}

// ReadRange copies [off, off+n) of a file's bytes out of the block
// store (holes and bytes past the last block read as zero), clipped to
// the local size. Host-level: no simulated time, no CPU cost — the
// migration bulk channel again.
func (fs *FS) ReadRange(id kernel.InodeID, off int64, n int) []byte {
	ino := fs.inodes[id]
	if ino == nil || off >= ino.attr.Size {
		return nil
	}
	if int64(n) > ino.attr.Size-off {
		n = int(ino.attr.Size - off)
	}
	return fs.readBytes(ino, off, n)
}

// WriteRange stores data at off, extending the file's local size, as
// a host-level copy. An absent inode is created as a bare file stub —
// data stripes land on servers that never saw the file's metadata,
// exactly like the lazy materialization of the sharded write path.
func (fs *FS) WriteRange(id kernel.InodeID, off int64, data []byte) error {
	ino, err := fs.get(id)
	if err != nil {
		if err != kernel.ErrNotFound || id <= 1 {
			return err
		}
		ino = &inode{
			attr:   kernel.Attr{Ino: id, Kind: kernel.RegularFile},
			blocks: make(map[int64]*mem.Frame),
		}
		fs.inodes[id] = ino
	}
	fs.writeBytes(ino, off, data)
	return nil
}

// LocalSize returns the store's local size for an inode (0 when
// absent). Sparse per-server copies make this a lower bound on the
// file's global size.
func (fs *FS) LocalSize(id kernel.InodeID) int64 {
	if ino := fs.inodes[id]; ino != nil {
		return ino.attr.Size
	}
	return 0
}
