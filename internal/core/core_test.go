package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/vm"
)

func spaces(t *testing.T) (*mem.Memory, *vm.AddressSpace, *vm.AddressSpace) {
	t.Helper()
	m := mem.New(0)
	ids := vm.NewIDSource()
	user := vm.NewAddressSpace(m, ids, vm.User, "user")
	kern := vm.NewAddressSpace(m, ids, vm.Kernel, "kernel")
	return m, user, kern
}

func TestSegmentValidate(t *testing.T) {
	_, user, kern := spaces(t)
	uva, _ := user.Mmap(vm.PageSize, "u")
	kva, _ := kern.MmapContig(vm.PageSize, "k")

	good := []Segment{
		UserSeg(user, uva, 100),
		KernelSeg(kern, kva, 100),
		PhysSeg(0x5000, 100),
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good segment %d rejected: %v", i, err)
		}
	}
	bad := []Segment{
		{Type: UserVirtual, Len: 1},                      // no AS
		{Type: UserVirtual, AS: kern, VA: kva, Len: 1},   // wrong kind
		{Type: KernelVirtual, AS: user, VA: uva, Len: 1}, // wrong kind
		{Type: Physical, AS: user, PA: 0x5000, Len: 1},   // AS on physical
		{Type: UserVirtual, AS: user, VA: uva, Len: -1},  // negative
		{Type: AddrType(42), Len: 1},                     // unknown
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad segment %d accepted", i)
		}
	}
}

func TestVectorExtentsMergesAcrossSegments(t *testing.T) {
	_, _, kern := spaces(t)
	kva, _ := kern.MmapContig(4*vm.PageSize, "k")
	v := Vector{
		KernelSeg(kern, kva, 2*vm.PageSize),
		KernelSeg(kern, kva+2*vm.PageSize, 2*vm.PageSize),
	}
	xs, err := v.Extents()
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 || xs[0].Len != 4*vm.PageSize {
		t.Fatalf("adjacent kernel segments not merged: %v", xs)
	}
	ok, err := v.PhysicallyContiguous()
	if err != nil || !ok {
		t.Fatalf("PhysicallyContiguous = %v, %v", ok, err)
	}
}

func TestUserMemoryUsuallyScattered(t *testing.T) {
	_, user, _ := spaces(t)
	// Recycle to fragment.
	a, _ := user.Mmap(vm.PageSize, "t1")
	b, _ := user.Mmap(vm.PageSize, "t2")
	user.Munmap(a, vm.PageSize)
	user.Munmap(b, vm.PageSize)
	uva, _ := user.Mmap(3*vm.PageSize, "buf")
	v := Of(UserSeg(user, uva, 3*vm.PageSize))
	ok, err := v.PhysicallyContiguous()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("recycled user buffer should be scattered (paper §4.1)")
	}
}

func TestPinUnpin(t *testing.T) {
	_, user, kern := spaces(t)
	uva, _ := user.Mmap(2*vm.PageSize, "u")
	kva, _ := kern.MmapContig(vm.PageSize, "k")
	v := Vector{
		UserSeg(user, uva, 2*vm.PageSize),
		KernelSeg(kern, kva, vm.PageSize), // not pinned by Vector.Pin
	}
	unpin, err := v.Pin()
	if err != nil {
		t.Fatal(err)
	}
	if user.PinCount(uva) != 1 || user.PinCount(uva+vm.PageSize) != 1 {
		t.Fatal("user pages not pinned")
	}
	if kern.PinCount(kva) != 0 {
		t.Fatal("kernel page should not be pinned by Vector.Pin")
	}
	unpin()
	if user.PinCount(uva) != 0 {
		t.Fatal("unpin did not release")
	}
}

func TestPinFailureUnwinds(t *testing.T) {
	_, user, _ := spaces(t)
	uva, _ := user.Mmap(vm.PageSize, "u")
	v := Vector{
		UserSeg(user, uva, vm.PageSize),
		UserSeg(user, uva+8*vm.PageSize, vm.PageSize), // unmapped
	}
	if _, err := v.Pin(); err == nil {
		t.Fatal("pin of unmapped range succeeded")
	}
	if user.PinCount(uva) != 0 {
		t.Fatal("partial pin not unwound")
	}
}

func TestSegmentPages(t *testing.T) {
	_, user, _ := spaces(t)
	uva, _ := user.Mmap(4*vm.PageSize, "u")
	cases := []struct {
		seg  Segment
		want int
	}{
		{UserSeg(user, uva, 1), 1},
		{UserSeg(user, uva, vm.PageSize), 1},
		{UserSeg(user, uva+vm.PageSize-1, 2), 2},
		{PhysSeg(0x1000, 2*vm.PageSize), 2},
		{PhysSeg(0x1800, vm.PageSize), 2}, // straddles
	}
	for i, c := range cases {
		if got := c.seg.Pages(); got != c.want {
			t.Errorf("case %d: Pages = %d, want %d", i, got, c.want)
		}
	}
}

func TestMatchSemantics(t *testing.T) {
	if !MatchAll.Accepts(0xdeadbeef) {
		t.Error("MatchAll must accept everything")
	}
	m := Exact(0x42)
	if !m.Accepts(0x42) || m.Accepts(0x43) {
		t.Error("Exact match wrong")
	}
	// Masked match: accept any message whose low byte is 7.
	lm := Match{Bits: 7, Mask: 0xff}
	if !lm.Accepts(0xaa07) || lm.Accepts(0xaa08) {
		t.Error("masked match wrong")
	}
}

// Property: Accepts is consistent with the definition I&M == B&M.
func TestMatchProperty(t *testing.T) {
	f := func(bits, mask, info uint64) bool {
		m := Match{Bits: bits, Mask: mask}
		return m.Accepts(info) == (info&mask == bits&mask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: vector extents always total the vector length, regardless of
// how a buffer is sliced into segments.
func TestVectorExtentsTotalProperty(t *testing.T) {
	_, user, _ := spaces(t)
	uva, _ := user.Mmap(16*vm.PageSize, "u")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := rng.Intn(12*vm.PageSize) + 1
		var v Vector
		off := 0
		for off < total {
			n := rng.Intn(total-off) + 1
			v = append(v, UserSeg(user, uva+vm.VirtAddr(off), n))
			off += n
		}
		xs, err := v.Extents()
		if err != nil {
			return false
		}
		return mem.TotalLen(xs) == total && v.TotalLen() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorSlice(t *testing.T) {
	_, user, _ := spaces(t)
	uva, _ := user.Mmap(4*vm.PageSize, "u")
	v := Vector{
		UserSeg(user, uva, 100),
		PhysSeg(0x8000, 200),
		UserSeg(user, uva+vm.PageSize, 300),
	}
	cases := []struct {
		off, n    int
		wantSegs  int
		wantTotal int
	}{
		{0, 600, 3, 600},
		{0, 100, 1, 100},
		{50, 100, 2, 100},  // tail of seg 0 + head of seg 1
		{100, 200, 1, 200}, // exactly seg 1
		{150, 300, 2, 300}, // mid seg 1 through mid seg 2
		{599, 1, 1, 1},
	}
	for i, c := range cases {
		got := v.Slice(c.off, c.n)
		if len(got) != c.wantSegs || got.TotalLen() != c.wantTotal {
			t.Errorf("case %d: Slice(%d,%d) = %d segs / %d bytes, want %d / %d",
				i, c.off, c.n, len(got), got.TotalLen(), c.wantSegs, c.wantTotal)
		}
	}
	// Physical segment offsets must advance.
	part := v.Slice(150, 50)
	if part[0].Type != Physical || part[0].PA != 0x8000+50 {
		t.Errorf("physical slice offset wrong: %+v", part[0])
	}
	// Virtual segment offsets must advance.
	part = v.Slice(10, 20)
	if part[0].VA != uva+10 {
		t.Errorf("virtual slice offset wrong: %+v", part[0])
	}
}

// Property: slicing then gathering equals gathering then slicing.
func TestSlicePreservesBytesProperty(t *testing.T) {
	m, user, _ := spaces(t)
	uva, _ := user.Mmap(8*vm.PageSize, "u")
	data := make([]byte, 8*vm.PageSize)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	user.WriteBytes(uva, data)
	v := Vector{
		UserSeg(user, uva, 3000),
		UserSeg(user, uva+vm.PageSize, 5000),
		UserSeg(user, uva+4*vm.PageSize, 2000),
	}
	whole, _ := v.Extents()
	flat := m.Gather(whole)
	f := func(off, n uint16) bool {
		o := int(off) % v.TotalLen()
		k := int(n)%(v.TotalLen()-o) + 1
		part := v.Slice(o, k)
		if part.TotalLen() != k {
			return false
		}
		xs, err := part.Extents()
		if err != nil {
			return false
		}
		return bytes.Equal(m.Gather(xs), flat[o:o+k])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorValidateAndCounts(t *testing.T) {
	_, user, kern := spaces(t)
	uva, _ := user.Mmap(2*vm.PageSize, "u")
	kva, _ := kern.MmapContig(vm.PageSize, "k")
	v := Vector{
		UserSeg(user, uva, 2*vm.PageSize),
		KernelSeg(kern, kva, vm.PageSize),
		PhysSeg(0x4000, 100),
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Pages() != 4 {
		t.Errorf("Pages = %d, want 4", v.Pages())
	}
	if v.UserPages() != 2 {
		t.Errorf("UserPages = %d, want 2", v.UserPages())
	}
	bad := Vector{UserSeg(user, uva, 10), {Type: AddrType(9), Len: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid vector accepted")
	}
}

func TestAddrTypeString(t *testing.T) {
	if UserVirtual.String() != "user-virtual" || KernelVirtual.String() != "kernel-virtual" ||
		Physical.String() != "physical" {
		t.Error("AddrType strings wrong")
	}
	if AddrType(42).String() == "" {
		t.Error("unknown AddrType should still stringify")
	}
}
