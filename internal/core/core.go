// Package core defines the in-kernel network API abstractions the paper
// proposes (§4): address-type-tagged buffer segments, vectorial
// (scatter/gather) buffer descriptions, and the completion/matching
// model shared by the drivers.
//
// The central idea (§4.2): an in-kernel application manipulates three
// kinds of memory, and only the application knows which is which, so the
// API must let it say so —
//
//   - User virtual: the network layer must pin the pages and translate
//     the addresses (zero-copy socket sends, O_DIRECT file access).
//   - Kernel virtual: usually already pinned; translation only
//     (request/reply control buffers).
//   - Physical: usable as-is (page-cache pages, whose physical addresses
//     a kernel client obtains trivially).
//
// User and kernel spaces are independent: the same numeric virtual
// address can exist in both, mapping to different physical pages, so a
// bare virtual address does not identify memory — hence the explicit
// tag rather than address-range heuristics.
package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/vm"
)

// AddrType tags a Segment with the kind of address it carries.
type AddrType int

const (
	// UserVirtual addresses need pinning and translation.
	UserVirtual AddrType = iota
	// KernelVirtual addresses need translation only (already pinned).
	KernelVirtual
	// Physical addresses are used as-is; the caller guarantees the
	// frames stay put ("the application is responsible for pinning
	// memory if needed", §4.2).
	Physical
)

// String names the address type.
func (t AddrType) String() string {
	switch t {
	case UserVirtual:
		return "user-virtual"
	case KernelVirtual:
		return "kernel-virtual"
	case Physical:
		return "physical"
	}
	return fmt.Sprintf("AddrType(%d)", int(t))
}

// Segment is one address-typed buffer piece.
type Segment struct {
	Type AddrType
	AS   *vm.AddressSpace // for the virtual types
	VA   vm.VirtAddr      // for the virtual types
	PA   mem.PhysAddr     // for Physical
	Len  int
}

// UserSeg builds a user-virtual segment.
func UserSeg(as *vm.AddressSpace, va vm.VirtAddr, n int) Segment {
	return Segment{Type: UserVirtual, AS: as, VA: va, Len: n}
}

// KernelSeg builds a kernel-virtual segment.
func KernelSeg(as *vm.AddressSpace, va vm.VirtAddr, n int) Segment {
	return Segment{Type: KernelVirtual, AS: as, VA: va, Len: n}
}

// PhysSeg builds a physical segment.
func PhysSeg(pa mem.PhysAddr, n int) Segment {
	return Segment{Type: Physical, PA: pa, Len: n}
}

// Validate checks structural well-formedness.
func (s Segment) Validate() error {
	if s.Len < 0 {
		return fmt.Errorf("core: segment with negative length %d", s.Len)
	}
	switch s.Type {
	case UserVirtual:
		if s.AS == nil {
			return fmt.Errorf("core: user-virtual segment without address space")
		}
		if s.AS.Kind() != vm.User {
			return fmt.Errorf("core: user-virtual segment names a %v space", s.AS.Kind())
		}
	case KernelVirtual:
		if s.AS == nil {
			return fmt.Errorf("core: kernel-virtual segment without address space")
		}
		if s.AS.Kind() != vm.Kernel {
			return fmt.Errorf("core: kernel-virtual segment names a %v space", s.AS.Kind())
		}
	case Physical:
		if s.AS != nil {
			return fmt.Errorf("core: physical segment must not name an address space")
		}
	default:
		return fmt.Errorf("core: unknown address type %d", s.Type)
	}
	return nil
}

// Extents resolves the segment to physically contiguous extents
// (no timing; callers charge translation/pinning costs separately).
func (s Segment) Extents() ([]mem.Extent, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Len == 0 {
		return nil, nil
	}
	switch s.Type {
	case Physical:
		return []mem.Extent{{Addr: s.PA, Len: s.Len}}, nil
	default:
		return s.AS.Resolve(s.VA, s.Len)
	}
}

// Pages returns the number of pages the segment touches.
func (s Segment) Pages() int {
	switch s.Type {
	case Physical:
		return mem.PagesIn(mem.PhysAddr(s.PA).Offset(), s.Len)
	default:
		return mem.PagesIn(s.VA.Offset(), s.Len)
	}
}

// Vector is a scatter/gather list: the vectorial communication
// primitive the paper argues every kernel API needs (§4.1), because
// multi-page buffers resolve to many short physical runs.
type Vector []Segment

// Of builds a single-segment vector.
func Of(s Segment) Vector { return Vector{s} }

// TotalLen sums segment lengths.
func (v Vector) TotalLen() int {
	n := 0
	for _, s := range v {
		n += s.Len
	}
	return n
}

// Validate checks all segments.
func (v Vector) Validate() error {
	for i, s := range v {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
	}
	return nil
}

// Slice returns the sub-vector covering [off, off+n) of the vector's
// byte range, splitting segments as needed.
func (v Vector) Slice(off, n int) Vector {
	var out Vector
	for _, s := range v {
		if n == 0 {
			break
		}
		if off >= s.Len {
			off -= s.Len
			continue
		}
		take := s.Len - off
		if take > n {
			take = n
		}
		part := s
		part.Len = take
		switch s.Type {
		case Physical:
			part.PA = s.PA + mem.PhysAddr(off)
		default:
			part.VA = s.VA + vm.VirtAddr(off)
		}
		out = append(out, part)
		n -= take
		off = 0
	}
	return out
}

// Pages sums segment page counts.
func (v Vector) Pages() int {
	n := 0
	for _, s := range v {
		n += s.Pages()
	}
	return n
}

// UserPages counts pages in user-virtual segments (those MX must pin).
func (v Vector) UserPages() int {
	n := 0
	for _, s := range v {
		if s.Type == UserVirtual {
			n += s.Pages()
		}
	}
	return n
}

// AllPhysical reports whether the vector is non-empty and purely
// physical — the shape the drivers may hand to the NIC as-is.
func (v Vector) AllPhysical() bool {
	for _, s := range v {
		if s.Type != Physical {
			return false
		}
	}
	return len(v) > 0
}

// Extents resolves the whole vector into merged physical extents.
func (v Vector) Extents() ([]mem.Extent, error) {
	if len(v) == 1 {
		// The data path sends single-segment vectors almost
		// exclusively; Segment.Extents already merges, so skip the
		// re-merge (and its allocation).
		xs, err := v[0].Extents()
		if err != nil {
			return nil, fmt.Errorf("segment 0: %w", err)
		}
		return xs, nil
	}
	var out []mem.Extent
	for i, s := range v {
		xs, err := s.Extents()
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		out = append(out, xs...)
	}
	return mem.MergeExtents(out), nil
}

// PhysicallyContiguous reports whether the vector resolves to a single
// extent — the precondition for the medium-message copy-removal
// optimization (§5.1: "physically contiguous medium message").
func (v Vector) PhysicallyContiguous() (bool, error) {
	xs, err := v.Extents()
	if err != nil {
		return false, err
	}
	return len(xs) <= 1, nil
}

// Pin pins the user-virtual pages of the vector (bookkeeping only; the
// caller charges CPU time). Returns an unpin closure.
func (v Vector) Pin() (func(), error) {
	type pinned struct {
		as *vm.AddressSpace
		va vm.VirtAddr
		n  int
	}
	var done []pinned
	undo := func() {
		for _, pn := range done {
			pn.as.Unpin(pn.va, pn.n)
		}
	}
	for _, s := range v {
		if s.Type != UserVirtual || s.Len == 0 {
			continue
		}
		if _, err := s.AS.Pin(s.VA, s.Len); err != nil {
			undo()
			return nil, err
		}
		done = append(done, pinned{s.AS, s.VA, s.Len})
	}
	return undo, nil
}

// Match is the 64-bit matching information of the MX model. A posted
// receive with mask M and bits B matches an incoming message with match
// information I when I&M == B&M.
type Match struct {
	Bits uint64
	Mask uint64
}

// MatchAll matches any message.
var MatchAll = Match{Bits: 0, Mask: 0}

// Exact matches only messages whose match information equals bits.
func Exact(bits uint64) Match { return Match{Bits: bits, Mask: ^uint64(0)} }

// Accepts reports whether incoming match information info satisfies m.
func (m Match) Accepts(info uint64) bool { return info&m.Mask == m.Bits&m.Mask }
