// Package gm models the GM message-passing interface of Myrinet
// networks (GM 2.0.13 in the paper, §2.2.2): ports with a unique event
// queue, explicit memory registration against the NIC translation
// table, send tokens bounding outstanding requests, and — as the
// paper's §3.3 extension — physical-address-based primitives for
// kernel users.
//
// GM's design points reproduced here, each of which the paper
// identifies as a problem for in-kernel applications:
//
//   - All I/O buffers must be registered before use (3 µs/page, with a
//     200 µs deregistration base), so efficient use requires a
//     registration cache (package gmkrc).
//   - There are no vectorial primitives: one Send transfers one
//     virtually contiguous, registered range.
//   - The event model is a single queue per port; the application must
//     consume events in order (no waiting on a specific request).
//   - The kernel interface is an afterthought: every host-side
//     operation from a kernel port pays Params.GMKernelPenalty
//     ("small message latency is 2 µs higher in the kernel", §5.1).
package gm

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// portBits is how many low bits of the wire tag address the port.
const portBits = 8

// nanosecond spells out the sim.Time unit for small constants.
const nanosecond = sim.Time(1)

// GM is the per-node driver instance.
type GM struct {
	node  *hw.Node
	p     *hw.Params
	ports map[uint8]*Port
}

// Attach installs the GM driver on a node. Call once per node.
func Attach(node *hw.Node) *GM {
	g := &GM{node: node, p: node.Cluster.Params, ports: make(map[uint8]*Port)}
	node.NIC.Handle(hw.ProtoGM, g.receive)
	node.SetDriver(hw.ProtoGM, g)
	return g
}

// Node returns the node this driver instance serves.
func (g *GM) Node() *hw.Node { return g.node }

// EventType distinguishes completions in the port event queue.
type EventType int

const (
	// RecvComplete reports an arrived message.
	RecvComplete EventType = iota
	// SendComplete reports that a send's buffer may be reused.
	SendComplete
)

// Event is one entry of a port's unique event queue.
type Event struct {
	Type EventType
	Tag  uint64 // application tag
	Len  int    // payload bytes (received or sent)
	Src  hw.NodeID
	Err  error // e.g. truncation
}

// Port is a GM communication endpoint. The paper notes GM assumes one
// process per port; sharing one kernel port among processes is what
// forces GMKRC's address-space tagging (§3.2).
type Port struct {
	gm     *GM
	id     uint8
	kernel bool

	events *sim.Chan[Event]
	tokens *sim.Resource

	posted     map[uint64][]*postedRecv // tag → FIFO
	unexpected []*hw.Message
	regions    []*Region // live registrations (directed-send targets)

	// Stats
	Sends, Recvs sim.Counter
	// DirectedDrops counts directed sends that targeted unregistered
	// remote memory (silently discarded, as real GM does).
	DirectedDrops sim.Counter
}

type postedRecv struct {
	extents []mem.Extent
	length  int
	virtual bool // posted with a registered virtual range (lookup cost)
}

// OpenPort opens port id. kernel selects the in-kernel interface
// (paper §3: "a MYRINET communication port, that was open in the
// kernel").
func (g *GM) OpenPort(id uint8, kernel bool) (*Port, error) {
	if _, dup := g.ports[id]; dup {
		return nil, fmt.Errorf("gm: port %d already open on %s", id, g.node.Name)
	}
	pt := &Port{
		gm:     g,
		id:     id,
		kernel: kernel,
		events: sim.NewChan[Event](g.node.Cluster.Env),
		tokens: sim.NewResource(g.node.Cluster.Env, fmt.Sprintf("%s-gm%d-tokens", g.node.Name, id), g.p.GMSendTokens),
		posted: make(map[uint64][]*postedRecv),
	}
	g.ports[id] = pt
	return pt, nil
}

// Kernel reports whether this is a kernel port.
func (pt *Port) Kernel() bool { return pt.kernel }

// ID returns the port number.
func (pt *Port) ID() uint8 { return pt.id }

// Node returns the node the port lives on.
func (pt *Port) Node() *hw.Node { return pt.gm.node }

// hostOp charges host-side driver work, with the kernel penalty when
// applicable.
func (pt *Port) hostOp(p *sim.Proc, base sim.Time) {
	if pt.kernel {
		base += pt.gm.p.GMKernelPenalty
	}
	pt.gm.node.CPU.Compute(p, base)
}

// Region is a registered memory range.
type Region struct {
	port  *Port
	as    *vm.AddressSpace
	va    vm.VirtAddr
	n     int
	pages int
	dead  bool
}

// VA returns the registered base address.
func (r *Region) VA() vm.VirtAddr { return r.va }

// Len returns the registered length.
func (r *Region) Len() int { return r.n }

// Pages returns the number of registered pages.
func (r *Region) Pages() int { return r.pages }

// RegisterMemory pins [va, va+n) of as and enters its page translations
// into the NIC table (§2.2: "pin pages in physical memory and register
// their address translations into the network interface card").
// It fails, undoing everything, when the NIC table is full.
func (pt *Port) RegisterMemory(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (*Region, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gm: RegisterMemory length %d", n)
	}
	g := pt.gm
	pages, err := as.Pin(va, n)
	if err != nil {
		return nil, err
	}
	// Charge the documented registration cost (3 µs/page, Fig 1(b)).
	pt.hostOp(p, g.p.RegTime(pages))
	table := g.node.NIC.Table
	start := va.VPN()
	for i := 0; i < pages; i++ {
		vpn := start + uint64(i)
		f := as.FrameAt(vm.VirtAddr(vpn << mem.PageShift))
		if f == nil {
			// Pinned but unmapped cannot happen right after Pin.
			panic("gm: pinned page without frame")
		}
		if err := table.Insert(hw.TransKey{AS: as.ID(), VPN: vpn}, f.Addr()); err != nil {
			for j := 0; j < i; j++ {
				table.Remove(hw.TransKey{AS: as.ID(), VPN: start + uint64(j)})
			}
			as.Unpin(va, n)
			return nil, fmt.Errorf("gm: registration of %d pages failed: %w", pages, err)
		}
	}
	r := &Region{port: pt, as: as, va: va, n: n, pages: pages}
	pt.regions = append(pt.regions, r)
	return r, nil
}

// dropRegion removes a region from the port's live list.
func (pt *Port) dropRegion(r *Region) {
	for i, x := range pt.regions {
		if x == r {
			pt.regions = append(pt.regions[:i], pt.regions[i+1:]...)
			return
		}
	}
}

// regionAt returns the live region containing [va, va+n), or nil.
func (pt *Port) regionAt(va vm.VirtAddr, n int) *Region {
	for _, r := range pt.regions {
		if r.va <= va && va+vm.VirtAddr(n) <= r.va+vm.VirtAddr(r.n) {
			return r
		}
	}
	return nil
}

// DeregisterMemory removes the region's translations and unpins it.
// The cost is dominated by the 200 µs base (Fig 1(b)) — which is why
// deregistration must be delayed and amortized (the pin-down cache).
func (pt *Port) DeregisterMemory(p *sim.Proc, r *Region) error {
	if r.dead {
		return fmt.Errorf("gm: double deregistration")
	}
	r.dead = true
	pt.dropRegion(r)
	g := pt.gm
	pt.hostOp(p, g.p.DeregTime(r.pages))
	start := r.va.VPN()
	for i := 0; i < r.pages; i++ {
		g.node.NIC.Table.Remove(hw.TransKey{AS: r.as.ID(), VPN: start + uint64(i)})
	}
	return r.as.Unpin(r.va, r.n)
}

// DeregisterInstant removes a region's NIC translations and pins
// without charging simulated time. It exists for callers running in
// notification (VMA SPY) context, where there is no process to charge:
// in reality that work happens inside the munmap path of the process
// changing its address space.
func (pt *Port) DeregisterInstant(r *Region) error {
	if r.dead {
		return fmt.Errorf("gm: double deregistration")
	}
	r.dead = true
	pt.dropRegion(r)
	start := r.va.VPN()
	for i := 0; i < r.pages; i++ {
		pt.gm.node.NIC.Table.Remove(hw.TransKey{AS: r.as.ID(), VPN: start + uint64(i)})
	}
	return r.as.Unpin(r.va, r.n)
}

// registered verifies every page of [va, va+n) is in the NIC table and
// returns the physical extents from the table's translations.
func (pt *Port) registered(as *vm.AddressSpace, va vm.VirtAddr, n int) ([]mem.Extent, error) {
	table := pt.gm.node.NIC.Table
	var xs []mem.Extent
	addr := va
	left := n
	for left > 0 {
		pa, ok := table.Lookup(hw.TransKey{AS: as.ID(), VPN: addr.VPN()})
		if !ok {
			return nil, fmt.Errorf("gm: page %#x of space %d not registered", addr, as.ID())
		}
		chunk := mem.PageSize - addr.Offset()
		if chunk > left {
			chunk = left
		}
		xs = append(xs, mem.Extent{Addr: pa + mem.PhysAddr(addr.Offset()), Len: chunk})
		addr += vm.VirtAddr(chunk)
		left -= chunk
	}
	return mem.MergeExtents(xs), nil
}

// wireTag packs (application tag, destination port).
func wireTag(tag uint64, port uint8) uint64 { return tag<<portBits | uint64(port) }

// Send transmits [va, va+n) of as — which must be fully registered on
// this port — to (dst, dstPort) with an application tag. The send
// consumes a token until the buffer has left host memory; a
// SendComplete event is then queued.
func (pt *Port) Send(p *sim.Proc, dst hw.NodeID, dstPort uint8, tag uint64, as *vm.AddressSpace, va vm.VirtAddr, n int) error {
	xs, err := pt.registered(as, va, n)
	if err != nil {
		return err
	}
	return pt.sendExtents(p, dst, dstPort, tag, xs, pt.gm.p.GMLookup)
}

// SendPhysical is the paper's §3.3 kernel-interface extension:
// "communication primitives based on physical addresses". No
// registration, no translation-table lookup (the measured 0.5 µs/side
// saving). Only kernel ports may use it.
func (pt *Port) SendPhysical(p *sim.Proc, dst hw.NodeID, dstPort uint8, tag uint64, xs []mem.Extent) error {
	if !pt.kernel {
		return fmt.Errorf("gm: SendPhysical requires a kernel port")
	}
	return pt.sendExtents(p, dst, dstPort, tag, mem.MergeExtents(xs), 0)
}

// sendExtents transmits a message. GM is a reliable interface: the
// send token is held — and the SendComplete event deferred — until the
// receiving NIC acknowledges the message, not merely until the data
// has left host memory. This end-to-end completion is what gates
// bounce-buffer reuse in layers like SOCKETS-GM.
func (pt *Port) sendExtents(p *sim.Proc, dst hw.NodeID, dstPort uint8, tag uint64, xs []mem.Extent, lookup sim.Time) error {
	g := pt.gm
	n := mem.TotalLen(xs)
	pt.hostOp(p, g.p.GMHostSend)
	pt.tokens.Acquire(p)
	msg := &hw.Message{
		Dst:    dst,
		Proto:  hw.ProtoGM,
		Tag:    wireTag(tag, dstPort),
		Header: []byte{pt.id}, // source port, for the ACK path
		TxDone: sim.NewSignal(g.node.Cluster.Env),
	}
	g.node.NIC.Send(&hw.TxJob{Msg: msg, Gather: xs, FwExtra: lookup})
	pt.Sends.Add(n)
	g.node.Cluster.Env.Tracef("gm[%s:%d] send %dB tag=%#x -> node %d port %d",
		g.node.Name, pt.id, n, tag, dst, dstPort)
	return nil
}

// ack runs on the receiving node when a message arrives and schedules
// the sender-side completion after the return-path delay.
func (g *GM) ack(m *hw.Message) {
	if len(m.Header) == 0 {
		return
	}
	srcGM, _ := g.node.Cluster.Node(m.Src).Driver(hw.ProtoGM).(*GM)
	if srcGM == nil {
		return
	}
	srcPort := srcGM.ports[m.Header[0]]
	if srcPort == nil {
		return
	}
	tag := m.Tag >> portBits
	n := len(m.Payload)
	g.node.Cluster.Env.AfterDetached(g.p.WireProp+200*nanosecond, func() {
		srcPort.tokens.Release()
		srcPort.events.Send(Event{Type: SendComplete, Tag: tag, Len: n})
	})
}

// kindDirected marks remote-memory-access messages on the wire.
const kindDirected uint8 = 1

// DirectedSend is GM's remote memory access ("send, receive or remote
// memory access requests", §2.2.2): the payload is written directly
// into the destination port's *registered* memory at remoteVA, with no
// receive posted and no receive event generated — the remote NIC
// resolves the address through its translation table. The local range
// must be registered too. Targeting unregistered remote memory drops
// the data silently (counted in DirectedDrops), like real GM.
func (pt *Port) DirectedSend(p *sim.Proc, dst hw.NodeID, dstPort uint8, tag uint64, as *vm.AddressSpace, va vm.VirtAddr, n int, remoteVA vm.VirtAddr) error {
	xs, err := pt.registered(as, va, n)
	if err != nil {
		return err
	}
	g := pt.gm
	pt.hostOp(p, g.p.GMHostSend)
	pt.tokens.Acquire(p)
	hdr := make([]byte, 9)
	hdr[0] = pt.id
	for i := 0; i < 8; i++ {
		hdr[1+i] = byte(uint64(remoteVA) >> (8 * i))
	}
	msg := &hw.Message{
		Dst:    dst,
		Proto:  hw.ProtoGM,
		Kind:   kindDirected,
		Tag:    wireTag(tag, dstPort),
		Header: hdr,
		TxDone: sim.NewSignal(g.node.Cluster.Env),
	}
	g.node.NIC.Send(&hw.TxJob{Msg: msg, Gather: xs, FwExtra: g.p.GMLookup})
	pt.Sends.Add(n)
	g.node.Cluster.Env.Tracef("gm[%s:%d] directed-send %dB -> node %d port %d va=%#x",
		g.node.Name, pt.id, n, dst, dstPort, remoteVA)
	return nil
}

// deliverDirected runs in the NIC rx pump for a directed message: the
// NIC translates the remote virtual address and DMAs in place.
func (pt *Port) deliverDirected(p *sim.Proc, m *hw.Message) {
	remoteVA := vm.VirtAddr(0)
	for i := 0; i < 8; i++ {
		remoteVA |= vm.VirtAddr(m.Header[1+i]) << (8 * i)
	}
	n := len(m.Payload)
	r := pt.regionAt(remoteVA, n)
	if r == nil {
		pt.DirectedDrops.Add(n)
		return
	}
	// Translation-table lookup on the receive side (virtual target).
	pt.gm.node.NIC.Firmware.Use(p, pt.gm.p.GMLookup)
	xs, err := pt.registered(r.as, remoteVA, n)
	if err != nil {
		pt.DirectedDrops.Add(n)
		return
	}
	pt.gm.node.Mem.Scatter(xs, m.Payload)
	pt.Recvs.Add(n)
	pt.gm.node.Cluster.Env.Tracef("gm[%s:%d] directed-recv %dB at va=%#x",
		pt.gm.node.Name, pt.id, n, remoteVA)
}

// PostRecv posts a receive buffer (registered virtual range) for the
// given application tag.
func (pt *Port) PostRecv(p *sim.Proc, tag uint64, as *vm.AddressSpace, va vm.VirtAddr, n int) error {
	xs, err := pt.registered(as, va, n)
	if err != nil {
		return err
	}
	pt.gm.node.CPU.Compute(p, pt.gm.p.GMHostSend/2)
	pt.post(tag, &postedRecv{extents: xs, length: n, virtual: true})
	return nil
}

// PostRecvPhysical posts a receive straight into physical extents
// (page-cache pages) — the §3.3 extension. Kernel ports only.
func (pt *Port) PostRecvPhysical(p *sim.Proc, tag uint64, xs []mem.Extent) error {
	if !pt.kernel {
		return fmt.Errorf("gm: PostRecvPhysical requires a kernel port")
	}
	pt.gm.node.CPU.Compute(p, pt.gm.p.GMHostSend/2)
	pt.post(tag, &postedRecv{extents: mem.MergeExtents(xs), length: mem.TotalLen(xs), virtual: false})
	return nil
}

// CancelRecv withdraws the most recently posted, still unmatched
// receive for tag, reporting whether one was withdrawn. Once it
// returns true the receive's buffer can never be scattered into; when
// it returns false the receive has already matched, which in GM means
// the NIC has already scattered the payload (delivery is synchronous
// at match time) — either way the buffer is quiescent afterwards.
func (pt *Port) CancelRecv(p *sim.Proc, tag uint64) bool {
	q := pt.posted[tag]
	if len(q) == 0 {
		return false
	}
	if len(q) == 1 {
		delete(pt.posted, tag)
	} else {
		pt.posted[tag] = q[:len(q)-1]
	}
	pt.gm.node.CPU.Compute(p, pt.gm.p.GMHostSend/2) // descriptor removal
	return true
}

func (pt *Port) post(tag uint64, pr *postedRecv) {
	// Check the unexpected queue first: a message may already have
	// arrived. GM proper drops unexpected messages and relies on its
	// token flow control; we stage them NIC-side and charge a host
	// copy on the late match, which is kinder but does not change any
	// measured path (the benchmarks always pre-post).
	for i, m := range pt.unexpected {
		if m.Tag>>portBits == tag {
			pt.unexpected = append(pt.unexpected[:i], pt.unexpected[i+1:]...)
			pt.gm.node.CPU.CopyStats.Add(len(m.Payload))
			pt.deliver(m, pr, pt.gm.p.CopyTime(len(m.Payload)))
			return
		}
	}
	pt.posted[tag] = append(pt.posted[tag], pr)
}

// receive runs in the NIC rx-pump process.
func (g *GM) receive(p *sim.Proc, m *hw.Message) {
	g.ack(m) // NIC-level acknowledgement, regardless of matching
	pt := g.ports[uint8(m.Tag&(1<<portBits-1))]
	if pt == nil {
		// Message to a closed port: dropped on the floor.
		return
	}
	if m.Kind == kindDirected {
		pt.deliverDirected(p, m)
		return
	}
	tag := m.Tag >> portBits
	q := pt.posted[tag]
	if len(q) == 0 {
		pt.unexpected = append(pt.unexpected, m)
		return
	}
	pr := q[0]
	pt.posted[tag] = q[1:]
	g.node.Cluster.Env.Tracef("gm[%s:%d] recv %dB tag=%#x from node %d",
		g.node.Name, pt.id, len(m.Payload), tag, m.Src)
	if pr.virtual {
		// The NIC resolves the posted buffer through its translation
		// table: the lookup cost physical addressing avoids.
		g.node.NIC.Firmware.Use(p, g.p.GMLookup)
	}
	pt.deliver(m, pr, 0)
}

func (pt *Port) deliver(m *hw.Message, pr *postedRecv, extra sim.Time) {
	n := len(m.Payload)
	ev := Event{Type: RecvComplete, Tag: m.Tag >> portBits, Len: n, Src: m.Src}
	if n > pr.length {
		n = pr.length
		ev.Len = n
		ev.Err = fmt.Errorf("gm: message truncated to %d bytes", pr.length)
	}
	pt.gm.node.Mem.Scatter(mem.Clip(pr.extents, n), m.Payload[:n])
	pt.Recvs.Add(n)
	if extra > 0 {
		env := pt.gm.node.Cluster.Env
		env.AfterDetached(extra, func() { pt.events.Send(ev) })
		return
	}
	pt.events.Send(ev)
}

// PollEvent consumes the next event by busy-waiting on the queue, the
// way GM's benchmark programs (and MPI layers) use gm_receive_event:
// the CPU spins, so delivery is immediate but a core is burned. This is
// the mode behind the paper's raw latency figures (Fig 4(a), 5(a)).
func (pt *Port) PollEvent(p *sim.Proc) Event {
	ev := pt.events.Recv(p)
	pt.chargeEvent(p, ev)
	return ev
}

// WaitEvent consumes the next event, sleeping if none is pending —
// the only option for an in-kernel service (a filesystem client or
// socket layer cannot spin). GM's "limited completion notification
// mechanisms" (§5.3) make a blocking wakeup go through an extra
// dispatching thread, so an actual sleep costs a context switch on
// top of the event processing. This asymmetry — absent from MX, whose
// flexible waits sleep efficiently — is a large part of why GM's
// kernel interface loses in ORFS and SOCKETS-GM.
func (pt *Port) WaitEvent(p *sim.Proc) Event {
	slept := pt.events.Len() == 0
	ev := pt.events.Recv(p)
	if slept {
		pt.gm.node.CPU.ContextSwitch(p)
	}
	pt.chargeEvent(p, ev)
	return ev
}

// TryEvent consumes the next event if one is already queued, without
// blocking. It charges the same per-event host cost as PollEvent, minus
// any sleep (there is none: the queue is non-empty). This is the
// building block of batched completion delivery: after one blocking
// wait, a consumer drains everything already queued in a single pass.
func (pt *Port) TryEvent(p *sim.Proc) (Event, bool) {
	ev, ok := pt.events.TryRecv()
	if ok {
		pt.chargeEvent(p, ev)
	}
	return ev, ok
}

// WaitEventTimeout is WaitEvent with a deadline.
func (pt *Port) WaitEventTimeout(p *sim.Proc, d sim.Time) (Event, bool) {
	slept := pt.events.Len() == 0
	ev, ok := pt.events.RecvTimeout(p, d)
	if ok {
		if slept {
			pt.gm.node.CPU.ContextSwitch(p)
		}
		pt.chargeEvent(p, ev)
	}
	return ev, ok
}

func (pt *Port) chargeEvent(p *sim.Proc, ev Event) {
	if ev.Type == RecvComplete {
		pt.hostOp(p, pt.gm.p.GMHostEvent)
	} else {
		pt.gm.node.CPU.Compute(p, pt.gm.p.GMHostEvent)
	}
}

// PendingEvents returns the queued event count (diagnostics).
func (pt *Port) PendingEvents() int { return pt.events.Len() }
