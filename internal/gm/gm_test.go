package gm

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

const us = time.Microsecond

// rig is a two-node GM test fixture.
type rig struct {
	env    *sim.Engine
	p      *hw.Params
	a, b   *hw.Node
	ga, gb *GM
}

func newRig() *rig {
	env := sim.NewEngine()
	p := hw.DefaultParams()
	c := hw.NewCluster(env, p, hw.PCIXD)
	r := &rig{env: env, p: p}
	r.a, r.b = c.AddNode("a"), c.AddNode("b")
	r.ga, r.gb = Attach(r.a), Attach(r.b)
	return r
}

// waitRecv consumes events until a RecvComplete arrives.
func waitRecv(p *sim.Proc, pt *Port) Event {
	for {
		ev := pt.PollEvent(p)
		if ev.Type == RecvComplete {
			return ev
		}
	}
}

func TestSendRecvDataIntegrity(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("appA")
	asB := r.b.NewUserSpace("appB")
	const n = 3*mem.PageSize + 77
	vaA, _ := asA.Mmap(n, "src")
	vaB, _ := asB.Mmap(n, "dst")
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	asA.WriteBytes(vaA, data)

	var got []byte
	r.env.Spawn("b", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, false)
		reg, err := pb.RegisterMemory(p, asB, vaB, n)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pb.PostRecv(p, 7, asB, vaB, n); err != nil {
			t.Error(err)
			return
		}
		ev := waitRecv(p, pb)
		if ev.Err != nil || ev.Len != n {
			t.Errorf("recv event %+v", ev)
		}
		got, _ = asB.ReadBytes(vaB, n)
		pb.DeregisterMemory(p, reg)
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us) // let B post first
		pa, _ := r.ga.OpenPort(1, false)
		if _, err := pa.RegisterMemory(p, asA, vaA, n); err != nil {
			t.Error(err)
			return
		}
		if err := pa.Send(p, r.b.ID, 1, 7, asA, vaA, n); err != nil {
			t.Error(err)
		}
	})
	r.env.Run(0)
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted in flight")
	}
}

func TestSendUnregisteredFails(t *testing.T) {
	r := newRig()
	as := r.a.NewUserSpace("app")
	va, _ := as.Mmap(mem.PageSize, "buf")
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		if err := pa.Send(p, r.b.ID, 1, 0, as, va, 100); err == nil {
			t.Error("send of unregistered memory succeeded")
		}
	})
	r.env.Run(0)
}

func TestPartialRegistrationRejected(t *testing.T) {
	r := newRig()
	as := r.a.NewUserSpace("app")
	va, _ := as.Mmap(4*mem.PageSize, "buf")
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		if _, err := pa.RegisterMemory(p, as, va, 2*mem.PageSize); err != nil {
			t.Error(err)
			return
		}
		// Sending past the registered prefix must fail.
		if err := pa.Send(p, r.b.ID, 1, 0, as, va, 3*mem.PageSize); err == nil {
			t.Error("send past registered range succeeded")
		}
		// Within the prefix is fine.
		if err := pa.Send(p, r.b.ID, 1, 0, as, va, 2*mem.PageSize); err != nil {
			t.Error(err)
		}
	})
	r.env.Run(0)
}

func TestRegistrationCost(t *testing.T) {
	// Fig 1(b): ~3 µs per page registration, 200 µs dereg base.
	r := newRig()
	as := r.a.NewUserSpace("app")
	const pages = 16
	va, _ := as.Mmap(pages*mem.PageSize, "buf")
	var regTime, deregTime sim.Time
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		t0 := p.Now()
		reg, err := pa.RegisterMemory(p, as, va, pages*mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		regTime = p.Now() - t0
		t1 := p.Now()
		pa.DeregisterMemory(p, reg)
		deregTime = p.Now() - t1
	})
	r.env.Run(0)
	if regTime < 45*us || regTime > 55*us {
		t.Errorf("register 16 pages took %v, want ≈49µs", regTime)
	}
	if deregTime < 200*us || deregTime > 210*us {
		t.Errorf("deregister took %v, want ≈200µs", deregTime)
	}
}

func TestRegistrationPinsPages(t *testing.T) {
	r := newRig()
	as := r.a.NewUserSpace("app")
	va, _ := as.Mmap(2*mem.PageSize, "buf")
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		reg, _ := pa.RegisterMemory(p, as, va, 2*mem.PageSize)
		if as.PinCount(va) != 1 {
			t.Errorf("pin count = %d, want 1", as.PinCount(va))
		}
		pa.DeregisterMemory(p, reg)
		if as.PinCount(va) != 0 {
			t.Errorf("pin count after dereg = %d", as.PinCount(va))
		}
	})
	r.env.Run(0)
}

func TestTranslationTableExhaustion(t *testing.T) {
	r := newRig()
	r.p.TransTableCap = 8 // shrink for the test (before first use)
	env := sim.NewEngine()
	c := hw.NewCluster(env, r.p, hw.PCIXD)
	a := c.AddNode("a")
	ga := Attach(a)
	as := a.NewUserSpace("app")
	va, _ := as.Mmap(16*mem.PageSize, "buf")
	env.Spawn("a", func(p *sim.Proc) {
		pa, _ := ga.OpenPort(1, false)
		if _, err := pa.RegisterMemory(p, as, va, 6*mem.PageSize); err != nil {
			t.Error(err)
		}
		if _, err := pa.RegisterMemory(p, as, va+8*mem.PageSize, 6*mem.PageSize); err == nil {
			t.Error("registration beyond table capacity succeeded")
		}
		// Failure must unwind: pins released, entries removed.
		if as.PinCount(va+8*mem.PageSize) != 0 {
			t.Error("failed registration left pages pinned")
		}
		if a.NIC.Table.Used() != 6 {
			t.Errorf("table has %d entries, want 6", a.NIC.Table.Used())
		}
	})
	env.Run(0)
}

// pingPong measures GM one-way latency for a payload size.
func pingPong(t *testing.T, kernel bool, size, iters int) sim.Time {
	t.Helper()
	r := newRig()
	mk := func(n *hw.Node) *vm.AddressSpace {
		if kernel {
			return n.Kernel
		}
		return n.NewUserSpace("app")
	}
	asA, asB := mk(r.a), mk(r.b)
	vaA, _ := asA.Mmap(size+mem.PageSize, "buf")
	vaB, _ := asB.Mmap(size+mem.PageSize, "buf")
	var elapsed sim.Time
	done := sim.NewSignal(r.env)
	r.env.Spawn("b", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, kernel)
		if _, err := pb.RegisterMemory(p, asB, vaB, size); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < iters; i++ {
			pb.PostRecv(p, 1, asB, vaB, size)
			waitRecv(p, pb)
			pb.Send(p, r.a.ID, 1, 2, asB, vaB, size)
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, kernel)
		if _, err := pa.RegisterMemory(p, asA, vaA, size); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * us) // let B get ready
		t0 := p.Now()
		for i := 0; i < iters; i++ {
			pa.PostRecv(p, 2, asA, vaA, size)
			pa.Send(p, r.b.ID, 1, 1, asA, vaA, size)
			waitRecv(p, pa)
		}
		elapsed = p.Now() - t0
		done.Fire()
	})
	r.env.Run(0)
	if !done.Fired() {
		t.Fatal("ping-pong did not complete")
	}
	return elapsed / sim.Time(2*iters)
}

func TestUserLatencyCalibration(t *testing.T) {
	// §5.1: GM user-space 1-byte one-way ≈ 6.7 µs.
	lat := pingPong(t, false, 1, 50)
	if lat < 6200*time.Nanosecond || lat > 7200*time.Nanosecond {
		t.Errorf("GM user 1B one-way = %v, want ≈6.7µs", lat)
	}
}

func TestKernelPenaltyCalibration(t *testing.T) {
	// §5.1: "small message latency is 2 µs higher in the kernel".
	u := pingPong(t, false, 1, 50)
	k := pingPong(t, true, 1, 50)
	diff := k - u
	if diff < 1600*time.Nanosecond || diff > 2400*time.Nanosecond {
		t.Errorf("kernel-user latency gap = %v (user %v, kernel %v), want ≈2µs", diff, u, k)
	}
}

func TestLargeMessageBandwidth(t *testing.T) {
	// Raw GM must approach the 250 MB/s link for 1MB transfers
	// (Fig 5(b)).
	const size = 1 << 20
	lat := pingPong(t, false, size, 4)
	bw := float64(size) / lat.Seconds() / 1e6
	if bw < 230 || bw > 252 {
		t.Errorf("GM 1MB bandwidth = %.1f MB/s, want ≈244", bw)
	}
}

func TestSendTokensLimitOutstanding(t *testing.T) {
	r := newRig()
	as := r.a.NewUserSpace("app")
	const n = 64
	va, _ := as.Mmap(n*mem.PageSize, "bufs")
	r.env.Spawn("sink", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, false)
		asB := r.b.NewUserSpace("sink")
		vb, _ := asB.Mmap(mem.PageSize, "dst")
		pb.RegisterMemory(p, asB, vb, mem.PageSize)
		for i := 0; i < n; i++ {
			pb.PostRecv(p, 0, asB, vb, mem.PageSize)
			waitRecv(p, pb)
		}
	})
	maxInFlight := 0
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		pa.RegisterMemory(p, as, va, n*mem.PageSize)
		for i := 0; i < n; i++ {
			if err := pa.Send(p, r.b.ID, 1, 0, as, va+vm.VirtAddr(i*mem.PageSize), mem.PageSize); err != nil {
				t.Error(err)
			}
			if f := pa.tokens.InUse(); f > maxInFlight {
				maxInFlight = f
			}
		}
	})
	r.env.Run(0)
	if maxInFlight > r.p.GMSendTokens {
		t.Errorf("in-flight sends %d exceeded token limit %d", maxInFlight, r.p.GMSendTokens)
	}
	if maxInFlight < 2 {
		t.Errorf("pipelining never exceeded 1 in-flight send (max %d)", maxInFlight)
	}
}

func TestPhysicalPrimitivesKernelOnly(t *testing.T) {
	r := newRig()
	r.env.Spawn("a", func(p *sim.Proc) {
		user, _ := r.ga.OpenPort(1, false)
		if err := user.SendPhysical(p, r.b.ID, 1, 0, nil); err == nil {
			t.Error("SendPhysical allowed from user port")
		}
		if err := user.PostRecvPhysical(p, 0, nil); err == nil {
			t.Error("PostRecvPhysical allowed from user port")
		}
	})
	r.env.Run(0)
}

func TestPhysicalVsVirtualLatency(t *testing.T) {
	// Fig 4(a): physical-address primitives beat registered-virtual by
	// ~0.5 µs per side (≈1 µs total one-way).
	oneWay := func(physical bool) sim.Time {
		r := newRig()
		kA, kB := r.a.Kernel, r.b.Kernel
		const size = 1024
		vaA, _ := kA.MmapContig(size, "src")
		vaB, _ := kB.MmapContig(size, "dst")
		xsA, _ := kA.Resolve(vaA, size)
		xsB, _ := kB.Resolve(vaB, size)
		const iters = 50
		var elapsed sim.Time
		r.env.Spawn("b", func(p *sim.Proc) {
			pb, _ := r.gb.OpenPort(1, true)
			if !physical {
				pb.RegisterMemory(p, kB, vaB, size)
			}
			for i := 0; i < iters; i++ {
				if physical {
					pb.PostRecvPhysical(p, 1, xsB)
					waitRecv(p, pb)
					pb.SendPhysical(p, r.a.ID, 1, 2, xsB)
				} else {
					pb.PostRecv(p, 1, kB, vaB, size)
					waitRecv(p, pb)
					pb.Send(p, r.a.ID, 1, 2, kB, vaB, size)
				}
			}
		})
		r.env.Spawn("a", func(p *sim.Proc) {
			pa, _ := r.ga.OpenPort(1, true)
			if !physical {
				pa.RegisterMemory(p, kA, vaA, size)
			}
			p.Sleep(10 * us)
			t0 := p.Now()
			for i := 0; i < iters; i++ {
				if physical {
					pa.PostRecvPhysical(p, 2, xsA)
					pa.SendPhysical(p, r.b.ID, 1, 1, xsA)
				} else {
					pa.PostRecv(p, 2, kA, vaA, size)
					pa.Send(p, r.b.ID, 1, 1, kA, vaA, size)
				}
				waitRecv(p, pa)
			}
			elapsed = p.Now() - t0
		})
		r.env.Run(0)
		return elapsed / (2 * iters)
	}
	virt := oneWay(false)
	phys := oneWay(true)
	gain := virt - phys
	if gain < 800*time.Nanosecond || gain > 1200*time.Nanosecond {
		t.Errorf("physical primitive gain = %v (virt %v, phys %v), want ≈1µs", gain, virt, phys)
	}
}

func TestASIDSeparation(t *testing.T) {
	// Two processes with identical virtual addresses registered on the
	// same node: the NIC table must keep them apart (the GMKRC 64-bit
	// pointer trick's purpose).
	r := newRig()
	p1 := r.a.NewUserSpace("p1")
	p2 := r.a.NewUserSpace("p2")
	va1, _ := p1.Mmap(mem.PageSize, "b")
	va2, _ := p2.Mmap(mem.PageSize, "b")
	if va1 != va2 {
		t.Fatalf("expected colliding virtual addresses, got %#x / %#x", va1, va2)
	}
	p1.WriteBytes(va1, []byte("from p1"))
	p2.WriteBytes(va2, []byte("from p2"))
	var got1, got2 []byte
	r.env.Spawn("recv", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, false)
		asB := r.b.NewUserSpace("sink")
		vb, _ := asB.Mmap(mem.PageSize, "dst")
		pb.RegisterMemory(p, asB, vb, mem.PageSize)
		pb.PostRecv(p, 0, asB, vb, mem.PageSize)
		waitRecv(p, pb)
		got1, _ = asB.ReadBytes(vb, 7)
		pb.PostRecv(p, 0, asB, vb, mem.PageSize)
		waitRecv(p, pb)
		got2, _ = asB.ReadBytes(vb, 7)
	})
	r.env.Spawn("send", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, true) // shared kernel port
		pa.RegisterMemory(p, p1, va1, mem.PageSize)
		pa.RegisterMemory(p, p2, va2, mem.PageSize)
		p.Sleep(5 * us)
		pa.Send(p, r.b.ID, 1, 0, p1, va1, 7)
		p.Sleep(50 * us)
		pa.Send(p, r.b.ID, 1, 0, p2, va2, 7)
	})
	r.env.Run(0)
	if string(got1) != "from p1" || string(got2) != "from p2" {
		t.Fatalf("ASID collision: got %q / %q", got1, got2)
	}
}

func TestTruncationReported(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("a")
	asB := r.b.NewUserSpace("b")
	vaA, _ := asA.Mmap(2*mem.PageSize, "src")
	vaB, _ := asB.Mmap(mem.PageSize, "dst")
	r.env.Spawn("b", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, false)
		pb.RegisterMemory(p, asB, vaB, 100)
		pb.PostRecv(p, 0, asB, vaB, 100)
		ev := waitRecv(p, pb)
		if ev.Err == nil || ev.Len != 100 {
			t.Errorf("expected truncation, got %+v", ev)
		}
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		pa, _ := r.ga.OpenPort(1, false)
		pa.RegisterMemory(p, asA, vaA, 2*mem.PageSize)
		pa.Send(p, r.b.ID, 1, 0, asA, vaA, 2*mem.PageSize)
	})
	r.env.Run(0)
}

func TestUnexpectedMessageMatchedLater(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("a")
	asB := r.b.NewUserSpace("b")
	vaA, _ := asA.Mmap(mem.PageSize, "src")
	vaB, _ := asB.Mmap(mem.PageSize, "dst")
	asA.WriteBytes(vaA, []byte("early bird"))
	var got []byte
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		pa.RegisterMemory(p, asA, vaA, mem.PageSize)
		pa.Send(p, r.b.ID, 1, 5, asA, vaA, 10)
	})
	r.env.Spawn("b", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, false)
		pb.RegisterMemory(p, asB, vaB, mem.PageSize)
		p.Sleep(100 * us) // message arrives before the post
		pb.PostRecv(p, 5, asB, vaB, mem.PageSize)
		ev := waitRecv(p, pb)
		if ev.Len != 10 {
			t.Errorf("late-matched event %+v", ev)
		}
		got, _ = asB.ReadBytes(vaB, 10)
	})
	r.env.Run(0)
	if string(got) != "early bird" {
		t.Fatalf("late match corrupted data: %q", got)
	}
}

func TestDirectedSendWritesRemoteMemory(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("a")
	asB := r.b.NewUserSpace("b")
	vaA, _ := asA.Mmap(mem.PageSize, "src")
	vaB, _ := asB.Mmap(2*mem.PageSize, "window")
	asA.WriteBytes(vaA, []byte("rdma payload"))
	done := sim.NewSignal(r.env)
	r.env.Spawn("b", func(p *sim.Proc) {
		pb, _ := r.gb.OpenPort(1, false)
		if _, err := pb.RegisterMemory(p, asB, vaB, 2*mem.PageSize); err != nil {
			t.Error(err)
			return
		}
		done.Fire()
		// No receive posted: the data must appear anyway.
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		done.Wait(p)
		pa, _ := r.ga.OpenPort(1, false)
		if _, err := pa.RegisterMemory(p, asA, vaA, mem.PageSize); err != nil {
			t.Error(err)
			return
		}
		// Write into the middle of B's registered window.
		if err := pa.DirectedSend(p, r.b.ID, 1, 0, asA, vaA, 12, vaB+100); err != nil {
			t.Error(err)
			return
		}
		// Wait for our send completion (ACK) so the write has landed.
		for {
			ev := pa.PollEvent(p)
			if ev.Type == SendComplete {
				break
			}
		}
		got, _ := asB.ReadBytes(vaB+100, 12)
		if string(got) != "rdma payload" {
			t.Errorf("remote memory = %q", got)
		}
	})
	r.env.Run(0)
}

func TestDirectedSendToUnregisteredDrops(t *testing.T) {
	r := newRig()
	asA := r.a.NewUserSpace("a")
	asB := r.b.NewUserSpace("b")
	vaA, _ := asA.Mmap(mem.PageSize, "src")
	vaB, _ := asB.Mmap(mem.PageSize, "window") // never registered
	var pb *Port
	r.env.Spawn("b", func(p *sim.Proc) {
		pb, _ = r.gb.OpenPort(1, false)
	})
	r.env.Spawn("a", func(p *sim.Proc) {
		p.Sleep(1 * us)
		pa, _ := r.ga.OpenPort(1, false)
		pa.RegisterMemory(p, asA, vaA, mem.PageSize)
		if err := pa.DirectedSend(p, r.b.ID, 1, 0, asA, vaA, 100, vaB); err != nil {
			t.Error(err)
		}
		p.Sleep(100 * us)
	})
	r.env.Run(0)
	if pb.DirectedDrops.N != 1 {
		t.Fatalf("drops = %d, want 1 (unregistered target)", pb.DirectedDrops.N)
	}
	if pb.PendingEvents() != 0 {
		t.Fatal("directed send generated a receive event")
	}
}

func TestDirectedSendRequiresLocalRegistration(t *testing.T) {
	r := newRig()
	as := r.a.NewUserSpace("a")
	va, _ := as.Mmap(mem.PageSize, "src")
	r.env.Spawn("a", func(p *sim.Proc) {
		pa, _ := r.ga.OpenPort(1, false)
		if err := pa.DirectedSend(p, r.b.ID, 1, 0, as, va, 10, 0x1234); err == nil {
			t.Error("directed send of unregistered local memory succeeded")
		}
	})
	r.env.Run(0)
}
