// Package mem models the physical memory of a simulated cluster node at
// page granularity, holding real bytes.
//
// Every data path the paper measures — memory copies, DMA transfers,
// programmed I/O, page-cache fills — moves actual bytes through this
// package, so the test suite can verify end-to-end data integrity of
// each code path, not just its timing.
//
// Frames are identified by physical frame number (PFN); physical
// addresses are PFN*PageSize + offset. The allocator deliberately
// distinguishes between ordinary allocations (which become scattered as
// the free list recycles frames, like user anonymous memory after a
// while) and explicitly contiguous allocations (like kernel bounce
// buffers): the paper's copy-removal optimization only applies to
// physically contiguous runs, so contiguity must be controllable.
package mem

import (
	"fmt"
)

// PageSize is the page size of the simulated IA32 hosts (paper §3.3).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PhysAddr is a physical byte address in a node's memory.
type PhysAddr uint64

// PFN returns the physical frame number containing the address.
func (a PhysAddr) PFN() uint64 { return uint64(a) >> PageShift }

// Offset returns the offset of the address within its frame.
func (a PhysAddr) Offset() int { return int(uint64(a) & (PageSize - 1)) }

// Frame is one physical page frame.
type Frame struct {
	pfn  uint64
	data [PageSize]byte
	// Ref counts the reasons the frame must stay allocated: one for
	// each address-space mapping plus one for each pin. The page cache
	// and NIC bounce pools hold their own references.
	ref int
}

// PFN returns the frame's physical frame number.
func (f *Frame) PFN() uint64 { return f.pfn }

// Addr returns the physical address of the first byte of the frame.
func (f *Frame) Addr() PhysAddr { return PhysAddr(f.pfn << PageShift) }

// Data returns the frame's backing bytes.
func (f *Frame) Data() []byte { return f.data[:] }

// Get increments the frame's reference count.
func (f *Frame) Get() { f.ref++ }

// RefCount returns the current reference count.
func (f *Frame) RefCount() int { return f.ref }

// Extent is a physically contiguous byte range: the unit in which
// physical-address-based communication primitives (paper §4.1) describe
// buffers.
type Extent struct {
	Addr PhysAddr
	Len  int
}

// End returns the physical address one past the extent.
func (x Extent) End() PhysAddr { return x.Addr + PhysAddr(x.Len) }

// TotalLen sums the lengths of a slice of extents.
func TotalLen(xs []Extent) int {
	n := 0
	for _, x := range xs {
		n += x.Len
	}
	return n
}

// Memory is the physical memory of one node.
type Memory struct {
	frames   map[uint64]*Frame
	nextPFN  uint64
	freeList []uint64 // LIFO recycle list; makes reused frames scattered
	numPages int      // capacity in frames; 0 = unlimited
	allocked int
}

// New returns a node memory with capacity for numPages frames
// (0 = unlimited).
func New(numPages int) *Memory {
	return &Memory{
		frames:   make(map[uint64]*Frame),
		nextPFN:  1, // keep PFN 0 / address 0 invalid
		numPages: numPages,
	}
}

// Allocated returns the number of live frames.
func (m *Memory) Allocated() int { return m.allocked }

// AllocFrame allocates one frame with reference count 1. Recycled frames
// are preferred (LIFO), which naturally fragments long-lived address
// spaces the way real systems do.
func (m *Memory) AllocFrame() (*Frame, error) {
	if m.numPages > 0 && m.allocked >= m.numPages {
		return nil, fmt.Errorf("mem: out of physical memory (%d frames)", m.numPages)
	}
	var pfn uint64
	if n := len(m.freeList); n > 0 {
		pfn = m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
	} else {
		pfn = m.nextPFN
		m.nextPFN++
	}
	f := &Frame{pfn: pfn, ref: 1}
	m.frames[pfn] = f
	m.allocked++
	return f, nil
}

// AllocContig allocates n physically contiguous frames (fresh PFNs, never
// recycled ones), each with reference count 1. This models kernel
// contiguous allocations (bounce buffers, DMA rings).
func (m *Memory) AllocContig(n int) ([]*Frame, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mem: AllocContig(%d)", n)
	}
	if m.numPages > 0 && m.allocked+n > m.numPages {
		return nil, fmt.Errorf("mem: out of physical memory for %d contiguous frames", n)
	}
	out := make([]*Frame, n)
	for i := range out {
		f := &Frame{pfn: m.nextPFN, ref: 1}
		m.nextPFN++
		m.frames[f.pfn] = f
		m.allocked++
		out[i] = f
	}
	return out, nil
}

// Put decrements a frame's reference count, freeing it when it reaches
// zero. Freed PFNs go to the recycle list.
func (m *Memory) Put(f *Frame) {
	if f.ref <= 0 {
		panic(fmt.Sprintf("mem: Put on frame %d with ref %d", f.pfn, f.ref))
	}
	f.ref--
	if f.ref == 0 {
		delete(m.frames, f.pfn)
		m.freeList = append(m.freeList, f.pfn)
		m.allocked--
	}
}

// Frame returns the live frame with the given PFN, or nil.
func (m *Memory) Frame(pfn uint64) *Frame { return m.frames[pfn] }

// CheckExtent verifies that an extent lies entirely within live frames.
func (m *Memory) CheckExtent(x Extent) error {
	if x.Len < 0 {
		return fmt.Errorf("mem: negative extent length %d", x.Len)
	}
	for pfn := x.Addr.PFN(); pfn <= (x.End() - 1).PFN(); pfn++ {
		if m.frames[pfn] == nil {
			return fmt.Errorf("mem: extent %#x+%d touches unallocated frame %d", x.Addr, x.Len, pfn)
		}
	}
	return nil
}

// ReadAt copies bytes from physical memory into buf, crossing frame
// boundaries as needed. It panics on access to unallocated frames —
// in the simulation that is a wild DMA, always a bug.
func (m *Memory) ReadAt(addr PhysAddr, buf []byte) {
	for len(buf) > 0 {
		f := m.frames[addr.PFN()]
		if f == nil {
			panic(fmt.Sprintf("mem: read from unallocated frame %d", addr.PFN()))
		}
		off := addr.Offset()
		n := copy(buf, f.data[off:])
		buf = buf[n:]
		addr += PhysAddr(n)
	}
}

// WriteAt copies bytes from buf into physical memory.
func (m *Memory) WriteAt(addr PhysAddr, buf []byte) {
	for len(buf) > 0 {
		f := m.frames[addr.PFN()]
		if f == nil {
			panic(fmt.Sprintf("mem: write to unallocated frame %d", addr.PFN()))
		}
		off := addr.Offset()
		n := copy(f.data[off:], buf)
		buf = buf[n:]
		addr += PhysAddr(n)
	}
}

// Gather reads the bytes described by extents into a single slice.
func (m *Memory) Gather(xs []Extent) []byte {
	out := make([]byte, TotalLen(xs))
	pos := 0
	for _, x := range xs {
		m.ReadAt(x.Addr, out[pos:pos+x.Len])
		pos += x.Len
	}
	return out
}

// Scatter writes data across the byte ranges described by extents.
// It panics if the extents are shorter than data.
func (m *Memory) Scatter(xs []Extent, data []byte) {
	for _, x := range xs {
		if len(data) == 0 {
			return
		}
		n := x.Len
		if n > len(data) {
			n = len(data)
		}
		m.WriteAt(x.Addr, data[:n])
		data = data[n:]
	}
	if len(data) > 0 {
		panic(fmt.Sprintf("mem: Scatter overflow, %d bytes left", len(data)))
	}
}

// Clip returns the leading n bytes of an extent list, splitting the
// extent that straddles the boundary.
func Clip(xs []Extent, n int) []Extent {
	var out []Extent
	for _, x := range xs {
		if n == 0 {
			break
		}
		l := x.Len
		if l > n {
			l = n
		}
		out = append(out, Extent{Addr: x.Addr, Len: l})
		n -= l
	}
	return out
}

// MergeExtents coalesces adjacent extents (x.End == next.Addr) into
// maximal physically contiguous runs, preserving order.
func MergeExtents(xs []Extent) []Extent {
	if len(xs) == 0 {
		return nil
	}
	out := make([]Extent, 0, len(xs))
	cur := xs[0]
	for _, x := range xs[1:] {
		if x.Len == 0 {
			continue
		}
		if cur.End() == x.Addr {
			cur.Len += x.Len
			continue
		}
		out = append(out, cur)
		cur = x
	}
	return append(out, cur)
}

// PagesIn returns the number of page frames an address range of length n
// starting at the given offset-within-page touches.
func PagesIn(offset, n int) int {
	if n <= 0 {
		return 0
	}
	return (offset%PageSize + n + PageSize - 1) / PageSize
}
