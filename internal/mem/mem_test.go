package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFrameDistinctPFNs(t *testing.T) {
	m := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.PFN()] {
			t.Fatalf("duplicate PFN %d", f.PFN())
		}
		if f.PFN() == 0 {
			t.Fatal("PFN 0 must stay invalid")
		}
		seen[f.PFN()] = true
	}
	if m.Allocated() != 100 {
		t.Errorf("Allocated = %d, want 100", m.Allocated())
	}
}

func TestCapacityLimit(t *testing.T) {
	m := New(4)
	var frames []*Frame
	for i := 0; i < 4; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := m.AllocFrame(); err == nil {
		t.Fatal("expected out-of-memory error")
	}
	m.Put(frames[0])
	if _, err := m.AllocFrame(); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestRefCounting(t *testing.T) {
	m := New(0)
	f, _ := m.AllocFrame()
	f.Get()
	m.Put(f)
	if m.Frame(f.PFN()) == nil {
		t.Fatal("frame freed while still referenced")
	}
	m.Put(f)
	if m.Frame(f.PFN()) != nil {
		t.Fatal("frame not freed at refcount zero")
	}
	if m.Allocated() != 0 {
		t.Errorf("Allocated = %d, want 0", m.Allocated())
	}
}

func TestPutUnderflowPanics(t *testing.T) {
	m := New(0)
	f, _ := m.AllocFrame()
	m.Put(f)
	defer func() {
		if recover() == nil {
			t.Error("double Put should panic")
		}
	}()
	m.Put(f)
}

func TestAllocContigIsContiguous(t *testing.T) {
	m := New(0)
	// Fragment the free list first.
	var fs []*Frame
	for i := 0; i < 10; i++ {
		f, _ := m.AllocFrame()
		fs = append(fs, f)
	}
	m.Put(fs[3])
	m.Put(fs[7])
	got, err := m.AllocContig(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].PFN() != got[i-1].PFN()+1 {
			t.Fatalf("frames not contiguous: %d then %d", got[i-1].PFN(), got[i].PFN())
		}
	}
}

func TestRecycledFramesScatter(t *testing.T) {
	m := New(0)
	var fs []*Frame
	for i := 0; i < 8; i++ {
		f, _ := m.AllocFrame()
		fs = append(fs, f)
	}
	// Free in order; LIFO recycling hands them back in reverse.
	for _, f := range fs {
		m.Put(f)
	}
	a, _ := m.AllocFrame()
	b, _ := m.AllocFrame()
	if b.PFN() == a.PFN()+1 {
		t.Fatal("recycled frames unexpectedly contiguous (LIFO free list should reverse order)")
	}
}

func TestReadWriteCrossFrame(t *testing.T) {
	m := New(0)
	frames, _ := m.AllocContig(3)
	base := frames[0].Addr()
	src := make([]byte, 2*PageSize+123)
	for i := range src {
		src[i] = byte(i * 7)
	}
	start := base + 100
	m.WriteAt(start, src)
	got := make([]byte, len(src))
	m.ReadAt(start, got)
	if !bytes.Equal(got, src) {
		t.Fatal("cross-frame read/write corrupted data")
	}
}

func TestWildAccessPanics(t *testing.T) {
	m := New(0)
	defer func() {
		if recover() == nil {
			t.Error("access to unallocated frame should panic")
		}
	}()
	m.ReadAt(PhysAddr(999*PageSize), make([]byte, 1))
}

func TestGatherScatterRoundtrip(t *testing.T) {
	m := New(0)
	var xs []Extent
	for i := 0; i < 5; i++ {
		f, _ := m.AllocFrame()
		xs = append(xs, Extent{Addr: f.Addr() + PhysAddr(i*10), Len: 1000 - i*100})
	}
	data := make([]byte, TotalLen(xs))
	rand.New(rand.NewSource(1)).Read(data)
	m.Scatter(xs, data)
	if got := m.Gather(xs); !bytes.Equal(got, data) {
		t.Fatal("gather(scatter(x)) != x")
	}
}

func TestScatterOverflowPanics(t *testing.T) {
	m := New(0)
	f, _ := m.AllocFrame()
	defer func() {
		if recover() == nil {
			t.Error("scatter overflow should panic")
		}
	}()
	m.Scatter([]Extent{{Addr: f.Addr(), Len: 10}}, make([]byte, 11))
}

func TestMergeExtents(t *testing.T) {
	cases := []struct {
		in   []Extent
		want []Extent
	}{
		{nil, nil},
		{[]Extent{{0x1000, 100}}, []Extent{{0x1000, 100}}},
		{[]Extent{{0x1000, 0x1000}, {0x2000, 0x1000}}, []Extent{{0x1000, 0x2000}}},
		{[]Extent{{0x1000, 0x800}, {0x1800, 0x800}, {0x4000, 4}}, []Extent{{0x1000, 0x1000}, {0x4000, 4}}},
		{[]Extent{{0x1000, 4}, {0x3000, 4}}, []Extent{{0x1000, 4}, {0x3000, 4}}},
	}
	for i, c := range cases {
		got := MergeExtents(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

// Property: merging never changes total length or byte content.
func TestMergeExtentsPreservesBytes(t *testing.T) {
	m := New(0)
	frames, _ := m.AllocContig(64)
	base := frames[0].Addr()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cnt := int(n%10) + 1
		var xs []Extent
		pos := PhysAddr(0)
		for i := 0; i < cnt; i++ {
			gap := PhysAddr(rng.Intn(3)) * 512
			l := rng.Intn(3000) + 1
			if int(pos+gap)+l > 60*PageSize {
				break
			}
			xs = append(xs, Extent{Addr: base + pos + gap, Len: l})
			pos += gap + PhysAddr(l)
		}
		if len(xs) == 0 {
			return true
		}
		data := make([]byte, TotalLen(xs))
		rng.Read(data)
		m.Scatter(xs, data)
		merged := MergeExtents(xs)
		if TotalLen(merged) != TotalLen(xs) {
			return false
		}
		if len(merged) > len(xs) {
			return false
		}
		return bytes.Equal(m.Gather(merged), data)
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}

func TestPagesIn(t *testing.T) {
	cases := []struct {
		off, n, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{PageSize - 1, 2, 2},
		{100, 2 * PageSize, 3},
		{0, 8 * PageSize, 8},
	}
	for _, c := range cases {
		if got := PagesIn(c.off, c.n); got != c.want {
			t.Errorf("PagesIn(%d,%d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}

func TestPhysAddrHelpers(t *testing.T) {
	a := PhysAddr(5*PageSize + 17)
	if a.PFN() != 5 || a.Offset() != 17 {
		t.Errorf("PFN/Offset = %d/%d, want 5/17", a.PFN(), a.Offset())
	}
}
