package sim

// This file provides the synchronization primitives used by the hardware
// and protocol models: one-shot Signals (request completions), FIFO Chans
// (message and event queues) and capacity-limited Resources (CPUs, NIC
// firmware processors, DMA engines, links).
//
// All primitives follow the same discipline: a waker always removes a
// proc from the waiter list before scheduling its wake-up, so a parked
// proc is referenced by at most one waiter list at a time.

// Signal is a one-shot completion event. Once fired it stays fired; any
// number of procs may wait on it before or after firing. The zero value
// is unusable; create with NewSignal.
type Signal struct {
	e       *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire fires the signal and wakes all waiters. Firing twice is a no-op.
// Fire may be called from a Proc or from scheduler context.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	w := s.waiters
	s.waiters = nil
	for _, p := range w {
		s.e.wake(p)
	}
}

// Wait blocks p until the signal fires. Returns immediately if it
// already has.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitTimeout blocks p until the signal fires or d elapses. It reports
// whether the signal fired (true) or the timeout expired (false).
func (s *Signal) WaitTimeout(p *Proc, d Time) bool {
	if s.fired {
		return true
	}
	s.waiters = append(s.waiters, p)
	timer := s.e.wakeAt(s.e.now+d, p)
	p.park()
	if s.fired {
		// Fire removed us from the waiter list before waking; the timer
		// may still be pending.
		s.e.Cancel(timer)
		return true
	}
	// Timer fired; withdraw from the waiter list.
	s.remove(p)
	return false
}

func (s *Signal) remove(p *Proc) {
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Chan is an unbounded FIFO queue of values with blocking receive.
// Senders never block (protocol-level flow control, where the paper's
// systems need it, is modelled explicitly with Resources or credits).
type Chan[T any] struct {
	e *Engine
	// buf and waiters pop from the front by advancing a head index
	// (resetting to a length-0 slice when drained) instead of
	// reslicing: reslicing strands the backing array's front, so a hot
	// channel would reallocate on append every few operations.
	buf     []T
	bufHead int
	waiters []*chanWaiter[T]
	wHead   int
	// free recycles waiter records: every blocking Recv on a hot
	// channel (NIC pumps, server queues) would otherwise allocate one,
	// and channels are the inner loop of every transfer.
	free []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p     *Proc
	val   T
	valid bool
}

// getWaiter takes a waiter from the freelist (or allocates one) and
// arms it for p.
func (c *Chan[T]) getWaiter(p *Proc) *chanWaiter[T] {
	var w *chanWaiter[T]
	if n := len(c.free); n > 0 {
		w = c.free[n-1]
		c.free = c.free[:n-1]
		w.valid = false
	} else {
		w = &chanWaiter[T]{}
	}
	w.p = p
	return w
}

// putWaiter recycles a waiter that is off the waiter list.
func (c *Chan[T]) putWaiter(w *chanWaiter[T]) {
	var zero T
	w.val, w.p = zero, nil
	c.free = append(c.free, w)
}

// NewChan returns an empty queue bound to e.
func NewChan[T any](e *Engine) *Chan[T] { return &Chan[T]{e: e} }

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) - c.bufHead }

// popBuf dequeues the oldest buffered value (caller checked Len > 0).
func (c *Chan[T]) popBuf() T {
	v := c.buf[c.bufHead]
	var zero T
	c.buf[c.bufHead] = zero
	c.bufHead++
	if c.bufHead == len(c.buf) {
		c.buf, c.bufHead = c.buf[:0], 0
	}
	return v
}

// Send enqueues v, waking the oldest waiting receiver if any. Send may
// be called from a Proc or from scheduler context and never blocks.
func (c *Chan[T]) Send(v T) {
	if c.wHead < len(c.waiters) {
		w := c.waiters[c.wHead]
		c.waiters[c.wHead] = nil
		c.wHead++
		if c.wHead == len(c.waiters) {
			c.waiters, c.wHead = c.waiters[:0], 0
		}
		w.val = v
		w.valid = true
		c.e.wake(w.p)
		return
	}
	c.buf = append(c.buf, v)
}

// Recv dequeues the oldest value, blocking p until one is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if c.Len() > 0 {
		return c.popBuf()
	}
	w := c.getWaiter(p)
	c.waiters = append(c.waiters, w)
	p.park()
	if !w.valid {
		panic("sim: Chan.Recv resumed without a value (killed proc?)")
	}
	v := w.val
	c.putWaiter(w)
	return v
}

// TryRecv dequeues a value without blocking; ok reports success.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if c.Len() == 0 {
		return v, false
	}
	return c.popBuf(), true
}

// RecvTimeout dequeues the oldest value, blocking p for at most d.
// ok reports whether a value was received.
func (c *Chan[T]) RecvTimeout(p *Proc, d Time) (v T, ok bool) {
	if c.Len() > 0 {
		return c.popBuf(), true
	}
	w := c.getWaiter(p)
	c.waiters = append(c.waiters, w)
	timer := c.e.wakeAt(c.e.now+d, p)
	p.park()
	if w.valid {
		c.e.Cancel(timer)
		v = w.val
		c.putWaiter(w)
		return v, true
	}
	// Timeout path: withdraw from the waiter list.
	for i := c.wHead; i < len(c.waiters); i++ {
		if c.waiters[i] == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	if c.wHead == len(c.waiters) {
		c.waiters, c.wHead = c.waiters[:0], 0
	}
	c.putWaiter(w)
	return v, false
}

// Resource is a capacity-limited server with a FIFO wait queue: the
// model for every contended hardware unit (CPU cores, NIC firmware,
// DMA engines, link transmitters).
type Resource struct {
	e        *Engine
	name     string
	capacity int
	inUse    int
	queue    []*Proc

	// Busy accumulates total occupancy (capacity-weighted virtual time)
	// for utilization accounting.
	busy      Time
	lastStamp Time
}

// NewResource returns a resource with the given capacity (number of
// procs that can hold it simultaneously).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{e: e, name: name, capacity: capacity}
}

func (r *Resource) stamp() {
	r.busy += Time(r.inUse) * (r.e.now - r.lastStamp)
	r.lastStamp = r.e.now
}

// Acquire blocks p until a unit of the resource is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.park()
	// The releaser transferred its unit to us directly (inUse unchanged).
}

// Release frees a unit, handing it to the oldest queued proc if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		// Ownership passes directly; inUse is unchanged.
		r.e.wake(next)
		return
	}
	r.stamp()
	r.inUse--
}

// Use occupies one unit of the resource for duration d: an Acquire,
// Sleep, Release sequence. This is the common "charge service time"
// operation for hardware models.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of procs waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusyTime returns accumulated occupancy (unit-weighted virtual time) up
// to the current instant.
func (r *Resource) BusyTime() Time {
	r.stamp()
	return r.busy
}

// Counter is a monotonic statistics counter usable from any context.
type Counter struct {
	N     int64
	Bytes int64
}

// Add records one operation of the given size.
func (c *Counter) Add(bytes int) {
	c.N++
	c.Bytes += int64(bytes)
}
