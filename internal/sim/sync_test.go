package sim

import (
	"testing"
	"time"
)

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(7 * us)
		sig.Fire()
	})
	e.Run(0)
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 7*us {
			t.Errorf("waiter woke at %v, want 7µs", w)
		}
	}
}

func TestSignalWaitAfterFire(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	sig.Fire()
	done := false
	e.Spawn("w", func(p *Proc) {
		sig.Wait(p) // must not block
		done = true
	})
	e.Run(0)
	if !done {
		t.Error("Wait on fired signal blocked")
	}
	if !sig.Fired() {
		t.Error("Fired() = false")
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEngine()
	slow := NewSignal(e)
	fast := NewSignal(e)
	var slowOK, fastOK bool
	var slowAt, fastAt Time
	e.Spawn("slow", func(p *Proc) {
		slowOK = slow.WaitTimeout(p, 5*us)
		slowAt = p.Now()
	})
	e.Spawn("fast", func(p *Proc) {
		fastOK = fast.WaitTimeout(p, 5*us)
		fastAt = p.Now()
	})
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(2 * us)
		fast.Fire()
		p.Sleep(100 * us)
		slow.Fire() // too late
	})
	e.Run(0)
	if !fastOK || fastAt != 2*us {
		t.Errorf("fast: ok=%v at %v, want true at 2µs", fastOK, fastAt)
	}
	if slowOK || slowAt != 5*us {
		t.Errorf("slow: ok=%v at %v, want false at 5µs", slowOK, slowAt)
	}
}

func TestChanFIFOAndBlocking(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, c.Recv(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1 * us)
			c.Send(i)
		}
	})
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO 0..4", got)
		}
	}
}

func TestChanBufferedBeforeRecv(t *testing.T) {
	e := NewEngine()
	c := NewChan[string](e)
	c.Send("a")
	c.Send("b")
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	var got []string
	e.Spawn("r", func(p *Proc) {
		got = append(got, c.Recv(p), c.Recv(p))
	})
	e.Run(0)
	if got[0] != "a" || got[1] != "b" {
		t.Errorf("got %v, want [a b]", got)
	}
}

func TestChanMultipleReceiversFIFO(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("r", func(p *Proc) {
			v := c.Recv(p)
			order = append(order, i*100+v)
		})
	}
	e.Spawn("s", func(p *Proc) {
		p.Sleep(1 * us)
		c.Send(0)
		c.Send(1)
		c.Send(2)
	})
	e.Run(0)
	// Receivers were queued in spawn order; values delivered in order.
	want := []int{0, 101, 202}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestChanTryRecv(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	if _, ok := c.TryRecv(); ok {
		t.Error("TryRecv on empty chan returned ok")
	}
	c.Send(42)
	v, ok := c.TryRecv()
	if !ok || v != 42 {
		t.Errorf("TryRecv = %d,%v want 42,true", v, ok)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	e := NewEngine()
	c := NewChan[int](e)
	var ok1, ok2 bool
	var v2 int
	e.Spawn("r", func(p *Proc) {
		_, ok1 = c.RecvTimeout(p, 3*us)
		v2, ok2 = c.RecvTimeout(p, 10*us)
	})
	e.Spawn("s", func(p *Proc) {
		p.Sleep(5 * us)
		c.Send(7)
	})
	e.Run(0)
	if ok1 {
		t.Error("first RecvTimeout should have timed out")
	}
	if !ok2 || v2 != 7 {
		t.Errorf("second RecvTimeout = %d,%v want 7,true", v2, ok2)
	}
	if e.Stranded() != 0 {
		t.Errorf("stranded = %d, want 0", e.Stranded())
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, 10*us)
			finish = append(finish, p.Now())
		})
	}
	e.Run(0)
	want := []Time{10 * us, 20 * us, 30 * us}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v (strict FIFO serialization)", finish, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dualcpu", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, 10*us)
			finish = append(finish, p.Now())
		})
	}
	e.Run(0)
	want := []Time{10 * us, 10 * us, 20 * us, 20 * us}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceBusyAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "link", 1)
	e.Spawn("a", func(p *Proc) { r.Use(p, 10*us) })
	e.Spawn("b", func(p *Proc) {
		p.Sleep(50 * us)
		r.Use(p, 5*us)
	})
	e.Run(0)
	if got := r.BusyTime(); got != 15*us {
		t.Errorf("busy = %v, want 15µs", got)
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Errorf("resource not idle at end: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}

func TestResourceReleaseHandoffKeepsFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAfter(Time(i), "u", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(1 * us)
			order = append(order, i)
			r.Release()
		})
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release on idle resource should panic")
		}
	}()
	r.Release()
}

func BenchmarkEngineSleepLoop(b *testing.B) {
	e := NewEngine()
	e.Spawn("loop", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1 * us)
		}
	})
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkResourceHandoff(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	for w := 0; w < 2; w++ {
		e.Spawn("u", func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				r.Use(p, 1*us)
			}
		})
	}
	b.ResetTimer()
	e.Run(0)
	_ = time.Microsecond
}
