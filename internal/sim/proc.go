package sim

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// Engine. All blocking methods (Sleep, and the Wait/Recv/Acquire methods
// on the synchronization types) must only be called from within the
// Proc's own body.
type Proc struct {
	e           *Engine
	name        string
	resume      chan struct{}
	done        bool
	killed      bool
	wakePending bool
}

// procKilled is the panic value used to unwind a killed Proc.
type procKilled struct{}

// Engine returns the engine this Proc belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// park hands control back to the scheduler and blocks until resumed.
// The caller must already have arranged for a future wake-up (an event,
// or membership in some waiter list).
func (p *Proc) park() {
	p.e.parked++
	p.e.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Sleep suspends the Proc for virtual duration d. A non-positive d
// yields to other same-time events and returns.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.e.wakeAt(p.e.now+d, p)
	p.park()
}

// Yield lets all other events scheduled for the current instant run
// before the Proc continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill marks the Proc so that it unwinds (via an internal panic that is
// recovered by the scheduler) the next time it would resume. Killing an
// already-finished Proc is a no-op. Kill must be called from scheduler
// context or from another Proc.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	// If the proc is parked with no pending event, give it one so the
	// unwind actually runs. A spurious extra wake-up is harmless: the
	// killed flag is checked on every resume.
	p.e.wake(p)
}

// Done reports whether the Proc body has returned.
func (p *Proc) Done() bool { return p.done }
