package sim

import (
	"testing"
	"time"
)

const (
	us = time.Microsecond
	ms = time.Millisecond
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * us)
		woke = p.Now()
	})
	end := e.Run(0)
	if woke != 5*us {
		t.Errorf("woke at %v, want 5µs", woke)
	}
	if end != 5*us {
		t.Errorf("run ended at %v, want 5µs", end)
	}
}

func TestNoWallClockDependence(t *testing.T) {
	e := NewEngine()
	e.Spawn("x", func(p *Proc) { p.Sleep(time.Hour) })
	start := time.Now()
	e.Run(0)
	if wall := time.Since(start); wall > time.Second {
		t.Errorf("simulating 1h of virtual time took %v of wall time", wall)
	}
	if e.Now() != time.Hour {
		t.Errorf("virtual clock = %v, want 1h", e.Now())
	}
}

func TestDeterministicOrderSameTime(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(3 * us) // all wake at the same instant
				order = append(order, i)
			})
		}
		e.Run(0)
		return order
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order %v != first run %v", trial, got, first)
			}
		}
	}
	// Spawn order should be preserved for identical wake times.
	for i, v := range first {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", first)
		}
	}
}

func TestAfterCallbackAndCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(2*us, func() { fired++ })
	ev := e.After(3*us, func() { fired += 100 })
	e.After(1*us, func() { e.Cancel(ev) })
	e.Run(0)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (cancelled callback must not run)", fired)
	}
}

func TestRunLimitStopsEarly(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1 * ms)
			steps++
		}
	})
	end := e.Run(10 * ms)
	if end != 10*ms {
		t.Errorf("ended at %v, want 10ms", end)
	}
	if steps != 10 {
		t.Errorf("steps = %d, want 10", steps)
	}
	// Resume to completion.
	end = e.Run(0)
	if steps != 100 || end != 100*ms {
		t.Errorf("after resume: steps=%d end=%v, want 100, 100ms", steps, end)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(4 * us)
		p.Engine().Spawn("child", func(c *Proc) {
			c.Sleep(1 * us)
			childRan = c.Now()
		})
		p.Sleep(10 * us)
	})
	e.Run(0)
	if childRan != 5*us {
		t.Errorf("child ran at %v, want 5µs", childRan)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(1 * us)
		panic("kaboom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
	}()
	e.Run(0)
}

func TestKillUnwinds(t *testing.T) {
	e := NewEngine()
	reached := false
	victim := e.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		reached = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(1 * us)
		victim.Kill()
	})
	e.Run(0)
	if reached {
		t.Error("victim body continued past Kill point")
	}
	if !victim.Done() {
		t.Error("victim not marked done")
	}
	if e.Live() != 0 {
		t.Errorf("live procs = %d, want 0", e.Live())
	}
}

func TestStrandedDetection(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	e.Spawn("waiter", func(p *Proc) { sig.Wait(p) }) // never fired
	e.Run(0)
	if e.Stranded() != 1 {
		t.Errorf("stranded = %d, want 1", e.Stranded())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(5 * us)
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.schedule(1*us, &event{fn: func() {}})
	})
	e.Run(0)
}
