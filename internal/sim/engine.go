// Package sim provides a deterministic, cooperative discrete-event
// simulation kernel.
//
// # Model
//
// A simulation is driven by an Engine holding a virtual clock and a
// time-ordered event queue. Application logic runs in Procs: goroutines
// that execute one at a time, cooperatively handing control back to the
// scheduler whenever they block (Sleep, Signal.Wait, Chan.Recv,
// Resource.Acquire). Exactly one goroutine — either the scheduler or a
// single Proc — is runnable at any instant, so simulations are fully
// deterministic: same inputs, same event interleaving, same results.
// Ties between events scheduled for the same virtual time are broken by
// creation order (a monotonically increasing sequence number).
//
// Virtual time is a time.Duration measured from the start of the run.
// Nothing in the package reads wall-clock time.
//
// The package is the substrate for the hardware and protocol models in
// this repository: CPUs, NIC firmware processors, DMA engines and links
// are all Resources; completion notification queues are Chans; request
// completions are Signals.
package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
	"time"
)

// Time is virtual simulation time, measured from the beginning of the run.
type Time = time.Duration

// event is a scheduled callback. Events either run inline in the
// scheduler (fn != nil) or transfer control to a parked Proc (proc != nil).
type event struct {
	at        Time
	seq       uint64
	fn        func()
	proc      *Proc
	cancelled bool
	pinned    bool // exposed to external holders: never recycled (Cancel stays a no-op after firing)
	index     int  // heap index, maintained by eventHeap
}

// eventHeap orders pending events by (time, sequence); it implements
// heap.Interface.
type eventHeap []*event

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less orders by fire time, then by issue sequence for determinism.
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface, maintaining the per-event index.
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is not usable;
// create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event      // recycled events; the hot paths (Sleep, After, wake) reuse them
	yield   chan struct{} // a running Proc signals here when it parks or exits
	running bool
	parked  int // number of live Procs currently parked
	procs   int // number of live Procs (started, not yet finished)
	failure any // panic value captured from a Proc
	trace   func(t Time, format string, args ...any)
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTrace installs a trace function invoked by Tracef. A nil function
// disables tracing (the default).
func (e *Engine) SetTrace(fn func(t Time, format string, args ...any)) { e.trace = fn }

// Tracef emits a trace record at the current virtual time if tracing is
// enabled.
func (e *Engine) Tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(e.now, format, args...)
	}
}

// schedule inserts an event at absolute time at. Panics if at is in the
// past (events may be scheduled for the current instant).
func (e *Engine) schedule(at Time, ev *event) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// newEvent returns a zeroed event, recycling one from the free list if
// possible. Events go back on the free list only once Run has popped
// them from the heap, when no holder may cancel them any more (see
// recycle), so reuse can never resurrect a live reference.
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		*ev = event{}
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the free list. Events handed to
// package-external callers (After) are pinned and never recycled, so
// the documented "Cancel after firing is a no-op" contract holds for
// them. Internal events are safe: wake/Sleep events are never exposed,
// and the sync primitives (Signal.WaitTimeout, Chan.RecvTimeout)
// cancel their timer only on the wake-up path, where the timer is
// provably still scheduled.
func (e *Engine) recycle(ev *event) {
	if !ev.pinned && len(e.free) < 1024 {
		// Drop the closure/proc references now, not at reuse: a parked
		// free-list slot must not pin a frame payload or process alive.
		ev.fn, ev.proc = nil, nil
		e.free = append(e.free, ev)
	}
}

// After schedules fn to run in scheduler context after delay d.
// fn must not block; it may schedule further events, fire signals,
// send on channels and spawn Procs. The returned event may be cancelled
// with Cancel.
func (e *Engine) After(d Time, fn func()) *event {
	ev := e.newEvent()
	ev.fn = fn
	ev.pinned = true
	return e.schedule(e.now+d, ev)
}

// AfterDetached is After for fire-and-forget callbacks: no handle is
// returned, the event cannot be cancelled, and its record is recycled
// through the free list after firing. The hot per-message paths (NIC
// frame delivery, driver acks) use this so bulk transfers allocate no
// event records in steady state.
func (e *Engine) AfterDetached(d Time, fn func()) {
	ev := e.newEvent()
	ev.fn = fn
	e.schedule(e.now+d, ev)
}

// Cancel marks a scheduled event so it will be skipped. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *event) {
	if ev != nil {
		ev.cancelled = true
	}
}

// Spawn creates a Proc running body, starting at the current virtual
// time (or, if the engine is not yet running, when Run is called).
// name is used in diagnostics only.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, body)
}

// SpawnAfter creates a Proc whose body starts after delay d.
func (e *Engine) SpawnAfter(d Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs++
	ev := e.newEvent()
	ev.fn = func() { e.launch(p, body) }
	e.schedule(e.now+d, ev)
	return p
}

// launch starts the Proc goroutine and immediately transfers control to
// it, waiting for it to park or finish.
func (e *Engine) launch(p *Proc, body func(p *Proc)) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					e.failure = fmt.Sprintf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.done = true
			e.procs--
			e.yield <- struct{}{}
		}()
		body(p)
	}()
	<-e.yield
	e.checkFailure()
}

// transfer resumes a parked Proc and waits until it parks again or exits.
func (e *Engine) transfer(p *Proc) {
	p.wakePending = false
	if p.done {
		return
	}
	e.parked--
	p.resume <- struct{}{}
	<-e.yield
	e.checkFailure()
}

func (e *Engine) checkFailure() {
	if e.failure != nil {
		f := e.failure
		e.failure = nil
		panic(f)
	}
}

// wake schedules a control transfer to p at the current time. Duplicate
// wake-ups for the same proc are coalesced: synchronization primitives
// always remove a proc from their waiter list before calling wake, so a
// parked proc has at most one pending wake-up (plus possibly a timer it
// scheduled itself, which it is responsible for cancelling).
func (e *Engine) wake(p *Proc) {
	if p.wakePending {
		return
	}
	p.wakePending = true
	ev := e.newEvent()
	ev.proc = p
	e.schedule(e.now, ev)
}

// wakeAt schedules a control transfer to p at absolute time at, returning
// the event so it can be cancelled (used for timeouts).
func (e *Engine) wakeAt(at Time, p *Proc) *event {
	ev := e.newEvent()
	ev.proc = p
	return e.schedule(at, ev)
}

// Run processes events until the queue drains or the virtual clock would
// exceed limit. A zero limit means no limit. Run returns the virtual time
// at which it stopped. Procs still parked when the queue drains are
// "stranded" (see Stranded); this usually indicates a protocol deadlock
// and is deliberately not an error here so tests can assert on it.
func (e *Engine) Run(limit Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		next := e.events[0]
		if limit > 0 && next.at > limit {
			e.now = limit
			return e.now
		}
		heap.Pop(&e.events)
		if next.cancelled {
			e.recycle(next)
			continue
		}
		e.now = next.at
		switch {
		case next.proc != nil:
			e.transfer(next.proc)
		case next.fn != nil:
			next.fn()
		}
		e.recycle(next)
	}
	return e.now
}

// Idle reports whether no events remain.
func (e *Engine) Idle() bool { return len(e.events) == 0 }

// Stranded returns the number of live Procs that are parked with no
// pending wake-up event. After Run drains the queue this equals the
// number of deadlocked processes.
func (e *Engine) Stranded() int { return e.parked }

// Live returns the number of Procs that have been spawned and have not
// yet finished.
func (e *Engine) Live() int { return e.procs }
