package netpipe

import (
	"testing"
	"time"

	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/sockets"
)

// measure runs a two-sided ping-pong over the transport built by mk.
func measure(t *testing.T, model hw.LinkModel, sizes []int,
	mk func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error)) []Point {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), model)
	a, b := c.AddNode("a"), c.AddNode("b")
	var pts []Point
	ready := sim.NewSignal(env)
	var ta, tb Transport
	env.Spawn("setup", func(p *sim.Proc) {
		var err error
		ta, tb, err = mk(p, a, b)
		if err != nil {
			t.Error(err)
			return
		}
		ready.Fire()
	})
	r := &Runner{Iters: 10, Warmup: 2}
	env.Spawn("responder", func(p *sim.Proc) {
		ready.Wait(p)
		if err := r.Respond(p, tb, sizes); err != nil {
			t.Error(err)
		}
	})
	env.Spawn("initiator", func(p *sim.Proc) {
		ready.Wait(p)
		p.Sleep(10 * time.Microsecond)
		var err error
		pts, err = r.Measure(p, ta, sizes)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if pts == nil {
		t.Fatal("measurement did not complete")
	}
	return pts
}

func gmPair(mode AddrMode) func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error) {
	return func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error) {
		ga, gb := gm.Attach(a), gm.Attach(b)
		const maxSize = 1 << 20
		ta, err := NewGMEnd(p, ga, 1, mode, b.ID, 1, maxSize)
		if err != nil {
			return nil, nil, err
		}
		tb, err := NewGMEnd(p, gb, 1, mode, a.ID, 1, maxSize)
		return ta, tb, err
	}
}

func mxPair(mode AddrMode, contiguous bool, opts ...mx.Option) func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error) {
	return func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error) {
		ma, mb := mx.Attach(a), mx.Attach(b)
		const maxSize = 1 << 20
		ta, err := NewMXEnd(ma, 1, mode, b.ID, 1, maxSize, contiguous, opts...)
		if err != nil {
			return nil, nil, err
		}
		tb, err := NewMXEnd(mb, 1, mode, a.ID, 1, maxSize, contiguous, opts...)
		return ta, tb, err
	}
}

func sockPair(family string) func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error) {
	return func(p *sim.Proc, a, b *hw.Node) (Transport, Transport, error) {
		var sa, sb sockets.Stack
		var err error
		switch family {
		case "mx":
			if sa, err = sockets.NewMXStack(mx.Attach(a), 7); err != nil {
				return nil, nil, err
			}
			if sb, err = sockets.NewMXStack(mx.Attach(b), 7); err != nil {
				return nil, nil, err
			}
		case "gm":
			if sa, err = sockets.NewGMStack(gm.Attach(a), 7); err != nil {
				return nil, nil, err
			}
			if sb, err = sockets.NewGMStack(gm.Attach(b), 7); err != nil {
				return nil, nil, err
			}
		}
		l, err := sb.Listen(5)
		if err != nil {
			return nil, nil, err
		}
		var server sockets.Conn
		got := sim.NewSignal(p.Engine())
		p.Engine().Spawn("accept", func(ap *sim.Proc) {
			server, _ = l.Accept(ap)
			got.Fire()
		})
		client, err := sa.Dial(p, int(b.ID), 5)
		if err != nil {
			return nil, nil, err
		}
		got.Wait(p)
		const maxSize = 1 << 20
		ta, err := NewSockEnd(a, client, maxSize)
		if err != nil {
			return nil, nil, err
		}
		tb, err := NewSockEnd(b, server, maxSize)
		return ta, tb, err
	}
}

func TestGMUserCurveShape(t *testing.T) {
	pts := measure(t, hw.PCIXD, Sizes(1<<20), gmPair(UserBuf))
	if lat := pts[0].OneWay; lat < 6200*time.Nanosecond || lat > 7200*time.Nanosecond {
		t.Errorf("GM user 1B = %v, want ≈6.7µs", lat)
	}
	last := pts[len(pts)-1]
	if last.MBps < 230 || last.MBps > 252 {
		t.Errorf("GM user 1MB = %.1f MB/s, want ≈244", last.MBps)
	}
	// Monotone-ish bandwidth growth.
	for i := 1; i < len(pts); i++ {
		if pts[i].MBps < pts[i-1].MBps*0.7 {
			t.Errorf("bandwidth collapse at %d: %.1f after %.1f", pts[i].Size, pts[i].MBps, pts[i-1].MBps)
		}
	}
}

func TestMXKernelEqualsUser(t *testing.T) {
	user := measure(t, hw.PCIXD, Sizes(4096), mxPair(UserBuf, false))
	kern := measure(t, hw.PCIXD, Sizes(4096), mxPair(KernelBuf, true))
	for i := range user {
		diff := kern[i].OneWay - user[i].OneWay
		if diff > user[i].OneWay/5 {
			t.Errorf("size %d: kernel %v much worse than user %v", user[i].Size, kern[i].OneWay, user[i].OneWay)
		}
	}
}

func TestPhysicalBeatsRegisteredVirtualInKernel(t *testing.T) {
	// Fig 4(a): physical primitives shave ~1 µs off kernel GM latency.
	virt := measure(t, hw.PCIXD, []int{16, 256, 1024, 4096}, gmPair(KernelBuf))
	phys := measure(t, hw.PCIXD, []int{16, 256, 1024, 4096}, gmPair(PhysBuf))
	for i := range virt {
		gain := virt[i].OneWay - phys[i].OneWay
		if gain < 500*time.Nanosecond || gain > 2*time.Microsecond {
			t.Errorf("size %d: physical gain %v, want ≈1µs", virt[i].Size, gain)
		}
	}
}

func TestFig6NoSendCopyGain(t *testing.T) {
	std := measure(t, hw.PCIXD, []int{32768}, mxPair(KernelBuf, true))
	nsc := measure(t, hw.PCIXD, []int{32768}, mxPair(KernelBuf, true, mx.WithNoSendCopy()))
	gain := (nsc[0].MBps - std[0].MBps) / std[0].MBps
	if gain < 0.12 || gain > 0.25 {
		t.Errorf("no-send-copy 32KB gain %.0f%% (std %.1f → %.1f), want ≈17%%", gain*100, std[0].MBps, nsc[0].MBps)
	}
}

func TestSocketTransports(t *testing.T) {
	mxPts := measure(t, hw.PCIXE, []int{1, 4096}, sockPair("mx"))
	gmPts := measure(t, hw.PCIXE, []int{1, 4096}, sockPair("gm"))
	if mxPts[0].OneWay > 6*time.Microsecond {
		t.Errorf("SOCKETS-MX 1B = %v, want ≈5µs", mxPts[0].OneWay)
	}
	if gmPts[0].OneWay < 12*time.Microsecond || gmPts[0].OneWay > 18*time.Microsecond {
		t.Errorf("SOCKETS-GM 1B = %v, want ≈15µs", gmPts[0].OneWay)
	}
	if mxPts[1].MBps <= gmPts[1].MBps {
		t.Errorf("SOCKETS-MX 4KB (%.1f) not above SOCKETS-GM (%.1f)", mxPts[1].MBps, gmPts[1].MBps)
	}
}

func TestSizesLadder(t *testing.T) {
	s := Sizes(8)
	want := []int{1, 2, 4, 8}
	if len(s) != len(want) {
		t.Fatalf("Sizes(8) = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Sizes(8) = %v", s)
		}
	}
}
