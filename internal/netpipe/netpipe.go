// Package netpipe is the measurement harness of the evaluation: a
// NETPIPE-style ping-pong benchmark (the tool §5.3 uses) generalized
// over every transport in the repository — raw GM and MX ports (user
// or kernel), the socket stacks, and remote-file-access read loops.
//
// Like NETPIPE, bandwidth is computed from ping-pong time: for each
// message size, B = size / (RTT/2). This matters for reproducing the
// paper: the medium-message copy costs of Fig 6 are visible precisely
// because ping-pong serializes them into every transfer.
package netpipe

import (
	"fmt"

	"repro/internal/sim"
)

// Transport is a bidirectional message channel between two fixed
// parties, pre-established by the specific constructor. Both sides
// follow the same size schedule (as NETPIPE does), so the expected
// size is passed to Pong.
type Transport interface {
	// Ping sends n bytes to the peer (blocking until the local buffer
	// is reusable).
	Ping(p *sim.Proc, n int) error
	// Pong receives the next message of expected size n, returning the
	// byte count actually received.
	Pong(p *sim.Proc, n int) (int, error)
}

// Point is one measurement: message size, one-way latency, bandwidth.
type Point struct {
	Size   int
	OneWay sim.Time
	MBps   float64 // bandwidth in MB/s (10^6 bytes/s, as the paper plots)
}

// Series is a labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Sizes returns the classic NETPIPE size ladder from 1 byte to max,
// doubling (the paper's figures use log2 axes).
func Sizes(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Runner drives one client/server pair. The two procs must already
// exist; Run exchanges iters round trips per size.
type Runner struct {
	// Iters is the round-trip count per size (reduced automatically
	// for large sizes).
	Iters int
	// Warmup exchanges before timing (amortizes cold caches, exactly
	// like NETPIPE's first pass).
	Warmup int
}

// Measure runs the ping-pong schedule over t from the initiator side;
// the responder must run Respond concurrently with the same schedule.
func (r *Runner) Measure(p *sim.Proc, t Transport, sizes []int) ([]Point, error) {
	var out []Point
	for _, n := range sizes {
		iters := r.itersFor(n)
		for i := 0; i < r.Warmup; i++ {
			if err := r.roundTrip(p, t, n); err != nil {
				return nil, fmt.Errorf("warmup size %d: %w", n, err)
			}
		}
		t0 := p.Now()
		for i := 0; i < iters; i++ {
			if err := r.roundTrip(p, t, n); err != nil {
				return nil, fmt.Errorf("size %d: %w", n, err)
			}
		}
		rtt := (p.Now() - t0) / sim.Time(iters)
		oneWay := rtt / 2
		out = append(out, Point{
			Size:   n,
			OneWay: oneWay,
			MBps:   float64(n) / oneWay.Seconds() / 1e6,
		})
	}
	return out, nil
}

func (r *Runner) roundTrip(p *sim.Proc, t Transport, n int) error {
	if err := t.Ping(p, n); err != nil {
		return err
	}
	_, err := t.Pong(p, n)
	return err
}

// Respond runs the responder side of the same schedule.
func (r *Runner) Respond(p *sim.Proc, t Transport, sizes []int) error {
	for _, n := range sizes {
		iters := r.itersFor(n) + r.Warmup
		for i := 0; i < iters; i++ {
			if _, err := t.Pong(p, n); err != nil {
				return err
			}
			if err := t.Ping(p, n); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Runner) itersFor(n int) int {
	iters := r.Iters
	if iters <= 0 {
		iters = 20
	}
	// Scale down for big messages: virtual time is free but host time
	// is not, and the curves are smooth.
	switch {
	case n >= 1<<19:
		iters = max(2, iters/10)
	case n >= 1<<15:
		iters = max(4, iters/4)
	}
	return iters
}
