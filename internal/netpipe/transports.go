package netpipe

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/sockets"
	"repro/internal/vm"
)

// AddrMode selects the buffer addressing for raw GM/MX transports —
// the independent variable of Figures 4(a) and 5(b).
type AddrMode int

const (
	// UserBuf: user-virtual buffers in a user process (registered for
	// GM, pinned/copied internally by MX).
	UserBuf AddrMode = iota
	// KernelBuf: kernel-virtual buffers on a kernel port/endpoint.
	KernelBuf
	// PhysBuf: page-cache-style physically addressed frames (kernel
	// port/endpoint; scattered pages like a real page cache).
	PhysBuf
)

func (m AddrMode) String() string {
	switch m {
	case UserBuf:
		return "user"
	case KernelBuf:
		return "kernel"
	default:
		return "kernel-physical"
	}
}

// GMEnd is a raw-GM transport endpoint. Raw benchmarks poll the event
// queue (gm_receive_event style), matching the paper's raw figures.
type GMEnd struct {
	port     *gm.Port
	peer     hw.NodeID
	peerPort uint8
	mode     AddrMode
	as       *vm.AddressSpace
	va       vm.VirtAddr
	xs       []mem.Extent
	max      int
}

// NewGMEnd prepares one side of a raw GM ping-pong: opens the port,
// allocates and (for virtual modes) registers a max-size buffer.
func NewGMEnd(p *sim.Proc, g *gm.GM, portID uint8, mode AddrMode, peer hw.NodeID, peerPort uint8, maxSize int) (*GMEnd, error) {
	kernel := mode != UserBuf
	port, err := g.OpenPort(portID, kernel)
	if err != nil {
		return nil, err
	}
	e := &GMEnd{port: port, peer: peer, peerPort: peerPort, mode: mode, max: maxSize}
	node := g.Node()
	switch mode {
	case UserBuf:
		e.as = node.NewUserSpace("netpipe")
		if e.va, err = e.as.Mmap(maxSize, "buf"); err != nil {
			return nil, err
		}
		if _, err := port.RegisterMemory(p, e.as, e.va, maxSize); err != nil {
			return nil, err
		}
	case KernelBuf:
		e.as = node.Kernel
		if e.va, err = e.as.Mmap(maxSize, "buf"); err != nil {
			return nil, err
		}
		if _, err := port.RegisterMemory(p, e.as, e.va, maxSize); err != nil {
			return nil, err
		}
	case PhysBuf:
		// Page-cache-style frames: scattered physical pages.
		pages := (maxSize + mem.PageSize - 1) / mem.PageSize
		for i := 0; i < pages; i++ {
			f, err := node.Mem.AllocFrame()
			if err != nil {
				return nil, err
			}
			e.xs = append(e.xs, mem.Extent{Addr: f.Addr(), Len: mem.PageSize})
		}
	}
	return e, nil
}

// Ping implements Transport.
func (e *GMEnd) Ping(p *sim.Proc, n int) error {
	if n > e.max {
		return fmt.Errorf("netpipe: size %d over buffer %d", n, e.max)
	}
	if e.mode == PhysBuf {
		return e.port.SendPhysical(p, e.peer, e.peerPort, 1, clipXS(e.xs, n))
	}
	return e.port.Send(p, e.peer, e.peerPort, 1, e.as, e.va, n)
}

// Pong implements Transport.
func (e *GMEnd) Pong(p *sim.Proc, n int) (int, error) {
	var err error
	if e.mode == PhysBuf {
		err = e.port.PostRecvPhysical(p, 1, clipXS(e.xs, n))
	} else {
		err = e.port.PostRecv(p, 1, e.as, e.va, n)
	}
	if err != nil {
		return 0, err
	}
	for {
		ev := e.port.PollEvent(p)
		if ev.Type == gm.RecvComplete {
			return ev.Len, ev.Err
		}
	}
}

// MXEnd is a raw-MX transport endpoint.
type MXEnd struct {
	ep   *mx.Endpoint
	peer hw.NodeID
	pEP  uint8
	mode AddrMode
	vec  core.Vector // max-size vector, sliced per message
	max  int
}

// NewMXEnd prepares one side of a raw MX ping-pong. opts configure the
// endpoint (e.g. the Fig 6 copy-removal modes).
func NewMXEnd(m *mx.MX, epID uint8, mode AddrMode, peer hw.NodeID, peerEP uint8, maxSize int, contiguous bool, opts ...mx.Option) (*MXEnd, error) {
	kernel := mode != UserBuf
	ep, err := m.OpenEndpoint(epID, kernel, opts...)
	if err != nil {
		return nil, err
	}
	e := &MXEnd{ep: ep, peer: peer, pEP: peerEP, mode: mode, max: maxSize}
	node := m.Node()
	switch mode {
	case UserBuf:
		as := node.NewUserSpace("netpipe")
		va, err := as.Mmap(maxSize, "buf")
		if err != nil {
			return nil, err
		}
		e.vec = core.Of(core.UserSeg(as, va, maxSize))
	case KernelBuf:
		var va vm.VirtAddr
		if contiguous {
			va, err = node.Kernel.MmapContig(maxSize, "buf")
		} else {
			va, err = node.Kernel.Mmap(maxSize, "buf")
		}
		if err != nil {
			return nil, err
		}
		e.vec = core.Of(core.KernelSeg(node.Kernel, va, maxSize))
	case PhysBuf:
		if contiguous {
			frames, err := node.Mem.AllocContig((maxSize + mem.PageSize - 1) / mem.PageSize)
			if err != nil {
				return nil, err
			}
			e.vec = core.Of(core.PhysSeg(frames[0].Addr(), maxSize))
		} else {
			pages := (maxSize + mem.PageSize - 1) / mem.PageSize
			for i := 0; i < pages; i++ {
				f, err := node.Mem.AllocFrame()
				if err != nil {
					return nil, err
				}
				e.vec = append(e.vec, core.PhysSeg(f.Addr(), mem.PageSize))
			}
		}
	}
	return e, nil
}

// Ping implements Transport.
func (e *MXEnd) Ping(p *sim.Proc, n int) error {
	req, err := e.ep.Send(p, e.peer, e.pEP, 1, e.vec.Slice(0, n))
	if err != nil {
		return err
	}
	st := req.Wait(p)
	return st.Err
}

// Pong implements Transport.
func (e *MXEnd) Pong(p *sim.Proc, n int) (int, error) {
	req, err := e.ep.Recv(p, core.MatchAll, e.vec.Slice(0, n))
	if err != nil {
		return 0, err
	}
	st := req.Wait(p)
	return st.Len, st.Err
}

// SockEnd wraps an established socket connection (any family).
type SockEnd struct {
	conn sockets.Conn
	as   *vm.AddressSpace
	va   vm.VirtAddr
	max  int
}

// NewSockEnd wraps conn with a max-size user buffer on node.
func NewSockEnd(node *hw.Node, conn sockets.Conn, maxSize int) (*SockEnd, error) {
	as := node.NewUserSpace("netpipe")
	va, err := as.Mmap(maxSize, "buf")
	if err != nil {
		return nil, err
	}
	return &SockEnd{conn: conn, as: as, va: va, max: maxSize}, nil
}

// Ping implements Transport.
func (e *SockEnd) Ping(p *sim.Proc, n int) error {
	sent, err := e.conn.Send(p, e.as, e.va, n)
	if err != nil {
		return err
	}
	if sent != n {
		return fmt.Errorf("netpipe: short socket send %d/%d", sent, n)
	}
	return nil
}

// Pong implements Transport.
func (e *SockEnd) Pong(p *sim.Proc, n int) (int, error) {
	return sockets.RecvAll(p, e.conn, e.as, e.va, n)
}

func clipXS(xs []mem.Extent, n int) []mem.Extent {
	var out []mem.Extent
	for _, x := range xs {
		if n == 0 {
			break
		}
		l := x.Len
		if l > n {
			l = n
		}
		out = append(out, mem.Extent{Addr: x.Addr, Len: l})
		n -= l
	}
	return out
}

var _ Transport = (*GMEnd)(nil)
var _ Transport = (*MXEnd)(nil)
var _ Transport = (*SockEnd)(nil)
