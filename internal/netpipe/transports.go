package netpipe

// This file holds the harness's transport endpoints: one generic
// fabric End parameterized by address mode (user/kernel/physical),
// with constructors for raw GM, raw MX and the socket stacks.
import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/sockets"
	"repro/internal/vm"
)

// AddrMode selects the buffer addressing for raw GM/MX transports —
// the independent variable of Figures 4(a) and 5(b).
type AddrMode int

const (
	// UserBuf: user-virtual buffers in a user process (registered for
	// GM, pinned/copied internally by MX).
	UserBuf AddrMode = iota
	// KernelBuf: kernel-virtual buffers on a kernel port/endpoint.
	KernelBuf
	// PhysBuf: page-cache-style physically addressed frames (kernel
	// port/endpoint; scattered pages like a real page cache).
	PhysBuf
)

func (m AddrMode) String() string {
	switch m {
	case UserBuf:
		return "user"
	case KernelBuf:
		return "kernel"
	default:
		return "kernel-physical"
	}
}

// pingTag is the match information all ping-pong traffic uses.
const pingTag = 1

// End is the one ping-pong endpoint: a max-size buffer built per
// AddrMode, sitting on any fabric.Transport. What used to be three
// hand-rolled endpoint types (raw GM, raw MX, sockets) is now this
// single type; the per-interconnect differences live in the fabric
// adapters where they belong.
type End struct {
	t     fabric.Transport
	peer  hw.NodeID
	pEP   uint8
	vec   core.Vector
	max   int
	eager bool // Caps.EagerSend: skip the send-completion wait
}

// NewEnd prepares one side of a ping-pong over t: it allocates a
// max-size buffer in the given addressing mode (registering it where
// the transport requires registration) and remembers the peer.
// contiguous selects physically contiguous kernel/physical buffers
// (the Fig 6 precondition); stream transports always use a user
// buffer, as socket applications do. p is the process charged for
// setup-time registration; it is required whenever t.Caps().NeedsReg
// and the mode uses virtual buffers, and may be nil otherwise.
func NewEnd(p *sim.Proc, t fabric.Transport, mode AddrMode, contiguous bool, peer hw.NodeID, peerEP uint8, maxSize int) (*End, error) {
	caps := t.Caps()
	if caps.NeedsReg && mode != PhysBuf && p == nil {
		return nil, fmt.Errorf("netpipe: registering transport needs a process for setup registration")
	}
	e := &End{t: t, peer: peer, pEP: peerEP, max: maxSize, eager: caps.EagerSend}
	node := t.Node()
	if caps.Stream {
		mode = UserBuf
	}
	switch mode {
	case UserBuf:
		as := node.NewUserSpace("netpipe")
		va, err := as.Mmap(maxSize, "buf")
		if err != nil {
			return nil, err
		}
		if caps.NeedsReg {
			if err := t.Register(p, as, va, maxSize); err != nil {
				return nil, err
			}
		}
		e.vec = core.Of(core.UserSeg(as, va, maxSize))
	case KernelBuf:
		kern := node.Kernel
		var va vm.VirtAddr
		var err error
		if contiguous {
			va, err = kern.MmapContig(maxSize, "buf")
		} else {
			va, err = kern.Mmap(maxSize, "buf")
		}
		if err != nil {
			return nil, err
		}
		if caps.NeedsReg {
			if err := t.Register(p, kern, va, maxSize); err != nil {
				return nil, err
			}
		}
		e.vec = core.Of(core.KernelSeg(kern, va, maxSize))
	case PhysBuf:
		if contiguous {
			frames, err := node.Mem.AllocContig((maxSize + mem.PageSize - 1) / mem.PageSize)
			if err != nil {
				return nil, err
			}
			e.vec = core.Of(core.PhysSeg(frames[0].Addr(), maxSize))
		} else {
			pages := (maxSize + mem.PageSize - 1) / mem.PageSize
			for i := 0; i < pages; i++ {
				f, err := node.Mem.AllocFrame()
				if err != nil {
					return nil, err
				}
				e.vec = append(e.vec, core.PhysSeg(f.Addr(), mem.PageSize))
			}
		}
	}
	return e, nil
}

// Ping implements Transport (the measurement-harness interface).
func (e *End) Ping(p *sim.Proc, n int) error {
	if n > e.max {
		return fmt.Errorf("netpipe: size %d over buffer %d", n, e.max)
	}
	op, err := e.t.Send(p, e.peer, e.pEP, pingTag, e.vec.Slice(0, n))
	if err != nil {
		return err
	}
	if e.eager {
		return nil
	}
	st := op.Wait(p)
	return st.Err
}

// Pong implements Transport.
func (e *End) Pong(p *sim.Proc, n int) (int, error) {
	op, err := e.t.PostRecv(p, core.Exact(pingTag), e.vec.Slice(0, n))
	if err != nil {
		return 0, err
	}
	st := op.Wait(p)
	return st.Len, st.Err
}

// NewGMEnd prepares one side of a raw GM ping-pong: it opens the port
// (polling the unique event queue, as the paper's raw figures do) and
// builds a fabric endpoint in the given mode.
func NewGMEnd(p *sim.Proc, g *gm.GM, portID uint8, mode AddrMode, peer hw.NodeID, peerPort uint8, maxSize int) (*End, error) {
	t, err := fabric.NewGM(g, portID, mode != UserBuf, fabric.WithPolling())
	if err != nil {
		return nil, err
	}
	return NewEnd(p, t, mode, false, peer, peerPort, maxSize)
}

// NewMXEnd prepares one side of a raw MX ping-pong. opts configure the
// endpoint (e.g. the Fig 6 copy-removal modes).
func NewMXEnd(m *mx.MX, epID uint8, mode AddrMode, peer hw.NodeID, peerEP uint8, maxSize int, contiguous bool, opts ...mx.Option) (*End, error) {
	t, err := fabric.NewMX(m, epID, mode != UserBuf, opts...)
	if err != nil {
		return nil, err
	}
	return NewEnd(nil, t, mode, contiguous, peer, peerEP, maxSize)
}

// NewSockEnd wraps an established socket connection (any family) with
// a max-size user buffer on node.
func NewSockEnd(node *hw.Node, conn sockets.Conn, maxSize int) (*End, error) {
	return NewEnd(nil, fabric.NewStream(node, 0, conn), UserBuf, false, 0, 0, maxSize)
}

var _ Transport = (*End)(nil)
