// Package gmkrc implements GMKRC, the paper's GM Kernel Registration
// Cache (§3.2): a pin-down cache [TOHI98] for GM memory registrations,
// kept coherent with address-space changes through the VMA SPY
// notification infrastructure (package vm).
//
// Why it exists (§2.2.2): registration costs ~3 µs/page and
// deregistration ~200 µs, so naive register/deregister per transfer is
// ruinous. The cache keeps regions registered after use and evicts
// lazily (LRU) only when a page budget — standing in for the NIC
// translation table capacity — is exceeded. The cache must observe
// munmap/fork/exit, because a stale NIC translation would let the NIC
// DMA to a page that has been returned to the allocator; VMA SPY
// provides exactly that visibility from kernel context.
//
// GMKRC also owns the address-space disambiguation: entries are keyed
// by ASID, modelling the 64-bit-pointer firmware trick of §3.2 that
// lets multiple processes share one kernel port.
package gmkrc

import (
	"container/list"
	"fmt"

	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Cache is one GMKRC instance, serving one (typically kernel) GM port.
type Cache struct {
	port     *gm.Port
	maxPages int

	// entries are disjoint per address space; lru orders them by last
	// use (front = most recent).
	entries map[entryKey]*entry
	lru     *list.List
	pages   int
	spied   map[*vm.AddressSpace]bool

	// Stats
	Hits, Misses, Evictions, Invalidations sim.Counter
}

type entryKey struct {
	asid  uint32
	first uint64 // first VPN
}

type entry struct {
	key    entryKey
	as     *vm.AddressSpace
	va     vm.VirtAddr
	length int // page-aligned
	region *gm.Region
	lruEl  *list.Element
}

func (e *entry) lastVPN() uint64 { return e.va.VPN() + uint64(e.length/vm.PageSize) - 1 }

// New creates a cache over port with a page budget. A budget of 0 means
// "no caching": every Acquire registers and every Release path
// deregisters immediately (the paper's "without registration cache"
// configuration in Fig 3(b) is expressed by maxPages==0 — see Acquire).
func New(port *gm.Port, maxPages int) *Cache {
	return &Cache{
		port:     port,
		maxPages: maxPages,
		entries:  make(map[entryKey]*entry),
		lru:      list.New(),
		spied:    make(map[*vm.AddressSpace]bool),
	}
}

// Pages returns the number of pages currently registered via the cache.
func (c *Cache) Pages() int { return c.pages }

// Budget returns the page budget (0 = caching disabled).
func (c *Cache) Budget() int { return c.maxPages }

// Entries returns the number of cached regions.
func (c *Cache) Entries() int { return len(c.entries) }

// Acquire ensures [va, va+n) of as is registered with the port's NIC,
// registering (and caching) on miss. It reports whether the call was a
// cache hit. The caller may then use gm.Port.Send/PostRecv on the range
// directly: the translations are in the NIC table.
func (c *Cache) Acquire(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (hit bool, err error) {
	if n <= 0 {
		return false, fmt.Errorf("gmkrc: Acquire length %d", n)
	}
	c.watch(as)
	start := pageFloor(va)
	length := int(pageCeil(va+vm.VirtAddr(n)) - start)

	// Hit: a single cached region covering the whole range. (Entries
	// are kept disjoint, so a covering region is unique if it exists.)
	if e := c.covering(as, start, length); e != nil {
		c.lru.MoveToFront(e.lruEl)
		c.Hits.Add(n)
		return true, nil
	}
	c.Misses.Add(n)

	// Evict anything partially overlapping, so entries stay disjoint.
	for _, e := range c.overlapping(as, start, length) {
		if err := c.drop(p, e); err != nil {
			return false, err
		}
	}
	// Make room within the page budget.
	need := length / vm.PageSize
	if c.maxPages > 0 {
		for c.pages+need > c.maxPages && c.lru.Len() > 0 {
			victim := c.lru.Back().Value.(*entry)
			c.Evictions.Add(victim.length)
			if err := c.drop(p, victim); err != nil {
				return false, err
			}
		}
		if c.pages+need > c.maxPages {
			return false, fmt.Errorf("gmkrc: range of %d pages exceeds cache budget %d", need, c.maxPages)
		}
	}
	region, err := c.port.RegisterMemory(p, as, start, length)
	if err != nil {
		return false, err
	}
	if c.maxPages == 0 {
		// Caching disabled: leave registered for this use; the caller
		// must call ReleaseUncached when done. We still track it so
		// invalidation stays correct.
	}
	e := &entry{key: entryKey{as.ID(), start.VPN()}, as: as, va: start, length: length, region: region}
	e.lruEl = c.lru.PushFront(e)
	c.entries[e.key] = e
	c.pages += need
	return false, nil
}

// ReleaseUncached deregisters the entry covering va immediately. It is
// the "no registration cache" discipline of Fig 3(b): pay the
// deregistration on every transfer. With a non-zero budget it is
// normally never called — that is the whole point of the cache.
func (c *Cache) ReleaseUncached(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr) error {
	e := c.at(as, pageFloor(va))
	if e == nil {
		return fmt.Errorf("gmkrc: ReleaseUncached of uncached address %#x", va)
	}
	return c.drop(p, e)
}

// Flush deregisters everything (port teardown).
func (c *Cache) Flush(p *sim.Proc) error {
	for c.lru.Len() > 0 {
		if err := c.drop(p, c.lru.Back().Value.(*entry)); err != nil {
			return err
		}
	}
	return nil
}

func pageFloor(va vm.VirtAddr) vm.VirtAddr {
	return vm.VirtAddr(va.VPN() * vm.PageSize)
}

func pageCeil(va vm.VirtAddr) vm.VirtAddr {
	if va.PageAligned() {
		return va
	}
	return pageFloor(va) + vm.PageSize
}

// covering returns the entry fully containing [start, start+length).
func (c *Cache) covering(as *vm.AddressSpace, start vm.VirtAddr, length int) *entry {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.as == as && e.va <= start && start+vm.VirtAddr(length) <= e.va+vm.VirtAddr(e.length) {
			return e
		}
	}
	return nil
}

// at returns the entry starting exactly at start.
func (c *Cache) at(as *vm.AddressSpace, start vm.VirtAddr) *entry {
	return c.entries[entryKey{as.ID(), start.VPN()}]
}

// overlapping returns entries of as intersecting [start, start+length).
func (c *Cache) overlapping(as *vm.AddressSpace, start vm.VirtAddr, length int) []*entry {
	var out []*entry
	end := start + vm.VirtAddr(length)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.as == as && e.va < end && start < e.va+vm.VirtAddr(e.length) {
			out = append(out, e)
		}
	}
	return out
}

// drop deregisters and removes one entry.
func (c *Cache) drop(p *sim.Proc, e *entry) error {
	delete(c.entries, e.key)
	c.lru.Remove(e.lruEl)
	c.pages -= e.length / vm.PageSize
	return c.port.DeregisterMemory(p, e.region)
}

// dropNow removes an entry from spy context (scheduler, no Proc): the
// deregistration cost cannot be charged to a process here, so it is
// accounted to the next Acquire via pendingDereg. This mirrors reality:
// the munmap caller pays for the NIC table update.
func (c *Cache) dropNow(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.lruEl)
	c.pages -= e.length / vm.PageSize
	// Deregistration bookkeeping without a proc: bypass timing, do the
	// state changes synchronously.
	if err := c.port.DeregisterInstant(e.region); err != nil {
		panic(fmt.Sprintf("gmkrc: spy-context deregistration failed: %v", err))
	}
}

// watch attaches the cache as a VMA SPY of as (idempotent).
func (c *Cache) watch(as *vm.AddressSpace) {
	if !c.spied[as] {
		as.RegisterSpy(c)
		c.spied[as] = true
	}
}

// Invalidate implements vm.Spy: evict entries overlapping a range that
// is about to be unmapped, while the translations are still resolvable.
func (c *Cache) Invalidate(as *vm.AddressSpace, start vm.VirtAddr, length int) {
	for _, e := range c.overlapping(as, start, length) {
		c.Invalidations.Add(e.length)
		c.dropNow(e)
	}
}

// Forked implements vm.Spy. The parent's registrations stay valid (its
// frames are untouched); the child shares no entries because entries
// are keyed by ASID. Nothing to do — which is precisely the safety the
// ASID tagging buys.
func (c *Cache) Forked(parent, child *vm.AddressSpace) {}

// Exited implements vm.Spy: drop everything belonging to the space.
func (c *Cache) Exited(as *vm.AddressSpace) {
	var doomed []*entry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.as == as {
			doomed = append(doomed, e)
		}
	}
	for _, e := range doomed {
		c.Invalidations.Add(e.length)
		c.dropNow(e)
	}
	delete(c.spied, as)
}
