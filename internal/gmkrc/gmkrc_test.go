package gmkrc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

const us = time.Microsecond

type rig struct {
	env  *sim.Engine
	p    *hw.Params
	node *hw.Node
	port *gm.Port
}

// newRig builds a one-node rig with an open kernel port. body runs as a
// proc with the rig fully assembled.
func newRig(t *testing.T, body func(r *rig, p *sim.Proc)) {
	t.Helper()
	env := sim.NewEngine()
	params := hw.DefaultParams()
	c := hw.NewCluster(env, params, hw.PCIXD)
	node := c.AddNode("n")
	c.AddNode("peer") // so sends have somewhere to go if needed
	g := gm.Attach(node)
	r := &rig{env: env, p: params, node: node}
	env.Spawn("test", func(p *sim.Proc) {
		port, err := g.OpenPort(1, true)
		if err != nil {
			t.Error(err)
			return
		}
		r.port = port
		body(r, p)
	})
	env.Run(0)
}

func TestHitAvoidsRegistrationCost(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(8*mem.PageSize, "buf")

		t0 := p.Now()
		hit, err := cache.Acquire(p, as, va, 8*mem.PageSize)
		if err != nil || hit {
			t.Errorf("first acquire: hit=%v err=%v", hit, err)
		}
		missCost := p.Now() - t0
		if missCost < r.p.RegTime(8) {
			t.Errorf("miss cost %v below registration cost %v", missCost, r.p.RegTime(8))
		}

		t1 := p.Now()
		hit, err = cache.Acquire(p, as, va, 8*mem.PageSize)
		if err != nil || !hit {
			t.Errorf("second acquire: hit=%v err=%v", hit, err)
		}
		if hitCost := p.Now() - t1; hitCost >= missCost/10 {
			t.Errorf("hit cost %v not much cheaper than miss %v", hitCost, missCost)
		}
		if cache.Hits.N != 1 || cache.Misses.N != 1 {
			t.Errorf("stats hits=%d misses=%d", cache.Hits.N, cache.Misses.N)
		}
	})
}

func TestSubrangeIsAHit(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(8*mem.PageSize, "buf")
		cache.Acquire(p, as, va, 8*mem.PageSize)
		hit, err := cache.Acquire(p, as, va+2*mem.PageSize, 3*mem.PageSize)
		if err != nil || !hit {
			t.Errorf("contained subrange: hit=%v err=%v", hit, err)
		}
	})
}

func TestOverlapEvictsAndReRegisters(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(8*mem.PageSize, "buf")
		cache.Acquire(p, as, va, 4*mem.PageSize)
		// Partially overlapping: old entry must go, disjointness holds.
		hit, err := cache.Acquire(p, as, va+2*mem.PageSize, 4*mem.PageSize)
		if err != nil || hit {
			t.Errorf("overlap acquire: hit=%v err=%v", hit, err)
		}
		if cache.Entries() != 1 {
			t.Errorf("entries = %d, want 1 (disjointness)", cache.Entries())
		}
		// All pages of the new range usable.
		if hit, _ := cache.Acquire(p, as, va+2*mem.PageSize, 4*mem.PageSize); !hit {
			t.Error("re-acquire of new range missed")
		}
	})
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 8) // 8-page budget
		as := r.node.NewUserSpace("app")
		var vas []vm.VirtAddr
		for i := 0; i < 3; i++ {
			va, _ := as.Mmap(4*mem.PageSize, "buf")
			vas = append(vas, va)
		}
		cache.Acquire(p, as, vas[0], 4*mem.PageSize)
		cache.Acquire(p, as, vas[1], 4*mem.PageSize) // budget full
		// Touch 0 so 1 becomes LRU.
		cache.Acquire(p, as, vas[0], 4*mem.PageSize)
		cache.Acquire(p, as, vas[2], 4*mem.PageSize) // evicts 1
		if cache.Evictions.N != 1 {
			t.Errorf("evictions = %d, want 1", cache.Evictions.N)
		}
		if hit, _ := cache.Acquire(p, as, vas[0], 4*mem.PageSize); !hit {
			t.Error("MRU entry was evicted")
		}
		if cache.Pages() > 8 {
			t.Errorf("pages = %d over budget", cache.Pages())
		}
		// Entry 1 must re-register (miss): it was evicted.
		if hit, _ := cache.Acquire(p, as, vas[1], 4*mem.PageSize); hit {
			t.Error("evicted entry reported as hit")
		}
	})
}

func TestOversizedRequestRejected(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 4)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(8*mem.PageSize, "buf")
		if _, err := cache.Acquire(p, as, va, 8*mem.PageSize); err == nil {
			t.Error("acquire larger than budget succeeded")
		}
	})
}

func TestMunmapInvalidates(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(4*mem.PageSize, "buf")
		cache.Acquire(p, as, va, 4*mem.PageSize)
		used := r.node.NIC.Table.Used()
		if used != 4 {
			t.Fatalf("table entries = %d, want 4", used)
		}
		if err := as.Munmap(va, 4*mem.PageSize); err != nil {
			t.Fatal(err)
		}
		if r.node.NIC.Table.Used() != 0 {
			t.Error("stale NIC translations survived munmap")
		}
		if cache.Entries() != 0 {
			t.Error("cache entry survived munmap")
		}
		if cache.Invalidations.N != 1 {
			t.Errorf("invalidations = %d, want 1", cache.Invalidations.N)
		}
		// Remap the same virtual range (likely different frames): a new
		// acquire must re-register, not hit stale state.
		va2, _ := as.Mmap(4*mem.PageSize, "buf2")
		if hit, err := cache.Acquire(p, as, va2, 4*mem.PageSize); hit || err != nil {
			t.Errorf("post-munmap acquire: hit=%v err=%v", hit, err)
		}
	})
}

func TestPartialMunmapEvictsWholeEntry(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(4*mem.PageSize, "buf")
		cache.Acquire(p, as, va, 4*mem.PageSize)
		// Unmap just one page in the middle.
		if err := as.Munmap(va+mem.PageSize, mem.PageSize); err != nil {
			t.Fatal(err)
		}
		if cache.Entries() != 0 {
			t.Error("entry overlapping partial munmap not evicted")
		}
		if r.node.NIC.Table.Used() != 0 {
			t.Error("translations not fully removed")
		}
	})
}

func TestExitInvalidatesAll(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va1, _ := as.Mmap(2*mem.PageSize, "a")
		va2, _ := as.Mmap(2*mem.PageSize, "b")
		cache.Acquire(p, as, va1, 2*mem.PageSize)
		cache.Acquire(p, as, va2, 2*mem.PageSize)
		as.Destroy()
		if cache.Entries() != 0 || r.node.NIC.Table.Used() != 0 {
			t.Error("exit did not clean up registrations")
		}
	})
}

func TestForkKeepsParentEntriesValid(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(2*mem.PageSize, "buf")
		cache.Acquire(p, as, va, 2*mem.PageSize)
		child, err := as.Fork("child")
		if err != nil {
			t.Fatal(err)
		}
		// Parent still hits.
		if hit, _ := cache.Acquire(p, as, va, 2*mem.PageSize); !hit {
			t.Error("parent entry lost after fork")
		}
		// Child misses (its ASID differs), then gets its own entry.
		if hit, _ := cache.Acquire(p, child, va, 2*mem.PageSize); hit {
			t.Error("child hit parent's entry: ASID collision")
		}
		if cache.Entries() != 2 {
			t.Errorf("entries = %d, want 2", cache.Entries())
		}
	})
}

func TestTwoSpacesSameAddressesStayApart(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		p1 := r.node.NewUserSpace("p1")
		p2 := r.node.NewUserSpace("p2")
		va1, _ := p1.Mmap(mem.PageSize, "b")
		va2, _ := p2.Mmap(mem.PageSize, "b")
		if va1 != va2 {
			t.Fatalf("want colliding addresses")
		}
		cache.Acquire(p, p1, va1, mem.PageSize)
		if hit, _ := cache.Acquire(p, p2, va2, mem.PageSize); hit {
			t.Error("cross-process cache hit")
		}
		// Munmap in p1 must not disturb p2's entry.
		p1.Munmap(va1, mem.PageSize)
		if hit, _ := cache.Acquire(p, p2, va2, mem.PageSize); !hit {
			t.Error("p2 entry lost to p1's munmap")
		}
	})
}

func TestFlush(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		cache := New(r.port, 1024)
		as := r.node.NewUserSpace("app")
		for i := 0; i < 3; i++ {
			va, _ := as.Mmap(2*mem.PageSize, "b")
			cache.Acquire(p, as, va, 2*mem.PageSize)
		}
		if err := cache.Flush(p); err != nil {
			t.Fatal(err)
		}
		if cache.Entries() != 0 || cache.Pages() != 0 || r.node.NIC.Table.Used() != 0 {
			t.Error("flush incomplete")
		}
	})
}

// Property: after any sequence of acquires, munmaps and forks, every
// cached entry's pages are present in the NIC table, entries are
// disjoint per space, and the page count matches.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64) (ok bool) {
		env := sim.NewEngine()
		params := hw.DefaultParams()
		c := hw.NewCluster(env, params, hw.PCIXD)
		node := c.AddNode("n")
		g := gm.Attach(node)
		env.Spawn("t", func(p *sim.Proc) {
			port, _ := g.OpenPort(1, true)
			cache := New(port, 64)
			rng := rand.New(rand.NewSource(seed))
			as := node.NewUserSpace("app")
			type reg struct {
				va vm.VirtAddr
				n  int
			}
			var regions []reg
			for op := 0; op < 60; op++ {
				switch rng.Intn(5) {
				case 0, 1: // mmap + acquire
					n := (rng.Intn(6) + 1) * mem.PageSize
					va, err := as.Mmap(n, "r")
					if err != nil {
						return
					}
					regions = append(regions, reg{va, n})
					if _, err := cache.Acquire(p, as, va, n); err != nil {
						return
					}
				case 2: // re-acquire random subrange
					if len(regions) == 0 {
						continue
					}
					r := regions[rng.Intn(len(regions))]
					off := rng.Intn(r.n)
					l := rng.Intn(r.n-off) + 1
					if _, err := cache.Acquire(p, as, r.va+vm.VirtAddr(off), l); err != nil {
						return
					}
				case 3: // munmap a region
					if len(regions) == 0 {
						continue
					}
					i := rng.Intn(len(regions))
					r := regions[i]
					if err := as.Munmap(r.va, r.n); err != nil {
						return
					}
					regions = append(regions[:i], regions[i+1:]...)
				case 4: // fork, acquire in child, exit child
					child, err := as.Fork("c")
					if err != nil {
						return
					}
					if len(regions) > 0 {
						r := regions[rng.Intn(len(regions))]
						if _, err := cache.Acquire(p, child, r.va, r.n); err != nil {
							return
						}
					}
					child.Destroy()
				}
			}
			// Invariants.
			total := 0
			type span struct{ a, b uint64 }
			spans := map[uint32][]span{}
			for el := cache.lru.Front(); el != nil; el = el.Next() {
				e := el.Value.(*entry)
				total += e.length / vm.PageSize
				for vpn := e.va.VPN(); vpn <= e.lastVPN(); vpn++ {
					if _, found := node.NIC.Table.Lookup(hw.TransKey{AS: e.as.ID(), VPN: vpn}); !found {
						return
					}
				}
				for _, s := range spans[e.as.ID()] {
					if e.va.VPN() <= s.b && s.a <= e.lastVPN() {
						return // overlap
					}
				}
				spans[e.as.ID()] = append(spans[e.as.ID()], span{e.va.VPN(), e.lastVPN()})
			}
			if total != cache.Pages() || total > 64 {
				return
			}
			ok = true
		})
		env.Run(0)
		return ok
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(16))}); err != nil {
		t.Fatal(err)
	}
}

// The headline number: with the cache, repeated transfers cost ~zero
// registration; without it (budget 0 + ReleaseUncached), every transfer
// pays register+deregister — the ~20 % direct-access gap of Fig 3(b).
func TestReuseCostGap(t *testing.T) {
	newRig(t, func(r *rig, p *sim.Proc) {
		as := r.node.NewUserSpace("app")
		va, _ := as.Mmap(16*mem.PageSize, "buf")

		cached := New(r.port, 1024)
		t0 := p.Now()
		for i := 0; i < 10; i++ {
			cached.Acquire(p, as, va, 16*mem.PageSize)
		}
		cachedCost := p.Now() - t0
		cached.Flush(p)

		uncached := New(r.port, 0)
		t1 := p.Now()
		for i := 0; i < 10; i++ {
			uncached.Acquire(p, as, va, 16*mem.PageSize)
			uncached.ReleaseUncached(p, as, va)
		}
		uncachedCost := p.Now() - t1

		if uncachedCost < 10*(r.p.RegTime(16)+r.p.DeregTime(16)) {
			t.Errorf("uncached cost %v below 10 register+dereg cycles", uncachedCost)
		}
		if cachedCost*5 > uncachedCost {
			t.Errorf("cache speedup too small: cached %v vs uncached %v", cachedCost, uncachedCost)
		}
	})
}
