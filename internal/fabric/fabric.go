// Package fabric is the unified transport layer of the repository: one
// Transport interface — open/close, register/deregister, tagged
// scatter-gather send/receive over core.Vector, explicit completion
// delivery — with adapters for every interconnect the paper evaluates:
// raw GM ports, raw MX endpoints, and the three socket stacks
// (SOCKETS-GM, SOCKETS-MX, TCP/GigE).
//
// Before this layer existed, every consumer (the netpipe harness, the
// ORFA/ORFS clients, the socket layers, the NBD device) hand-rolled its
// own endpoint setup, buffer registration and send/receive loop per
// interconnect. The fabric factors that boilerplate out the same way
// the paper's MX kernel interface factors it out of in-kernel
// applications (§4): consumers describe memory with address-typed
// vectors and let the transport decide how to move it.
//
// The interface is deliberately the intersection-plus-capabilities
// shape the paper argues for rather than a lowest common denominator:
//
//   - Transports advertise Caps. GM has no vectorial primitives and
//     requires registration; MX is vectorial and registration-free;
//     the socket stacks are byte streams. Consumers branch on Caps —
//     exactly the asymmetry the paper measures, made explicit in one
//     place instead of duplicated per consumer.
//   - Register/Acquire generalize GM's registration model: Register
//     pins a long-lived buffer once (amortized, §2.2.2); Acquire runs
//     per-transfer user buffers through the transport's registration
//     cache (GMKRC, §3.2). On transports without registration both are
//     free no-ops, so consumer code is written once.
//   - Send/PostRecv return Ops. Completion delivery is batched: one
//     blocking wait drains every completion already queued (GM's unique
//     event queue forces consuming them anyway; the fabric routes each
//     to its Op instead of dropping foreign completions on the floor).
//
// A sixth adapter (e.g. a sharded multi-NIC backend) only has to
// implement Transport and pass the conformance suite in
// conformance_test.go.
package fabric

import (
	"errors"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Fault errors: transport-level failures, distinguishable from every
// application-level status so consumers (the striped cluster's
// failover, the degraded-operation experiments) can tell a dead server
// from a full disk. Both satisfy IsFault.
var (
	// ErrPeerDead reports a send addressed to a node whose NIC is dead —
	// the fabric analogue of a driver's dead-peer detection (GM's send
	// timeouts), delivered synchronously so callers fail over instead of
	// filling a window with doomed requests.
	ErrPeerDead = errors.New("fabric: peer unreachable (NIC dead)")
	// ErrTimeout reports a timed wait that expired before the operation
	// completed — the only way to observe a peer that died after
	// accepting a request.
	ErrTimeout = errors.New("fabric: operation timed out")
)

// IsFault reports whether err is a transport fault (dead peer or
// timeout) rather than an application-level failure. Errors wrapped
// with %w are recognized.
func IsFault(err error) bool {
	return errors.Is(err, ErrPeerDead) || errors.Is(err, ErrTimeout)
}

// Caps describes what a transport can do; consumers branch on it
// instead of on concrete adapter types.
type Caps struct {
	// Vectors: one message may gather/scatter a multi-segment
	// core.Vector (MX §4.1). Without it, callers must split header and
	// payload into separate messages (GM).
	Vectors bool
	// Physical: physical-address segments are accepted as-is — the
	// paper's §3.3 kernel extension (GM kernel ports, MX kernel
	// endpoints).
	Physical bool
	// NeedsReg: virtual memory must be registered (Register/Acquire)
	// before Send/PostRecv may name it (GM).
	NeedsReg bool
	// EagerSend: the local buffer is reusable as soon as Send returns;
	// the send Op only tracks end-to-end completion bookkeeping (GM's
	// token flow control, stream sockets' blocking write). When false,
	// the sender must Wait the Op before touching the buffer (MX).
	EagerSend bool
	// Stream: byte-stream semantics — matching is ignored, message
	// boundaries are not preserved, receives complete synchronously
	// (the socket adapters).
	Stream bool
}

// Status is the outcome of a completed operation.
type Status struct {
	Src hw.NodeID // sending node (receives on message transports)
	Len int       // bytes transferred
	Err error     // truncation etc.
}

// Op is an in-flight send or receive.
type Op interface {
	// Done reports completion without blocking or charging. On
	// transports whose completions must be drained from a shared event
	// queue (GM), Done only observes completions some Wait has already
	// delivered — use Wait to make progress.
	Done() bool
	// Wait blocks until the operation completes, charging the
	// transport's completion-processing cost exactly once, and returns
	// the outcome.
	Wait(p *sim.Proc) Status
}

// Transport is one endpoint of the unified fabric.
//
// All methods follow the cost discipline of the underlying driver
// models: they charge simulated time to p for exactly the work the
// modelled hardware/driver would do, so measurements taken over the
// fabric reproduce the paper's figures unchanged.
type Transport interface {
	// Node returns the node this endpoint lives on.
	Node() *hw.Node
	// LocalEP returns the endpoint/port number peers address this
	// transport by (0 on connection-oriented streams, which need none).
	LocalEP() uint8
	// Caps returns the transport's capabilities.
	Caps() Caps
	// Register pins [va, va+n) of as for the lifetime of the endpoint
	// (or until Deregister) and enters it into the NIC translation
	// table where the transport needs that. Free on transports without
	// registration.
	Register(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) error
	// Deregister undoes a Register (paying the deregistration cost
	// where the transport has one).
	Deregister(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr) error
	// Acquire prepares the user-virtual segments of v for one transfer
	// through the transport's registration cache. The returned release
	// must be called once the transfer's data phase is over; under a
	// disabled cache it pays the immediate deregistration the paper's
	// Fig 3(b) "without Reg. Cache" curve measures.
	Acquire(p *sim.Proc, v core.Vector) (release func(), err error)
	// Send transmits v to endpoint (dst, dstEP) with match information
	// info. The Op completes when the local buffer is reusable
	// end-to-end (see Caps.EagerSend for when that wait is required).
	Send(p *sim.Proc, dst hw.NodeID, dstEP uint8, info uint64, v core.Vector) (Op, error)
	// PostRecv posts v for the next message matching match. Transports
	// without wildcard matching (GM) only accept exact matches.
	PostRecv(p *sim.Proc, match core.Match, v core.Vector) (Op, error)
	// Close tears the endpoint down, deregistering what it registered.
	Close(p *sim.Proc) error
}

// TimedOp is implemented by Ops whose completion can be awaited with a
// deadline (the message transports). ok is false — and the operation
// is still in flight — when d elapsed first; the Status returned then
// carries ErrTimeout and nothing else.
type TimedOp interface {
	Op
	// WaitTimeout is Wait with a deadline of d from now.
	WaitTimeout(p *sim.Proc, d sim.Time) (Status, bool)
}

// CancelableOp is implemented by receive Ops that can be withdrawn
// before they match, guaranteeing the buffer is never scattered into.
type CancelableOp interface {
	Op
	// Cancel withdraws the posted receive; false means it already
	// matched (the caller must Wait it to quiescence instead).
	Cancel(p *sim.Proc) bool
}

// WaitTimeout waits op for at most d (d <= 0 means forever). On
// transports whose Ops do not support deadlines it degrades to a plain
// Wait. ok is false only on expiry, with Status{Err: ErrTimeout}.
func WaitTimeout(p *sim.Proc, op Op, d sim.Time) (Status, bool) {
	if d > 0 {
		if t, ok := op.(TimedOp); ok {
			return t.WaitTimeout(p, d)
		}
	}
	return op.Wait(p), true
}

// Cancel withdraws a posted receive whose reply the caller has given
// up on. It reports whether the withdrawal took: false means the
// operation matched (or the transport cannot cancel) and must be
// Waited to quiescence before its buffer is reused.
func Cancel(p *sim.Proc, op Op) bool {
	if c, ok := op.(CancelableOp); ok {
		return c.Cancel(p)
	}
	return false
}

// completedOp is a pre-completed operation (stream transports, whose
// blocking calls finish before returning).
type completedOp struct{ st Status }

// Done implements Op (always complete).
func (o completedOp) Done() bool { return true }

// Wait implements Op: the stored outcome, no blocking, no charge.
func (o completedOp) Wait(p *sim.Proc) Status { return o.st }
