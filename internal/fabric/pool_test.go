package fabric_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPoolRecycling: released buffers are reused (same class), and
// class rounding is page-granular — no more simulated contiguous
// memory than a direct MmapContig.
func TestPoolRecycling(t *testing.T) {
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := cl.AddNode("n")
	pool := fabric.PoolOf(node)

	b1, err := pool.Get(5000)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Size() != 2*mem.PageSize {
		t.Errorf("Get(5000) class = %d, want %d (page rounding)", b1.Size(), 2*mem.PageSize)
	}
	before := node.Mem.Allocated()
	b1.Release()
	b2, err := pool.Get(8000) // same 2-page class: must reuse b1
	if err != nil {
		t.Fatal(err)
	}
	if b2.VA() != b1.VA() {
		t.Error("released buffer was not recycled for a same-class Get")
	}
	if node.Mem.Allocated() != before {
		t.Errorf("recycled Get allocated %d new frames", node.Mem.Allocated()-before)
	}
	if pool.Hits.N != 1 {
		t.Errorf("pool hits = %d, want 1", pool.Hits.N)
	}
}

// TestPoolRegistrationTravels: a pooled buffer registered with a GM
// transport stays registered across reuse — the second RegisterWith is
// free, extending registration caching to pooled consumers.
func TestPoolRegistrationTravels(t *testing.T) {
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := cl.AddNode("n")
	done := false
	env.Spawn("t", func(p *sim.Proc) {
		tr, err := fabric.NewGM(gm.Attach(node), 1, true)
		if err != nil {
			t.Error(err)
			return
		}
		pool := fabric.PoolOf(node)
		b, err := pool.Get(4 * mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		t0 := p.Now()
		if err := b.RegisterWith(p, tr); err != nil {
			t.Error(err)
			return
		}
		if p.Now() == t0 {
			t.Error("first RegisterWith charged nothing")
		}
		b.Release()
		b2, err := pool.Get(4 * mem.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		if b2 != b {
			t.Error("expected the registered buffer back")
		}
		t1 := p.Now()
		if err := b2.RegisterWith(p, tr); err != nil {
			t.Error(err)
			return
		}
		if p.Now() != t1 {
			t.Error("repeated RegisterWith paid registration again")
		}
		done = true
	})
	env.Run(0)
	if !done {
		t.Fatal("test body did not run")
	}
}
