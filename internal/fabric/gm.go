package fabric

// This file is the GM adapter: a Transport over one raw GM port. It
// batches the port's unique event queue, routing each drained
// completion to the Op it belongs to, and backs Acquire with the GMKRC
// registration cache.
import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/gmkrc"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// GMTransport adapts a raw GM port to the fabric. It owns the paper's
// whole GM scaffolding so consumers do not have to: a GMKRC
// registration cache for per-transfer user buffers (§3.2), the
// physical-address primitives for physical vectors (§3.3), and a
// completion mux over the port's unique event queue (§5.2) that
// delivers each event to the Op it belongs to in batches.
//
// Completion waits must come from one process at a time. This is GM's
// own restriction surfacing through the adapter: a port has a single
// event queue and whoever consumes it sees everyone's completions —
// exactly why SOCKETS-GM needs its dedicated dispatcher thread
// (§5.3). A consumer that wants multi-process waits must either give
// each process its own port (as the rfsrv clients do) or funnel
// completions through one dispatcher process.
type GMTransport struct {
	port  *gm.Port
	cache *gmkrc.Cache
	poll  bool // spin on the event queue (raw-benchmark mode) instead of sleeping

	// waiting routes drained events to their Ops: GM's unique event
	// queue interleaves completions of unrelated operations, so
	// whichever Op drains the queue dispatches everything it pulls.
	waiting map[gmEvKey][]*gmOp

	// regions tracks Register calls for Deregister/Close.
	regions map[regKey]*gm.Region
}

type gmEvKey struct {
	send bool
	tag  uint64
}

type regKey struct {
	as *vm.AddressSpace
	va vm.VirtAddr
}

// GMOption configures a GMTransport.
type GMOption func(*GMTransport)

// WithPolling makes completion waits spin (gm_receive_event style, the
// mode behind the paper's raw latency figures) instead of sleeping with
// the kernel-consumer context-switch cost.
func WithPolling() GMOption { return func(t *GMTransport) { t.poll = true } }

// WithCachePages sizes the registration cache used by Acquire; 0
// disables caching (every transfer pays register + deregister, the
// Fig 3(b) ablation). The default is 4096 pages.
func WithCachePages(n int) GMOption {
	return func(t *GMTransport) { t.cache = gmkrc.New(t.port, n) }
}

// NewGM opens GM port portID on g (kernel or user interface per
// kernel) and wraps it as a fabric transport.
func NewGM(g *gm.GM, portID uint8, kernel bool, opts ...GMOption) (*GMTransport, error) {
	port, err := g.OpenPort(portID, kernel)
	if err != nil {
		return nil, err
	}
	t := &GMTransport{
		port:    port,
		waiting: make(map[gmEvKey][]*gmOp),
		regions: make(map[regKey]*gm.Region),
	}
	for _, o := range opts {
		o(t)
	}
	if t.cache == nil {
		t.cache = gmkrc.New(port, 4096)
	}
	return t, nil
}

// Port exposes the underlying GM port (stats, tests).
func (t *GMTransport) Port() *gm.Port { return t.port }

// Cache exposes the registration cache (stats, tests).
func (t *GMTransport) Cache() *gmkrc.Cache { return t.cache }

// Node implements Transport.
func (t *GMTransport) Node() *hw.Node { return t.port.Node() }

// LocalEP implements Transport.
func (t *GMTransport) LocalEP() uint8 { return t.port.ID() }

// Caps implements Transport: no vectors, registration required,
// physical addressing on kernel ports only, eager sends (token flow
// control guards the buffer; completion is end-to-end bookkeeping).
func (t *GMTransport) Caps() Caps {
	return Caps{Physical: t.port.Kernel(), NeedsReg: true, EagerSend: true}
}

// Register implements Transport: pin and enter the range into the NIC
// translation table, once, for the endpoint's lifetime.
func (t *GMTransport) Register(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) error {
	r, err := t.port.RegisterMemory(p, as, va, n)
	if err != nil {
		return err
	}
	t.regions[regKey{as, va}] = r
	return nil
}

// Deregister implements Transport.
func (t *GMTransport) Deregister(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr) error {
	k := regKey{as, va}
	r := t.regions[k]
	if r == nil {
		return fmt.Errorf("fabric: %#x not registered on this transport", va)
	}
	delete(t.regions, k)
	t.invalidatePool()
	return t.port.DeregisterMemory(p, r)
}

// invalidatePool drops this transport's cached buffer registrations in
// the node's shared pool (see Pool.invalidate).
func (t *GMTransport) invalidatePool() {
	if pool, ok := t.Node().FabricPool.(*Pool); ok {
		pool.invalidate(t)
	}
}

// Acquire implements Transport: run every user-virtual segment through
// the registration cache. With caching disabled the release closure
// pays the immediate deregistration.
func (t *GMTransport) Acquire(p *sim.Proc, v core.Vector) (func(), error) {
	type span struct {
		as *vm.AddressSpace
		va vm.VirtAddr
	}
	var acquired []span
	for _, s := range v {
		if s.Type != core.UserVirtual || s.Len == 0 {
			continue
		}
		if _, err := t.cache.Acquire(p, s.AS, s.VA, s.Len); err != nil {
			// Undo partial progress in uncached mode, where nothing
			// else will ever deregister the earlier segments.
			if t.cache.Budget() == 0 {
				for _, a := range acquired {
					t.cache.ReleaseUncached(p, a.as, a.va)
				}
			}
			return nil, err
		}
		acquired = append(acquired, span{s.AS, s.VA})
	}
	if t.cache.Budget() > 0 || len(acquired) == 0 {
		return func() {}, nil
	}
	return func() {
		for _, a := range acquired {
			t.cache.ReleaseUncached(p, a.as, a.va)
		}
	}, nil
}

// vectorArgs classifies a vector into the one shape per primitive GM
// supports — all-physical extents (resolved here, once), or a single
// virtually contiguous registered range. An empty vector is a
// zero-length physical message: GM completes the protocol handshake
// with no payload, as zero-byte file transfers need.
func (t *GMTransport) vectorArgs(v core.Vector) (xs []mem.Extent, phys bool, s core.Segment, err error) {
	if len(v) == 0 || v.AllPhysical() {
		xs, err := v.Extents()
		return xs, true, core.Segment{}, err
	}
	if len(v) != 1 {
		return nil, false, core.Segment{}, fmt.Errorf("fabric: GM has no vectorial primitives (%d segments)", len(v))
	}
	return nil, false, v[0], nil
}

// Send implements Transport. A destination whose NIC is dead fails
// synchronously with ErrPeerDead — modelling GM's own send timeouts,
// which complete sends to unreachable nodes with an error instead of
// leaking tokens forever.
func (t *GMTransport) Send(p *sim.Proc, dst hw.NodeID, dstEP uint8, info uint64, v core.Vector) (Op, error) {
	if t.Node().Cluster.Node(dst).NIC.Dead() {
		return nil, ErrPeerDead
	}
	xs, phys, s, err := t.vectorArgs(v)
	if err != nil {
		return nil, err
	}
	op := &gmOp{t: t, key: gmEvKey{send: true, tag: info}}
	t.waiting[op.key] = append(t.waiting[op.key], op)
	if phys {
		err = t.port.SendPhysical(p, dst, dstEP, info, xs)
	} else {
		err = t.port.Send(p, dst, dstEP, info, s.AS, s.VA, s.Len)
	}
	if err != nil {
		t.unwait(op)
		return nil, err
	}
	return op, nil
}

// PostRecv implements Transport. GM matches receives by exact tag only.
func (t *GMTransport) PostRecv(p *sim.Proc, match core.Match, v core.Vector) (Op, error) {
	if match.Mask != ^uint64(0) {
		return nil, fmt.Errorf("fabric: GM matches exact tags only (mask %#x)", match.Mask)
	}
	tag := match.Bits
	xs, phys, s, err := t.vectorArgs(v)
	if err != nil {
		return nil, err
	}
	op := &gmOp{t: t, key: gmEvKey{tag: tag}}
	t.waiting[op.key] = append(t.waiting[op.key], op)
	if phys {
		err = t.port.PostRecvPhysical(p, tag, xs)
	} else {
		err = t.port.PostRecv(p, tag, s.AS, s.VA, s.Len)
	}
	if err != nil {
		t.unwait(op)
		return nil, err
	}
	return op, nil
}

// unwait removes an op whose primitive failed after enrollment.
func (t *GMTransport) unwait(op *gmOp) {
	q := t.waiting[op.key]
	for i, o := range q {
		if o == op {
			t.waiting[op.key] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// dispatch hands one drained event to the oldest Op waiting for it.
// Events nobody waits for (e.g. send completions of fire-and-forget
// sends already retired) are dropped, as raw GM consumers do.
func (t *GMTransport) dispatch(ev gm.Event) {
	key := gmEvKey{send: ev.Type == gm.SendComplete, tag: ev.Tag}
	q := t.waiting[key]
	if len(q) == 0 {
		return
	}
	op := q[0]
	if len(q) == 1 {
		delete(t.waiting, key)
	} else {
		t.waiting[key] = q[1:]
	}
	op.done = true
	op.st = Status{Src: ev.Src, Len: ev.Len, Err: ev.Err}
}

// drainUntil consumes events — paying the per-event host cost exactly
// as a raw consumer would — until op completes, then keeps draining
// whatever is already queued without blocking (batched completion
// delivery: later Waits find their Op already completed).
func (t *GMTransport) drainUntil(p *sim.Proc, op *gmOp) {
	for !op.done {
		var ev gm.Event
		if t.poll {
			ev = t.port.PollEvent(p)
		} else {
			ev = t.port.WaitEvent(p)
		}
		t.dispatch(ev)
	}
	for {
		ev, ok := t.port.TryEvent(p)
		if !ok {
			return
		}
		t.dispatch(ev)
	}
}

// Close implements Transport: flush the registration cache and drop
// long-lived registrations.
func (t *GMTransport) Close(p *sim.Proc) error {
	t.invalidatePool()
	if err := t.cache.Flush(p); err != nil {
		return err
	}
	// Deregistration issues simulated NIC commands; iterate in a
	// stable order so seed replay sees the same event schedule.
	keys := make([]regKey, 0, len(t.regions))
	for k := range t.regions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].as.ID() != keys[j].as.ID() {
			return keys[i].as.ID() < keys[j].as.ID()
		}
		return keys[i].va < keys[j].va
	})
	for _, k := range keys {
		r := t.regions[k]
		delete(t.regions, k)
		if err := t.port.DeregisterMemory(p, r); err != nil {
			return err
		}
	}
	return nil
}

// gmOp is an in-flight GM operation.
type gmOp struct {
	t    *GMTransport
	key  gmEvKey
	done bool
	st   Status
}

// Done implements Op. GM completions are delivered only by draining
// the port's event queue, and draining charges per-event host work
// that needs a process to bill — so on this transport Done flips true
// only after some Wait (on any Op of the endpoint) has drained the
// queue past this operation's event. Poll with Wait, not Done.
func (o *gmOp) Done() bool { return o.done }

// Wait implements Op.
func (o *gmOp) Wait(p *sim.Proc) Status {
	if !o.done {
		o.t.drainUntil(p, o)
	}
	return o.st
}

// WaitTimeout implements TimedOp: the event drain runs against a
// deadline (each blocking consume bounded by the time remaining). On
// expiry the operation is still enrolled — callers time-bound waits
// must Cancel it, or a later Wait will find it.
func (o *gmOp) WaitTimeout(p *sim.Proc, d sim.Time) (Status, bool) {
	deadline := p.Now() + d
	for !o.done {
		left := deadline - p.Now()
		if left <= 0 {
			return Status{Err: ErrTimeout}, false
		}
		ev, ok := o.t.port.WaitEventTimeout(p, left)
		if !ok {
			return Status{Err: ErrTimeout}, false
		}
		o.t.dispatch(ev)
	}
	for {
		ev, ok := o.t.port.TryEvent(p)
		if !ok {
			break
		}
		o.t.dispatch(ev)
	}
	return o.st, true
}

// Cancel implements CancelableOp: an unmatched posted receive is
// withdrawn from the port (and from the adapter's dispatch table), so
// its buffer can never be scattered into. Send ops and matched
// receives report false.
func (o *gmOp) Cancel(p *sim.Proc) bool {
	if o.done || o.key.send {
		return false
	}
	if !o.t.port.CancelRecv(p, o.key.tag) {
		return false
	}
	o.t.unwait(o)
	o.done = true
	o.st = Status{Err: ErrTimeout}
	return true
}

var _ Transport = (*GMTransport)(nil)
var _ TimedOp = (*gmOp)(nil)
var _ CancelableOp = (*gmOp)(nil)
