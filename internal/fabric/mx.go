package fabric

// This file is the MX adapter: a Transport over one MX endpoint —
// vectorial, address-typed, registration-free, with per-operation
// waits (the paper's kernel API, §4).
import (
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// MXTransport adapts a raw MX endpoint to the fabric. The mapping is
// nearly one-to-one — which is the paper's point: the MX kernel
// interface already is the API in-kernel applications want (§4.2).
// Registration is a no-op (MX pins internally per message), vectors
// and wildcard matching pass straight through.
type MXTransport struct {
	ep   *mx.Endpoint
	node *hw.Node
}

// NewMX opens MX endpoint epID on m (kernel or user per kernel) and
// wraps it as a fabric transport. opts are the Fig 6 copy-removal
// modes.
func NewMX(m *mx.MX, epID uint8, kernel bool, opts ...mx.Option) (*MXTransport, error) {
	ep, err := m.OpenEndpoint(epID, kernel, opts...)
	if err != nil {
		return nil, err
	}
	return &MXTransport{ep: ep, node: m.Node()}, nil
}

// Endpoint exposes the underlying MX endpoint (stats, tests).
func (t *MXTransport) Endpoint() *mx.Endpoint { return t.ep }

// Node implements Transport.
func (t *MXTransport) Node() *hw.Node { return t.node }

// LocalEP implements Transport.
func (t *MXTransport) LocalEP() uint8 { return t.ep.ID() }

// Caps implements Transport: vectorial, no registration, physical
// addressing on kernel endpoints; sends must be waited before buffer
// reuse (rendezvous).
func (t *MXTransport) Caps() Caps {
	return Caps{Vectors: true, Physical: t.ep.Kernel()}
}

// Register implements Transport: nothing to do, MX has no
// application-visible registration.
func (t *MXTransport) Register(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) error {
	return nil
}

// Deregister implements Transport.
func (t *MXTransport) Deregister(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr) error {
	return nil
}

// Acquire implements Transport: free — MX pins per message internally.
func (t *MXTransport) Acquire(p *sim.Proc, v core.Vector) (func(), error) {
	return func() {}, nil
}

// Send implements Transport. A destination whose NIC is dead fails
// synchronously with ErrPeerDead (the driver's dead-peer detection),
// so callers fail over instead of queueing doomed messages.
func (t *MXTransport) Send(p *sim.Proc, dst hw.NodeID, dstEP uint8, info uint64, v core.Vector) (Op, error) {
	if t.node.Cluster.Node(dst).NIC.Dead() {
		return nil, ErrPeerDead
	}
	req, err := t.ep.Send(p, dst, dstEP, info, v)
	if err != nil {
		return nil, err
	}
	return mxOp{t.ep, req}, nil
}

// PostRecv implements Transport.
func (t *MXTransport) PostRecv(p *sim.Proc, match core.Match, v core.Vector) (Op, error) {
	req, err := t.ep.Recv(p, match, v)
	if err != nil {
		return nil, err
	}
	return mxOp{t.ep, req}, nil
}

// Close implements Transport.
func (t *MXTransport) Close(p *sim.Proc) error { return nil }

// mxOp wraps an MX request.
type mxOp struct {
	ep  *mx.Endpoint
	req *mx.Request
}

// Done implements Op.
func (o mxOp) Done() bool { return o.req.Done() }

// Wait implements Op.
func (o mxOp) Wait(p *sim.Proc) Status {
	st := o.req.Wait(p)
	return Status{Src: st.Src, Len: st.Len, Err: st.Err}
}

// WaitTimeout implements TimedOp via MX's native deadline wait.
func (o mxOp) WaitTimeout(p *sim.Proc, d sim.Time) (Status, bool) {
	st, ok := o.req.WaitTimeout(p, d)
	if !ok {
		return Status{Err: ErrTimeout}, false
	}
	return Status{Src: st.Src, Len: st.Len, Err: st.Err}, true
}

// Cancel implements CancelableOp via mx_cancel: an unmatched posted
// receive is withdrawn and its buffer can never be scattered into.
func (o mxOp) Cancel(p *sim.Proc) bool {
	return o.ep.CancelRecv(p, o.req)
}

var _ Transport = (*MXTransport)(nil)
var _ TimedOp = mxOp{}
var _ CancelableOp = mxOp{}
