package fabric

// This file adapts the byte-stream stacks (SOCKETS-GM, SOCKETS-MX,
// TCP) to the Transport interface: matching is ignored, message
// boundaries are not preserved, and operations complete synchronously.
import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vm"
)

// StreamConn is the blocking stream-connection shape the socket stacks
// expose (sockets.Conn satisfies it structurally; fabric deliberately
// does not import package sockets so that sockets can sit on the
// fabric's buffer pool without an import cycle).
type StreamConn interface {
	Send(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error)
	Recv(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) (int, error)
	Close(p *sim.Proc) error
}

// streamTransport adapts one side of an established stream connection
// to the fabric. Streams have no tags and no boundaries, so matching is
// ignored and receives complete synchronously (the blocking socket call
// has returned by the time the Op exists); PostRecv loops until the
// posted vector is full or EOF, the way stream consumers must.
type streamTransport struct {
	node  *hw.Node
	peer  hw.NodeID
	conn  StreamConn
	label string
}

// SockGMTransport is the fabric adapter for a SOCKETS-GM connection.
type SockGMTransport struct{ streamTransport }

// SockMXTransport is the fabric adapter for a SOCKETS-MX connection.
type SockMXTransport struct{ streamTransport }

// TCPTransport is the fabric adapter for the TCP/GigE baseline.
type TCPTransport struct{ streamTransport }

// StreamTransport is the generic adapter for any established stream
// connection whose family the caller does not care about.
type StreamTransport struct{ streamTransport }

// NewStream wraps an established stream connection of any family.
func NewStream(node *hw.Node, peer hw.NodeID, conn StreamConn) *StreamTransport {
	return &StreamTransport{streamTransport{node: node, peer: peer, conn: conn, label: "stream"}}
}

// NewSocketsGM wraps an established SOCKETS-GM connection on node
// (peer is the remote node, reported in receive Statuses).
func NewSocketsGM(node *hw.Node, peer hw.NodeID, conn StreamConn) *SockGMTransport {
	return &SockGMTransport{streamTransport{node: node, peer: peer, conn: conn, label: "sockets-gm"}}
}

// NewSocketsMX wraps an established SOCKETS-MX connection.
func NewSocketsMX(node *hw.Node, peer hw.NodeID, conn StreamConn) *SockMXTransport {
	return &SockMXTransport{streamTransport{node: node, peer: peer, conn: conn, label: "sockets-mx"}}
}

// NewTCP wraps an established TCP/GigE baseline connection.
func NewTCP(node *hw.Node, peer hw.NodeID, conn StreamConn) *TCPTransport {
	return &TCPTransport{streamTransport{node: node, peer: peer, conn: conn, label: "tcp"}}
}

// Node implements Transport.
func (t *streamTransport) Node() *hw.Node { return t.node }

// LocalEP implements Transport: streams are connection-oriented and
// need no endpoint number.
func (t *streamTransport) LocalEP() uint8 { return 0 }

// Caps implements Transport.
func (t *streamTransport) Caps() Caps {
	return Caps{Stream: true, EagerSend: true}
}

// Register implements Transport: streams take plain virtual buffers.
func (t *streamTransport) Register(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr, n int) error {
	return nil
}

// Deregister implements Transport.
func (t *streamTransport) Deregister(p *sim.Proc, as *vm.AddressSpace, va vm.VirtAddr) error {
	return nil
}

// Acquire implements Transport.
func (t *streamTransport) Acquire(p *sim.Proc, v core.Vector) (func(), error) {
	return func() {}, nil
}

// seg extracts the single virtual segment streams can address.
func (t *streamTransport) seg(v core.Vector) (core.Segment, error) {
	if len(v) != 1 || v[0].Type == core.Physical {
		return core.Segment{}, fmt.Errorf("fabric: %s sockets address one virtual buffer per call", t.label)
	}
	return v[0], nil
}

// Send implements Transport: a blocking socket write of the whole
// segment; the returned Op is already complete.
func (t *streamTransport) Send(p *sim.Proc, dst hw.NodeID, dstEP uint8, info uint64, v core.Vector) (Op, error) {
	s, err := t.seg(v)
	if err != nil {
		return nil, err
	}
	sent, err := t.conn.Send(p, s.AS, s.VA, s.Len)
	if err != nil {
		return nil, err
	}
	if sent != s.Len {
		return nil, fmt.Errorf("fabric: short %s send %d/%d", t.label, sent, s.Len)
	}
	return completedOp{Status{Src: t.peer, Len: sent}}, nil
}

// PostRecv implements Transport: loop the blocking socket read until
// the buffer is full or the peer closed; the returned Op is already
// complete. A zero-length read before any data means EOF.
func (t *streamTransport) PostRecv(p *sim.Proc, match core.Match, v core.Vector) (Op, error) {
	s, err := t.seg(v)
	if err != nil {
		return nil, err
	}
	got := 0
	for got < s.Len {
		r, err := t.conn.Recv(p, s.AS, s.VA+vm.VirtAddr(got), s.Len-got)
		if err != nil {
			// Report the bytes already landed alongside the error, as
			// sockets.RecvAll does: partial stream reads are real data.
			return completedOp{Status{Src: t.peer, Len: got, Err: err}}, nil
		}
		if r == 0 {
			break
		}
		got += r
	}
	return completedOp{Status{Src: t.peer, Len: got}}, nil
}

// Close implements Transport.
func (t *streamTransport) Close(p *sim.Proc) error { return t.conn.Close(p) }

var (
	_ Transport = (*SockGMTransport)(nil)
	_ Transport = (*SockMXTransport)(nil)
	_ Transport = (*TCPTransport)(nil)
)
