package fabric_test

// The fabric conformance suite: every transport adapter — raw GM, raw
// MX, SOCKETS-GM, SOCKETS-MX and the TCP baseline — is run through the
// same battery of register/send/recv/ordering/error-path checks, so a
// future adapter (a sharded multi-NIC backend, say) gets its
// correctness tests for free by being added to builders().

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/sockets"
	"repro/internal/vm"
)

// pair is a connected transport pair: a on node A addressing B, and
// vice versa.
type pair struct {
	a, b     fabric.Transport
	aEP, bEP uint8 // remote endpoint numbers: a sends to (nodeB, bEP)
}

type builder struct {
	name  string
	model hw.LinkModel
	make  func(p *sim.Proc, na, nb *hw.Node) (pair, error)
}

func builders() []builder {
	msg := func(open func(n *hw.Node, id uint8) (fabric.Transport, error)) func(p *sim.Proc, na, nb *hw.Node) (pair, error) {
		return func(p *sim.Proc, na, nb *hw.Node) (pair, error) {
			ta, err := open(na, 1)
			if err != nil {
				return pair{}, err
			}
			tb, err := open(nb, 1)
			if err != nil {
				return pair{}, err
			}
			return pair{a: ta, b: tb, aEP: 1, bEP: 1}, nil
		}
	}
	stream := func(family string) func(p *sim.Proc, na, nb *hw.Node) (pair, error) {
		return func(p *sim.Proc, na, nb *hw.Node) (pair, error) {
			var sa, sb sockets.Stack
			var err error
			switch family {
			case "gm":
				if sa, err = sockets.NewGMStack(gm.Attach(na), 7); err != nil {
					return pair{}, err
				}
				if sb, err = sockets.NewGMStack(gm.Attach(nb), 7); err != nil {
					return pair{}, err
				}
			case "mx":
				if sa, err = sockets.NewMXStack(mx.Attach(na), 7); err != nil {
					return pair{}, err
				}
				if sb, err = sockets.NewMXStack(mx.Attach(nb), 7); err != nil {
					return pair{}, err
				}
			case "tcp":
				sa, sb = sockets.NewTCPStack(na), sockets.NewTCPStack(nb)
			}
			l, err := sb.Listen(5)
			if err != nil {
				return pair{}, err
			}
			var server sockets.Conn
			accepted := sim.NewSignal(p.Engine())
			p.Engine().Spawn("accept", func(ap *sim.Proc) {
				server, _ = l.Accept(ap)
				accepted.Fire()
			})
			client, err := sa.Dial(p, int(nb.ID), 5)
			if err != nil {
				return pair{}, err
			}
			accepted.Wait(p)
			switch family {
			case "gm":
				return pair{a: fabric.NewSocketsGM(na, nb.ID, client), b: fabric.NewSocketsGM(nb, na.ID, server)}, nil
			case "mx":
				return pair{a: fabric.NewSocketsMX(na, nb.ID, client), b: fabric.NewSocketsMX(nb, na.ID, server)}, nil
			default:
				return pair{a: fabric.NewTCP(na, nb.ID, client), b: fabric.NewTCP(nb, na.ID, server)}, nil
			}
		}
	}
	return []builder{
		{"gm", hw.PCIXD, msg(func(n *hw.Node, id uint8) (fabric.Transport, error) {
			return fabric.NewGM(gm.Attach(n), id, true)
		})},
		{"mx", hw.PCIXD, msg(func(n *hw.Node, id uint8) (fabric.Transport, error) {
			return fabric.NewMX(mx.Attach(n), id, true)
		})},
		{"sockets-gm", hw.PCIXE, stream("gm")},
		{"sockets-mx", hw.PCIXE, stream("mx")},
		{"tcp", hw.PCIXE, stream("tcp")},
	}
}

// run executes body inside a simulation with a connected pair and
// fails the test on deadlock or setup error.
func run(t *testing.T, b builder, body func(p *sim.Proc, na, nb *hw.Node, pr pair)) {
	t.Helper()
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), b.model)
	na, nb := cl.AddNode("a"), cl.AddNode("b")
	done := false
	env.Spawn("conformance", func(p *sim.Proc) {
		pr, err := b.make(p, na, nb)
		if err != nil {
			t.Error(err)
			return
		}
		body(p, na, nb, pr)
		done = true
	})
	env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("conformance body deadlocked")
	}
}

// buf allocates a registered user buffer on the transport's node.
func buf(t *testing.T, p *sim.Proc, tr fabric.Transport, n int) (*vm.AddressSpace, vm.VirtAddr) {
	t.Helper()
	as := tr.Node().NewUserSpace("conf")
	va, err := as.Mmap(n, "buf")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Caps().NeedsReg {
		if err := tr.Register(p, as, va, n); err != nil {
			t.Fatal(err)
		}
	}
	return as, va
}

func pattern(n, seed int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*31 + seed)
	}
	return out
}

// TestConformanceRoundTrip: one registered user buffer each side, one
// message across, data intact, length and source reported.
func TestConformanceRoundTrip(t *testing.T) {
	const n = 20000
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				asA, vaA := buf(t, p, pr.a, n)
				asB, vaB := buf(t, p, pr.b, n)
				want := pattern(n, 5)
				asA.WriteBytes(vaA, want)

				recvd := sim.NewSignal(p.Engine())
				p.Engine().Spawn("receiver", func(rp *sim.Proc) {
					op, err := pr.b.PostRecv(rp, core.Exact(7), core.Of(core.UserSeg(asB, vaB, n)))
					if err != nil {
						t.Error(err)
						return
					}
					st := op.Wait(rp)
					if st.Err != nil || st.Len != n {
						t.Errorf("recv: len=%d err=%v", st.Len, st.Err)
						return
					}
					if st.Src != na.ID {
						t.Errorf("recv src = %d, want %d", st.Src, na.ID)
					}
					got, _ := asB.ReadBytes(vaB, n)
					if !bytes.Equal(got, want) {
						t.Error("payload corrupted in transit")
					}
					recvd.Fire()
				})
				p.Yield() // let the receiver post first
				op, err := pr.a.Send(p, nb.ID, pr.bEP, 7, core.Of(core.UserSeg(asA, vaA, n)))
				if err != nil {
					t.Fatal(err)
				}
				if !pr.a.Caps().EagerSend {
					if st := op.Wait(p); st.Err != nil {
						t.Fatal(st.Err)
					}
				}
				recvd.Wait(p)
			})
		})
	}
}

// TestConformanceOrdering: messages with the same match information
// arrive in send order.
func TestConformanceOrdering(t *testing.T) {
	const n, count = 4096, 4
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				// One distinct buffer per in-flight message: no
				// transport guarantees a buffer is reusable before its
				// completion, and this test deliberately does not wait.
				asA, vaA := buf(t, p, pr.a, count*n)
				asB, vaB := buf(t, p, pr.b, n)
				okRecv := false
				recvd := sim.NewSignal(p.Engine())
				p.Engine().Spawn("receiver", func(rp *sim.Proc) {
					for i := 0; i < count; i++ {
						op, err := pr.b.PostRecv(rp, core.Exact(9), core.Of(core.UserSeg(asB, vaB, n)))
						if err != nil {
							t.Error(err)
							return
						}
						st := op.Wait(rp)
						if st.Err != nil || st.Len != n {
							t.Errorf("msg %d: len=%d err=%v", i, st.Len, st.Err)
							return
						}
						got, _ := asB.ReadBytes(vaB, n)
						if !bytes.Equal(got, pattern(n, i)) {
							t.Errorf("message %d out of order or corrupted", i)
							return
						}
					}
					okRecv = true
					recvd.Fire()
				})
				p.Yield()
				for i := 0; i < count; i++ {
					slot := vaA + vm.VirtAddr(i*n)
					asA.WriteBytes(slot, pattern(n, i))
					if _, err := pr.a.Send(p, nb.ID, pr.bEP, 9, core.Of(core.UserSeg(asA, slot, n))); err != nil {
						t.Fatal(err)
					}
				}
				recvd.Wait(p)
				if !okRecv {
					t.Fatal("receiver did not finish")
				}
			})
		})
	}
}

// TestConformanceTruncation: message transports report truncation when
// the posted buffer is smaller than the message; streams buffer the
// excess for the next receive instead.
func TestConformanceTruncation(t *testing.T) {
	const n = 8192
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				asA, vaA := buf(t, p, pr.a, n)
				asB, vaB := buf(t, p, pr.b, n)
				asA.WriteBytes(vaA, pattern(n, 3))
				stream := pr.b.Caps().Stream
				recvd := sim.NewSignal(p.Engine())
				p.Engine().Spawn("receiver", func(rp *sim.Proc) {
					defer recvd.Fire()
					op, err := pr.b.PostRecv(rp, core.Exact(7), core.Of(core.UserSeg(asB, vaB, n/2)))
					if err != nil {
						t.Error(err)
						return
					}
					st := op.Wait(rp)
					if stream {
						// Stream: first read fills the buffer, second
						// drains the rest; no error either way.
						if st.Err != nil || st.Len != n/2 {
							t.Errorf("stream recv 1: len=%d err=%v", st.Len, st.Err)
							return
						}
						op2, err := pr.b.PostRecv(rp, core.Exact(7), core.Of(core.UserSeg(asB, vaB, n/2)))
						if err != nil {
							t.Error(err)
							return
						}
						if st2 := op2.Wait(rp); st2.Err != nil || st2.Len != n/2 {
							t.Errorf("stream recv 2: len=%d err=%v", st2.Len, st2.Err)
						}
						return
					}
					if st.Err == nil {
						t.Error("truncated delivery reported no error")
					}
					if st.Len != n/2 {
						t.Errorf("truncated delivery len=%d, want %d", st.Len, n/2)
					}
				})
				p.Yield()
				if _, err := pr.a.Send(p, nb.ID, pr.bEP, 7, core.Of(core.UserSeg(asA, vaA, n))); err != nil {
					t.Fatal(err)
				}
				recvd.Wait(p)
			})
		})
	}
}

// TestConformanceCapErrors: capability violations fail loudly instead
// of corrupting data — vectors on non-vectorial transports, wildcard
// matches where only exact tags exist, physical segments on streams,
// unregistered buffers on registering transports.
func TestConformanceCapErrors(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				caps := pr.a.Caps()
				as, va := buf(t, p, pr.a, 2*vm.PageSize)
				two := core.Vector{
					core.UserSeg(as, va, vm.PageSize),
					core.UserSeg(as, va+vm.VirtAddr(vm.PageSize), vm.PageSize),
				}
				if !caps.Vectors {
					if _, err := pr.a.Send(p, nb.ID, pr.bEP, 1, two); err == nil {
						t.Error("multi-segment send accepted without vector support")
					}
				}
				if !caps.Vectors && !caps.Stream {
					wild := core.Match{Bits: 1, Mask: 1}
					if _, err := pr.a.PostRecv(p, wild, core.Of(core.UserSeg(as, va, 64))); err == nil {
						t.Error("wildcard match accepted by exact-tag transport")
					}
				}
				if caps.Stream {
					phys := core.Of(core.PhysSeg(0x1000, 64))
					if _, err := pr.a.Send(p, nb.ID, pr.bEP, 1, phys); err == nil {
						t.Error("physical segment accepted by stream transport")
					}
				}
				if caps.NeedsReg {
					raw := pr.a.Node().NewUserSpace("unreg")
					uva, _ := raw.Mmap(vm.PageSize, "u")
					if _, err := pr.a.Send(p, nb.ID, pr.bEP, 1, core.Of(core.UserSeg(raw, uva, 64))); err == nil {
						t.Error("unregistered buffer accepted by registering transport")
					}
				}
			})
		})
	}
}

// TestConformanceAcquireRelease: the per-transfer registration path.
// On registering transports Acquire runs the buffer through the
// registration cache (and the release closure of a cache-disabled
// transport deregisters immediately); elsewhere both are free no-ops.
func TestConformanceAcquireRelease(t *testing.T) {
	const n = 16384
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				asA := pr.a.Node().NewUserSpace("conf")
				vaA, _ := asA.Mmap(n, "buf")
				asB, vaB := buf(t, p, pr.b, n)
				want := pattern(n, 11)
				asA.WriteBytes(vaA, want)
				v := core.Of(core.UserSeg(asA, vaA, n))
				release, err := pr.a.Acquire(p, v)
				if err != nil {
					t.Fatal(err)
				}
				recvd := sim.NewSignal(p.Engine())
				p.Engine().Spawn("receiver", func(rp *sim.Proc) {
					op, err := pr.b.PostRecv(rp, core.Exact(3), core.Of(core.UserSeg(asB, vaB, n)))
					if err != nil {
						t.Error(err)
						return
					}
					st := op.Wait(rp)
					if st.Err != nil || st.Len != n {
						t.Errorf("recv: len=%d err=%v", st.Len, st.Err)
						return
					}
					got, _ := asB.ReadBytes(vaB, n)
					if !bytes.Equal(got, want) {
						t.Error("acquired-buffer payload corrupted")
					}
					recvd.Fire()
				})
				p.Yield()
				op, err := pr.a.Send(p, nb.ID, pr.bEP, 3, v)
				if err != nil {
					t.Fatal(err)
				}
				if !pr.a.Caps().EagerSend {
					if st := op.Wait(p); st.Err != nil {
						t.Fatal(st.Err)
					}
				}
				recvd.Wait(p)
				release()
			})
		})
	}
}

// TestConformanceRegisterDeregister: long-lived registration is
// idempotent across the fabric: register, use, deregister; transports
// without registration accept the calls as no-ops.
func TestConformanceRegisterDeregister(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				as := pr.a.Node().NewUserSpace("conf")
				va, _ := as.Mmap(4*vm.PageSize, "buf")
				if err := pr.a.Register(p, as, va, 4*vm.PageSize); err != nil {
					t.Fatal(err)
				}
				if err := pr.a.Deregister(p, as, va); err != nil && pr.a.Caps().NeedsReg {
					t.Fatal(err)
				}
				if pr.a.Caps().NeedsReg {
					// Double deregistration must fail loudly.
					if err := pr.a.Deregister(p, as, va); err == nil {
						t.Error("double deregistration accepted")
					}
				}
			})
		})
	}
}

// TestConformanceZeroLength: message transports complete a zero-byte
// transfer (empty vector) — the shape zero-length file reads/writes
// produce. Streams are excluded: a zero-byte stream write carries no
// signal by definition.
func TestConformanceZeroLength(t *testing.T) {
	for _, b := range builders()[:2] { // gm, mx
		t.Run(b.name, func(t *testing.T) {
			run(t, b, func(p *sim.Proc, na, nb *hw.Node, pr pair) {
				recvd := sim.NewSignal(p.Engine())
				p.Engine().Spawn("receiver", func(rp *sim.Proc) {
					op, err := pr.b.PostRecv(rp, core.Exact(4), core.Vector{})
					if err != nil {
						t.Error(err)
						return
					}
					st := op.Wait(rp)
					if st.Err != nil || st.Len != 0 {
						t.Errorf("zero-length recv: len=%d err=%v", st.Len, st.Err)
					}
					recvd.Fire()
				})
				p.Yield()
				if _, err := pr.a.Send(p, nb.ID, pr.bEP, 4, core.Vector{}); err != nil {
					t.Fatal(err)
				}
				recvd.Wait(p)
			})
		})
	}
}

// TestConformanceGMUncachedRelease: with the registration cache
// disabled, Acquire's release pays the immediate deregistration — the
// Fig 3(b) "without Reg. Cache" discipline.
func TestConformanceGMUncachedRelease(t *testing.T) {
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	na, _ := cl.AddNode("a"), cl.AddNode("b")
	done := false
	env.Spawn("t", func(p *sim.Proc) {
		tr, err := fabric.NewGM(gm.Attach(na), 1, true, fabric.WithCachePages(0))
		if err != nil {
			t.Error(err)
			return
		}
		as := na.NewUserSpace("u")
		va, _ := as.Mmap(4*vm.PageSize, "b")
		v := core.Of(core.UserSeg(as, va, 4*vm.PageSize))
		release, err := tr.Acquire(p, v)
		if err != nil {
			t.Error(err)
			return
		}
		if tr.Cache().Pages() == 0 {
			t.Error("acquire registered nothing")
		}
		t0 := p.Now()
		release()
		if tr.Cache().Pages() != 0 {
			t.Error("uncached release left pages registered")
		}
		if p.Now()-t0 < 200000 { // DeregBase is 200µs
			t.Errorf("uncached release paid only %v, want ≥200µs", p.Now()-t0)
		}
		done = true
	})
	env.Run(0)
	if !done {
		t.Fatal(fmt.Errorf("body did not run"))
	}
}
