package fabric

// This file is the shared buffer pool: physically contiguous kernel
// bounce buffers recycled across every consumer on a node, each
// buffer's per-transport registrations cached so they travel with it.
import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Pool is a per-node pool of physically contiguous kernel bounce
// buffers shared by every fabric consumer on the node — the socket
// stacks, the remote-file server and clients, the block device.
//
// Before the pool each consumer MmapContig'd its own staging buffers;
// now closed connections and finished workers return them for reuse.
// For registering transports, a buffer's registrations travel with it
// across reuses (RegisterWith is cached per transport — exercised by
// pool_test.go; in-tree consumers address pooled buffers physically,
// so per-transfer registration caching itself lives in
// Transport.Acquire, which every consumer reaches through the fabric).
type Pool struct {
	node *hw.Node
	free map[int][]*Buffer
	all  []*Buffer // every buffer ever created, for registration invalidation

	// Gets counts handed-out buffers (.N) and their class bytes
	// (.Bytes); Hits the subset served by recycling.
	Gets, Hits sim.Counter
}

// PoolOf returns the node's shared buffer pool, creating it on first
// use. The pool lives on the node itself (hw.Node.FabricPool), so a
// finished simulation's memory is collectable — no global registry.
func PoolOf(node *hw.Node) *Pool {
	if p, ok := node.FabricPool.(*Pool); ok {
		return p
	}
	p := &Pool{node: node, free: make(map[int][]*Buffer)}
	node.FabricPool = p
	return p
}

// class rounds a request up to whole pages — the granularity kernel
// contiguous allocations come in anyway — so recycling costs no more
// simulated memory than the direct MmapContig it replaces.
func class(size int) int {
	return (size + mem.PageSize - 1) / mem.PageSize * mem.PageSize
}

// Get hands out a kernel-contiguous buffer of at least size bytes.
func (p *Pool) Get(size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("fabric: pool Get(%d)", size)
	}
	c := class(size)
	p.Gets.Add(c)
	if q := p.free[c]; len(q) > 0 {
		b := q[len(q)-1]
		p.free[c] = q[:len(q)-1]
		b.free, b.released = false, false
		p.Hits.Add(c)
		return b, nil
	}
	va, err := p.node.Kernel.MmapContig(c, "fabric-pool")
	if err != nil {
		return nil, err
	}
	xs, err := p.node.Kernel.Resolve(va, c)
	if err != nil {
		return nil, err
	}
	b := &Buffer{pool: p, va: va, size: c, xs: xs, regs: make(map[Transport]bool)}
	p.all = append(p.all, b)
	return b, nil
}

// invalidate forgets cached registrations for a transport that has
// deregistered memory or closed: over-invalidation merely re-pays a
// registration, while a stale cache entry would skip one the model
// should charge (or fail the next send outright).
func (p *Pool) invalidate(t Transport) {
	for _, b := range p.all {
		delete(b.regs, t)
	}
}

// Buffer is one pooled bounce buffer: kernel-virtual, physically
// contiguous, with its physical extents pre-resolved and its per-
// transport registrations cached across reuses.
type Buffer struct {
	pool *Pool
	va   vm.VirtAddr
	size int
	xs   []mem.Extent
	regs map[Transport]bool

	// Quiescence tracking: a buffer goes back to the free list only
	// when it has been Released, no operation holds a Pin, and it has
	// not been Poisoned. Consumers pin around every operation that
	// touches the buffer (including ones that may park), so the
	// release protocol lives here, in one place, instead of as ad-hoc
	// flags in every consumer.
	pins     int
	released bool
	poisoned bool
	free     bool // currently in the pool's free list
}

// VA returns the buffer's kernel virtual address.
func (b *Buffer) VA() vm.VirtAddr { return b.va }

// Size returns the buffer capacity.
func (b *Buffer) Size() int { return b.size }

// Extents returns the buffer's first n bytes as physical extents.
func (b *Buffer) Extents(n int) []mem.Extent {
	if n > b.size {
		panic(fmt.Sprintf("fabric: buffer extents %d > %d", n, b.size))
	}
	if n == b.size {
		return b.xs
	}
	return mem.Clip(b.xs, n)
}

// KernelVec returns the buffer's first n bytes as a kernel-virtual
// vector.
func (b *Buffer) KernelVec(n int) core.Vector {
	return core.Of(core.KernelSeg(b.pool.node.Kernel, b.va, n))
}

// RegisterWith registers the whole buffer with t once; repeated calls
// for the same transport are free (the pooled analogue of the pin-down
// cache: registration rides with the recycled buffer).
func (b *Buffer) RegisterWith(p *sim.Proc, t Transport) error {
	if !t.Caps().NeedsReg || b.regs[t] {
		return nil
	}
	if err := t.Register(p, b.pool.node.Kernel, b.va, b.size); err != nil {
		return err
	}
	b.regs[t] = true
	return nil
}

// Pin marks an operation in flight over the buffer; the buffer cannot
// re-enter the pool until the matching Unpin. Pin before the first
// charge that may park the process, so a concurrent Release cannot
// recycle the buffer out from under the operation.
func (b *Buffer) Pin() { b.pins++ }

// Unpin ends an operation, completing a deferred Release if this was
// the last pin.
func (b *Buffer) Unpin() {
	if b.pins <= 0 {
		panic("fabric: unpin of unpinned buffer")
	}
	b.pins--
	b.tryFree()
}

// Poison permanently bars the buffer from the free list — the last
// resort for a buffer some operation may still scatter into when the
// operation cannot be withdrawn (leaking one buffer is safe; recycling
// it would corrupt another consumer's data). In-tree consumers no
// longer need it: stale posted receives are cancelled at the driver
// (mx.Endpoint.CancelRecv, gm.Port.CancelRecv) so their buffers
// recycle. CheckLeaks reports any poisoned buffer as a leak.
func (b *Buffer) Poison() { b.poisoned = true }

// Outstanding returns the number of buffers currently handed out
// (not in the free list).
func (p *Pool) Outstanding() int {
	n := 0
	for _, b := range p.all {
		if !b.free {
			n++
		}
	}
	return n
}

// Poisoned returns the number of permanently quarantined buffers.
func (p *Pool) Poisoned() int {
	n := 0
	for _, b := range p.all {
		if b.poisoned {
			n++
		}
	}
	return n
}

// CheckLeaks is the pool's leak-accounting assertion for tests: once
// every consumer has released its buffers and quiesced, it returns an
// error naming anything that can never recycle — poisoned buffers,
// and released buffers still pinned by an operation that never
// finished.
func (p *Pool) CheckLeaks() error {
	poisoned, stuck := 0, 0
	for _, b := range p.all {
		if b.poisoned {
			poisoned++
		} else if b.released && !b.free {
			stuck++
		}
	}
	if poisoned > 0 || stuck > 0 {
		return fmt.Errorf("fabric: pool leaks: %d poisoned, %d released-but-stuck of %d buffers",
			poisoned, stuck, len(p.all))
	}
	return nil
}

// Release returns the buffer to the pool once quiescent (registrations
// are kept — the next Get of this class reuses them). With pins still
// held the release completes at the last Unpin. Releasing twice
// panics: a double release would hand the same kernel buffer to two
// independent consumers, which corrupts data silently — better to
// fail loudly.
func (b *Buffer) Release() {
	if b.released {
		panic("fabric: double release of pooled buffer")
	}
	b.released = true
	b.tryFree()
}

func (b *Buffer) tryFree() {
	if b.released && b.pins == 0 && !b.poisoned && !b.free {
		b.free = true
		b.pool.free[b.size] = append(b.pool.free[b.size], b)
	}
}
