// Package rfsrv implements the ORFA/ORFS remote file-access protocol
// (§3.1): a request/response protocol between a client (user-space
// ORFA library or in-kernel ORFS filesystem) and a file server backed
// by memfs.
//
// The protocol is transport-neutral; the two Client implementations
// (MXClient, GMClient) embody the paper's comparison:
//
//   - MXClient uses the MX kernel interface directly: vectorial,
//     address-typed requests; write data rides in the request message;
//     read data lands zero-copy in physically-addressed page-cache
//     frames or in (pinned) user buffers via rendezvous; waits are
//     per-request.
//   - GMClient has to assemble the same functionality out of GM's
//     primitives: everything it touches must be registered (a GMKRC
//     registration cache handles user buffers), there are no vectors
//     (header and data travel as separate messages), and completions
//     come from the port's unique event queue via a blocking wait that
//     costs a dispatch-thread hop (§5.3).
//
// The asymmetry in code shape between the two clients *is* the paper's
// point; the measured gap in ORFS throughput (Fig 7) follows from it.
package rfsrv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"

	"repro/internal/core"
)

// Op is a protocol operation code.
type Op uint8

// Protocol operations.
const (
	OpLookup Op = iota + 1
	OpGetattr
	OpReaddir
	OpCreate
	OpMkdir
	OpUnlink
	OpRmdir
	OpTruncate
	OpRead
	OpWrite
	// OpSetSize is the size-coherence operation (it replaced the
	// grow-only OpExtend at the same opcode). Off is the target size;
	// Len packs a mode bit and the writer's observed size epoch (see
	// PackSetSize). In grow mode the server applies size = max(size,
	// Off) and never bumps the inode's size epoch — idempotent and safe
	// to replay in any order, the property the striped cluster client
	// relies on when it reconciles file sizes across servers after a
	// write whose tail stripe landed away from the metadata home. In
	// exact mode the server applies size = Off (grow or shrink) and
	// always bumps the epoch — the cluster's truncate. Either mode is
	// rejected with StStale when the observed epoch is behind, with the
	// reply carrying the authoritative (size, epoch) so one round trip
	// revalidates the caller (see Cluster).
	OpSetSize
	// OpSetLayout records a file's stripe-layout class (DESIGN.md §10)
	// in the serving inode: Len carries the LayoutClass. Changing the
	// layout relocates data, so the server bumps the inode's size epoch —
	// every cached (size, layout) view elsewhere is invalidated through
	// the same validated-cache machinery truncate uses, and a cluster
	// client counts the fan-out as a namespace mutation (an excluded
	// server that missed it must resync before Reinstate).
	OpSetLayout
	// OpLink enters an existing inode into a directory under a new name
	// without minting anything: Off carries the child inode, Len its
	// FileKind. It is the replication verb of the sharded namespace
	// (copying a fresh dentry to the owner group's replicas) and the
	// commit half of the two-phase rename. Linking the same child under
	// the same name twice is an idempotent success.
	OpLink
	// OpMaterialize ensures the server holds an object for the inode
	// (Len carries the FileKind of the stub to create if it does not).
	// Sharded clusters use it to place a freshly minted directory at
	// its routing owner group, which generally differs from the group
	// that owns the parent's dentry.
	OpMaterialize
	// OpScrub frees the server's object for a dead inode, dangling
	// names tolerated — the lazy space-reclamation fan that follows a
	// sharded unlink. Len bit 0 set turns it into the rmdir emptiness
	// check: the object must be an empty directory (or absent) and is
	// only scrubbed then.
	OpScrub
	// OpRenamePrepare / OpRenameFinalize / OpRenameAbort are the
	// source-side phases of the cross-owner rename (DESIGN.md §11).
	// Prepare marks (Ino, Name) as renaming toward the destination
	// directory in Off and returns the child's attributes; a marked
	// entry refuses unlinks and conflicting prepares with StBusy until
	// finalized or aborted. Finalize (child in Off) detaches the source
	// entry and clears the mark; Abort just clears the mark. All three
	// are idempotent so an in-doubt client can re-drive them.
	OpRenamePrepare
	OpRenameFinalize
	OpRenameAbort
	// OpRenameLocal is the one-home rename: source dir in Ino,
	// destination dir in Off, and Name carrying both names separated by
	// a NUL (PackRenameNames). Used whole when source and destination
	// share an owner group, and by unsharded replicated clusters and
	// single-server sessions, where every server can apply it locally.
	OpRenameLocal
	// OpMember commits a new membership view on a server (DESIGN.md
	// §13): Off carries the new membership epoch, Len the server's
	// placement position/count/replication packed by PackMember, and —
	// in sharded mode — Ino carries the mint floor every server must
	// raise its inode cursor past so inodes minted under the new
	// geometry can never collide with ones minted under the old.
	OpMember
	// OpSyncEpoch is the resync-only epoch alignment op: it sets the
	// server's size epoch for Ino to Off so a journal replay can land an
	// epoch-bumping mutation (exact OpSetSize, OpTruncate, OpSetLayout)
	// at exactly the epoch the rest of the cluster recorded for it.
	// Only Reinstate's replay engine issues it.
	OpSyncEpoch
)

//analyze:dispatch ops
var opNames = map[Op]string{
	OpLookup: "lookup", OpGetattr: "getattr", OpReaddir: "readdir",
	OpCreate: "create", OpMkdir: "mkdir", OpUnlink: "unlink",
	OpRmdir: "rmdir", OpTruncate: "truncate", OpRead: "read", OpWrite: "write",
	OpSetSize: "setsize", OpSetLayout: "setlayout",
	OpLink: "link", OpMaterialize: "materialize", OpScrub: "scrub",
	OpRenamePrepare: "renameprepare", OpRenameFinalize: "renamefinalize",
	OpRenameAbort: "renameabort", OpRenameLocal: "renamelocal",
	OpMember: "member", OpSyncEpoch: "syncepoch",
}

// PackMember builds the Len field of an OpMember request: the server's
// position in the new placement order (7 bits), the new member count
// (7 bits), the replication factor (7 bits), and a sharded-geometry
// flag telling the server to swap its §11 ownership map and minting
// partition along with the epoch.
func PackMember(pos, n, r int, sharded bool) uint32 {
	l := uint32(pos&0x7f) | uint32(n&0x7f)<<7 | uint32(r&0x7f)<<14
	if sharded {
		l |= 1 << 21
	}
	return l
}

// UnpackMember is the inverse of PackMember.
func UnpackMember(l uint32) (pos, n, r int, sharded bool) {
	return int(l & 0x7f), int(l >> 7 & 0x7f), int(l >> 14 & 0x7f), l&(1<<21) != 0
}

// ScrubRequireEmptyDir is the OpScrub Len bit that turns the scrub
// into the sharded rmdir's emptiness check-and-remove: the inode must
// be an absent or empty directory.
const ScrubRequireEmptyDir = 1

// PackRenameNames joins an OpRenameLocal's source and destination
// names into the request's single Name field (NUL-separated; NUL
// cannot occur in a component).
func PackRenameNames(src, dst string) string { return src + "\x00" + dst }

// SplitRenameNames is the inverse of PackRenameNames.
func SplitRenameNames(packed string) (src, dst string, ok bool) {
	for i := 0; i < len(packed); i++ {
		if packed[i] == 0 {
			return packed[:i], packed[i+1:], true
		}
	}
	return "", "", false
}

// LayoutClass is a file's stripe-layout policy, recorded per inode at
// create time (or changed by OpSetLayout). It rides the wire in bytes
// that were previously always zero — the high nibble of the reply's
// kind byte and an OpCreate request's unused Len field — so the
// layout machinery changed no message length and no fault-free timing.
type LayoutClass uint8

const (
	// LayoutStandard stripes at the cluster's configured width (64 KiB
	// by default), round-robin — bit-identical to the pre-layout
	// cluster, and what every unhinted create gets.
	LayoutStandard LayoutClass = iota
	// LayoutWhole places all of a small file's data on its metadata
	// home server: no fan-out, no grow-only OpSetSize reconciliation
	// (the home is the size authority AND the only data server), one
	// server answering both metadata and data for the file.
	LayoutWhole
	// LayoutWide stripes at WideStripeSize for deep per-server
	// pipelining of huge files.
	LayoutWide

	layoutMax = LayoutWide
)

var layoutNames = [...]string{"standard", "whole", "wide"}

// String returns the layout's protocol name.
func (lc LayoutClass) String() string {
	if int(lc) < len(layoutNames) {
		return layoutNames[lc]
	}
	return fmt.Sprintf("layout(%d)", uint8(lc))
}

// ValidLayout reports whether lc is a defined layout class (servers
// reject create hints and OpSetLayout requests outside the range with
// StInval instead of recording garbage).
func ValidLayout(lc LayoutClass) bool { return lc <= layoutMax }

// WideStripeSize is the stripe width of LayoutWide files: 1 MiB, deep
// enough that one wide file keeps several requests in flight per
// server without metadata-home hotspots.
const WideStripeSize = 1 << 20

// PromoteThreshold is the adaptive-policy promotion point: a
// whole-on-home file whose write reaches past this offset is migrated
// to standard striping (see Cluster.SetLayoutPolicy).
const PromoteThreshold = 256 * 1024

// String returns the protocol name of the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Req is a protocol request. Ino 0 denotes the filesystem root.
type Req struct {
	Op  Op
	Seq uint64
	EP  uint8 // client endpoint/port to reply to
	Ino kernel.InodeID
	Off int64 // offset (read/write) or new size (truncate/setsize)
	// Len is the read/write byte count; OpSetSize packs mode+epoch here
	// (PackSetSize); OpCreate and OpSetLayout carry a LayoutClass (the
	// field was always zero for creates before, so an unhinted create is
	// wire-identical to a LayoutStandard one).
	Len  uint32
	Name string // lookup/create/mkdir/unlink/rmdir
}

// setSizeExactBit marks an OpSetSize request as an exact set (shrink
// allowed, epoch bumped) rather than a grow-only reconciliation.
const setSizeExactBit = 1 << 31

// SetSizeEpochMask selects the observed-epoch bits of an OpSetSize
// request's Len field: the writer's size epoch truncated to 31 bits.
// Replies carry full 64-bit epochs; the request-side truncation is a
// staleness check by equality, valid over any realistic epoch window.
const SetSizeEpochMask = 1<<31 - 1

// MemberEpochShift positions the membership-view epoch inside the
// 64-bit reply epoch slot: the top 16 bits carry the member epoch, the
// low 48 the inode's size epoch (Resp.MemberEpoch).
const MemberEpochShift = 48

// SizeEpochMask selects the size-epoch bits of the reply epoch slot.
const SizeEpochMask = 1<<MemberEpochShift - 1

// PackSetSize builds the Len field of an OpSetSize request from the
// mode and the writer's observed size epoch. The epoch rides in the
// request so the server can refuse to act on a stale view of the file
// (StStale) instead of silently re-growing sizes a foreign truncate
// just cut.
func PackSetSize(exact bool, epoch uint64) uint32 {
	l := uint32(epoch & SetSizeEpochMask)
	if exact {
		l |= setSizeExactBit
	}
	return l
}

// UnpackSetSize splits an OpSetSize request's Len field into the mode
// and the observed epoch (truncated to 31 bits, see SetSizeEpochMask).
func UnpackSetSize(l uint32) (exact bool, epoch uint32) {
	return l&setSizeExactBit != 0, l & SetSizeEpochMask
}

// reqFixed is the fixed-size prefix of an encoded request.
const reqFixed = 1 + 8 + 1 + 8 + 8 + 4 + 2

// MaxNameLen is the longest name one request can carry: a component
// must fit the 4 KB request buffer alongside the fixed header. Clients
// validate at the API boundary (ValidateReq) so an oversized name
// surfaces as StNameTooLong instead of a panic deep in Encode.
const MaxNameLen = 4096 - reqFixed

// Client-boundary validation errors (each maps to a wire status).
var (
	ErrNameTooLong = errors.New("rfsrv: name too long")
	ErrInval       = errors.New("rfsrv: invalid argument")
	// ErrStaleEpoch is StStale as an error: an OpSetSize carried an
	// observed size epoch behind the server's. The paired reply holds
	// the authoritative (size, epoch) for revalidation.
	ErrStaleEpoch = errors.New("rfsrv: stale size epoch")
	// ErrBusy is StBusy as an error: the directory entry is marked by
	// an unfinished rename and refuses conflicting mutations.
	ErrBusy = errors.New("rfsrv: entry busy in rename")
	// ErrNotOwner is StNotOwner as an error: the mutation reached a
	// sharded server outside the directory's owner group.
	ErrNotOwner = errors.New("rfsrv: not the namespace owner")
	// ErrRenameInDoubt is the sentinel every RenameInDoubtError matches
	// (errors.Is): a cross-owner rename lost contact with one of its
	// two owner groups between prepare and finalize, so the client
	// cannot know which of the two legal outcomes the namespace holds.
	// Re-driving the same rename once the groups are reachable resolves
	// it — every phase is idempotent.
	ErrRenameInDoubt = errors.New("rfsrv: rename in doubt")
	// ErrShardLayoutConflict rejects combining the sharded namespace
	// (EnableShardedNamespace, DESIGN.md §11) with the per-file layout
	// policy (SetLayoutPolicy, §10) in either order: sharding routes
	// the create request's Len field as a residue, which is the field
	// layout hints travel in. Composing the two is a ROADMAP follow-up;
	// until it lands the conflict is a typed refusal, not silent
	// misbehavior. errors.Is(err, ErrShardLayoutConflict) matches.
	ErrShardLayoutConflict = errors.New("rfsrv: sharded namespace and per-file layout policy are mutually exclusive")
	// ErrStaleMembership reports that a reply carried a membership-view
	// epoch newer than the client's and the client has no shared
	// MemberView to adopt the new placement from: its routing is wrong
	// for the cluster's current geometry and every further operation is
	// refused until it attaches a current view (DESIGN.md §13).
	ErrStaleMembership = errors.New("rfsrv: membership view is stale")
)

// RenameInDoubtError reports a cross-owner rename whose outcome the
// client could not learn: the prepare succeeded, and then either the
// commit's fate or the finalize's fate was lost to a fault. The
// namespace is guaranteed to be in one of exactly two legal states —
// the entry at its source (rename never committed) or at its
// destination (committed, source cleanup pending or done) — never
// both visible, never neither. It unwraps to the underlying fault and
// matches ErrRenameInDoubt.
type RenameInDoubtError struct {
	SrcDir  kernel.InodeID
	SrcName string
	DstDir  kernel.InodeID
	DstName string
	Err     error // the fault that interrupted the protocol
}

// Error implements error.
func (e *RenameInDoubtError) Error() string {
	return fmt.Sprintf("rfsrv: rename %d/%s -> %d/%s in doubt: %v",
		e.SrcDir, e.SrcName, e.DstDir, e.DstName, e.Err)
}

// Unwrap exposes the interrupting fault to errors.Is/As.
func (e *RenameInDoubtError) Unwrap() error { return e.Err }

// Is matches the ErrRenameInDoubt sentinel.
func (e *RenameInDoubtError) Is(target error) bool { return target == ErrRenameInDoubt }

// ValidateReq checks a request at the client API boundary: oversized
// names and negative offsets are protocol violations that must be
// reported as statuses, not crash the simulation in EncodeReq or be
// shipped to the server to clip silently.
func ValidateReq(r *Req) error {
	if len(r.Name) > MaxNameLen {
		return ErrNameTooLong
	}
	if r.Off < 0 {
		return ErrInval
	}
	return nil
}

// EncodeReq serializes a request into a fresh slice.
func EncodeReq(r *Req) []byte {
	return EncodeReqInto(nil, r)
}

// EncodeReqInto appends the encoding of r to dst and returns the
// extended slice — the hot data path encodes into per-client scratch
// buffers instead of allocating per request.
//
// allocfree
func EncodeReqInto(dst []byte, r *Req) []byte {
	if len(r.Name) > 1<<15 {
		panic("rfsrv: name too long")
	}
	pos := len(dst)
	dst = append(dst, make([]byte, reqFixed+len(r.Name))...)
	out := dst[pos:]
	out[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(out[1:], r.Seq)
	out[9] = r.EP
	binary.LittleEndian.PutUint64(out[10:], uint64(r.Ino))
	binary.LittleEndian.PutUint64(out[18:], uint64(r.Off))
	binary.LittleEndian.PutUint32(out[26:], r.Len)
	binary.LittleEndian.PutUint16(out[30:], uint16(len(r.Name)))
	copy(out[reqFixed:], r.Name)
	return dst
}

// DecodeReq parses a request, returning it and the number of bytes
// consumed (the remainder of the buffer is inline write data).
func DecodeReq(b []byte) (*Req, int, error) {
	if len(b) < reqFixed {
		return nil, 0, fmt.Errorf("rfsrv: short request (%d bytes)", len(b))
	}
	r := &Req{
		Op:  Op(b[0]),
		Seq: binary.LittleEndian.Uint64(b[1:]),
		EP:  b[9],
		Ino: kernel.InodeID(binary.LittleEndian.Uint64(b[10:])),
		Off: int64(binary.LittleEndian.Uint64(b[18:])),
		Len: binary.LittleEndian.Uint32(b[26:]),
	}
	nameLen := int(binary.LittleEndian.Uint16(b[30:]))
	if len(b) < reqFixed+nameLen {
		return nil, 0, fmt.Errorf("rfsrv: truncated name")
	}
	r.Name = string(b[reqFixed : reqFixed+nameLen])
	return r, reqFixed + nameLen, nil
}

// Status codes.
const (
	StOK int32 = iota
	StNotFound
	StExists
	StNotDir
	StIsDir
	StNotEmpty
	StBadOffset
	StIO
	StNameTooLong
	StInval
	// StStale rejects an OpSetSize whose observed size epoch is behind
	// the server's: the writer's cached view of the file's size is no
	// longer valid. The reply carries the authoritative (size, epoch),
	// so the writer revalidates and retries in one round trip.
	StStale
	// StBusy rejects a mutation of a directory entry that is marked by
	// an in-flight rename prepare: the entry is in transit between two
	// owner groups and must not be unlinked or re-prepared toward a
	// different destination until the rename finalizes or aborts.
	StBusy
	// StNotOwner rejects a namespace mutation sent to a sharded server
	// that does not own the directory's slice of the namespace — a
	// routing bug on the client, never a retryable condition.
	StNotOwner
)

// StatusOf maps a filesystem error to a wire status.
func StatusOf(err error) int32 {
	switch err {
	case nil:
		return StOK
	case kernel.ErrNotFound:
		return StNotFound
	case kernel.ErrExists:
		return StExists
	case kernel.ErrNotDir:
		return StNotDir
	case kernel.ErrIsDir:
		return StIsDir
	case kernel.ErrNotEmpty:
		return StNotEmpty
	case kernel.ErrBadOffset:
		return StBadOffset
	case ErrNameTooLong:
		return StNameTooLong
	case ErrInval:
		return StInval
	case ErrStaleEpoch:
		return StStale
	case ErrBusy:
		return StBusy
	case ErrNotOwner:
		return StNotOwner
	default:
		return StIO
	}
}

// ErrOf maps a wire status back to a filesystem error.
func ErrOf(st int32) error {
	//analyze:dispatch statuses
	switch st {
	case StOK:
		return nil
	case StNotFound:
		return kernel.ErrNotFound
	case StExists:
		return kernel.ErrExists
	case StNotDir:
		return kernel.ErrNotDir
	case StIsDir:
		return kernel.ErrIsDir
	case StNotEmpty:
		return kernel.ErrNotEmpty
	case StBadOffset:
		return kernel.ErrBadOffset
	case StNameTooLong:
		return ErrNameTooLong
	case StInval:
		return ErrInval
	case StStale:
		return ErrStaleEpoch
	case StBusy:
		return ErrBusy
	case StNotOwner:
		return ErrNotOwner
	case StIO:
		return fmt.Errorf("rfsrv: remote I/O error (status %d)", st)
	default:
		// Unknown statuses (a newer peer) degrade to the same remote
		// I/O error as StIO.
		return fmt.Errorf("rfsrv: remote I/O error (status %d)", st)
	}
}

// Resp is a protocol response. Every reply that resolves an inode also
// carries that inode's size epoch (see Server), so any round trip —
// data or control path — lets a cluster client revalidate its cached
// size against the coherence protocol's authority.
type Resp struct {
	Seq    uint64
	Status int32
	Attr   kernel.Attr
	// Epoch is the size epoch of the inode Attr describes. On the wire
	// it rides in the slot that used to carry Attr.Version (which no
	// client ever consumed), so introducing the coherence protocol
	// changed no message length and no fault-free timing; a decoded
	// Attr.Version is therefore always zero.
	Epoch uint64
	// MemberEpoch is the server's membership-view epoch (DESIGN.md
	// §13). On the wire it rides in the top MemberEpochBits of the
	// 64-bit epoch slot — size epochs stay far below 2^48 over any
	// realistic run — so, like Epoch and Layout before it, carrying it
	// changed no message length, and a static-membership cluster
	// (member epoch 0) stays bit-identical on the wire.
	MemberEpoch uint64
	// Layout is the stripe-layout class of the inode Attr describes
	// (DESIGN.md §10). On the wire it rides in the high nibble of the
	// kind byte — file kinds never exceeded the low nibble — so, like
	// Epoch, introducing it changed no message length and no fault-free
	// timing; pre-layout replies decode as LayoutStandard.
	Layout  LayoutClass
	N       uint32 // data bytes in the companion data transfer
	Entries []kernel.DirEntry
}

// respFixed is the fixed-size prefix of an encoded response.
const respFixed = 8 + 4 + 8 + 1 + 8 + 8 + 4 + 2

// HdrBufSize is the reply-header buffer size clients must post: fixed
// part plus room for directory listings.
const HdrBufSize = 16 * 1024

// EncodeResp serializes a response into a fresh slice. It fails only
// if a directory listing overflows HdrBufSize.
func EncodeResp(r *Resp) ([]byte, error) {
	return EncodeRespInto(nil, r)
}

// EncodeRespInto appends the encoding of r to dst and returns the
// extended slice — server workers encode replies into per-worker
// scratch buffers instead of allocating per reply.
//
// allocfree
func EncodeRespInto(dst []byte, r *Resp) ([]byte, error) {
	size := respFixed
	for _, e := range r.Entries {
		size += 8 + 1 + 2 + len(e.Name)
	}
	if size > HdrBufSize {
		//analyze:allow allocfree error path, never taken per-request
		return nil, fmt.Errorf("rfsrv: directory listing (%d bytes) exceeds reply buffer", size)
	}
	if r.Attr.Kind < 0 || r.Attr.Kind > 0xf || !ValidLayout(r.Layout) {
		// Kind and Layout share one wire byte (low/high nibble).
		//analyze:allow allocfree error path, never taken per-request
		return nil, fmt.Errorf("rfsrv: kind %d / layout %d overflow the kind byte", r.Attr.Kind, r.Layout)
	}
	pos := len(dst)
	dst = append(dst, make([]byte, size)...)
	out := dst[pos:]
	binary.LittleEndian.PutUint64(out[0:], r.Seq)
	binary.LittleEndian.PutUint32(out[8:], uint32(r.Status))
	binary.LittleEndian.PutUint64(out[12:], uint64(r.Attr.Ino))
	out[20] = byte(r.Attr.Kind) | byte(r.Layout)<<4
	binary.LittleEndian.PutUint64(out[21:], uint64(r.Attr.Size))
	binary.LittleEndian.PutUint64(out[29:], r.Epoch&SizeEpochMask|r.MemberEpoch<<MemberEpochShift)
	binary.LittleEndian.PutUint32(out[37:], r.N)
	binary.LittleEndian.PutUint16(out[41:], uint16(len(r.Entries)))
	at := respFixed
	for _, e := range r.Entries {
		binary.LittleEndian.PutUint64(out[at:], uint64(e.Ino))
		out[at+8] = byte(e.Kind)
		binary.LittleEndian.PutUint16(out[at+9:], uint16(len(e.Name)))
		copy(out[at+11:], e.Name)
		at += 11 + len(e.Name)
	}
	return dst, nil
}

// DecodeResp parses a response.
func DecodeResp(b []byte) (*Resp, error) {
	if len(b) < respFixed {
		return nil, fmt.Errorf("rfsrv: short response (%d bytes)", len(b))
	}
	r := &Resp{
		Seq:    binary.LittleEndian.Uint64(b[0:]),
		Status: int32(binary.LittleEndian.Uint32(b[8:])),
		Attr: kernel.Attr{
			Ino:  kernel.InodeID(binary.LittleEndian.Uint64(b[12:])),
			Kind: kernel.FileKind(b[20] & 0xf),
			Size: int64(binary.LittleEndian.Uint64(b[21:])),
		},
		Epoch:       binary.LittleEndian.Uint64(b[29:]) & SizeEpochMask,
		MemberEpoch: binary.LittleEndian.Uint64(b[29:]) >> MemberEpochShift,
		Layout:      LayoutClass(b[20] >> 4),
		N:           binary.LittleEndian.Uint32(b[37:]),
	}
	count := int(binary.LittleEndian.Uint16(b[41:]))
	pos := respFixed
	for i := 0; i < count; i++ {
		if len(b) < pos+11 {
			return nil, fmt.Errorf("rfsrv: truncated dirent")
		}
		e := kernel.DirEntry{
			Ino:  kernel.InodeID(binary.LittleEndian.Uint64(b[pos:])),
			Kind: kernel.FileKind(b[pos+8]),
		}
		nameLen := int(binary.LittleEndian.Uint16(b[pos+9:]))
		if len(b) < pos+11+nameLen {
			return nil, fmt.Errorf("rfsrv: truncated dirent name")
		}
		e.Name = string(b[pos+11 : pos+11+nameLen])
		r.Entries = append(r.Entries, e)
		pos += 11 + nameLen
	}
	return r, nil
}

// Client is the transport-specific RPC engine used by ORFA and ORFS.
// FabricClient is the paper-faithful synchronous implementation (one
// outstanding request, like the prototypes); Session layers a sliding
// window of in-flight requests on top of it and satisfies the same
// interface, so consumers pick their concurrency by construction.
type Client interface {
	// Meta performs a metadata operation (no bulk data).
	Meta(p *sim.Proc, req *Req) (*Resp, error)
	// Read reads up to dst.TotalLen() bytes at off into dst.
	Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error)
	// Write writes src at off.
	Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error)
}

// Match/tag layout shared by the transports: kind in the low 4 bits,
// the client endpoint above it, the sequence number above that. All
// requests share the constant reqTag (servers match them FIFO);
// replies are tagged per (seq, client endpoint) so concurrent clients
// of one server never collide.
const (
	kindReq uint64 = iota
	kindHdr
	kindData
)

const reqTag = kindReq

// allocfree
func tag(seq uint64, ep uint8, kind uint64) uint64 {
	return seq<<12 | uint64(ep)<<4 | kind
}

// MaxWriteChunk bounds the data carried by one write RPC (the server's
// bounce capacity); clients loop over larger writes.
const MaxWriteChunk = 256 * 1024
