package rfsrv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// FabricClient is the one protocol client, written once against the
// unified fabric. It replaces the former MXClient/GMClient pair: what
// used to be two parallel implementations is now a handful of
// capability branches, and the asymmetry the paper measures reads off
// the Caps directly —
//
//   - On a vectorial transport (MX) the request and its write data ride
//     in one message, read data lands straight in the caller's vector
//     (physical page-cache frames, kernel buffers or pinned user
//     memory), and waits are per-request.
//   - On a non-vectorial registering transport (GM) header and data
//     travel as separate messages, internal buffers are physically
//     addressed (kernel side) or registered once (user side), per-
//     transfer user buffers go through the transport's registration
//     cache, and completions funnel through the unique event queue
//     inside the adapter.
//
// The DisablePhysicalAPI ablation (stock GM, no §3.3 physical
// primitives) bounces non-user data through a registered staging
// buffer with a host copy each way.
type FabricClient struct {
	t        fabric.Transport
	as       *vm.AddressSpace
	kernSide bool
	server   hw.NodeID
	serverEP uint8
	myEP     uint8

	ctl  ctlBufs // the sync path's request/reply control buffers
	seq  uint64
	lock *sim.Resource

	// timeout is the per-request reply deadline; 0 (the default) waits
	// forever, keeping fault-free timing bit-identical. See
	// SetRequestTimeout.
	timeout sim.Time

	// noPhys simulates a transport without the paper's §3.3 physical
	// extension (stock GM): internal buffers are registered virtual,
	// and non-user data bounces through a registered staging region.
	noPhys    bool
	stagingVA vm.VirtAddr

	// encScratch and hdrScratch are the per-request encode and decode
	// staging slices. A client runs on one simulated process and each
	// is dead again by the time its using call returns (encodings are
	// copied into the wire buffer before any yield; decoded replies
	// copy what they keep), so one of each per client removes the
	// per-request allocation without changing any ordering.
	encScratch []byte
	hdrScratch []byte
}

// ctlBufs is one set of request/reply-header staging buffers. The
// synchronous client owns a single set; a Session owns one per window
// slot, so several requests can be on the wire without sharing
// staging memory. The embedded req is the slot's request-struct
// staging: issue paths build their request in place instead of
// allocating one per operation (it is fully encoded before the issue
// call returns, so slot reuse cannot alias an in-flight request).
type ctlBufs struct {
	reqVA, hdrVA vm.VirtAddr
	reqXS, hdrXS []mem.Extent // kernel side, physical transports: resolved once
	req          Req
}

// MXClient is the fabric client over an MX endpoint (kept as a named
// alias for the paper-facing construction surface).
type MXClient = FabricClient

// GMClient is the fabric client over a GM port.
type GMClient = FabricClient

// NewFabricClient prepares a protocol client over any fabric
// transport. The client's internal request/reply buffers live in
// bufAS: the kernel space for ORFS-style kernel clients, the process
// space for ORFA. p may be nil when the transport needs no
// registration work at setup.
func NewFabricClient(p *sim.Proc, t fabric.Transport, kernelSide bool, bufAS *vm.AddressSpace, server hw.NodeID, serverEP, myEP uint8) (*FabricClient, error) {
	if t.Caps().Stream {
		// The protocol needs tagged messages (replies are matched by
		// sequence number); a byte stream would deadlock in postHdr.
		return nil, fmt.Errorf("rfsrv: client needs a message transport, not a stream")
	}
	node := t.Node()
	c := &FabricClient{
		t: t, as: bufAS, kernSide: kernelSide,
		server: server, serverEP: serverEP, myEP: myEP,
		lock: sim.NewResource(node.Cluster.Env, "rfsrv-client-lock", 1),
	}
	if err := c.newCtlBufs(p, &c.ctl); err != nil {
		return nil, err
	}
	return c, nil
}

// newCtlBufs allocates (and, per the transport's capabilities,
// resolves or registers) one set of control buffers. Called once for
// the sync path and once per Session window slot.
func (c *FabricClient) newCtlBufs(p *sim.Proc, b *ctlBufs) error {
	alloc := c.as.Mmap
	if c.kernSide {
		alloc = c.as.MmapContig
	}
	var err error
	if b.reqVA, err = alloc(4096, "rfsrv-req"); err != nil {
		return err
	}
	if b.hdrVA, err = alloc(HdrBufSize, "rfsrv-hdr"); err != nil {
		return err
	}
	caps := c.t.Caps()
	if c.physCtl() {
		// Kernel side on a physical-capable non-vectorial transport:
		// address the internal buffers physically, no registration at
		// all (the §3.3 extension at work).
		b.reqXS, _ = c.as.Resolve(b.reqVA, 4096)
		b.hdrXS, _ = c.as.Resolve(b.hdrVA, HdrBufSize)
	} else if caps.NeedsReg {
		// User side of a registering transport: the library registers
		// its own buffers once at startup (the amortized case
		// registration is designed for).
		if err := c.t.Register(p, c.as, b.reqVA, 4096); err != nil {
			return err
		}
		if err := c.t.Register(p, c.as, b.hdrVA, HdrBufSize); err != nil {
			return err
		}
	}
	return nil
}

// NewMXClient opens MX endpoint epID (kernel or user per kernelSide)
// and prepares a fabric client over it.
func NewMXClient(m *mx.MX, epID uint8, kernelSide bool, bufAS *vm.AddressSpace, server hw.NodeID, serverEP uint8) (*MXClient, error) {
	t, err := fabric.NewMX(m, epID, kernelSide)
	if err != nil {
		return nil, err
	}
	return NewFabricClient(nil, t, kernelSide, bufAS, server, serverEP, epID)
}

// NewGMClient opens GM port portID and prepares a fabric client over
// it. cachePages sizes the registration cache; 0 disables caching
// (every user-buffer transfer pays register+deregister).
func NewGMClient(p *sim.Proc, g *gm.GM, portID uint8, kernelSide bool, bufAS *vm.AddressSpace, server hw.NodeID, serverPort uint8, cachePages int) (*GMClient, error) {
	t, err := fabric.NewGM(g, portID, kernelSide, fabric.WithCachePages(cachePages))
	if err != nil {
		return nil, err
	}
	return NewFabricClient(p, t, kernelSide, bufAS, server, serverPort, portID)
}

// Transport returns the underlying fabric transport (stats).
func (c *FabricClient) Transport() fabric.Transport { return c.t }

// SetRequestTimeout arms a per-request reply deadline of d (0 disables,
// the default): any wait for a reply header or read data gives up after
// d, withdraws its posted receive so the staging buffer is quiescent,
// and reports an error satisfying fabric.IsFault. Without a deadline a
// request to a server that dies after accepting it would hang its
// completion forever. Timeouts are strictly opt-in — an unarmed client
// schedules no timers, so fault-free runs stay bit-identical.
func (c *FabricClient) SetRequestTimeout(d sim.Time) { c.timeout = d }

// deadlineFrom converts a request's issue time into the wait budget
// remaining under the armed timeout: 0 when no timeout is armed
// (= wait forever), a floor of 1ns when the deadline already passed
// (= check for a raced-in completion, then cancel). Deadlines run from
// ISSUE, not from whenever Wait happens — several already-doomed
// requests retired back to back must expire together, not serialize a
// fresh timeout each.
func (c *FabricClient) deadlineFrom(p *sim.Proc, issued sim.Time) sim.Time {
	if c.timeout <= 0 {
		return 0
	}
	left := issued + c.timeout - p.Now()
	if left <= 0 {
		return 1
	}
	return left
}

// waitData waits a data completion for at most d (0 = forever): on
// expiry the posted receive is withdrawn — or, if it matched while the
// timer ran, waited to completion normally. ok is false only when the
// operation was withdrawn, i.e. the buffer is quiescent and no data
// ever landed.
func (c *FabricClient) waitData(p *sim.Proc, op fabric.Op, d sim.Time) (st fabric.Status, ok bool) {
	st, ok = fabric.WaitTimeout(p, op, d)
	if ok || fabric.Cancel(p, op) {
		return st, ok
	}
	return op.Wait(p), true
}

// quiesceHdr makes a reply-header receive inert without waiting a
// timeout again: withdrawn if still unmatched, consumed if the reply
// raced in. Used after a data-phase fault, when the header is presumed
// lost with the peer.
func (c *FabricClient) quiesceHdr(p *sim.Proc, b *ctlBufs, hdrOp fabric.Op, seq uint64) {
	if !fabric.Cancel(p, hdrOp) {
		c.finish(p, b, hdrOp, seq, 0) // matched: drain it (result discarded)
	}
}

// physCtl reports whether the internal request/reply buffers are
// physically addressed.
func (c *FabricClient) physCtl() bool {
	caps := c.t.Caps()
	return c.kernSide && caps.Physical && !caps.Vectors && !c.noPhys
}

// DisablePhysicalAPI switches the client to stock behaviour for
// transports whose kernel interface would otherwise use the paper's
// §3.3 physical-address primitives: internal buffers are registered
// instead, and all non-user data bounces through a registered staging
// buffer with a host copy on each transfer. Kernel-side clients on
// non-vectorial transports only.
func (c *FabricClient) DisablePhysicalAPI(p *sim.Proc) error {
	if !c.kernSide {
		return fmt.Errorf("rfsrv: DisablePhysicalAPI applies to kernel-side clients")
	}
	if c.t.Caps().Vectors {
		return fmt.Errorf("rfsrv: DisablePhysicalAPI applies to non-vectorial (GM-style) transports")
	}
	if c.noPhys {
		return nil
	}
	var err error
	if c.stagingVA, err = c.as.MmapContig(MaxWriteChunk, "rfsrv-staging"); err != nil {
		return err
	}
	// Stock GM: register everything the driver will touch.
	if err := c.t.Register(p, c.as, c.stagingVA, MaxWriteChunk); err != nil {
		return err
	}
	if err := c.t.Register(p, c.as, c.ctl.reqVA, 4096); err != nil {
		return err
	}
	if err := c.t.Register(p, c.as, c.ctl.hdrVA, HdrBufSize); err != nil {
		return err
	}
	c.noPhys = true
	c.ctl.reqXS, c.ctl.hdrXS = nil, nil
	return nil
}

// seg builds an address-typed segment over the client's own buffers.
func (c *FabricClient) seg(va vm.VirtAddr, n int) core.Segment {
	if c.kernSide {
		return core.KernelSeg(c.as, va, n)
	}
	return core.UserSeg(c.as, va, n)
}

// ctlVec describes n bytes at one of the client's internal buffers the
// way the transport wants them addressed.
func (c *FabricClient) ctlVec(va vm.VirtAddr, xs []mem.Extent, n int) core.Vector {
	if c.physCtl() {
		return physVec(mem.Clip(xs, n))
	}
	return core.Of(c.seg(va, n))
}

// postHdr posts the reply-header receive for seq into b's header
// buffer.
func (c *FabricClient) postHdr(p *sim.Proc, b *ctlBufs, seq uint64) (fabric.Op, error) {
	return c.t.PostRecv(p, core.Exact(tag(seq, c.myEP, kindHdr)), c.ctlVec(b.hdrVA, b.hdrXS, HdrBufSize))
}

// sendReq transmits pre-encoded request bytes from b's request buffer.
// On vectorial transports extra data segments ride in the same message.
func (c *FabricClient) sendEnc(p *sim.Proc, b *ctlBufs, enc []byte, extra core.Vector) error {
	if err := c.as.WriteBytes(b.reqVA, enc); err != nil {
		return err
	}
	v := c.ctlVec(b.reqVA, b.reqXS, len(enc))
	if len(extra) > 0 {
		v = append(v, extra...)
	}
	_, err := c.t.Send(p, c.server, c.serverEP, reqTag, v)
	return err
}

// sendReq encodes and transmits a request. The encoding stages through
// the client's scratch slice: sendEnc copies it into the wire buffer
// before anything can yield, so the scratch is free again on return.
func (c *FabricClient) sendReq(p *sim.Proc, b *ctlBufs, req *Req, extra core.Vector) error {
	c.encScratch = EncodeReqInto(c.encScratch[:0], req)
	return c.sendEnc(p, b, c.encScratch, extra)
}

// postData posts the read-data receive for dst, returning the op, a
// release closure for acquired (cache-managed) user memory, and — on
// the staged (noPhys) path — a fixup to run once the data length is
// known. The capability branches here are the paper's §5.2 comparison
// in four lines: vectorial transports take dst as-is; non-vectorial
// ones can receive into physical extents or a single registered user
// segment, nothing else.
func (c *FabricClient) postData(p *sim.Proc, seq uint64, dst core.Vector) (op fabric.Op, release func(), fixup func(p *sim.Proc, n int), err error) {
	if err := dst.Validate(); err != nil {
		return nil, nil, nil, err
	}
	dataMatch := core.Exact(tag(seq, c.myEP, kindData))
	if c.t.Caps().Vectors {
		op, err := c.t.PostRecv(p, dataMatch, dst)
		if err != nil {
			return nil, nil, nil, err
		}
		return op, func() {}, nil, nil
	}
	if !hasUserSeg(dst) {
		if !c.kernSide {
			return nil, nil, nil, fmt.Errorf("rfsrv: user port cannot address kernel/physical memory on this transport")
		}
		xs, err := dst.Extents()
		if err != nil {
			return nil, nil, nil, err
		}
		if c.noPhys {
			// Stock GM: receive into the registered staging buffer and
			// copy to the real destination afterwards (the extra copy
			// the physical primitives eliminate).
			n := dst.TotalLen()
			if n > MaxWriteChunk {
				return nil, nil, nil, fmt.Errorf("rfsrv: staged receive of %d bytes exceeds staging buffer", n)
			}
			op, err := c.t.PostRecv(p, dataMatch, core.Of(c.seg(c.stagingVA, max(n, 1))))
			if err != nil {
				return nil, nil, nil, err
			}
			node := c.t.Node()
			fixup := func(p *sim.Proc, got int) {
				if got == 0 {
					return
				}
				raw, err := c.as.ReadBytes(c.stagingVA, got)
				if err != nil {
					panic(err)
				}
				node.CPU.Copy(p, got)
				node.Mem.Scatter(mem.Clip(xs, got), raw)
			}
			return op, func() {}, fixup, nil
		}
		op, err := c.t.PostRecv(p, dataMatch, physVec(xs))
		if err != nil {
			return nil, nil, nil, err
		}
		return op, func() {}, nil, nil
	}
	if len(dst) != 1 {
		return nil, nil, nil, fmt.Errorf("rfsrv: cannot receive into a %d-segment vector (no vectorial primitives)", len(dst))
	}
	release, err = c.t.Acquire(p, dst)
	if err != nil {
		return nil, nil, nil, err
	}
	op, err = c.t.PostRecv(p, dataMatch, dst)
	if err != nil {
		release()
		return nil, nil, nil, err
	}
	return op, release, nil, nil
}

// sendData transmits write data as its own message (non-vectorial
// transports only).
func (c *FabricClient) sendData(p *sim.Proc, seq uint64, src core.Vector) (func(), error) {
	dataTag := tag(seq, c.myEP, kindData)
	if !hasUserSeg(src) {
		if !c.kernSide {
			return nil, fmt.Errorf("rfsrv: user port cannot address kernel/physical memory on this transport")
		}
		xs, err := src.Extents()
		if err != nil {
			return nil, err
		}
		if c.noPhys {
			// Stock GM: stage through the registered buffer.
			n := mem.TotalLen(xs)
			if n > MaxWriteChunk {
				return nil, fmt.Errorf("rfsrv: staged send of %d bytes exceeds staging buffer", n)
			}
			node := c.t.Node()
			data := node.Mem.Gather(xs)
			node.CPU.Copy(p, n)
			if err := c.as.WriteBytes(c.stagingVA, data); err != nil {
				return nil, err
			}
			_, err := c.t.Send(p, c.server, c.serverEP, dataTag, core.Of(c.seg(c.stagingVA, n)))
			return func() {}, err
		}
		_, err = c.t.Send(p, c.server, c.serverEP, dataTag, physVec(xs))
		return func() {}, err
	}
	if len(src) != 1 {
		return nil, fmt.Errorf("rfsrv: cannot send a %d-segment vector (no vectorial primitives)", len(src))
	}
	release, err := c.t.Acquire(p, src)
	if err != nil {
		return nil, err
	}
	if _, err := c.t.Send(p, c.server, c.serverEP, dataTag, src); err != nil {
		release()
		return nil, err
	}
	return release, nil
}

// finish waits for the header reply (at most d; 0 = forever) and
// decodes it from b's header buffer. On expiry the posted receive is
// withdrawn (so the slot's buffer can be reused) and the error
// satisfies fabric.IsFault.
func (c *FabricClient) finish(p *sim.Proc, b *ctlBufs, hdrOp fabric.Op, seq uint64, d sim.Time) (*Resp, error) {
	st, ok := fabric.WaitTimeout(p, hdrOp, d)
	if !ok {
		if !fabric.Cancel(p, hdrOp) {
			st, ok = hdrOp.Wait(p), true // matched during the race
		}
	}
	if !ok {
		return nil, fmt.Errorf("rfsrv: reply for request %d: %w", seq, fabric.ErrTimeout)
	}
	if st.Err != nil {
		return nil, st.Err
	}
	if cap(c.hdrScratch) < st.Len {
		c.hdrScratch = make([]byte, HdrBufSize)
	}
	raw := c.hdrScratch[:st.Len]
	if err := c.as.ReadBytesInto(b.hdrVA, raw); err != nil {
		return nil, err
	}
	// DecodeResp copies everything it keeps (names become fresh
	// strings), so the scratch is free for the next reply.
	resp, err := DecodeResp(raw)
	if err != nil {
		return nil, err
	}
	if resp.Seq != seq {
		return nil, fmt.Errorf("rfsrv: reply for seq %d, want %d", resp.Seq, seq)
	}
	if err := ErrOf(resp.Status); err != nil {
		return resp, err
	}
	return resp, nil
}

// Meta implements Client.
func (c *FabricClient) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	if err := ValidateReq(req); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.seq++
	req.Seq, req.EP = c.seq, c.myEP
	hdrOp, err := c.postHdr(p, &c.ctl, req.Seq)
	if err != nil {
		return nil, err
	}
	if err := c.sendReq(p, &c.ctl, req, nil); err != nil {
		// The request never left (e.g. dead-peer rejection): withdraw
		// the posted receive so the control buffer stays quiescent.
		fabric.Cancel(p, hdrOp)
		return nil, err
	}
	return c.finish(p, &c.ctl, hdrOp, req.Seq, c.timeout)
}

// Rename implements Renamer over one server: a single OpRenameLocal.
func (c *FabricClient) Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) (*Resp, error) {
	return c.Meta(p, &Req{
		Op: OpRenameLocal, Ino: srcDir, Off: int64(dstDir),
		Name: PackRenameNames(srcName, dstName),
	})
}

// Read implements Client: data lands directly in dst wherever the
// transport allows it.
func (c *FabricClient) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.seq++
	seq := c.seq
	req := &c.ctl.req // slot-staged: encoded before the next request
	*req = Req{Op: OpRead, Seq: seq, EP: c.myEP, Ino: ino, Off: off, Len: uint32(dst.TotalLen())}
	hdrOp, err := c.postHdr(p, &c.ctl, seq)
	if err != nil {
		return nil, err
	}
	dataOp, release, fixup, err := c.postData(p, seq, dst)
	if err != nil {
		fabric.Cancel(p, hdrOp)
		return nil, err
	}
	defer release()
	if err := c.sendReq(p, &c.ctl, req, nil); err != nil {
		// The request never left: withdraw both posted receives — the
		// control buffer AND the caller's data vector must be
		// quiescent, not parked under stale seq tags (failover retries
		// reach this path against possibly-dead replicas).
		fabric.Cancel(p, dataOp)
		fabric.Cancel(p, hdrOp)
		return nil, err
	}
	st, ok := c.waitData(p, dataOp, c.timeout)
	if !ok {
		c.quiesceHdr(p, &c.ctl, hdrOp, seq)
		return nil, fmt.Errorf("rfsrv: read data for request %d: %w", seq, fabric.ErrTimeout)
	}
	if st.Err != nil {
		// A failed data completion (e.g. truncation) still leaves the
		// header receive armed on the shared control buffer — quiesce
		// it before the next request posts over the same staging.
		c.quiesceHdr(p, &c.ctl, hdrOp, seq)
		return nil, st.Err
	}
	if fixup != nil {
		fixup(p, st.Len)
	}
	return c.finish(p, &c.ctl, hdrOp, seq, c.timeout)
}

// Write implements Client: on vectorial transports write data rides in
// the request message itself; otherwise it follows as its own message.
// Either way it is chunked at MaxWriteChunk.
func (c *FabricClient) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	c.lock.Acquire(p)
	defer c.lock.Release()
	vectors := c.t.Caps().Vectors
	total := src.TotalLen()
	written := 0
	var last *Resp
	for written < total || total == 0 {
		chunk := total - written
		if chunk > MaxWriteChunk {
			chunk = MaxWriteChunk
		}
		c.seq++
		seq := c.seq
		req := &c.ctl.req // slot-staged, like Read
		*req = Req{Op: OpWrite, Seq: seq, EP: c.myEP, Ino: ino, Off: off + int64(written), Len: uint32(chunk)}
		hdrOp, err := c.postHdr(p, &c.ctl, seq)
		if err != nil {
			return nil, err
		}
		release := func() {}
		if vectors {
			if err := c.sendReq(p, &c.ctl, req, src.Slice(written, chunk)); err != nil {
				fabric.Cancel(p, hdrOp)
				return nil, err
			}
		} else {
			if err := c.sendReq(p, &c.ctl, req, nil); err != nil {
				fabric.Cancel(p, hdrOp)
				return nil, err
			}
			if release, err = c.sendData(p, seq, src.Slice(written, chunk)); err != nil {
				fabric.Cancel(p, hdrOp)
				return nil, err
			}
		}
		resp, err := c.finish(p, &c.ctl, hdrOp, seq, c.timeout)
		release()
		if err != nil {
			return resp, err
		}
		written += int(resp.N)
		last = resp
		if total == 0 {
			break
		}
		if resp.N == 0 {
			return last, fmt.Errorf("rfsrv: short write at %d", written)
		}
	}
	if last == nil {
		last = &Resp{}
	}
	last.N = uint32(written)
	return last, nil
}

func hasUserSeg(v core.Vector) bool {
	for _, s := range v {
		if s.Type == core.UserVirtual {
			return true
		}
	}
	return false
}

func physVec(xs []mem.Extent) core.Vector {
	out := make(core.Vector, 0, len(xs))
	for _, x := range xs {
		out = append(out, core.PhysSeg(x.Addr, x.Len))
	}
	return out
}

var _ Client = (*FabricClient)(nil)
