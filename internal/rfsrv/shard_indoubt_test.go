package rfsrv_test

// In-doubt rename resolution under replicated ownership (DESIGN.md
// §11–§13): both kill points of the three-phase rename driven to
// ErrRenameInDoubt with R=2 owner groups, asserting the namespace
// lands in exactly one of the two legal states and that it collapses
// — by re-driving the SAME rename, or by Reinstate replaying the
// journaled finalize the lagging members missed. Plus the §11 walk
// transient (one inode visible under both names while the source
// cleanup lags, with the marked entry refusing mutation), and the
// sharding/layout-policy composition pin (ErrShardLayoutConflict in
// both orders, through the knapi alias too).

import (
	"errors"
	"testing"
	"time"

	knapi "repro"
	"repro/internal/kernel"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// observerRep builds a second, fresh replicated client over the same
// rig on its own endpoints (30+i, clear of clusterRep's 10+i): a
// client with no exclusion history, standing in for a recovering
// application node.
func (r *clusterRig) observerRep(t *testing.T, p *sim.Proc, replicas int) *rfsrv.Cluster {
	t.Helper()
	sessions := make([]*rfsrv.Session, len(r.servers))
	for i, srv := range r.servers {
		fc, err := rfsrv.NewMXClient(r.clientMX, uint8(30+i), true, r.client.Kernel, srv.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		fc.SetRequestTimeout(faultTimeout)
		if sessions[i], err = rfsrv.NewSession(p, fc, 4); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := rfsrv.NewReplicatedCluster(p, sessions, testStripe, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// shardObserver is observerRep with the sharded namespace enabled: the
// re-drive vantage point for an in-doubt rename the observer did not
// issue.
func (r *clusterRig) shardObserver(t *testing.T, p *sim.Proc, replicas int) *rfsrv.Cluster {
	t.Helper()
	cl := r.observerRep(t, p, replicas)
	if err := cl.EnableShardedNamespace(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestShardRenameInDoubtAbortFaultStateA drives the FIRST in-doubt
// kill point under R=2: the destination owner group dies before the
// commit, and the source group dies before the abort can clean up —
// the client cannot learn the commit's fate OR settle the source, so
// it must surface ErrRenameInDoubt. The true state is state A (the
// commit never applied): both source members still hold the marked
// entry, neither destination member holds the link. Every slice is
// bump-free on this path, so all four servers readmit cleanly, and
// re-driving the SAME rename from the SAME client rides the
// idempotent prepare marks to completion (state B everywhere).
func TestShardRenameInDoubtAbortFaultStateA(t *testing.T) {
	r := newShardRig(t, 4, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 2)
		src := mkdirRes(t, p, cl, 4, 1, "s") // owner group {1,2}
		dst := mkdirRes(t, p, cl, 4, 3, "d") // owner group {3,0}
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: src, Name: "f"})
		if err != nil {
			t.Fatal(err)
		}
		fino := resp.Attr.Ino

		// The destination members swallow the commit: their NICs are
		// stalled when its frames arrive and killed before the stall
		// drains, so the commit never applies and its flights only die
		// by the faultTimeout=2ms deadline. The source members die at
		// 1.5ms — after the (healthy, sub-millisecond) prepare round
		// trip, before the abort the commit timeout triggers.
		r.servers[3].NIC.StallFor(10 * time.Millisecond)
		r.servers[0].NIC.StallFor(10 * time.Millisecond)
		r.servers[3].NIC.KillAfter(1 * time.Millisecond)
		r.servers[0].NIC.KillAfter(1 * time.Millisecond)
		r.servers[1].NIC.KillAfter(1500 * time.Microsecond)
		r.servers[2].NIC.KillAfter(1500 * time.Microsecond)
		_, rerr := cl.Rename(p, src, "f", dst, "g")
		if !errors.Is(rerr, rfsrv.ErrRenameInDoubt) {
			t.Fatalf("rename = %v, want ErrRenameInDoubt", rerr)
		}
		if cl.RenameInDoubts.N != 1 {
			t.Fatalf("RenameInDoubts = %d, want 1", cl.RenameInDoubts.N)
		}

		// State A: the commit never reached the destination group, so
		// the source members keep the (marked) entry and the
		// destination members have nothing.
		for _, i := range []int{1, 2} {
			if a, err := r.serverFS[i].Lookup(p, src, "f"); err != nil || a.Ino != fino {
				t.Fatalf("state A: source member %d entry = %+v, %v; want ino %d", i, a, err, fino)
			}
		}
		for _, i := range []int{3, 0} {
			if _, err := r.serverFS[i].Lookup(p, dst, "g"); !errors.Is(err, kernel.ErrNotFound) {
				t.Fatalf("state A: destination member %d holds the link (err=%v), want absent", i, err)
			}
		}

		// No slice mutated (prepare marks bump nothing), so every
		// server — including the two that missed the abort — readmits
		// without a resync.
		for _, n := range r.servers {
			n.NIC.Revive()
		}
		p.Sleep(2 * faultTimeout)
		for i := range r.servers {
			if err := cl.Reinstate(p, i); err != nil {
				t.Fatalf("reinstate server %d after state-A in-doubt: %v", i, err)
			}
		}
		if cl.Reinstates.N != 4 {
			t.Fatalf("Reinstates = %d, want 4", cl.Reinstates.N)
		}

		// Re-driving the same rename resolves the doubt: the prepare is
		// answered idempotently from the surviving marks, the commit
		// links, the finalize detaches — state B on every member.
		if _, err := cl.Rename(p, src, "f", dst, "g"); err != nil {
			t.Fatalf("re-driven rename: %v", err)
		}
		for _, i := range []int{1, 2} {
			if _, err := r.serverFS[i].Lookup(p, src, "f"); !errors.Is(err, kernel.ErrNotFound) {
				t.Fatalf("source member %d kept the entry after the re-drive (err=%v)", i, err)
			}
		}
		for _, i := range []int{3, 0} {
			if a, err := r.serverFS[i].Lookup(p, dst, "g"); err != nil || a.Ino != fino {
				t.Fatalf("destination member %d entry = %+v, %v; want ino %d", i, a, err, fino)
			}
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestShardRenameInDoubtFinalizeFaultStateB drives the SECOND in-doubt
// kill point under R=2: the commit applies at the destination group
// but the whole source group dies before the finalize — state B with
// the source cleanup lagging on BOTH members. The issuing client
// journaled the missed finalize for each, so Reinstate replays it and
// both members readmit with their lagging entries detached; a fresh
// observer then sees only the settled committed state.
func TestShardRenameInDoubtFinalizeFaultStateB(t *testing.T) {
	r := newShardRig(t, 4, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 2)
		src := mkdirRes(t, p, cl, 4, 1, "s") // owner group {1,2}
		dst := mkdirRes(t, p, cl, 4, 3, "d") // owner group {3,0}
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: src, Name: "f"})
		if err != nil {
			t.Fatal(err)
		}
		fino := resp.Attr.Ino

		// Stall the destination group so the commit lands around 1ms —
		// after both source members die at 500µs (the prepare, at
		// healthy round-trip speed, is long done by then).
		r.servers[3].NIC.StallFor(1 * time.Millisecond)
		r.servers[0].NIC.StallFor(1 * time.Millisecond)
		r.servers[1].NIC.KillAfter(500 * time.Microsecond)
		r.servers[2].NIC.KillAfter(500 * time.Microsecond)
		_, rerr := cl.Rename(p, src, "f", dst, "g")
		if !errors.Is(rerr, rfsrv.ErrRenameInDoubt) {
			t.Fatalf("rename = %v, want ErrRenameInDoubt", rerr)
		}

		// State B: both destination members hold the committed link;
		// both source members still hold the entry the finalize never
		// detached.
		for _, i := range []int{3, 0} {
			if a, err := r.serverFS[i].Lookup(p, dst, "g"); err != nil || a.Ino != fino {
				t.Fatalf("state B: destination member %d entry = %+v, %v; want ino %d", i, a, err, fino)
			}
		}
		for _, i := range []int{1, 2} {
			if a, err := r.serverFS[i].Lookup(p, src, "f"); err != nil || a.Ino != fino {
				t.Fatalf("state B: source member %d lost its lagging entry (%+v, %v)", i, a, err)
			}
		}

		// Both source members missed the finalize of a committed rename,
		// and the issuing client journaled it for each: readmission
		// replays the cleanup instead of refusing.
		r.servers[1].NIC.Revive()
		r.servers[2].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		for _, i := range []int{1, 2} {
			if err := cl.Reinstate(p, i); err != nil {
				t.Fatalf("reinstate lagging source member %d (journaled finalize): %v", i, err)
			}
		}
		if cl.ReinstateRefusals.N != 0 {
			t.Fatalf("ReinstateRefusals = %d, want 0 (journaled replay, not refusal)", cl.ReinstateRefusals.N)
		}
		if cl.ResyncOps.N != 2 {
			t.Fatalf("ResyncOps = %d, want 2 (one finalize per lagging member)", cl.ResyncOps.N)
		}
		for _, i := range []int{1, 2} {
			if _, err := r.serverFS[i].Lookup(p, src, "f"); !errors.Is(err, kernel.ErrNotFound) {
				t.Fatalf("source member %d kept the entry after the replayed finalize (err=%v)", i, err)
			}
		}

		// A fresh observer (no exclusion history, no doubt record) walks
		// a settled namespace: only the committed state is visible.
		obs := r.shardObserver(t, p, 2)
		if a, err := obs.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: dst, Name: "g"}); err != nil || a.Attr.Ino != fino {
			t.Fatalf("observer lookup of the committed name = %+v, %v; want ino %d", a, err, fino)
		}
		if _, err := obs.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: src, Name: "f"}); !errors.Is(err, kernel.ErrNotFound) {
			t.Fatalf("observer still sees the old name (err=%v), want ErrNotFound", err)
		}
		assertWindowsIdle(t, obs)
		r.checkNoLeaks(t)
	})
}

// TestShardRenameInDoubtReaddirWalk pins the §11 walk transient: while
// a committed rename's source cleanup lags, ONE inode is legally
// visible under BOTH names — the destination readdir shows the new
// entry, the lagging source readdir still shows the old one, and both
// lookups resolve to the same inode. The marked source entry refuses
// mutation with ErrBusy until the rename is re-driven, which collapses
// the walk back to a single name.
func TestShardRenameInDoubtReaddirWalk(t *testing.T) {
	r := newShardRig(t, 4, 1)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 1)
		src := mkdirRes(t, p, cl, 4, 1, "s")
		dst := mkdirRes(t, p, cl, 4, 2, "d")
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: src, Name: "f"})
		if err != nil {
			t.Fatal(err)
		}
		fino := resp.Attr.Ino

		// Commit applies (~1ms, behind the destination stall), source
		// owner dies at 500µs: finalize faults, state B, in doubt.
		r.servers[2].NIC.StallFor(1 * time.Millisecond)
		r.servers[1].NIC.KillAfter(500 * time.Microsecond)
		if _, rerr := cl.Rename(p, src, "f", dst, "g"); !errors.Is(rerr, rfsrv.ErrRenameInDoubt) {
			t.Fatalf("rename = %v, want ErrRenameInDoubt", rerr)
		}
		r.servers[1].NIC.Revive()
		p.Sleep(2 * faultTimeout)

		// A fresh observer walks the transient: the file answers under
		// both names, from both directories.
		obs := r.shardObserver(t, p, 1)
		readdir := func(dir kernel.InodeID) map[string]bool {
			resp, err := obs.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: dir})
			if err != nil {
				t.Fatalf("readdir %d: %v", dir, err)
			}
			names := make(map[string]bool, len(resp.Entries))
			for _, e := range resp.Entries {
				names[e.Name] = true
			}
			return names
		}
		if names := readdir(src); !names["f"] {
			t.Fatalf("lagging source readdir = %v, want the old name still visible", names)
		}
		if names := readdir(dst); !names["g"] {
			t.Fatalf("destination readdir = %v, want the committed name", names)
		}
		sa, err := obs.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: src, Name: "f"})
		if err != nil || sa.Attr.Ino != fino {
			t.Fatalf("lookup via the old name = %+v, %v; want ino %d", sa, err, fino)
		}
		da, err := obs.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: dst, Name: "g"})
		if err != nil || da.Attr.Ino != fino {
			t.Fatalf("lookup via the new name = %+v, %v; want ino %d", da, err, fino)
		}

		// The lagging entry is marked: mutation is refused until the
		// rename resolves.
		if _, err := obs.Meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: src, Name: "f"}); !errors.Is(err, rfsrv.ErrBusy) {
			t.Fatalf("unlink of the marked entry = %v, want ErrBusy", err)
		}

		// Re-driving the rename collapses the walk to one name.
		if _, err := obs.Rename(p, src, "f", dst, "g"); err != nil {
			t.Fatalf("observer re-drive: %v", err)
		}
		if names := readdir(src); names["f"] {
			t.Fatal("old name still visible after the re-drive")
		}
		if names := readdir(dst); !names["g"] {
			t.Fatal("committed name vanished after the re-drive")
		}
		assertWindowsIdle(t, obs)
		r.checkNoLeaks(t)
	})
}

// TestShardLayoutPolicyConflict pins the composition rule: the sharded
// namespace and the per-file layout policy (§10) are mutually
// exclusive in EITHER order — and so is the batched size publish,
// which rides the sharded plumbing. The refusals must match
// ErrShardLayoutConflict through errors.Is, including via the public
// knapi alias.
func TestShardLayoutPolicyConflict(t *testing.T) {
	r := newShardRig(t, 2, 1)
	r.run(t, func(p *sim.Proc) {
		// Order 1: sharding first, then the policy.
		cl := r.shardClient(t, p, 1)
		err := cl.SetLayoutPolicy(rfsrv.LayoutPolicy{Adaptive: true})
		if !errors.Is(err, rfsrv.ErrShardLayoutConflict) {
			t.Fatalf("SetLayoutPolicy on a sharded cluster = %v, want ErrShardLayoutConflict", err)
		}
		if !errors.Is(err, knapi.ErrFSShardLayoutConflict) {
			t.Fatalf("conflict error does not match the knapi alias: %v", err)
		}
		if _, on := cl.LayoutPolicy(); on {
			t.Fatal("refused policy engaged anyway")
		}

		// Order 2: policy first, then sharding (and then the batched
		// publish, which needs a policy-free cluster for the same
		// reason).
		obs := r.observerRep(t, p, 1)
		if err := obs.SetLayoutPolicy(rfsrv.LayoutPolicy{Adaptive: true}); err != nil {
			t.Fatalf("SetLayoutPolicy on a plain cluster: %v", err)
		}
		err = obs.EnableShardedNamespace()
		if !errors.Is(err, rfsrv.ErrShardLayoutConflict) {
			t.Fatalf("EnableShardedNamespace under a policy = %v, want ErrShardLayoutConflict", err)
		}
		if obs.ShardedNamespace() {
			t.Fatal("refused sharding engaged anyway")
		}
		err = obs.SetSizePublishBatch(4)
		if !errors.Is(err, rfsrv.ErrShardLayoutConflict) {
			t.Fatalf("SetSizePublishBatch under a policy = %v, want ErrShardLayoutConflict", err)
		}
	})
}
