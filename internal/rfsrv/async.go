package rfsrv

// This file defines the asynchronous client surface shared by the two
// pipelined clients — *Session (one server) and *Cluster (data striped
// across several servers). Consumers that overlap requests (ORFS
// readahead/write-behind, ORFA chunked reads, the figures harness)
// program against Async and work unchanged over either, so adding the
// striping layer did not fork the in-kernel applications.

import (
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// PendingOp is one in-flight read or write: the common face of a
// Session's *Pending and a Cluster's striped pending (which fans a
// single logical operation out over several per-server requests).
type PendingOp interface {
	// Wait retires the operation and returns its merged response.
	// Waiting twice returns the memoized result; pendings of one
	// client may be waited in any order.
	Wait(p *sim.Proc) (*Resp, error)
	// Issued returns the virtual time the operation entered its window
	// (latency accounting).
	Issued() sim.Time
}

// Async is a pipelined protocol client: the synchronous Client surface
// plus issue-without-waiting operations flowing through a sliding
// window. Implemented by *Session and *Cluster.
//
// Deadlock discipline: StartRead/StartWrite block while every window
// slot they need is occupied, and slots are only recycled by Wait. A
// caller holding unretired pendings must therefore check CanStart (and
// retire its oldest pending when it reports false) before issuing, or
// it can block with nobody left to drain the window.
type Async interface {
	Client

	// StartRead issues a read of dst.TotalLen() bytes at off without
	// waiting for completion.
	StartRead(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (PendingOp, error)
	// StartWrite issues one write request (src at most MaxWriteChunk)
	// without waiting for completion.
	StartWrite(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (PendingOp, error)
	// MetaBatch issues several metadata requests combined into as few
	// fabric sends as the window allows (§3.3-style request combining).
	MetaBatch(p *sim.Proc, reqs []*Req) ([]*Resp, error)

	// Window returns the total number of requests that may be
	// outstanding at once (summed over servers on a cluster).
	Window() int
	// InFlight returns the number of requests currently outstanding
	// (summed over servers on a cluster).
	InFlight() int
	// CanStart reports whether a read or write on ino covering
	// [off, off+n) could be issued right now without blocking on a full
	// window. On a cluster this consults exactly the servers owning
	// that byte range — which depends on the inode since layouts became
	// per-file (a whole-on-home file needs one slot on its home where a
	// striped one spreads) — so callers pace per-server pipelines
	// without knowing the layout. It never touches the wire: an inode
	// whose layout is not yet cached is paced as standard.
	CanStart(ino kernel.InodeID, off int64, n int) bool
	// Node returns the client node (consumers allocate frames and
	// charge copies against it).
	Node() *hw.Node
}

// Renamer is the optional rename capability of a protocol client:
// move (srcName in srcDir) to (dstName in dstDir). On a single server
// it is one OpRenameLocal; on a sharded cluster it is the two-phase
// cross-owner protocol, whose interrupted runs surface as
// ErrRenameInDoubt (re-drive the same rename to resolve). Consumers
// (orfs, orfa) type-assert for it so clients without rename keep
// working.
type Renamer interface {
	Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) (*Resp, error)
}

// Compile-time checks: both pipelined clients satisfy Async, and all
// three clients rename.
var (
	_ Async = (*Session)(nil)
	_ Async = (*Cluster)(nil)

	_ Renamer = (*FabricClient)(nil)
	_ Renamer = (*Session)(nil)
	_ Renamer = (*Cluster)(nil)
)
