package rfsrv_test

// Fault-injected cluster tests: replicated reads failing over a killed
// server, writes tolerating a lost replica, timeout-driven slot and
// staging recovery (with fabric.Pool.CheckLeaks asserting nothing can
// ever recycle), OpSetSize reconciliation retry after a transient
// fault, cross-client truncate-then-overwrite coherence, and the
// Reinstate contract (mutation-epoch refusal, targeted size-cache
// invalidation, reconciliation replay across an excluded home).

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// faultTimeout is the per-request reply deadline used by the fault
// tests: far above any healthy round trip in these tiny rigs, far
// below the point a hang would look like progress.
const faultTimeout = 2 * time.Millisecond

// clusterRep builds a replicated striped client over the rig: one
// kernel-side MX session per server on distinct endpoints, every
// session with the reply deadline armed.
func (r *clusterRig) clusterRep(t *testing.T, p *sim.Proc, window, stripe, replicas int) *rfsrv.Cluster {
	t.Helper()
	sessions := make([]*rfsrv.Session, len(r.servers))
	for i, srv := range r.servers {
		fc, err := rfsrv.NewMXClient(r.clientMX, uint8(10+i), true, r.client.Kernel, srv.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		fc.SetRequestTimeout(faultTimeout)
		if sessions[i], err = rfsrv.NewSession(p, fc, window); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := rfsrv.NewReplicatedCluster(p, sessions, stripe, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// checkNoLeaks asserts every node's shared fabric pool has nothing
// that can never recycle — the PR's leak bar for the fault paths.
func (r *clusterRig) checkNoLeaks(t *testing.T) {
	t.Helper()
	if err := fabric.PoolOf(r.client).CheckLeaks(); err != nil {
		t.Errorf("client pool: %v", err)
	}
	for i, srv := range r.servers {
		if err := fabric.PoolOf(srv).CheckLeaks(); err != nil {
			t.Errorf("server %d pool: %v", i, err)
		}
	}
}

// assertWindowsIdle asserts no session of the cluster still holds
// window slots (every pending retired).
func assertWindowsIdle(t *testing.T, cl *rfsrv.Cluster) {
	t.Helper()
	for i, s := range cl.Sessions() {
		if s.InFlight() != 0 {
			t.Errorf("server %d session still holds %d window slots", i, s.InFlight())
		}
	}
}

// TestClusterReadFailoverAfterKill kills one of three servers between
// a replicated write and a full read-back: every stripe owned by the
// victim must be served by its replica, byte-exact, with the victim
// recorded as excluded — and no pooled staging may leak anywhere.
func TestClusterReadFailoverAfterKill(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 9 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if resp, err := cl.Write(p, ino, 0, vec); err != nil || int(resp.N) != size {
			t.Fatalf("replicated write: n=%d err=%v", resp.N, err)
		}
		// Replica placement: every stripe must be on its primary AND the
		// next server.
		pagesPerStripe := testStripe / mem.PageSize
		for k := 0; k < size/testStripe; k++ {
			for rep := 0; rep < 2; rep++ {
				s := (k + rep) % 3
				if r.serverFS[s].FrameAt(ino, int64(k*pagesPerStripe)) == nil {
					t.Fatalf("stripe %d missing on replica %d (server %d)", k, rep, s)
				}
			}
		}

		r.servers[0].NIC.Kill()

		rva, rvec := r.kbuf(t, size)
		resp, err := cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("read across kill: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("failover read returned wrong bytes")
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 0 {
			t.Fatalf("down servers = %v, want [0]", down)
		}
		if cl.Failovers.N == 0 {
			t.Error("no failovers counted across a kill")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterPipelinedFailoverReleasesSlots is the satellite-1 bar for
// the async path: striped reads are mid-flight through the windows
// when the victim dies, so some parts fault at Wait (timeout or
// dead-peer) while siblings complete. Every drained part must release
// its window slot and its pooled staging; the reads must still return
// the right bytes via failover.
func TestClusterPipelinedFailoverReleasesSlots(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 2)
		const size = 12 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}

		// Fill the windows with stripe reads, then kill the victim while
		// they are in flight.
		var pds []rfsrv.PendingOp
		for k := 0; k < 6; k++ {
			_, rvec := r.kbuf(t, testStripe)
			pd, err := cl.StartRead(p, ino, int64(k)*testStripe, rvec)
			if err != nil {
				t.Fatal(err)
			}
			pds = append(pds, pd)
		}
		r.servers[0].NIC.Kill()
		for k, pd := range pds {
			resp, err := pd.Wait(p)
			if err != nil || int(resp.N) != testStripe {
				t.Fatalf("pipelined read %d across kill: n=%d err=%v", k, resp.N, err)
			}
		}
		// And a second full pass after the exclusion settled.
		rva, rvec := r.kbuf(t, size)
		resp, err := cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("post-exclusion read: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("post-exclusion read returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterWriteSurvivesReplicaLoss kills a server and then writes:
// runs whose primary died land on the replica alone, the write
// reports full success, the data reads back, and namespace mutations
// keep working with the victim excluded instead of reporting
// divergence.
func TestClusterWriteSurvivesReplicaLoss(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 6 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")

		r.servers[1].NIC.Kill()

		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		resp, err := cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("write with dead replica: n=%d err=%v", resp.N, err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down servers = %v, want [1]", down)
		}
		// Namespace mutations must tolerate the exclusion (no divergence).
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "d"}); err != nil {
			t.Fatalf("mkdir with excluded server: %v", err)
		}
		rva, rvec := r.kbuf(t, size)
		resp, err = cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("read back: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("read back wrong bytes after degraded write")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterAllReplicasDownFails pins the failure floor: with every
// replica of a stripe excluded, reads and writes report a fault error
// (fabric.IsFault) instead of hanging or fabricating data.
func TestClusterAllReplicasDownFails(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 2)
		const size = 2 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, pattern(size)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}
		r.servers[0].NIC.Kill()
		r.servers[1].NIC.Kill()
		rva, rvec := r.kbuf(t, size)
		_, err := cl.Read(p, ino, 0, rvec)
		if err == nil {
			t.Fatal("read with every server dead succeeded")
		}
		if !fabric.IsFault(err) {
			t.Fatalf("read error %v is not a transport fault", err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err == nil || !fabric.IsFault(err) {
			t.Fatalf("write with every server dead: err=%v, want fault", err)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
		_ = rva
	})
}

// TestClusterSetSizeRetryAfterTransientFault is the PR 4 satellite-2
// regression carried into the coherence protocol: a transient fault
// (stalled NIC, longer than the reply deadline) hits exactly the
// OpSetSize reconciliation fan-out of a write whose data lives
// entirely on the other server. The write must still succeed with the
// stalled server excluded and its local size stale; after the stall
// clears and the operator reinstates the server (allowed: no namespace
// or exact-size mutation ran during the exclusion), RE-RUNNING the
// same write must replay OpSetSize — grow-only, idempotent, so
// replaying against a server that meanwhile caught up (or not)
// converges every local size. (The entry was established during the
// exclusion, so the targeted invalidation drops it at Reinstate; the
// file is additionally chosen with its hashed metadata home on the
// faulting server, so homed getattr routing is exercised across the
// exclusion too.) A second explicit replay pins the idempotence
// itself.
func TestClusterSetSizeRetryAfterTransientFault(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 1)
		// Pick a file homed on server 1: its single stripe lives on
		// server 0, so data and reconciliation hit disjoint servers and
		// the home is exactly the one that faults.
		var ino kernel.InodeID
		for i := 0; i < 16; i++ {
			cand := clusterCreate(t, p, cl, fmt.Sprintf("f%d", i))
			if cl.HomeServer(cand) == 1 {
				ino = cand
				break
			}
		}
		if ino == 0 {
			t.Fatal("no candidate file homed on server 1")
		}
		va, vec := r.kbuf(t, testStripe)
		if err := r.client.Kernel.WriteBytes(va, pattern(testStripe)); err != nil {
			t.Fatal(err)
		}

		r.servers[1].NIC.StallFor(10 * faultTimeout)
		resp, err := cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != testStripe {
			t.Fatalf("write across stalled reconciliation: n=%d err=%v", resp.N, err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down servers = %v, want [1] (setsize fan-out faulted)", down)
		}
		if a, _ := r.serverFS[0].Getattr(p, ino); a.Size != testStripe {
			t.Fatalf("data server size = %d, want %d", a.Size, testStripe)
		}

		// Let the stall clear (and its late deliveries drain), then
		// reinstate and re-run the same write: setSizeTo must replay.
		p.Sleep(20 * faultTimeout)
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate after mutation-free exclusion: %v", err)
		}
		resp, err = cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != testStripe {
			t.Fatalf("re-run write after transient fault: n=%d err=%v", resp.N, err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != testStripe {
				t.Fatalf("server %d size = %d after retry, want %d", s, a.Size, testStripe)
			}
		}
		if len(cl.DownServers()) != 0 {
			t.Fatalf("server still excluded after reinstate+retry: %v", cl.DownServers())
		}

		// Idempotence proper: replaying a grow-mode OpSetSize against
		// already-extended servers changes nothing (the cluster stamps
		// the observed epoch itself).
		before := make([]int64, len(r.serverFS))
		for s, fs := range r.serverFS {
			a, _ := fs.Getattr(p, ino)
			before[s] = a.Size
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpSetSize, Ino: ino, Off: testStripe}); err != nil {
			t.Fatalf("explicit OpSetSize replay: %v", err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != before[s] {
				t.Fatalf("OpSetSize replay changed server %d size %d -> %d", s, before[s], a.Size)
			}
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterCrossClientExtend is the coherence acceptance test for
// the size-epoch protocol — it used to PIN the opposite (stale)
// behaviour. Client B establishes a large size, client A truncates
// the file (an exact OpSetSize, bumping the replicated size epoch),
// and B's next overwrite below its stale cached size must now DETECT
// the foreign truncate from its data replies' epochs and re-run the
// reconciliation, so every server — and the homed getattr both
// clients see — agrees on the true end of file.
func TestClusterCrossClientExtend(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		mkCluster := func(baseEP uint8) *rfsrv.Cluster {
			sessions := make([]*rfsrv.Session, len(r.servers))
			for i, srv := range r.servers {
				fc, err := rfsrv.NewMXClient(r.clientMX, baseEP+uint8(i), true, r.client.Kernel, srv.ID, 1)
				if err != nil {
					t.Fatal(err)
				}
				var serr error
				if sessions[i], serr = rfsrv.NewSession(p, fc, 4); serr != nil {
					t.Fatal(serr)
				}
			}
			cl, err := rfsrv.NewCluster(p, sessions, testStripe)
			if err != nil {
				t.Fatal(err)
			}
			return cl
		}
		clA := mkCluster(10)
		clB := mkCluster(20)

		const full = 4 * testStripe
		ino := clusterCreate(t, p, clA, "f")

		// B writes the whole file: B's cache records size=full, every
		// server reconciled.
		vaB, vecB := r.kbuf(t, full)
		if err := r.client.Kernel.WriteBytes(vaB, pattern(full)); err != nil {
			t.Fatal(err)
		}
		if _, err := clB.Write(p, ino, 0, vecB); err != nil {
			t.Fatal(err)
		}

		// A truncates to one stripe. A's fan-out shrinks every server
		// and bumps the size epoch; B's cache still says full.
		if _, err := clA.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: testStripe}); err != nil {
			t.Fatal(err)
		}

		// B overwrites [0, 2 stripes): below B's stale cached size. The
		// data replies carry the bumped epoch, B invalidates its entry
		// and re-reconciles — every server must agree EOF = 2S.
		if _, err := clB.Write(p, ino, 0, vecB.Slice(0, 2*testStripe)); err != nil {
			t.Fatal(err)
		}
		for s, fs := range r.serverFS {
			a, err := fs.Getattr(p, ino)
			if err != nil || a.Size != 2*testStripe {
				t.Fatalf("server %d local size = %d (%v), want %d: truncate-then-overwrite must reconcile", s, a.Size, err, 2*testStripe)
			}
		}
		// Homed getattr agrees everywhere, through either client.
		for name, cl := range map[string]*rfsrv.Cluster{"A": clA, "B": clB} {
			resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
			if err != nil || resp.Attr.Size != 2*testStripe {
				t.Fatalf("client %s homed getattr = %d (%v), want %d", name, resp.Attr.Size, err, 2*testStripe)
			}
		}
		// And the full range reads back at the reconciled length.
		rva, rvec := r.kbuf(t, 2*testStripe)
		resp, err := clB.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != 2*testStripe {
			t.Fatalf("read after reconcile: n=%d err=%v, want %d", resp.N, err, 2*testStripe)
		}
		_ = rva

		// Second foreign truncate, overwrite entirely BELOW the new
		// size: nothing may resurrect the cut bytes — EOF stays at the
		// truncated size on every server.
		if _, err := clA.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: testStripe}); err != nil {
			t.Fatal(err)
		}
		if _, err := clB.Write(p, ino, 0, vecB.Slice(0, testStripe/2)); err != nil {
			t.Fatal(err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != testStripe {
				t.Fatalf("server %d size = %d after below-EOF overwrite, want %d (no resurrection)", s, a.Size, testStripe)
			}
		}

		// A size-extending write from B still reconciles everywhere.
		vaX, vecX := r.kbuf(t, full+testStripe)
		if err := r.client.Kernel.WriteBytes(vaX, pattern(full+testStripe)); err != nil {
			t.Fatal(err)
		}
		if _, err := clB.Write(p, ino, 0, vecX); err != nil {
			t.Fatal(err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != full+testStripe {
				t.Fatalf("server %d size = %d after extending write, want %d", s, a.Size, full+testStripe)
			}
		}
	})
}

// TestClusterEOFAtStripeBoundary is the satellite-4 off-by-one sweep:
// EOF falling exactly ON a stripe boundary and one byte PAST it, over
// 1, 3 and 8 servers — the run-splitting edges where an off-by-one in
// the EOF clip or the contiguous-prefix merge would show.
func TestClusterEOFAtStripeBoundary(t *testing.T) {
	for _, nServers := range []int{1, 3, 8} {
		nServers := nServers
		t.Run(fmt.Sprintf("%dservers", nServers), func(t *testing.T) {
			r := newClusterRig(t, nServers)
			r.run(t, func(p *sim.Proc) {
				cl := r.cluster(t, p, 4, testStripe)
				for _, size := range []int{4 * testStripe, 4*testStripe + 1} {
					name := fmt.Sprintf("f%d", size)
					ino := clusterCreate(t, p, cl, name)
					data := pattern(size)
					va, vec := r.kbuf(t, size)
					if err := r.client.Kernel.WriteBytes(va, data); err != nil {
						t.Fatal(err)
					}
					if resp, err := cl.Write(p, ino, 0, vec); err != nil || int(resp.N) != size {
						t.Fatalf("size %d: write n=%d err=%v", size, resp.N, err)
					}
					if resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil || resp.Attr.Size != int64(size) {
						t.Fatalf("size %d: getattr=%d err=%v", size, resp.Attr.Size, err)
					}
					reads := []struct {
						off  int64
						len  int
						want int
					}{
						// Straddle the last whole stripe into EOF.
						{3 * testStripe, 2 * testStripe, size - 3*testStripe},
						// Start exactly at the stripe-boundary EOF (or one
						// short of the tail byte).
						{4 * testStripe, testStripe, size - 4*testStripe},
						// Entirely past EOF.
						{int64(size) + testStripe, testStripe, 0},
						// End exactly at EOF.
						{int64(size) - testStripe, testStripe, testStripe},
						// One byte around the boundary.
						{4*testStripe - 1, 2, min(2, size-(4*testStripe-1))},
					}
					for _, rd := range reads {
						rva, rvec := r.kbuf(t, rd.len)
						resp, err := cl.Read(p, ino, rd.off, rvec)
						if err != nil {
							t.Fatalf("size %d read [%d,+%d): %v", size, rd.off, rd.len, err)
						}
						if int(resp.N) != rd.want {
							t.Fatalf("size %d read [%d,+%d): n=%d want %d", size, rd.off, rd.len, resp.N, rd.want)
						}
						if rd.want > 0 {
							got, _ := r.client.Kernel.ReadBytes(rva, rd.want)
							if !bytes.Equal(got, data[rd.off:rd.off+int64(rd.want)]) {
								t.Fatalf("size %d read [%d,+%d): wrong bytes", size, rd.off, rd.len)
							}
						}
					}
				}
			})
		})
	}
}

// TestClusterSetSizeToExcludedHomeFansToReplicas is the coherence ×
// failover interaction bar: the file's hashed metadata home dies
// before a write, so the write's OpSetSize reconciliation faults on
// the home, excludes it, and the size information survives on the
// replicas — homed getattr re-routes and still answers the true EOF.
// After out-of-band recovery, Reinstate succeeds (no namespace or
// exact-size mutation ran during the exclusion), drops the file's
// cache entry (its home touches the victim), and re-running the write
// replays the grow-only OpSetSize onto the reinstated server so every
// local size converges.
func TestClusterSetSizeToExcludedHomeFansToReplicas(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 2)
		// Pick a file homed on server 2: its single stripe (replicated)
		// lives on servers 0 and 1, so data never touches the victim.
		var ino kernel.InodeID
		for i := 0; i < 24 && ino == 0; i++ {
			cand := clusterCreate(t, p, cl, fmt.Sprintf("f%d", i))
			if cl.HomeServer(cand) == 2 {
				ino = cand
			}
		}
		if ino == 0 {
			t.Fatal("no candidate file homed on server 2")
		}
		va, vec := r.kbuf(t, testStripe)
		if err := r.client.Kernel.WriteBytes(va, pattern(testStripe)); err != nil {
			t.Fatal(err)
		}

		r.servers[2].NIC.Kill()

		resp, err := cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != testStripe {
			t.Fatalf("write across dead home: n=%d err=%v", resp.N, err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 2 {
			t.Fatalf("down servers = %v, want [2]", down)
		}
		// The home re-routes; the re-homed getattr must see the true EOF
		// (the reconciliation covered every alive server).
		gresp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
		if err != nil || gresp.Attr.Size != testStripe {
			t.Fatalf("re-homed getattr = %d (%v), want %d", gresp.Attr.Size, err, testStripe)
		}

		// Recover out of band, reinstate (must be allowed: only grow
		// reconciliation ran during the exclusion), re-run the write:
		// the replay must converge the reinstated server's local size.
		r.servers[2].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 2); err != nil {
			t.Fatalf("reinstate after mutation-free exclusion: %v", err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatalf("re-run write after reinstate: %v", err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != testStripe {
				t.Fatalf("server %d size = %d after reinstate replay, want %d", s, a.Size, testStripe)
			}
		}
		// Home routing is back on the reinstated server and coherent.
		if h := cl.HomeServer(ino); h != 2 {
			t.Fatalf("home = %d after reinstate, want 2", h)
		}
		if gresp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil || gresp.Attr.Size != testStripe {
			t.Fatalf("homed getattr after reinstate = %d (%v), want %d", gresp.Attr.Size, err, testStripe)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterReinstateReplaysMissedMutation is the journaled-resync
// upgrade of the namespace footgun: a server that missed a fanned-out
// namespace mutation while excluded is no longer refused — the client
// journaled the mutation and Reinstate replays it, so readmission
// hands back a server whose replicated state already converged.
func TestClusterReinstateReplaysMissedMutation(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 2)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, testStripe)
		if err := r.client.Kernel.WriteBytes(va, pattern(testStripe)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}

		r.servers[1].NIC.Kill()
		// Any operation touching the victim observes the fault.
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatalf("replicated write across kill: %v", err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down servers = %v, want [1]", down)
		}

		// A namespace mutation fans out while server 1 is excluded: its
		// replicated state has now diverged.
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "d"}); err != nil {
			t.Fatalf("mkdir with excluded server: %v", err)
		}

		r.servers[1].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate with a journaled mkdir: %v", err)
		}
		if cl.ResyncOps.N == 0 {
			t.Fatal("reinstate replayed nothing; the missed mkdir should be journaled")
		}
		if cl.ReinstateRefusals.N != 0 {
			t.Fatalf("ReinstateRefusals = %d, want 0 (journaled replay, not refusal)", cl.ReinstateRefusals.N)
		}
		if down := cl.DownServers(); len(down) != 0 {
			t.Fatalf("down servers = %v after replayed reinstate, want none", down)
		}
		// The replay converged server 1: it holds the directory it missed.
		if a, err := r.serverFS[1].Lookup(p, r.serverFS[1].Root(), "d"); err != nil || a.Kind != kernel.Directory {
			t.Fatalf("reinstated server's replayed mkdir = %+v, %v; want a directory", a, err)
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil {
			t.Fatalf("getattr after replayed reinstate: %v", err)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterReinstateTargetedInvalidation pins the satellite-3
// narrowing: Reinstate drops only the size-cache entries established
// while the reinstated server was excluded — the ones whose
// reconciliation fans skipped it. A file reconciled before the
// exclusion keeps its entry (its next overwrite issues no
// reconciliation RPCs: the reinstated server already holds its size),
// while a file written during the exclusion loses its entry (its next
// overwrite replays OpSetSize, repairing the reinstated server's
// local size).
func TestClusterReinstateTargetedInvalidation(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 1)
		// Both files exist before the exclusion (creates are namespace
		// mutations, which Reinstate refuses to have missed).
		pre := clusterCreate(t, p, cl, "pre")
		dur := clusterCreate(t, p, cl, "dur")
		vaP, vecP := r.kbuf(t, 3*testStripe)
		if err := r.client.Kernel.WriteBytes(vaP, pattern(3*testStripe)); err != nil {
			t.Fatal(err)
		}
		vaD, vecD := r.kbuf(t, testStripe)
		if err := r.client.Kernel.WriteBytes(vaD, pattern(testStripe)); err != nil {
			t.Fatal(err)
		}
		// pre's entry is established while every server is alive: its
		// fan reached server 2.
		if _, err := cl.Write(p, pre, 0, vecP); err != nil {
			t.Fatal(err)
		}

		// Exclude server 2 via a homed metadata fault (no data loss:
		// the getattr re-homes) on a file deterministically homed there.
		var homed2 kernel.InodeID
		for i := 0; i < 24 && homed2 == 0; i++ {
			cand := clusterCreate(t, p, cl, fmt.Sprintf("h%d", i))
			if cl.HomeServer(cand) == 2 {
				homed2 = cand
			}
		}
		if homed2 == 0 {
			t.Fatal("no candidate file homed on server 2")
		}
		r.servers[2].NIC.Kill()
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: homed2}); err != nil {
			t.Fatalf("getattr across kill: %v", err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 2 {
			t.Fatalf("down servers = %v, want [2]", down)
		}

		// dur is written DURING the exclusion: one stripe on server 0,
		// reconciliation fanned only to server 1 — server 2 missed it.
		if _, err := cl.Write(p, dur, 0, vecD); err != nil {
			t.Fatalf("write during exclusion: %v", err)
		}
		if a, _ := r.serverFS[2].Getattr(p, dur); a.Size != 0 {
			t.Fatalf("excluded server learned dur's size %d, want 0", a.Size)
		}

		r.servers[2].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 2); err != nil {
			t.Fatalf("reinstate: %v", err)
		}

		// pre's entry survived: an overwrite below its size issues no
		// reconciliation RPCs.
		before := cl.SetSizes.N
		if _, err := cl.Write(p, pre, 0, vecP); err != nil {
			t.Fatal(err)
		}
		if cl.SetSizes.N != before {
			t.Fatalf("overwrite of pre-exclusion file issued %d reconciliation RPC(s); its cache entry should have survived", cl.SetSizes.N-before)
		}
		// dur's entry was dropped: the same overwrite replays the
		// reconciliation, repairing the reinstated server.
		before = cl.SetSizes.N
		if _, err := cl.Write(p, dur, 0, vecD); err != nil {
			t.Fatal(err)
		}
		if cl.SetSizes.N == before {
			t.Fatal("overwrite of a file written during the exclusion issued no reconciliation; its cache entry should have been dropped")
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, dur); a.Size != testStripe {
				t.Fatalf("server %d size = %d for dur after replay, want %d", s, a.Size, testStripe)
			}
			if a, _ := fs.Getattr(p, pre); a.Size != 3*testStripe {
				t.Fatalf("server %d size = %d for pre, want %d", s, a.Size, 3*testStripe)
			}
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}
