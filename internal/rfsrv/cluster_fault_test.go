package rfsrv_test

// Fault-injected cluster tests: replicated reads failing over a killed
// server, writes tolerating a lost replica, timeout-driven slot and
// staging recovery (with fabric.Pool.CheckLeaks asserting nothing can
// ever recycle), OpExtend retry after a transient fault, and the
// cross-client size-cache staleness pin.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// faultTimeout is the per-request reply deadline used by the fault
// tests: far above any healthy round trip in these tiny rigs, far
// below the point a hang would look like progress.
const faultTimeout = 2 * time.Millisecond

// clusterRep builds a replicated striped client over the rig: one
// kernel-side MX session per server on distinct endpoints, every
// session with the reply deadline armed.
func (r *clusterRig) clusterRep(t *testing.T, p *sim.Proc, window, stripe, replicas int) *rfsrv.Cluster {
	t.Helper()
	sessions := make([]*rfsrv.Session, len(r.servers))
	for i, srv := range r.servers {
		fc, err := rfsrv.NewMXClient(r.clientMX, uint8(10+i), true, r.client.Kernel, srv.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		fc.SetRequestTimeout(faultTimeout)
		if sessions[i], err = rfsrv.NewSession(p, fc, window); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := rfsrv.NewReplicatedCluster(p, sessions, stripe, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// checkNoLeaks asserts every node's shared fabric pool has nothing
// that can never recycle — the PR's leak bar for the fault paths.
func (r *clusterRig) checkNoLeaks(t *testing.T) {
	t.Helper()
	if err := fabric.PoolOf(r.client).CheckLeaks(); err != nil {
		t.Errorf("client pool: %v", err)
	}
	for i, srv := range r.servers {
		if err := fabric.PoolOf(srv).CheckLeaks(); err != nil {
			t.Errorf("server %d pool: %v", i, err)
		}
	}
}

// assertWindowsIdle asserts no session of the cluster still holds
// window slots (every pending retired).
func assertWindowsIdle(t *testing.T, cl *rfsrv.Cluster) {
	t.Helper()
	for i, s := range cl.Sessions() {
		if s.InFlight() != 0 {
			t.Errorf("server %d session still holds %d window slots", i, s.InFlight())
		}
	}
}

// TestClusterReadFailoverAfterKill kills one of three servers between
// a replicated write and a full read-back: every stripe owned by the
// victim must be served by its replica, byte-exact, with the victim
// recorded as excluded — and no pooled staging may leak anywhere.
func TestClusterReadFailoverAfterKill(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 9 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if resp, err := cl.Write(p, ino, 0, vec); err != nil || int(resp.N) != size {
			t.Fatalf("replicated write: n=%d err=%v", resp.N, err)
		}
		// Replica placement: every stripe must be on its primary AND the
		// next server.
		pagesPerStripe := testStripe / mem.PageSize
		for k := 0; k < size/testStripe; k++ {
			for rep := 0; rep < 2; rep++ {
				s := (k + rep) % 3
				if r.serverFS[s].FrameAt(ino, int64(k*pagesPerStripe)) == nil {
					t.Fatalf("stripe %d missing on replica %d (server %d)", k, rep, s)
				}
			}
		}

		r.servers[0].NIC.Kill()

		rva, rvec := r.kbuf(t, size)
		resp, err := cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("read across kill: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("failover read returned wrong bytes")
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 0 {
			t.Fatalf("down servers = %v, want [0]", down)
		}
		if cl.Failovers.N == 0 {
			t.Error("no failovers counted across a kill")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterPipelinedFailoverReleasesSlots is the satellite-1 bar for
// the async path: striped reads are mid-flight through the windows
// when the victim dies, so some parts fault at Wait (timeout or
// dead-peer) while siblings complete. Every drained part must release
// its window slot and its pooled staging; the reads must still return
// the right bytes via failover.
func TestClusterPipelinedFailoverReleasesSlots(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 2)
		const size = 12 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}

		// Fill the windows with stripe reads, then kill the victim while
		// they are in flight.
		var pds []rfsrv.PendingOp
		for k := 0; k < 6; k++ {
			_, rvec := r.kbuf(t, testStripe)
			pd, err := cl.StartRead(p, ino, int64(k)*testStripe, rvec)
			if err != nil {
				t.Fatal(err)
			}
			pds = append(pds, pd)
		}
		r.servers[0].NIC.Kill()
		for k, pd := range pds {
			resp, err := pd.Wait(p)
			if err != nil || int(resp.N) != testStripe {
				t.Fatalf("pipelined read %d across kill: n=%d err=%v", k, resp.N, err)
			}
		}
		// And a second full pass after the exclusion settled.
		rva, rvec := r.kbuf(t, size)
		resp, err := cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("post-exclusion read: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("post-exclusion read returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterWriteSurvivesReplicaLoss kills a server and then writes:
// runs whose primary died land on the replica alone, the write
// reports full success, the data reads back, and namespace mutations
// keep working with the victim excluded instead of reporting
// divergence.
func TestClusterWriteSurvivesReplicaLoss(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 6 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")

		r.servers[1].NIC.Kill()

		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		resp, err := cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("write with dead replica: n=%d err=%v", resp.N, err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down servers = %v, want [1]", down)
		}
		// Namespace mutations must tolerate the exclusion (no divergence).
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "d"}); err != nil {
			t.Fatalf("mkdir with excluded server: %v", err)
		}
		rva, rvec := r.kbuf(t, size)
		resp, err = cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != size {
			t.Fatalf("read back: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("read back wrong bytes after degraded write")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterAllReplicasDownFails pins the failure floor: with every
// replica of a stripe excluded, reads and writes report a fault error
// (fabric.IsFault) instead of hanging or fabricating data.
func TestClusterAllReplicasDownFails(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 2)
		const size = 2 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, pattern(size)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}
		r.servers[0].NIC.Kill()
		r.servers[1].NIC.Kill()
		rva, rvec := r.kbuf(t, size)
		_, err := cl.Read(p, ino, 0, rvec)
		if err == nil {
			t.Fatal("read with every server dead succeeded")
		}
		if !fabric.IsFault(err) {
			t.Fatalf("read error %v is not a transport fault", err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err == nil || !fabric.IsFault(err) {
			t.Fatalf("write with every server dead: err=%v, want fault", err)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
		_ = rva
	})
}

// TestClusterExtendRetryAfterTransientFault is the satellite-2
// regression: a transient fault (stalled NIC, longer than the reply
// deadline) hits exactly the OpExtend reconciliation fan-out of a
// write whose data lives entirely on the other server. The write must
// still succeed with the stalled server excluded and its local size
// stale; after the stall clears and the operator reinstates the
// server, RE-RUNNING the same write must replay OpExtend — grow-only,
// idempotent, so replaying against a server that meanwhile caught up
// (or not) converges every local size. A second explicit replay pins
// the idempotence itself.
func TestClusterExtendRetryAfterTransientFault(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 2, testStripe, 1)
		ino := clusterCreate(t, p, cl, "f")
		// One stripe at offset 0: data (and the tail) live on server 0
		// only; reconciliation targets exactly server 1.
		va, vec := r.kbuf(t, testStripe)
		if err := r.client.Kernel.WriteBytes(va, pattern(testStripe)); err != nil {
			t.Fatal(err)
		}

		r.servers[1].NIC.StallFor(10 * faultTimeout)
		resp, err := cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != testStripe {
			t.Fatalf("write across stalled reconciliation: n=%d err=%v", resp.N, err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down servers = %v, want [1] (extend fan-out faulted)", down)
		}
		if a, _ := r.serverFS[0].Getattr(p, ino); a.Size != testStripe {
			t.Fatalf("data server size = %d, want %d", a.Size, testStripe)
		}

		// Let the stall clear (and its late deliveries drain), then
		// reinstate and re-run the same write: extendTo must replay.
		p.Sleep(20 * faultTimeout)
		cl.Reinstate(1)
		resp, err = cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != testStripe {
			t.Fatalf("re-run write after transient fault: n=%d err=%v", resp.N, err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != testStripe {
				t.Fatalf("server %d size = %d after retry, want %d", s, a.Size, testStripe)
			}
		}
		if len(cl.DownServers()) != 0 {
			t.Fatalf("server still excluded after reinstate+retry: %v", cl.DownServers())
		}

		// Idempotence proper: replaying OpExtend against already-extended
		// servers changes nothing.
		before := make([]int64, len(r.serverFS))
		for s, fs := range r.serverFS {
			a, _ := fs.Getattr(p, ino)
			before[s] = a.Size
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpExtend, Ino: ino, Off: testStripe}); err != nil {
			t.Fatalf("explicit OpExtend replay: %v", err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != before[s] {
				t.Fatalf("OpExtend replay changed server %d size %d -> %d", s, before[s], a.Size)
			}
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterCrossClientExtend is the satellite-3 pin: the size cache
// is per client, and another client's truncate does not invalidate
// it. Client B establishes a large size, client A truncates the file,
// and B's next overwrite below its cached size skips reconciliation —
// so only the servers holding the overwrite's runs learn the new EOF,
// and a homed getattr answers with the home's (possibly stale) local
// size. The cluster package comment documents this as the accepted
// cross-client semantics (single-writer workloads are unaffected); a
// later size-extending write restores agreement.
func TestClusterCrossClientExtend(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		mkCluster := func(baseEP uint8) *rfsrv.Cluster {
			sessions := make([]*rfsrv.Session, len(r.servers))
			for i, srv := range r.servers {
				fc, err := rfsrv.NewMXClient(r.clientMX, baseEP+uint8(i), true, r.client.Kernel, srv.ID, 1)
				if err != nil {
					t.Fatal(err)
				}
				var serr error
				if sessions[i], serr = rfsrv.NewSession(p, fc, 4); serr != nil {
					t.Fatal(serr)
				}
			}
			cl, err := rfsrv.NewCluster(p, sessions, testStripe)
			if err != nil {
				t.Fatal(err)
			}
			return cl
		}
		clA := mkCluster(10)
		clB := mkCluster(20)

		const full = 4 * testStripe
		ino := clusterCreate(t, p, clA, "f")

		// B writes the whole file: B's cache records size=full, every
		// server reconciled.
		vaB, vecB := r.kbuf(t, full)
		if err := r.client.Kernel.WriteBytes(vaB, pattern(full)); err != nil {
			t.Fatal(err)
		}
		if _, err := clB.Write(p, ino, 0, vecB); err != nil {
			t.Fatal(err)
		}

		// A truncates to one stripe. A's fan-out updates every server;
		// B's cache still says full.
		if _, err := clA.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: testStripe}); err != nil {
			t.Fatal(err)
		}

		// B overwrites [0, 2 stripes): below B's cached size, so B skips
		// extendTo. Stripe 1's owner (server 1) learns EOF=2S from the
		// data itself; server 0 keeps the truncated size S.
		if _, err := clB.Write(p, ino, 0, vecB.Slice(0, 2*testStripe)); err != nil {
			t.Fatal(err)
		}
		sizes := make([]int64, 2)
		for s, fs := range r.serverFS {
			a, err := fs.Getattr(p, ino)
			if err != nil {
				t.Fatal(err)
			}
			sizes[s] = a.Size
		}
		if sizes[0] != testStripe || sizes[1] != 2*testStripe {
			t.Fatalf("local sizes = %v, want [S 2S]: the skipped reconciliation is the documented staleness", sizes)
		}
		// Homed getattr answers with the home's local view — stale when
		// the home is server 0.
		home := clA.HomeServer(ino)
		resp, err := clA.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Attr.Size != sizes[home] {
			t.Fatalf("homed getattr = %d, want home server %d's local size %d", resp.Attr.Size, home, sizes[home])
		}

		// A size-extending write from B (above its cached size) runs
		// extendTo and restores agreement everywhere.
		vaX, vecX := r.kbuf(t, full+testStripe)
		if err := r.client.Kernel.WriteBytes(vaX, pattern(full+testStripe)); err != nil {
			t.Fatal(err)
		}
		if _, err := clB.Write(p, ino, 0, vecX); err != nil {
			t.Fatal(err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != full+testStripe {
				t.Fatalf("server %d size = %d after extending write, want %d", s, a.Size, full+testStripe)
			}
		}
	})
}

// TestClusterEOFAtStripeBoundary is the satellite-4 off-by-one sweep:
// EOF falling exactly ON a stripe boundary and one byte PAST it, over
// 1, 3 and 8 servers — the run-splitting edges where an off-by-one in
// the EOF clip or the contiguous-prefix merge would show.
func TestClusterEOFAtStripeBoundary(t *testing.T) {
	for _, nServers := range []int{1, 3, 8} {
		nServers := nServers
		t.Run(fmt.Sprintf("%dservers", nServers), func(t *testing.T) {
			r := newClusterRig(t, nServers)
			r.run(t, func(p *sim.Proc) {
				cl := r.cluster(t, p, 4, testStripe)
				for _, size := range []int{4 * testStripe, 4*testStripe + 1} {
					name := fmt.Sprintf("f%d", size)
					ino := clusterCreate(t, p, cl, name)
					data := pattern(size)
					va, vec := r.kbuf(t, size)
					if err := r.client.Kernel.WriteBytes(va, data); err != nil {
						t.Fatal(err)
					}
					if resp, err := cl.Write(p, ino, 0, vec); err != nil || int(resp.N) != size {
						t.Fatalf("size %d: write n=%d err=%v", size, resp.N, err)
					}
					if resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil || resp.Attr.Size != int64(size) {
						t.Fatalf("size %d: getattr=%d err=%v", size, resp.Attr.Size, err)
					}
					reads := []struct {
						off  int64
						len  int
						want int
					}{
						// Straddle the last whole stripe into EOF.
						{3 * testStripe, 2 * testStripe, size - 3*testStripe},
						// Start exactly at the stripe-boundary EOF (or one
						// short of the tail byte).
						{4 * testStripe, testStripe, size - 4*testStripe},
						// Entirely past EOF.
						{int64(size) + testStripe, testStripe, 0},
						// End exactly at EOF.
						{int64(size) - testStripe, testStripe, testStripe},
						// One byte around the boundary.
						{4*testStripe - 1, 2, min(2, size-(4*testStripe-1))},
					}
					for _, rd := range reads {
						rva, rvec := r.kbuf(t, rd.len)
						resp, err := cl.Read(p, ino, rd.off, rvec)
						if err != nil {
							t.Fatalf("size %d read [%d,+%d): %v", size, rd.off, rd.len, err)
						}
						if int(resp.N) != rd.want {
							t.Fatalf("size %d read [%d,+%d): n=%d want %d", size, rd.off, rd.len, resp.N, rd.want)
						}
						if rd.want > 0 {
							got, _ := r.client.Kernel.ReadBytes(rva, rd.want)
							if !bytes.Equal(got, data[rd.off:rd.off+int64(rd.want)]) {
								t.Fatalf("size %d read [%d,+%d): wrong bytes", size, rd.off, rd.len)
							}
						}
					}
				}
			})
		})
	}
}
