package rfsrv_test

// Layout-policy edge-case tests (DESIGN.md §10): adaptive promotion of
// a whole-on-home file mid-write (with byte-exact migration of the
// pre-promotion bytes), EOF landing exactly on / one byte either side
// of a wide-stripe boundary, replica placement and failover of a
// replicated whole-on-home file, and the guarantee that every layout
// policy is inert on a one-server cluster.

import (
	"bytes"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// layoutCreate creates a file with an explicit layout hint and returns
// its inode.
func layoutCreate(t *testing.T, p *sim.Proc, cl *rfsrv.Cluster, name string, hint rfsrv.LayoutClass) kernel.InodeID {
	t.Helper()
	resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: name, Len: uint32(hint)})
	if err != nil {
		t.Fatalf("create %s (hint %v): %v", name, hint, err)
	}
	return resp.Attr.Ino
}

// writeAt writes data at off through the cluster, failing the test on
// any error or short write.
func writeAt(t *testing.T, p *sim.Proc, r *clusterRig, cl *rfsrv.Cluster, ino kernel.InodeID, off int64, data []byte) {
	t.Helper()
	va, vec := r.kbuf(t, len(data))
	if err := r.client.Kernel.WriteBytes(va, data); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Write(p, ino, off, vec)
	if err != nil || int(resp.N) != len(data) {
		t.Fatalf("write %d bytes at %d: n=%d err=%v", len(data), off, resp.N, err)
	}
}

// readBack reads n bytes at off through the cluster and returns
// (bytes, resp.N). The buffer may be larger than the file; the caller
// checks the clipped count.
func readBack(t *testing.T, p *sim.Proc, r *clusterRig, cl *rfsrv.Cluster, ino kernel.InodeID, off int64, n int) ([]byte, int) {
	t.Helper()
	va, vec := r.kbuf(t, n)
	resp, err := cl.Read(p, ino, off, vec)
	if err != nil {
		t.Fatalf("read %d bytes at %d: %v", n, off, err)
	}
	got, err := r.client.Kernel.ReadBytes(va, int(resp.N))
	if err != nil {
		t.Fatal(err)
	}
	return got, int(resp.N)
}

// TestClusterWholePromotedMidWrite drives the adaptive policy through
// its promotion edge: a file written below PromoteThreshold stays
// whole-on-home with zero OpSetSize reconciliations, and the write
// that would push EOF past the threshold first migrates the existing
// bytes to standard placement, then lands striped — with the full
// contents byte-exact afterwards.
func TestClusterWholePromotedMidWrite(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		if err := cl.SetLayoutPolicy(rfsrv.LayoutPolicy{Adaptive: true}); err != nil {
			t.Fatal(err)
		}

		const head = 200 * 1024 // below PromoteThreshold (256 KiB)
		const tail = 100 * 1024 // pushes EOF to 300 KiB, past it
		data := pattern(head + tail)
		ino := clusterCreate(t, p, cl, "f")
		if lc := cl.LayoutOf(ino); lc != rfsrv.LayoutWhole {
			t.Fatalf("adaptive unhinted create classified %v, want LayoutWhole", lc)
		}
		home := cl.HomeServer(ino)

		writeAt(t, p, r, cl, ino, 0, data[:head])
		if n := cl.SetSizes.N; n != 0 {
			t.Errorf("whole-on-home write issued %d OpSetSize reconciliations, want 0", n)
		}
		if n := cl.Promotions.N; n != 0 {
			t.Fatalf("premature promotion (%d) below threshold", n)
		}
		// Every byte of the whole-phase file lives on the home server and
		// nowhere else.
		headPages := head / mem.PageSize
		for s := range r.servers {
			for pg := 0; pg < headPages; pg++ {
				have := r.serverFS[s].FrameAt(ino, int64(pg)) != nil
				if want := s == home; have != want {
					t.Fatalf("whole phase: server %d page %d present=%v, want %v (home %d)",
						s, pg, have, want, home)
				}
			}
		}

		// The append crosses PromoteThreshold: promotion must migrate the
		// head before the tail is written striped.
		writeAt(t, p, r, cl, ino, head, data[head:])
		if n := cl.Promotions.N; n != 1 {
			t.Errorf("promotions = %d, want exactly 1", n)
		}
		if lc := cl.LayoutOf(ino); lc != rfsrv.LayoutStandard {
			t.Errorf("post-promotion layout %v, want LayoutStandard", lc)
		}
		if n := cl.SetSizes.N; n == 0 {
			t.Error("standard-layout write reconciled no sizes; expected OpSetSize fan-out")
		}

		got, n := readBack(t, p, r, cl, ino, 0, len(data)+mem.PageSize)
		if n != len(data) {
			t.Fatalf("post-promotion read clipped to %d, want %d", n, len(data))
		}
		if !bytes.Equal(got, data) {
			t.Fatal("post-promotion contents differ from what was written")
		}
		// Standard placement after migration: every stripe's primary owner
		// holds its frames.
		pagesPerStripe := testStripe / mem.PageSize
		for k := 0; k*testStripe < len(data); k++ {
			owner := cl.OwnerServer(int64(k) * testStripe)
			if r.serverFS[owner].FrameAt(ino, int64(k*pagesPerStripe)) == nil {
				t.Fatalf("stripe %d missing on its standard owner (server %d) after promotion", k, owner)
			}
		}
	})
}

// TestClusterWideEOFAtStripeBoundary creates explicitly-hinted
// LayoutWide files whose EOF lands one byte before, exactly on, and
// one byte after a wide-stripe boundary, and verifies read-back
// clipping, byte-exact contents, a boundary-crossing read, and
// physical placement at WideStripeSize granularity.
func TestClusterWideEOFAtStripeBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-stripe files are MiB-scale; skipping in short mode")
	}
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		// Non-adaptive policy: unhinted files keep standard striping, but
		// explicit create hints are honored.
		if err := cl.SetLayoutPolicy(rfsrv.LayoutPolicy{}); err != nil {
			t.Fatal(err)
		}

		wide := int(rfsrv.WideStripeSize)
		for i, size := range []int{wide - 1, wide, wide + 1} {
			name := []string{"minus", "exact", "plus"}[i]
			data := pattern(size)
			ino := layoutCreate(t, p, cl, name, rfsrv.LayoutWide)
			if lc := cl.LayoutOf(ino); lc != rfsrv.LayoutWide {
				t.Fatalf("%s: hinted create classified %v, want LayoutWide", name, lc)
			}
			writeAt(t, p, r, cl, ino, 0, data)

			// Oversized read: EOF must clip exactly at size, even when the
			// extra range belongs to the next wide stripe's owner.
			got, n := readBack(t, p, r, cl, ino, 0, size+mem.PageSize)
			if n != size {
				t.Fatalf("%s: oversized read returned %d bytes, want %d", name, n, size)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s: contents differ", name)
			}

			// A 2-byte read straddling the boundary: both bytes for the
			// file that has them, a 1-byte clip for the one ending exactly
			// on the boundary.
			if size >= wide {
				want := size - (wide - 1)
				if want > 2 {
					want = 2
				}
				got, n = readBack(t, p, r, cl, ino, int64(wide-1), 2)
				if n != want || !bytes.Equal(got, data[wide-1:wide-1+want]) {
					t.Fatalf("%s: boundary-straddling read n=%d, want %d", name, n, want)
				}
			}

			// Placement: stripe 0 belongs to server 0, stripe 1 (only the
			// "plus" file reaches it) to server 1.
			if r.serverFS[0].FrameAt(ino, 0) == nil {
				t.Fatalf("%s: wide stripe 0 missing on server 0", name)
			}
			pagesPerWide := int64(wide / mem.PageSize)
			wantSecond := size > wide
			if have := r.serverFS[1].FrameAt(ino, pagesPerWide) != nil; have != wantSecond {
				t.Fatalf("%s: wide stripe 1 present on server 1 = %v, want %v", name, have, wantSecond)
			}
		}
	})
}

// TestClusterWholeReplicatedFailover pins the replica placement of a
// replicated whole-on-home file — home and the next server, nothing
// anywhere else — then kills the home and verifies the read fails over
// to the replica byte-exact, without leaking window slots or pooled
// staging.
func TestClusterWholeReplicatedFailover(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		if err := cl.SetLayoutPolicy(rfsrv.LayoutPolicy{Adaptive: true}); err != nil {
			t.Fatal(err)
		}

		const size = 16 * 1024
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		if lc := cl.LayoutOf(ino); lc != rfsrv.LayoutWhole {
			t.Fatalf("layout %v, want LayoutWhole", lc)
		}
		home := cl.HomeServer(ino)
		writeAt(t, p, r, cl, ino, 0, data)

		// Replicas land on home and the cyclically next server only.
		replica := (home + 1) % len(r.servers)
		for s := range r.servers {
			for pg := 0; pg < size/mem.PageSize; pg++ {
				have := r.serverFS[s].FrameAt(ino, int64(pg)) != nil
				if want := s == home || s == replica; have != want {
					t.Fatalf("server %d page %d present=%v, want %v (home %d)", s, pg, have, want, home)
				}
			}
		}

		r.servers[home].NIC.Kill()
		got, n := readBack(t, p, r, cl, ino, 0, size)
		if n != size || !bytes.Equal(got, data) {
			t.Fatalf("failover read n=%d, contents match=%v", n, bytes.Equal(got, data))
		}
		downOK := false
		for _, d := range cl.DownServers() {
			if d == home {
				downOK = true
			}
		}
		if !downOK {
			t.Errorf("home %d not excluded after failover (down: %v)", home, cl.DownServers())
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestClusterOneServerPolicyInert extends the degeneracy guarantee to
// the layout machinery: on a one-server cluster every policy — off,
// non-adaptive, adaptive — produces the identical virtual-time finish
// and identical bytes, because classification is inert without a
// second server to place data on.
func TestClusterOneServerPolicyInert(t *testing.T) {
	runOnce := func(set bool, pol rfsrv.LayoutPolicy) (sim.Time, []byte) {
		r := newClusterRig(t, 1)
		var end sim.Time
		var sum []byte
		r.run(t, func(p *sim.Proc) {
			cl := r.cluster(t, p, 4, 0)
			if set {
				if err := cl.SetLayoutPolicy(pol); err != nil {
					t.Fatal(err)
				}
			}
			end, sum = oneServerWorkload(t, p, r.client.Kernel, cl)
		})
		return end, sum
	}
	baseEnd, baseSum := runOnce(false, rfsrv.LayoutPolicy{})
	for _, tc := range []struct {
		name string
		pol  rfsrv.LayoutPolicy
	}{
		{"non-adaptive", rfsrv.LayoutPolicy{}},
		{"adaptive", rfsrv.LayoutPolicy{Adaptive: true}},
	} {
		end, sum := runOnce(true, tc.pol)
		if end != baseEnd {
			t.Errorf("%s policy finished at %v, policy-off at %v — not bit-identical", tc.name, end, baseEnd)
		}
		if !bytes.Equal(sum, baseSum) {
			t.Errorf("%s policy read different bytes than policy-off", tc.name)
		}
	}
}
