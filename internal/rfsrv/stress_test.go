package rfsrv_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// TestManyClientsOneServer: a 5-node cluster, four ORFS clients hammer
// one server concurrently over MX. Checks correctness under server
// contention and that aggregate progress is made.
func TestManyClientsOneServer(t *testing.T) {
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := c.AddNode("server")
	serverFS := memfs.New("backing", server, 0)
	srv := rfsrv.NewServer(server, serverFS)
	if _, err := srv.ServeMX(mx.Attach(server), 1, 2); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	const fileSize = 256 * 1024
	finished := 0
	var seedInos [clients]kernel.InodeID

	env.Spawn("seed", func(p *sim.Proc) {
		for i := 0; i < clients; i++ {
			attr, err := serverFS.Create(p, serverFS.Root(), fmt.Sprintf("f%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			kva, _ := server.Kernel.Mmap(fileSize, "seed")
			data := bytes.Repeat([]byte{byte(0x10 + i)}, fileSize)
			server.Kernel.WriteBytes(kva, data)
			serverFS.WriteDirect(p, attr.Ino, 0, core.Of(core.KernelSeg(server.Kernel, kva, fileSize)))
			seedInos[i] = attr.Ino
		}
		for i := 0; i < clients; i++ {
			i := i
			node := c.AddNode(fmt.Sprintf("client%d", i))
			mxC := mx.Attach(node)
			env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
				cl, err := rfsrv.NewMXClient(mxC, uint8(10+i), true, node.Kernel, server.ID, 1)
				if err != nil {
					t.Error(err)
					return
				}
				osys := kernel.NewOS(node, 0)
				osys.Mount("/mnt", orfs.New("orfs", cl))
				as := node.NewUserSpace("app")
				buf, _ := as.Mmap(fileSize, "buf")
				f, err := osys.Open(p, fmt.Sprintf("/mnt/f%d", i), 0)
				if err != nil {
					t.Error(err)
					return
				}
				n, err := f.ReadAt(p, as, buf, fileSize, 0)
				if err != nil || n != fileSize {
					t.Errorf("client %d: read %d %v", i, n, err)
					return
				}
				got, _ := as.ReadBytes(buf, fileSize)
				for j, b := range got {
					if b != byte(0x10+i) {
						t.Errorf("client %d: byte %d cross-contaminated (%#x)", i, j, b)
						return
					}
				}
				finished++
			})
		}
	})
	env.Run(0)
	if finished != clients {
		t.Fatalf("%d/%d clients finished", finished, clients)
	}
}

// TestServerWorkerScaling: with concurrent clients, more server workers
// must not be slower (and should usually be faster).
func TestServerWorkerScaling(t *testing.T) {
	run := func(workers int) sim.Time {
		env := sim.NewEngine()
		c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
		server := c.AddNode("server")
		serverFS := memfs.New("backing", server, 0)
		srv := rfsrv.NewServer(server, serverFS)
		if _, err := srv.ServeMX(mx.Attach(server), 1, workers); err != nil {
			t.Fatal(err)
		}
		const clients = 3
		var end sim.Time
		done := 0
		env.Spawn("seed", func(p *sim.Proc) {
			attr, _ := serverFS.Create(p, serverFS.Root(), "f")
			kva, _ := server.Kernel.Mmap(1<<20, "seed")
			serverFS.WriteDirect(p, attr.Ino, 0, core.Of(core.KernelSeg(server.Kernel, kva, 1<<20)))
			for i := 0; i < clients; i++ {
				i := i
				node := c.AddNode(fmt.Sprintf("c%d", i))
				mxC := mx.Attach(node)
				env.Spawn("cl", func(p *sim.Proc) {
					cl, err := rfsrv.NewMXClient(mxC, uint8(10+i), true, node.Kernel, server.ID, 1)
					if err != nil {
						t.Error(err)
						return
					}
					kva, _ := node.Kernel.Mmap(64*1024, "buf")
					for off := int64(0); off < 1<<20; off += 64 * 1024 {
						if _, err := cl.Read(p, attr.Ino, off, core.Of(core.KernelSeg(node.Kernel, kva, 64*1024))); err != nil {
							t.Error(err)
							return
						}
					}
					done++
					if p.Now() > end {
						end = p.Now()
					}
				})
			}
		})
		env.Run(0)
		if done != clients {
			t.Fatalf("workers=%d: %d/%d clients finished", workers, done, clients)
		}
		return end
	}
	one := run(1)
	four := run(4)
	// Allow scheduling jitter at the nanosecond level (the dispatcher
	// and extra worker procs reorder same-instant events); anything
	// beyond 0.1% is a real slowdown.
	if four > one+one/1000 {
		t.Errorf("4 workers slower than 1: %v vs %v", four, one)
	}
	if four >= one {
		t.Logf("note: no speedup from workers (1: %v, 4: %v)", one, four)
	}
}

// TestLinkSaturationFairness: two clients on one node share the node's
// transmit link; their combined throughput cannot exceed it and both
// make progress.
func TestLinkSaturationFairness(t *testing.T) {
	env := sim.NewEngine()
	p := hw.DefaultParams()
	c := hw.NewCluster(env, p, hw.PCIXD)
	server := c.AddNode("server")
	client := c.AddNode("client")
	serverFS := memfs.New("backing", server, 0)
	srv := rfsrv.NewServer(server, serverFS)
	if _, err := srv.ServeMX(mx.Attach(server), 1, 2); err != nil {
		t.Fatal(err)
	}
	mxC := mx.Attach(client)
	const total = 2 << 20
	var t0, t1 sim.Time
	var moved [2]int
	env.Spawn("seed", func(sp *sim.Proc) {
		attr, _ := serverFS.Create(sp, serverFS.Root(), "f")
		kva, _ := server.Kernel.Mmap(total, "seed")
		serverFS.WriteDirect(sp, attr.Ino, 0, core.Of(core.KernelSeg(server.Kernel, kva, total)))
		for i := 0; i < 2; i++ {
			i := i
			env.Spawn("stream", func(pp *sim.Proc) {
				cl, err := rfsrv.NewMXClient(mxC, uint8(10+i), true, client.Kernel, server.ID, 1)
				if err != nil {
					t.Error(err)
					return
				}
				kva, _ := client.Kernel.Mmap(128*1024, "buf")
				for off := int64(0); off < total; off += 128 * 1024 {
					resp, err := cl.Read(pp, attr.Ino, off, core.Of(core.KernelSeg(client.Kernel, kva, 128*1024)))
					if err != nil {
						t.Error(err)
						return
					}
					moved[i] += int(resp.N)
				}
				if i == 0 {
					t0 = pp.Now()
				} else {
					t1 = pp.Now()
				}
			})
		}
	})
	env.Run(0)
	if moved[0] != total || moved[1] != total {
		t.Fatalf("streams incomplete: %v", moved)
	}
	elapsed := t0
	if t1 > elapsed {
		elapsed = t1
	}
	aggregate := float64(2*total) / elapsed.Seconds() / 1e6
	if aggregate > 252 {
		t.Errorf("aggregate %.1f MB/s exceeds the 250 MB/s server link", aggregate)
	}
	if aggregate < 150 {
		t.Errorf("aggregate %.1f MB/s suspiciously low under saturation", aggregate)
	}
	// Fairness: neither stream finished wildly before the other.
	diff := t0 - t1
	if diff < 0 {
		diff = -diff
	}
	if diff > elapsed/3 {
		t.Errorf("unfair sharing: stream ends %v apart over %v", diff, elapsed)
	}
}

// TestGMServerInterleavedClients: two GM clients against one GM server
// worker; the unique-event-queue server must not cross wires.
func TestGMServerInterleavedClients(t *testing.T) {
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := c.AddNode("server")
	serverFS := memfs.New("backing", server, 0)
	srv := rfsrv.NewServer(server, serverFS)
	if _, err := srv.ServeGM(gm.Attach(server), 1); err != nil {
		t.Fatal(err)
	}
	finished := 0
	env.Spawn("seed", func(p *sim.Proc) {
		var inos [2]kernel.InodeID
		for i := 0; i < 2; i++ {
			attr, _ := serverFS.Create(p, serverFS.Root(), fmt.Sprintf("f%d", i))
			kva, _ := server.Kernel.Mmap(64*1024, "seed")
			server.Kernel.WriteBytes(kva, bytes.Repeat([]byte{byte(0x40 + i)}, 64*1024))
			serverFS.WriteDirect(p, attr.Ino, 0, core.Of(core.KernelSeg(server.Kernel, kva, 64*1024)))
			inos[i] = attr.Ino
		}
		for i := 0; i < 2; i++ {
			i := i
			node := c.AddNode(fmt.Sprintf("c%d", i))
			gmC := gm.Attach(node)
			env.Spawn("cl", func(p *sim.Proc) {
				cl, err := rfsrv.NewGMClient(p, gmC, uint8(10+i), true, node.Kernel, server.ID, 1, 1024)
				if err != nil {
					t.Error(err)
					return
				}
				kva, _ := node.Kernel.Mmap(64*1024, "buf")
				for iter := 0; iter < 4; iter++ {
					resp, err := cl.Read(p, inos[i], 0, core.Of(core.KernelSeg(node.Kernel, kva, 64*1024)))
					if err != nil || int(resp.N) != 64*1024 {
						t.Errorf("client %d: %v %v", i, resp, err)
						return
					}
					raw, _ := node.Kernel.ReadBytes(kva, 16)
					for _, b := range raw {
						if b != byte(0x40+i) {
							t.Errorf("client %d got cross-wired data %#x", i, b)
							return
						}
					}
				}
				finished++
			})
		}
	})
	env.Run(0)
	if finished != 2 {
		t.Fatalf("%d/2 GM clients finished", finished)
	}
}

var _ = mem.PageSize
var _ = time.Microsecond
