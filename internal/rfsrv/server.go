package rfsrv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// BackingFS is what the server serves: a filesystem whose data blocks
// have physical addresses (so read replies can be sent zero-copy,
// straight from the block store — the server-side analogue of the
// paper's physical-address primitives).
type BackingFS interface {
	kernel.FileSystem
	FrameAt(ino kernel.InodeID, idx int64) *mem.Frame
}

// Server is the ORFA/ORFS file server.
type Server struct {
	node *hw.Node
	fs   BackingFS
	zero *mem.Frame // shared zero page for holes

	// Requests counts served operations.
	Requests sim.Counter
}

// NewServer creates a server for fs on node.
func NewServer(node *hw.Node, fs BackingFS) *Server {
	zero, err := node.Mem.AllocFrame()
	if err != nil {
		panic(err)
	}
	return &Server{node: node, fs: fs, zero: zero}
}

// handleMeta executes a metadata request against the backing store.
func (s *Server) handleMeta(p *sim.Proc, req *Req) *Resp {
	resp := &Resp{Seq: req.Seq}
	ino := req.Ino
	if ino == 0 {
		ino = s.fs.Root()
	}
	var err error
	switch req.Op {
	case OpLookup:
		resp.Attr, err = s.fs.Lookup(p, ino, req.Name)
	case OpGetattr:
		resp.Attr, err = s.fs.Getattr(p, ino)
	case OpReaddir:
		resp.Entries, err = s.fs.Readdir(p, ino)
	case OpCreate:
		resp.Attr, err = s.fs.Create(p, ino, req.Name)
	case OpMkdir:
		resp.Attr, err = s.fs.Mkdir(p, ino, req.Name)
	case OpUnlink:
		err = s.fs.Unlink(p, ino, req.Name)
	case OpRmdir:
		err = s.fs.Rmdir(p, ino, req.Name)
	case OpTruncate:
		err = s.fs.Truncate(p, ino, req.Off)
	default:
		err = fmt.Errorf("rfsrv: bad op %v", req.Op)
	}
	resp.Status = StatusOf(err)
	return resp
}

// readExtents builds the zero-copy reply extents for a read: physical
// runs of the file's block frames (the zero page for holes), clipped to
// EOF. It returns the response and the extents to transmit.
func (s *Server) readExtents(p *sim.Proc, req *Req) (*Resp, []mem.Extent) {
	resp := &Resp{Seq: req.Seq}
	attr, err := s.fs.Getattr(p, req.Ino)
	if err != nil {
		resp.Status = StatusOf(err)
		return resp, nil
	}
	n := int64(req.Len)
	if req.Off >= attr.Size {
		n = 0
	} else if req.Off+n > attr.Size {
		n = attr.Size - req.Off
	}
	var xs []mem.Extent
	off := req.Off
	left := n
	for left > 0 {
		idx := off / mem.PageSize
		pgOff := int(off % mem.PageSize)
		chunk := int64(mem.PageSize - pgOff)
		if chunk > left {
			chunk = left
		}
		f := s.fs.FrameAt(req.Ino, idx)
		if f == nil {
			f = s.zero // hole
		}
		xs = append(xs, mem.Extent{Addr: f.Addr() + mem.PhysAddr(pgOff), Len: int(chunk)})
		off += chunk
		left -= chunk
	}
	resp.N = uint32(n)
	resp.Attr = attr
	return resp, mem.MergeExtents(xs)
}

// handleWrite applies inline write data (already landed in the
// transport's bounce buffer, described by src).
func (s *Server) handleWrite(p *sim.Proc, req *Req, src core.Vector) *Resp {
	resp := &Resp{Seq: req.Seq}
	n, err := s.fs.WriteDirect(p, req.Ino, req.Off, src)
	resp.Status = StatusOf(err)
	resp.N = uint32(n)
	if err == nil {
		if a, err2 := s.fs.Getattr(p, req.Ino); err2 == nil {
			resp.Attr = a
		}
	}
	return resp
}

// ---- MX transport ----

// ServeMX starts worker processes serving the protocol on MX kernel
// endpoint epID. Each worker owns a bounce buffer for incoming
// requests (with inline write data) and replies zero-copy from the
// block store.
func (s *Server) ServeMX(m *mx.MX, epID uint8, workers int) (*mx.Endpoint, error) {
	ep, err := m.OpenEndpoint(epID, true)
	if err != nil {
		return nil, err
	}
	env := s.node.Cluster.Env
	for w := 0; w < workers; w++ {
		w := w
		env.Spawn(fmt.Sprintf("%s-rfsrv-mx-%d", s.node.Name, w), func(p *sim.Proc) {
			s.mxWorker(p, ep)
		})
	}
	return ep, nil
}

func (s *Server) mxWorker(p *sim.Proc, ep *mx.Endpoint) {
	kern := s.node.Kernel
	pool := fabric.PoolOf(s.node)
	bounceLen := MaxWriteChunk + HdrBufSize
	bounceBuf, err := pool.Get(bounceLen)
	if err != nil {
		panic(err)
	}
	hdrBuf, err := pool.Get(HdrBufSize)
	if err != nil {
		panic(err)
	}
	bounce, hdrVA := bounceBuf.VA(), hdrBuf.VA()
	reqMatch := core.Match{Bits: reqTag, Mask: 15}
	for {
		rr, err := ep.Recv(p, reqMatch, bounceBuf.KernelVec(bounceLen))
		if err != nil {
			panic(err)
		}
		st := rr.Wait(p)
		raw, _ := kern.ReadBytes(bounce, st.Len)
		req, consumed, err := DecodeReq(raw)
		if err != nil {
			continue // malformed: drop
		}
		s.Requests.Add(st.Len)
		s.node.CPU.VFS(p) // request dispatch
		switch req.Op {
		case OpRead:
			resp, xs := s.readExtents(p, req)
			// Data first (zero-copy from the block store), then the
			// header. A zero-length data message is still sent so the
			// client's posted receive always completes.
			dataVec := physVec(xs)
			if len(dataVec) == 0 {
				dataVec = core.Of(core.PhysSeg(s.zero.Addr(), 0))
			}
			if _, err := ep.Send(p, st.Src, req.EP, tag(req.Seq, req.EP, kindData), dataVec); err != nil {
				panic(err)
			}
			s.replyMX(p, ep, kern, hdrVA, st.Src, req, resp)
		case OpWrite:
			src := core.Of(core.KernelSeg(kern, bounce+vm.VirtAddr(consumed), int(st.Len)-consumed))
			resp := s.handleWrite(p, req, src)
			s.replyMX(p, ep, kern, hdrVA, st.Src, req, resp)
		default:
			resp := s.handleMeta(p, req)
			s.replyMX(p, ep, kern, hdrVA, st.Src, req, resp)
		}
	}
}

func (s *Server) replyMX(p *sim.Proc, ep *mx.Endpoint, kern *vm.AddressSpace, hdrVA vm.VirtAddr, dst hw.NodeID, req *Req, resp *Resp) {
	hdr, err := EncodeResp(resp)
	if err != nil {
		resp = &Resp{Seq: req.Seq, Status: StIO}
		hdr, _ = EncodeResp(resp)
	}
	if err := kern.WriteBytes(hdrVA, hdr); err != nil {
		panic(err)
	}
	if _, err := ep.Send(p, dst, req.EP, tag(req.Seq, req.EP, kindHdr), core.Of(core.KernelSeg(kern, hdrVA, len(hdr)))); err != nil {
		panic(err)
	}
}

// ---- GM transport ----

// ServeGM starts a worker serving the protocol on GM kernel port
// portID. GM offers no vectors and a single event queue, so the server
// (like the client) juggles separate header and data messages and
// filters its completions out of the unique queue — the per-request
// overhead §5.2 blames for the ORFS/GM gap.
func (s *Server) ServeGM(g *gm.GM, portID uint8) (*gm.Port, error) {
	port, err := g.OpenPort(portID, true)
	if err != nil {
		return nil, err
	}
	env := s.node.Cluster.Env
	env.Spawn(fmt.Sprintf("%s-rfsrv-gm", s.node.Name), func(p *sim.Proc) {
		s.gmWorker(p, port)
	})
	return port, nil
}

func (s *Server) gmWorker(p *sim.Proc, port *gm.Port) {
	kern := s.node.Kernel
	pool := fabric.PoolOf(s.node)
	reqBuf, err := pool.Get(4096)
	if err != nil {
		panic(err)
	}
	reqVA, reqXS := reqBuf.VA(), reqBuf.Extents(4096)
	bounceBuf, err := pool.Get(MaxWriteChunk)
	if err != nil {
		panic(err)
	}
	bounceVA := bounceBuf.VA()
	hdrBuf, err := pool.Get(HdrBufSize)
	if err != nil {
		panic(err)
	}
	hdrVA := hdrBuf.VA()
	for {
		if err := port.PostRecvPhysical(p, reqTag, reqXS); err != nil {
			panic(err)
		}
		ev := s.gmWaitRecv(p, port, reqTag)
		raw, _ := kern.ReadBytes(reqVA, ev.Len)
		req, _, err := DecodeReq(raw)
		if err != nil {
			continue
		}
		s.Requests.Add(ev.Len)
		s.node.CPU.VFS(p)
		switch req.Op {
		case OpRead:
			resp, xs := s.readExtents(p, req)
			if len(xs) == 0 {
				xs = []mem.Extent{{Addr: s.zero.Addr(), Len: 0}}
			}
			// Data then header, as separate messages (no vectors in GM).
			if err := port.SendPhysical(p, ev.Src, req.EP, tag(req.Seq, req.EP, kindData), xs); err != nil {
				panic(err)
			}
			s.replyGM(p, port, kern, hdrVA, ev.Src, req, resp)
		case OpWrite:
			// The data message follows the request; post the bounce now
			// (it has usually already arrived and sits in the
			// unexpected queue — GM's eager staging).
			n := int(req.Len)
			if n > MaxWriteChunk {
				s.replyGM(p, port, kern, hdrVA, ev.Src, req, &Resp{Seq: req.Seq, Status: StIO})
				continue
			}
			bxs := bounceBuf.Extents(max(n, 1))
			if err := port.PostRecvPhysical(p, tag(req.Seq, req.EP, kindData), bxs); err != nil {
				panic(err)
			}
			s.gmWaitRecv(p, port, tag(req.Seq, req.EP, kindData))
			resp := s.handleWrite(p, req, core.Of(core.KernelSeg(kern, bounceVA, n)))
			s.replyGM(p, port, kern, hdrVA, ev.Src, req, resp)
		default:
			resp := s.handleMeta(p, req)
			s.replyGM(p, port, kern, hdrVA, ev.Src, req, resp)
		}
	}
}

// gmWaitRecv blocks on the unique event queue until the receive with
// the given tag completes, consuming (and paying for) the unrelated
// send completions that share the queue.
func (s *Server) gmWaitRecv(p *sim.Proc, port *gm.Port, want uint64) gm.Event {
	for {
		ev := port.WaitEvent(p)
		if ev.Type == gm.RecvComplete && ev.Tag == want {
			return ev
		}
	}
}

func (s *Server) replyGM(p *sim.Proc, port *gm.Port, kern *vm.AddressSpace, hdrVA vm.VirtAddr, dst hw.NodeID, req *Req, resp *Resp) {
	hdr, err := EncodeResp(resp)
	if err != nil {
		resp = &Resp{Seq: req.Seq, Status: StIO}
		hdr, _ = EncodeResp(resp)
	}
	if err := kern.WriteBytes(hdrVA, hdr); err != nil {
		panic(err)
	}
	xs, _ := kern.Resolve(hdrVA, len(hdr))
	if err := port.SendPhysical(p, dst, req.EP, tag(req.Seq, req.EP, kindHdr), xs); err != nil {
		panic(err)
	}
}
