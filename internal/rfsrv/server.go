package rfsrv

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// BackingFS is what the server serves: a filesystem whose data blocks
// have physical addresses (so read replies can be sent zero-copy,
// straight from the block store — the server-side analogue of the
// paper's physical-address primitives).
type BackingFS interface {
	kernel.FileSystem
	FrameAt(ino kernel.InodeID, idx int64) *mem.Frame
}

// Server is the ORFA/ORFS file server.
type Server struct {
	node *hw.Node
	fs   BackingFS
	zero *mem.Frame // shared zero page for holes

	// epochs is the per-inode size epoch, the server half of the
	// cluster's size-coherence protocol (DESIGN.md §9): bumped by every
	// exact size set (OpTruncate, OpSetSize in exact mode) and NEVER by
	// data writes or grow-mode reconciliation. Exact sets always fan out
	// to every alive server of a cluster while grow reconciliation may
	// skip servers whose local size is already current, so this bump
	// discipline keeps epochs replicated-identical across a cluster —
	// which is what lets a client treat ANY server's reply epoch as the
	// coherence signal. Every reply carries the epoch of the inode it
	// resolves (Resp.Epoch).
	epochs map[kernel.InodeID]uint64

	// layouts records each regular file's stripe-layout class
	// (DESIGN.md §10), set by a create hint or OpSetLayout. Absence
	// means LayoutStandard — unhinted creates never populate the map,
	// so a policy-free cluster costs no entries. The server itself
	// serves whatever byte ranges it is asked for regardless of class;
	// the class is authoritative placement metadata FOR CLIENTS, carried
	// in every reply that resolves the inode (Resp.Layout) so any round
	// trip teaches a cluster client where the file's data lives.
	layouts map[kernel.InodeID]LayoutClass

	// sessions is the per-client protocol state: one entry per (node,
	// endpoint) pair that has sent a request, tracking that client's
	// sliding window as seen from the server.
	sessions map[clientKey]*ClientSession

	// workFree recycles MX work records (and their header-scratch
	// buffers) between the dispatcher and the workers — one simulated
	// host, so a plain freelist needs no locking.
	workFree []*mxWork

	// Sharded-namespace state (see EnableSharding): when shard is set
	// this server owns only the directories whose routing residue falls
	// in [shardIdx, shardIdx+shardR) mod shardN and refuses namespace
	// mutations outside that slice with StNotOwner. sfs is fs narrowed
	// to the sharded verbs; renames holds the source-side marks of
	// in-flight two-phase renames (see OpRenamePrepare).
	shard    bool
	shardIdx int
	shardN   int
	shardR   int
	sfs      ShardBackingFS
	renames  map[renameKey]renameMark

	// member is the membership-view epoch this server last committed
	// (OpMember, DESIGN.md §13), stamped into every reply's epoch slot
	// so clients routing under an older view find out on their next
	// round trip. Zero for the fixed-membership clusters every
	// pre-elastic test and figure builds.
	member uint64

	// Requests counts served operations; Batched counts requests that
	// arrived packed behind another in one message (§3.3-style
	// combining, client side).
	Requests, Batched sim.Counter
}

// getWork takes a work record from the freelist (or allocates one).
func (s *Server) getWork() *mxWork {
	if k := len(s.workFree); k > 0 {
		w := s.workFree[k-1]
		s.workFree = s.workFree[:k-1]
		return w
	}
	return &mxWork{rawBuf: make([]byte, 4096)}
}

// putWork recycles a finished work record.
func (s *Server) putWork(w *mxWork) {
	w.req, w.raw, w.buf, w.sess = nil, nil, nil, nil
	s.workFree = append(s.workFree, w)
}

type clientKey struct {
	node hw.NodeID
	ep   uint8
}

// ClientSession is the server-side record of one client endpoint:
// how many of its requests are in the server right now (queued or
// being served) and the deepest window it has kept open. Workers use
// it for accounting; tests use it to verify pipelining reached the
// server.
type ClientSession struct {
	Node hw.NodeID
	EP   uint8

	Outstanding    int
	MaxOutstanding int
	Served         sim.Counter
}

// NewServer creates a server for fs on node.
func NewServer(node *hw.Node, fs BackingFS) *Server {
	zero, err := node.Mem.AllocFrame()
	if err != nil {
		panic(err)
	}
	return &Server{
		node: node, fs: fs, zero: zero,
		epochs:   make(map[kernel.InodeID]uint64),
		layouts:  make(map[kernel.InodeID]LayoutClass),
		sessions: make(map[clientKey]*ClientSession),
	}
}

// session returns (creating on first contact) the per-client state.
func (s *Server) session(src hw.NodeID, ep uint8) *ClientSession {
	k := clientKey{src, ep}
	cs := s.sessions[k]
	if cs == nil {
		cs = &ClientSession{Node: src, EP: ep}
		s.sessions[k] = cs
	}
	return cs
}

// Sessions returns the per-client session records (stats, tests) in
// (node, endpoint) order.
func (s *Server) Sessions() []*ClientSession {
	out := make([]*ClientSession, 0, len(s.sessions))
	for _, cs := range s.sessions {
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].EP < out[j].EP
	})
	return out
}

// handleMeta executes a metadata request against the backing store.
func (s *Server) handleMeta(p *sim.Proc, req *Req) *Resp {
	resp := &Resp{Seq: req.Seq}
	ino := req.Ino
	if ino == 0 {
		ino = s.fs.Root()
	}
	var err error
	//analyze:dispatch ops group=serve
	switch req.Op {
	case OpLookup:
		resp.Attr, err = s.fs.Lookup(p, ino, req.Name)
	case OpGetattr:
		resp.Attr, err = s.fs.Getattr(p, ino)
	case OpReaddir:
		resp.Entries, err = s.fs.Readdir(p, ino)
	case OpCreate:
		// Sharded servers interpret Len as the client's routing-residue
		// hint instead (shard mode forbids layout hints, which is what
		// frees the field — see Cluster.EnableShardedNamespace).
		if s.shard {
			resp.Attr, err = s.shardMakeNode(p, ino, req, kernel.RegularFile)
			break
		}
		// Len carries the creator's layout-class hint (zero — the wire
		// default — is LayoutStandard, so pre-layout clients are
		// unchanged). Out-of-range hints are protocol violations.
		if !ValidLayout(LayoutClass(req.Len)) {
			err = ErrInval
			break
		}
		resp.Attr, err = s.fs.Create(p, ino, req.Name)
		if err == nil && LayoutClass(req.Len) != LayoutStandard {
			s.layouts[resp.Attr.Ino] = LayoutClass(req.Len)
		}
	case OpMkdir:
		if s.shard {
			resp.Attr, err = s.shardMakeNode(p, ino, req, kernel.Directory)
			break
		}
		resp.Attr, err = s.fs.Mkdir(p, ino, req.Name)
	case OpUnlink:
		if s.shard {
			// The sharded unlink replies with the victim's attributes:
			// the owner group is the only place the client can learn the
			// dead inode it must lazily scrub everywhere else.
			resp.Attr, err = s.shardUnlink(p, ino, req)
			break
		}
		// Resolve the victim first (a free map lookup) so its size-epoch
		// entry can be pruned with it — unpruned entries would leak for
		// the server's lifetime, and a backing store that recycled inode
		// numbers would hand a fresh file a stale epoch.
		victim, lerr := s.fs.Lookup(p, ino, req.Name)
		if err = s.fs.Unlink(p, ino, req.Name); err == nil && lerr == nil {
			delete(s.epochs, victim.Ino)
			delete(s.layouts, victim.Ino)
		}
	case OpRmdir:
		if s.shard {
			if !s.ownsDir(ino) {
				err = ErrNotOwner
				break
			}
			if s.renameMarked(ino, req.Name) {
				err = ErrBusy
				break
			}
		}
		err = s.fs.Rmdir(p, ino, req.Name)
	case OpTruncate:
		if req.Off < 0 {
			err = ErrInval // a negative size would corrupt the block map
		} else if err = s.fs.Truncate(p, ino, req.Off); err == nil {
			// An exact size set invalidates every cached view of the
			// file's size: bump the epoch (see the epochs field).
			s.epochs[ino]++
		}
	case OpSetSize:
		err = s.handleSetSize(p, ino, req, resp)
	case OpSetLayout:
		lc := LayoutClass(req.Len)
		if !ValidLayout(lc) {
			err = ErrInval
			break
		}
		if resp.Attr, err = s.fs.Getattr(p, ino); err != nil {
			break
		}
		if lc == LayoutStandard {
			delete(s.layouts, ino)
		} else {
			s.layouts[ino] = lc
		}
		// A layout change relocates data, so every cached (size, layout)
		// view of the file elsewhere is now wrong: bump the size epoch
		// and let the validated cache invalidate them, exactly like a
		// truncate (see Server.epochs).
		s.epochs[ino]++
	case OpLink:
		resp.Attr, err = s.handleLink(p, ino, req)
	case OpMaterialize:
		resp.Attr, err = s.handleMaterialize(p, ino, req)
	case OpScrub:
		err = s.handleScrub(p, ino, req)
	case OpRenamePrepare:
		resp.Attr, err = s.handleRenamePrepare(p, ino, req)
	case OpRenameFinalize:
		err = s.handleRenameFinalize(p, ino, req)
	case OpRenameAbort:
		err = s.handleRenameAbort(p, ino, req)
	case OpRenameLocal:
		resp.Attr, err = s.handleRenameLocal(p, ino, req)
	case OpMember:
		err = s.handleMember(p, req)
	case OpSyncEpoch:
		// Resync-only epoch alignment (see the opcode): set the inode's
		// size epoch so the replayed mutation that follows lands at the
		// epoch the rest of the cluster recorded.
		if req.Off < 0 {
			err = ErrInval
			break
		}
		s.materializeOnDemand(p, ino, kernel.RegularFile)
		if req.Off == 0 {
			delete(s.epochs, ino)
		} else {
			s.epochs[ino] = uint64(req.Off)
		}
		resp.Attr, err = s.fs.Getattr(p, ino)
	default:
		err = fmt.Errorf("rfsrv: bad op %v", req.Op)
	}
	resp.Status = StatusOf(err)
	// Every reply advertises the size epoch and layout class of the
	// inode it resolved (the looked-up child when the operation returned
	// one), so any round trip revalidates a cluster client's size cache
	// and teaches it the file's placement.
	if resp.Attr.Ino != 0 {
		resp.Epoch = s.epochs[resp.Attr.Ino]
		resp.Layout = s.layouts[resp.Attr.Ino]
	} else {
		resp.Epoch = s.epochs[ino]
		resp.Layout = s.layouts[ino]
	}
	resp.MemberEpoch = s.member
	return resp
}

// handleMember commits a new membership view on this server
// (DESIGN.md §13): it adopts the epoch for reply stamping and, in
// sharded mode, swaps the §11 ownership geometry and re-bases the
// backing store's minting partition past the mint floor so inodes
// minted under the new geometry route by (ino−2) mod N and never
// collide with old ones.
func (s *Server) handleMember(p *sim.Proc, req *Req) error {
	pos, n, r, sharded := UnpackMember(req.Len)
	if req.Off < 0 || n <= 0 || r <= 0 || r > n || pos >= n {
		return ErrInval
	}
	s.member = uint64(req.Off)
	if !sharded {
		return nil
	}
	if s.sfs == nil {
		return ErrInval // sharded commit needs a shard-capable backing store
	}
	s.shard = true
	s.shardIdx, s.shardN, s.shardR = pos, n, r
	if pf, ok := s.fs.(interface {
		SetInodePartitionFloor(index, count int, floor kernel.InodeID)
	}); ok {
		pf.SetInodePartitionFloor(pos, n, req.Ino)
	}
	return nil
}

// handleSetSize executes the size-coherence operation: a grow-only
// reconciliation (size = max(size, Off), epoch untouched) or an exact
// set (size = Off, epoch bumped), refused with StStale when the
// writer's observed epoch is behind — the reply then carries the
// authoritative (size, epoch) so the writer revalidates in one round
// trip.
func (s *Server) handleSetSize(p *sim.Proc, ino kernel.InodeID, req *Req, resp *Resp) error {
	if req.Off < 0 {
		return ErrInval // a negative size would corrupt the block map
	}
	// A sharded server may first hear of a foreign-owned inode through
	// a size publish or global truncate: materialize a stub (epoch 0,
	// matching what every fresh replica would hold) and proceed.
	s.materializeOnDemand(p, ino, kernel.RegularFile)
	exact, observed := UnpackSetSize(req.Len)
	if uint32(s.epochs[ino]&SetSizeEpochMask) != observed {
		// Stale writer: report, and let the getattr below fill the
		// authoritative attributes for revalidation.
		if a, aerr := s.fs.Getattr(p, ino); aerr == nil {
			resp.Attr = a
		}
		return ErrStaleEpoch
	}
	var err error
	if exact {
		if err = s.fs.Truncate(p, ino, req.Off); err == nil {
			s.epochs[ino]++
			resp.Attr, err = s.fs.Getattr(p, ino)
		}
		return err
	}
	resp.Attr, err = s.fs.Getattr(p, ino)
	if err == nil && req.Off > resp.Attr.Size {
		// Grow-only: idempotent, replayable against any subset of
		// servers, and deliberately epoch-neutral (see Server.epochs).
		if err = s.fs.Truncate(p, ino, req.Off); err == nil {
			resp.Attr, err = s.fs.Getattr(p, ino)
		}
	}
	return err
}

// readExtents builds the zero-copy reply extents for a read: physical
// runs of the file's block frames (the zero page for holes), clipped to
// EOF. It returns the response and the extents to transmit.
func (s *Server) readExtents(p *sim.Proc, req *Req) (*Resp, []mem.Extent) {
	resp := &Resp{Seq: req.Seq}
	// A negative or overflowing range is a protocol violation, not a
	// short read: reject it outright instead of clipping silently (the
	// clip below assumes a well-formed [Off, Off+Len) window).
	if req.Off < 0 || req.Off+int64(req.Len) < req.Off {
		resp.Status = StInval
		return resp, nil
	}
	attr, err := s.fs.Getattr(p, req.Ino)
	if err != nil {
		if s.shard && err == kernel.ErrNotFound {
			// Sharded data server that never saw this inode: nothing of
			// it lives here yet, which reads as EOF, not as an error —
			// the stripe layout is global but materialization is lazy.
			return resp, nil
		}
		resp.Status = StatusOf(err)
		return resp, nil
	}
	n := int64(req.Len)
	if req.Off >= attr.Size {
		n = 0
	} else if req.Off+n > attr.Size {
		n = attr.Size - req.Off
	}
	var xs []mem.Extent
	off := req.Off
	left := n
	for left > 0 {
		idx := off / mem.PageSize
		pgOff := int(off % mem.PageSize)
		chunk := int64(mem.PageSize - pgOff)
		if chunk > left {
			chunk = left
		}
		f := s.fs.FrameAt(req.Ino, idx)
		if f == nil {
			f = s.zero // hole
		}
		xs = append(xs, mem.Extent{Addr: f.Addr() + mem.PhysAddr(pgOff), Len: int(chunk)})
		off += chunk
		left -= chunk
	}
	resp.N = uint32(n)
	resp.Attr = attr
	resp.Epoch = s.epochs[req.Ino]
	resp.Layout = s.layouts[req.Ino]
	resp.MemberEpoch = s.member
	return resp, mem.MergeExtents(xs)
}

// handleWrite applies inline write data (already landed in the
// transport's bounce buffer, described by src).
func (s *Server) handleWrite(p *sim.Proc, req *Req, src core.Vector) *Resp {
	resp := &Resp{Seq: req.Seq}
	if req.Off < 0 || req.Off+int64(req.Len) < req.Off {
		resp.Status = StInval
		return resp
	}
	s.materializeOnDemand(p, req.Ino, kernel.RegularFile)
	n, err := s.fs.WriteDirect(p, req.Ino, req.Off, src)
	resp.Status = StatusOf(err)
	resp.N = uint32(n)
	if err == nil {
		if a, err2 := s.fs.Getattr(p, req.Ino); err2 == nil {
			resp.Attr = a
		}
	}
	// Data writes extend local sizes but never bump the size epoch
	// (see Server.epochs); the reply still advertises the current one,
	// and the layout class along with it.
	resp.Epoch = s.epochs[req.Ino]
	resp.Layout = s.layouts[req.Ino]
	resp.MemberEpoch = s.member
	return resp
}

// ---- MX transport ----

// mxWork is one received request message on its way from the receive
// dispatcher to the worker pool: the decoded leading request, the raw
// message (which may carry inline write data, or further packed
// metadata requests), and the pooled bounce buffer the message landed
// in (released once the worker is done with it).
type mxWork struct {
	req      *Req
	src      hw.NodeID
	raw      []byte // leading <=4096 bytes (header+name, or a packed batch)
	rawBuf   []byte // backing storage for raw, reused across recycles
	n        int    // full message length (write payload stays in buf)
	consumed int
	buf      *fabric.Buffer
	sess     *ClientSession
}

// ServeMX serves the protocol on MX kernel endpoint epID: one receive
// dispatcher keeps a request receive posted and feeds a shared queue
// that `workers` worker processes drain. Replacing the former
// one-synchronous-loop-per-worker shape, the dispatcher can accept a
// pipelined client's next request while every worker is still busy —
// the server half of the protocol's sliding window.
func (s *Server) ServeMX(m *mx.MX, epID uint8, workers int) (*mx.Endpoint, error) {
	ep, err := m.OpenEndpoint(epID, true)
	if err != nil {
		return nil, err
	}
	env := s.node.Cluster.Env
	queue := sim.NewChan[*mxWork](env)
	env.Spawn(fmt.Sprintf("%s-rfsrv-mx-rx", s.node.Name), func(p *sim.Proc) {
		s.mxDispatch(p, ep, queue)
	})
	for w := 0; w < workers; w++ {
		w := w
		env.Spawn(fmt.Sprintf("%s-rfsrv-mx-%d", s.node.Name, w), func(p *sim.Proc) {
			s.mxWorker(p, ep, queue)
		})
	}
	return ep, nil
}

// mxDispatch receives request messages into pooled bounce buffers and
// queues them for the workers. Each outstanding request holds its own
// buffer (returned to the pool when its worker finishes), so the
// queue depth is bounded only by the clients' aggregate window.
func (s *Server) mxDispatch(p *sim.Proc, ep *mx.Endpoint, queue *sim.Chan[*mxWork]) {
	kern := s.node.Kernel
	pool := fabric.PoolOf(s.node)
	bounceLen := MaxWriteChunk + HdrBufSize
	reqMatch := core.Match{Bits: reqTag, Mask: 15}
	for {
		buf, err := pool.Get(bounceLen)
		if err != nil {
			panic(err)
		}
		rr, err := ep.Recv(p, reqMatch, buf.KernelVec(bounceLen))
		if err != nil {
			panic(err)
		}
		st := rr.Wait(p)
		// Only the header (plus a possible packed batch) is decoded on
		// the host: requests are capped at 4096 bytes by the client, so
		// a longer message is a write whose payload stays in the bounce
		// buffer and is consumed in place by the worker. Copying all of
		// st.Len here would drag up to MaxWriteChunk through the kernel
		// for nothing.
		head := st.Len
		if head > 4096 {
			head = 4096
		}
		w := s.getWork()
		raw := w.rawBuf[:head]
		if err := kern.ReadBytesInto(buf.VA(), raw); err != nil {
			panic(err)
		}
		req, consumed, err := DecodeReq(raw)
		if err != nil {
			buf.Release()
			s.putWork(w)
			continue // malformed: drop
		}
		s.Requests.Add(st.Len)
		sess := s.session(st.Src, req.EP)
		sess.Outstanding++
		if sess.Outstanding > sess.MaxOutstanding {
			sess.MaxOutstanding = sess.Outstanding
		}
		w.req, w.src, w.raw, w.n, w.consumed, w.buf, w.sess = req, st.Src, raw, st.Len, consumed, buf, sess
		queue.Send(w)
	}
}

func (s *Server) mxWorker(p *sim.Proc, ep *mx.Endpoint, queue *sim.Chan[*mxWork]) {
	kern := s.node.Kernel
	hdrBuf, err := fabric.PoolOf(s.node).Get(HdrBufSize)
	if err != nil {
		panic(err)
	}
	hdrVA := hdrBuf.VA()
	encBuf := make([]byte, 0, respFixed)
	for {
		w := queue.Recv(p)
		s.node.CPU.VFS(p) // request dispatch
		//analyze:dispatch ops group=serve
		switch w.req.Op {
		case OpRead:
			resp, xs := s.readExtents(p, w.req)
			// Data first (zero-copy from the block store), then the
			// header. A zero-length data message is still sent so the
			// client's posted receive always completes.
			dataVec := physVec(xs)
			if len(dataVec) == 0 {
				dataVec = core.Of(core.PhysSeg(s.zero.Addr(), 0))
			}
			if _, err := ep.Send(p, w.src, w.req.EP, tag(w.req.Seq, w.req.EP, kindData), dataVec); err != nil {
				panic(err)
			}
			encBuf = s.replyMX(p, ep, kern, hdrVA, encBuf, w.src, w.req, resp)
		case OpWrite:
			src := core.Of(core.KernelSeg(kern, w.buf.VA()+vm.VirtAddr(w.consumed), w.n-w.consumed))
			resp := s.handleWrite(p, w.req, src)
			encBuf = s.replyMX(p, ep, kern, hdrVA, encBuf, w.src, w.req, resp)
		default:
			resp := s.handleMeta(p, w.req)
			encBuf = s.replyMX(p, ep, kern, hdrVA, encBuf, w.src, w.req, resp)
			// Trailing bytes after a metadata request are further
			// packed requests (client-side combining): answer each.
			for _, extra := range s.unpack(w.raw[w.consumed:]) {
				s.Batched.Add(1)
				w.sess.Served.Add(1)
				resp := s.handleMeta(p, extra)
				encBuf = s.replyMX(p, ep, kern, hdrVA, encBuf, w.src, extra, resp)
			}
		}
		w.sess.Served.Add(1)
		w.sess.Outstanding--
		w.buf.Release()
		s.putWork(w)
	}
}

// unpack decodes the metadata requests packed behind the first one in
// a combined message. A decode error drops the remainder (malformed
// trailing bytes), like any other malformed request.
func (s *Server) unpack(raw []byte) []*Req {
	var out []*Req
	for len(raw) >= reqFixed {
		req, consumed, err := DecodeReq(raw)
		if err != nil || req.Op == OpRead || req.Op == OpWrite {
			break
		}
		out = append(out, req)
		raw = raw[consumed:]
	}
	return out
}

// replyMX encodes resp into enc (a per-worker scratch, safe because
// the bytes are copied into the worker's header buffer before Send)
// and returns the scratch for reuse.
func (s *Server) replyMX(p *sim.Proc, ep *mx.Endpoint, kern *vm.AddressSpace, hdrVA vm.VirtAddr, enc []byte, dst hw.NodeID, req *Req, resp *Resp) []byte {
	hdr, err := EncodeRespInto(enc[:0], resp)
	if err != nil {
		resp = &Resp{Seq: req.Seq, Status: StIO}
		hdr, _ = EncodeRespInto(enc[:0], resp)
	}
	if err := kern.WriteBytes(hdrVA, hdr); err != nil {
		panic(err)
	}
	if _, err := ep.Send(p, dst, req.EP, tag(req.Seq, req.EP, kindHdr), core.Of(core.KernelSeg(kern, hdrVA, len(hdr)))); err != nil {
		panic(err)
	}
	return hdr
}

// ---- GM transport ----

// ServeGM starts a worker serving the protocol on GM kernel port
// portID. GM offers no vectors and a single event queue, so the server
// (like the client) juggles separate header and data messages and
// filters its completions out of the unique queue — the per-request
// overhead §5.2 blames for the ORFS/GM gap. The same unique queue is
// why GM keeps the ordered single-worker loop instead of the MX
// dispatcher/worker-pool split: completions must be drained by one
// consumer, so requests are served in arrival order (pipelined
// clients still overlap their requests' transfers with its work).
func (s *Server) ServeGM(g *gm.GM, portID uint8) (*gm.Port, error) {
	port, err := g.OpenPort(portID, true)
	if err != nil {
		return nil, err
	}
	env := s.node.Cluster.Env
	env.Spawn(fmt.Sprintf("%s-rfsrv-gm", s.node.Name), func(p *sim.Proc) {
		s.gmWorker(p, port)
	})
	return port, nil
}

// gmReplies tracks reply-header buffers whose send is still in the
// NIC: GM gathers the payload at DMA time, so a header buffer cannot
// be reused (or recycled) until its SendComplete event arrives. Each
// reply stages in its own pooled buffer; the event drain loop releases
// them. Without this, back-to-back replies to a pipelined client would
// overwrite one another's staging — the shared-buffer bug the
// synchronous protocol could never hit.
type gmReplies struct {
	pending map[uint64][]*fabric.Buffer // hdr send tag → staged buffers, FIFO
}

// sent records a reply buffer as in-flight under its send tag.
func (t *gmReplies) sent(tag uint64, buf *fabric.Buffer) {
	t.pending[tag] = append(t.pending[tag], buf)
}

// event releases the oldest staged buffer for a completed header send
// (same-tag sends complete in FIFO order on the NIC's transmit path).
func (t *gmReplies) event(ev gm.Event) {
	if ev.Type != gm.SendComplete {
		return
	}
	q := t.pending[ev.Tag]
	if len(q) == 0 {
		return
	}
	q[0].Release()
	if len(q) == 1 {
		delete(t.pending, ev.Tag)
	} else {
		t.pending[ev.Tag] = q[1:]
	}
}

func (s *Server) gmWorker(p *sim.Proc, port *gm.Port) {
	kern := s.node.Kernel
	pool := fabric.PoolOf(s.node)
	reqBuf, err := pool.Get(4096)
	if err != nil {
		panic(err)
	}
	reqVA, reqXS := reqBuf.VA(), reqBuf.Extents(4096)
	bounceBuf, err := pool.Get(MaxWriteChunk)
	if err != nil {
		panic(err)
	}
	bounceVA := bounceBuf.VA()
	replies := &gmReplies{pending: make(map[uint64][]*fabric.Buffer)}
	// Request bytes are decoded in place from this scratch each
	// iteration: DecodeReq copies everything it keeps (names included),
	// and the GM loop is strictly sequential, so reuse is safe.
	rawScratch := make([]byte, 4096)
	encBuf := make([]byte, 0, respFixed)
	for {
		if err := port.PostRecvPhysical(p, reqTag, reqXS); err != nil {
			panic(err)
		}
		ev := s.gmWaitRecv(p, port, replies, reqTag)
		raw := rawScratch[:ev.Len]
		if err := kern.ReadBytesInto(reqVA, raw); err != nil {
			panic(err)
		}
		req, consumed, err := DecodeReq(raw)
		if err != nil {
			continue
		}
		s.Requests.Add(ev.Len)
		sess := s.session(ev.Src, req.EP)
		sess.Outstanding++
		if sess.Outstanding > sess.MaxOutstanding {
			sess.MaxOutstanding = sess.Outstanding
		}
		s.node.CPU.VFS(p)
		//analyze:dispatch ops group=serve
		switch req.Op {
		case OpRead:
			resp, xs := s.readExtents(p, req)
			if len(xs) == 0 {
				xs = []mem.Extent{{Addr: s.zero.Addr(), Len: 0}}
			}
			// Data then header, as separate messages (no vectors in GM).
			if err := port.SendPhysical(p, ev.Src, req.EP, tag(req.Seq, req.EP, kindData), xs); err != nil {
				panic(err)
			}
			encBuf = s.replyGM(p, port, kern, replies, encBuf, ev.Src, req, resp)
		case OpWrite:
			// The data message follows the request; post the bounce now
			// (it has usually already arrived and sits in the
			// unexpected queue — GM's eager staging).
			n := int(req.Len)
			if n > MaxWriteChunk {
				encBuf = s.replyGM(p, port, kern, replies, encBuf, ev.Src, req, &Resp{Seq: req.Seq, Status: StIO})
				sess.Served.Add(1)
				sess.Outstanding--
				continue
			}
			bxs := bounceBuf.Extents(max(n, 1))
			if err := port.PostRecvPhysical(p, tag(req.Seq, req.EP, kindData), bxs); err != nil {
				panic(err)
			}
			s.gmWaitRecv(p, port, replies, tag(req.Seq, req.EP, kindData))
			resp := s.handleWrite(p, req, core.Of(core.KernelSeg(kern, bounceVA, n)))
			encBuf = s.replyGM(p, port, kern, replies, encBuf, ev.Src, req, resp)
		default:
			resp := s.handleMeta(p, req)
			encBuf = s.replyGM(p, port, kern, replies, encBuf, ev.Src, req, resp)
			for _, extra := range s.unpack(raw[consumed:]) {
				s.Batched.Add(1)
				sess.Served.Add(1)
				resp := s.handleMeta(p, extra)
				encBuf = s.replyGM(p, port, kern, replies, encBuf, ev.Src, extra, resp)
			}
		}
		sess.Served.Add(1)
		sess.Outstanding--
	}
}

// gmWaitRecv blocks on the unique event queue until the receive with
// the given tag completes, consuming (and paying for) the unrelated
// send completions that share the queue.
func (s *Server) gmWaitRecv(p *sim.Proc, port *gm.Port, replies *gmReplies, want uint64) gm.Event {
	for {
		ev := port.WaitEvent(p)
		replies.event(ev) // recycle reply staging whose send completed
		if ev.Type == gm.RecvComplete && ev.Tag == want {
			return ev
		}
	}
}

// replyGM encodes resp into enc (the worker's scratch — the bytes are
// copied into a pooled staging buffer before Send) and returns the
// scratch for reuse.
func (s *Server) replyGM(p *sim.Proc, port *gm.Port, kern *vm.AddressSpace, replies *gmReplies, enc []byte, dst hw.NodeID, req *Req, resp *Resp) []byte {
	hdr, err := EncodeRespInto(enc[:0], resp)
	if err != nil {
		resp = &Resp{Seq: req.Seq, Status: StIO}
		hdr, _ = EncodeRespInto(enc[:0], resp)
	}
	// Each reply stages in its own pooled buffer: GM gathers the
	// payload at DMA time, so the buffer stays reserved until its
	// SendComplete comes back through the event queue.
	buf, err := fabric.PoolOf(s.node).Get(HdrBufSize)
	if err != nil {
		panic(err)
	}
	if err := kern.WriteBytes(buf.VA(), hdr); err != nil {
		panic(err)
	}
	hdrTag := tag(req.Seq, req.EP, kindHdr)
	if err := port.SendPhysical(p, dst, req.EP, hdrTag, buf.Extents(len(hdr))); err != nil {
		panic(err)
	}
	replies.sent(hdrTag, buf)
	return hdr
}
