package rfsrv_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/orfa"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

const us = time.Microsecond

// rig is a two-node client/server fixture with both transports served.
type rig struct {
	env            *sim.Engine
	params         *hw.Params
	client, server *hw.Node
	serverFS       *memfs.FS
	srv            *rfsrv.Server
	gmC            *gm.GM
	mxC            *mx.MX
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := sim.NewEngine()
	params := hw.DefaultParams()
	c := hw.NewCluster(env, params, hw.PCIXD)
	r := &rig{env: env, params: params}
	r.client, r.server = c.AddNode("client"), c.AddNode("server")
	r.gmC = gm.Attach(r.client)
	r.mxC = mx.Attach(r.client)
	gmS := gm.Attach(r.server)
	mxS := mx.Attach(r.server)
	r.serverFS = memfs.New("backing", r.server, 0)
	r.srv = rfsrv.NewServer(r.server, r.serverFS)
	if _, err := r.srv.ServeMX(mxS, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.ServeGM(gmS, 1); err != nil {
		t.Fatal(err)
	}
	return r
}

// run executes body in a proc and fails the test on deadlock.
func (r *rig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("test body deadlocked")
	}
}

// mxKernelClient builds an ORFS-style transport.
func (r *rig) mxKernelClient(t *testing.T) *rfsrv.MXClient {
	t.Helper()
	cl, err := rfsrv.NewMXClient(r.mxC, 2, true, r.client.Kernel, r.server.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func (r *rig) gmKernelClient(t *testing.T, p *sim.Proc, cachePages int) *rfsrv.GMClient {
	t.Helper()
	cl, err := rfsrv.NewGMClient(p, r.gmC, 2, true, r.client.Kernel, r.server.ID, 1, cachePages)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*31 + 5)
	}
	return out
}

// seed creates a file directly in the server's backing store.
func (r *rig) seed(t *testing.T, p *sim.Proc, name string, data []byte) kernel.InodeID {
	t.Helper()
	attr, err := r.serverFS.Create(p, r.serverFS.Root(), name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.serverFS.WriteDirect(p, attr.Ino, 0, nil); err == nil {
		_ = err
	}
	// Write via direct bytes through a kernel vector on the server.
	kva, err := r.server.Kernel.Mmap(len(data)+mem.PageSize, "seed")
	if err != nil {
		t.Fatal(err)
	}
	r.server.Kernel.WriteBytes(kva, data)
	if n, err := r.serverFS.WriteDirect(p, attr.Ino, 0, core.Of(core.KernelSeg(r.server.Kernel, kva, len(data)))); err != nil || n != len(data) {
		t.Fatalf("seed write: %d %v", n, err)
	}
	return attr.Ino
}

func TestMetaOpsOverBothTransports(t *testing.T) {
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			r.run(t, func(p *sim.Proc) {
				var cl rfsrv.Client
				if transport == "mx" {
					cl = r.mxKernelClient(t)
				} else {
					cl = r.gmKernelClient(t, p, 1024)
				}
				root, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: 0})
				if err != nil || root.Attr.Kind != kernel.Directory {
					t.Fatalf("root getattr: %+v %v", root, err)
				}
				mk, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: root.Attr.Ino, Name: "d"})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: mk.Attr.Ino, Name: "f"}); err != nil {
					t.Fatal(err)
				}
				lk, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: mk.Attr.Ino, Name: "f"})
				if err != nil || lk.Attr.Kind != kernel.RegularFile {
					t.Fatalf("lookup: %+v %v", lk, err)
				}
				rd, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: mk.Attr.Ino})
				if err != nil || len(rd.Entries) != 1 || rd.Entries[0].Name != "f" {
					t.Fatalf("readdir: %+v %v", rd, err)
				}
				if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: root.Attr.Ino, Name: "nope"}); err != kernel.ErrNotFound {
					t.Fatalf("missing lookup: %v", err)
				}
			})
		})
	}
}

func TestReadIntoPhysicalFrames(t *testing.T) {
	// The buffered-access core: read file pages straight into
	// page-cache-like frames over both transports.
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			data := pattern(3*mem.PageSize + 100)
			r.run(t, func(p *sim.Proc) {
				ino := r.seed(t, p, "f", data)
				var cl rfsrv.Client
				if transport == "mx" {
					cl = r.mxKernelClient(t)
				} else {
					cl = r.gmKernelClient(t, p, 1024)
				}
				for idx := int64(0); idx < 4; idx++ {
					frame, _ := r.client.Mem.AllocFrame()
					resp, err := cl.Read(p, ino, idx*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), mem.PageSize)))
					if err != nil {
						t.Fatal(err)
					}
					want := data[idx*mem.PageSize:]
					if len(want) > mem.PageSize {
						want = want[:mem.PageSize]
					}
					if int(resp.N) != len(want) {
						t.Fatalf("page %d: n=%d want %d", idx, resp.N, len(want))
					}
					if !bytes.Equal(frame.Data()[:resp.N], want) {
						t.Fatalf("page %d corrupted", idx)
					}
				}
				// Past EOF: zero-length read must not hang.
				frame, _ := r.client.Mem.AllocFrame()
				resp, err := cl.Read(p, ino, 100*mem.PageSize, core.Of(core.PhysSeg(frame.Addr(), mem.PageSize)))
				if err != nil || resp.N != 0 {
					t.Fatalf("EOF read: n=%d err=%v", resp.N, err)
				}
			})
		})
	}
}

func TestReadIntoUserBuffer(t *testing.T) {
	// The direct-access core: arbitrary-size reads into user memory,
	// including a rendezvous-sized one.
	for _, transport := range []string{"mx", "gm"} {
		for _, n := range []int{777, 4096, 60000, 300000} {
			t.Run(fmt.Sprintf("%s-%d", transport, n), func(t *testing.T) {
				r := newRig(t)
				data := pattern(n)
				r.run(t, func(p *sim.Proc) {
					ino := r.seed(t, p, "f", data)
					var cl rfsrv.Client
					if transport == "mx" {
						cl = r.mxKernelClient(t)
					} else {
						cl = r.gmKernelClient(t, p, 1024)
					}
					as := r.client.NewUserSpace("app")
					va, _ := as.Mmap(n+mem.PageSize, "buf")
					resp, err := cl.Read(p, ino, 0, core.Of(core.UserSeg(as, va, n)))
					if err != nil || int(resp.N) != n {
						t.Fatalf("read: n=%d err=%v", resp.N, err)
					}
					got, _ := as.ReadBytes(va, n)
					if !bytes.Equal(got, data) {
						t.Fatal("user-buffer read corrupted")
					}
				})
			})
		}
	}
}

func TestWriteFromUserBuffer(t *testing.T) {
	for _, transport := range []string{"mx", "gm"} {
		for _, n := range []int{100, 5000, 300000} { // includes chunked write
			t.Run(fmt.Sprintf("%s-%d", transport, n), func(t *testing.T) {
				r := newRig(t)
				data := pattern(n)
				r.run(t, func(p *sim.Proc) {
					var cl rfsrv.Client
					if transport == "mx" {
						cl = r.mxKernelClient(t)
					} else {
						cl = r.gmKernelClient(t, p, 1024)
					}
					created, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "w"})
					if err != nil {
						t.Fatal(err)
					}
					as := r.client.NewUserSpace("app")
					va, _ := as.Mmap(n+mem.PageSize, "buf")
					as.WriteBytes(va, data)
					resp, err := cl.Write(p, created.Attr.Ino, 0, core.Of(core.UserSeg(as, va, n)))
					if err != nil || int(resp.N) != n {
						t.Fatalf("write: n=%d err=%v", resp.N, err)
					}
					// Verify server-side content.
					got := make([]byte, n)
					kva, _ := r.server.Kernel.Mmap(n+mem.PageSize, "check")
					rn, err := r.serverFS.ReadDirect(p, created.Attr.Ino, 0, core.Of(core.KernelSeg(r.server.Kernel, kva, n)))
					if err != nil || rn != n {
						t.Fatalf("server readback: %d %v", rn, err)
					}
					chunk, _ := r.server.Kernel.ReadBytes(kva, n)
					copy(got, chunk)
					if !bytes.Equal(got, data) {
						t.Fatal("written data corrupted")
					}
				})
			})
		}
	}
}

func TestZeroLengthWrite(t *testing.T) {
	// A zero-byte write must complete the protocol handshake (not hang
	// or error) on both transports — the empty-vector path through the
	// fabric.
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			r.run(t, func(p *sim.Proc) {
				var cl rfsrv.Client
				if transport == "mx" {
					cl = r.mxKernelClient(t)
				} else {
					cl = r.gmKernelClient(t, p, 1024)
				}
				created, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "empty"})
				if err != nil {
					t.Fatal(err)
				}
				resp, err := cl.Write(p, created.Attr.Ino, 0, nil)
				if err != nil || resp.N != 0 {
					t.Fatalf("zero-length write: n=%d err=%v", resp.N, err)
				}
			})
		})
	}
}

func TestORFSMountedEndToEnd(t *testing.T) {
	// Full stack: application → VFS → page cache → ORFS → transport →
	// server → memfs, both transports, buffered and direct.
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			r.run(t, func(p *sim.Proc) {
				var cl rfsrv.Client
				if transport == "mx" {
					cl = r.mxKernelClient(t)
				} else {
					cl = r.gmKernelClient(t, p, 4096)
				}
				osys := kernel.NewOS(r.client, 0)
				osys.Mount("/mnt/orfs", orfs.New("orfs", cl))
				as := r.client.NewUserSpace("app")
				buf, _ := as.Mmap(1<<20, "buf")

				data := pattern(200000)
				f, err := osys.Open(p, "/mnt/orfs/data", kernel.OCreate)
				if err != nil {
					t.Fatal(err)
				}
				as.WriteBytes(buf, data)
				if n, err := f.Write(p, as, buf, len(data)); err != nil || n != len(data) {
					t.Fatalf("write: %d %v", n, err)
				}
				if err := f.Close(p); err != nil {
					t.Fatal(err)
				}

				// Buffered read back.
				g, _ := osys.Open(p, "/mnt/orfs/data", 0)
				n, err := g.ReadAt(p, as, buf, len(data), 0)
				if err != nil || n != len(data) {
					t.Fatalf("buffered read: %d %v", n, err)
				}
				got, _ := as.ReadBytes(buf, n)
				if !bytes.Equal(got, data) {
					t.Fatal("buffered roundtrip corrupted")
				}
				g.Close(p)

				// Direct read back.
				d, _ := osys.Open(p, "/mnt/orfs/data", kernel.ODirect)
				n, err = d.ReadAt(p, as, buf, len(data), 0)
				if err != nil || n != len(data) {
					t.Fatalf("direct read: %d %v", n, err)
				}
				got, _ = as.ReadBytes(buf, n)
				if !bytes.Equal(got, data) {
					t.Fatal("direct roundtrip corrupted")
				}
				d.Close(p)

				// Metadata via VFS.
				a, err := osys.Stat(p, "/mnt/orfs/data")
				if err != nil || a.Size != int64(len(data)) {
					t.Fatalf("stat: %+v %v", a, err)
				}
			})
		})
	}
}

func TestORFAEndToEnd(t *testing.T) {
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			r.run(t, func(p *sim.Proc) {
				as := r.client.NewUserSpace("app")
				var cl rfsrv.Client
				if transport == "mx" {
					c, err := rfsrv.NewMXClient(r.mxC, 3, false, as, r.server.ID, 1)
					if err != nil {
						t.Fatal(err)
					}
					cl = c
				} else {
					c, err := rfsrv.NewGMClient(p, r.gmC, 3, false, as, r.server.ID, 1, 4096)
					if err != nil {
						t.Fatal(err)
					}
					cl = c
				}
				lib := orfa.New(cl, as)
				buf, _ := as.Mmap(1<<20, "buf")
				if err := lib.Mkdir(p, "/d"); err != nil {
					t.Fatal(err)
				}
				fd, err := lib.Create(p, "/d/file")
				if err != nil {
					t.Fatal(err)
				}
				data := pattern(150000)
				as.WriteBytes(buf, data)
				if n, err := lib.Write(p, fd, buf, len(data)); err != nil || n != len(data) {
					t.Fatalf("write: %d %v", n, err)
				}
				lib.Seek(p, fd, 0, 0)
				if n, err := lib.Read(p, fd, buf, len(data)); err != nil || n != len(data) {
					t.Fatalf("read: %d %v", n, err)
				}
				got, _ := as.ReadBytes(buf, len(data))
				if !bytes.Equal(got, data) {
					t.Fatal("ORFA roundtrip corrupted")
				}
				a, err := lib.Stat(p, "/d/file")
				if err != nil || a.Size != int64(len(data)) {
					t.Fatalf("stat: %+v %v", a, err)
				}
				ents, err := lib.Readdir(p, "/d")
				if err != nil || len(ents) != 1 {
					t.Fatalf("readdir: %v %v", ents, err)
				}
				if err := lib.Close(p, fd); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

func TestORFSMetadataBenefitsFromVFSCache(t *testing.T) {
	// §3.1: ORFS (kernel) caches metadata; ORFA pays a round-trip per
	// walk. Stat the same path repeatedly and compare RPC counts.
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		cl := r.mxKernelClient(t)
		fs := orfs.New("orfs", cl)
		osys := kernel.NewOS(r.client, 0)
		osys.Mount("/mnt", fs)
		r.seed(t, p, "f", pattern(100))
		for i := 0; i < 10; i++ {
			if _, err := osys.Stat(p, "/mnt/f"); err != nil {
				t.Fatal(err)
			}
		}
		if fs.MetaOps.N > 3 {
			t.Errorf("ORFS issued %d metadata RPCs for 10 stats (dentry cache broken)", fs.MetaOps.N)
		}

		// ORFA: every stat walks remotely.
		as := r.client.NewUserSpace("app")
		acl, err := rfsrv.NewMXClient(r.mxC, 5, false, as, r.server.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		lib := orfa.New(acl, as)
		for i := 0; i < 10; i++ {
			if _, err := lib.Stat(p, "/f"); err != nil {
				t.Fatal(err)
			}
		}
		if lib.MetaRPCs.N < 20 {
			t.Errorf("ORFA issued only %d metadata RPCs for 10 stats (should walk every time)", lib.MetaRPCs.N)
		}
	})
}

func TestGMRegistrationCacheEffect(t *testing.T) {
	// Fig 3(b): repeated direct reads into the same user buffer are
	// faster with the registration cache than without.
	r := newRig(t)
	const n = 64 * 1024
	var withCache, withoutCache sim.Time
	r.run(t, func(p *sim.Proc) {
		ino := r.seed(t, p, "f", pattern(n))
		as := r.client.NewUserSpace("app")
		va, _ := as.Mmap(n, "buf")

		cached := r.gmKernelClient(t, p, 4096)
		t0 := p.Now()
		for i := 0; i < 10; i++ {
			if _, err := cached.Read(p, ino, 0, core.Of(core.UserSeg(as, va, n))); err != nil {
				t.Fatal(err)
			}
		}
		withCache = p.Now() - t0

		uncached, err := rfsrv.NewGMClient(p, r.gmC, 4, true, r.client.Kernel, r.server.ID, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		va2, _ := as.Mmap(n, "buf2")
		t1 := p.Now()
		for i := 0; i < 10; i++ {
			if _, err := uncached.Read(p, ino, 0, core.Of(core.UserSeg(as, va2, n))); err != nil {
				t.Fatal(err)
			}
		}
		withoutCache = p.Now() - t1
	})
	if withoutCache < withCache*12/10 {
		t.Errorf("no-cache reads (%v) should be well above cached (%v)", withoutCache, withCache)
	}
}

func TestConcurrentClientsDistinctTags(t *testing.T) {
	// Two MX clients hammer the server concurrently; replies must not
	// cross wires.
	r := newRig(t)
	data1, data2 := pattern(40000), bytes.Repeat([]byte{0xAB}, 40000)
	var ok1, ok2 bool
	r.env.Spawn("seed", func(p *sim.Proc) {
		ino1 := r.seed(t, p, "f1", data1)
		ino2 := r.seed(t, p, "f2", data2)
		for i, cfg := range []struct {
			ep   uint8
			ino  kernel.InodeID
			want []byte
			ok   *bool
		}{
			{10, ino1, data1, &ok1}, {11, ino2, data2, &ok2},
		} {
			cfg := cfg
			r.env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
				cl, err := rfsrv.NewMXClient(r.mxC, cfg.ep, true, r.client.Kernel, r.server.ID, 1)
				if err != nil {
					t.Error(err)
					return
				}
				kva, _ := r.client.Kernel.Mmap(len(cfg.want), "buf")
				for iter := 0; iter < 5; iter++ {
					resp, err := cl.Read(p, cfg.ino, 0, core.Of(core.KernelSeg(r.client.Kernel, kva, len(cfg.want))))
					if err != nil || int(resp.N) != len(cfg.want) {
						t.Errorf("read: %v %v", resp, err)
						return
					}
					got, _ := r.client.Kernel.ReadBytes(kva, len(cfg.want))
					if !bytes.Equal(got, cfg.want) {
						t.Error("cross-wired replies")
						return
					}
				}
				*cfg.ok = true
			})
		}
	})
	r.env.Run(0)
	if !ok1 || !ok2 {
		t.Fatal("concurrent clients did not finish")
	}
}

// Property: random op sequences through ORFS match the same sequence
// applied to a local reference model.
func TestORFSMatchesLocalReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		r := newRigQuiet()
		r.env.Spawn("t", func(p *sim.Proc) {
			cl, err := rfsrv.NewMXClient(r.mxC, 2, true, r.client.Kernel, r.server.ID, 1)
			if err != nil {
				ok = false
				return
			}
			osys := kernel.NewOS(r.client, 64)
			osys.Mount("/m", orfs.New("orfs", cl))
			as := r.client.NewUserSpace("app")
			buf, _ := as.Mmap(1<<20, "buf")
			rng := rand.New(rand.NewSource(seed))
			ref := []byte{}
			fh, err := osys.Open(p, "/m/f", kernel.OCreate)
			if err != nil {
				ok = false
				return
			}
			for op := 0; op < 12; op++ {
				off := rng.Int63n(100 * 1024)
				n := rng.Intn(50*1024) + 1
				if rng.Intn(2) == 0 {
					data := make([]byte, n)
					rng.Read(data)
					as.WriteBytes(buf, data)
					if _, err := fh.WriteAt(p, as, buf, n, off); err != nil {
						ok = false
						return
					}
					if need := int(off) + n; need > len(ref) {
						ref = append(ref, make([]byte, need-len(ref))...)
					}
					copy(ref[off:], data)
				} else {
					rn, err := fh.ReadAt(p, as, buf, n, off)
					if err != nil {
						ok = false
						return
					}
					want := 0
					if int(off) < len(ref) {
						want = len(ref) - int(off)
						if want > n {
							want = n
						}
					}
					if rn != want {
						ok = false
						return
					}
					if rn > 0 {
						got, _ := as.ReadBytes(buf, rn)
						if !bytes.Equal(got, ref[off:int(off)+rn]) {
							ok = false
							return
						}
					}
				}
			}
			fh.Close(p)
		})
		r.env.Run(0)
		return ok
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// newRigQuiet builds the fixture without a *testing.T (for quick.Check).
func newRigQuiet() *rig {
	env := sim.NewEngine()
	params := hw.DefaultParams()
	c := hw.NewCluster(env, params, hw.PCIXD)
	r := &rig{env: env, params: params}
	r.client, r.server = c.AddNode("client"), c.AddNode("server")
	r.gmC = gm.Attach(r.client)
	r.mxC = mx.Attach(r.client)
	mxS := mx.Attach(r.server)
	r.serverFS = memfs.New("backing", r.server, 0)
	r.srv = rfsrv.NewServer(r.server, r.serverFS)
	r.srv.ServeMX(mxS, 1, 1)
	return r
}

var _ = vm.PageSize // keep import
