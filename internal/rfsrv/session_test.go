package rfsrv_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// sessionOver builds a windowed session over a fresh kernel-side
// client of the given transport.
func (r *rig) sessionOver(t *testing.T, p *sim.Proc, transport string, ep uint8, window int) *rfsrv.Session {
	t.Helper()
	var fc *rfsrv.FabricClient
	var err error
	if transport == "mx" {
		fc, err = rfsrv.NewMXClient(r.mxC, ep, true, r.client.Kernel, r.server.ID, 1)
	} else {
		fc, err = rfsrv.NewGMClient(p, r.gmC, ep, true, r.client.Kernel, r.server.ID, 1, 1024)
	}
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rfsrv.NewSession(p, fc, window)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestSessionOutOfOrderCompletion issues a large read then a small
// one and retires the small one first: on MX the completions are
// independent, on GM the fabric routes the drained events to their
// operations, so out-of-order Waits must work on both.
func TestSessionOutOfOrderCompletion(t *testing.T) {
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			big := pattern(512 * 1024)
			small := bytes.Repeat([]byte{0x5A}, 4096)
			r.run(t, func(p *sim.Proc) {
				inoBig := r.seed(t, p, "big", big)
				inoSmall := r.seed(t, p, "small", small)
				sess := r.sessionOver(t, p, transport, 2, 4)
				kern := r.client.Kernel
				bigVA, _ := kern.Mmap(len(big), "big")
				smallVA, _ := kern.Mmap(len(small), "small")
				pdBig, err := sess.StartRead(p, inoBig, 0, core.Of(core.KernelSeg(kern, bigVA, len(big))))
				if err != nil {
					t.Fatal(err)
				}
				pdSmall, err := sess.StartRead(p, inoSmall, 0, core.Of(core.KernelSeg(kern, smallVA, len(small))))
				if err != nil {
					t.Fatal(err)
				}
				// Retire the later, smaller request first.
				respS, err := pdSmall.Wait(p)
				if err != nil || int(respS.N) != len(small) {
					t.Fatalf("small read: %v %v", respS, err)
				}
				tSmall := p.Now()
				respB, err := pdBig.Wait(p)
				if err != nil || int(respB.N) != len(big) {
					t.Fatalf("big read: %v %v", respB, err)
				}
				if p.Now() < tSmall {
					t.Fatal("time went backwards")
				}
				gotS, _ := kern.ReadBytes(smallVA, len(small))
				gotB, _ := kern.ReadBytes(bigVA, len(big))
				if !bytes.Equal(gotS, small) || !bytes.Equal(gotB, big) {
					t.Fatal("out-of-order retirement corrupted data")
				}
			})
		})
	}
}

// TestSessionWindowBackpressure fills a window-2 session and verifies
// that the third issue blocks until another process retires one of
// the outstanding requests — and that the window bound is never
// exceeded.
func TestSessionWindowBackpressure(t *testing.T) {
	r := newRig(t)
	data := pattern(256 * 1024)
	var issuedThird, retiredFirst sim.Time
	r.env.Spawn("main", func(p *sim.Proc) {
		ino := r.seed(t, p, "f", data)
		sess := r.sessionOver(t, p, "mx", 2, 2)
		kern := r.client.Kernel
		bufs := make([]core.Vector, 3)
		for i := range bufs {
			va, _ := kern.Mmap(64*1024, "buf")
			bufs[i] = core.Of(core.KernelSeg(kern, va, 64*1024))
		}
		pd0, err := sess.StartRead(p, ino, 0, bufs[0])
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.StartRead(p, ino, 64*1024, bufs[1]); err != nil {
			t.Error(err)
			return
		}
		if sess.InFlight() != 2 {
			t.Errorf("in-flight = %d, want 2", sess.InFlight())
		}
		// A helper retires the oldest request after a long delay; the
		// third StartRead below must block until then.
		r.env.Spawn("retirer", func(q *sim.Proc) {
			q.Sleep(5 * sim.Time(1e6)) // 5 ms, far beyond the read's RTT
			if _, err := pd0.Wait(q); err != nil {
				t.Error(err)
			}
			retiredFirst = q.Now()
		})
		pd2, err := sess.StartRead(p, ino, 128*1024, bufs[2])
		if err != nil {
			t.Error(err)
			return
		}
		issuedThird = p.Now()
		pd2.Wait(p)
		if sess.MaxInFlight() > 2 {
			t.Errorf("window exceeded: max in-flight %d > 2", sess.MaxInFlight())
		}
	})
	r.env.Run(0)
	if retiredFirst == 0 || issuedThird < retiredFirst {
		t.Errorf("third issue at %v did not block until the retire at %v", issuedThird, retiredFirst)
	}
}

// TestSessionStressNoCrossTalk: four client nodes, each with a
// window-8 session, hammer one two-worker server; every reply must
// land in its own session with its own file's bytes.
func TestSessionStressNoCrossTalk(t *testing.T) {
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := c.AddNode("server")
	serverFS := memfs.New("backing", server, 0)
	srv := rfsrv.NewServer(server, serverFS)
	if _, err := srv.ServeMX(mx.Attach(server), 1, 2); err != nil {
		t.Fatal(err)
	}
	const (
		clients  = 4
		window   = 8
		chunk    = 16 * 1024
		fileSize = 512 * 1024
	)
	finished := 0
	env.Spawn("seed", func(p *sim.Proc) {
		var inos [clients]kernel.InodeID
		for i := 0; i < clients; i++ {
			attr, err := serverFS.Create(p, serverFS.Root(), fmt.Sprintf("f%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			kva, _ := server.Kernel.Mmap(fileSize, "seed")
			server.Kernel.WriteBytes(kva, bytes.Repeat([]byte{byte(0x21 + i)}, fileSize))
			serverFS.WriteDirect(p, attr.Ino, 0, core.Of(core.KernelSeg(server.Kernel, kva, fileSize)))
			inos[i] = attr.Ino
		}
		for i := 0; i < clients; i++ {
			i := i
			node := c.AddNode(fmt.Sprintf("client%d", i))
			mxC := mx.Attach(node)
			env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
				fc, err := rfsrv.NewMXClient(mxC, uint8(10+i), true, node.Kernel, server.ID, 1)
				if err != nil {
					t.Error(err)
					return
				}
				sess, err := rfsrv.NewSession(p, fc, window)
				if err != nil {
					t.Error(err)
					return
				}
				kern := node.Kernel
				bufs := make([]core.Vector, window)
				for j := range bufs {
					va, _ := kern.Mmap(chunk, "buf")
					bufs[j] = core.Of(core.KernelSeg(kern, va, chunk))
				}
				type slot struct {
					pd  rfsrv.PendingOp
					buf int
				}
				var q []slot
				check := func(s slot) bool {
					resp, err := s.pd.Wait(p)
					if err != nil || int(resp.N) != chunk {
						t.Errorf("client %d: %v %v", i, resp, err)
						return false
					}
					raw, _ := kern.ReadBytes(bufs[s.buf][0].VA, chunk)
					for _, b := range raw {
						if b != byte(0x21+i) {
							t.Errorf("client %d: reply crossed sessions (byte %#x)", i, b)
							return false
						}
					}
					return true
				}
				for issued := 0; issued < fileSize/chunk; issued++ {
					if len(q) == window {
						s := q[0]
						q = q[1:]
						if !check(s) {
							return
						}
					}
					pd, err := sess.StartRead(p, inos[i], int64(issued)*chunk, bufs[issued%window])
					if err != nil {
						t.Error(err)
						return
					}
					q = append(q, slot{pd, issued % window})
				}
				for _, s := range q {
					if !check(s) {
						return
					}
				}
				if sess.MaxInFlight() != window {
					t.Errorf("client %d: max in-flight %d, want %d", i, sess.MaxInFlight(), window)
				}
				finished++
			})
		}
	})
	env.Run(0)
	if finished != clients {
		t.Fatalf("%d/%d clients finished", finished, clients)
	}
	// Every client has its own server-side session with the full
	// request count (the per-reply host work completes quickly, so
	// instantaneous Outstanding depth depends on timing; the counters
	// must balance regardless).
	if got := len(srv.Sessions()); got != clients {
		t.Errorf("server tracked %d client sessions, want %d", got, clients)
	}
	for _, cs := range srv.Sessions() {
		if cs.Served.N != fileSize/chunk {
			t.Errorf("session %v/%d served %d requests, want %d", cs.Node, cs.EP, cs.Served.N, fileSize/chunk)
		}
		if cs.Outstanding != 0 {
			t.Errorf("session %v/%d still has %d outstanding after quiesce", cs.Node, cs.EP, cs.Outstanding)
		}
	}
}

// TestMetaBatch packs several getattrs into combined request messages
// and checks the replies demux correctly on both transports.
func TestMetaBatch(t *testing.T) {
	for _, transport := range []string{"mx", "gm"} {
		t.Run(transport, func(t *testing.T) {
			r := newRig(t)
			r.run(t, func(p *sim.Proc) {
				var inos []kernel.InodeID
				var sizes []int
				for i := 0; i < 6; i++ {
					ino := r.seed(t, p, fmt.Sprintf("f%d", i), pattern(1000+i*777))
					inos = append(inos, ino)
					sizes = append(sizes, 1000+i*777)
				}
				sess := r.sessionOver(t, p, transport, 2, 4)
				reqs := make([]*rfsrv.Req, len(inos))
				for i, ino := range inos {
					reqs[i] = &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}
				}
				// 6 requests through a window of 4: two flights.
				resps, err := sess.MetaBatch(p, reqs)
				if err != nil {
					t.Fatal(err)
				}
				if len(resps) != len(reqs) {
					t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
				}
				for i, resp := range resps {
					if resp.Attr.Ino != inos[i] || resp.Attr.Size != int64(sizes[i]) {
						t.Errorf("batched getattr %d: %+v, want ino %d size %d", i, resp.Attr, inos[i], sizes[i])
					}
				}
				if sess.Batched.N == 0 {
					t.Error("no requests were combined")
				}
				if r.srv.Batched.N == 0 {
					t.Error("server unpacked no combined requests")
				}
			})
		})
	}
}

// TestNameTooLongStatus: an oversized name must surface as a status at
// the client API boundary — the sim used to panic in EncodeReq.
func TestNameTooLongStatus(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		cl := r.mxKernelClient(t)
		long := string(bytes.Repeat([]byte{'x'}, rfsrv.MaxNameLen+1))
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: 0, Name: long})
		if err != rfsrv.ErrNameTooLong {
			t.Fatalf("err = %v, want ErrNameTooLong", err)
		}
		if resp == nil || resp.Status != rfsrv.StNameTooLong {
			t.Fatalf("resp = %+v, want status StNameTooLong", resp)
		}
		// Session path too.
		sess := r.sessionOver(t, p, "mx", 3, 2)
		if _, err := sess.StartMeta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: long}); err != rfsrv.ErrNameTooLong {
			t.Fatalf("session err = %v, want ErrNameTooLong", err)
		}
		// A maximal legal name still works end to end.
		legal := string(bytes.Repeat([]byte{'y'}, rfsrv.MaxNameLen))
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: legal}); err != nil {
			t.Fatalf("max-length name rejected: %v", err)
		}
	})
}

// TestClientRejectsNegativeOffsets: negative offsets must be refused
// at the client API boundary with StInval.
func TestClientRejectsNegativeOffsets(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		cl := r.mxKernelClient(t)
		ino := r.seed(t, p, "f", pattern(100))
		kva, _ := r.client.Kernel.Mmap(4096, "buf")
		v := core.Of(core.KernelSeg(r.client.Kernel, kva, 100))
		if _, err := cl.Read(p, ino, -1, v); err != rfsrv.ErrInval {
			t.Fatalf("read err = %v, want ErrInval", err)
		}
		if _, err := cl.Write(p, ino, -1, v); err != rfsrv.ErrInval {
			t.Fatalf("write err = %v, want ErrInval", err)
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: -1}); err != rfsrv.ErrInval {
			t.Fatalf("truncate err = %v, want ErrInval", err)
		}
	})
}

// TestORFSSessionEndToEnd drives the full VFS stack over a windowed
// session: buffered writes pipeline (write-behind), sequential
// buffered reads prefetch (readahead), and the bytes survive.
func TestORFSSessionEndToEnd(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		sess := r.sessionOver(t, p, "mx", 2, 8)
		fs := orfs.New("orfs", sess)
		osys := kernel.NewOS(r.client, 0)
		osys.Mount("/mnt", fs)
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "buf")

		data := pattern(300 * 1024)
		f, err := osys.Open(p, "/mnt/data", kernel.OCreate)
		if err != nil {
			t.Fatal(err)
		}
		as.WriteBytes(buf, data)
		if n, err := f.Write(p, as, buf, len(data)); err != nil || n != len(data) {
			t.Fatalf("write: %d %v", n, err)
		}
		if err := f.Close(p); err != nil { // flush + Sync drains write-behind
			t.Fatal(err)
		}

		// A different mount (cold cache) reads the file back buffered:
		// sequential page misses must prefetch through the window.
		sess2 := r.sessionOver(t, p, "mx", 3, 8)
		fs2 := orfs.New("orfs2", sess2)
		osys2 := kernel.NewOS(r.client, 0)
		osys2.Mount("/m2", fs2)
		g, err := osys2.Open(p, "/m2/data", 0)
		if err != nil {
			t.Fatal(err)
		}
		n, err := g.ReadAt(p, as, buf, len(data), 0)
		if err != nil || n != len(data) {
			t.Fatalf("buffered read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, n)
		if !bytes.Equal(got, data) {
			t.Fatal("windowed roundtrip corrupted data")
		}
		if fs2.ReadaheadHits.N == 0 {
			t.Error("sequential buffered read never hit the readahead window")
		}
		if fs.WriteOps.N < 2 {
			t.Error("write-behind issued no page writes")
		}
	})
}

var _ = mem.PageSize
