package rfsrv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/gmkrc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// GMClient is the protocol client over GM. Everything that is a single
// call in MXClient needs scaffolding here, faithfully to the paper:
//
//   - User buffers must be registered; a GMKRC pin-down cache
//     ([TOHI98], §3.2) amortizes the 3 µs/page + 200 µs costs, and
//     VMA SPY keeps it coherent. Disable the cache (cachePages == 0)
//     to reproduce Fig 3(b)'s "without Reg. Cache" curve.
//   - Kernel buffers and page-cache frames use the paper's §3.3
//     physical-address extension (SendPhysical/PostRecvPhysical).
//   - GM has no vectors, so header and data travel as separate
//     messages, and GM cannot receive into a multi-segment user vector
//     at all.
//   - Completions come from the port's unique event queue; waiting
//     from kernel context pays the dispatch-thread hop.
type GMClient struct {
	port     *gm.Port
	cache    *gmkrc.Cache
	noCache  bool
	as       *vm.AddressSpace
	kernSide bool
	server   hw.NodeID
	servPort uint8
	myPort   uint8

	reqVA, hdrVA vm.VirtAddr
	reqXS, hdrXS []mem.Extent // kernel side: resolved once
	seq          uint64
	lock         *sim.Resource

	// noPhys simulates stock GM without the paper's §3.3 physical
	// extension: every transfer uses registered virtual buffers, so
	// page-cache data must bounce through a registered staging region
	// with a host copy — the ablation quantifying what the physical
	// primitives buy.
	noPhys    bool
	stagingVA vm.VirtAddr
	fixup     func(p *sim.Proc, n int) // post-receive staging copy
}

// NewGMClient opens GM port portID and prepares the client. cachePages
// sizes the registration cache; 0 disables caching (every user-buffer
// transfer pays register+deregister). The client's internal buffers
// live in bufAS and are registered once (kernel side: addressed
// physically instead, needing no registration at all).
func NewGMClient(p *sim.Proc, g *gm.GM, portID uint8, kernelSide bool, bufAS *vm.AddressSpace, server hw.NodeID, serverPort uint8, cachePages int) (*GMClient, error) {
	port, err := g.OpenPort(portID, kernelSide)
	if err != nil {
		return nil, err
	}
	c := &GMClient{
		port: port, kernSide: kernelSide, as: bufAS,
		server: server, servPort: serverPort, myPort: portID,
		noCache: cachePages == 0,
		lock:    sim.NewResource(g.Node().Cluster.Env, "gmclient-lock", 1),
	}
	if cachePages == 0 {
		cachePages = 0 // gmkrc.New(…, 0) = no caching
	}
	c.cache = gmkrc.New(port, cachePages)
	alloc := bufAS.Mmap
	if kernelSide {
		alloc = bufAS.MmapContig
	}
	if c.reqVA, err = alloc(4096, "rfsrv-req"); err != nil {
		return nil, err
	}
	if c.hdrVA, err = alloc(HdrBufSize, "rfsrv-hdr"); err != nil {
		return nil, err
	}
	if kernelSide {
		c.reqXS, _ = bufAS.Resolve(c.reqVA, 4096)
		c.hdrXS, _ = bufAS.Resolve(c.hdrVA, HdrBufSize)
	} else {
		// User side: the library registers its own buffers once at
		// startup (the amortized case registration is designed for).
		if _, err := port.RegisterMemory(p, bufAS, c.reqVA, 4096); err != nil {
			return nil, err
		}
		if _, err := port.RegisterMemory(p, bufAS, c.hdrVA, HdrBufSize); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// DisablePhysicalAPI switches the client to stock-GM behaviour (no
// physical-address primitives): internal buffers are registered
// instead, and all non-user data bounces through a registered staging
// buffer with a host copy on each transfer. Kernel-side clients only.
func (c *GMClient) DisablePhysicalAPI(p *sim.Proc) error {
	if !c.kernSide {
		return fmt.Errorf("rfsrv: DisablePhysicalAPI applies to kernel-side clients")
	}
	if c.noPhys {
		return nil
	}
	var err error
	if c.stagingVA, err = c.as.MmapContig(MaxWriteChunk, "rfsrv-staging"); err != nil {
		return err
	}
	// Stock GM: register everything the driver will touch.
	if _, err := c.port.RegisterMemory(p, c.as, c.stagingVA, MaxWriteChunk); err != nil {
		return err
	}
	if _, err := c.port.RegisterMemory(p, c.as, c.reqVA, 4096); err != nil {
		return err
	}
	if _, err := c.port.RegisterMemory(p, c.as, c.hdrVA, HdrBufSize); err != nil {
		return err
	}
	c.noPhys = true
	return nil
}

// Port returns the underlying GM port (stats).
func (c *GMClient) Port() *gm.Port { return c.port }

// Cache returns the registration cache (stats).
func (c *GMClient) Cache() *gmkrc.Cache { return c.cache }

func (c *GMClient) postHdr(p *sim.Proc, seq uint64) error {
	if c.kernSide && !c.noPhys {
		return c.port.PostRecvPhysical(p, tag(seq, c.myPort, kindHdr), c.hdrXS)
	}
	return c.port.PostRecv(p, tag(seq, c.myPort, kindHdr), c.as, c.hdrVA, HdrBufSize)
}

func (c *GMClient) sendReq(p *sim.Proc, req *Req) error {
	enc := EncodeReq(req)
	if err := c.as.WriteBytes(c.reqVA, enc); err != nil {
		return err
	}
	if c.kernSide && !c.noPhys {
		return c.port.SendPhysical(p, c.server, c.servPort, reqTag, clipExtents(c.reqXS, len(enc)))
	}
	return c.port.Send(p, c.server, c.servPort, reqTag, c.as, c.reqVA, len(enc))
}

// acquireUser ensures a user segment is registered (via the cache) and
// returns a release closure for the uncached mode.
func (c *GMClient) acquireUser(p *sim.Proc, s core.Segment) (func(), error) {
	if _, err := c.cache.Acquire(p, s.AS, s.VA, s.Len); err != nil {
		return nil, err
	}
	if c.noCache {
		return func() { c.cache.ReleaseUncached(p, s.AS, s.VA) }, nil
	}
	return func() {}, nil
}

// postData posts the read-data receive for dst. GM's lack of vectors
// shows here: only a single user segment, or ranges resolvable to
// physical extents, can be received into.
func (c *GMClient) postData(p *sim.Proc, seq uint64, dst core.Vector) (func(), error) {
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	if !hasUserSeg(dst) {
		if !c.kernSide {
			return nil, fmt.Errorf("rfsrv: GM user port cannot address kernel/physical memory")
		}
		xs, err := dst.Extents()
		if err != nil {
			return nil, err
		}
		if c.noPhys {
			// Stock GM: receive into the registered staging buffer and
			// copy to the real destination afterwards (the extra copy
			// the physical primitives eliminate).
			n := dst.TotalLen()
			if n > MaxWriteChunk {
				return nil, fmt.Errorf("rfsrv: staged receive of %d bytes exceeds staging buffer", n)
			}
			if err := c.port.PostRecv(p, tag(seq, c.myPort, kindData), c.as, c.stagingVA, max(n, 1)); err != nil {
				return nil, err
			}
			c.fixup = func(p *sim.Proc, got int) {
				if got == 0 {
					return
				}
				raw, err := c.as.ReadBytes(c.stagingVA, got)
				if err != nil {
					panic(err)
				}
				c.port.Node().CPU.Copy(p, got)
				c.port.Node().Mem.Scatter(clipExtents(xs, got), raw)
			}
			return func() {}, nil
		}
		return func() {}, c.port.PostRecvPhysical(p, tag(seq, c.myPort, kindData), xs)
	}
	if len(dst) != 1 {
		return nil, fmt.Errorf("rfsrv: GM cannot receive into a %d-segment vector (no vectorial primitives)", len(dst))
	}
	s := dst[0]
	release, err := c.acquireUser(p, s)
	if err != nil {
		return nil, err
	}
	if err := c.port.PostRecv(p, tag(seq, c.myPort, kindData), s.AS, s.VA, s.Len); err != nil {
		release()
		return nil, err
	}
	return release, nil
}

// sendData transmits write data as its own message.
func (c *GMClient) sendData(p *sim.Proc, seq uint64, src core.Vector) (func(), error) {
	if !hasUserSeg(src) {
		if !c.kernSide {
			return nil, fmt.Errorf("rfsrv: GM user port cannot address kernel/physical memory")
		}
		xs, err := src.Extents()
		if err != nil {
			return nil, err
		}
		if c.noPhys {
			// Stock GM: stage through the registered buffer.
			n := mem.TotalLen(xs)
			if n > MaxWriteChunk {
				return nil, fmt.Errorf("rfsrv: staged send of %d bytes exceeds staging buffer", n)
			}
			data := c.port.Node().Mem.Gather(xs)
			c.port.Node().CPU.Copy(p, n)
			if err := c.as.WriteBytes(c.stagingVA, data); err != nil {
				return nil, err
			}
			return func() {}, c.port.Send(p, c.server, c.servPort, tag(seq, c.myPort, kindData), c.as, c.stagingVA, n)
		}
		return func() {}, c.port.SendPhysical(p, c.server, c.servPort, tag(seq, c.myPort, kindData), xs)
	}
	if len(src) != 1 {
		return nil, fmt.Errorf("rfsrv: GM cannot send a %d-segment vector (no vectorial primitives)", len(src))
	}
	s := src[0]
	release, err := c.acquireUser(p, s)
	if err != nil {
		return nil, err
	}
	if err := c.port.Send(p, c.server, c.servPort, tag(seq, c.myPort, kindData), s.AS, s.VA, s.Len); err != nil {
		release()
		return nil, err
	}
	return release, nil
}

// waitRecv blocks on the unique event queue until the wanted receive
// completes, consuming interleaved send completions.
func (c *GMClient) waitRecv(p *sim.Proc, want uint64) (gm.Event, error) {
	for {
		ev := c.port.WaitEvent(p)
		if ev.Type == gm.RecvComplete && ev.Tag == want {
			return ev, ev.Err
		}
	}
}

func (c *GMClient) finish(p *sim.Proc, seq uint64) (*Resp, error) {
	ev, err := c.waitRecv(p, tag(seq, c.myPort, kindHdr))
	if err != nil {
		return nil, err
	}
	raw, err := c.as.ReadBytes(c.hdrVA, ev.Len)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResp(raw)
	if err != nil {
		return nil, err
	}
	if resp.Seq != seq {
		return nil, fmt.Errorf("rfsrv: reply for seq %d, want %d", resp.Seq, seq)
	}
	if err := ErrOf(resp.Status); err != nil {
		return resp, err
	}
	return resp, nil
}

// Meta implements Client.
func (c *GMClient) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.seq++
	req.Seq, req.EP = c.seq, c.myPort
	if err := c.postHdr(p, req.Seq); err != nil {
		return nil, err
	}
	if err := c.sendReq(p, req); err != nil {
		return nil, err
	}
	return c.finish(p, req.Seq)
}

// Read implements Client.
func (c *GMClient) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.seq++
	seq := c.seq
	req := &Req{Op: OpRead, Seq: seq, EP: c.myPort, Ino: ino, Off: off, Len: uint32(dst.TotalLen())}
	if err := c.postHdr(p, seq); err != nil {
		return nil, err
	}
	release, err := c.postData(p, seq, dst)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := c.sendReq(p, req); err != nil {
		return nil, err
	}
	ev, err := c.waitRecv(p, tag(seq, c.myPort, kindData))
	if err != nil {
		return nil, err
	}
	if c.fixup != nil {
		c.fixup(p, ev.Len)
		c.fixup = nil
	}
	return c.finish(p, seq)
}

// Write implements Client.
func (c *GMClient) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	total := src.TotalLen()
	written := 0
	var last *Resp
	for written < total || total == 0 {
		chunk := total - written
		if chunk > MaxWriteChunk {
			chunk = MaxWriteChunk
		}
		c.seq++
		seq := c.seq
		req := &Req{Op: OpWrite, Seq: seq, EP: c.myPort, Ino: ino, Off: off + int64(written), Len: uint32(chunk)}
		if err := c.postHdr(p, seq); err != nil {
			return nil, err
		}
		if err := c.sendReq(p, req); err != nil {
			return nil, err
		}
		release, err := c.sendData(p, seq, src.Slice(written, chunk))
		if err != nil {
			return nil, err
		}
		resp, err := c.finish(p, seq)
		release()
		if err != nil {
			return resp, err
		}
		written += int(resp.N)
		last = resp
		if total == 0 {
			break
		}
		if resp.N == 0 {
			return last, fmt.Errorf("rfsrv: short write at %d", written)
		}
	}
	if last == nil {
		last = &Resp{}
	}
	last.N = uint32(written)
	return last, nil
}

func hasUserSeg(v core.Vector) bool {
	for _, s := range v {
		if s.Type == core.UserVirtual {
			return true
		}
	}
	return false
}

func clipExtents(xs []mem.Extent, n int) []mem.Extent {
	var out []mem.Extent
	for _, x := range xs {
		if n == 0 {
			break
		}
		l := x.Len
		if l > n {
			l = n
		}
		out = append(out, mem.Extent{Addr: x.Addr, Len: l})
		n -= l
	}
	return out
}

var _ Client = (*GMClient)(nil)
