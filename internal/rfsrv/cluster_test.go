package rfsrv_test

// Tests for the striped cluster client: placement, stripe-boundary and
// uneven-final-stripe correctness, the one-server bit-identity
// guarantee, metadata-home-vs-data-server semantics, and namespace
// divergence detection.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

// testStripe is the stripe width used by the cluster tests: two pages,
// small enough that modest files cross many boundaries.
const testStripe = 2 * mem.PageSize

// clusterRig is an S-server, one-client fixture with every server
// backed by its own memfs and served over MX.
type clusterRig struct {
	env      *sim.Engine
	client   *hw.Node
	clientMX *mx.MX
	servers  []*hw.Node
	serverFS []*memfs.FS
	rsrv     []*rfsrv.Server // handles for SetResyncPeers
}

func newClusterRig(t *testing.T, nServers int) *clusterRig {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	r := &clusterRig{env: env, client: c.AddNode("client")}
	r.clientMX = mx.Attach(r.client)
	for i := 0; i < nServers; i++ {
		n := c.AddNode(fmt.Sprintf("server%d", i))
		fs := memfs.New(fmt.Sprintf("backing%d", i), n, 0)
		srv := rfsrv.NewServer(n, fs)
		if _, err := srv.ServeMX(mx.Attach(n), 1, 4); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, n)
		r.serverFS = append(r.serverFS, fs)
		r.rsrv = append(r.rsrv, srv)
	}
	return r
}

func (r *clusterRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("test body deadlocked")
	}
}

// cluster builds the striped client: one kernel-side MX session per
// server on distinct endpoints.
func (r *clusterRig) cluster(t *testing.T, p *sim.Proc, window, stripe int) *rfsrv.Cluster {
	t.Helper()
	sessions := make([]*rfsrv.Session, len(r.servers))
	for i, srv := range r.servers {
		fc, err := rfsrv.NewMXClient(r.clientMX, uint8(10+i), true, r.client.Kernel, srv.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sessions[i], err = rfsrv.NewSession(p, fc, window); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := rfsrv.NewCluster(p, sessions, stripe)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// kbuf maps n kernel bytes on the client and returns (va, vector).
func (r *clusterRig) kbuf(t *testing.T, n int) (vm.VirtAddr, core.Vector) {
	t.Helper()
	va, err := r.client.Kernel.Mmap(n, "test-buf")
	if err != nil {
		t.Fatal(err)
	}
	return va, core.Of(core.KernelSeg(r.client.Kernel, va, n))
}

// create makes a file through the cluster and returns its inode.
func clusterCreate(t *testing.T, p *sim.Proc, cl *rfsrv.Cluster, name string) kernel.InodeID {
	t.Helper()
	resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: name})
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	return resp.Attr.Ino
}

// TestClusterStripeBoundaryReadsWrites writes a file whose length is
// not a stripe multiple through a 3-server cluster, overwrites a range
// crossing a stripe boundary, reads it back at awkward offsets, and
// verifies byte-exact contents plus physical placement: every server
// holds frames for exactly the stripes it owns.
func TestClusterStripeBoundaryReadsWrites(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		data := pattern(100_000) // 12 whole stripes + 1696-byte tail
		ino := clusterCreate(t, p, cl, "f")

		va, vec := r.kbuf(t, len(data))
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		resp, err := cl.Write(p, ino, 0, vec)
		if err != nil || int(resp.N) != len(data) {
			t.Fatalf("striped write: n=%d err=%v", resp.N, err)
		}

		// Overwrite a range crossing the stripe-1/stripe-2 boundary at
		// an unaligned offset.
		patch := bytes.Repeat([]byte{0xAB}, 3000)
		copy(data[testStripe*2-1500:], patch)
		pva, pvec := r.kbuf(t, len(patch))
		if err := r.client.Kernel.WriteBytes(pva, patch); err != nil {
			t.Fatal(err)
		}
		if resp, err := cl.Write(p, ino, testStripe*2-1500, pvec); err != nil || int(resp.N) != len(patch) {
			t.Fatalf("boundary overwrite: n=%d err=%v", resp.N, err)
		}

		// Read back at offsets that start and end mid-stripe.
		for _, rg := range [][2]int{{0, len(data)}, {5000, 30000}, {testStripe - 1, testStripe + 2}, {90_000, 10_000}} {
			off, n := rg[0], rg[1]
			rva, rvec := r.kbuf(t, n)
			resp, err := cl.Read(p, ino, int64(off), rvec)
			if err != nil || int(resp.N) != n {
				t.Fatalf("read [%d,%d): n=%d err=%v", off, off+n, resp.N, err)
			}
			got, _ := r.client.Kernel.ReadBytes(rva, n)
			if !bytes.Equal(got, data[off:off+n]) {
				t.Fatalf("read [%d,%d): contents differ", off, off+n)
			}
		}

		// Placement: frames live only on each stripe's owner.
		stripes := (len(data) + testStripe - 1) / testStripe
		pagesPerStripe := testStripe / mem.PageSize
		for k := 0; k < stripes; k++ {
			owner := cl.OwnerServer(int64(k) * testStripe)
			for s, fs := range r.serverFS {
				frame := fs.FrameAt(ino, int64(k*pagesPerStripe))
				if s == owner && frame == nil {
					t.Fatalf("stripe %d missing on its owner (server %d)", k, s)
				}
				if s != owner && frame != nil {
					t.Fatalf("stripe %d leaked onto server %d (owner %d)", k, s, owner)
				}
			}
		}

		// Size reconciliation: every server agrees on EOF locally.
		for s, fs := range r.serverFS {
			a, err := fs.Getattr(p, ino)
			if err != nil || a.Size != int64(len(data)) {
				t.Fatalf("server %d local size = %d (%v), want %d", s, a.Size, err, len(data))
			}
		}
	})
}

// TestClusterUnevenFinalStripe checks EOF handling when the file ends
// mid-stripe: reads straddling and beyond EOF clip exactly, and
// cluster getattr reports the true size even though most servers'
// stripes end earlier.
func TestClusterUnevenFinalStripe(t *testing.T) {
	r := newClusterRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		const size = 5*testStripe + 123
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}

		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
		if err != nil || resp.Attr.Size != size {
			t.Fatalf("getattr size = %d (%v), want %d", resp.Attr.Size, err, size)
		}

		// Straddle EOF: ask for two stripes starting in the last full one.
		off := int64(4 * testStripe)
		rva, rvec := r.kbuf(t, 2*testStripe)
		resp, err = cl.Read(p, ino, off, rvec)
		if err != nil {
			t.Fatal(err)
		}
		if want := size - int(off); int(resp.N) != want {
			t.Fatalf("EOF straddle read n = %d, want %d", resp.N, want)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size-int(off))
		if !bytes.Equal(got, data[off:]) {
			t.Fatal("EOF straddle read: contents differ")
		}

		// Entirely past EOF: zero bytes, no error.
		resp, err = cl.Read(p, ino, int64(size)+testStripe, rvec)
		if err != nil || resp.N != 0 {
			t.Fatalf("past-EOF read n=%d err=%v", resp.N, err)
		}
	})
}

// oneServerWorkload drives one client workload — create, a chunked
// write larger than MaxWriteChunk, sequential reads, and a metadata
// mix — against any rfsrv.Client, returning the finish time and a
// checksum of everything read.
func oneServerWorkload(t *testing.T, p *sim.Proc, kern *vm.AddressSpace, cl rfsrv.Client) (sim.Time, []byte) {
	t.Helper()
	const fileSize = 640 * 1024 // > 2 write chunks, a whole number of read chunks
	const chunk = 64 * 1024
	data := pattern(fileSize)
	resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	ino := resp.Attr.Ino
	va, err := kern.Mmap(fileSize, "wl-buf")
	if err != nil {
		t.Fatal(err)
	}
	if err := kern.WriteBytes(va, data); err != nil {
		t.Fatal(err)
	}
	if resp, err = cl.Write(p, ino, 0, core.Of(core.KernelSeg(kern, va, fileSize))); err != nil || int(resp.N) != fileSize {
		t.Fatalf("write: n=%d err=%v", resp.N, err)
	}
	sum := make([]byte, 0, fileSize)
	rva, err := kern.Mmap(chunk, "wl-read")
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < fileSize; off += chunk {
		resp, err := cl.Read(p, ino, int64(off), core.Of(core.KernelSeg(kern, rva, chunk)))
		if err != nil || int(resp.N) != chunk {
			t.Fatalf("read at %d: n=%d err=%v", off, resp.N, err)
		}
		got, _ := kern.ReadBytes(rva, chunk)
		sum = append(sum, got...)
	}
	for _, req := range []*rfsrv.Req{
		{Op: rfsrv.OpGetattr, Ino: ino},
		{Op: rfsrv.OpLookup, Ino: 0, Name: "f"},
		{Op: rfsrv.OpReaddir, Ino: 0},
		{Op: rfsrv.OpTruncate, Ino: ino, Off: int64(fileSize / 2)},
	} {
		if _, err := cl.Meta(p, req); err != nil {
			t.Fatalf("%v: %v", req.Op, err)
		}
	}
	return p.Now(), sum
}

// TestClusterOneServerMatchesSession is the degeneracy guarantee: a
// one-server cluster must issue the exact RPC sequence of the plain
// Session, so the same workload finishes at the identical virtual time
// with identical bytes (the cluster analogue of the window-1 equality
// test that guards Fig 7).
func TestClusterOneServerMatchesSession(t *testing.T) {
	const window = 4
	runOnce := func(wrap bool) (sim.Time, []byte) {
		r := newClusterRig(t, 1)
		var end sim.Time
		var sum []byte
		r.run(t, func(p *sim.Proc) {
			fc, err := rfsrv.NewMXClient(r.clientMX, 10, true, r.client.Kernel, r.servers[0].ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := rfsrv.NewSession(p, fc, window)
			if err != nil {
				t.Fatal(err)
			}
			var cl rfsrv.Client = sess
			if wrap {
				if cl, err = rfsrv.NewCluster(p, []*rfsrv.Session{sess}, 0); err != nil {
					t.Fatal(err)
				}
			}
			end, sum = oneServerWorkload(t, p, r.client.Kernel, cl)
		})
		return end, sum
	}
	sessEnd, sessSum := runOnce(false)
	clEnd, clSum := runOnce(true)
	if sessEnd != clEnd {
		t.Errorf("one-server cluster finished at %v, plain session at %v — not bit-identical", clEnd, sessEnd)
	}
	if !bytes.Equal(sessSum, clSum) {
		t.Error("one-server cluster read different bytes than the plain session")
	}
}

// TestClusterMetadataHomeVsDataServer pins down the metadata-ownership
// semantics: after cluster writes, the home server's answer is
// authoritative and reconciled (it reports the true EOF even when the
// tail stripe lives elsewhere); conversely, data written to a data
// server behind the cluster's back does NOT leak into homed getattr —
// metadata is owned by the home, not by whichever server holds bytes.
func TestClusterMetadataHomeVsDataServer(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		const size = 3 * testStripe // stripes 0,1,2 → owners 0,1,0
		ino := clusterCreate(t, p, cl, "f")
		home := cl.HomeServer(ino)
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, pattern(size)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}
		// The tail stripe's owner is server 0; whichever server is home,
		// its local size must have been reconciled to the true EOF.
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
		if err != nil || resp.Attr.Size != size {
			t.Fatalf("homed getattr size = %d (%v), want %d", resp.Attr.Size, err, size)
		}
		if a, _ := r.serverFS[home].Getattr(p, ino); a.Size != size {
			t.Fatalf("home server %d local size = %d, want %d", home, a.Size, size)
		}

		// Out-of-band append directly on the non-home server: grows that
		// server's local file but must not change homed metadata.
		rogue := 1 - home
		srvNode := r.servers[rogue]
		sva, err := srvNode.Kernel.Mmap(testStripe, "oob")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.serverFS[rogue].WriteDirect(p, ino, size, core.Of(core.KernelSeg(srvNode.Kernel, sva, testStripe))); err != nil {
			t.Fatal(err)
		}
		if a, _ := r.serverFS[rogue].Getattr(p, ino); a.Size != size+testStripe {
			t.Fatalf("out-of-band append did not take on server %d", rogue)
		}
		resp, err = cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
		if err != nil || resp.Attr.Size != size {
			t.Fatalf("homed getattr after out-of-band append = %d (%v), want %d (home-owned)", resp.Attr.Size, err, size)
		}
	})
}

// TestClusterNamespaceDivergence verifies the replicated-namespace
// guard: if a server's inode allocation is skewed out from under the
// cluster, the next replicated mutation reports divergence instead of
// silently striping data across mismatched inodes.
func TestClusterNamespaceDivergence(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		// Skew server 1: allocate an inode the cluster never saw.
		if _, err := r.serverFS[1].Create(p, r.serverFS[1].Root(), "skew"); err != nil {
			t.Fatal(err)
		}
		_, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "f"})
		if err == nil {
			t.Fatal("divergent create succeeded")
		}
		if want := "diverged"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	})
}

// TestClusterPipelinedStripedReads drives the Async surface the way
// the figures harness and ORFA do: stripe-sized reads kept in flight
// up to the aggregate window, paced by CanStart, retired oldest-first.
func TestClusterPipelinedStripedReads(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 2, testStripe)
		const size = 24 * testStripe
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}

		window := cl.Window() // 3 servers × 2
		bufs := make([]vm.VirtAddr, window)
		vecs := make([]core.Vector, window)
		for i := range bufs {
			bufs[i], vecs[i] = r.kbuf(t, testStripe)
		}
		type slot struct {
			pd  rfsrv.PendingOp
			off int
			buf int
		}
		var q []slot
		maxInFlight := 0
		check := func(s slot) {
			resp, err := s.pd.Wait(p)
			if err != nil || int(resp.N) != testStripe {
				t.Fatalf("striped read at %d: n=%d err=%v", s.off, resp.N, err)
			}
			got, _ := r.client.Kernel.ReadBytes(bufs[s.buf], testStripe)
			if !bytes.Equal(got, data[s.off:s.off+testStripe]) {
				t.Fatalf("striped read at %d: contents differ", s.off)
			}
		}
		for i := 0; i < size/testStripe; i++ {
			off := i * testStripe
			for len(q) > 0 && (len(q) == window || !cl.CanStart(ino, int64(off), testStripe)) {
				check(q[0])
				q = q[1:]
			}
			pd, err := cl.StartRead(p, ino, int64(off), vecs[i%window])
			if err != nil {
				t.Fatal(err)
			}
			q = append(q, slot{pd, off, i % window})
			if cl.InFlight() > maxInFlight {
				maxInFlight = cl.InFlight()
			}
		}
		for _, s := range q {
			check(s)
		}
		if maxInFlight < 4 {
			t.Errorf("pipelining never exceeded %d in flight (window %d)", maxInFlight, window)
		}
	})
}

// TestClusterMetaProceedsWithFullWindows pins the deadlock-freedom
// property behind homed metadata: even when striped reads hold EVERY
// window slot of every server, metadata travels the synchronous
// control path and completes (retiring the reads afterwards still
// works).
func TestClusterMetaProceedsWithFullWindows(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 2, testStripe)
		const size = 8 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, pattern(size)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}
		// Fill every slot: 2 servers x window 2 = 4 stripe reads.
		var pds []rfsrv.PendingOp
		for k := 0; k < 4; k++ {
			_, rv := r.kbuf(t, testStripe)
			pd, err := cl.StartRead(p, ino, int64(k)*testStripe, rv)
			if err != nil {
				t.Fatal(err)
			}
			pds = append(pds, pd)
		}
		if cl.InFlight() != cl.Window() {
			t.Fatalf("setup: %d in flight, want full window %d", cl.InFlight(), cl.Window())
		}
		// Metadata must proceed anyway — lookup, getattr, and a fanned
		// mutation, none of which may touch the data windows.
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: 0, Name: "f"}); err != nil {
			t.Fatalf("lookup with full windows: %v", err)
		}
		if resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil || resp.Attr.Size != size {
			t.Fatalf("getattr with full windows: size=%d err=%v", resp.Attr.Size, err)
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "d"}); err != nil {
			t.Fatalf("fanned mkdir with full windows: %v", err)
		}
		for _, pd := range pds {
			if _, err := pd.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestClusterStartReadWiderThanWindow: one striped operation needing
// more same-server slots than a server's window must self-retire its
// earlier runs instead of deadlocking (window-1 sessions, a read of
// two stripes per server).
func TestClusterStartReadWiderThanWindow(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 1, testStripe) // window 1 per server
		const size = 4 * testStripe          // 2 runs per server
		data := pattern(size)
		ino := clusterCreate(t, p, cl, "f")
		va, vec := r.kbuf(t, size)
		if err := r.client.Kernel.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Write(p, ino, 0, vec); err != nil {
			t.Fatal(err)
		}
		rva, rvec := r.kbuf(t, size)
		pd, err := cl.StartRead(p, ino, 0, rvec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := pd.Wait(p)
		if err != nil || int(resp.N) != size {
			t.Fatalf("wide striped read: n=%d err=%v", resp.N, err)
		}
		got, _ := r.client.Kernel.ReadBytes(rva, size)
		if !bytes.Equal(got, data) {
			t.Fatal("wide striped read corrupted data")
		}
	})
}

// TestClusterGetattrDoesNotPoisonSizeCache pins the size-cache
// invariant: a read-only getattr between an async StartWrite (which
// reconciles nothing) and a synchronous Write must not convince the
// cluster that reconciliation already happened. Before the fix, the
// homed getattr cached the home's size and the sync Write skipped
// the reconciliation fan, leaving other servers EOF-clipped. Under
// the size-epoch protocol the getattr reply still feeds only the
// EPOCH side of the validated cache, never the size floor.
func TestClusterGetattrDoesNotPoisonSizeCache(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 2, testStripe)
		ino := clusterCreate(t, p, cl, "f")
		const end = 3 * testStripe

		// Async write of the final stripe: extends only its owner.
		va, vec := r.kbuf(t, testStripe)
		if err := r.client.Kernel.WriteBytes(va, pattern(testStripe)); err != nil {
			t.Fatal(err)
		}
		pd, err := cl.StartWrite(p, ino, 2*testStripe, vec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pd.Wait(p); err != nil {
			t.Fatal(err)
		}

		// Read-only metadata in between (whatever it reports).
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil {
			t.Fatal(err)
		}

		// Sync write of the same final stripe: must reconcile all
		// servers even though a getattr just went by.
		if _, err := cl.Write(p, ino, 2*testStripe, vec); err != nil {
			t.Fatal(err)
		}
		for s, fs := range r.serverFS {
			a, err := fs.Getattr(p, ino)
			if err != nil || a.Size != end {
				t.Fatalf("server %d local size = %d (%v), want %d", s, a.Size, err, end)
			}
		}
		// And the whole range (leading hole included) reads at full length.
		rva, rvec := r.kbuf(t, end)
		resp, err := cl.Read(p, ino, 0, rvec)
		if err != nil || int(resp.N) != end {
			t.Fatalf("striped read after reconciliation: n=%d err=%v, want %d", resp.N, err, end)
		}
		_ = rva
	})
}

// TestClusterMetaBatchRepeatedSizeMutations pins the batched
// self-race fix: a MetaBatch carrying several exact size sets of ONE
// inode must succeed — the cluster stamps each with the epoch it will
// find after the batch's earlier sets (servers bump per exact set) —
// and the LAST mutation must win on every server, exactly as applied.
func TestClusterMetaBatchRepeatedSizeMutations(t *testing.T) {
	r := newClusterRig(t, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.cluster(t, p, 4, testStripe)
		ino := clusterCreate(t, p, cl, "f")
		resps, err := cl.MetaBatch(p, []*rfsrv.Req{
			{Op: rfsrv.OpTruncate, Ino: ino, Off: 3 * testStripe},
			{Op: rfsrv.OpTruncate, Ino: ino, Off: testStripe},
			{Op: rfsrv.OpGetattr, Ino: ino},
		})
		if err != nil {
			t.Fatalf("batched truncate-then-truncate: %v", err)
		}
		if got := resps[2].Attr.Size; got != testStripe {
			t.Fatalf("batched getattr after two truncates = %d, want %d", got, testStripe)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != testStripe {
				t.Fatalf("server %d size = %d after batch, want %d (last mutation wins)", s, a.Size, testStripe)
			}
		}
		// A follow-up synchronous truncate must not see a stale cache.
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: 2 * testStripe}); err != nil {
			t.Fatalf("truncate after batch: %v", err)
		}
		for s, fs := range r.serverFS {
			if a, _ := fs.Getattr(p, ino); a.Size != 2*testStripe {
				t.Fatalf("server %d size = %d after follow-up truncate, want %d", s, a.Size, 2*testStripe)
			}
		}
	})
}
