package rfsrv

// White-box error-path tests: these craft requests that the public
// client API now refuses at the boundary, to prove the server rejects
// them too (StInval) instead of clipping silently or panicking.

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/sim"
)

func TestServerRejectsBadRanges(t *testing.T) {
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := c.AddNode("server")
	client := c.AddNode("client")
	serverFS := memfs.New("backing", server, 0)
	srv := NewServer(server, serverFS)
	if _, err := srv.ServeMX(mx.Attach(server), 1, 1); err != nil {
		t.Fatal(err)
	}
	ran := false
	env.Spawn("t", func(p *sim.Proc) {
		attr, err := serverFS.Create(p, serverFS.Root(), "f")
		if err != nil {
			t.Error(err)
			return
		}
		fc, err := NewMXClient(mx.Attach(client), 2, true, client.Kernel, server.ID, 1)
		if err != nil {
			t.Error(err)
			return
		}
		// Craft raw requests below the validating client API.
		send := func(req *Req) (*Resp, error) {
			fc.seq++
			req.Seq, req.EP = fc.seq, fc.myEP
			hdrOp, err := fc.postHdr(p, &fc.ctl, req.Seq)
			if err != nil {
				return nil, err
			}
			if err := fc.sendReq(p, &fc.ctl, req, nil); err != nil {
				return nil, err
			}
			return fc.finish(p, &fc.ctl, hdrOp, req.Seq, 0)
		}
		cases := []struct {
			name string
			req  *Req
		}{
			{"read negative off", &Req{Op: OpRead, Ino: attr.Ino, Off: -4096, Len: 4096}},
			{"read overflowing range", &Req{Op: OpRead, Ino: attr.Ino, Off: math.MaxInt64 - 2, Len: 4096}},
			{"write negative off", &Req{Op: OpWrite, Ino: attr.Ino, Off: -1, Len: 0}},
			{"write overflowing range", &Req{Op: OpWrite, Ino: attr.Ino, Off: math.MaxInt64 - 2, Len: 4096}},
			{"truncate negative size", &Req{Op: OpTruncate, Ino: attr.Ino, Off: -1}},
		}
		for _, tc := range cases {
			resp, err := send(tc.req)
			if err != ErrInval {
				t.Errorf("%s: err = %v, want ErrInval", tc.name, err)
			}
			if resp == nil || resp.Status != StInval {
				t.Errorf("%s: resp = %+v, want status StInval", tc.name, resp)
			}
		}
		// The server must still be healthy afterwards.
		if resp, err := send(&Req{Op: OpGetattr, Ino: attr.Ino}); err != nil || resp.Attr.Ino != attr.Ino {
			t.Errorf("server unhealthy after bad ranges: %+v %v", resp, err)
		}
		ran = true
	})
	env.Run(0)
	if !ran {
		t.Fatal("test body deadlocked")
	}
	_ = kernel.ErrBadOffset
}
