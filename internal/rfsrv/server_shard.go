package rfsrv

// Server half of the sharded namespace (DESIGN.md §11). A sharded
// server is the authority for the directories whose routing residue
// falls inside its owner slice: it is the only place their dentries
// mutate, it mints the inodes created under them, and it refuses
// mutations outside the slice with StNotOwner so a client routing bug
// can never silently diverge the namespace. Everything else the
// server holds — foreign files' bytes, sizes, stubs of foreign
// directories — is materialized lazily when the data path or a
// replication verb first touches it.

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// ShardBackingFS is the backing store a sharded server needs: the
// plain serving surface plus residue-directed minting, stub
// materialization, dentry link/detach (the halves of a two-home
// rename) and object scrubbing. memfs.FS implements it.
type ShardBackingFS interface {
	BackingFS
	// MakeNode creates like Create/Mkdir but mints the child's inode
	// with the given routing residue (< 0: the minter's default).
	MakeNode(p *sim.Proc, dir kernel.InodeID, name string, kind kernel.FileKind, residue int) (kernel.Attr, error)
	// Materialize ensures an object for id exists (idempotent stub
	// creation of the given kind).
	Materialize(p *sim.Proc, id kernel.InodeID, kind kernel.FileKind) (kernel.Attr, error)
	// Link enters (name → child) into dir without minting; linking the
	// same child twice is an idempotent success.
	Link(p *sim.Proc, dir kernel.InodeID, name string, child kernel.InodeID, kind kernel.FileKind) (kernel.Attr, error)
	// Detach removes (name → child) from dir if it still maps to
	// child, reporting whether it did.
	Detach(p *sim.Proc, dir kernel.InodeID, name string, child kernel.InodeID) (bool, error)
	// Scrub frees the object for id (dangling names tolerated).
	Scrub(p *sim.Proc, id kernel.InodeID) error
	// Rename moves an entry between two local directories.
	Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) (kernel.Attr, error)
}

// renameKey identifies a source directory entry marked by an
// in-flight two-phase rename.
type renameKey struct {
	dir  kernel.InodeID
	name string
}

// renameMark is what OpRenamePrepare records: where the entry is
// headed and which child it carries, so a replayed prepare toward the
// same destination is answered idempotently and anything else is
// refused with StBusy until finalize or abort clears the mark.
type renameMark struct {
	dst   kernel.InodeID
	child kernel.InodeID
	kind  kernel.FileKind
}

// EnableSharding declares this server to be owner index of count
// namespace shards with the given replication factor: namespace
// mutations are accepted only for directories whose routing residue
// falls in [index, index+replicas) mod count. The backing store must
// support the sharded verbs (memfs does). Call before serving.
func (s *Server) EnableSharding(index, count, replicas int) error {
	sfs, ok := s.fs.(ShardBackingFS)
	if !ok {
		return fmt.Errorf("rfsrv: backing store %T cannot shard", s.fs)
	}
	if count < 1 || index < 0 || index >= count || replicas < 1 || replicas > count {
		return fmt.Errorf("rfsrv: bad shard geometry %d/%d r=%d", index, count, replicas)
	}
	s.shard, s.shardIdx, s.shardN, s.shardR = true, index, count, replicas
	s.sfs = sfs
	s.renames = make(map[renameKey]renameMark)
	return nil
}

// shardResidue maps an inode to its routing residue: the directory
// slice it belongs to. The root (and the pre-root 0 alias) is slice 0
// by convention.
func (s *Server) shardResidue(ino kernel.InodeID) int {
	if ino <= 1 {
		return 0
	}
	return int((uint64(ino) - 2) % uint64(s.shardN))
}

// ownsDir reports whether this server's owner slice covers the
// directory: residues [shardIdx-shardR+1 .. shardIdx] reversed —
// i.e. the R servers owner..owner+R-1 cover residue owner.
func (s *Server) ownsDir(dir kernel.InodeID) bool {
	d := (s.shardIdx - s.shardResidue(dir) + s.shardN) % s.shardN
	return d < s.shardR
}

// renameMarked reports whether (dir, name) is held by an in-flight
// rename prepare.
func (s *Server) renameMarked(dir kernel.InodeID, name string) bool {
	if s.renames == nil {
		return false
	}
	_, ok := s.renames[renameKey{dir, name}]
	return ok
}

// materializeOnDemand creates a stub for an inode the data path
// touched before any namespace verb introduced it here — the lazy
// half of sharded placement. No-op outside shard mode or when the
// object exists.
func (s *Server) materializeOnDemand(p *sim.Proc, ino kernel.InodeID, kind kernel.FileKind) {
	if !s.shard || ino == 0 {
		return
	}
	if _, err := s.fs.Getattr(p, ino); err == kernel.ErrNotFound {
		s.sfs.Materialize(p, ino, kind)
	}
}

// shardMakeNode is the sharded create/mkdir: authority check, lazy
// parent materialization, then a mint whose residue the client chose
// (req.Len carries residue+1; 0 means "minter's default"). Files
// inherit the parent's residue so their owner group serves both; the
// cluster spreads directories by hashing, which is what makes
// metadata throughput scale with N.
func (s *Server) shardMakeNode(p *sim.Proc, dir kernel.InodeID, req *Req, kind kernel.FileKind) (kernel.Attr, error) {
	if !s.ownsDir(dir) {
		return kernel.Attr{}, ErrNotOwner
	}
	if _, err := s.fs.Getattr(p, dir); err == kernel.ErrNotFound {
		if _, err := s.sfs.Materialize(p, dir, kernel.Directory); err != nil {
			return kernel.Attr{}, err
		}
	}
	residue := int(req.Len) - 1
	if residue >= s.shardN {
		return kernel.Attr{}, ErrInval
	}
	return s.sfs.MakeNode(p, dir, req.Name, kind, residue)
}

// shardUnlink is the sharded unlink: authority check, rename-mark
// check, then the removal — returning the victim's attributes so the
// client can prune its caches and queue the lazy cluster-wide scrub.
func (s *Server) shardUnlink(p *sim.Proc, dir kernel.InodeID, req *Req) (kernel.Attr, error) {
	if !s.ownsDir(dir) {
		return kernel.Attr{}, ErrNotOwner
	}
	if s.renameMarked(dir, req.Name) {
		return kernel.Attr{}, ErrBusy
	}
	victim, lerr := s.fs.Lookup(p, dir, req.Name)
	if err := s.fs.Unlink(p, dir, req.Name); err != nil {
		return kernel.Attr{}, err
	}
	if lerr != nil {
		return kernel.Attr{}, nil
	}
	delete(s.epochs, victim.Ino)
	delete(s.layouts, victim.Ino)
	return victim, nil
}

// handleLink is OpLink: enter child (Off) of the given kind (Len)
// into dir under req.Name. Requires shard mode and dentry authority —
// it is the replication verb for fresh dentries and the commit half
// of the two-phase rename, both of which only ever target the owner
// group of the directory.
func (s *Server) handleLink(p *sim.Proc, dir kernel.InodeID, req *Req) (kernel.Attr, error) {
	if !s.shard {
		return kernel.Attr{}, ErrInval
	}
	if !s.ownsDir(dir) {
		return kernel.Attr{}, ErrNotOwner
	}
	if _, err := s.fs.Getattr(p, dir); err == kernel.ErrNotFound {
		if _, err := s.sfs.Materialize(p, dir, kernel.Directory); err != nil {
			return kernel.Attr{}, err
		}
	}
	return s.sfs.Link(p, dir, req.Name, kernel.InodeID(req.Off), kernel.FileKind(req.Len))
}

// handleMaterialize is OpMaterialize: idempotent stub creation, no
// authority check — it targets the inode's own routing group, which
// need not own any dentry naming it.
func (s *Server) handleMaterialize(p *sim.Proc, ino kernel.InodeID, req *Req) (kernel.Attr, error) {
	if !s.shard {
		return kernel.Attr{}, ErrInval
	}
	return s.sfs.Materialize(p, ino, kernel.FileKind(req.Len))
}

// handleScrub is OpScrub: free the local object for a dead inode
// (idempotent; dangling names are tolerated everywhere). With
// ScrubRequireEmptyDir set it is the sharded rmdir's check-and-remove
// at the victim directory's own routing group — the only group whose
// copy of the directory sees its children's dentries.
func (s *Server) handleScrub(p *sim.Proc, ino kernel.InodeID, req *Req) error {
	if !s.shard {
		return ErrInval
	}
	if ino <= s.fs.Root() {
		return ErrInval
	}
	if req.Len&ScrubRequireEmptyDir != 0 {
		a, err := s.fs.Getattr(p, ino)
		if err == kernel.ErrNotFound {
			return nil // nothing here: vacuously empty and gone
		}
		if err != nil {
			return err
		}
		if a.Kind != kernel.Directory {
			return kernel.ErrNotDir
		}
		entries, err := s.fs.Readdir(p, ino)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return kernel.ErrNotEmpty
		}
	}
	if err := s.sfs.Scrub(p, ino); err != nil {
		return err
	}
	delete(s.epochs, ino)
	delete(s.layouts, ino)
	return nil
}

// handleRenamePrepare is phase one of the cross-owner rename, at the
// source owner group: resolve the child, mark the entry as renaming
// toward the destination directory (Off), and return the child's
// attributes so the client can commit the link at the destination
// group. A replayed prepare toward the same destination answers
// idempotently; a different destination is refused with StBusy, as is
// any unlink/rmdir/rename of a marked entry until finalize or abort.
func (s *Server) handleRenamePrepare(p *sim.Proc, dir kernel.InodeID, req *Req) (kernel.Attr, error) {
	if !s.shard {
		return kernel.Attr{}, ErrInval
	}
	if !s.ownsDir(dir) {
		return kernel.Attr{}, ErrNotOwner
	}
	key := renameKey{dir, req.Name}
	dst := kernel.InodeID(req.Off)
	if m, ok := s.renames[key]; ok {
		if m.dst == dst {
			return kernel.Attr{Ino: m.child, Kind: m.kind}, nil
		}
		return kernel.Attr{}, ErrBusy
	}
	child, err := s.fs.Lookup(p, dir, req.Name)
	if err != nil {
		return kernel.Attr{}, err
	}
	s.renames[key] = renameMark{dst: dst, child: child.Ino, kind: child.Kind}
	return child, nil
}

// handleRenameFinalize is phase three: the destination group holds
// the committed link, so detach the source entry (if it still maps to
// the renamed child — Off) and clear the mark. Idempotent.
func (s *Server) handleRenameFinalize(p *sim.Proc, dir kernel.InodeID, req *Req) error {
	if !s.shard {
		return ErrInval
	}
	if !s.ownsDir(dir) {
		return ErrNotOwner
	}
	if _, err := s.sfs.Detach(p, dir, req.Name, kernel.InodeID(req.Off)); err != nil {
		return err
	}
	delete(s.renames, renameKey{dir, req.Name})
	return nil
}

// handleRenameAbort clears a prepare mark without touching the entry:
// the commit never happened (or could not be confirmed and the
// destination refused it). Idempotent.
func (s *Server) handleRenameAbort(p *sim.Proc, dir kernel.InodeID, req *Req) error {
	if !s.shard {
		return ErrInval
	}
	if !s.ownsDir(dir) {
		return ErrNotOwner
	}
	delete(s.renames, renameKey{dir, req.Name})
	return nil
}

// handleRenameLocal is the one-home rename: both directories live
// under this server's authority (or the server is unsharded — a
// replicated cluster fans the op to every member, a single-server
// session just applies it). Name carries both components
// (PackRenameNames); Off is the destination directory.
func (s *Server) handleRenameLocal(p *sim.Proc, srcDir kernel.InodeID, req *Req) (kernel.Attr, error) {
	sfs, ok := s.fs.(ShardBackingFS)
	if !ok {
		return kernel.Attr{}, ErrInval
	}
	srcName, dstName, ok := SplitRenameNames(req.Name)
	if !ok || srcName == "" || dstName == "" {
		return kernel.Attr{}, ErrInval
	}
	dstDir := kernel.InodeID(req.Off)
	if dstDir == 0 {
		dstDir = s.fs.Root()
	}
	if s.shard {
		if !s.ownsDir(srcDir) || !s.ownsDir(dstDir) {
			return kernel.Attr{}, ErrNotOwner
		}
		if s.renameMarked(srcDir, srcName) || s.renameMarked(dstDir, dstName) {
			return kernel.Attr{}, ErrBusy
		}
		if _, err := s.fs.Getattr(p, dstDir); err == kernel.ErrNotFound {
			if _, err := s.sfs.Materialize(p, dstDir, kernel.Directory); err != nil {
				return kernel.Attr{}, err
			}
		}
	}
	return sfs.Rename(p, srcDir, srcName, dstDir, dstName)
}
