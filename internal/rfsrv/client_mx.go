package rfsrv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// MXClient is the protocol client over the MX interface. Opened on a
// kernel endpoint it is the ORFS transport; on a user endpoint it is
// the ORFA transport. Either way the code is the same — which is the
// paper's §4.2 claim about the MX kernel interface made concrete.
type MXClient struct {
	ep       *mx.Endpoint
	as       *vm.AddressSpace
	kernSide bool
	server   hw.NodeID
	serverEP uint8
	myEP     uint8

	reqVA vm.VirtAddr
	hdrVA vm.VirtAddr
	seq   uint64
	lock  *sim.Resource
}

// NewMXClient opens endpoint epID (kernel or user per kernelSide) and
// prepares the client's internal request/reply buffers in bufAS (the
// kernel space for ORFS, the process space for ORFA).
func NewMXClient(m *mx.MX, epID uint8, kernelSide bool, bufAS *vm.AddressSpace, server hw.NodeID, serverEP uint8) (*MXClient, error) {
	ep, err := m.OpenEndpoint(epID, kernelSide)
	if err != nil {
		return nil, err
	}
	c := &MXClient{
		ep: ep, as: bufAS, kernSide: kernelSide,
		server: server, serverEP: serverEP, myEP: epID,
		lock: sim.NewResource(m.Node().Cluster.Env, "mxclient-lock", 1),
	}
	alloc := bufAS.Mmap
	if kernelSide {
		alloc = bufAS.MmapContig
	}
	if c.reqVA, err = alloc(4096, "rfsrv-req"); err != nil {
		return nil, err
	}
	if c.hdrVA, err = alloc(HdrBufSize, "rfsrv-hdr"); err != nil {
		return nil, err
	}
	return c, nil
}

// Endpoint returns the underlying MX endpoint (stats).
func (c *MXClient) Endpoint() *mx.Endpoint { return c.ep }

// seg builds an address-typed segment over the client's own buffers.
func (c *MXClient) seg(va vm.VirtAddr, n int) core.Segment {
	if c.kernSide {
		return core.KernelSeg(c.as, va, n)
	}
	return core.UserSeg(c.as, va, n)
}

// postHdr posts the reply-header receive for seq.
func (c *MXClient) postHdr(p *sim.Proc, seq uint64) (*mx.Request, error) {
	return c.ep.Recv(p, core.Exact(tag(seq, c.myEP, kindHdr)), core.Of(c.seg(c.hdrVA, HdrBufSize)))
}

// sendReq encodes and transmits a request, with extra data segments
// appended to the same (vectorial) message.
func (c *MXClient) sendReq(p *sim.Proc, req *Req, extra core.Vector) error {
	enc := EncodeReq(req)
	if err := c.as.WriteBytes(c.reqVA, enc); err != nil {
		return err
	}
	v := append(core.Vector{c.seg(c.reqVA, len(enc))}, extra...)
	_, err := c.ep.Send(p, c.server, c.serverEP, reqTag, v)
	return err
}

// finish waits for the header reply and decodes it.
func (c *MXClient) finish(p *sim.Proc, hdrReq *mx.Request, seq uint64) (*Resp, error) {
	st := hdrReq.Wait(p)
	if st.Err != nil {
		return nil, st.Err
	}
	raw, err := c.as.ReadBytes(c.hdrVA, st.Len)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResp(raw)
	if err != nil {
		return nil, err
	}
	if resp.Seq != seq {
		return nil, fmt.Errorf("rfsrv: reply for seq %d, want %d", resp.Seq, seq)
	}
	if err := ErrOf(resp.Status); err != nil {
		return resp, err
	}
	return resp, nil
}

// Meta implements Client.
func (c *MXClient) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.seq++
	req.Seq, req.EP = c.seq, c.myEP
	hdrReq, err := c.postHdr(p, req.Seq)
	if err != nil {
		return nil, err
	}
	if err := c.sendReq(p, req, nil); err != nil {
		return nil, err
	}
	return c.finish(p, hdrReq, req.Seq)
}

// Read implements Client: data lands directly in dst (physical
// page-cache frames, kernel buffers or pinned user memory — MX handles
// all three address types natively).
func (c *MXClient) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.seq++
	seq := c.seq
	req := &Req{Op: OpRead, Seq: seq, EP: c.myEP, Ino: ino, Off: off, Len: uint32(dst.TotalLen())}
	hdrReq, err := c.postHdr(p, seq)
	if err != nil {
		return nil, err
	}
	dataReq, err := c.ep.Recv(p, core.Exact(tag(seq, c.myEP, kindData)), dst)
	if err != nil {
		return nil, err
	}
	if err := c.sendReq(p, req, nil); err != nil {
		return nil, err
	}
	if st := dataReq.Wait(p); st.Err != nil {
		return nil, st.Err
	}
	return c.finish(p, hdrReq, seq)
}

// Write implements Client: write data rides in the request message
// itself, as additional vector segments (chunked at MaxWriteChunk).
func (c *MXClient) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	total := src.TotalLen()
	written := 0
	var last *Resp
	for written < total || total == 0 {
		chunk := total - written
		if chunk > MaxWriteChunk {
			chunk = MaxWriteChunk
		}
		c.seq++
		seq := c.seq
		req := &Req{Op: OpWrite, Seq: seq, EP: c.myEP, Ino: ino, Off: off + int64(written), Len: uint32(chunk)}
		hdrReq, err := c.postHdr(p, seq)
		if err != nil {
			return nil, err
		}
		if err := c.sendReq(p, req, src.Slice(written, chunk)); err != nil {
			return nil, err
		}
		resp, err := c.finish(p, hdrReq, seq)
		if err != nil {
			return resp, err
		}
		written += int(resp.N)
		last = resp
		if total == 0 {
			break
		}
		if resp.N == 0 {
			return last, fmt.Errorf("rfsrv: short write at %d", written)
		}
	}
	if last == nil {
		last = &Resp{}
	}
	last.N = uint32(written)
	return last, nil
}

var _ Client = (*MXClient)(nil)
