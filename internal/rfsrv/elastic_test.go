package rfsrv_test

// Elastic-membership tests (DESIGN.md §13): journaled resync under
// partial replay failure (idempotent retry with the prefix already
// applied), overlapping extending writes coalesced in the journal and
// replayed, journal spill falling back to full-slice resync (and
// refusing without peers), live Join/Retire with online stripe
// migration, a kill mid-Join leaving committed state clean and
// retryable, the sharded stop-world Bounce, and the stale-membership
// latch on viewless clients. Every fault path ends on the usual bars:
// window slots idle, pooled staging leak-free.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// elasticWrite fills a fresh kernel buffer with data and writes it
// through the cluster at off.
func elasticWrite(t *testing.T, p *sim.Proc, r *clusterRig, cl *rfsrv.Cluster, ino kernel.InodeID, off int64, data []byte) {
	t.Helper()
	va, vec := r.kbuf(t, len(data))
	if err := r.client.Kernel.WriteBytes(va, data); err != nil {
		t.Fatal(err)
	}
	if resp, err := cl.Write(p, ino, off, vec); err != nil || int(resp.N) != len(data) {
		t.Fatalf("write [%d,%d): n=%d err=%v", off, off+int64(len(data)), resp.N, err)
	}
}

// elasticReadBack reads [0, size) through the cluster and returns the
// bytes.
func elasticReadBack(t *testing.T, p *sim.Proc, r *clusterRig, cl *rfsrv.Cluster, ino kernel.InodeID, size int) []byte {
	t.Helper()
	rva, rvec := r.kbuf(t, size)
	resp, err := cl.Read(p, ino, 0, rvec)
	if err != nil || int(resp.N) != size {
		t.Fatalf("read back: n=%d err=%v", resp.N, err)
	}
	got, err := r.client.Kernel.ReadBytes(rva, size)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestElasticReplayRetryIdempotent interrupts a journal replay midway
// — a second NIC kill lands right after the first journaled mutation
// reaches the victim — and requires the failed Reinstate to keep the
// server excluded with its journal intact, and a later retry to
// replay the whole journal again (prefix included) onto the
// partially-replayed server and land the exact final state.
func TestElasticReplayRetryIdempotent(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 4 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		expect := pattern(size)
		elasticWrite(t, p, r, cl, ino, 0, expect)

		r.servers[1].NIC.Kill()

		// Missed work: two namespace mutations and fresh dirty bytes
		// over the whole file (server 1 replicates stripes 0, 1, 3).
		for i, b := range expect {
			expect[i] = b ^ 0x5a
		}
		elasticWrite(t, p, r, cl, ino, 0, expect)
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "d"}); err != nil {
			t.Fatalf("mkdir with server 1 dark: %v", err)
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "x"}); err != nil {
			t.Fatalf("create with server 1 dark: %v", err)
		}
		if cl.JournalOps(1) == 0 || cl.JournalBytes(1) == 0 {
			t.Fatalf("journal for server 1: %d ops, %d bytes; missed work not recorded",
				cl.JournalOps(1), cl.JournalBytes(1))
		}

		// First replay attempt: the killer proc watches the victim's
		// backing store and cuts its NIC the moment the replayed mkdir
		// lands, so the rest of the journal times out mid-replay.
		r.servers[1].NIC.Revive()
		stop := false
		r.env.Spawn("killer", func(kp *sim.Proc) {
			for !stop {
				if _, err := r.serverFS[1].Lookup(kp, r.serverFS[1].Root(), "d"); err == nil {
					r.servers[1].NIC.Kill()
					return
				}
				kp.Sleep(2 * time.Microsecond)
			}
		})
		err := cl.Reinstate(p, 1)
		stop = true
		if err == nil {
			t.Fatal("reinstate with the NIC cut mid-replay: want error")
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down = %v after failed replay, want [1]", down)
		}
		if cl.JournalOps(1) == 0 {
			t.Fatal("failed replay dropped the journal; the retry has nothing to replay")
		}

		// Retry: the full journal replays again, including the mkdir
		// already applied — re-admission must land the same state.
		r.servers[1].NIC.Revive()
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate retry: %v", err)
		}
		if down := cl.DownServers(); len(down) != 0 {
			t.Fatalf("down = %v after retry, want none", down)
		}
		// The victim held a prefix (the replayed mkdir), so the retry's
		// batched fast path must have yielded to the serial one for its
		// verification lookups.
		if cl.ResyncFallbacks.N == 0 {
			t.Error("retry over an applied prefix did not fall back to serial replay")
		}
		for _, name := range []string{"d", "x"} {
			if _, err := r.serverFS[1].Lookup(p, r.serverFS[1].Root(), name); err != nil {
				t.Errorf("victim missing replayed entry %q: %v", name, err)
			}
		}
		// Route reads through the victim: with server 0 dark, stripes
		// 0, 1, 3 are served by server 1 — the replayed bytes.
		r.servers[0].NIC.Kill()
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Error("read through the re-admitted server returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestElasticReplayOverlappingExtendingWrites journals three mutually
// overlapping writes that extend the file while the victim is dark,
// and requires the journal to coalesce them (bounded by the file
// size, not the write volume) and the replay to land byte-exact
// content and the final size.
func TestElasticReplayOverlappingExtendingWrites(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 4 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		elasticWrite(t, p, r, cl, ino, 0, pattern(testStripe))

		r.servers[1].NIC.Kill()

		expect := make([]byte, size)
		copy(expect, pattern(testStripe))
		apply := func(off, n int, fill byte) {
			data := bytes.Repeat([]byte{fill}, n)
			copy(expect[off:], data)
			elasticWrite(t, p, r, cl, ino, int64(off), data)
		}
		apply(0, 5*testStripe/2, 0x11)          // [0, 2.5 stripes)
		apply(2*testStripe, 2*testStripe, 0x22) // [2, 4) extends
		apply(testStripe/2, testStripe, 0x33)   // [0.5, 1.5) back-overlap
		written := 5*testStripe/2 + 2*testStripe + testStripe
		if jb := cl.JournalBytes(1); jb == 0 || jb > int64(size) {
			t.Fatalf("journal holds %d dirty bytes; want coalesced to (0, %d] (wrote %d)", jb, size, written)
		}

		r.servers[1].NIC.Revive()
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate: %v", err)
		}
		if cl.ReinstateRefusals.N != 0 || cl.ResyncBytes.Bytes == 0 {
			t.Fatalf("refusals=%d resyncBytes=%d; want replay with dirty data", cl.ReinstateRefusals.N, cl.ResyncBytes.Bytes)
		}
		if a, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); err != nil || a.Attr.Size != size {
			t.Fatalf("size = %d err=%v, want %d", a.Attr.Size, err, size)
		}
		r.servers[0].NIC.Kill()
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Error("overlapping extending writes replayed wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestElasticSpillFallsBackToFullResync caps the journal at one op so
// two missed mutations spill it, and requires Reinstate to fall back
// to a full-slice resync through the wired peers: the fallback is
// counted as a refusal and a spill, and the victim still converges to
// the same namespace and bytes a replay would have produced.
func TestElasticSpillFallsBackToFullResync(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		if err := cl.SetResyncPeers(r.rsrv); err != nil {
			t.Fatal(err)
		}
		cl.SetJournalLimits(1, 0)
		const size = 3 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		expect := pattern(size)
		elasticWrite(t, p, r, cl, ino, 0, expect)

		r.servers[1].NIC.Kill()
		for _, name := range []string{"d1", "d2"} {
			if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: name}); err != nil {
				t.Fatalf("mkdir %s: %v", name, err)
			}
		}
		for i, b := range expect {
			expect[i] = b ^ 0x77
		}
		elasticWrite(t, p, r, cl, ino, 0, expect)
		if !cl.JournalSpilled(1) {
			t.Fatal("two mutations under a one-op cap did not spill the journal")
		}

		r.servers[1].NIC.Revive()
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate via full resync: %v", err)
		}
		if cl.ReinstateRefusals.N != 1 || cl.ResyncSpills.N != 1 {
			t.Fatalf("refusals=%d spills=%d, want 1 and 1 (the spill fallback)", cl.ReinstateRefusals.N, cl.ResyncSpills.N)
		}
		if down := cl.DownServers(); len(down) != 0 {
			t.Fatalf("down = %v, want none", down)
		}
		for _, name := range []string{"d1", "d2"} {
			if _, err := r.serverFS[1].Lookup(p, r.serverFS[1].Root(), name); err != nil {
				t.Errorf("victim missing %q after full resync: %v", name, err)
			}
		}
		r.servers[0].NIC.Kill()
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Error("full resync landed wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestElasticSpillWithoutPeersRefuses is the last refusal left: a
// spilled journal with no resync peers wired has no replay and no
// fallback, so Reinstate must refuse and keep the server excluded.
func TestElasticSpillWithoutPeersRefuses(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		cl.SetJournalLimits(1, 0)
		clusterCreate(t, p, cl, "f")
		r.servers[1].NIC.Kill()
		for _, name := range []string{"d1", "d2"} {
			if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: name}); err != nil {
				t.Fatalf("mkdir %s: %v", name, err)
			}
		}
		r.servers[1].NIC.Revive()
		if err := cl.Reinstate(p, 1); err == nil {
			t.Fatal("reinstate of a spilled journal without peers: want refusal")
		}
		if cl.ReinstateRefusals.N != 1 {
			t.Fatalf("refusals = %d, want 1", cl.ReinstateRefusals.N)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down = %v, want [1]", down)
		}
	})
}

// TestElasticJoinRetireOnline grows an unsharded cluster 3 -> 4 with
// a live Join, shrinks it back with a Retire of a different slot, and
// requires byte-exact reads across both cutovers, the joiner holding
// the stripes the new placement assigns it, and the retiree dark
// after retirement without costing any read an exclusion.
func TestElasticJoinRetireOnline(t *testing.T) {
	r := newClusterRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		if err := cl.SetMembers(3); err != nil {
			t.Fatal(err)
		}
		if err := cl.SetResyncPeers(r.rsrv); err != nil {
			t.Fatal(err)
		}
		view := cl.ShareView()
		const size = 8 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		expect := pattern(size)
		elasticWrite(t, p, r, cl, ino, 0, expect)

		if err := cl.Join(p, 3); err != nil {
			t.Fatalf("join: %v", err)
		}
		if m := view.Members(); !equalInts(m, []int{0, 1, 2, 3}) || view.Epoch() != 1 {
			t.Fatalf("after join: members %v epoch %d, want [0 1 2 3] epoch 1", m, view.Epoch())
		}
		if cl.Migrated.Bytes == 0 {
			t.Error("join migrated no bytes onto the joiner")
		}
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Fatal("read after join returned wrong bytes")
		}
		// New placement: stripe k lives on (k%4, (k+1)%4); stripes 2, 3
		// put frames on slot 3.
		pagesPerStripe := testStripe / mem.PageSize
		for _, k := range []int{2, 3} {
			if r.serverFS[3].FrameAt(ino, int64(k*pagesPerStripe)) == nil {
				t.Errorf("joiner holds no frames for stripe %d it now replicates", k)
			}
		}

		if err := cl.Retire(p, 1); err != nil {
			t.Fatalf("retire: %v", err)
		}
		if m := view.Members(); !equalInts(m, []int{0, 2, 3}) || view.Epoch() != 2 {
			t.Fatalf("after retire: members %v epoch %d, want [0 2 3] epoch 2", m, view.Epoch())
		}
		// The retiree is out of every replica set: reads survive its
		// death without a single failover or exclusion.
		before := cl.Failovers.N
		r.servers[1].NIC.Kill()
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Fatal("read after retire returned wrong bytes")
		}
		if cl.Failovers.N != before || len(cl.DownServers()) != 0 {
			t.Errorf("retired slot still in the data path: %d new failovers, down=%v",
				cl.Failovers.N-before, cl.DownServers())
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestElasticJoinKillPointRetries cuts the joiner's NIC in the middle
// of a Join — after the namespace seed lands, while stripes migrate —
// and requires the failed Join to leave the old geometry fully intact
// (epoch, members, bytes, no leaked window slots), and a retry after
// revive to complete the admission.
func TestElasticJoinKillPointRetries(t *testing.T) {
	r := newClusterRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		if err := cl.SetMembers(3); err != nil {
			t.Fatal(err)
		}
		if err := cl.SetResyncPeers(r.rsrv); err != nil {
			t.Fatal(err)
		}
		view := cl.ShareView()
		const size = 8 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		expect := pattern(size)
		elasticWrite(t, p, r, cl, ino, 0, expect)

		// The killer watches the joiner's store: the seeded namespace
		// appearing means the Join is past its bulk import and into
		// stripe migration — cut the NIC there.
		stop := false
		r.env.Spawn("killer", func(kp *sim.Proc) {
			for !stop {
				if _, err := r.serverFS[3].Lookup(kp, r.serverFS[3].Root(), "f"); err == nil {
					r.servers[3].NIC.Kill()
					return
				}
				kp.Sleep(2 * time.Microsecond)
			}
		})
		err := cl.Join(p, 3)
		stop = true
		if err == nil {
			t.Fatal("join with the joiner cut mid-migration: want error")
		}
		if m := view.Members(); !equalInts(m, []int{0, 1, 2}) || view.Epoch() != 0 {
			t.Fatalf("failed join moved the view: members %v epoch %d", m, view.Epoch())
		}
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Fatal("read after failed join returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)

		r.servers[3].NIC.Revive()
		for _, s := range cl.DownServers() {
			if err := cl.Reinstate(p, s); err != nil {
				t.Fatalf("reinstate slot %d before retry: %v", s, err)
			}
		}
		if err := cl.Join(p, 3); err != nil {
			t.Fatalf("join retry: %v", err)
		}
		if m := view.Members(); !equalInts(m, []int{0, 1, 2, 3}) || view.Epoch() != 1 {
			t.Fatalf("after retried join: members %v epoch %d, want [0 1 2 3] epoch 1", m, view.Epoch())
		}
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Fatal("read after retried join returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestElasticBounceStopWorldSharded bounces a member of a sharded
// cluster — retire and re-admit inside one stop-world window — and
// requires the epoch to advance twice with the member set unchanged,
// and every directory entry and data byte to survive the double
// rebuild.
func TestElasticBounceStopWorldSharded(t *testing.T) {
	r := newShardRig(t, 4, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 2)
		if err := cl.SetResyncPeers(r.rsrv); err != nil {
			t.Fatal(err)
		}
		view := cl.ShareView()
		const size = 6 * testStripe
		dir := mkdirRes(t, p, cl, 4, 1, "dir")
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir, Name: "f"})
		if err != nil {
			t.Fatal(err)
		}
		ino := resp.Attr.Ino
		expect := pattern(size)
		elasticWrite(t, p, r, cl, ino, 0, expect)

		members := view.Members()
		if err := cl.Bounce(p, 1); err != nil {
			t.Fatalf("bounce: %v", err)
		}
		if m := view.Members(); !equalInts(m, members) || view.Epoch() != 2 {
			t.Fatalf("after bounce: members %v epoch %d, want %v epoch 2", m, view.Epoch(), members)
		}
		if a, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: dir, Name: "f"}); err != nil || a.Attr.Ino != ino {
			t.Fatalf("lookup after bounce: ino=%d err=%v, want %d", a.Attr.Ino, err, ino)
		}
		if got := elasticReadBack(t, p, r, cl, ino, size); !bytes.Equal(got, expect) {
			t.Fatal("read after bounce returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestElasticViewlessClientGoesStale runs a membership change behind
// a client that never attached to the shared view, and requires that
// client's next operation to fail with ErrStaleMembership (replies
// carry the new epoch) and every later one to keep failing — the
// latch that stops a stale client from reading re-placed data through
// the old geometry.
func TestElasticViewlessClientGoesStale(t *testing.T) {
	r := newClusterRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		op := r.clusterRep(t, p, 4, testStripe, 2)
		if err := op.SetMembers(3); err != nil {
			t.Fatal(err)
		}
		if err := op.SetResyncPeers(r.rsrv); err != nil {
			t.Fatal(err)
		}
		op.ShareView()

		// A second cluster on the same client node needs its own local
		// endpoints (clusterRep claims 10+i).
		sessions := make([]*rfsrv.Session, len(r.servers))
		for i, srv := range r.servers {
			fc, err := rfsrv.NewMXClient(r.clientMX, uint8(20+i), true, r.client.Kernel, srv.ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			fc.SetRequestTimeout(faultTimeout)
			if sessions[i], err = rfsrv.NewSession(p, fc, 4); err != nil {
				t.Fatal(err)
			}
		}
		viewless, err := rfsrv.NewReplicatedCluster(p, sessions, testStripe, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := viewless.SetMembers(3); err != nil {
			t.Fatal(err)
		}
		const size = 2 * testStripe
		ino := clusterCreate(t, p, viewless, "f")
		elasticWrite(t, p, r, viewless, ino, 0, pattern(size))

		if err := op.Join(p, 3); err != nil {
			t.Fatalf("join: %v", err)
		}

		// The first reply stamped with the new epoch poisons the
		// viewless cluster (the op itself still completes — its routing
		// was consistent); everything after fails at the entry gate.
		_, rvec := r.kbuf(t, size)
		if _, err := viewless.Read(p, ino, 0, rvec); err != nil {
			t.Fatalf("poisoning read: %v", err)
		}
		if _, err := viewless.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino}); !errors.Is(err, rfsrv.ErrStaleMembership) {
			t.Fatalf("viewless getattr after the latch: %v, want ErrStaleMembership", err)
		}
		if _, err := viewless.Read(p, ino, 0, rvec); !errors.Is(err, rfsrv.ErrStaleMembership) {
			t.Fatalf("viewless read after the latch: %v, want ErrStaleMembership", err)
		}
		// The attached operator keeps working across the same change.
		if got := elasticReadBack(t, p, r, op, ino, size); !bytes.Equal(got, pattern(size)) {
			t.Fatal("attached client read wrong bytes after the join")
		}
	})
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestElasticReplayBatchedEquivalence builds a journal that exercises
// every batched-replay verdict class — a mkdir, creates, an
// idempotent unlink, a local rename, an epoch-bumping truncate (with
// its OpSyncEpoch prelude in the batch), and dirty data — and
// requires a clean Reinstate to land it through the combined-batch
// fast path (no serial fallback), with the victim's resulting state
// equal to a server that applied the same mutations live.
func TestElasticReplayBatchedEquivalence(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 2)
		const size = 4 * testStripe
		ino := clusterCreate(t, p, cl, "f")
		expect := pattern(size)
		elasticWrite(t, p, r, cl, ino, 0, expect)

		r.servers[1].NIC.Kill()

		// Missed work covering every replay verdict class.
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "d"}); err != nil {
			t.Fatalf("mkdir with server 1 dark: %v", err)
		}
		clusterCreate(t, p, cl, "x")
		clusterCreate(t, p, cl, "gone")
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: 0, Name: "gone"}); err != nil {
			t.Fatalf("unlink with server 1 dark: %v", err)
		}
		if _, err := cl.Rename(p, 0, "x", 0, "y"); err != nil {
			t.Fatalf("rename with server 1 dark: %v", err)
		}
		for i, b := range expect {
			expect[i] = b ^ 0x3c
		}
		elasticWrite(t, p, r, cl, ino, 0, expect)
		const cut = size - testStripe/2
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: ino, Off: cut}); err != nil {
			t.Fatalf("truncate with server 1 dark: %v", err)
		}
		expect = expect[:cut]
		ops := cl.JournalOps(1)
		if ops == 0 {
			t.Fatal("no journaled ops for the dark server")
		}

		r.servers[1].NIC.Revive()
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate: %v", err)
		}
		if n := cl.ResyncFallbacks.N; n != 0 {
			t.Errorf("ResyncFallbacks = %d after a clean replay, want 0 (batched fast path)", n)
		}
		if cl.ResyncOps.N != int64(ops) {
			t.Errorf("ResyncOps = %d, want %d (every journaled op replayed once)", cl.ResyncOps.N, ops)
		}

		// Equivalence oracle: the victim's namespace and attributes
		// must match server 0, which applied everything live.
		for _, name := range []string{"f", "d", "y"} {
			a0, err0 := r.serverFS[0].Lookup(p, r.serverFS[0].Root(), name)
			a1, err1 := r.serverFS[1].Lookup(p, r.serverFS[1].Root(), name)
			if err0 != nil || err1 != nil {
				t.Fatalf("lookup %q: live server err=%v, victim err=%v", name, err0, err1)
			}
			if a0.Ino != a1.Ino {
				t.Errorf("%q resolves to inode %d on the victim, %d on a live server", name, a1.Ino, a0.Ino)
			}
		}
		for _, name := range []string{"gone", "x"} {
			if _, err := r.serverFS[1].Lookup(p, r.serverFS[1].Root(), name); err == nil {
				t.Errorf("victim still resolves %q after the replayed unlink/rename", name)
			}
		}
		if a, err := r.serverFS[1].Getattr(p, ino); err != nil || a.Size != cut {
			t.Errorf("victim size = %d (err=%v), want %d", a.Size, err, cut)
		}

		// Route reads through the victim: with server 0 dark its
		// replica stripes serve the replayed bytes.
		r.servers[0].NIC.Kill()
		if got := elasticReadBack(t, p, r, cl, ino, cut); !bytes.Equal(got, expect) {
			t.Error("read through the re-admitted server returned wrong bytes")
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}
