// Elastic membership (DESIGN.md §13): the layer that turns the
// cluster's construction-time server set into a mutable, epoch-stamped
// membership view. Two mechanisms live here. (1) Journaled resync:
// while a server is excluded, the cluster records the namespace
// mutations, exact size sets, layout changes, and data-stripe writes
// the server misses in a per-slot journal; Reinstate replays the
// journal — idempotently, on the grow-only/exact OpSetSize and fan-out
// semantics the protocol already has — instead of refusing, and spills
// to a full-slice resync (memfs slice export/import plus stripe
// re-copy) when the journal outgrows its bounds. (2) Live
// join/leave: Join/Retire rebuild the members position→slot map under
// a shared MemberView, migrating stripes to their new replica sets —
// online under load in the unsharded cluster, stop-world in the
// sharded one — and committing the new geometry on every server with
// OpMember so replies stamp the new membership epoch.
//
// Journals and the bulk-resync channel (slice export, ReadRange/
// WriteRange) are host-level bookkeeping: they cost no simulated time
// and allocate nothing on the fault-free path, so a static-membership
// cluster stays bit-identical. Everything a *returning or joining
// server* is sent during replay and online migration, by contrast, is
// real simulated traffic through the ordinary request path, competing
// with live load.
package rfsrv

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/sim"
)

const (
	// DefaultJournalOps is the default bound on journaled mutations
	// per excluded server before the journal spills to full-slice
	// resync.
	DefaultJournalOps = 4096

	// DefaultJournalBytes is the default bound on journaled dirty data
	// bytes per excluded server before the journal spills.
	DefaultJournalBytes = 8 << 20

	// memberFencePoll is how often a fenced operation re-checks the
	// membership view, and how often an operator re-checks that
	// in-flight operations have drained. Coarse enough not to spin,
	// fine enough that fence latency is negligible next to a request
	// round trip.
	memberFencePoll = 5 * time.Microsecond
)

// journalOp is one namespace mutation an excluded server missed: the
// request to replay, plus what the cluster observed the fan produce —
// the minted inode for creates (verified after replay, since an
// idempotent re-execution must converge on the same number) and the
// resulting size epoch for epoch-bumping ops (replay aligns the
// returning server to wantEpoch−1 with OpSyncEpoch first, so the
// replayed bump lands exactly at wantEpoch).
type journalOp struct {
	req       Req
	wantIno   kernel.InodeID
	wantEpoch uint64
}

// dirtyRange is a byte range of one file written while a server that
// holds (part of) it was excluded.
type dirtyRange struct {
	off int64
	n   int
}

// resyncJournal accumulates what one excluded server missed. ops
// replay in order (namespace mutations are order-sensitive); dirty
// data is a state copy — re-read from live replicas and re-written —
// so it needs no ordering, only coverage, and coalesces adjacent
// writes. Once spilled the journal records nothing further; Reinstate
// then rebuilds the server's whole slice instead.
type resyncJournal struct {
	ops     []journalOp
	dirty   map[kernel.InodeID][]dirtyRange
	order   []kernel.InodeID
	bytes   int64
	spilled bool
}

// SetJournalLimits bounds the per-excluded-server resync journal: at
// most ops mutations and bytes dirty data bytes (0 keeps the current
// value; the defaults are DefaultJournalOps/DefaultJournalBytes).
// Past either bound the journal spills: recording stops and the next
// Reinstate performs a full-slice resync through the peers wired with
// SetResyncPeers.
func (cl *Cluster) SetJournalLimits(ops int, bytes int64) {
	if ops > 0 {
		cl.journalOpCap = ops
	}
	if bytes > 0 {
		cl.journalByteCap = bytes
	}
}

// SetResyncPeers hands the cluster direct handles to its servers, in
// session-slot order, modeling the out-of-band bulk channel a real
// deployment would use for full-slice resync and membership-change
// store rebuilds. Without peers, a spilled journal makes Reinstate
// refuse (legacy behavior), and Join/Retire are unavailable.
func (cl *Cluster) SetResyncPeers(servers []*Server) error {
	if len(servers) != len(cl.sessions) {
		return fmt.Errorf("rfsrv: %d resync peers for %d sessions", len(servers), len(cl.sessions))
	}
	cl.peers = servers
	return nil
}

// JournalSpilled reports whether server slot i's resync journal
// overflowed its bounds, so the next Reinstate will need the
// full-slice resync path (and will refuse without resync peers).
func (cl *Cluster) JournalSpilled(i int) bool {
	return cl.journals != nil && cl.journals[i] != nil && cl.journals[i].spilled
}

// JournalOps returns how many mutations server slot i's resync
// journal currently holds (0 when the server is up or nothing was
// missed).
func (cl *Cluster) JournalOps(i int) int {
	if cl.journals == nil || cl.journals[i] == nil {
		return 0
	}
	return len(cl.journals[i].ops)
}

// JournalBytes returns how many dirty data bytes server slot i's
// resync journal currently holds (0 when the server is up, nothing
// was missed, or the journal spilled).
func (cl *Cluster) JournalBytes(i int) int64 {
	if cl.journals == nil || cl.journals[i] == nil {
		return 0
	}
	return cl.journals[i].bytes
}

func (cl *Cluster) journalOpLimit() int {
	if cl.journalOpCap > 0 {
		return cl.journalOpCap
	}
	return DefaultJournalOps
}

func (cl *Cluster) journalByteLimit() int64 {
	if cl.journalByteCap > 0 {
		return cl.journalByteCap
	}
	return DefaultJournalBytes
}

func (cl *Cluster) journalFor(i int) *resyncJournal {
	if cl.journals == nil {
		cl.journals = make([]*resyncJournal, len(cl.sessions))
	}
	if cl.journals[i] == nil {
		cl.journals[i] = &resyncJournal{}
	}
	return cl.journals[i]
}

func (cl *Cluster) resetJournal(i int) {
	if cl.journals != nil {
		cl.journals[i] = nil
	}
}

func (cl *Cluster) spillJournal(j *resyncJournal) {
	j.spilled = true
	j.ops, j.dirty, j.order, j.bytes = nil, nil, nil, 0
	cl.ResyncSpills.Add(0)
}

// journalMut records one missed mutation in excluded slot i's journal.
func (cl *Cluster) journalMut(i int, req *Req, wantIno kernel.InodeID, wantEpoch uint64) {
	j := cl.journalFor(i)
	if j.spilled {
		return
	}
	if len(j.ops) >= cl.journalOpLimit() {
		cl.spillJournal(j)
		return
	}
	j.ops = append(j.ops, journalOp{req: *req, wantIno: wantIno, wantEpoch: wantEpoch})
}

// journalMutationAll records a fanned mutation in every excluded
// member's journal (the unsharded hook: mutations fan to all members).
func (cl *Cluster) journalMutationAll(req *Req, wantIno kernel.InodeID, wantEpoch uint64) {
	for _, i := range cl.members {
		if cl.down[i] {
			cl.journalMut(i, req, wantIno, wantEpoch)
		}
	}
}

// journalGroup records a group-fanned mutation in the journals of the
// excluded members of owner position's replica group (the sharded
// hook). The request must be the idempotent per-server verb the fan
// actually delivered (OpLink, OpUnlink, OpScrub, ...), not the
// client-facing operation.
func (cl *Cluster) journalGroup(owner int, req *Req, wantIno kernel.InodeID, wantEpoch uint64) {
	n := len(cl.members)
	for j := 0; j < cl.replicas; j++ {
		if i := cl.members[(owner+j)%n]; cl.down[i] {
			cl.journalMut(i, req, wantIno, wantEpoch)
		}
	}
}

// journalDirty records that [off, off+n) of ino was written while
// slot i was excluded.
func (cl *Cluster) journalDirty(i int, ino kernel.InodeID, off int64, n int) {
	if n <= 0 {
		return
	}
	j := cl.journalFor(i)
	if j.spilled {
		return
	}
	if j.bytes+int64(n) > cl.journalByteLimit() {
		cl.spillJournal(j)
		return
	}
	if j.dirty == nil {
		j.dirty = make(map[kernel.InodeID][]dirtyRange)
	}
	rs := j.dirty[ino]
	if len(rs) == 0 {
		j.order = append(j.order, ino)
	}
	if k := len(rs) - 1; k >= 0 && rs[k].off+int64(rs[k].n) == off {
		rs[k].n += n
	} else {
		rs = append(rs, dirtyRange{off: off, n: n})
	}
	j.dirty[ino] = rs
	j.bytes += int64(n)
}

// journalRunDirty records a data write's byte ranges against every
// excluded replica of its runs. Called once per write after the fan,
// with the same run decomposition the write used, so the dirty map
// covers exactly the stripes each excluded server would have held.
func (cl *Cluster) journalRunDirty(ino kernel.InodeID, runs []run) {
	n := len(cl.members)
	for _, r := range runs {
		if r.n <= 0 {
			continue
		}
		for j := 0; j < cl.replicas; j++ {
			if i := cl.members[(r.owner+j)%n]; cl.down[i] {
				cl.journalDirty(i, ino, r.off, r.n)
			}
		}
	}
}

// anyDown reports whether any member is currently excluded — the
// cheap guard in front of every journal hook, so the fault-free path
// costs one slice scan and no allocation.
func (cl *Cluster) anyDown() bool {
	for _, i := range cl.members {
		if cl.down[i] {
			return true
		}
	}
	return false
}

// Reinstate re-admits server slot i after its transport heals. What
// ran during the exclusion decides the path: nothing → plain
// re-admission; a bounded amount → the resync journal is replayed
// against the returning server (namespace mutations in order with
// size epochs aligned via OpSyncEpoch, then missed data stripes
// re-read from live replicas and re-written — all real simulated
// traffic); an unbounded amount (spilled journal) → full-slice resync
// through the peers wired with SetResyncPeers, counted in
// ReinstateRefusals. A replay that fails (transport fault mid-replay,
// or a divergence the idempotent verbs cannot reconcile) leaves the
// server excluded with the journal intact, so the caller can heal the
// fault and call Reinstate again; replay is idempotent, so the retry
// re-runs the whole journal safely. On success the size-cache entries
// established during the exclusion are dropped, exactly as before.
func (cl *Cluster) Reinstate(p *sim.Proc, i int) error {
	if i < 0 || i >= len(cl.sessions) {
		return fmt.Errorf("rfsrv: reinstate server %d: no such server", i)
	}
	if !cl.down[i] {
		return nil
	}
	var j *resyncJournal
	if cl.journals != nil {
		j = cl.journals[i]
	}
	switch {
	case j != nil && j.spilled:
		cl.ReinstateRefusals.Add(0)
		if cl.peers == nil {
			return fmt.Errorf("rfsrv: reinstate server %d: resync journal spilled its bounds and no resync peers are wired; resync its backing store out of band first", i)
		}
		if err := cl.fullResync(p, i); err != nil {
			return fmt.Errorf("rfsrv: reinstate server %d: full-slice resync: %w", i, err)
		}
	case j != nil:
		if err := cl.replayJournal(p, i, j); err != nil {
			return fmt.Errorf("rfsrv: reinstate server %d: %w", i, err)
		}
	default:
		if cl.downNs[i] != cl.nsEpochs[i] {
			// Mutations ran but nothing was journaled — only possible
			// if a hook was bypassed. Refuse rather than readmit a
			// diverged server.
			cl.ReinstateRefusals.Add(0)
			return fmt.Errorf("rfsrv: reinstate server %d: %d namespace/size mutation(s) ran against its slice during its exclusion but were not journaled; resync its backing store out of band first", i, cl.nsEpochs[i]-cl.downNs[i])
		}
	}
	cl.Reinstates.Add(0)
	cl.down[i] = false
	cl.downNs[i] = cl.nsEpochs[i]
	cl.resetJournal(i)
	for ino, e := range cl.sizes {
		if e.downAt&(1<<i) != 0 {
			delete(cl.sizes, ino)
		}
	}
	return nil
}

func (cl *Cluster) replayJournal(p *sim.Proc, i int, j *resyncJournal) error {
	if err := cl.replayOps(p, i, j); err != nil {
		return err
	}
	for _, ino := range j.order {
		for _, r := range j.dirty[ino] {
			if err := cl.replayRange(p, i, ino, r); err != nil {
				return fmt.Errorf("replay data %d@[%d,%d): %w", ino, r.off, r.off+int64(r.n), err)
			}
		}
	}
	return nil
}

// replayOps replays the journaled metadata mutations in order. The
// fast path packs the whole journal — OpSyncEpoch epoch-rewind
// preludes included — into combined MetaBatch flights, so a long
// exclusion replays in a handful of wire rounds instead of one
// serial round trip per op (the server applies a combined flight on
// one worker, strictly in order, so journal order is preserved).
// Statuses are interpreted with the serial path's tolerance rules; a
// status that needs a verification lookup (the server already held a
// prefix of the journal) abandons the batch and re-runs the whole
// journal serially — replay is idempotent, so the re-run is safe and
// the lookups interleave exactly where they are needed.
func (cl *Cluster) replayOps(p *sim.Proc, i int, j *resyncJournal) error {
	if len(j.ops) == 0 {
		return nil
	}
	fallback, err := cl.replayOpsBatched(p, i, j)
	if err != nil {
		return err
	}
	if !fallback {
		for range j.ops {
			cl.ResyncOps.Add(0)
		}
		return nil
	}
	cl.ResyncFallbacks.Add(0)
	for k := range j.ops {
		op := &j.ops[k]
		if err := cl.replayOp(p, i, op); err != nil {
			return fmt.Errorf("replay op %d/%d (%s): %w", k+1, len(j.ops), opNames[op.req.Op], err)
		}
		cl.ResyncOps.Add(0)
	}
	return nil
}

// replayOpsBatched issues the whole journal as combined metadata
// batches against server i and interprets the per-op statuses. It
// returns fallback=true (and no error) when some status requires the
// serial path's verification lookups; transport failures and
// non-tolerated statuses are errors exactly as on the serial path —
// the journal stays intact for a Reinstate retry.
func (cl *Cluster) replayOpsBatched(p *sim.Proc, i int, j *resyncJournal) (fallback bool, err error) {
	reqs := make([]*Req, 0, len(j.ops)+len(j.ops)/2)
	idx := make([]int, 0, cap(reqs)) // journal index +1 per request; 0 marks an epoch prelude
	for k := range j.ops {
		op := &j.ops[k]
		req := op.req // copy: the flight stamps Seq/EP into each request
		switch req.Op {
		case OpSetSize, OpSetLayout, OpTruncate:
			// Same epoch-rewind prelude as replayOp, carried in the
			// batch right before its epoch-bumping op.
			if op.wantEpoch > 0 {
				reqs = append(reqs, &Req{Op: OpSyncEpoch, Ino: req.Ino, Off: int64(op.wantEpoch - 1)})
				idx = append(idx, 0)
			}
			if req.Op == OpSetSize {
				exact, _ := UnpackSetSize(req.Len)
				var obs uint64
				if op.wantEpoch > 0 {
					obs = op.wantEpoch - 1
				}
				req.Len = PackSetSize(exact, obs)
			}
		}
		r := req
		reqs = append(reqs, &r)
		idx = append(idx, k+1)
	}
	// Like replayRT, transport-level failures (fault, timeout, decode)
	// abort the replay; application statuses ride in the responses for
	// the verdicts below to interpret.
	resps, err := cl.sessions[i].MetaBatch(p, reqs)
	if err != nil {
		if fabric.IsFault(err) || len(resps) != len(reqs) {
			return false, err
		}
		for _, resp := range resps {
			if resp == nil {
				return false, err
			}
		}
	}
	for n, resp := range resps {
		k := idx[n]
		if k == 0 {
			if resp.Status != StOK {
				return false, fmt.Errorf("replay epoch sync: %w", ErrOf(resp.Status))
			}
			continue
		}
		op := &j.ops[k-1]
		verify, err := batchReplayVerdict(op, resp)
		if err != nil {
			return false, fmt.Errorf("replay op %d/%d (%s): %w", k, len(j.ops), opNames[op.req.Op], err)
		}
		if verify {
			return true, nil
		}
	}
	return false, nil
}

// batchReplayVerdict interprets one batched replay response with the
// serial path's tolerance rules (see replayOp). verify=true means the
// status signals an already-applied prefix and needs a verification
// lookup — the caller falls back to the serial path, which performs
// it in place.
func batchReplayVerdict(op *journalOp, resp *Resp) (verify bool, err error) {
	req := &op.req
	//analyze:dispatch ops -OpLookup -OpGetattr -OpReaddir -OpRead -OpWrite -OpRenamePrepare -OpSyncEpoch
	switch req.Op {
	case OpMember:
		return false, ErrOf(resp.Status)

	case OpSetSize, OpSetLayout, OpTruncate:
		if resp.Status == StNotFound {
			// The inode was unlinked later in the journal.
			return false, nil
		}
		return false, ErrOf(resp.Status)

	case OpCreate, OpMkdir:
		switch resp.Status {
		case StOK:
			if op.wantIno != 0 && resp.Attr.Ino != op.wantIno {
				return false, fmt.Errorf("replayed create of %q minted inode %d, cluster holds %d: server diverged", req.Name, resp.Attr.Ino, op.wantIno)
			}
			return false, nil
		case StExists:
			return true, nil
		}
		return false, ErrOf(resp.Status)

	case OpLink:
		switch resp.Status {
		case StOK:
			return false, nil
		case StExists:
			return true, nil
		}
		return false, ErrOf(resp.Status)

	case OpUnlink, OpRmdir, OpScrub, OpMaterialize, OpRenameFinalize, OpRenameAbort:
		switch resp.Status {
		case StOK, StNotFound:
			return false, nil
		}
		return false, ErrOf(resp.Status)

	case OpRenameLocal:
		switch resp.Status {
		case StOK:
			return false, nil
		case StNotFound:
			return true, nil
		}
		return false, ErrOf(resp.Status)
	}
	return false, fmt.Errorf("unreplayable op %s", opNames[req.Op])
}

// replayRT is one replay round trip to server i: transport-level
// failures (fault, timeout, decode) abort the replay; application
// statuses come back for the caller to interpret — replay lives on
// tolerating the statuses an already-applied prefix produces.
func (cl *Cluster) replayRT(p *sim.Proc, i int, req *Req) (*Resp, error) {
	resp, err := cl.syncMeta(p, i, req)
	if err != nil && (resp == nil || fabric.IsFault(err)) {
		return nil, err
	}
	return resp, nil
}

func (cl *Cluster) replayOp(p *sim.Proc, i int, op *journalOp) error {
	req := op.req
	// Reads and lookups are never journaled; writes resync through
	// dirty ranges; RenamePrepare is always resolved to Finalize or
	// Abort before it is journaled; SyncEpoch is what replay itself
	// emits.
	//analyze:dispatch ops -OpLookup -OpGetattr -OpReaddir -OpRead -OpWrite -OpRenamePrepare -OpSyncEpoch
	switch req.Op {
	case OpMember:
		resp, err := cl.replayRT(p, i, &req)
		if err != nil {
			return err
		}
		return ErrOf(resp.Status)

	case OpSetSize, OpSetLayout, OpTruncate:
		// Epoch-bumping ops: rewind the returning server's size epoch
		// to wantEpoch−1 so the replayed bump lands exactly at
		// wantEpoch — idempotent even when the server already applied
		// the op (the rewind makes re-application converge, not
		// double-bump).
		if op.wantEpoch > 0 {
			sync := Req{Op: OpSyncEpoch, Ino: req.Ino, Off: int64(op.wantEpoch - 1)}
			resp, err := cl.replayRT(p, i, &sync)
			if err != nil {
				return err
			}
			if resp.Status != StOK {
				return ErrOf(resp.Status)
			}
		}
		if req.Op == OpSetSize {
			exact, _ := UnpackSetSize(req.Len)
			var obs uint64
			if op.wantEpoch > 0 {
				obs = op.wantEpoch - 1
			}
			req.Len = PackSetSize(exact, obs)
		}
		resp, err := cl.replayRT(p, i, &req)
		if err != nil {
			return err
		}
		if resp.Status == StNotFound {
			// The inode was unlinked later in the journal; the size
			// set is moot.
			return nil
		}
		return ErrOf(resp.Status)

	case OpCreate, OpMkdir:
		resp, err := cl.replayRT(p, i, &req)
		if err != nil {
			return err
		}
		switch resp.Status {
		case StOK:
			if op.wantIno != 0 && resp.Attr.Ino != op.wantIno {
				return fmt.Errorf("replayed create of %q minted inode %d, cluster holds %d: server diverged", req.Name, resp.Attr.Ino, op.wantIno)
			}
			return nil
		case StExists:
			// Already applied (the server held a prefix of the
			// journal): verify the entry resolves to the same inode.
			return cl.verifyEntry(p, i, req.Ino, req.Name, op.wantIno)
		}
		return ErrOf(resp.Status)

	case OpLink:
		resp, err := cl.replayRT(p, i, &req)
		if err != nil {
			return err
		}
		switch resp.Status {
		case StOK:
			return nil
		case StExists:
			return cl.verifyEntry(p, i, req.Ino, req.Name, kernel.InodeID(req.Off))
		}
		return ErrOf(resp.Status)

	case OpUnlink, OpRmdir, OpScrub, OpMaterialize, OpRenameFinalize, OpRenameAbort:
		// Idempotent per-server verbs: absence means already applied.
		resp, err := cl.replayRT(p, i, &req)
		if err != nil {
			return err
		}
		switch resp.Status {
		case StOK, StNotFound:
			return nil
		}
		return ErrOf(resp.Status)

	case OpRenameLocal:
		resp, err := cl.replayRT(p, i, &req)
		if err != nil {
			return err
		}
		switch resp.Status {
		case StOK:
			return nil
		case StNotFound:
			// Source gone: already applied — verify the destination.
			if _, dst, ok := SplitRenameNames(req.Name); ok {
				return cl.verifyEntry(p, i, kernel.InodeID(req.Off), dst, op.wantIno)
			}
		}
		return ErrOf(resp.Status)
	}
	return fmt.Errorf("unreplayable op %s", opNames[req.Op])
}

// verifyEntry checks that (dir, name) resolves to want on server i —
// the convergence check after a replayed mutation reports it was
// already applied.
func (cl *Cluster) verifyEntry(p *sim.Proc, i int, dir kernel.InodeID, name string, want kernel.InodeID) error {
	if want == 0 {
		return nil
	}
	look := Req{Op: OpLookup, Ino: dir, Name: name}
	resp, err := cl.replayRT(p, i, &look)
	if err != nil {
		return err
	}
	if resp.Status != StOK {
		return fmt.Errorf("verify %q after replay: %w", name, ErrOf(resp.Status))
	}
	if resp.Attr.Ino != want {
		return fmt.Errorf("verify %q after replay: resolves to inode %d, cluster holds %d: server diverged", name, resp.Attr.Ino, want)
	}
	return nil
}

// replayRange re-copies one dirty byte range to the returning server:
// read through the cluster's live placement (real striped reads, with
// failover), written straight to server i at the same global offsets.
// A short or empty read means the file shrank or vanished since the
// write — the journaled ops already gave i the authoritative size, so
// the tail is simply not copied.
func (cl *Cluster) replayRange(p *sim.Proc, i int, ino kernel.InodeID, r dirtyRange) error {
	off, end := r.off, r.off+int64(r.n)
	for off < end {
		n := int(end - off)
		if n > MaxWriteChunk {
			n = MaxWriteChunk
		}
		vec, err := cl.stagingVec(n)
		if err != nil {
			return err
		}
		rresp, err := cl.Read(p, ino, off, vec)
		if err != nil {
			if errors.Is(err, kernel.ErrNotFound) {
				return nil // unlinked since the write
			}
			return err
		}
		got := int(rresp.N)
		if got <= 0 {
			return nil // past the file's current end
		}
		wresp, err := cl.sessions[i].Client().Write(p, ino, off, vec.Slice(0, got))
		if err != nil {
			return err
		}
		if int(wresp.N) != got {
			return fmt.Errorf("short resync write: %d of %d bytes", wresp.N, got)
		}
		cl.ResyncBytes.Add(got)
		if got < n {
			return nil
		}
		off += int64(got)
	}
	return nil
}

// --- Full-slice resync (journal spill fallback) ---

// storeOf returns server slot i's backing store through the resync
// peers, asserting the memfs slice surface the bulk channel needs.
func (cl *Cluster) storeOf(slot int) (*memfs.FS, error) {
	if cl.peers == nil || slot >= len(cl.peers) || cl.peers[slot] == nil {
		return nil, fmt.Errorf("no resync peer for server %d (SetResyncPeers)", slot)
	}
	st, ok := cl.peers[slot].fs.(*memfs.FS)
	if !ok {
		return nil, fmt.Errorf("server %d's backing store is not a memfs.FS; slice resync unsupported", slot)
	}
	return st, nil
}

// residueAt is the (ino−2) mod n routing residue of the sharded
// namespace, with the root (and the invalid inode 0) pinned to 0.
func residueAt(ino kernel.InodeID, n int) int {
	if ino <= 1 {
		return 0
	}
	return int((uint64(ino) - 2) % uint64(n))
}

// posDist is the forward distance from owner position res to position
// pos in a ring of n — < replicas means pos is in res's replica group.
func posDist(pos, res, n int) int {
	return (pos - res + n) % n
}

func (cl *Cluster) memberPos(slot int) int {
	for pos, s := range cl.members {
		if s == slot {
			return pos
		}
	}
	return -1
}

// collectAuth builds the authoritative metadata snapshot of the
// cluster from the live members' stores (excluding slot skip): for
// each inode the owning copy (sharded: lowest-distance alive replica
// of its owner group; unsharded: the first alive member, whose
// namespace is replicated-identical), plus each regular file's true
// size — the max local size across every live member, since size
// publishes fan everywhere but an individual store may lag — and the
// max sequential-mint cursor.
func (cl *Cluster) collectAuth(skip int) (map[kernel.InodeID]memfs.SliceNode, map[kernel.InodeID]int64, kernel.InodeID, error) {
	n := len(cl.members)
	auth := make(map[kernel.InodeID]memfs.SliceNode)
	rank := make(map[kernel.InodeID]int)
	var next kernel.InodeID
	namespaceDone := false
	for pos, slot := range cl.members {
		if slot == skip || cl.down[slot] {
			continue
		}
		st, err := cl.storeOf(slot)
		if err != nil {
			return nil, nil, 0, err
		}
		sl := st.ExportSlice(nil)
		if sl.Next > next {
			next = sl.Next
		}
		if !cl.sharded {
			if namespaceDone {
				continue
			}
			namespaceDone = true
			for _, nd := range sl.Nodes {
				auth[nd.Attr.Ino] = nd
			}
			continue
		}
		for _, nd := range sl.Nodes {
			d := posDist(pos, residueAt(nd.Attr.Ino, n), n)
			if d >= cl.replicas {
				// A non-owner stub (lazy data materialization) is not
				// authoritative: trusting one could resurrect an inode
				// its owner group already unlinked.
				continue
			}
			if prev, ok := rank[nd.Attr.Ino]; !ok || d < prev {
				auth[nd.Attr.Ino] = nd
				rank[nd.Attr.Ino] = d
			}
		}
	}
	if len(auth) == 0 {
		return nil, nil, 0, errors.New("no live member to resync from")
	}
	sizes := make(map[kernel.InodeID]int64)
	for ino, nd := range auth {
		if nd.Attr.Kind != kernel.RegularFile {
			continue
		}
		var max int64
		for _, slot := range cl.members {
			if slot == skip || cl.down[slot] {
				continue
			}
			st, err := cl.storeOf(slot)
			if err != nil {
				return nil, nil, 0, err
			}
			if s := st.LocalSize(ino); s > max {
				max = s
			}
		}
		sizes[ino] = max
	}
	return auth, sizes, next, nil
}

// fullResync rebuilds excluded server slot i's whole slice from the
// live members through the bulk channel: authoritative metadata
// imported exactly (sizes trimmed, unknown inodes purged), size
// epochs and owned rename marks copied from a live replica, and the
// data stripes i holds under the current placement re-copied from
// their live replicas.
func (cl *Cluster) fullResync(p *sim.Proc, i int) error {
	_ = p // the bulk channel costs no simulated time
	if cl.policyOn {
		return errors.New("full-slice resync under an adaptive layout policy is not supported")
	}
	pos := cl.memberPos(i)
	if pos < 0 {
		return fmt.Errorf("server %d is not a member", i)
	}
	dst, err := cl.storeOf(i)
	if err != nil {
		return err
	}
	auth, sizes, next, err := cl.collectAuth(i)
	if err != nil {
		return err
	}
	n := len(cl.members)
	sl := &memfs.Slice{Next: next}
	for ino, nd := range auth {
		if nd.Attr.Kind == kernel.RegularFile {
			nd.Attr.Size = sizes[ino]
		}
		owned := !cl.sharded || posDist(pos, residueAt(ino, n), n) < cl.replicas
		switch {
		case owned:
			sl.Nodes = append(sl.Nodes, nd)
		case nd.Attr.Kind == kernel.RegularFile:
			// Foreign file: keep an attr-only stub so data stripes and
			// size publishes have somewhere to land, like the lazy
			// materialization of the sharded write path.
			sl.Nodes = append(sl.Nodes, memfs.SliceNode{Attr: nd.Attr})
		}
	}
	// The slice carries no mint-sequence cursor: per-server partitions
	// are disjoint, minting for a residue happens on its group primary,
	// and an excluded server never mints — so the returning server's
	// own retained cursor is already correct (the import's max rule
	// keeps it).
	dst.ImportSlice(sl, nil, true)

	// Server-side soft state: size epochs are replicated-identical
	// across members (exact sets always fan), so any live member's map
	// is authoritative; rename marks follow directory ownership.
	var src *Server
	for _, slot := range cl.members {
		if slot != i && !cl.down[slot] {
			src = cl.peers[slot]
			break
		}
	}
	dstSrv := cl.peers[i]
	dstSrv.epochs = make(map[kernel.InodeID]uint64, len(src.epochs))
	for ino, e := range src.epochs {
		dstSrv.epochs[ino] = e
	}
	dstSrv.layouts = make(map[kernel.InodeID]LayoutClass, len(src.layouts))
	for ino, lc := range src.layouts {
		dstSrv.layouts[ino] = lc
	}
	dstSrv.member = src.member
	if cl.sharded {
		dstSrv.renames = make(map[renameKey]renameMark)
		for _, slot := range cl.members {
			if slot == i || cl.down[slot] {
				continue
			}
			for key, mark := range cl.peers[slot].renames {
				if dstSrv.ownsDir(key.dir) {
					dstSrv.renames[key] = mark
				}
			}
		}
	}

	// Data: re-copy the stripes i holds under the current placement
	// from their live replicas.
	for ino, sz := range sizes {
		for off := int64(0); off < sz; off += cl.stripe {
			end := off + cl.stripe
			if end > sz {
				end = sz
			}
			owner := int((off / cl.stripe) % int64(n))
			if posDist(pos, owner, n) >= cl.replicas {
				continue
			}
			var data []byte
			for j := 0; j < cl.replicas; j++ {
				slot := cl.members[(owner+j)%n]
				if slot == i || cl.down[slot] {
					continue
				}
				st, err := cl.storeOf(slot)
				if err != nil {
					return err
				}
				if d := st.ReadRange(ino, off, int(end-off)); len(d) > len(data) {
					data = d
				}
			}
			if len(data) == 0 {
				continue
			}
			if err := dst.WriteRange(ino, off, data); err != nil {
				return err
			}
			cl.ResyncBytes.Add(len(data))
		}
	}
	return nil
}

// --- Membership view and operation gates ---

// MemberView is the shared, epoch-stamped membership view of an
// elastic cluster (DESIGN.md §13). One cluster publishes it
// (ShareView) and every other client of the same servers subscribes
// (AttachView); a membership change then coordinates all of them: the
// operator fences new operations, waits for in-flight ones to drain,
// migrates data, commits the new geometry on the servers (OpMember),
// and bumps the epoch — subscribers adopt the new members slice at
// their next operation. Coordination relies on the simulation's
// cooperative scheduling: checks and counter updates never interleave
// within one simulated instant, so the fences need no locks.
type MemberView struct {
	epoch   uint64
	members []int

	// operator is the cluster currently driving a membership change
	// (nil otherwise); its own traffic bypasses the fences.
	operator  *Cluster
	fenceMut  bool
	fenceAll  bool
	migrating bool

	activeData int
	activeMut  int
	pending    int

	// dirty logs data writes issued while a migration is copying
	// stripes, so the operator can re-copy ranges the bulk pass
	// missed.
	dirty []viewWrite
}

type viewWrite struct {
	ino kernel.InodeID
	off int64
	n   int
}

// Epoch returns the view's current membership epoch (0 until the
// first successful change).
func (v *MemberView) Epoch() uint64 { return v.epoch }

// Members returns a copy of the view's current position→slot map.
func (v *MemberView) Members() []int {
	return append([]int(nil), v.members...)
}

// dedupeWrites collapses repeated identical ranges in a dirty batch,
// keeping first-appearance order. Safe because the drain copies live
// content: one copy per distinct range is equivalent to one per write.
func dedupeWrites(batch []viewWrite) []viewWrite {
	seen := make(map[viewWrite]struct{}, len(batch))
	out := batch[:0]
	for _, w := range batch {
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

func (v *MemberView) logWrite(ino kernel.InodeID, off int64, n int) {
	if n <= 0 {
		return
	}
	if k := len(v.dirty) - 1; k >= 0 {
		if w := &v.dirty[k]; w.ino == ino && w.off+int64(w.n) == off {
			w.n += n
			return
		}
	}
	v.dirty = append(v.dirty, viewWrite{ino: ino, off: off, n: n})
}

// ShareView publishes this cluster's membership as a shared view for
// other clients of the same servers to attach to, and subscribes this
// cluster to it. Membership changes (Join/Retire/Bounce) require a
// view even with a single client.
func (cl *Cluster) ShareView() *MemberView {
	v := &MemberView{epoch: cl.viewEpoch, members: append([]int(nil), cl.members...)}
	cl.view = v
	return v
}

// AttachView subscribes this cluster to a shared membership view: it
// adopts the view's members immediately and follows every epoch bump,
// and its operations participate in membership-change fencing.
func (cl *Cluster) AttachView(v *MemberView) {
	cl.view = v
	cl.members = append(cl.members[:0], v.members...)
	cl.viewEpoch = v.epoch
}

// SetMembers restricts the cluster's initial active membership to the
// first active session slots; the rest stand by for later Join. Call
// before any traffic and before ShareView. The sharded namespace maps
// residues over all construction-time servers, so standby slots are
// only supported unsharded.
func (cl *Cluster) SetMembers(active int) error {
	if cl.sharded {
		return errors.New("rfsrv: SetMembers: sharded clusters enumerate all sessions as members")
	}
	if active < cl.replicas || active > len(cl.sessions) {
		return fmt.Errorf("rfsrv: SetMembers: %d outside %d..%d", active, cl.replicas, len(cl.sessions))
	}
	cl.members = cl.members[:active]
	return nil
}

// Members returns a copy of the cluster's current position→slot map.
func (cl *Cluster) Members() []int {
	return append([]int(nil), cl.members...)
}

func (cl *Cluster) adoptView() {
	v := cl.view
	if v == nil || v.epoch == cl.viewEpoch {
		return
	}
	cl.members = append(cl.members[:0], v.members...)
	cl.viewEpoch = v.epoch
}

// enterOp is the membership gate at every cluster entry point. With
// no view it only enforces staleness (a viewless cluster that saw a
// newer membership epoch on a reply refuses further operations);
// with one it blocks while the relevant fence is up, registers the
// operation with the view, and adopts any new epoch. Nested entries
// (Rename inside Meta) neither fence nor count — the outermost one
// already did. Returns without exitOp owed on error.
func (cl *Cluster) enterOp(p *sim.Proc, mut bool) error {
	cl.gateDepth++
	if cl.gateDepth > 1 {
		return nil
	}
	v := cl.view
	if v == nil {
		if cl.staleMember {
			cl.gateDepth--
			return ErrStaleMembership
		}
		return nil
	}
	if v.operator != cl {
		for v.fenceAll || (mut && v.fenceMut) {
			p.Sleep(memberFencePoll)
		}
		if mut {
			v.activeMut++
		} else {
			v.activeData++
		}
		cl.gateMut = mut
		cl.gateCounted = true
	}
	cl.adoptView()
	return nil
}

func (cl *Cluster) exitOp() {
	cl.gateDepth--
	if cl.gateDepth > 0 {
		return
	}
	if cl.gateCounted {
		cl.gateCounted = false
		if cl.gateMut {
			cl.view.activeMut--
		} else {
			cl.view.activeData--
		}
	}
}

// notePendingStart moves an async operation's gate registration from
// the active counters to the view's pending count: the Start call
// returns, but the operation stays in flight until its Wait, and a
// membership change must drain it before cutting over.
func (cl *Cluster) notePendingStart(cp *clusterPending) {
	if v := cl.view; v != nil && v.operator != cl {
		v.pending++
		cp.gated = true
	}
}

func (cl *Cluster) notePendingDone(cp *clusterPending) {
	if cp.gated {
		cp.gated = false
		cl.view.pending--
	}
}

// --- Join / Retire / Bounce ---

// beginChange validates one or more prospective member lists and
// claims the view for this cluster as operator. The returned func
// releases the operator claim and every fence.
func (cl *Cluster) beginChange(lists ...[]int) (func(), error) {
	v := cl.view
	if v == nil {
		return nil, errors.New("rfsrv: membership change: no shared view (ShareView first)")
	}
	if cl.peers == nil {
		return nil, errors.New("rfsrv: membership change: no resync peers (SetResyncPeers first)")
	}
	if cl.policyOn {
		return nil, errors.New("rfsrv: membership change under an adaptive layout policy is not supported")
	}
	for _, slot := range cl.members {
		if cl.down[slot] {
			return nil, fmt.Errorf("rfsrv: membership change: member %d is excluded; reinstate it first", slot)
		}
	}
	for _, next := range lists {
		if len(next) < cl.replicas {
			return nil, fmt.Errorf("rfsrv: membership change: %d members < replication factor %d", len(next), cl.replicas)
		}
		seen := make(map[int]bool, len(next))
		for _, slot := range next {
			if slot < 0 || slot >= len(cl.sessions) {
				return nil, fmt.Errorf("rfsrv: membership change: no session slot %d", slot)
			}
			if seen[slot] {
				return nil, fmt.Errorf("rfsrv: membership change: slot %d listed twice", slot)
			}
			seen[slot] = true
			if cl.down[slot] {
				return nil, fmt.Errorf("rfsrv: membership change: slot %d is excluded", slot)
			}
		}
	}
	if v.operator != nil && v.operator != cl {
		return nil, errors.New("rfsrv: membership change already in progress")
	}
	v.operator = cl
	return func() {
		v.operator = nil
		v.fenceMut, v.fenceAll, v.migrating = false, false, false
		v.dirty = nil
	}, nil
}

// Join admits session slot at the end of the placement order —
// Join(p, slot) is JoinAt(p, slot, len(members)).
func (cl *Cluster) Join(p *sim.Proc, slot int) error {
	return cl.JoinAt(p, slot, len(cl.members))
}

// JoinAt admits session slot into the membership at placement
// position pos, migrating data to its new replica sets before the
// epoch cutover: online under load in the unsharded cluster (reads
// and writes keep flowing through the old placement while stripes
// copy, with a dirty log catching racing writes and a brief full
// fence at cutover), stop-world in the sharded one (every client
// fences while owner groups, directory slices, and stripes rebuild).
// Requires a shared view (ShareView/AttachView) and resync peers.
func (cl *Cluster) JoinAt(p *sim.Proc, slot, pos int) error {
	if cl.memberPos(slot) >= 0 {
		return fmt.Errorf("rfsrv: join: slot %d is already a member", slot)
	}
	if pos < 0 || pos > len(cl.members) {
		return fmt.Errorf("rfsrv: join: position %d outside 0..%d", pos, len(cl.members))
	}
	next := make([]int, 0, len(cl.members)+1)
	next = append(next, cl.members[:pos]...)
	next = append(next, slot)
	next = append(next, cl.members[pos:]...)
	return cl.changeMembers(p, next)
}

// Retire removes session slot from the membership, re-placing the
// stripes and directory slices it held onto the remaining members
// before the epoch cutover (same online/stop-world split as JoinAt).
// The retiree must be alive: its data is a migration source.
func (cl *Cluster) Retire(p *sim.Proc, slot int) error {
	pos := cl.memberPos(slot)
	if pos < 0 {
		return fmt.Errorf("rfsrv: retire: slot %d is not a member", slot)
	}
	next := make([]int, 0, len(cl.members)-1)
	next = append(next, cl.members[:pos]...)
	next = append(next, cl.members[pos+1:]...)
	return cl.changeMembers(p, next)
}

// Bounce retires and immediately re-admits member slot inside one
// stop-world fence window: the membership epoch advances twice, every
// stripe and directory slice leaves the slot and comes back, and no
// client ever issues an operation against the interim geometry. The
// torture harness uses it as the membership-change event whose final
// placement the oracle can still predict.
func (cl *Cluster) Bounce(p *sim.Proc, slot int) error {
	pos := cl.memberPos(slot)
	if pos < 0 {
		return fmt.Errorf("rfsrv: bounce: slot %d is not a member", slot)
	}
	if !cl.sharded {
		return errors.New("rfsrv: bounce: stop-world path is sharded-only; use Retire then JoinAt")
	}
	without := make([]int, 0, len(cl.members)-1)
	without = append(without, cl.members[:pos]...)
	without = append(without, cl.members[pos+1:]...)
	with := append([]int(nil), cl.members...)
	done, err := cl.beginChange(without, with)
	if err != nil {
		return err
	}
	defer done()
	if err := cl.memberStopWorld(p, without); err != nil {
		return err
	}
	return cl.memberStopWorld(p, with)
}

func (cl *Cluster) changeMembers(p *sim.Proc, next []int) error {
	done, err := cl.beginChange(next)
	if err != nil {
		return err
	}
	defer done()
	if cl.sharded {
		return cl.memberStopWorld(p, next)
	}
	return cl.memberOnline(p, next)
}

// commitMember fans OpMember to every slot of next (in position
// order) and an epoch-only stamp to retirees, so every server's
// replies carry the new membership epoch.
func (cl *Cluster) commitMember(p *sim.Proc, old, next []int, epoch uint64, floor kernel.InodeID, sharded bool) error {
	n := len(next)
	for pos, slot := range next {
		req := Req{Op: OpMember, Ino: floor, Off: int64(epoch), Len: PackMember(pos, n, cl.replicas, sharded)}
		resp, err := cl.syncMeta(p, slot, &req)
		if err != nil {
			return fmt.Errorf("commit membership on server %d: %w", slot, err)
		}
		if resp.Status != StOK {
			return fmt.Errorf("commit membership on server %d: %w", slot, ErrOf(resp.Status))
		}
	}
	for _, slot := range old {
		if posOf(next, slot) >= 0 {
			continue
		}
		req := Req{Op: OpMember, Ino: floor, Off: int64(epoch), Len: PackMember(0, n, cl.replicas, false)}
		resp, err := cl.syncMeta(p, slot, &req)
		if err != nil {
			return fmt.Errorf("stamp retiring server %d: %w", slot, err)
		}
		if resp.Status != StOK {
			return fmt.Errorf("stamp retiring server %d: %w", slot, ErrOf(resp.Status))
		}
	}
	return nil
}

func posOf(list []int, slot int) int {
	for p, s := range list {
		if s == slot {
			return p
		}
	}
	return -1
}

// memberOnline is the unsharded membership change: mutations fence
// for the duration (the namespace and file set freeze), but the data
// path stays live — stripes copy to their new replica sets through
// ordinary striped reads and direct writes while client reads and
// writes keep flowing through the old placement, a dirty log
// re-copies ranges written mid-migration, and only the final cutover
// briefly fences everything.
func (cl *Cluster) memberOnline(p *sim.Proc, next []int) error {
	v := cl.view
	old := append([]int(nil), cl.members...)

	// Phase 1: freeze the namespace.
	v.fenceMut = true
	for v.activeMut > 0 {
		p.Sleep(memberFencePoll)
	}

	// Phase 2: seed joiners with the frozen namespace (bulk channel):
	// exact sizes (trimming any stale local state a re-joining slot
	// kept from an earlier tenure), size epochs, layouts.
	var joiners []int
	for _, slot := range next {
		if posOf(old, slot) < 0 {
			joiners = append(joiners, slot)
		}
	}
	srcStore, err := cl.storeOf(old[0])
	if err != nil {
		return err
	}
	sl := srcStore.ExportSlice(nil)
	var files []kernel.InodeID
	fileSizes := make(map[kernel.InodeID]int64)
	for i := range sl.Nodes {
		nd := &sl.Nodes[i]
		if nd.Attr.Kind != kernel.RegularFile {
			continue
		}
		var max int64
		for _, slot := range old {
			st, err := cl.storeOf(slot)
			if err != nil {
				return err
			}
			if s := st.LocalSize(nd.Attr.Ino); s > max {
				max = s
			}
		}
		nd.Attr.Size = max
		files = append(files, nd.Attr.Ino)
		fileSizes[nd.Attr.Ino] = max
	}
	srcSrv := cl.peers[old[0]]
	for _, j := range joiners {
		dst, err := cl.storeOf(j)
		if err != nil {
			return err
		}
		dst.ImportSlice(sl, nil, true)
		dstSrv := cl.peers[j]
		dstSrv.epochs = make(map[kernel.InodeID]uint64, len(srcSrv.epochs))
		for ino, e := range srcSrv.epochs {
			dstSrv.epochs[ino] = e
		}
		dstSrv.layouts = make(map[kernel.InodeID]LayoutClass, len(srcSrv.layouts))
		for ino, lc := range srcSrv.layouts {
			dstSrv.layouts[ino] = lc
		}
	}

	// Phase 3: migrate stripes to their new replica sets under load.
	v.migrating = true
	for _, ino := range files {
		if err := cl.migrateRange(p, ino, 0, fileSizes[ino], old, next); err != nil {
			return err
		}
	}

	// Phase 4: drain the dirty log while the data path is still live.
	// Each batch is deduplicated first: migrateRange copies the file's
	// CURRENT content, so one copy per distinct range per batch lands
	// the same bytes as one per write — under heavy load the same hot
	// stripe is redirtied thousands of times per pass, and re-copying
	// every entry would multiply migration traffic by that factor.
	for pass := 0; len(v.dirty) > 0 && pass < 16; pass++ {
		batch := dedupeWrites(v.dirty)
		v.dirty = nil
		for _, w := range batch {
			if err := cl.migrateRange(p, w.ino, w.off, int64(w.n), old, next); err != nil {
				return err
			}
		}
	}

	// Phase 5: full fence, quiesce, final dirty delta.
	v.fenceAll = true
	for v.activeData+v.activeMut+v.pending > 0 {
		p.Sleep(memberFencePoll)
	}
	for len(v.dirty) > 0 {
		batch := dedupeWrites(v.dirty)
		v.dirty = nil
		for _, w := range batch {
			if err := cl.migrateRange(p, w.ino, w.off, int64(w.n), old, next); err != nil {
				return err
			}
		}
	}

	// Phase 6: publish authoritative sizes to joiners. Old members saw
	// every size fan during migration; joiners saw none, and a joiner
	// can be an inode's metadata home after cutover, so its local size
	// must be the global one.
	for _, ino := range files {
		var max int64
		for _, slot := range old {
			st, err := cl.storeOf(slot)
			if err != nil {
				return err
			}
			if s := st.LocalSize(ino); s > max {
				max = s
			}
		}
		for _, j := range joiners {
			if err := cl.publishGrow(p, j, ino, max); err != nil {
				return err
			}
		}
	}

	// Phase 7: commit the new geometry on every affected server, flip
	// the view, and adopt it.
	epoch := v.epoch + 1
	if err := cl.commitMember(p, old, next, epoch, 0, false); err != nil {
		return err
	}
	v.members = append(v.members[:0], next...)
	v.epoch = epoch
	cl.adoptView()
	return nil
}

// migrateRange copies [off, off+n) of a file to the new-placement
// replica slots that do not hold it under the current (old-placement)
// authoritative geometry: striped reads through the live cluster,
// direct writes to each target — real simulated traffic competing
// with client load.
func (cl *Cluster) migrateRange(p *sim.Proc, ino kernel.InodeID, off, n int64, old, next []int) error {
	var targets []int
	for cur, end := off, off+n; cur < end; {
		sb := (cur / cl.stripe) * cl.stripe
		se := sb + cl.stripe
		if se > end {
			se = end
		}
		frag := int(se - cur)
		oldPos := int((sb / cl.stripe) % int64(len(old)))
		newPos := int((sb / cl.stripe) % int64(len(next)))
		targets = targets[:0]
		for j := 0; j < cl.replicas; j++ {
			slot := next[(newPos+j)%len(next)]
			if cl.down[slot] {
				continue
			}
			held := false
			for k := 0; k < cl.replicas; k++ {
				if old[(oldPos+k)%len(old)] == slot {
					held = true
					break
				}
			}
			if !held {
				targets = append(targets, slot)
			}
		}
		if len(targets) > 0 {
			vec, err := cl.stagingVec(frag)
			if err != nil {
				return err
			}
			rresp, err := cl.Read(p, ino, cur, vec)
			if err != nil {
				return err
			}
			if got := int(rresp.N); got > 0 {
				for _, slot := range targets {
					wresp, err := cl.sessions[slot].Client().Write(p, ino, cur, vec.Slice(0, got))
					if err != nil {
						return err
					}
					if int(wresp.N) != got {
						return fmt.Errorf("short migration write to server %d: %d of %d bytes", slot, wresp.N, got)
					}
					cl.Migrated.Add(got)
				}
			}
		}
		cur = se
	}
	return nil
}

// publishGrow raises server slot's local size for ino to size through
// the ordinary grow-mode OpSetSize, reading the server's own size
// epoch first (bounded stale retries, like every size publish).
func (cl *Cluster) publishGrow(p *sim.Proc, slot int, ino kernel.InodeID, size int64) error {
	for try := 0; try < 4; try++ {
		get := Req{Op: OpGetattr, Ino: ino}
		resp, err := cl.replayRT(p, slot, &get)
		if err != nil {
			return err
		}
		if resp.Status == StNotFound {
			return nil
		}
		if resp.Status != StOK {
			return ErrOf(resp.Status)
		}
		if resp.Attr.Size >= size {
			return nil
		}
		set := Req{Op: OpSetSize, Ino: ino, Off: size, Len: PackSetSize(false, resp.Epoch)}
		resp, err = cl.replayRT(p, slot, &set)
		if err != nil {
			return err
		}
		switch resp.Status {
		case StOK:
			return nil
		case StStale:
			continue
		default:
			return ErrOf(resp.Status)
		}
	}
	return ErrStaleEpoch
}

// memberStopWorld is the sharded membership change: every client
// fences, in-flight operations drain, and the operator rebuilds the
// world under the new geometry — OpMember re-partitions every server's
// ownership map and minting floor, each new member's store is rebuilt
// from the authoritative old-geometry snapshot (owned inodes in full,
// foreign files as exact-size stubs, everything else purged), rename
// marks follow directory ownership, and stripes copy to their new
// replica sets through the bulk channel. Re-sharding the directory
// slices of a live namespace incrementally is follow-up work; the
// stop-world window makes the geometry swap atomic for every client
// attached to the view.
func (cl *Cluster) memberStopWorld(p *sim.Proc, next []int) error {
	v := cl.view
	v.fenceMut, v.fenceAll = true, true
	for v.activeData+v.activeMut+v.pending > 0 {
		p.Sleep(memberFencePoll)
	}
	old := append([]int(nil), cl.members...)
	n := len(next)

	// Authoritative snapshot under the old geometry.
	auth, sizes, maxNext, err := cl.collectAuth(-1)
	if err != nil {
		return err
	}

	// Mint floor: past anything any affected store ever assigned —
	// including stale state on re-joining slots.
	floor := maxNext - 1
	for _, slot := range append(append([]int(nil), old...), next...) {
		st, err := cl.storeOf(slot)
		if err != nil {
			return err
		}
		if m := st.MaxIno(); m > floor {
			floor = m
		}
	}

	// Commit the new geometry first: servers swap ownership maps and
	// minting partitions while the world is stopped, so the store
	// rebuild below lands on servers that already route by the new
	// residues.
	epoch := v.epoch + 1
	if err := cl.commitMember(p, old, next, epoch, floor, true); err != nil {
		return err
	}

	// Rebuild every new member's store from the snapshot.
	for pos, slot := range next {
		sl := &memfs.Slice{Next: maxNext}
		for ino, nd := range auth {
			if nd.Attr.Kind == kernel.RegularFile {
				nd.Attr.Size = sizes[ino]
			}
			if posDist(pos, residueAt(ino, n), n) < cl.replicas {
				sl.Nodes = append(sl.Nodes, nd)
			} else if nd.Attr.Kind == kernel.RegularFile {
				sl.Nodes = append(sl.Nodes, memfs.SliceNode{Attr: nd.Attr})
			}
		}
		st, err := cl.storeOf(slot)
		if err != nil {
			return err
		}
		st.ImportSlice(sl, nil, true)
	}

	// Server-side soft state: size epochs are replicated-identical;
	// rename marks follow directory ownership under the new geometry.
	srcSrv := cl.peers[old[0]]
	marks := make(map[renameKey]renameMark)
	for _, slot := range old {
		for key, mark := range cl.peers[slot].renames {
			marks[key] = mark
		}
	}
	for _, slot := range next {
		dstSrv := cl.peers[slot]
		if posOf(old, slot) < 0 {
			dstSrv.epochs = make(map[kernel.InodeID]uint64, len(srcSrv.epochs))
			for ino, e := range srcSrv.epochs {
				dstSrv.epochs[ino] = e
			}
		}
		if dstSrv.renames == nil {
			dstSrv.renames = make(map[renameKey]renameMark)
		}
		for key, mark := range marks {
			if dstSrv.ownsDir(key.dir) {
				dstSrv.renames[key] = mark
			}
		}
	}

	// Data re-placement through the bulk channel: each stripe copies
	// from its old-placement replicas to the new-placement slots that
	// do not already hold it.
	for ino, sz := range sizes {
		for off := int64(0); off < sz; off += cl.stripe {
			end := off + cl.stripe
			if end > sz {
				end = sz
			}
			oldPos := int((off / cl.stripe) % int64(len(old)))
			newPos := int((off / cl.stripe) % int64(n))
			for j := 0; j < cl.replicas; j++ {
				slot := next[(newPos+j)%n]
				held := false
				for k := 0; k < cl.replicas; k++ {
					if old[(oldPos+k)%len(old)] == slot {
						held = true
						break
					}
				}
				if held {
					continue
				}
				var data []byte
				for k := 0; k < cl.replicas; k++ {
					srcSlot := old[(oldPos+k)%len(old)]
					st, err := cl.storeOf(srcSlot)
					if err != nil {
						return err
					}
					if d := st.ReadRange(ino, off, int(end-off)); len(d) > len(data) {
						data = d
					}
				}
				if len(data) == 0 {
					continue
				}
				dst, err := cl.storeOf(slot)
				if err != nil {
					return err
				}
				if err := dst.WriteRange(ino, off, data); err != nil {
					return err
				}
				cl.Migrated.Add(len(data))
			}
		}
	}

	// Flip.
	v.members = append(v.members[:0], next...)
	v.epoch = epoch
	cl.adoptView()
	return nil
}
