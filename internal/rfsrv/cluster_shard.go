package rfsrv

// Client half of the sharded namespace (DESIGN.md §11), plus the
// batched size-publish machinery both it and the replicated cluster
// can use.
//
// Ownership. Every directory — and every inode minted under it — has
// a routing residue: (ino-2) mod N, with the root on residue 0. The
// residue names the directory's OWNER GROUP, the R consecutive
// servers residue..residue+R-1 (the namespace reuses the data path's
// replica geometry). Namespace mutations go only to the owner group;
// lookups, getattrs and readdirs go to the group's first alive
// member. Files inherit their parent directory's residue, so the
// group that owns a dentry also owns the child's attributes; fresh
// directories are spread by hashing (dir, name), which is what makes
// create/unlink throughput scale with N instead of paying an N-way
// fan per mutation.
//
// What still fans to everyone: exact size sets (truncate) and the
// grow-only size publishes. File DATA is striped across all servers
// regardless of namespace ownership, so every server's local size
// matters to EOF clipping — a per-inode size authority would buy
// nothing here, and keeping the fan preserves PR 5's size-coherence
// machinery unchanged. Sharding therefore trades the O(N) namespace
// fan away while leaving size coherence global; the batched publish
// path amortizes the latter.
//
// Rename. A rename within one owner group is a single fanned
// OpRenameLocal. Across groups it is a three-phase protocol — prepare
// at the source group (marks the entry, returns the child), commit at
// the destination group (OpLink, the one durable switch point),
// finalize at the source group (detach + unmark). A fault after the
// commit's fate is unknown, or during finalize, surfaces as
// *RenameInDoubtError: the namespace is in one of exactly two legal
// states (never both, never neither), and re-driving the same rename
// resolves it because every phase is idempotent.

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// DefaultSizePublishBatch is the publish window EnableShardedNamespace
// installs when none was configured: flush coalesced size publishes
// every 16 enqueues.
const DefaultSizePublishBatch = 16

// EnableShardedNamespace switches the cluster from replicating every
// namespace mutation to all N servers to directing each at its
// directory's owner group. Call it once, right after construction and
// before any traffic, on every client of the namespace, with servers
// running EnableSharding under matching geometry (index i, count N,
// replicas R) and backing stores partitioned with
// memfs.SetInodePartition — residue routing only works when server i
// mints inodes of residue i. Mutually exclusive with SetLayoutPolicy:
// sharding reuses the create request's Len field for the routing
// residue, which is the field layout hints travel in.
func (cl *Cluster) EnableShardedNamespace() error {
	if cl.policyOn {
		return fmt.Errorf("%w: SetLayoutPolicy is already on", ErrShardLayoutConflict)
	}
	cl.sharded = true
	if cl.pubBatch == 0 {
		return cl.SetSizePublishBatch(DefaultSizePublishBatch)
	}
	return nil
}

// ShardedNamespace reports whether namespace mutations route to owner
// groups (EnableShardedNamespace) instead of fanning to every server.
func (cl *Cluster) ShardedNamespace() bool { return cl.sharded }

// SetSizePublishBatch defers the write path's grow-only size
// reconciliation: instead of fanning an OpSetSize to every server
// after each extending write, the cluster records the highest pending
// end-of-file per inode and flushes the coalesced set — one combined
// request batch per server — every k enqueues, or at the next
// metadata operation, SetFileSize or Rename, whichever comes first.
// Between flushes other servers' local sizes lag (reads clip a little
// early; getattr via this client is safe because metadata operations
// flush first) — the trade every write-behind scheme makes, here
// bounded by k. k must be positive; call before traffic. Mutually
// exclusive with SetLayoutPolicy (whole-on-home files have no
// reconciliation to batch, and the policy machinery predates the
// publish queue).
func (cl *Cluster) SetSizePublishBatch(k int) error {
	if k < 1 {
		return fmt.Errorf("rfsrv: size publish batch %d is not positive", k)
	}
	if cl.policyOn {
		return fmt.Errorf("%w: batched size publishes require a policy-free cluster", ErrShardLayoutConflict)
	}
	cl.pubBatch = k
	if cl.pendPub == nil {
		cl.pendPub = make(map[kernel.InodeID]int64)
	}
	return nil
}

// enqueueSizePub records a write's new end-of-file in the publish
// queue, flushing when the window fills. Only called with a positive
// pubBatch from the multi-server write path (see Cluster.Write).
func (cl *Cluster) enqueueSizePub(p *sim.Proc, ino kernel.InodeID, end int64) error {
	if e := cl.sizes[ino]; e.size < end {
		if cur, ok := cl.pendPub[ino]; !ok {
			cl.pendPub[ino] = end
			cl.pendOrder = append(cl.pendOrder, ino)
		} else if end > cur {
			cl.pendPub[ino] = end
		}
	}
	cl.pubSince++
	if cl.pubSince >= cl.pubBatch {
		return cl.FlushSizes(p)
	}
	return nil
}

// flushDueSizes is the metadata-path hook: a no-op unless batched
// publishes are on and something is pending.
func (cl *Cluster) flushDueSizes(p *sim.Proc) error {
	if cl.pubBatch == 0 || (len(cl.pendOrder) == 0 && len(cl.pendScrub) == 0) {
		cl.pubSince = 0
		return nil
	}
	return cl.FlushSizes(p)
}

// FlushSizes drains the publish queue: every pending grow-only
// OpSetSize (in enqueue order, highest pending end per inode) and
// every pending OpScrub — publishes first, so a scrubbed inode is
// never re-grown by a publish queued before its unlink — packed into
// one combined request batch per alive server, the per-server batches
// in flight in parallel. A server that faults is excluded (the grow
// mode is replayable; the alive servers are consistent, which is all
// the cache records). StStale refusals — a foreign exact size set
// raced the queue — refresh the cached epoch and the flush retries
// under it. Exported for callers with their own barriers (the figures
// harness audits sizes after a storm); a no-op when nothing is
// pending.
func (cl *Cluster) FlushSizes(p *sim.Proc) error {
	if len(cl.pendOrder) == 0 && len(cl.pendScrub) == 0 {
		cl.pubSince = 0
		return nil
	}
	for attempt := 0; ; attempt++ {
		reqs, npub := cl.buildFlush()
		if len(reqs) == 0 {
			break
		}
		stale, err := cl.flushFan(p, reqs, npub)
		if err != nil {
			return err
		}
		if !stale {
			break
		}
		// The refusals refreshed the cache entries (observeResp); go
		// around with the authoritative epochs. The cap only guards
		// against a pathological foreign truncate storm.
		if attempt >= 3 {
			return fmt.Errorf("rfsrv: batched size publish kept racing foreign size sets: %w", ErrStaleEpoch)
		}
	}
	for _, ino := range cl.pendOrder {
		if end, ok := cl.pendPub[ino]; ok {
			cl.sizes[ino] = cl.entry(end, cl.sizes[ino].epoch)
			delete(cl.pendPub, ino)
		}
	}
	cl.pendOrder = cl.pendOrder[:0]
	cl.pendScrub = cl.pendScrub[:0]
	cl.pubSince = 0
	return nil
}

// buildFlush assembles the flush's request list in cluster scratch:
// publishes in pendOrder insertion order (entries unlinked since they
// were queued have left pendPub and are skipped), then scrubs. The
// returned requests are shared across every server's batch —
// startBatchFlight stamps and encodes each before returning, so
// sequentially started flights may reuse them.
func (cl *Cluster) buildFlush() (reqs []*Req, npub int) {
	store := cl.flushReqStore[:0]
	for _, ino := range cl.pendOrder {
		end, ok := cl.pendPub[ino]
		if !ok {
			continue
		}
		store = append(store, Req{Op: OpSetSize, Ino: ino, Off: end, Len: PackSetSize(false, cl.sizes[ino].epoch)})
	}
	npub = len(store)
	for _, victim := range cl.pendScrub {
		store = append(store, Req{Op: OpScrub, Ino: victim})
	}
	cl.flushReqStore = store
	reqs = cl.flushReqs[:0]
	for i := range store {
		reqs = append(reqs, &store[i])
	}
	cl.flushReqs = reqs
	return reqs, npub
}

// flushFan runs one round of the flush: each alive server receives
// the request list as combined batches through its window (a batch
// larger than the window or the 4 KB request buffer spans several
// flights; the outer loop advances every server in parallel rounds).
// stale reports whether any publish was refused under a stale epoch.
func (cl *Cluster) flushFan(p *sim.Proc, reqs []*Req, npub int) (stale bool, err error) {
	n := len(cl.sessions)
	if cap(cl.flushStarts) < n {
		cl.flushStarts = make([]int, n)
	}
	starts := cl.flushStarts[:n]
	for i := range starts {
		starts[i] = len(reqs) // non-members never receive flushes
	}
	for _, i := range cl.members {
		if cl.down[i] {
			// The excluded member misses the scrubs in this flush (the
			// grow publishes are replayable and are not journaled); record
			// them so Reinstate reclaims the dead inodes there too.
			for _, r := range reqs[npub:] {
				cl.journalMut(i, r, r.Ino, 0)
			}
			continue
		}
		starts[i] = 0
	}
	var firstErr error
	for {
		flights := cl.flushFlights[:0]
		targets := cl.flushTargets[:0]
		ends := cl.targetScratch[:0]
		started := false
		for i, s := range cl.sessions {
			if starts[i] >= len(reqs) {
				continue
			}
			fl, end, err := s.startBatchFlight(p, reqs, starts[i])
			if err != nil {
				if fabric.IsFault(err) {
					cl.markDown(i)
				} else if firstErr == nil {
					firstErr = err
				}
				starts[i] = len(reqs)
				continue
			}
			if pubs := min(end, npub) - min(starts[i], npub); pubs > 0 {
				cl.SetSizes.Add(pubs)
			}
			flights = append(flights, fl)
			targets = append(targets, i)
			ends = append(ends, end)
			started = true
		}
		for k, fl := range flights {
			resps, werr := fl.wait(p, cl.flushResps[:0])
			behind := false
			for _, r := range resps {
				cl.observeResp(r)
			}
			for _, r := range resps {
				if r != nil && r.Status == StStale && cl.epochBehind(r) {
					behind = true
				}
			}
			cl.flushResps = resps[:0]
			i := targets[k]
			if werr != nil {
				switch {
				case fabric.IsFault(werr):
					cl.markDown(i)
					starts[i] = len(reqs)
					continue
				case errors.Is(werr, ErrStaleEpoch):
					if behind {
						// The server refused under an epoch BEHIND the
						// cache: it missed an exact set while dead in
						// another client's view, and no retry epoch can
						// satisfy it and the coherent members at once
						// (see epochBehind). Exclude it; the publish
						// stands on the survivors.
						cl.markDown(i)
						starts[i] = len(reqs)
						continue
					}
					stale = true
				case firstErr == nil:
					firstErr = werr
				}
			}
			starts[i] = ends[k]
		}
		cl.flushFlights = flights[:0]
		cl.flushTargets = targets[:0]
		cl.targetScratch = ends[:0]
		if !started {
			return stale, firstErr
		}
	}
}

// ---- sharded routing ----

// shardOwner returns the residue (= primary placement POSITION, an
// index into cl.members) owning an inode's namespace slice: (ino-2)
// mod N, with the root (and the pre-root 0 alias) on residue 0 — the
// mirror of memfs.SetInodePartition minting and Server.shardResidue.
func (cl *Cluster) shardOwner(ino kernel.InodeID) int {
	if ino <= 1 {
		return 0
	}
	return int((uint64(ino) - 2) % uint64(len(cl.members)))
}

// spreadResidue picks a fresh directory's residue by hashing its
// (parent, name) — the same FNV-1a chaining pathHomeIdx uses, minus
// the exclusion walk (residues are placement, fixed at mint time).
func (cl *Cluster) spreadResidue(dir kernel.InodeID, name string) int {
	h := mix(uint64(dir))
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return int(h % uint64(len(cl.members)))
}

// groupPrimary returns the first alive member of a residue's owner
// group, or -1 when the whole group is excluded.
func (cl *Cluster) groupPrimary(owner int) int {
	n := len(cl.members)
	for j := 0; j < cl.replicas; j++ {
		if k := cl.members[(owner+j)%n]; !cl.down[k] {
			return k
		}
	}
	return -1
}

// groupDead is the error for an owner group whose every member is
// excluded; it satisfies fabric.IsFault.
func (cl *Cluster) groupDead(op Op, owner int) error {
	return fmt.Errorf("rfsrv: %v: every server of owner group %d excluded: %w", op, owner, fabric.ErrPeerDead)
}

// groupRead runs a read-only metadata request against its owner
// group's first alive member, excluding a faulting member and failing
// over to the next — the sharded analogue of homedMeta.
func (cl *Cluster) groupRead(p *sim.Proc, owner int, req *Req) (*Resp, error) {
	for {
		idx := cl.groupPrimary(owner)
		if idx < 0 {
			err := cl.groupDead(req.Op, owner)
			return &Resp{Status: StatusOf(err)}, err
		}
		resp, err := cl.syncMeta(p, idx, req)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(idx)
			cl.Failovers.Add(0)
			continue
		}
		cl.observeResp(resp)
		if cl.epochBehind(resp) {
			// The member answered under an epoch behind the cache: it
			// missed an exact set and its sizes are pre-truncate stale
			// (see epochBehind). Serving this reply would hand the
			// caller a resurrected size — exclude and fail over.
			cl.markDown(idx)
			cl.Failovers.Add(0)
			continue
		}
		return resp, err
	}
}

// groupFan replicates a mutation to every alive member of an owner
// group in parallel (synchronous control paths, like fanout) and
// verifies the answers agree. A faulting member is excluded, never
// counted as divergent; an entirely excluded group is an error.
func (cl *Cluster) groupFan(p *sim.Proc, owner int, req *Req) (*Resp, error) {
	n := len(cl.members)
	flights := cl.flightScratch[:0]
	targets := cl.targetScratch[:0]
	defer func() {
		cl.flightScratch = flights[:0]
		cl.targetScratch = targets[:0]
	}()
	var firstErr error
	for j := 0; j < cl.replicas; j++ {
		i := cl.members[(owner+j)%n]
		if cl.down[i] {
			continue
		}
		if len(flights) > 0 {
			cl.MetaFanout.Add(1)
		}
		cl.fanReq = *req
		fl, err := startSyncMeta(p, cl.sessions[i], &cl.fanReq)
		if err != nil {
			if fabric.IsFault(err) {
				cl.markDown(i)
				continue
			}
			firstErr = err
			break
		}
		flights = append(flights, fl)
		targets = append(targets, i)
	}
	var base *Resp
	for k := range flights {
		r, err := flights[k].wait(p)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(targets[k])
			continue
		}
		cl.observeResp(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if r == nil {
			continue
		}
		if base == nil {
			base = r
		} else if r.Status != base.Status || r.Attr.Ino != base.Attr.Ino {
			if r.Status == StBusy || base.Status == StBusy {
				// A rename-tainted entry mid-resolution: members still
				// holding the prepare mark refuse with StBusy while
				// members that already saw the abort or finalize answer
				// from the settled state. That is the in-doubt window
				// showing through — report busy (the caller re-drives
				// the rename), never divergence.
				return &Resp{Status: StBusy}, ErrBusy
			}
			derr := fmt.Errorf("rfsrv: owner group %d diverged on %v %q (status %d/ino %d vs %d/%d)",
				owner, req.Op, req.Name, base.Status, base.Attr.Ino, r.Status, r.Attr.Ino)
			return &Resp{Status: StIO}, derr
		}
	}
	if base == nil {
		if firstErr == nil {
			firstErr = cl.groupDead(req.Op, owner)
		}
		return &Resp{Status: StatusOf(firstErr)}, firstErr
	}
	return base, firstErr
}

// groupFanFrom fans a request to every alive member of an owner group
// EXCEPT one (the primary that already applied the original) — the
// dentry-replication round of sharded creates. Faulting members are
// excluded; application errors win.
func (cl *Cluster) groupFanFrom(p *sim.Proc, owner, except int, req *Req) error {
	n := len(cl.members)
	flights := cl.flightScratch[:0]
	targets := cl.targetScratch[:0]
	defer func() {
		cl.flightScratch = flights[:0]
		cl.targetScratch = targets[:0]
	}()
	var firstErr error
	for j := 0; j < cl.replicas; j++ {
		i := cl.members[(owner+j)%n]
		if i == except || cl.down[i] {
			continue
		}
		cl.MetaFanout.Add(1)
		cl.fanReq = *req
		fl, err := startSyncMeta(p, cl.sessions[i], &cl.fanReq)
		if err != nil {
			if fabric.IsFault(err) {
				cl.markDown(i)
				continue
			}
			firstErr = err
			break
		}
		flights = append(flights, fl)
		targets = append(targets, i)
	}
	for k := range flights {
		r, err := flights[k].wait(p)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(targets[k])
			continue
		}
		cl.observeResp(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// groupMint runs a minting mutation (create, mkdir) at the owner
// group's primary — failing over within the group when the primary's
// transport faults — then replicates the fresh dentry to the rest of
// the group with OpLink.
func (cl *Cluster) groupMint(p *sim.Proc, owner int, req *Req) (*Resp, error) {
	for {
		idx := cl.groupPrimary(owner)
		if idx < 0 {
			err := cl.groupDead(req.Op, owner)
			return &Resp{Status: StatusOf(err)}, err
		}
		resp, err := cl.syncMeta(p, idx, req)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(idx)
			cl.Failovers.Add(0)
			continue
		}
		cl.observeResp(resp)
		if err != nil {
			return resp, err
		}
		if cl.replicas > 1 {
			link := Req{Op: OpLink, Ino: req.Ino, Name: req.Name,
				Off: int64(resp.Attr.Ino), Len: uint32(resp.Attr.Kind)}
			if lerr := cl.groupFanFrom(p, owner, idx, &link); lerr != nil {
				return &Resp{Status: StatusOf(lerr)}, lerr
			}
		}
		return resp, nil
	}
}

// shardMeta is the sharded Meta dispatch: reads to the owner group's
// primary, mutations to the owner group alone, size operations still
// global (see the package comment on what fans).
func (cl *Cluster) shardMeta(p *sim.Proc, req *Req) (*Resp, error) {
	switch req.Op {
	case OpLookup, OpGetattr, OpReaddir:
		// A lookup's Ino is the directory and a getattr/readdir's the
		// object itself; both route by the inode's own residue (files
		// inherit the parent's, so the dentry's owner group answers all
		// three). A directory with an in-doubt rename parked on it gets
		// the rename re-driven first, so walks observe a settled
		// namespace instead of StBusy marks.
		if len(cl.renameDoubt) > 0 {
			cl.resolveRenameDoubt(p, req.Ino)
		}
		return cl.groupRead(p, cl.shardOwner(req.Ino), req)
	case OpCreate:
		return cl.shardCreate(p, req.Ino, req.Name)
	case OpMkdir:
		return cl.shardMkdir(p, req.Ino, req.Name)
	case OpUnlink:
		return cl.shardUnlink(p, req.Ino, req.Name)
	case OpRmdir:
		return cl.shardRmdir(p, req.Ino, req.Name)
	case OpTruncate:
		return cl.setSizeMeta(p, req.Ino, req.Off, true)
	case OpSetSize:
		exact, _ := UnpackSetSize(req.Len)
		return cl.setSizeMeta(p, req.Ino, req.Off, exact)
	case OpRenameLocal:
		src, dst, ok := SplitRenameNames(req.Name)
		if !ok {
			return &Resp{Status: StInval}, ErrInval
		}
		return cl.Rename(p, req.Ino, src, kernel.InodeID(req.Off), dst)
	default:
		// OpSetLayout (the layout policy is off under sharding — see
		// EnableShardedNamespace) and the internal sharding verbs are
		// not client-facing operations here.
		return &Resp{Status: StInval}, ErrInval
	}
}

// shardCreate creates a file under its parent directory's owner
// group: files inherit the parent's residue, so the group that owns
// the dentry also owns the child's attributes and ONE group — not the
// whole cluster — serves the create.
func (cl *Cluster) shardCreate(p *sim.Proc, dir kernel.InodeID, name string) (*Resp, error) {
	owner := cl.shardOwner(dir)
	resp, err := cl.groupMint(p, owner, &Req{Op: OpCreate, Ino: dir, Name: name, Len: uint32(owner + 1)})
	if err != nil {
		return resp, err
	}
	cl.bumpGroupNs(owner)
	cl.sizes[resp.Attr.Ino] = cl.entry(resp.Attr.Size, resp.Epoch)
	if cl.anyDown() {
		// Excluded group members missed the dentry: journal the
		// idempotent replication verb (OpLink), not the minting create.
		cl.journalGroup(owner, &Req{Op: OpLink, Ino: dir, Name: name,
			Off: int64(resp.Attr.Ino), Len: uint32(resp.Attr.Kind)}, resp.Attr.Ino, resp.Epoch)
	}
	return resp, nil
}

// shardMkdir creates a directory: the dentry is minted at the
// PARENT's owner group (round one), then the fresh directory's object
// is materialized at ITS owner group (round two) — the group its
// residue routes its children's operations to, generally a different
// one (spreadResidue is what scatters the namespace over N servers).
// A crash between the rounds leaves a dentry whose object the child's
// group materializes on demand at first touch.
func (cl *Cluster) shardMkdir(p *sim.Proc, dir kernel.InodeID, name string) (*Resp, error) {
	owner := cl.shardOwner(dir)
	res := cl.spreadResidue(dir, name)
	resp, err := cl.groupMint(p, owner, &Req{Op: OpMkdir, Ino: dir, Name: name, Len: uint32(res + 1)})
	if err != nil {
		return resp, err
	}
	cl.bumpGroupNs(owner)
	if cl.anyDown() {
		cl.journalGroup(owner, &Req{Op: OpLink, Ino: dir, Name: name,
			Off: int64(resp.Attr.Ino), Len: uint32(kernel.Directory)}, resp.Attr.Ino, resp.Epoch)
	}
	if _, err := cl.groupFan(p, res, &Req{Op: OpMaterialize, Ino: resp.Attr.Ino, Len: uint32(kernel.Directory)}); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	cl.bumpGroupNs(res)
	if cl.anyDown() {
		cl.journalGroup(res, &Req{Op: OpMaterialize, Ino: resp.Attr.Ino, Len: uint32(kernel.Directory)}, resp.Attr.Ino, 0)
	}
	return resp, nil
}

// shardUnlink removes a dentry at its owner group. The group's answer
// carries the victim's attributes; its object — and its data stripes,
// which live on EVERY server — are reclaimed by a lazy OpScrub fan
// that rides the next size-publish flush instead of costing this
// unlink an N-way round.
func (cl *Cluster) shardUnlink(p *sim.Proc, dir kernel.InodeID, name string) (*Resp, error) {
	owner := cl.shardOwner(dir)
	resp, err := cl.groupFan(p, owner, &Req{Op: OpUnlink, Ino: dir, Name: name})
	if err != nil {
		return resp, err
	}
	cl.bumpGroupNs(owner)
	if cl.anyDown() {
		cl.journalGroup(owner, &Req{Op: OpUnlink, Ino: dir, Name: name}, resp.Attr.Ino, 0)
	}
	if err := cl.noteUnlinkVictim(p, resp.Attr.Ino, resp.Attr.Size); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return resp, nil
}

// noteUnlinkVictim queues the lazy cluster-wide scrub of a dead inode
// and drops every client-side pending for it — a queued size publish
// must never resurrect an unlinked file's object on servers that
// already scrubbed it, so the victim leaves pendPub before the scrub
// is queued (the flush also orders publishes before scrubs for the
// same reason). ownerSize is the victim's size as the owner group
// reported it with the unlink.
func (cl *Cluster) noteUnlinkVictim(p *sim.Proc, victim kernel.InodeID, ownerSize int64) error {
	if victim == 0 {
		return nil
	}
	cached := cl.sizes[victim]
	_, pending := cl.pendPub[victim]
	delete(cl.sizes, victim)
	delete(cl.pendPub, victim) // its pendOrder slot is skipped at flush
	if ownerSize == 0 && cached.size == 0 && cached.epoch == 0 && !pending {
		// The owner group never heard a size for the victim and this
		// client has nothing queued for it: non-owner servers only
		// acquire foreign-owned state through data writes and size sets
		// (see materializeOnDemand), and every flushed publish or exact
		// truncate grows the owner too — so nothing remote exists and
		// the owner-side unlink already reclaimed everything. Skipping
		// the fan here is what keeps empty-file churn O(R), not O(N).
		// (A foreign client's not-yet-flushed writes are invisible; the
		// frames such a race strands are reclaimed only by that
		// client's own churn — the lazy-reconciliation trade.)
		return nil
	}
	cl.pendScrub = append(cl.pendScrub, victim)
	cl.pubSince++
	if cl.pubSince >= cl.pubBatch {
		return cl.FlushSizes(p)
	}
	return nil
}

// shardRmdir removes a directory: resolve the victim at the parent's
// owner group, check-and-remove its object at the VICTIM's owner
// group (the only group whose copy of the directory sees its
// children's dentries — OpScrub with ScrubRequireEmptyDir is the
// emptiness authority), then drop the dentry at the parent's group.
func (cl *Cluster) shardRmdir(p *sim.Proc, dir kernel.InodeID, name string) (*Resp, error) {
	owner := cl.shardOwner(dir)
	lresp, err := cl.groupRead(p, owner, &Req{Op: OpLookup, Ino: dir, Name: name})
	if err != nil {
		return lresp, err
	}
	if lresp.Attr.Kind != kernel.Directory {
		return &Resp{Status: StNotDir}, kernel.ErrNotDir
	}
	child := lresp.Attr.Ino
	cres := cl.shardOwner(child)
	if sresp, err := cl.groupFan(p, cres, &Req{Op: OpScrub, Ino: child, Len: ScrubRequireEmptyDir}); err != nil {
		return sresp, err
	}
	cl.bumpGroupNs(cres)
	if cl.anyDown() {
		cl.journalGroup(cres, &Req{Op: OpScrub, Ino: child, Len: ScrubRequireEmptyDir}, child, 0)
	}
	resp, err := cl.groupFan(p, owner, &Req{Op: OpRmdir, Ino: dir, Name: name})
	if err != nil {
		return resp, err
	}
	cl.bumpGroupNs(owner)
	if cl.anyDown() {
		cl.journalGroup(owner, &Req{Op: OpRmdir, Ino: dir, Name: name}, child, 0)
	}
	delete(cl.sizes, child)
	return resp, nil
}

// Rename implements Renamer. Unsharded, it fans one OpRenameLocal to
// every alive server (each applies it locally — the namespace is
// replicated). Sharded, a rename within one owner group is the same
// OpRenameLocal fanned to that group; across groups it is the
// three-phase protocol (see the package comment): prepare at the
// source group, commit (OpLink) at the destination group, finalize at
// the source group. The commit is the switch point — before it the
// rename can still abort cleanly to its source state; after it the
// rename HAS happened and only the source-side cleanup can lag. A
// fault that hides the commit's fate, or interrupts the finalize,
// returns *RenameInDoubtError (errors.Is ErrRenameInDoubt): the
// namespace is in one of exactly two legal states, and re-driving the
// same rename resolves it.
func (cl *Cluster) Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) (*Resp, error) {
	if err := cl.enterOp(p, true); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	defer cl.exitOp()
	if err := cl.flushDueSizes(p); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	local := &Req{Op: OpRenameLocal, Ino: srcDir, Off: int64(dstDir), Name: PackRenameNames(srcName, dstName)}
	if err := ValidateReq(local); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	if !cl.sharded {
		return cl.fanout(p, local) // noteMutation bumps every server
	}
	so, do := cl.shardOwner(srcDir), cl.shardOwner(dstDir)
	if so == do {
		resp, err := cl.groupFan(p, so, local)
		if err == nil {
			cl.bumpGroupNs(so)
			if cl.anyDown() {
				cl.journalGroup(so, local, resp.Attr.Ino, 0)
			}
		}
		return resp, err
	}
	// Phase 1 — prepare at the source group: marks (srcDir, srcName)
	// as renaming toward dstDir and returns the child. Nothing durable
	// changed; any failure here simply leaves the rename undone.
	presp, err := cl.groupFan(p, so, &Req{Op: OpRenamePrepare, Ino: srcDir, Off: int64(dstDir), Name: srcName})
	if err != nil {
		return presp, err
	}
	child := presp.Attr
	// Phase 2 — commit at the destination group: link the child under
	// its new name. This is the switch point.
	cresp, err := cl.groupFan(p, do, &Req{Op: OpLink, Ino: dstDir, Off: int64(child.Ino), Len: uint32(child.Kind), Name: dstName})
	if err != nil {
		// The destination never (observably) switched: abort the
		// source marks so the namespace settles in its original state.
		// Neither group's slice mutated, so neither bumps — a
		// destination server killed before the commit reinstates
		// cleanly into that state. If the abort ALSO fails, the source
		// entry stays marked and the outcome is in doubt.
		if _, aerr := cl.groupFan(p, so, &Req{Op: OpRenameAbort, Ino: srcDir, Name: srcName}); aerr != nil {
			cl.RenameInDoubts.Add(1)
			cl.noteRenameDoubt(srcDir, srcName, dstDir, dstName)
			return cresp, &RenameInDoubtError{SrcDir: srcDir, SrcName: srcName, DstDir: dstDir, DstName: dstName, Err: err}
		}
		// The abort only reached alive members; one excluded mid-rename
		// may hold the prepare mark with nobody left to clear it. Journal
		// the abort so replay lifts the mark (idempotently a no-op on
		// members that never saw the prepare).
		if cl.anyDown() {
			cl.journalGroup(so, &Req{Op: OpRenameAbort, Ino: srcDir, Name: srcName}, 0, 0)
		}
		cl.clearRenameDoubt(srcDir, srcName, dstDir, dstName)
		return cresp, err
	}
	// The rename is committed. Record the mutation on BOTH groups
	// before attempting the source-side cleanup: a source server that
	// dies between prepare and finalize holds a marked entry the
	// committed rename orphaned, and must be refused Reinstate even
	// though the finalize below never reached it.
	cl.bumpGroupNs(do)
	cl.bumpGroupNs(so)
	if cl.anyDown() {
		cl.journalGroup(do, &Req{Op: OpLink, Ino: dstDir, Off: int64(child.Ino), Len: uint32(child.Kind), Name: dstName}, child.Ino, cresp.Epoch)
	}
	// Phase 3 — finalize at the source group: detach the old entry and
	// clear the mark.
	if _, ferr := cl.groupFan(p, so, &Req{Op: OpRenameFinalize, Ino: srcDir, Off: int64(child.Ino), Name: srcName}); ferr != nil {
		// A member that missed the finalize still holds the orphaned
		// marked entry. If its death was only discovered by the fan
		// above, its exclusion snapshot postdates the bumps — bump the
		// group again so it is refused Reinstate until resynced, and
		// journal the finalize it missed (the journal hook below runs
		// after the fan precisely so newly-excluded members are seen).
		cl.bumpGroupNs(so)
		cl.journalGroup(so, &Req{Op: OpRenameFinalize, Ino: srcDir, Off: int64(child.Ino), Name: srcName}, child.Ino, 0)
		cl.RenameInDoubts.Add(1)
		cl.noteRenameDoubt(srcDir, srcName, dstDir, dstName)
		return cresp, &RenameInDoubtError{SrcDir: srcDir, SrcName: srcName, DstDir: dstDir, DstName: dstName, Err: ferr}
	}
	if cl.anyDown() {
		cl.journalGroup(so, &Req{Op: OpRenameFinalize, Ino: srcDir, Off: int64(child.Ino), Name: srcName}, child.Ino, 0)
	}
	cl.clearRenameDoubt(srcDir, srcName, dstDir, dstName)
	return cresp, nil
}

// ---- in-doubt rename auto-resolution ----

// inDoubtRename is one parked in-doubt rename: the exact arguments of
// the Rename whose fate a fault hid, enough to re-drive it verbatim.
type inDoubtRename struct {
	srcDir  kernel.InodeID
	srcName string
	dstDir  kernel.InodeID
	dstName string
}

// noteRenameDoubt parks an in-doubt rename on both directories it
// involves, so the next walk touching either re-drives it (see
// resolveRenameDoubt). One record per directory: renames serialize per
// entry through the prepare marks, and a second in-doubt rename on the
// same directory simply overwrites — the first is re-discovered by its
// OTHER directory's key, or by the caller's own re-drive.
func (cl *Cluster) noteRenameDoubt(srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) {
	if cl.renameDoubt == nil {
		cl.renameDoubt = make(map[kernel.InodeID]inDoubtRename)
	}
	r := inDoubtRename{srcDir: srcDir, srcName: srcName, dstDir: dstDir, dstName: dstName}
	cl.renameDoubt[srcDir] = r
	cl.renameDoubt[dstDir] = r
}

// clearRenameDoubt drops the parked records matching a rename that
// reached a definitive outcome (committed and finalized, or cleanly
// aborted).
func (cl *Cluster) clearRenameDoubt(srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) {
	if len(cl.renameDoubt) == 0 {
		return
	}
	r := inDoubtRename{srcDir: srcDir, srcName: srcName, dstDir: dstDir, dstName: dstName}
	if cl.renameDoubt[srcDir] == r {
		delete(cl.renameDoubt, srcDir)
	}
	if cl.renameDoubt[dstDir] == r {
		delete(cl.renameDoubt, dstDir)
	}
}

// resolveRenameDoubt re-drives the in-doubt rename parked on dir, if
// any. Every rename phase is idempotent, so the re-drive lands the
// namespace in one of its two legal settled states: success means the
// rename went (or finally goes) forward; ErrNotFound at the re-prepare
// means it already settled (forward, with the source entry detached —
// or undone by a racing abort). Either way the doubt is resolved and
// the walk proceeds against a quiet namespace. A re-drive that fails
// any other way (the faults have not healed) keeps the record for the
// next walk and the walk proceeds — resolution is an optimization of
// WHEN the namespace settles, never a correctness gate for reads.
func (cl *Cluster) resolveRenameDoubt(p *sim.Proc, dir kernel.InodeID) {
	r, ok := cl.renameDoubt[dir]
	if !ok {
		return
	}
	_, err := cl.Rename(p, r.srcDir, r.srcName, r.dstDir, r.dstName)
	if err == nil || errors.Is(err, kernel.ErrNotFound) {
		cl.clearRenameDoubt(r.srcDir, r.srcName, r.dstDir, r.dstName)
		cl.RenameAutoResolves.Add(0)
	}
}

// ---- sharded batching ----

// shardMetaBatch is MetaBatch under sharding: lookups, getattrs,
// readdirs, creates and unlinks split into per-owner-group shares,
// each share packed into combined batches through its primary's
// window, the per-server batches in flight IN PARALLEL — which is
// what lets a metadata storm scale with N instead of serializing
// rounds. Anything else in the batch (mkdir, rmdir, size operations,
// renames) needs multi-round protocols, so such a batch falls back to
// per-request Meta calls in order.
func (cl *Cluster) shardMetaBatch(p *sim.Proc, reqs []*Req) ([]*Resp, error) {
	for _, r := range reqs {
		switch r.Op {
		case OpLookup, OpGetattr, OpReaddir, OpCreate, OpUnlink:
		default:
			return cl.metaBatchSequential(p, reqs)
		}
	}
	n := len(cl.members)
	type share struct {
		idx  []int
		reqs []*Req
		done int
		fl   *batchFlight
		end  int
	}
	shares := make([]share, len(cl.sessions))
	// track remembers, per original position, the mutation's owner
	// residue (-1 for reads) and primary, for the post-batch rounds.
	type mut struct {
		owner   int
		primary int
	}
	muts := make([]mut, len(reqs))
	out := make([]*Resp, len(reqs))
	for i, r := range reqs {
		muts[i].owner = -1
		switch r.Op {
		case OpLookup, OpGetattr, OpReaddir:
			idx := cl.groupPrimary(cl.shardOwner(r.Ino))
			if idx < 0 {
				return nil, cl.groupDead(r.Op, cl.shardOwner(r.Ino))
			}
			shares[idx].idx = append(shares[idx].idx, i)
			shares[idx].reqs = append(shares[idx].reqs, r)
		case OpCreate:
			owner := cl.shardOwner(r.Ino)
			idx := cl.groupPrimary(owner)
			if idx < 0 {
				return nil, cl.groupDead(r.Op, owner)
			}
			muts[i] = mut{owner: owner, primary: idx}
			// Sharded servers read Len as the routing residue (files
			// inherit the parent's); layout hints do not exist here.
			w := &Req{Op: OpCreate, Ino: r.Ino, Name: r.Name, Len: uint32(owner + 1)}
			shares[idx].idx = append(shares[idx].idx, i)
			shares[idx].reqs = append(shares[idx].reqs, w)
		case OpUnlink:
			owner := cl.shardOwner(r.Ino)
			idx := cl.groupPrimary(owner)
			if idx < 0 {
				return nil, cl.groupDead(r.Op, owner)
			}
			muts[i] = mut{owner: owner, primary: idx}
			// The whole owner group applies the unlink; each member's
			// share carries the same *Req (batches start sequentially
			// and every start fully encodes — see startBatchFlight).
			for j := 0; j < cl.replicas; j++ {
				k := cl.members[(owner+j)%n]
				if cl.down[k] {
					continue
				}
				if k != idx {
					cl.MetaFanout.Add(1)
				}
				shares[k].idx = append(shares[k].idx, i)
				shares[k].reqs = append(shares[k].reqs, r)
			}
		}
	}
	// Drive every share to completion in parallel rounds: one flight
	// per server per round, all in flight together. On any error every
	// started flight is still waited (slots must never leak), then the
	// first error surfaces and the caller re-issues.
	var firstErr error
	for firstErr == nil {
		started := false
		for s := range shares {
			sh := &shares[s]
			if sh.fl != nil || sh.done >= len(sh.reqs) || cl.down[s] {
				continue
			}
			fl, end, err := cl.sessions[s].startBatchFlight(p, sh.reqs, sh.done)
			if err != nil {
				if fabric.IsFault(err) {
					cl.markDown(s)
				}
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			sh.fl, sh.end = fl, end
			started = true
		}
		if !started {
			break
		}
		for s := range shares {
			sh := &shares[s]
			if sh.fl == nil {
				continue
			}
			resps, werr := sh.fl.wait(p, nil)
			sh.fl = nil
			for ri, r := range resps {
				pos := sh.idx[sh.done+ri]
				cl.observeResp(r)
				if out[pos] == nil {
					out[pos] = r
				} else if r != nil && (r.Status != out[pos].Status || r.Attr.Ino != out[pos].Attr.Ino) {
					return out, fmt.Errorf("rfsrv: owner group diverged in batch at %d", pos)
				}
			}
			sh.done += len(resps)
			if werr != nil {
				if fabric.IsFault(werr) {
					cl.markDown(s)
				}
				if firstErr == nil {
					firstErr = werr
				}
			}
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	// Post-batch rounds and bookkeeping, in request order: replicate
	// fresh dentries (R > 1), bump the mutated groups, queue unlink
	// victims for the lazy scrub.
	for i, r := range reqs {
		m := muts[i]
		if m.owner < 0 || out[i] == nil || out[i].Status != StOK {
			continue
		}
		switch r.Op {
		case OpCreate:
			link := Req{Op: OpLink, Ino: r.Ino, Name: r.Name,
				Off: int64(out[i].Attr.Ino), Len: uint32(out[i].Attr.Kind)}
			if cl.replicas > 1 {
				if err := cl.groupFanFrom(p, m.owner, m.primary, &link); err != nil {
					return out, err
				}
			}
			cl.bumpGroupNs(m.owner)
			if cl.anyDown() {
				cl.journalGroup(m.owner, &link, out[i].Attr.Ino, out[i].Epoch)
			}
			cl.sizes[out[i].Attr.Ino] = cl.entry(out[i].Attr.Size, out[i].Epoch)
		case OpUnlink:
			cl.bumpGroupNs(m.owner)
			if cl.anyDown() {
				cl.journalGroup(m.owner, r, out[i].Attr.Ino, 0)
			}
			if err := cl.noteUnlinkVictim(p, out[i].Attr.Ino, out[i].Attr.Size); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

// metaBatchSequential is the sharded batch's fallback for requests
// that need multi-round protocols: per-request Meta calls in original
// order (correct, just not combined).
func (cl *Cluster) metaBatchSequential(p *sim.Proc, reqs []*Req) ([]*Resp, error) {
	out := make([]*Resp, len(reqs))
	for i, r := range reqs {
		resp, err := cl.Meta(p, r)
		out[i] = resp
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
