package rfsrv_test

// Fault-injected tests for the sharded namespace (DESIGN.md §11, §13):
// the three-phase cross-owner rename killed on either side of its
// commit point (asserting the namespace lands in exactly one of the
// two legal states, and that Reinstate replays what the victim missed
// before re-admitting it), owner-group failover to a replica member,
// the ownership-scoped Reinstate contract (a foreign slice churning
// journals nothing; an owned slice churning replays), and the batched
// size-publish flush across a kill — all with window-idle and
// pool-leak assertions on the new paths.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// newShardRig is newClusterRig with every server enrolled in the
// namespace partition: collision-free inode minting plus the server
// half of sharding (ownership checks, rename marks, materialize).
func newShardRig(t *testing.T, nServers, replicas int) *clusterRig {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	r := &clusterRig{env: env, client: c.AddNode("client")}
	r.clientMX = mx.Attach(r.client)
	for i := 0; i < nServers; i++ {
		n := c.AddNode(fmt.Sprintf("server%d", i))
		fs := memfs.New(fmt.Sprintf("backing%d", i), n, 0)
		fs.SetInodePartition(i, nServers)
		srv := rfsrv.NewServer(n, fs)
		if err := srv.EnableSharding(i, nServers, replicas); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.ServeMX(mx.Attach(n), 1, 4); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, n)
		r.serverFS = append(r.serverFS, fs)
		r.rsrv = append(r.rsrv, srv)
	}
	return r
}

// shardClient builds the sharded client over the rig: replicated
// sessions with the fault timeout armed, ownership routing enabled.
func (r *clusterRig) shardClient(t *testing.T, p *sim.Proc, replicas int) *rfsrv.Cluster {
	t.Helper()
	cl := r.clusterRep(t, p, 4, testStripe, replicas)
	if err := cl.EnableShardedNamespace(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// mkdirRes creates directories under the root until one lands on the
// wanted owner residue and returns its inode.
func mkdirRes(t *testing.T, p *sim.Proc, cl *rfsrv.Cluster, n, want int, tag string) kernel.InodeID {
	t.Helper()
	for k := 0; k < 64; k++ {
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: fmt.Sprintf("%s%d", tag, k)})
		if err != nil {
			t.Fatalf("mkdir %s%d: %v", tag, k, err)
		}
		if int((resp.Attr.Ino-2)%kernel.InodeID(n)) == want {
			return resp.Attr.Ino
		}
	}
	t.Fatalf("no directory with residue %d in 64 tries", want)
	return 0
}

// TestShardRenameDestKillPreCommit kills the destination owner's NIC
// between the rename's prepare and its commit: the commit faults, the
// abort settles the source back to its original state (state A — the
// rename simply failed, NOT in doubt), the source entry is unmarked
// (the same rename re-drives cleanly), and the killed destination —
// whose slice never mutated — reinstates without a resync.
func TestShardRenameDestKillPreCommit(t *testing.T) {
	r := newShardRig(t, 4, 1)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 1)
		src := mkdirRes(t, p, cl, 4, 1, "s")
		dst := mkdirRes(t, p, cl, 4, 2, "d")
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: src, Name: "f"})
		if err != nil {
			t.Fatal(err)
		}
		fino := resp.Attr.Ino

		// The destination owner dies after the prepare round trip (to
		// the source owner, unstalled) but before the commit can reach
		// it: its NIC is stalled so the commit frame is still queued
		// when the kill lands.
		r.servers[2].NIC.StallFor(400 * time.Microsecond)
		r.servers[2].NIC.KillAfter(200 * time.Microsecond)
		_, rerr := cl.Rename(p, src, "f", dst, "g")
		if rerr == nil {
			t.Fatal("rename across a dead destination owner succeeded")
		}
		if errors.Is(rerr, rfsrv.ErrRenameInDoubt) {
			t.Fatalf("pre-commit destination kill must NOT be in doubt: %v", rerr)
		}

		// State A: source entry intact, destination untouched.
		if a, err := r.serverFS[1].Lookup(p, src, "f"); err != nil || a.Ino != fino {
			t.Fatalf("state A: source entry = %+v, %v; want ino %d", a, err, fino)
		}
		if _, err := r.serverFS[2].Lookup(p, dst, "g"); !errors.Is(err, kernel.ErrNotFound) {
			t.Fatalf("state A: destination entry exists (err=%v), want absent", err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 2 {
			t.Fatalf("down servers = %v, want [2]", down)
		}

		// The destination's slice never mutated, so it reinstates
		// cleanly — and the re-driven rename completes.
		r.servers[2].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 2); err != nil {
			t.Fatalf("reinstate unmutated destination owner: %v", err)
		}
		if _, err := cl.Rename(p, src, "f", dst, "g"); err != nil {
			t.Fatalf("re-driven rename: %v", err)
		}
		if _, err := r.serverFS[1].Lookup(p, src, "f"); !errors.Is(err, kernel.ErrNotFound) {
			t.Fatalf("source entry survived the re-driven rename (err=%v)", err)
		}
		if a, err := r.serverFS[2].Lookup(p, dst, "g"); err != nil || a.Ino != fino {
			t.Fatalf("destination entry = %+v, %v; want ino %d", a, err, fino)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestShardRenameSourceKillInDoubt kills the source owner's NIC after
// the prepare but before the finalize, while the destination commit is
// in flight: the commit applies (the rename HAS happened) and the
// finalize faults, so the client must surface *RenameInDoubtError with
// the rename's coordinates, the namespace must be in the committed
// state (destination linked, source cleanup lagging), and the dead
// source — holding an orphaned marked entry — journals the missed
// finalize, so Reinstate REPLAYS it: readmission detaches the lagging
// entry instead of refusing.
func TestShardRenameSourceKillInDoubt(t *testing.T) {
	r := newShardRig(t, 4, 1)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 1)
		src := mkdirRes(t, p, cl, 4, 1, "s")
		dst := mkdirRes(t, p, cl, 4, 2, "d")
		resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: src, Name: "f"})
		if err != nil {
			t.Fatal(err)
		}
		fino := resp.Attr.Ino

		// Stall the destination so the commit completes around 1ms —
		// after the source owner dies at 500µs (prepare, at healthy
		// round-trip speed, is long done by then).
		r.servers[2].NIC.StallFor(1 * time.Millisecond)
		r.servers[1].NIC.KillAfter(500 * time.Microsecond)
		_, rerr := cl.Rename(p, src, "f", dst, "g")
		if !errors.Is(rerr, rfsrv.ErrRenameInDoubt) {
			t.Fatalf("rename = %v, want ErrRenameInDoubt", rerr)
		}
		var ind *rfsrv.RenameInDoubtError
		if !errors.As(rerr, &ind) {
			t.Fatalf("rename error %T does not unwrap to *RenameInDoubtError", rerr)
		}
		if ind.SrcDir != src || ind.SrcName != "f" || ind.DstDir != dst || ind.DstName != "g" {
			t.Fatalf("in-doubt coordinates = %+v, want %d/f -> %d/g", ind, src, dst)
		}

		// Exactly one of two legal states — and since the commit went
		// through, it must be state B: destination linked, the dead
		// source still holding the entry its finalize never detached.
		_, srcErr := r.serverFS[1].Lookup(p, src, "f")
		dstA, dstErr := r.serverFS[2].Lookup(p, dst, "g")
		if srcErr != nil && dstErr != nil {
			t.Fatal("rename left the file linked nowhere — an illegal third state")
		}
		if dstErr != nil || dstA.Ino != fino {
			t.Fatalf("state B: destination entry = %+v, %v; want ino %d", dstA, dstErr, fino)
		}
		if srcErr != nil {
			t.Fatalf("state B: dead source lost its lagging entry: %v", srcErr)
		}

		// The source missed the finalize, but the client journaled it:
		// readmission replays the cleanup instead of refusing, and the
		// lagging entry detaches.
		r.servers[1].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate of the lagging source (journaled finalize): %v", err)
		}
		if cl.ResyncOps.N == 0 {
			t.Fatal("reinstate replayed nothing; the missed finalize should be journaled")
		}
		if _, err := r.serverFS[1].Lookup(p, src, "f"); !errors.Is(err, kernel.ErrNotFound) {
			t.Fatalf("source entry survived the replayed finalize (err=%v)", err)
		}
		if len(cl.DownServers()) != 0 {
			t.Fatalf("down servers = %v after replayed reinstate, want none", cl.DownServers())
		}
		// The parked doubt auto-resolves on the next walk: the re-driven
		// rename finds the source already settled.
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: src}); err != nil {
			t.Fatalf("readdir after reinstate: %v", err)
		}
		if cl.RenameAutoResolves.N != 1 {
			t.Fatalf("RenameAutoResolves = %d, want 1", cl.RenameAutoResolves.N)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestShardOwnerFailoverToReplica excludes a directory's primary owner
// in a replicated-ownership cluster (R=2): reads fail over to the
// replica member, creates mint through the surviving member, unlinks
// fan to the alive members only — the directory stays fully usable.
func TestShardOwnerFailoverToReplica(t *testing.T) {
	r := newShardRig(t, 3, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 2)
		dirResp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: 0, Name: "dir"})
		if err != nil {
			t.Fatal(err)
		}
		dir := dirResp.Attr.Ino
		res := int((dir - 2) % 3)
		replica := (res + 1) % 3
		for _, name := range []string{"a", "b"} {
			if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir, Name: name}); err != nil {
				t.Fatal(err)
			}
		}
		// Ownership replication: the second group member must already
		// hold the dentries.
		if _, err := r.serverFS[replica].Lookup(p, dir, "a"); err != nil {
			t.Fatalf("replica member missing dentry before the kill: %v", err)
		}

		r.servers[res].NIC.Kill()

		// Read failover: getattr and readdir route to the replica.
		if resp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: dir}); err != nil || resp.Attr.Ino != dir {
			t.Fatalf("getattr across the kill: %+v, %v", resp, err)
		}
		// Mutations keep working through the surviving member.
		cresp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir, Name: "c"})
		if err != nil {
			t.Fatalf("create across the kill: %v", err)
		}
		if got := int((cresp.Attr.Ino - 2) % 3); got != res {
			t.Fatalf("failover-minted inode %d has residue %d, want %d", cresp.Attr.Ino, got, res)
		}
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: dir, Name: "a"}); err != nil {
			t.Fatalf("unlink across the kill: %v", err)
		}
		rresp, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: dir})
		if err != nil {
			t.Fatalf("readdir across the kill: %v", err)
		}
		names := make(map[string]bool)
		for _, e := range rresp.Entries {
			names[e.Name] = true
		}
		if names["a"] || !names["b"] || !names["c"] {
			t.Fatalf("readdir across the kill = %v, want b and c without a", rresp.Entries)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != res {
			t.Fatalf("down servers = %v, want [%d]", down, res)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestShardReinstateScopedToOwnedSlice is the ownership-scoped half of
// the Reinstate contract: with R=2 over 3 servers, server 1 belongs to
// the residue-0 and residue-1 owner groups but not residue 2. Churning
// a residue-2 directory while server 1 is excluded journals nothing
// for it (readmission replays zero operations); churning a residue-1
// directory journals every missed mutation, and readmission replays
// them all before re-admitting.
func TestShardReinstateScopedToOwnedSlice(t *testing.T) {
	r := newShardRig(t, 3, 2)
	r.run(t, func(p *sim.Proc) {
		cl := r.shardClient(t, p, 2)
		foreign := mkdirRes(t, p, cl, 3, 2, "f") // group {2,0}: no server 1
		owned := mkdirRes(t, p, cl, 3, 1, "o")   // group {1,2}: primary 1

		churn := func(dir kernel.InodeID, tag string) {
			for k := 0; k < 3; k++ {
				name := fmt.Sprintf("%s%d", tag, k)
				if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir, Name: name}); err != nil {
					t.Fatalf("churn create %s: %v", name, err)
				}
				if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: dir, Name: name}); err != nil {
					t.Fatalf("churn unlink %s: %v", name, err)
				}
			}
		}

		// Round 1: exclude server 1 (observed by a read routed to it —
		// reads bump nothing), churn only the foreign slice, reinstate.
		r.servers[1].NIC.Kill()
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: owned}); err != nil {
			t.Fatalf("getattr observing the kill: %v", err)
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 1 {
			t.Fatalf("down servers = %v, want [1]", down)
		}
		churn(foreign, "x")
		r.servers[1].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate after foreign-slice churn: %v", err)
		}
		if cl.ResyncOps.N != 0 {
			t.Fatalf("foreign-slice churn journaled %d op(s) for server 1; its journal should be empty", cl.ResyncOps.N)
		}

		// Round 2: same exclusion, but the churn lands on a directory
		// server 1 co-owns — its slice mutated behind its back, so the
		// readmission replays the journaled churn before re-admitting.
		r.servers[1].NIC.Kill()
		if _, err := cl.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: owned}); err != nil {
			t.Fatalf("getattr observing the second kill: %v", err)
		}
		churn(owned, "y")
		r.servers[1].NIC.Revive()
		p.Sleep(2 * faultTimeout)
		if err := cl.Reinstate(p, 1); err != nil {
			t.Fatalf("reinstate after owned-slice churn (journaled): %v", err)
		}
		if cl.ResyncOps.N != 6 {
			t.Fatalf("ResyncOps = %d after owned-slice churn replay, want 6 (3 creates + 3 unlinks)", cl.ResyncOps.N)
		}
		// The replay converged server 1's slice: the churn's entries came
		// and went, so nothing y-named survives anywhere.
		for k := 0; k < 3; k++ {
			if _, err := r.serverFS[1].Lookup(p, owned, fmt.Sprintf("y%d", k)); !errors.Is(err, kernel.ErrNotFound) {
				t.Fatalf("replayed churn left y%d on server 1 (err=%v)", k, err)
			}
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}

// TestShardBatchedPublishFlush drives the coalescing size-publish
// queue directly: extending writes below the batch threshold leave the
// non-extreme servers' local sizes lagging, FlushSizes converges every
// server on the global end in one combined round, and a flush across a
// killed server excludes it and still converges the survivors.
func TestShardBatchedPublishFlush(t *testing.T) {
	r := newClusterRig(t, 3)
	r.run(t, func(p *sim.Proc) {
		cl := r.clusterRep(t, p, 4, testStripe, 1)
		if err := cl.SetSizePublishBatch(4); err != nil {
			t.Fatal(err)
		}
		ino := clusterCreate(t, p, cl, "f")
		writeStripe := func(k int) {
			va, vec := r.kbuf(t, testStripe)
			if err := r.client.Kernel.WriteBytes(va, pattern(testStripe)); err != nil {
				t.Fatal(err)
			}
			if resp, err := cl.Write(p, ino, int64(k)*int64(testStripe), vec); err != nil || int(resp.N) != testStripe {
				t.Fatalf("write stripe %d: n=%d err=%v", k, resp.N, err)
			}
		}
		for k := 0; k < 3; k++ {
			writeStripe(k)
		}
		// Below the batch threshold nothing published: server 0 only
		// saw its own stripe and must lag the global end.
		if cl.SetSizes.N != 0 {
			t.Fatalf("%d OpSetSize RPCs before the batch filled, want 0", cl.SetSizes.N)
		}
		if a, err := r.serverFS[0].Getattr(p, ino); err != nil || a.Size >= 3*int64(testStripe) {
			t.Fatalf("server 0 size = %d, %v; want a lagging local size", a.Size, err)
		}
		if err := cl.FlushSizes(p); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if cl.SetSizes.N == 0 {
			t.Fatal("flush issued no publishes")
		}
		for i, fs := range r.serverFS {
			if a, err := fs.Getattr(p, ino); err != nil || a.Size != 3*int64(testStripe) {
				t.Fatalf("server %d size after flush = %d, %v; want %d", i, a.Size, err, 3*testStripe)
			}
		}

		// A flush across a kill: the dead server is excluded, the
		// survivors still converge.
		r.servers[2].NIC.Kill()
		writeStripe(3) // stripe 3 lands on server 0
		if err := cl.FlushSizes(p); err != nil {
			t.Fatalf("flush across the kill: %v", err)
		}
		for i := 0; i < 2; i++ {
			if a, err := r.serverFS[i].Getattr(p, ino); err != nil || a.Size != 4*int64(testStripe) {
				t.Fatalf("server %d size after degraded flush = %d, %v; want %d", i, a.Size, err, 4*testStripe)
			}
		}
		if down := cl.DownServers(); len(down) != 1 || down[0] != 2 {
			t.Fatalf("down servers = %v, want [2]", down)
		}
		assertWindowsIdle(t, cl)
		r.checkNoLeaks(t)
	})
}
