package rfsrv

// This file is the striped cluster client: one rfsrv.Client that
// shards file data across several servers, each reached through its
// own Session. It is the repository's answer to the single-link
// ceiling PR 2 ran into — one server's 250 MB/s link caps aggregate
// throughput no matter how deep the window — and the first step toward
// the ROADMAP's aggregate-capacity north star.
//
// Layout. File bytes are split into fixed-size stripes (64 KiB by
// default) placed round-robin: stripe k of every file lives on server
// k mod N, *at its global offset* (server files are sparse — each
// server's copy holds only the stripes it owns, with its local size
// covering the bytes it has seen). Reads and writes split into
// per-server contiguous runs, issue in parallel through each server's
// session window, and merge completions through the existing
// seq-tagged demux — the cluster adds no new wire mechanism.
//
// Metadata. The namespace is replicated: every mutation (create,
// mkdir, unlink, rmdir, truncate, extend) fans out to all servers in
// server order, and because the backing filesystems allocate inode
// numbers deterministically, the same mutation stream yields the same
// inode numbers everywhere (the cluster verifies this and reports
// divergence as an I/O error). Read-only metadata (lookup, getattr,
// readdir) is served by a single *home* server chosen by hashing the
// path component (directory inode + name) or the inode, spreading
// metadata load without a directory service.
//
// Size reconciliation. A write's tail may land away from a file's
// metadata home, leaving the home's (and other data servers') local
// size short of the true end of file. After each synchronous Write
// that extends a file, the cluster replays a grow-only OpExtend to
// every other server, so any server's local size — and thus any homed
// getattr, and the EOF clipping of any striped read — reflects the
// true size. Asynchronous StartWrite skips this reconciliation (its
// callers, like ORFS write-behind, track EOF themselves); the
// metadata-home-vs-data-server tests pin down what is and is not
// guaranteed.
//
// Ordering and failure semantics. A Cluster is used from one simulated
// process at a time, like the Session it is built from. Metadata
// travels on each server's synchronous control path, never a window
// slot, so it can always proceed while striped data operations hold
// every slot (the cluster analogue of the session's one-free-slot
// discipline). Operations return when every fanned-out part has
// completed; the first error wins and the rest are drained, so window
// slots never leak. A striped
// read's byte count is the contiguous prefix served before the first
// server-clipped (EOF) part; bytes past it are undefined, exactly like
// a short read on the plain protocol.
//
// Replication and faults. A cluster built with NewReplicatedCluster
// writes every stripe to R consecutive servers (stripe k lands on
// k mod N through (k mod N)+R-1, wrapping), so the loss of any single
// server with R >= 2 loses no data. Faults are what the transport
// reports as such (fabric.IsFault: a dead peer at send time, or — with
// Session.SetRequestTimeout armed — a reply deadline expiring): the
// faulting server is recorded as *excluded* and never addressed again,
// reads of its stripes fail over to the next alive replica, writes
// succeed as long as every run keeps one clean replica, and namespace
// mutations simply skip it instead of reporting divergence. Exclusion
// is one-way — an operator who knows the server recovered calls
// Reinstate, which also drops the size cache so the next write
// re-reconciles it. Application-level errors (EEXIST, EOF clipping,
// short writes) are never treated as faults and fail the operation
// exactly as before. With R=1 and no faults every path below is
// bit-identical to the pre-replication cluster.
//
// Cross-client caching caveat. The sizes cache is per *client*: it
// records the reconciliation this Cluster performed, and nothing
// invalidates it when another Cluster (another client node) mutates
// the same file. Two writers sharing files see each other's data —
// stripes live server-side — but a client whose cached size exceeds a
// file's post-truncate size will skip extendTo on its next overwrite,
// leaving homed getattr stale until a size-extending write runs
// (TestClusterCrossClientExtend pins the observable behaviour). The
// paper's platform has the same property: per-mount attribute caches
// with no cross-client invalidation protocol. Single-writer-per-file
// workloads — everything the figures run — are unaffected.
//
// With one server the cluster degenerates exactly: every stripe is one
// contiguous run on server 0, every metadata route resolves to server
// 0, and no reconciliation traffic is sent, so the issued RPC sequence
// — and therefore the simulated timing — is bit-identical to driving
// the underlying Session directly (guarded by
// TestClusterOneServerMatchesSession).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// DefaultStripeSize is the stripe width used when NewCluster is given
// none: 64 KiB, the application chunk size of the scalability suites
// (so one figure-harness read maps to exactly one stripe).
const DefaultStripeSize = 64 * 1024

// Cluster stripes file data across several rfsrv servers, one Session
// per server, and replicates the namespace to all of them. It
// implements Client and Async, so every consumer of a Session — ORFS
// mounts, the ORFA library, the figures harness — runs over a server
// cluster unchanged.
type Cluster struct {
	sessions []*Session
	stripe   int64
	node     *hw.Node

	// replicas is the replication factor R: every stripe is written to
	// R consecutive servers. 1 (NewCluster's choice) stripes without
	// redundancy.
	replicas int

	// down marks servers excluded after an observed transport fault;
	// excluded servers are skipped by every path until Reinstate.
	down []bool

	// sizes caches the highest end-of-file this client has established
	// per inode, so overwrites below the known size skip the OpExtend
	// reconciliation round.
	sizes map[kernel.InodeID]int64

	// StripeReads and StripeWrites count data bytes issued per
	// direction; MetaFanout counts replicated metadata requests beyond
	// the first server; Extends counts OpExtend reconciliation
	// requests.
	StripeReads, StripeWrites, MetaFanout, Extends sim.Counter

	// Failovers counts operations re-routed to a replica after a fault
	// (Bytes carries the re-read data volume); Excluded counts servers
	// marked down.
	Failovers, Excluded sim.Counter
}

// NewCluster builds a striped cluster client over one Session per
// server. All sessions must live on the same client node and use
// distinct local endpoints (replies are demultiplexed by (seq,
// endpoint), so shared endpoints would cross-scatter). stripe is the
// stripe width in bytes — 0 selects DefaultStripeSize; it must be
// page-aligned (so page-granular consumers never split a page across
// servers) and at most MaxWriteChunk (so one stripe is one request).
func NewCluster(p *sim.Proc, sessions []*Session, stripe int) (*Cluster, error) {
	return NewReplicatedCluster(p, sessions, stripe, 1)
}

// NewReplicatedCluster is NewCluster with a replication factor: every
// stripe is written to replicas consecutive servers (1 <= replicas <=
// len(sessions)), reads prefer the stripe's primary and fail over to a
// replica when the primary's transport reports a fault, and replicas=1
// degenerates bit-identically to NewCluster. See the package comment
// on replication and faults.
func NewReplicatedCluster(p *sim.Proc, sessions []*Session, stripe, replicas int) (*Cluster, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("rfsrv: cluster needs at least one session")
	}
	if replicas < 1 || replicas > len(sessions) {
		return nil, fmt.Errorf("rfsrv: replication factor %d outside 1..%d", replicas, len(sessions))
	}
	if stripe == 0 {
		stripe = DefaultStripeSize
	}
	if stripe <= 0 || stripe%mem.PageSize != 0 {
		return nil, fmt.Errorf("rfsrv: stripe size %d is not a positive page multiple", stripe)
	}
	if stripe > MaxWriteChunk {
		return nil, fmt.Errorf("rfsrv: stripe size %d exceeds one %d-byte request", stripe, MaxWriteChunk)
	}
	node := sessions[0].Node()
	eps := make(map[uint8]bool)
	for _, s := range sessions {
		if s.Node() != node {
			return nil, fmt.Errorf("rfsrv: cluster sessions must share one client node")
		}
		ep := s.Client().myEP
		if eps[ep] {
			return nil, fmt.Errorf("rfsrv: cluster sessions share local endpoint %d", ep)
		}
		eps[ep] = true
	}
	return &Cluster{
		sessions: sessions,
		stripe:   int64(stripe),
		node:     node,
		replicas: replicas,
		down:     make([]bool, len(sessions)),
		sizes:    make(map[kernel.InodeID]int64),
	}, nil
}

// NumServers returns the number of servers data is striped across.
func (cl *Cluster) NumServers() int { return len(cl.sessions) }

// Replicas returns the replication factor R.
func (cl *Cluster) Replicas() int { return cl.replicas }

// StripeSize returns the stripe width in bytes.
func (cl *Cluster) StripeSize() int { return int(cl.stripe) }

// DownServers returns the indices of servers currently excluded after
// an observed fault, in server order.
func (cl *Cluster) DownServers() []int {
	var out []int
	for i, d := range cl.down {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Reinstate clears server i's exclusion after out-of-band recovery
// (e.g. its NIC was revived). It also drops the size cache: the
// reinstated server missed every reconciliation while excluded, so the
// next size-extending write must replay OpExtend everywhere — which is
// safe precisely because OpExtend is grow-only and idempotent.
//
// Namespace mutations are NOT replayable the same way: a server that
// missed creates/unlinks while excluded will answer homed lookups and
// getattrs with stale results the moment it is reinstated, with no
// divergence error until the next fanned-out mutation. The caller's
// contract is therefore: reinstate only a server whose namespace is
// known in sync — no mutations ran during the exclusion, or its
// backing store was resynchronized out of band.
func (cl *Cluster) Reinstate(i int) {
	if !cl.down[i] {
		return
	}
	cl.down[i] = false
	cl.sizes = make(map[kernel.InodeID]int64)
}

// markDown records a server as excluded after an observed fault.
func (cl *Cluster) markDown(i int) {
	if !cl.down[i] {
		cl.down[i] = true
		cl.Excluded.Add(0)
	}
}

// aliveCount returns the number of servers not excluded.
func (cl *Cluster) aliveCount() int {
	n := 0
	for _, d := range cl.down {
		if !d {
			n++
		}
	}
	return n
}

// Sessions returns the per-server sessions in server order (stats,
// tests).
func (cl *Cluster) Sessions() []*Session { return cl.sessions }

// Node implements Async: the client node.
func (cl *Cluster) Node() *hw.Node { return cl.node }

// Window implements Async: the aggregate window over all servers.
func (cl *Cluster) Window() int {
	n := 0
	for _, s := range cl.sessions {
		n += s.Window()
	}
	return n
}

// InFlight implements Async: outstanding requests over all servers.
func (cl *Cluster) InFlight() int {
	n := 0
	for _, s := range cl.sessions {
		n += s.InFlight()
	}
	return n
}

// CanStart implements Async: whether a data operation covering
// [off, off+n) could issue right now without blocking on window slots
// held by OTHER operations. It checks, per server, that the window has
// room for the range's runs — capped at the window size, because an
// operation needing more same-server slots than the window exists
// makes progress by retiring its own earlier runs (see StartRead), so
// what it requires from the caller is only that everyone else's slots
// are free. With replication the count covers every alive replica
// target of each run (what a write needs; reads need only one, so the
// answer is conservative — callers retire a little earlier, never
// deadlock).
func (cl *Cluster) CanStart(off int64, n int) bool {
	need := make([]int, len(cl.sessions))
	for _, r := range cl.runs(off, n) {
		for j := 0; j < cl.replicas; j++ {
			if idx := (r.owner + j) % len(cl.sessions); !cl.down[idx] {
				need[idx]++
			}
		}
	}
	for i, s := range cl.sessions {
		if need[i] == 0 {
			continue
		}
		if need[i] > s.Window() {
			need[i] = s.Window()
		}
		if s.InFlight()+need[i] > s.Window() {
			return false
		}
	}
	return true
}

// ---- placement ----

// mix is the splitmix64 finalizer: a cheap, well-distributed hash for
// home-server selection.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ownerIdx returns the server index owning the stripe containing off
// (the primary — replicas follow on the next R-1 servers, wrapping).
func (cl *Cluster) ownerIdx(off int64) int {
	return int((off / cl.stripe) % int64(len(cl.sessions)))
}

// readIdx returns the preferred read target for the stripe containing
// off: the primary when alive, else the first alive replica, else -1.
func (cl *Cluster) readIdx(off int64) int {
	owner := cl.ownerIdx(off)
	n := len(cl.sessions)
	for j := 0; j < cl.replicas; j++ {
		if k := (owner + j) % n; !cl.down[k] {
			return k
		}
	}
	return -1
}

// aliveFrom returns the first non-excluded server at or cyclically
// after i, or -1 when every server is excluded.
func (cl *Cluster) aliveFrom(i int) int {
	n := len(cl.sessions)
	for j := 0; j < n; j++ {
		if k := (i + j) % n; !cl.down[k] {
			return k
		}
	}
	return -1
}

// homeIdx returns the metadata home of an inode: the hashed server, or
// the next alive one when the hashed home is excluded.
func (cl *Cluster) homeIdx(ino kernel.InodeID) int {
	return cl.aliveFrom(int(mix(uint64(ino)) % uint64(len(cl.sessions))))
}

// pathHomeIdx returns the metadata home of a path component: the hash
// chains the directory's inode with the name (FNV-1a over the
// component), so sibling entries spread across servers. Excluded homes
// re-route to the next alive server, like homeIdx.
func (cl *Cluster) pathHomeIdx(dir kernel.InodeID, name string) int {
	h := mix(uint64(dir))
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return cl.aliveFrom(int(h % uint64(len(cl.sessions))))
}

// allReplicasDown is the error for a stripe whose every replica is
// excluded; it satisfies fabric.IsFault.
func (cl *Cluster) allReplicasDown(off int64) error {
	return fmt.Errorf("rfsrv: stripe at %d: all %d replicas excluded: %w",
		off, cl.replicas, fabric.ErrPeerDead)
}

// withReplica is the shared issue-time failover policy: run op against
// the preferred replica of the stripe containing off, excluding each
// target whose transport faults and retrying on the next alive
// replica; a non-fault error returns as produced. bytes is the data
// volume recorded per failover (0 for metadata-sized operations).
func withReplica[T any](cl *Cluster, off int64, bytes int, op func(idx int) (T, error)) (T, error) {
	for {
		idx := cl.readIdx(off)
		if idx < 0 {
			var zero T
			return zero, cl.allReplicasDown(off)
		}
		v, err := op(idx)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(idx)
			cl.Failovers.Add(bytes)
			continue
		}
		return v, err
	}
}

// degenerate runs a zero-length data operation against the offset's
// preferred replica, with the shared issue-time failover policy.
func (cl *Cluster) degenerate(p *sim.Proc, off int64, op func(idx int) (*Resp, error)) (*Resp, error) {
	resp, err := withReplica(cl, off, 0, op)
	if resp == nil && err != nil {
		resp = &Resp{Status: StatusOf(err)}
	}
	return resp, err
}

// OwnerServer returns the index of the server owning the stripe that
// contains byte offset off (stats, tests, placement-aware callers).
// The primary owner is reported even when that server is excluded
// (reads would route to a replica; see DownServers).
func (cl *Cluster) OwnerServer(off int64) int { return cl.ownerIdx(off) }

// HomeServer returns the index of the metadata home of an inode. The
// home shifts past excluded servers, so the answer changes as faults
// are observed; it is -1 only when every server is excluded.
func (cl *Cluster) HomeServer(ino kernel.InodeID) int { return cl.homeIdx(ino) }

// run is one contiguous byte range owned by a single server.
type run struct {
	owner int
	off   int64 // global file offset
	n     int
}

// runs splits [off, off+n) into maximal contiguous same-owner ranges,
// in offset order. With one server the whole range is a single run;
// with several, each stripe (fragment) is its own run.
func (cl *Cluster) runs(off int64, n int) []run {
	var out []run
	end := off + int64(n)
	for off < end {
		owner := cl.ownerIdx(off)
		cur := off
		for cur < end {
			stripeEnd := (cur/cl.stripe + 1) * cl.stripe
			if stripeEnd >= end {
				cur = end
				break
			}
			cur = stripeEnd
			if cl.ownerIdx(cur) != owner {
				break
			}
		}
		out = append(out, run{owner: owner, off: off, n: int(cur - off)})
		off = cur
	}
	return out
}

// ---- data path ----

// part is one per-server request of a striped operation.
type part struct {
	pd     *Pending
	r      run
	want   int         // expected byte count (writes)
	ridx   int         // index of the run this part belongs to
	target int         // server the request was issued to
	vec    core.Vector // destination slice (reads: kept for failover reissue)
	resp   *Resp
	err    error
	done   bool
}

// retire waits the part once and memoizes its outcome.
func (pt *part) retire(p *sim.Proc) {
	if pt.done {
		return
	}
	pt.resp, pt.err = pt.pd.Wait(p)
	pt.done = true
}

// makeRoom retires outstanding parts oldest-first until session s can
// accept one more request — the cross-server analogue of Session's
// window backpressure. parts complete out of order on the wire, so
// waiting the oldest always makes progress.
func makeRoom(p *sim.Proc, s *Session, parts []*part) {
	for _, pt := range parts {
		if s.InFlight() < s.Window() {
			return
		}
		pt.retire(p)
	}
}

// mergeAttr picks the authoritative attributes out of per-server
// responses: the largest size wins (a data server that holds the tail
// stripe knows more of the file than one that does not).
func mergeAttr(parts []*part) kernel.Attr {
	var attr kernel.Attr
	for _, pt := range parts {
		if pt.resp != nil && (attr.Ino == 0 || pt.resp.Attr.Size > attr.Size) {
			attr = pt.resp.Attr
		}
	}
	return attr
}

// firstError returns the first per-server failure in offset order.
func firstError(parts []*part) error {
	for _, pt := range parts {
		if pt.err != nil {
			return pt.err
		}
	}
	return nil
}

// firstAppError returns the first non-fault failure in offset order —
// application-level errors always abort, while transport faults are
// the replication layer's to absorb.
func firstAppError(parts []*part) error {
	for _, pt := range parts {
		if pt.err != nil && !fabric.IsFault(pt.err) {
			return pt.err
		}
	}
	return nil
}

// issueRead starts one run's read on the stripe's preferred replica,
// failing over synchronously when the transport rejects the send (dead
// peer). parts are this operation's earlier issues, retired by
// makeRoom when the target's window is full.
func (cl *Cluster) issueRead(p *sim.Proc, ino kernel.InodeID, r run, vec core.Vector, parts []*part) (*part, error) {
	return withReplica(cl, r.off, r.n, func(idx int) (*part, error) {
		s := cl.sessions[idx]
		makeRoom(p, s, parts)
		pd, err := s.startRead(p, ino, r.off, vec)
		if err != nil {
			return nil, err
		}
		cl.StripeReads.Add(r.n)
		return &part{pd: pd, r: r, target: idx, vec: vec}, nil
	})
}

// failoverReads retries, in offset order, every read part that failed
// with a transport fault, re-reading it from the next alive replica of
// its stripe (the faulting server is excluded first). Retries travel
// the replica's synchronous control path — NOT a window slot: failover
// runs inside some PendingOp.Wait, while the caller's other unretired
// pendings may legitimately hold every slot of the surviving servers,
// so a slot-bound retry could deadlock against its own pipeline. A
// part whose every replica is excluded keeps its fault error.
func (cl *Cluster) failoverReads(p *sim.Proc, ino kernel.InodeID, parts []*part) {
	for _, pt := range parts {
		for pt.err != nil && fabric.IsFault(pt.err) {
			cl.markDown(pt.target)
			idx := cl.readIdx(pt.r.off)
			if idx < 0 {
				break // every replica gone; the fault stands
			}
			cl.Failovers.Add(pt.r.n)
			pt.target = idx
			pt.resp, pt.err = cl.sessions[idx].Client().Read(p, ino, pt.r.off, pt.vec)
			if pt.err == nil {
				cl.StripeReads.Add(pt.r.n)
			}
		}
	}
}

// Read implements Client: the range splits into per-server runs issued
// in parallel through each server's window; data lands directly in the
// caller's vector (each run scatters into its own slice of dst, so
// striping adds no copies). The merged byte count is the contiguous
// prefix before the first server-clipped (EOF) run. A run whose target
// faults is re-read from the stripe's next alive replica; only a run
// with no replicas left fails the read.
func (cl *Cluster) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	total := dst.TotalLen()
	if total == 0 {
		// Degenerate read: one attr-only round trip to the offset's
		// preferred replica, failing over like any other data path.
		return cl.degenerate(p, off, func(idx int) (*Resp, error) {
			return cl.sessions[idx].Read(p, ino, off, dst)
		})
	}
	var parts []*part
	for _, r := range cl.runs(off, total) {
		pt, err := cl.issueRead(p, ino, r, dst.Slice(int(r.off-off), r.n), parts)
		if err != nil {
			drainParts(p, parts)
			return &Resp{Status: StatusOf(err)}, err
		}
		parts = append(parts, pt)
	}
	for _, pt := range parts {
		pt.retire(p)
	}
	cl.failoverReads(p, ino, parts)
	if err := firstError(parts); err != nil {
		return &Resp{Status: StatusOf(err), Attr: mergeAttr(parts)}, err
	}
	return mergeRead(parts), nil
}

// mergeRead folds per-run read responses into one: byte count is the
// contiguous prefix, attributes are the authoritative merge.
func mergeRead(parts []*part) *Resp {
	n := 0
	for _, pt := range parts {
		n += int(pt.resp.N)
		if int(pt.resp.N) < pt.r.n {
			break // EOF inside this run; later runs are past the end
		}
	}
	return &Resp{Status: StOK, Attr: mergeAttr(parts), N: uint32(n)}
}

// drainParts retires every part, discarding results — the error path.
// Without it an early return would leak window slots.
func drainParts(p *sim.Proc, parts []*part) {
	for _, pt := range parts {
		pt.retire(p)
	}
}

// Write implements Client: runs are chunked at MaxWriteChunk and
// pipelined across the per-server windows — each run to its primary
// and, with replication, to the next R-1 alive servers; after a write
// that extends the file, grow-only OpExtend requests reconcile every
// other server's local size (see the package comment on size
// reconciliation). A replica that faults mid-write is excluded; the
// write succeeds as long as every run kept at least one clean replica.
func (cl *Cluster) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	total := src.TotalLen()
	if total == 0 {
		// Degenerate write: like the degenerate read, with failover.
		return cl.degenerate(p, off, func(idx int) (*Resp, error) {
			return cl.sessions[idx].Write(p, ino, off, src)
		})
	}
	runs := cl.runs(off, total)
	var parts []*part
	fail := func(err error) (*Resp, error) {
		drainParts(p, parts)
		return &Resp{Status: StatusOf(err)}, err
	}
	var tailTargets []int
	for ri, r := range runs {
		var targets []int
		for j := 0; j < cl.replicas; j++ {
			idx := (r.owner + j) % len(cl.sessions)
			if cl.down[idx] {
				continue
			}
			s := cl.sessions[idx]
			faulted := false
			// Runs longer than one request (only possible with a single
			// server, where all stripes merge) chunk exactly like
			// Session.Write does.
			for done := 0; done < r.n; {
				chunk := r.n - done
				if chunk > MaxWriteChunk {
					chunk = MaxWriteChunk
				}
				makeRoom(p, s, parts)
				at := r.off + int64(done)
				pd, err := s.startWrite(p, ino, at, src.Slice(int(at-off), chunk))
				if err != nil {
					if fabric.IsFault(err) {
						cl.markDown(idx)
						faulted = true
						break // this replica is lost; others may carry the run
					}
					return fail(err)
				}
				cl.StripeWrites.Add(chunk)
				parts = append(parts, &part{
					pd: pd, r: run{owner: r.owner, off: at, n: chunk},
					want: chunk, ridx: ri, target: idx,
				})
				done += chunk
			}
			if !faulted {
				targets = append(targets, idx)
			}
		}
		if len(targets) == 0 {
			return fail(cl.allReplicasDown(r.off))
		}
		if ri == len(runs)-1 {
			tailTargets = targets
		}
	}
	for _, pt := range parts {
		pt.retire(p)
	}
	resp, err := cl.finishWriteParts(runs, parts, total)
	if err != nil {
		return resp, err
	}
	if err := cl.extendTo(p, ino, off+int64(total), tailTargets); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return resp, nil
}

// finishWriteParts is the shared epilogue of the two replicated write
// paths (Cluster.Write and clusterPending.Wait); every part must
// already be retired. Transport faults exclude their server; a
// non-fault error or a clean-but-short chunk aborts (a short chunk at
// a fixed offset is a hole, not a prefix, exactly like Session.Write's
// pipelined path — faulted parts carry no response and are judged by
// run coverage instead); otherwise every run must retain one replica
// all of whose chunks are clean. On success the merged response covers
// all `total` logical bytes.
func (cl *Cluster) finishWriteParts(runs []run, parts []*part, total int) (*Resp, error) {
	for _, pt := range parts {
		if pt.err != nil && fabric.IsFault(pt.err) {
			cl.markDown(pt.target)
		}
	}
	if err := firstAppError(parts); err != nil {
		return &Resp{Status: StatusOf(err), Attr: mergeAttr(parts)}, err
	}
	for _, pt := range parts {
		if pt.err == nil && int(pt.resp.N) != pt.want {
			err := fmt.Errorf("rfsrv: short striped write (%d of %d) at %d", pt.resp.N, pt.want, pt.r.off)
			return &Resp{Status: StIO, Attr: mergeAttr(parts)}, err
		}
	}
	if err := cl.checkRunCoverage(runs, parts); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return &Resp{Status: StOK, Attr: mergeAttr(parts), N: uint32(total)}, nil
}

// checkRunCoverage verifies, after a replicated write's parts retired,
// that every run retains at least one replica all of whose chunks
// completed cleanly. Parts that faulted mark their (run, target) pair
// dirty; a run covered by no clean pair has lost its data.
func (cl *Cluster) checkRunCoverage(runs []run, parts []*part) error {
	type pair struct{ ridx, target int }
	dirty := make(map[pair]bool)
	for _, pt := range parts {
		if pt.err != nil {
			dirty[pair{pt.ridx, pt.target}] = true
		}
	}
	covered := make([]bool, len(runs))
	for _, pt := range parts {
		if pt.err == nil && !dirty[pair{pt.ridx, pt.target}] {
			covered[pt.ridx] = true
		}
	}
	for ri, ok := range covered {
		if !ok {
			return fmt.Errorf("rfsrv: write run at %d lost on every replica: %w",
				runs[ri].off, fabric.ErrPeerDead)
		}
	}
	return nil
}

// extendTo reconciles file size after a write ending at end: every
// server except the tail run's own targets (whose local sizes already
// reach end) and the excluded ones gets a grow-only OpExtend. Skipped
// entirely when this client has already established a size >= end, and
// always a no-op on a one-server cluster. A server that faults during
// reconciliation is excluded — not an error: the alive servers are
// consistent, which is all the cache records. Because OpExtend is
// grow-only and idempotent, a retry after a transient fault (write
// re-run, or Reinstate then write) replays it safely in any order.
func (cl *Cluster) extendTo(p *sim.Proc, ino kernel.InodeID, end int64, tailTargets []int) error {
	if cl.sizes[ino] >= end {
		return nil
	}
	isTail := make(map[int]bool, len(tailTargets))
	for _, t := range tailTargets {
		isTail[t] = true
	}
	var flights []*syncMetaFlight
	var targets []int
	var firstErr error
	for i, s := range cl.sessions {
		if isTail[i] || cl.down[i] {
			continue
		}
		cl.Extends.Add(1)
		fl, err := startSyncMeta(p, s, &Req{Op: OpExtend, Ino: ino, Off: end})
		if err != nil {
			if fabric.IsFault(err) {
				cl.markDown(i)
				continue
			}
			firstErr = err
			break
		}
		flights = append(flights, fl)
		targets = append(targets, i)
	}
	for k, fl := range flights {
		if _, err := fl.wait(p); err != nil {
			if fabric.IsFault(err) {
				cl.markDown(targets[k])
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	cl.sizes[ino] = end
	return nil
}

// ---- pipelined data path (Async) ----

// clusterPending is one striped in-flight operation: the per-server
// parts of a single logical read or write.
type clusterPending struct {
	cl     *Cluster
	ino    kernel.InodeID
	parts  []*part
	runs   []run // the logical runs (writes: replica coverage check)
	want   int   // expected total (writes; -1 for reads)
	issued sim.Time

	done bool
	resp *Resp
	err  error
}

// Wait implements PendingOp: retires every part and merges. Faulted
// read parts fail over to their stripe's next alive replica before the
// merge; faulted write parts exclude their server and are tolerated as
// long as every run kept a clean replica.
func (cp *clusterPending) Wait(p *sim.Proc) (*Resp, error) {
	if cp.done {
		return cp.resp, cp.err
	}
	cp.done = true
	for _, pt := range cp.parts {
		pt.retire(p)
	}
	if cp.want < 0 {
		cp.cl.failoverReads(p, cp.ino, cp.parts)
		if err := firstError(cp.parts); err != nil {
			cp.resp, cp.err = &Resp{Status: StatusOf(err), Attr: mergeAttr(cp.parts)}, err
			return cp.resp, cp.err
		}
		cp.resp = mergeRead(cp.parts)
		return cp.resp, cp.err
	}
	cp.resp, cp.err = cp.cl.finishWriteParts(cp.runs, cp.parts, cp.want)
	return cp.resp, cp.err
}

// Issued implements PendingOp: the time the first per-server request
// entered its window — the same instant a Session would report for the
// same operation, keeping latency accounting bit-identical in the
// one-server configuration.
func (cp *clusterPending) Issued() sim.Time {
	if len(cp.parts) > 0 {
		return cp.parts[0].pd.issued
	}
	return cp.issued
}

// StartRead implements Async: the striped read issues without waiting.
// Callers holding unretired pendings must consult CanStart first (see
// the Async contract) — the per-server issues here block on their own
// windows.
func (cl *Cluster) StartRead(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (PendingOp, error) {
	if off < 0 {
		return nil, ErrInval
	}
	total := dst.TotalLen()
	cp := &clusterPending{cl: cl, ino: ino, want: -1, issued: p.Now()}
	if total == 0 {
		// Zero-length read: one attr-only request to the offset's
		// preferred replica, like the synchronous Read path — with the
		// same issue-time failover (Wait-time faults fail over through
		// failoverReads like any other part).
		pt, err := withReplica(cl, off, 0, func(idx int) (*part, error) {
			pd, err := cl.sessions[idx].startRead(p, ino, off, dst)
			if err != nil {
				return nil, err
			}
			return &part{pd: pd, r: run{owner: cl.ownerIdx(off), off: off}, target: idx, vec: dst}, nil
		})
		if err != nil {
			return nil, err
		}
		cp.parts = append(cp.parts, pt)
		return cp, nil
	}
	for _, r := range cl.runs(off, total) {
		// An operation spanning more same-server stripes than that
		// server's window retires its own earlier runs to make room
		// (inside issueRead) — it must never depend on the caller, who
		// cannot retire a pending it has not been handed yet.
		pt, err := cl.issueRead(p, ino, r, dst.Slice(int(r.off-off), r.n), cp.parts)
		if err != nil {
			drainParts(p, cp.parts)
			return nil, err
		}
		cp.parts = append(cp.parts, pt)
	}
	return cp, nil
}

// StartWrite implements Async: one striped write request of at most
// MaxWriteChunk, issued without waiting. Unlike the synchronous Write
// it does not reconcile sizes across servers — asynchronous writers
// (ORFS write-behind) track EOF themselves and their dirty data is
// re-readable from the servers that own it.
func (cl *Cluster) StartWrite(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (PendingOp, error) {
	if off < 0 {
		return nil, ErrInval
	}
	total := src.TotalLen()
	if total > MaxWriteChunk {
		return nil, fmt.Errorf("rfsrv: StartWrite of %d bytes exceeds one %d-byte request", total, MaxWriteChunk)
	}
	runs := cl.runs(off, total)
	cp := &clusterPending{cl: cl, ino: ino, runs: runs, want: total, issued: p.Now()}
	if total == 0 {
		// Zero-length write: one real request to the offset's preferred
		// replica, like the synchronous degenerate path (so the RPC
		// trace and the returned attributes match Session.StartWrite).
		// The synthetic run makes finishWriteParts' coverage check see
		// a Wait-time fault instead of vacuously succeeding.
		r := run{owner: cl.ownerIdx(off), off: off}
		cp.runs = []run{r}
		pt, err := withReplica(cl, off, 0, func(idx int) (*part, error) {
			pd, err := cl.sessions[idx].startWrite(p, ino, off, src)
			if err != nil {
				return nil, err
			}
			return &part{pd: pd, r: r, target: idx}, nil
		})
		if err != nil {
			return nil, err
		}
		cp.parts = append(cp.parts, pt)
		return cp, nil
	}
	for ri, r := range runs {
		issued := 0
		for j := 0; j < cl.replicas; j++ {
			idx := (r.owner + j) % len(cl.sessions)
			if cl.down[idx] {
				continue
			}
			s := cl.sessions[idx]
			makeRoom(p, s, cp.parts)
			pd, err := s.startWrite(p, ino, r.off, src.Slice(int(r.off-off), r.n))
			if err != nil {
				if fabric.IsFault(err) {
					cl.markDown(idx)
					continue
				}
				drainParts(p, cp.parts)
				return nil, err
			}
			cl.StripeWrites.Add(r.n)
			cp.parts = append(cp.parts, &part{pd: pd, r: r, want: r.n, ridx: ri, target: idx})
			issued++
		}
		if issued == 0 {
			drainParts(p, cp.parts)
			return nil, cl.allReplicasDown(r.off)
		}
	}
	// The size cache is deliberately NOT updated here: sizes[ino]
	// records "every server reconciled to this size", and an async
	// write extends only the servers its runs touch. The next
	// synchronous Write past this end runs extendTo as usual.
	return cp, nil
}

// ---- metadata path ----

// cloneReq copies a request so per-server sequence stamping never
// mutates a caller's (or a sibling server's) request.
func cloneReq(req *Req) *Req {
	r := *req
	return &r
}

// syncMetaFlight is one in-flight metadata request on a server's
// synchronous control path.
type syncMetaFlight struct {
	c     *FabricClient
	hdrOp fabric.Op
	seq   uint64
}

// startSyncMeta issues a metadata request through s's underlying
// synchronous client — its private control buffers, NOT a window slot.
// This is what makes cluster metadata deadlock-free: a consumer whose
// striped reads or writes hold every window slot of some server
// (ORFS readahead can legitimately do this) can still look up, stat
// and reconcile, because metadata never waits on the data windows.
func startSyncMeta(p *sim.Proc, s *Session, req *Req) (*syncMetaFlight, error) {
	c := s.c
	c.lock.Acquire(p)
	c.seq++
	req.Seq, req.EP = c.seq, c.myEP
	hdrOp, err := c.postHdr(p, &c.ctl, req.Seq)
	if err != nil {
		c.lock.Release()
		return nil, err
	}
	if err := c.sendReq(p, &c.ctl, req, nil); err != nil {
		// The request never left (e.g. dead-peer rejection): withdraw
		// the posted header receive so the control buffer is quiescent
		// for the next requester.
		fabric.Cancel(p, hdrOp)
		c.lock.Release()
		return nil, err
	}
	return &syncMetaFlight{c: c, hdrOp: hdrOp, seq: req.Seq}, nil
}

// wait retires the flight and releases the control path.
func (fl *syncMetaFlight) wait(p *sim.Proc) (*Resp, error) {
	defer fl.c.lock.Release()
	return fl.c.finish(p, &fl.c.ctl, fl.hdrOp, fl.seq, fl.c.timeout)
}

// syncMeta is one synchronous metadata round trip to server idx.
func (cl *Cluster) syncMeta(p *sim.Proc, idx int, req *Req) (*Resp, error) {
	fl, err := startSyncMeta(p, cl.sessions[idx], req)
	if err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return fl.wait(p)
}

// Meta implements Client. Read-only operations go to the home server
// (re-homed past excluded servers, and failed over when the home
// faults mid-request); mutations replicate to every alive server in
// server order, and the per-server answers must agree (same status,
// same inode) or the cluster reports namespace divergence — a faulting
// server is excluded, never counted as divergent.
func (cl *Cluster) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	if err := ValidateReq(req); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	switch req.Op {
	case OpRead, OpWrite:
		return &Resp{Status: StInval}, ErrInval
	case OpLookup:
		// Read-only answers deliberately do NOT feed the size cache:
		// sizes[ino] means "every server reconciled to this size", and a
		// single server's view (e.g. the home after an async StartWrite
		// that extended only its own stripes) cannot establish that —
		// caching it would silently disable the next write's extendTo.
		return cl.homedMeta(p, req, func() int { return cl.pathHomeIdx(req.Ino, req.Name) })
	case OpGetattr, OpReaddir:
		return cl.homedMeta(p, req, func() int { return cl.homeIdx(req.Ino) })
	default:
		return cl.fanout(p, req)
	}
}

// homedMeta runs a read-only metadata request against its home server,
// excluding the home and re-homing (the hash walks to the next alive
// server) whenever the transport faults. home is re-evaluated per
// attempt because exclusion changes the routing.
func (cl *Cluster) homedMeta(p *sim.Proc, req *Req, home func() int) (*Resp, error) {
	for {
		idx := home()
		if idx < 0 {
			err := fmt.Errorf("rfsrv: %v: every server excluded: %w", req.Op, fabric.ErrPeerDead)
			return &Resp{Status: StatusOf(err)}, err
		}
		resp, err := cl.syncMeta(p, idx, req)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(idx)
			cl.Failovers.Add(0)
			continue
		}
		return resp, err
	}
}

// fanout replicates a namespace mutation to every alive server in
// parallel (each server's synchronous control path; see startSyncMeta)
// and verifies the answers agree. With one server it is exactly one
// synchronous metadata round trip. A server that faults mid-mutation
// is recorded as excluded — its missing answer is a degraded-mode
// fact, not namespace divergence; it must re-sync before Reinstate.
func (cl *Cluster) fanout(p *sim.Proc, req *Req) (*Resp, error) {
	if len(cl.sessions) == 1 {
		resp, err := cl.syncMeta(p, 0, req)
		cl.noteMutation(req, resp, err)
		return resp, err
	}
	flights := make([]*syncMetaFlight, 0, len(cl.sessions))
	targets := make([]int, 0, len(cl.sessions))
	var firstErr error
	for i, s := range cl.sessions {
		if cl.down[i] {
			continue
		}
		if len(flights) > 0 {
			cl.MetaFanout.Add(1)
		}
		fl, err := startSyncMeta(p, s, cloneReq(req))
		if err != nil {
			if fabric.IsFault(err) {
				cl.markDown(i)
				continue
			}
			firstErr = err
			break
		}
		flights = append(flights, fl)
		targets = append(targets, i)
	}
	resps := make([]*Resp, 0, len(flights))
	for k, fl := range flights {
		r, err := fl.wait(p)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(targets[k])
			continue // excluded, not divergent
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		resps = append(resps, r)
	}
	if len(resps) == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("rfsrv: %v: every server excluded: %w", req.Op, fabric.ErrPeerDead)
		}
		return &Resp{Status: StatusOf(firstErr)}, firstErr
	}
	base := resps[0]
	for _, r := range resps[1:] {
		if r == nil || base == nil {
			continue
		}
		if r.Status != base.Status || r.Attr.Ino != base.Attr.Ino {
			err := fmt.Errorf("rfsrv: cluster namespace diverged on %v %q (status %d/ino %d vs %d/%d)",
				req.Op, req.Name, base.Status, base.Attr.Ino, r.Status, r.Attr.Ino)
			return &Resp{Status: StIO}, err
		}
	}
	cl.noteMutation(req, base, firstErr)
	return base, firstErr
}

// noteMutation updates the size cache after a replicated mutation.
func (cl *Cluster) noteMutation(req *Req, resp *Resp, err error) {
	if err != nil || resp == nil {
		return
	}
	switch req.Op {
	case OpCreate:
		cl.sizes[resp.Attr.Ino] = resp.Attr.Size
	case OpTruncate:
		cl.sizes[req.Ino] = req.Off // exact: truncate may shrink
	case OpExtend:
		if req.Off > cl.sizes[req.Ino] {
			cl.sizes[req.Ino] = req.Off
		}
	}
}

// MetaBatch implements Async: requests route like Meta (read-only to
// their homes, mutations to every server) and each server's share is
// issued as one combined batch in original order, so the §3.3-style
// combining survives striping. Server batches run one server at a
// time; with one server this is exactly Session.MetaBatch. Unlike
// Meta, batches flow through the per-server windows (that is what
// combines them), so callers must not hold unretired data pendings
// across a MetaBatch call. Batches route around already-excluded
// servers but do not retry mid-batch faults — a fault surfaces as the
// batch's error and the caller re-issues (Meta retries per request).
func (cl *Cluster) MetaBatch(p *sim.Proc, reqs []*Req) ([]*Resp, error) {
	for _, r := range reqs {
		if r.Op == OpRead || r.Op == OpWrite {
			return nil, fmt.Errorf("rfsrv: MetaBatch cannot carry %v", r.Op)
		}
		if err := ValidateReq(r); err != nil {
			return nil, err
		}
	}
	if cl.aliveCount() == 0 {
		return nil, fmt.Errorf("rfsrv: MetaBatch: every server excluded: %w", fabric.ErrPeerDead)
	}
	if len(cl.sessions) == 1 {
		return cl.sessions[0].MetaBatch(p, reqs)
	}
	type share struct {
		idx  []int // original positions
		reqs []*Req
	}
	shares := make([]share, len(cl.sessions))
	mutation := make([]bool, len(reqs))
	for i, r := range reqs {
		switch r.Op {
		case OpLookup:
			h := cl.pathHomeIdx(r.Ino, r.Name)
			shares[h].idx = append(shares[h].idx, i)
			shares[h].reqs = append(shares[h].reqs, r)
		case OpGetattr, OpReaddir:
			h := cl.homeIdx(r.Ino)
			shares[h].idx = append(shares[h].idx, i)
			shares[h].reqs = append(shares[h].reqs, r)
		default:
			mutation[i] = true
			first := true
			for s := range cl.sessions {
				if cl.down[s] {
					continue
				}
				if !first {
					cl.MetaFanout.Add(1)
				}
				first = false
				shares[s].idx = append(shares[s].idx, i)
				shares[s].reqs = append(shares[s].reqs, cloneReq(r))
			}
		}
	}
	out := make([]*Resp, len(reqs))
	for s, sh := range shares {
		if len(sh.reqs) == 0 {
			continue
		}
		resps, err := cl.sessions[s].MetaBatch(p, sh.reqs)
		for i, r := range resps {
			pos := sh.idx[i]
			if out[pos] == nil {
				out[pos] = r
			} else if r != nil && (r.Status != out[pos].Status || r.Attr.Ino != out[pos].Attr.Ino) {
				return out, fmt.Errorf("rfsrv: cluster namespace diverged in batch at %d", pos)
			}
		}
		if err != nil {
			// A faulting server is excluded like on every other path, so
			// the caller's re-issued batch routes around it.
			if fabric.IsFault(err) {
				cl.markDown(s)
			}
			return out, err
		}
	}
	// Apply cache updates in request order: a batch may carry several
	// mutations of one inode (extend then truncate), and the LAST one
	// must win, exactly as the servers applied them.
	for pos, r := range reqs {
		if mutation[pos] && out[pos] != nil {
			cl.noteMutation(r, out[pos], nil)
		}
	}
	return out, nil
}

var _ Client = (*Cluster)(nil)
