package rfsrv

// This file is the striped cluster client: one rfsrv.Client that
// shards file data across several servers, each reached through its
// own Session. It is the repository's answer to the single-link
// ceiling PR 2 ran into — one server's 250 MB/s link caps aggregate
// throughput no matter how deep the window — and the first step toward
// the ROADMAP's aggregate-capacity north star.
//
// Layout. File bytes are split into fixed-size stripes (64 KiB by
// default) placed round-robin: stripe k of every file lives on server
// k mod N, *at its global offset* (server files are sparse — each
// server's copy holds only the stripes it owns, with its local size
// covering the bytes it has seen). Reads and writes split into
// per-server contiguous runs, issue in parallel through each server's
// session window, and merge completions through the existing
// seq-tagged demux — the cluster adds no new wire mechanism.
//
// Metadata. The namespace is replicated: every mutation (create,
// mkdir, unlink, rmdir, truncate, extend) fans out to all servers in
// server order, and because the backing filesystems allocate inode
// numbers deterministically, the same mutation stream yields the same
// inode numbers everywhere (the cluster verifies this and reports
// divergence as an I/O error). Read-only metadata (lookup, getattr,
// readdir) is served by a single *home* server chosen by hashing the
// path component (directory inode + name) or the inode, spreading
// metadata load without a directory service.
//
// Size reconciliation. A write's tail may land away from a file's
// metadata home, leaving the home's (and other data servers') local
// size short of the true end of file. After each synchronous Write
// that extends a file, the cluster replays a grow-only OpExtend to
// every other server, so any server's local size — and thus any homed
// getattr, and the EOF clipping of any striped read — reflects the
// true size. Asynchronous StartWrite skips this reconciliation (its
// callers, like ORFS write-behind, track EOF themselves); the
// metadata-home-vs-data-server tests pin down what is and is not
// guaranteed.
//
// Ordering and failure semantics. A Cluster is used from one simulated
// process at a time, like the Session it is built from. Metadata
// travels on each server's synchronous control path, never a window
// slot, so it can always proceed while striped data operations hold
// every slot (the cluster analogue of the session's one-free-slot
// discipline). Operations return when every fanned-out part has
// completed; the first error wins and the rest are drained, so window
// slots never leak. A striped
// read's byte count is the contiguous prefix served before the first
// server-clipped (EOF) part; bytes past it are undefined, exactly like
// a short read on the plain protocol.
//
// With one server the cluster degenerates exactly: every stripe is one
// contiguous run on server 0, every metadata route resolves to server
// 0, and no reconciliation traffic is sent, so the issued RPC sequence
// — and therefore the simulated timing — is bit-identical to driving
// the underlying Session directly (guarded by
// TestClusterOneServerMatchesSession).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// DefaultStripeSize is the stripe width used when NewCluster is given
// none: 64 KiB, the application chunk size of the scalability suites
// (so one figure-harness read maps to exactly one stripe).
const DefaultStripeSize = 64 * 1024

// Cluster stripes file data across several rfsrv servers, one Session
// per server, and replicates the namespace to all of them. It
// implements Client and Async, so every consumer of a Session — ORFS
// mounts, the ORFA library, the figures harness — runs over a server
// cluster unchanged.
type Cluster struct {
	sessions []*Session
	stripe   int64
	node     *hw.Node

	// sizes caches the highest end-of-file this client has established
	// per inode, so overwrites below the known size skip the OpExtend
	// reconciliation round.
	sizes map[kernel.InodeID]int64

	// StripeReads and StripeWrites count data bytes issued per
	// direction; MetaFanout counts replicated metadata requests beyond
	// the first server; Extends counts OpExtend reconciliation
	// requests.
	StripeReads, StripeWrites, MetaFanout, Extends sim.Counter
}

// NewCluster builds a striped cluster client over one Session per
// server. All sessions must live on the same client node and use
// distinct local endpoints (replies are demultiplexed by (seq,
// endpoint), so shared endpoints would cross-scatter). stripe is the
// stripe width in bytes — 0 selects DefaultStripeSize; it must be
// page-aligned (so page-granular consumers never split a page across
// servers) and at most MaxWriteChunk (so one stripe is one request).
func NewCluster(p *sim.Proc, sessions []*Session, stripe int) (*Cluster, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("rfsrv: cluster needs at least one session")
	}
	if stripe == 0 {
		stripe = DefaultStripeSize
	}
	if stripe <= 0 || stripe%mem.PageSize != 0 {
		return nil, fmt.Errorf("rfsrv: stripe size %d is not a positive page multiple", stripe)
	}
	if stripe > MaxWriteChunk {
		return nil, fmt.Errorf("rfsrv: stripe size %d exceeds one %d-byte request", stripe, MaxWriteChunk)
	}
	node := sessions[0].Node()
	eps := make(map[uint8]bool)
	for _, s := range sessions {
		if s.Node() != node {
			return nil, fmt.Errorf("rfsrv: cluster sessions must share one client node")
		}
		ep := s.Client().myEP
		if eps[ep] {
			return nil, fmt.Errorf("rfsrv: cluster sessions share local endpoint %d", ep)
		}
		eps[ep] = true
	}
	return &Cluster{
		sessions: sessions,
		stripe:   int64(stripe),
		node:     node,
		sizes:    make(map[kernel.InodeID]int64),
	}, nil
}

// NumServers returns the number of servers data is striped across.
func (cl *Cluster) NumServers() int { return len(cl.sessions) }

// StripeSize returns the stripe width in bytes.
func (cl *Cluster) StripeSize() int { return int(cl.stripe) }

// Sessions returns the per-server sessions in server order (stats,
// tests).
func (cl *Cluster) Sessions() []*Session { return cl.sessions }

// Node implements Async: the client node.
func (cl *Cluster) Node() *hw.Node { return cl.node }

// Window implements Async: the aggregate window over all servers.
func (cl *Cluster) Window() int {
	n := 0
	for _, s := range cl.sessions {
		n += s.Window()
	}
	return n
}

// InFlight implements Async: outstanding requests over all servers.
func (cl *Cluster) InFlight() int {
	n := 0
	for _, s := range cl.sessions {
		n += s.InFlight()
	}
	return n
}

// CanStart implements Async: whether a data operation covering
// [off, off+n) could issue right now without blocking on window slots
// held by OTHER operations. It checks, per server, that the window has
// room for the range's runs — capped at the window size, because an
// operation needing more same-server slots than the window exists
// makes progress by retiring its own earlier runs (see StartRead), so
// what it requires from the caller is only that everyone else's slots
// are free.
func (cl *Cluster) CanStart(off int64, n int) bool {
	need := make([]int, len(cl.sessions))
	for _, r := range cl.runs(off, n) {
		need[r.owner]++
	}
	for i, s := range cl.sessions {
		if need[i] == 0 {
			continue
		}
		if need[i] > s.Window() {
			need[i] = s.Window()
		}
		if s.InFlight()+need[i] > s.Window() {
			return false
		}
	}
	return true
}

// ---- placement ----

// mix is the splitmix64 finalizer: a cheap, well-distributed hash for
// home-server selection.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ownerIdx returns the server index owning the stripe containing off.
func (cl *Cluster) ownerIdx(off int64) int {
	return int((off / cl.stripe) % int64(len(cl.sessions)))
}

// homeIdx returns the metadata home of an inode.
func (cl *Cluster) homeIdx(ino kernel.InodeID) int {
	return int(mix(uint64(ino)) % uint64(len(cl.sessions)))
}

// pathHomeIdx returns the metadata home of a path component: the hash
// chains the directory's inode with the name (FNV-1a over the
// component), so sibling entries spread across servers.
func (cl *Cluster) pathHomeIdx(dir kernel.InodeID, name string) int {
	h := mix(uint64(dir))
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return int(h % uint64(len(cl.sessions)))
}

// OwnerServer returns the index of the server owning the stripe that
// contains byte offset off (stats, tests, placement-aware callers).
func (cl *Cluster) OwnerServer(off int64) int { return cl.ownerIdx(off) }

// HomeServer returns the index of the metadata home of an inode.
func (cl *Cluster) HomeServer(ino kernel.InodeID) int { return cl.homeIdx(ino) }

// run is one contiguous byte range owned by a single server.
type run struct {
	owner int
	off   int64 // global file offset
	n     int
}

// runs splits [off, off+n) into maximal contiguous same-owner ranges,
// in offset order. With one server the whole range is a single run;
// with several, each stripe (fragment) is its own run.
func (cl *Cluster) runs(off int64, n int) []run {
	var out []run
	end := off + int64(n)
	for off < end {
		owner := cl.ownerIdx(off)
		cur := off
		for cur < end {
			stripeEnd := (cur/cl.stripe + 1) * cl.stripe
			if stripeEnd >= end {
				cur = end
				break
			}
			cur = stripeEnd
			if cl.ownerIdx(cur) != owner {
				break
			}
		}
		out = append(out, run{owner: owner, off: off, n: int(cur - off)})
		off = cur
	}
	return out
}

// ---- data path ----

// part is one per-server request of a striped operation.
type part struct {
	pd   *Pending
	r    run
	want int // expected byte count (writes)
	resp *Resp
	err  error
	done bool
}

// retire waits the part once and memoizes its outcome.
func (pt *part) retire(p *sim.Proc) {
	if pt.done {
		return
	}
	pt.resp, pt.err = pt.pd.Wait(p)
	pt.done = true
}

// makeRoom retires outstanding parts oldest-first until session s can
// accept one more request — the cross-server analogue of Session's
// window backpressure. parts complete out of order on the wire, so
// waiting the oldest always makes progress.
func makeRoom(p *sim.Proc, s *Session, parts []*part) {
	for _, pt := range parts {
		if s.InFlight() < s.Window() {
			return
		}
		pt.retire(p)
	}
}

// mergeAttr picks the authoritative attributes out of per-server
// responses: the largest size wins (a data server that holds the tail
// stripe knows more of the file than one that does not).
func mergeAttr(parts []*part) kernel.Attr {
	var attr kernel.Attr
	for _, pt := range parts {
		if pt.resp != nil && (attr.Ino == 0 || pt.resp.Attr.Size > attr.Size) {
			attr = pt.resp.Attr
		}
	}
	return attr
}

// firstError returns the first per-server failure in offset order.
func firstError(parts []*part) error {
	for _, pt := range parts {
		if pt.err != nil {
			return pt.err
		}
	}
	return nil
}

// Read implements Client: the range splits into per-server runs issued
// in parallel through each server's window; data lands directly in the
// caller's vector (each run scatters into its own slice of dst, so
// striping adds no copies). The merged byte count is the contiguous
// prefix before the first server-clipped (EOF) run.
func (cl *Cluster) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	total := dst.TotalLen()
	if total == 0 {
		// Degenerate read: one attr-only round trip to the offset's owner.
		return cl.sessions[cl.ownerIdx(off)].Read(p, ino, off, dst)
	}
	var parts []*part
	for _, r := range cl.runs(off, total) {
		s := cl.sessions[r.owner]
		makeRoom(p, s, parts)
		cl.StripeReads.Add(r.n)
		pd, err := s.startRead(p, ino, r.off, dst.Slice(int(r.off-off), r.n))
		if err != nil {
			drainParts(p, parts)
			return &Resp{Status: StatusOf(err)}, err
		}
		parts = append(parts, &part{pd: pd, r: r})
	}
	for _, pt := range parts {
		pt.retire(p)
	}
	if err := firstError(parts); err != nil {
		return &Resp{Status: StatusOf(err), Attr: mergeAttr(parts)}, err
	}
	return mergeRead(parts), nil
}

// mergeRead folds per-run read responses into one: byte count is the
// contiguous prefix, attributes are the authoritative merge.
func mergeRead(parts []*part) *Resp {
	n := 0
	for _, pt := range parts {
		n += int(pt.resp.N)
		if int(pt.resp.N) < pt.r.n {
			break // EOF inside this run; later runs are past the end
		}
	}
	return &Resp{Status: StOK, Attr: mergeAttr(parts), N: uint32(n)}
}

// drainParts retires every part, discarding results — the error path.
// Without it an early return would leak window slots.
func drainParts(p *sim.Proc, parts []*part) {
	for _, pt := range parts {
		pt.retire(p)
	}
}

// Write implements Client: runs are chunked at MaxWriteChunk and
// pipelined across the per-server windows; after a write that extends
// the file, grow-only OpExtend requests reconcile every other server's
// local size (see the package comment on size reconciliation).
func (cl *Cluster) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	total := src.TotalLen()
	if total == 0 {
		return cl.sessions[cl.ownerIdx(off)].Write(p, ino, off, src)
	}
	var parts []*part
	fail := func(err error) (*Resp, error) {
		drainParts(p, parts)
		return &Resp{Status: StatusOf(err)}, err
	}
	tailOwner := 0
	for _, r := range cl.runs(off, total) {
		s := cl.sessions[r.owner]
		tailOwner = r.owner
		// Runs longer than one request (only possible with a single
		// server, where all stripes merge) chunk exactly like
		// Session.Write does.
		for done := 0; done < r.n; {
			chunk := r.n - done
			if chunk > MaxWriteChunk {
				chunk = MaxWriteChunk
			}
			makeRoom(p, s, parts)
			cl.StripeWrites.Add(chunk)
			at := r.off + int64(done)
			pd, err := s.startWrite(p, ino, at, src.Slice(int(at-off), chunk))
			if err != nil {
				return fail(err)
			}
			parts = append(parts, &part{pd: pd, r: run{owner: r.owner, off: at, n: chunk}, want: chunk})
			done += chunk
		}
	}
	written := 0
	for _, pt := range parts {
		pt.retire(p)
	}
	if err := firstError(parts); err != nil {
		return &Resp{Status: StatusOf(err), Attr: mergeAttr(parts)}, err
	}
	for _, pt := range parts {
		// Chunks were issued at fixed offsets (like Session.Write's
		// pipelined path), so any short chunk is a hole, not a prefix.
		if int(pt.resp.N) != pt.want {
			r := mergeRead(parts)
			r.Status = StIO
			return r, fmt.Errorf("rfsrv: short striped write (%d of %d) at %d", pt.resp.N, pt.want, pt.r.off)
		}
		written += int(pt.resp.N)
	}
	if err := cl.extendTo(p, ino, off+int64(total), tailOwner); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	resp := &Resp{Status: StOK, Attr: mergeAttr(parts), N: uint32(written)}
	return resp, nil
}

// extendTo reconciles file size after a write ending at end: every
// server except the tail chunk's owner (whose local size already
// reaches end) gets a grow-only OpExtend. Skipped entirely when this
// client has already established a size >= end, and always a no-op on
// a one-server cluster.
func (cl *Cluster) extendTo(p *sim.Proc, ino kernel.InodeID, end int64, tailOwner int) error {
	if cl.sizes[ino] >= end {
		return nil
	}
	var flights []*syncMetaFlight
	var firstErr error
	for i, s := range cl.sessions {
		if i == tailOwner {
			continue
		}
		cl.Extends.Add(1)
		fl, err := startSyncMeta(p, s, &Req{Op: OpExtend, Ino: ino, Off: end})
		if err != nil {
			firstErr = err
			break
		}
		flights = append(flights, fl)
	}
	for _, fl := range flights {
		if _, err := fl.wait(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	cl.sizes[ino] = end
	return nil
}

// ---- pipelined data path (Async) ----

// clusterPending is one striped in-flight operation: the per-server
// parts of a single logical read or write.
type clusterPending struct {
	parts  []*part
	want   int // expected total (writes; -1 for reads)
	issued sim.Time

	done bool
	resp *Resp
	err  error
}

// Wait implements PendingOp: retires every part and merges.
func (cp *clusterPending) Wait(p *sim.Proc) (*Resp, error) {
	if cp.done {
		return cp.resp, cp.err
	}
	cp.done = true
	for _, pt := range cp.parts {
		pt.retire(p)
	}
	if err := firstError(cp.parts); err != nil {
		cp.resp, cp.err = &Resp{Status: StatusOf(err), Attr: mergeAttr(cp.parts)}, err
		return cp.resp, cp.err
	}
	cp.resp = mergeRead(cp.parts)
	if cp.want >= 0 && int(cp.resp.N) != cp.want {
		cp.resp.Status = StIO
		cp.err = fmt.Errorf("rfsrv: short striped write (%d of %d)", cp.resp.N, cp.want)
	}
	return cp.resp, cp.err
}

// Issued implements PendingOp: the time the first per-server request
// entered its window — the same instant a Session would report for the
// same operation, keeping latency accounting bit-identical in the
// one-server configuration.
func (cp *clusterPending) Issued() sim.Time {
	if len(cp.parts) > 0 {
		return cp.parts[0].pd.issued
	}
	return cp.issued
}

// StartRead implements Async: the striped read issues without waiting.
// Callers holding unretired pendings must consult CanStart first (see
// the Async contract) — the per-server issues here block on their own
// windows.
func (cl *Cluster) StartRead(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (PendingOp, error) {
	if off < 0 {
		return nil, ErrInval
	}
	total := dst.TotalLen()
	cp := &clusterPending{want: -1, issued: p.Now()}
	if total == 0 {
		// Zero-length read: one attr-only request to the offset's
		// owner, like the synchronous Read path.
		pd, err := cl.sessions[cl.ownerIdx(off)].startRead(p, ino, off, dst)
		if err != nil {
			return nil, err
		}
		cp.parts = append(cp.parts, &part{pd: pd, r: run{owner: cl.ownerIdx(off), off: off}})
		return cp, nil
	}
	for _, r := range cl.runs(off, total) {
		s := cl.sessions[r.owner]
		// An operation spanning more same-server stripes than that
		// server's window retires its own earlier runs to make room —
		// it must never depend on the caller, who cannot retire a
		// pending it has not been handed yet.
		makeRoom(p, s, cp.parts)
		cl.StripeReads.Add(r.n)
		pd, err := s.startRead(p, ino, r.off, dst.Slice(int(r.off-off), r.n))
		if err != nil {
			drainParts(p, cp.parts)
			return nil, err
		}
		cp.parts = append(cp.parts, &part{pd: pd, r: r})
	}
	return cp, nil
}

// StartWrite implements Async: one striped write request of at most
// MaxWriteChunk, issued without waiting. Unlike the synchronous Write
// it does not reconcile sizes across servers — asynchronous writers
// (ORFS write-behind) track EOF themselves and their dirty data is
// re-readable from the servers that own it.
func (cl *Cluster) StartWrite(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (PendingOp, error) {
	if off < 0 {
		return nil, ErrInval
	}
	total := src.TotalLen()
	if total > MaxWriteChunk {
		return nil, fmt.Errorf("rfsrv: StartWrite of %d bytes exceeds one %d-byte request", total, MaxWriteChunk)
	}
	cp := &clusterPending{want: total, issued: p.Now()}
	for _, r := range cl.runs(off, total) {
		s := cl.sessions[r.owner]
		makeRoom(p, s, cp.parts)
		cl.StripeWrites.Add(r.n)
		pd, err := s.startWrite(p, ino, r.off, src.Slice(int(r.off-off), r.n))
		if err != nil {
			drainParts(p, cp.parts)
			return nil, err
		}
		cp.parts = append(cp.parts, &part{pd: pd, r: r, want: r.n})
	}
	// The size cache is deliberately NOT updated here: sizes[ino]
	// records "every server reconciled to this size", and an async
	// write extends only the servers its runs touch. The next
	// synchronous Write past this end runs extendTo as usual.
	return cp, nil
}

// ---- metadata path ----

// cloneReq copies a request so per-server sequence stamping never
// mutates a caller's (or a sibling server's) request.
func cloneReq(req *Req) *Req {
	r := *req
	return &r
}

// syncMetaFlight is one in-flight metadata request on a server's
// synchronous control path.
type syncMetaFlight struct {
	c     *FabricClient
	hdrOp fabric.Op
	seq   uint64
}

// startSyncMeta issues a metadata request through s's underlying
// synchronous client — its private control buffers, NOT a window slot.
// This is what makes cluster metadata deadlock-free: a consumer whose
// striped reads or writes hold every window slot of some server
// (ORFS readahead can legitimately do this) can still look up, stat
// and reconcile, because metadata never waits on the data windows.
func startSyncMeta(p *sim.Proc, s *Session, req *Req) (*syncMetaFlight, error) {
	c := s.c
	c.lock.Acquire(p)
	c.seq++
	req.Seq, req.EP = c.seq, c.myEP
	hdrOp, err := c.postHdr(p, &c.ctl, req.Seq)
	if err != nil {
		c.lock.Release()
		return nil, err
	}
	if err := c.sendReq(p, &c.ctl, req, nil); err != nil {
		c.lock.Release()
		return nil, err
	}
	return &syncMetaFlight{c: c, hdrOp: hdrOp, seq: req.Seq}, nil
}

// wait retires the flight and releases the control path.
func (fl *syncMetaFlight) wait(p *sim.Proc) (*Resp, error) {
	defer fl.c.lock.Release()
	return fl.c.finish(p, &fl.c.ctl, fl.hdrOp, fl.seq)
}

// syncMeta is one synchronous metadata round trip to server idx.
func (cl *Cluster) syncMeta(p *sim.Proc, idx int, req *Req) (*Resp, error) {
	fl, err := startSyncMeta(p, cl.sessions[idx], req)
	if err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return fl.wait(p)
}

// Meta implements Client. Read-only operations go to the home server;
// mutations replicate to every server in server order, and the
// per-server answers must agree (same status, same inode) or the
// cluster reports namespace divergence.
func (cl *Cluster) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	if err := ValidateReq(req); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	switch req.Op {
	case OpRead, OpWrite:
		return &Resp{Status: StInval}, ErrInval
	case OpLookup:
		// Read-only answers deliberately do NOT feed the size cache:
		// sizes[ino] means "every server reconciled to this size", and a
		// single server's view (e.g. the home after an async StartWrite
		// that extended only its own stripes) cannot establish that —
		// caching it would silently disable the next write's extendTo.
		return cl.syncMeta(p, cl.pathHomeIdx(req.Ino, req.Name), req)
	case OpGetattr, OpReaddir:
		return cl.syncMeta(p, cl.homeIdx(req.Ino), req)
	default:
		return cl.fanout(p, req)
	}
}

// fanout replicates a namespace mutation to every server in parallel
// (each server's synchronous control path; see startSyncMeta) and
// verifies the answers agree. With one server it is exactly one
// synchronous metadata round trip.
func (cl *Cluster) fanout(p *sim.Proc, req *Req) (*Resp, error) {
	if len(cl.sessions) == 1 {
		resp, err := cl.syncMeta(p, 0, req)
		cl.noteMutation(req, resp, err)
		return resp, err
	}
	flights := make([]*syncMetaFlight, 0, len(cl.sessions))
	var firstErr error
	for i, s := range cl.sessions {
		if i > 0 {
			cl.MetaFanout.Add(1)
		}
		fl, err := startSyncMeta(p, s, cloneReq(req))
		if err != nil {
			firstErr = err
			break
		}
		flights = append(flights, fl)
	}
	resps := make([]*Resp, len(flights))
	for i, fl := range flights {
		var err error
		resps[i], err = fl.wait(p)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(resps) == 0 {
		return &Resp{Status: StatusOf(firstErr)}, firstErr
	}
	base := resps[0]
	for _, r := range resps[1:] {
		if r == nil || base == nil {
			continue
		}
		if r.Status != base.Status || r.Attr.Ino != base.Attr.Ino {
			err := fmt.Errorf("rfsrv: cluster namespace diverged on %v %q (status %d/ino %d vs %d/%d)",
				req.Op, req.Name, base.Status, base.Attr.Ino, r.Status, r.Attr.Ino)
			return &Resp{Status: StIO}, err
		}
	}
	cl.noteMutation(req, base, firstErr)
	return base, firstErr
}

// noteMutation updates the size cache after a replicated mutation.
func (cl *Cluster) noteMutation(req *Req, resp *Resp, err error) {
	if err != nil || resp == nil {
		return
	}
	switch req.Op {
	case OpCreate:
		cl.sizes[resp.Attr.Ino] = resp.Attr.Size
	case OpTruncate:
		cl.sizes[req.Ino] = req.Off // exact: truncate may shrink
	case OpExtend:
		if req.Off > cl.sizes[req.Ino] {
			cl.sizes[req.Ino] = req.Off
		}
	}
}

// MetaBatch implements Async: requests route like Meta (read-only to
// their homes, mutations to every server) and each server's share is
// issued as one combined batch in original order, so the §3.3-style
// combining survives striping. Server batches run one server at a
// time; with one server this is exactly Session.MetaBatch. Unlike
// Meta, batches flow through the per-server windows (that is what
// combines them), so callers must not hold unretired data pendings
// across a MetaBatch call.
func (cl *Cluster) MetaBatch(p *sim.Proc, reqs []*Req) ([]*Resp, error) {
	for _, r := range reqs {
		if r.Op == OpRead || r.Op == OpWrite {
			return nil, fmt.Errorf("rfsrv: MetaBatch cannot carry %v", r.Op)
		}
		if err := ValidateReq(r); err != nil {
			return nil, err
		}
	}
	if len(cl.sessions) == 1 {
		return cl.sessions[0].MetaBatch(p, reqs)
	}
	type share struct {
		idx  []int // original positions
		reqs []*Req
	}
	shares := make([]share, len(cl.sessions))
	mutation := make([]bool, len(reqs))
	for i, r := range reqs {
		switch r.Op {
		case OpLookup:
			h := cl.pathHomeIdx(r.Ino, r.Name)
			shares[h].idx = append(shares[h].idx, i)
			shares[h].reqs = append(shares[h].reqs, r)
		case OpGetattr, OpReaddir:
			h := cl.homeIdx(r.Ino)
			shares[h].idx = append(shares[h].idx, i)
			shares[h].reqs = append(shares[h].reqs, r)
		default:
			mutation[i] = true
			for s := range cl.sessions {
				if s > 0 {
					cl.MetaFanout.Add(1)
				}
				shares[s].idx = append(shares[s].idx, i)
				shares[s].reqs = append(shares[s].reqs, cloneReq(r))
			}
		}
	}
	out := make([]*Resp, len(reqs))
	for s, sh := range shares {
		if len(sh.reqs) == 0 {
			continue
		}
		resps, err := cl.sessions[s].MetaBatch(p, sh.reqs)
		for i, r := range resps {
			pos := sh.idx[i]
			if out[pos] == nil {
				out[pos] = r
			} else if r != nil && (r.Status != out[pos].Status || r.Attr.Ino != out[pos].Attr.Ino) {
				return out, fmt.Errorf("rfsrv: cluster namespace diverged in batch at %d", pos)
			}
		}
		if err != nil {
			return out, err
		}
	}
	// Apply cache updates in request order: a batch may carry several
	// mutations of one inode (extend then truncate), and the LAST one
	// must win, exactly as the servers applied them.
	for pos, r := range reqs {
		if mutation[pos] && out[pos] != nil {
			cl.noteMutation(r, out[pos], nil)
		}
	}
	return out, nil
}

var _ Client = (*Cluster)(nil)
